/// \file quickstart.cpp
/// The paper's §2.3 example as a runnable program: load raw event data with
/// schema (id, category, time, wkt), turn each record into
/// (STObject(wkt, time), (id, category)), and query it with containedBy and
/// a live-indexed intersects — exactly the two queries shown in the paper.
#include <cstdio>

#include "common/macros.h"
#include "engine/context.h"
#include "io/csv.h"
#include "io/generator.h"
#include "spatial_rdd/spatial_rdd.h"

using namespace stark;

int main() {
  Context ctx;

  // -- Pre-processing: raw CSV -> RDD[(Int, String, Long, String)] --------
  // Real deployments would LOAD from HDFS; we synthesize a Wikipedia-like
  // event file first (see DESIGN.md on this substitution).
  EventsOptions gen;
  gen.count = 20'000;
  gen.universe = Envelope(-180, -90, 180, 90);
  gen.time_min = 0;
  gen.time_max = 1'000'000;
  const std::string path = "/tmp/stark_quickstart_events.csv";
  STARK_CHECK(WriteEventsCsv(path, GenerateEvents(gen)).ok());

  auto records = ReadEventsCsv(path).ValueOrDie();
  std::printf("loaded %zu raw events from %s\n", records.size(), path.c_str());

  // val events = rawInput.map { case (id, ctgry, time, wkt) =>
  //   ( STObject(wkt, time), (id, ctgry) ) }
  auto pairs = EventsToPairs(records).ValueOrDie();
  SpatialRDD<std::pair<int64_t, std::string>> events =
      SpatialRDD<std::pair<int64_t, std::string>>::FromVector(
          &ctx, std::move(pairs));

  // val qry = STObject("POLYGON((...))", begin, end)
  const Instant begin = 200'000;
  const Instant end = 800'000;
  const STObject qry(
      Geometry::MakeBox(Envelope(-10.0, 35.0, 30.0, 60.0)),  // ~Europe
      begin, end);

  // val contain = events.containedBy(qry)
  auto contain = events.ContainedBy(qry);
  std::printf("containedBy(qry): %zu events inside the window\n",
              contain.Count());

  // val intersect = events.liveIndex(order = 5).intersect(qry)
  auto intersect = events.LiveIndex(/*order=*/5).Intersects(qry);
  std::printf("liveIndex(5).intersects(qry): %zu events\n",
              intersect.Count());

  // Show a few results.
  for (const auto& [obj, payload] : intersect.Take(5)) {
    std::printf("  event id=%lld category=%-9s %s\n",
                static_cast<long long>(payload.first),
                payload.second.c_str(), obj.ToString().c_str());
  }
  std::printf("quickstart done\n");
  return 0;
}
