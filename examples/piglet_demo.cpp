/// \file piglet_demo.cpp
/// The demo-scenario front end (§4) as a CLI: runs a Piglet script against
/// the engine and prints DUMP/DESCRIBE output. Pass a script path as the
/// first argument, or run without arguments for the built-in demo pipeline
/// (reverse of the web front end: queries are typed, results printed).
#include <cstdio>
#include <iostream>
#include <string>

#include "common/macros.h"
#include "common/serde.h"
#include "engine/context.h"
#include "io/csv.h"
#include "io/generator.h"
#include "piglet/interpreter.h"

using namespace stark;

namespace {

const char* kDemoScript = R"PIG(
-- Piglet demo pipeline: spatio-temporal filtering, clustering, kNN.
events   = LOAD '/tmp/stark_piglet_events.csv';
DESCRIBE events;

spatial  = SPATIALIZE events;
parted   = PARTITION spatial BY BSP(2500);
indexed  = INDEX parted ORDER 5;
DESCRIBE indexed;

-- All events inside a window of interest during [100000, 600000].
window   = FILTER indexed BY CONTAINEDBY(
             'POLYGON((-20 30, 40 30, 40 70, -20 70, -20 30))',
             100000, 600000);
sample   = LIMIT window 5;
DUMP sample;

-- Attribute predicates compose with the spatio-temporal ones.
sports   = FILTER events BY category == 'sports' AND time < 500000;
DESCRIBE sports;

-- Density-based clustering of the full data set.
clusters = CLUSTER spatial USING DBSCAN(2.5, 30) GRID 6;
DESCRIBE clusters;

-- The five events nearest to a point of interest.
nearest  = KNN spatial QUERY 'POINT(13.4 52.5)' K 5;
DUMP nearest;

STORE sports INTO '/tmp/stark_piglet_sports.csv';
)PIG";

}  // namespace

int main(int argc, char** argv) {
  Context ctx;

  std::string script;
  if (argc > 1) {
    auto bytes = ReadFileBytes(argv[1]);
    if (!bytes.ok()) {
      std::fprintf(stderr, "cannot read script %s: %s\n", argv[1],
                   bytes.status().ToString().c_str());
      return 1;
    }
    const auto& buf = bytes.ValueOrDie();
    script.assign(buf.begin(), buf.end());
  } else {
    // Synthesize the demo data set the built-in script loads.
    EventsOptions gen;
    gen.count = 25'000;
    gen.universe = Envelope(-180, -90, 180, 90);
    gen.time_min = 0;
    gen.time_max = 1'000'000;
    STARK_CHECK(
        WriteEventsCsv("/tmp/stark_piglet_events.csv", GenerateEvents(gen))
            .ok());
    script = kDemoScript;
    std::printf("-- running built-in demo script --\n%s\n-- output --\n",
                kDemoScript);
  }

  piglet::Interpreter interpreter(&ctx, &std::cout);
  const Status status = interpreter.RunScript(script);
  if (!status.ok()) {
    std::fprintf(stderr, "piglet error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("piglet script finished\n");
  return 0;
}
