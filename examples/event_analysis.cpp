/// \file event_analysis.cpp
/// Event-mining scenario from the paper's introduction: skewed world-event
/// data is spatially partitioned (BSP, because the fixed grid is unbalanced
/// on "land-only" data), clustered with the distributed DBSCAN operator to
/// find groups of similar events, and explored with kNN around a hotspot.
/// The web front end's map view is substituted by an ASCII density map.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "clustering/distributed_dbscan.h"
#include "io/generator.h"
#include "partition/bsp_partitioner.h"
#include "partition/grid_partitioner.h"
#include "spatial_rdd/spatial_rdd.h"

using namespace stark;

namespace {

/// Renders points as an ASCII density map (the demo UI substitute).
void PrintAsciiMap(const std::vector<std::pair<STObject, int64_t>>& events,
                   const Envelope& universe, int width, int height) {
  std::vector<std::vector<int>> grid(height, std::vector<int>(width, 0));
  for (const auto& [obj, id] : events) {
    const Coordinate c = obj.Centroid();
    int gx = static_cast<int>((c.x - universe.min_x()) / universe.Width() *
                              width);
    int gy = static_cast<int>((c.y - universe.min_y()) / universe.Height() *
                              height);
    gx = std::clamp(gx, 0, width - 1);
    gy = std::clamp(gy, 0, height - 1);
    grid[gy][gx]++;
  }
  const char* shades = " .:-=+*#%@";
  for (int y = height - 1; y >= 0; --y) {
    for (int x = 0; x < width; ++x) {
      const int level = std::min(9, grid[y][x] / 8);
      std::putchar(shades[level]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main() {
  Context ctx;
  const Envelope universe(-180, -90, 180, 90);

  // Skewed "events happen on land, not on sea" workload (§2.1).
  SkewedPointsOptions gen;
  gen.count = 30'000;
  gen.universe = universe;
  gen.clusters = 9;
  gen.cluster_spread = 0.012;
  gen.noise_fraction = 0.08;
  auto points = GenerateSkewedPoints(gen);

  std::vector<std::pair<STObject, int64_t>> data;
  data.reserve(points.size());
  std::vector<Coordinate> centroids;
  for (size_t i = 0; i < points.size(); ++i) {
    data.emplace_back(points[i], static_cast<int64_t>(i));
    centroids.push_back(points[i].Centroid());
  }
  auto events = SpatialRDD<int64_t>::FromVector(&ctx, data);

  std::printf("== world event density (%zu events) ==\n", data.size());
  PrintAsciiMap(data, universe, 72, 20);

  // BSP partitioning: dense regions split, sparse regions stay coarse.
  BSPartitioner::Options bsp_options;
  bsp_options.max_cost = 4000;
  auto bsp = std::make_shared<BSPartitioner>(universe, centroids,
                                             bsp_options);
  auto parted = events.PartitionBy(bsp);
  std::printf("\nBSP produced %zu partitions (grid of the same budget would"
              " leave most cells empty)\n",
              bsp->NumPartitions());
  auto parts = parted.rdd().CollectPartitions();
  size_t max_part = 0;
  size_t empty = 0;
  for (const auto& p : parts) {
    max_part = std::max(max_part, p.size());
    if (p.empty()) ++empty;
  }
  std::printf("partition sizes: max=%zu empty=%zu of %zu\n", max_part, empty,
              parts.size());

  // Distributed DBSCAN: find groups of similar events.
  DbscanParams params{2.0, 25};
  auto clustered = DistributedDbscan(parted, params, bsp).Collect();
  std::map<int64_t, size_t> cluster_sizes;
  size_t noise = 0;
  for (const auto& [elem, label] : clustered) {
    if (label == kNoise) {
      ++noise;
    } else {
      cluster_sizes[label]++;
    }
  }
  std::printf("\nDBSCAN(eps=%.1f, minPts=%zu): %zu clusters, %zu noise\n",
              params.eps, params.min_pts, cluster_sizes.size(), noise);
  std::vector<std::pair<size_t, int64_t>> top;
  for (const auto& [label, size] : cluster_sizes) top.push_back({size, label});
  std::sort(top.rbegin(), top.rend());
  for (size_t i = 0; i < std::min<size_t>(5, top.size()); ++i) {
    std::printf("  cluster %lld: %zu events\n",
                static_cast<long long>(top[i].second), top[i].first);
  }

  // kNN around the hottest cluster's first event.
  if (!top.empty()) {
    const int64_t hot = top[0].second;
    for (const auto& [elem, label] : clustered) {
      if (label == hot) {
        auto knn = parted.Knn(elem.first, 10);
        std::printf("\n10 nearest events around %s:\n",
                    elem.first.ToString().c_str());
        for (const auto& [dist, e] : knn) {
          std::printf("  id=%lld dist=%.3f\n",
                      static_cast<long long>(e.second), dist);
        }
        break;
      }
    }
  }
  std::printf("event analysis done\n");
  return 0;
}
