/// \file geofence_monitoring.cpp
/// Spatio-temporal join scenario: position reports from location-aware
/// devices (the paper's other motivating workload) are joined against a set
/// of geofence polygons, each active only during its own time interval —
/// exercising the combined predicate semantics (formula (1)-(3)), the
/// persistent index mode, and the join's extent pruning.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "engine/context.h"
#include "io/generator.h"
#include "partition/grid_partitioner.h"
#include "spatial_rdd/join.h"
#include "spatial_rdd/spatial_rdd.h"

using namespace stark;

int main() {
  Context ctx;
  const Envelope city(0, 0, 50, 50);

  // -- Position reports: device pings with timestamps -----------------------
  SkewedPointsOptions gen;
  gen.count = 40'000;
  gen.universe = city;
  gen.clusters = 6;
  gen.cluster_spread = 0.03;
  gen.seed = 9;
  auto pings = GenerateSkewedPoints(gen);
  Rng rng(10);
  std::vector<std::pair<STObject, int64_t>> reports;
  reports.reserve(pings.size());
  for (size_t i = 0; i < pings.size(); ++i) {
    reports.emplace_back(
        STObject(pings[i].geo(), rng.UniformInt(0, 86'400)),  // seconds/day
        static_cast<int64_t>(i));
  }

  // -- Geofences: polygons active during shifts ------------------------------
  PolygonsOptions pgen;
  pgen.count = 40;
  pgen.universe = city;
  pgen.min_radius = 1.0;
  pgen.max_radius = 4.0;
  pgen.seed = 11;
  auto zones = GenerateRandomPolygons(pgen);
  std::vector<std::pair<STObject, int64_t>> fences;
  for (size_t i = 0; i < zones.size(); ++i) {
    const Instant start = rng.UniformInt(0, 43'200);
    fences.emplace_back(
        STObject(zones[i].geo(), start, start + 21'600),  // 6h active window
        static_cast<int64_t>(i));
  }

  auto grid = std::make_shared<GridPartitioner>(city, 6);
  auto report_rdd =
      SpatialRDD<int64_t>::FromVector(&ctx, reports).PartitionBy(grid);
  auto fence_grid = std::make_shared<GridPartitioner>(city, 3);
  auto fence_rdd =
      SpatialRDD<int64_t>::FromVector(&ctx, fences).PartitionBy(fence_grid);

  // -- Join: which ping was inside which active geofence? -------------------
  Stopwatch timer;
  auto hits = SpatialJoin(report_rdd, fence_rdd,
                          JoinPredicate::ContainedBy());
  std::map<int64_t, size_t> per_fence;
  for (const auto& [report, fence] : hits.Collect()) {
    per_fence[fence.second]++;
  }
  std::printf("geofence join: %zu containment events in %.2fs\n",
              hits.Count(), timer.ElapsedSeconds());
  size_t shown = 0;
  for (const auto& [fence_id, count] : per_fence) {
    if (shown++ >= 5) break;
    std::printf("  fence %lld observed %zu pings while active\n",
                static_cast<long long>(fence_id), count);
  }

  // -- Persistent indexing: build once, reuse in the "next program run" ----
  const std::string index_dir = "/tmp/stark_geofence_index";
  STARK_CHECK(std::system(("mkdir -p " + index_dir).c_str()) == 0);
  auto indexed = report_rdd.Index(/*order=*/10);
  const Status saved = indexed.Save(index_dir);
  STARK_CHECK(saved.ok());
  std::printf("persisted report index to %s\n", index_dir.c_str());

  auto reloaded = IndexedSpatialRDD<int64_t>::Load(&ctx, index_dir);
  STARK_CHECK(reloaded.ok());
  const STObject probe(Geometry::MakePoint(25, 25));
  auto nearby = reloaded.ValueOrDie().WithinDistance(probe, 2.0);
  std::printf("reloaded index answers withinDistance(center, 2.0): %zu "
              "pings\n",
              nearby.Count());

  std::printf("geofence monitoring done\n");
  return 0;
}
