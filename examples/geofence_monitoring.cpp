/// \file geofence_monitoring.cpp
/// Continuous geofence monitoring: position reports from location-aware
/// devices (the paper's other motivating workload) stream through
/// event-time windows, and every fired window is matched against a
/// geofence with CEP patterns — COUNT for intrusion bursts into a
/// restricted zone that is only armed during its active interval, and
/// ABSENT for missed patrol heartbeats. Alerts print as the watermark
/// fires windows mid-stream, not after a batch job at the end; the same
/// arrival schedule replayed twice produces byte-identical alerts.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "engine/context.h"
#include "io/generator.h"
#include "stream/stream_context.h"

using namespace stark;

namespace {

/// One day of device pings: clustered positions with second-granularity
/// timestamps, delivered slightly out of order (network jitter), plus a
/// patrol guard that checks in every 60s — except during one gap.
std::vector<stream::StreamEvent> PingSchedule() {
  SkewedPointsOptions gen;
  gen.count = 2'000;
  gen.universe = Envelope(0, 0, 50, 50);
  gen.clusters = 6;
  gen.cluster_spread = 0.03;
  gen.seed = 9;
  const std::vector<STObject> pings = GenerateSkewedPoints(gen);

  Rng rng(10);
  std::vector<stream::StreamEvent> schedule;
  schedule.reserve(pings.size() + 32);
  for (size_t i = 0; i < pings.size(); ++i) {
    const Instant t = rng.UniformInt(0, 1'800);  // a 30-minute shift
    schedule.emplace_back(static_cast<int64_t>(i), "device",
                          STObject(pings[i].geo(), t));
  }
  // Patrol heartbeats every 60s, silent between minutes 12 and 18.
  for (int64_t minute = 0; minute < 30; ++minute) {
    if (minute >= 12 && minute < 18) continue;
    schedule.emplace_back(100'000 + minute, "guard",
                          STObject(Geometry::MakePoint({25, 25}),
                                   minute * 60));
  }
  // Arrival order: event time plus bounded network jitter.
  std::vector<std::pair<Instant, size_t>> order;
  order.reserve(schedule.size());
  for (size_t i = 0; i < schedule.size(); ++i) {
    order.emplace_back(schedule[i].event_time() + rng.UniformInt(0, 15), i);
  }
  std::sort(order.begin(), order.end());
  std::vector<stream::StreamEvent> arrivals;
  arrivals.reserve(schedule.size());
  for (const auto& [jittered, idx] : order) arrivals.push_back(schedule[idx]);
  return arrivals;
}

/// Replays the arrival schedule through one continuous query in
/// micro-batches, firing ripe windows between batches like a live driver.
stream::StreamStats RunQuery(Context* ctx,
                             const stream::StreamContext::Options& options,
                             const std::vector<stream::StreamEvent>& arrivals,
                             int64_t bound,
                             void (*alert)(const stream::WindowResult&)) {
  stream::StreamContext sc(ctx, options);
  const size_t slot = sc.AddExternalSource(bound);
  sc.SetSink([alert](const stream::WindowResult& r) { alert(r); });
  size_t in_batch = 0;
  for (const stream::StreamEvent& event : arrivals) {
    sc.Ingest(slot, event);
    if (++in_batch == 128) {  // micro-batch boundary: fire what is ripe
      STARK_CHECK(sc.FireReady().ok());
      in_batch = 0;
    }
  }
  STARK_CHECK(sc.Flush().ok());
  return sc.stats();
}

void IntrusionAlert(const stream::WindowResult& r) {
  for (const auto& m : r.matches) {
    std::printf("  ALERT  [%5lld,%5lld) %lld pings inside the armed zone\n",
                static_cast<long long>(m.window_start),
                static_cast<long long>(m.window_end),
                static_cast<long long>(m.count));
  }
}

void PatrolAlert(const stream::WindowResult& r) {
  for (const auto& m : r.matches) {
    std::printf("  WARN   [%5lld,%5lld) no guard heartbeat this window\n",
                static_cast<long long>(m.window_start),
                static_cast<long long>(m.window_end));
  }
}

}  // namespace

int main() {
  Context ctx;
  const std::vector<stream::StreamEvent> arrivals = PingSchedule();
  std::printf("geofence monitoring: %zu events, out-of-order by <= 15s\n",
              arrivals.size());

  // -- Query 1: intrusion bursts into a restricted zone ---------------------
  // The zone polygon carries its own active interval (minutes 5-20), so the
  // combined spatio-temporal predicate arms and disarms it automatically.
  auto zone = STObject::FromWkt(
      "POLYGON((18 18, 32 18, 32 32, 18 32, 18 18))", 300, 1'200);
  STARK_CHECK(zone.ok());
  stream::StreamContext::Options intrusion;
  intrusion.window.size = 120;  // 2-minute tumbling windows
  intrusion.late_policy = stream::LatePolicy::kSideOutput;
  stream::PatternSpec burst;
  burst.kind = stream::PatternKind::kCount;
  stream::StepPredicate in_zone;
  in_zone.category = "device";
  in_zone.region = zone.ValueOrDie();
  in_zone.pred = JoinPredicate::Intersects();
  burst.steps.push_back(in_zone);
  burst.cmp = stream::CountCmp::kGe;
  burst.threshold = 25;
  intrusion.pattern = burst;

  std::printf("-- intrusion query: COUNT(device in zone) >= 25 per 120s --\n");
  const stream::StreamStats s1 =
      RunQuery(&ctx, intrusion, arrivals, /*bound=*/15, IntrusionAlert);

  // -- Query 2: missed patrol heartbeats ------------------------------------
  stream::StreamContext::Options patrol;
  patrol.window.size = 180;  // one heartbeat expected per 3-minute window
  stream::PatternSpec silent;
  silent.kind = stream::PatternKind::kAbsence;
  stream::StepPredicate heartbeat;
  heartbeat.category = "guard";
  silent.steps.push_back(heartbeat);
  patrol.pattern = silent;

  std::printf("-- patrol query: ABSENT(guard) per 180s --\n");
  const stream::StreamStats s2 =
      RunQuery(&ctx, patrol, arrivals, /*bound=*/15, PatrolAlert);

  std::printf(
      "intrusion query: %llu events, %llu windows, %llu alert(s), "
      "%llu late\n",
      static_cast<unsigned long long>(s1.ingested),
      static_cast<unsigned long long>(s1.windows_fired),
      static_cast<unsigned long long>(s1.matches),
      static_cast<unsigned long long>(s1.late));
  std::printf(
      "patrol query:    %llu events, %llu windows, %llu warning(s)\n",
      static_cast<unsigned long long>(s2.ingested),
      static_cast<unsigned long long>(s2.windows_fired),
      static_cast<unsigned long long>(s2.matches));
  std::printf("geofence monitoring done\n");
  return 0;
}
