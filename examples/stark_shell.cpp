/// \file stark_shell.cpp
/// Interactive Piglet shell — the terminal substitute for the paper's web
/// front end (§4): type statements, DUMP/DESCRIBE results, iterate. Each
/// submitted statement (terminated by ';') runs immediately against the
/// session's interpreter, so relations accumulate like cells in the demo UI.
#include <cstdio>
#include <iostream>
#include <string>

#include "engine/context.h"
#include "piglet/explain.h"
#include "piglet/interpreter.h"
#include "piglet/parser.h"

using namespace stark;

namespace {

const char* kBanner = R"(STARK shell — Piglet dialect. Statements end with ';'.
Operators: LOAD SPATIALIZE FILTER PARTITION INDEX JOIN KNN CLUSTER
           AGGREGATE LIMIT DUMP STORE DESCRIBE
Example:
  events = LOAD 'events.csv';
  s = SPATIALIZE events;
  hits = FILTER s BY INTERSECTS('POLYGON((0 0,10 0,10 10,0 0))', 0, 1000);
  DUMP hits;
\e <statements>  shows the optimized plan without running it.
Type \q to quit.
)";

}  // namespace

int main() {
  Context ctx;
  piglet::Interpreter interpreter(&ctx, &std::cout);
  std::printf("%s", kBanner);

  std::string pending;
  std::string line;
  std::printf("stark> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (line == "\\q" || line == "\\quit") break;
    if (line.rfind("\\e ", 0) == 0) {
      // EXPLAIN: parse + optimize + pretty-print, without executing.
      auto program = piglet::Parse(line.substr(3));
      if (!program.ok()) {
        std::printf("error: %s\n", program.status().ToString().c_str());
      } else {
        piglet::OptimizerReport report;
        const auto optimized =
            piglet::Optimize(program.ValueOrDie(), &report);
        std::printf("%s(%zu rewrites applied)\n",
                    piglet::FormatProgram(optimized).c_str(),
                    report.Total());
      }
      std::printf("stark> ");
      std::fflush(stdout);
      continue;
    }
    pending += line;
    pending += '\n';
    // Execute once the buffered input ends a statement.
    const auto last_non_ws = pending.find_last_not_of(" \t\n\r");
    if (last_non_ws != std::string::npos && pending[last_non_ws] == ';') {
      const Status status = interpreter.RunScript(pending);
      if (!status.ok()) {
        std::printf("error: %s\n", status.ToString().c_str());
      }
      pending.clear();
    }
    std::printf(pending.empty() ? "stark> " : "   ... ");
    std::fflush(stdout);
  }
  std::printf("\nbye\n");
  return 0;
}
