/// \file stark_shell.cpp
/// Interactive Piglet shell — the terminal substitute for the paper's web
/// front end (§4): type statements, DUMP/DESCRIBE results, iterate. Each
/// submitted statement (terminated by ';') runs immediately against the
/// session's interpreter, so relations accumulate like cells in the demo UI.
///
/// Run with --trace=<file> to capture a Chrome trace (one span per
/// partition-task) of everything the session executes; open the file in
/// chrome://tracing or https://ui.perfetto.dev.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "engine/context.h"
#include "fault/failpoint.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "piglet/explain.h"
#include "piglet/interpreter.h"
#include "piglet/parser.h"

using namespace stark;

namespace {

const char* kBanner = R"(STARK shell — Piglet dialect. Statements end with ';'.
Operators: LOAD SPATIALIZE FILTER PARTITION INDEX JOIN KNN CLUSTER
           AGGREGATE LIMIT DUMP STORE DESCRIBE
Example:
  events = LOAD 'events.csv';
  s = SPATIALIZE events;
  hits = FILTER s BY INTERSECTS('POLYGON((0 0,10 0,10 10,0 0))', 0, 1000);
  DUMP hits;
\e <statements>  shows the optimized plan without running it.
\a <statements>  EXPLAIN ANALYZE: runs them and prints per-operator stats.
\m               dumps engine metrics (counters/gauges/histograms).
\f               dumps fault-injection sites (policy, hits, fires).
\r <file>        dumps the flight recorder (task-lifecycle ring) as JSON.
SET obs.profile 1;  prints a per-job QueryProfile tree after each script.
Env: STARK_METRICS_EXPORT=<path> exports OpenMetrics text continuously;
     STARK_FLIGHT_RECORDER=<path> auto-dumps the ring on job failure.
Type \q to quit.
)";

void Prompt(bool pending) {
  std::printf(pending ? "   ... " : "stark> ");
  std::fflush(stdout);
}

/// Ctrl-C cancels the running script instead of killing the shell: the
/// handler only flips an atomic flag (async-signal-safe); the engine stops
/// the in-flight job at its next task checkpoint and RunScript returns
/// Status::Cancelled.
std::shared_ptr<stark::CancelToken> g_cancel_token;

void HandleSigint(int) { g_cancel_token->RequestCancel(); }

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--failpoints=", 13) == 0) {
      // Same spec syntax as STARK_FAILPOINTS, e.g.
      // --failpoints='engine.task.run=nth:1;engine.checkpoint.read=prob:0.1'
      const Status status =
          fault::DefaultFailPoints().ArmFromSpec(argv[i] + 13);
      if (!status.ok()) {
        std::fprintf(stderr, "bad --failpoints spec: %s\n",
                     status.ToString().c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace=<file>] [--failpoints=<spec>]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!trace_path.empty()) {
    obs::DefaultTracer().Enable();
    std::printf("tracing to %s (Chrome trace_event JSON)\n",
                trace_path.c_str());
  }
  // STARK_METRICS_EXPORT=<path>: background OpenMetrics snapshots for the
  // whole session (final export on exit via the destructor).
  std::unique_ptr<obs::MetricsExporter> exporter =
      obs::MetricsExporter::FromEnv();
  if (exporter != nullptr) {
    std::printf("exporting OpenMetrics to %s\n", exporter->path().c_str());
  }

  Context ctx;
  piglet::Interpreter interpreter(&ctx, &std::cout);
  g_cancel_token = std::make_shared<CancelToken>();
  interpreter.set_cancel_token(g_cancel_token);
  std::signal(SIGINT, HandleSigint);
  std::printf("%s", kBanner);
  std::printf("Ctrl-C cancels the running statement (job stops at its next "
              "checkpoint).\n");

  std::string pending;
  std::string line;
  Prompt(false);
  while (std::getline(std::cin, line)) {
    if (line == "\\q" || line == "\\quit") break;
    if (line.rfind("\\e ", 0) == 0) {
      // EXPLAIN: parse + optimize + pretty-print, without executing.
      auto program = piglet::Parse(line.substr(3));
      if (!program.ok()) {
        std::printf("error: %s\n", program.status().ToString().c_str());
      } else {
        piglet::OptimizerReport report;
        const auto optimized =
            piglet::Optimize(program.ValueOrDie(), &report);
        std::printf("%s(%zu rewrites applied)\n",
                    piglet::FormatProgram(optimized).c_str(),
                    report.Total());
      }
      Prompt(false);
      continue;
    }
    if (line.rfind("\\a ", 0) == 0) {
      // EXPLAIN ANALYZE: execute against the session and print the
      // per-operator profile (statements still define session relations).
      piglet::AnalyzeReport report;
      const Status status =
          interpreter.RunScriptAnalyze(line.substr(3), &report);
      std::printf("%s", piglet::FormatAnalyzeReport(report).c_str());
      if (!status.ok()) {
        std::printf("error: %s\n", status.ToString().c_str());
      }
      if (g_cancel_token->requested()) g_cancel_token->Reset();
      Prompt(false);
      continue;
    }
    if (line == "\\m") {
      ctx.PublishPoolStats();
      std::printf("%s", obs::DefaultMetrics().TextReport().c_str());
      Prompt(false);
      continue;
    }
    if (line == "\\f") {
      const std::string report = fault::DefaultFailPoints().Report();
      std::printf("%s", report.empty() ? "no fail points resolved yet\n"
                                       : report.c_str());
      Prompt(false);
      continue;
    }
    if (line.rfind("\\r", 0) == 0) {
      // Flight recorder dump: \r <file> writes JSON there; bare \r prints
      // a summary of what the ring currently holds.
      std::string path = line.size() > 3 ? line.substr(3) : std::string();
      obs::FlightRecorder& flight = obs::DefaultFlightRecorder();
      if (path.empty()) {
        std::printf("flight recorder: %llu event(s) recorded, capacity %zu\n",
                    static_cast<unsigned long long>(flight.total_recorded()),
                    flight.capacity());
      } else {
        const Status status = flight.Dump(path, "shell request");
        if (!status.ok()) {
          std::printf("error: %s\n", status.ToString().c_str());
        } else {
          std::printf("flight recorder dumped to %s\n", path.c_str());
        }
      }
      Prompt(false);
      continue;
    }
    pending += line;
    pending += '\n';
    // Execute once the buffered input ends a statement.
    const auto last_non_ws = pending.find_last_not_of(" \t\n\r");
    if (last_non_ws != std::string::npos && pending[last_non_ws] == ';') {
      const Status status = interpreter.RunScript(pending);
      if (!status.ok()) {
        std::printf("error: %s\n", status.ToString().c_str());
      }
      // Re-arm after an aborted script so the next statement runs fresh.
      if (g_cancel_token->requested()) g_cancel_token->Reset();
      pending.clear();
    }
    Prompt(!pending.empty());
  }
  if (!trace_path.empty()) {
    const Status status = obs::DefaultTracer().WriteChromeTrace(trace_path);
    if (!status.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %zu task spans to %s\n",
                obs::DefaultTracer().Spans().size(), trace_path.c_str());
  }
  // Ordered observability teardown: final metrics export on disk and the
  // slow log silenced before static destruction starts.
  if (exporter != nullptr) exporter->StopAndJoin();
  obs::GlobalSlowLog().Quiesce();
  std::printf("\nbye\n");
  return 0;
}
