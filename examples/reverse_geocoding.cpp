/// \file reverse_geocoding.cpp
/// Demo scenario from §4: "(reverse) geocoding, spatio-temporal join and
/// aggregation". A synthetic gazetteer of named regions stands in for the
/// real-world administrative boundaries; events are reverse-geocoded with a
/// containedBy join, counted per region with the pair-RDD aggregation, and
/// events outside every region fall back to their nearest region via the
/// kNN join.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "engine/pair_rdd.h"
#include "io/generator.h"
#include "partition/grid_partitioner.h"
#include "spatial_rdd/join.h"
#include "spatial_rdd/knn_join.h"

using namespace stark;

int main() {
  Context ctx;
  const Envelope world(-180, -90, 180, 90);

  // -- Synthetic gazetteer: named polygon regions ---------------------------
  PolygonsOptions pgen;
  pgen.count = 30;
  pgen.universe = world;
  pgen.min_radius = 8;
  pgen.max_radius = 25;
  pgen.seed = 21;
  auto shapes = GenerateRandomPolygons(pgen);
  std::vector<std::pair<STObject, std::string>> gazetteer;
  for (size_t i = 0; i < shapes.size(); ++i) {
    gazetteer.emplace_back(shapes[i], "region-" + std::to_string(i));
  }
  auto regions =
      SpatialRDD<std::string>::FromVector(&ctx, gazetteer).Cache();

  // -- Events ---------------------------------------------------------------
  SkewedPointsOptions gen;
  gen.count = 25'000;
  gen.universe = world;
  gen.clusters = 8;
  gen.seed = 22;
  auto points = GenerateSkewedPoints(gen);
  std::vector<std::pair<STObject, int64_t>> events;
  for (size_t i = 0; i < points.size(); ++i) {
    events.emplace_back(points[i], static_cast<int64_t>(i));
  }
  auto grid = std::make_shared<GridPartitioner>(world, 6);
  auto event_rdd =
      SpatialRDD<int64_t>::FromVector(&ctx, events).PartitionBy(grid).Cache();

  // -- Reverse geocoding: event containedBy region --------------------------
  using E = std::pair<STObject, int64_t>;
  using R = std::pair<STObject, std::string>;
  auto geocoded = SpatialJoinProject(
      event_rdd, regions, JoinPredicate::ContainedBy(), {},
      [](const E& event, const R& region) {
        return std::pair<std::string, int64_t>(region.second, event.second);
      });

  // -- Aggregation: events per region (distributed reduceByKey) -------------
  auto per_region = ReduceByKey(
      geocoded.Map([](std::pair<std::string, int64_t>& kv) {
        return std::pair<std::string, int64_t>(std::move(kv.first), 1);
      }),
      [](int64_t a, int64_t b) { return a + b; });
  auto counts = per_region.Collect();
  std::sort(counts.begin(), counts.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::printf("reverse geocoding: %zu events matched a region\n",
              static_cast<size_t>(geocoded.Count()));
  std::printf("top regions by event count:\n");
  for (size_t i = 0; i < std::min<size_t>(5, counts.size()); ++i) {
    std::printf("  %-10s %lld events\n", counts[i].first.c_str(),
                static_cast<long long>(counts[i].second));
  }

  // -- Fallback: nearest region for unmatched events -------------------------
  std::set<int64_t> matched;
  for (const auto& [region, event_id] : geocoded.Collect()) {
    matched.insert(event_id);
  }
  std::vector<E> unmatched;
  for (const auto& e : events) {
    if (!matched.count(e.second)) unmatched.push_back(e);
  }
  std::printf("%zu events were outside every region; assigning nearest:\n",
              unmatched.size());
  auto lonely = SpatialRDD<int64_t>::FromVector(
      &ctx, {unmatched.begin(),
             unmatched.begin() +
                 static_cast<ptrdiff_t>(std::min<size_t>(5, unmatched.size()))},
      1);
  for (const auto& [event, matches] : KnnJoin(lonely, regions, 1).Collect()) {
    if (!matches.empty()) {
      std::printf("  event %lld -> %s (%.2f away)\n",
                  static_cast<long long>(event.second),
                  matches[0].second.second.c_str(), matches[0].first);
    }
  }
  std::printf("reverse geocoding done\n");
  return 0;
}
