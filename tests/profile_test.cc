// Tests for the hierarchical query profiler: collector stack semantics,
// JSON/tree rendering, and the engine integration — every TryRunTasks job
// run under an installed collector must append a ProfileNode with rows/
// partitions/retry accounting, nested under the statement node Piglet (or
// the test) pushed.
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/rdd.h"
#include "fault/failpoint.h"
#include "obs/profile.h"
#include "test_util.h"

namespace stark {
namespace {

using test::JsonObject;
using test::JsonValue;
using test::ParseJsonOrFail;

class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::DefaultFailPoints().DisarmAll(); }
  void TearDown() override { fault::DefaultFailPoints().DisarmAll(); }
};

// ---------------------------------------------------------------------------
// Collector semantics
// ---------------------------------------------------------------------------

TEST_F(ProfileTest, CollectorNestsJobsUnderPushedNodes) {
  obs::ProfileCollector collector("script");
  EXPECT_EQ(collector.root().label, "script");
  EXPECT_EQ(collector.root().kind, obs::ProfileNodeKind::kScript);

  obs::ProfileNode* stmt =
      collector.Push("A = FILTER ...", obs::ProfileNodeKind::kStatement);
  ASSERT_NE(stmt, nullptr);
  obs::ProfileNode job;
  job.label = "spatial.filter";
  job.rows_out = 42;
  collector.RecordJob(job);
  collector.Pop();

  obs::ProfileNode other;
  other.label = "rdd.count";
  collector.RecordJob(other);  // lands on the root, not the popped stmt

  ASSERT_EQ(collector.root().children.size(), 2u);
  const obs::ProfileNode& s = collector.root().children[0];
  EXPECT_EQ(s.kind, obs::ProfileNodeKind::kStatement);
  ASSERT_EQ(s.children.size(), 1u);
  EXPECT_EQ(s.children[0].label, "spatial.filter");
  EXPECT_EQ(s.children[0].rows_out, 42u);
  EXPECT_EQ(collector.root().children[1].label, "rdd.count");
}

TEST_F(ProfileTest, CollectorScopeInstallsAndRestores) {
  EXPECT_EQ(obs::CurrentProfileCollector(), nullptr);
  obs::ProfileCollector outer;
  {
    obs::ProfileCollectorScope outer_scope(&outer);
    EXPECT_EQ(obs::CurrentProfileCollector(), &outer);
    obs::ProfileCollector inner;
    {
      obs::ProfileCollectorScope inner_scope(&inner);
      EXPECT_EQ(obs::CurrentProfileCollector(), &inner);
    }
    EXPECT_EQ(obs::CurrentProfileCollector(), &outer);
  }
  EXPECT_EQ(obs::CurrentProfileCollector(), nullptr);
}

TEST_F(ProfileTest, RecursiveTotalsIncludeChildren) {
  obs::ProfileNode root;
  root.rows_out = 1;
  root.wall_ms = 1.0;
  obs::ProfileNode child;
  child.rows_out = 10;
  child.wall_ms = 2.5;
  obs::ProfileNode grandchild;
  grandchild.rows_out = 100;
  grandchild.wall_ms = 0.5;
  child.children.push_back(grandchild);
  root.children.push_back(child);
  EXPECT_EQ(root.TotalRowsOut(), 111u);
  EXPECT_DOUBLE_EQ(root.TotalWallMs(), 4.0);
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

TEST_F(ProfileTest, ProfileJsonRoundTripsWithHostileLabels) {
  obs::ProfileNode node;
  node.label = "stage \"quoted\"\nnewline";
  node.kind = obs::ProfileNodeKind::kJob;
  node.partitions = 4;
  node.rows_in = 1000;
  node.rows_out = 10;
  node.retries = 2;
  node.failed = true;
  node.error = "disk \\ gone";
  obs::ProfileNode child;
  child.label = "child";
  node.children.push_back(child);

  const JsonValue json = ParseJsonOrFail(obs::ProfileJson(node));
  ASSERT_TRUE(json.IsObject());
  const JsonObject& obj = json.AsObject();
  EXPECT_EQ(obj.at("label").AsString(), node.label);
  EXPECT_EQ(obj.at("partitions").AsNumber(), 4.0);
  EXPECT_EQ(obj.at("rows_in").AsNumber(), 1000.0);
  EXPECT_EQ(obj.at("rows_out").AsNumber(), 10.0);
  EXPECT_EQ(obj.at("retries").AsNumber(), 2.0);
  EXPECT_TRUE(obj.at("failed").AsBool());
  ASSERT_EQ(obj.at("children").AsArray().size(), 1u);
  EXPECT_EQ(
      obj.at("children").AsArray()[0].AsObject().at("label").AsString(),
      "child");
}

TEST_F(ProfileTest, FormatProfileTreeShowsHierarchyAndStats) {
  obs::ProfileNode root;
  root.label = "script";
  root.kind = obs::ProfileNodeKind::kScript;
  obs::ProfileNode stmt;
  stmt.label = "B = FILTER A BY ...;";
  stmt.kind = obs::ProfileNodeKind::kStatement;
  obs::ProfileNode job;
  job.label = "spatial.filter";
  job.partitions = 8;
  job.rows_in = 5000;
  job.rows_out = 312;
  job.retries = 1;
  stmt.children.push_back(job);
  root.children.push_back(stmt);

  const std::string tree = obs::FormatProfileTree(root);
  EXPECT_NE(tree.find("script"), std::string::npos);
  EXPECT_NE(tree.find("B = FILTER A BY ...;"), std::string::npos);
  EXPECT_NE(tree.find("spatial.filter"), std::string::npos);
  EXPECT_NE(tree.find("parts=8"), std::string::npos);
  EXPECT_NE(tree.find("rows=5000/312"), std::string::npos);
  EXPECT_NE(tree.find("retries=1"), std::string::npos);
  // Jobs indent deeper than statements.
  EXPECT_LT(tree.find("B = FILTER"), tree.find("spatial.filter"));
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

TEST_F(ProfileTest, EngineJobsAppendProfileNodes) {
  Context ctx(2);
  obs::ProfileCollector collector;
  {
    obs::ProfileCollectorScope scope(&collector);
    auto rdd = MakeRDD(&ctx, std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}, 4);
    EXPECT_EQ(rdd.Count(), 8u);
  }
  ASSERT_FALSE(collector.root().children.empty());
  const obs::ProfileNode& job = collector.root().children.back();
  EXPECT_EQ(job.kind, obs::ProfileNodeKind::kJob);
  EXPECT_EQ(job.label, "rdd.count");
  EXPECT_EQ(job.partitions, 4u);
  EXPECT_EQ(job.rows_in, 8u);
  EXPECT_FALSE(job.failed);
  EXPECT_GE(job.wall_ms, 0.0);
  // Every successful task reported its duration into the histogram.
  EXPECT_EQ(job.task_ns.count, 4u);
}

TEST_F(ProfileTest, NoCollectorMeansNoCollection) {
  Context ctx(2);
  auto rdd = MakeRDD(&ctx, std::vector<int>{1, 2, 3}, 2);
  EXPECT_EQ(rdd.Count(), 3u);  // must not crash or leak nodes anywhere
  EXPECT_EQ(obs::CurrentProfileCollector(), nullptr);
}

TEST_F(ProfileTest, RetriesAndFailuresLandInTheNode) {
  Context ctx(2);
  obs::ProfileCollector collector;
  {
    obs::ProfileCollectorScope scope(&collector);
    // Partition 0 fails once then succeeds: the job retries and succeeds.
    std::atomic<int> attempts{0};
    const Status ok_status =
        ctx.TryRunTasks("test.profile.retry", 2, [&](size_t p) {
          if (p == 0 && attempts.fetch_add(1) == 0) {
            throw StatusError(Status::IOError("transient"));
          }
        });
    EXPECT_TRUE(ok_status.ok()) << ok_status.ToString();

    // All partitions always fail: the job resolves non-OK.
    const Status bad_status =
        ctx.TryRunTasks("test.profile.fail", 2, [&](size_t) {
          throw StatusError(Status::IOError("permanent"));
        });
    EXPECT_FALSE(bad_status.ok());
  }
  ASSERT_EQ(collector.root().children.size(), 2u);
  const obs::ProfileNode& retried = collector.root().children[0];
  EXPECT_EQ(retried.label, "test.profile.retry");
  EXPECT_GE(retried.retries, 1u);
  EXPECT_FALSE(retried.failed);
  const obs::ProfileNode& failed = collector.root().children[1];
  EXPECT_EQ(failed.label, "test.profile.fail");
  EXPECT_TRUE(failed.failed);
  EXPECT_NE(failed.error.find("permanent"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Slow-log configuration
// ---------------------------------------------------------------------------

TEST_F(ProfileTest, SlowLogThresholdsRoundTrip) {
  obs::SlowLogConfig config;
  EXPECT_EQ(config.slow_task_ms(), 0.0);  // disabled by default (no env)
  config.set_slow_task_ms(12.5);
  config.set_slow_query_ms(250);
  EXPECT_DOUBLE_EQ(config.slow_task_ms(), 12.5);
  EXPECT_DOUBLE_EQ(config.slow_query_ms(), 250.0);
  config.set_slow_task_ms(0);
  EXPECT_EQ(config.slow_task_ms(), 0.0);
}

TEST_F(ProfileTest, SlowTaskCounterAdvancesPastThreshold) {
  const double prev = obs::GlobalSlowLog().slow_task_ms();
  obs::GlobalSlowLog().set_slow_task_ms(1);  // 1 ms threshold
  obs::Counter* slow = obs::DefaultMetrics().GetCounter("engine.task.slow");
  const uint64_t before = slow->Value();
  {
    Context ctx(2);
    obs::ProfileCollector collector;
    obs::ProfileCollectorScope scope(&collector);
    ctx.TryRunTasks("test.profile.slow", 2, [](size_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    });
  }
  obs::GlobalSlowLog().set_slow_task_ms(prev);
  EXPECT_GE(slow->Value(), before + 2);
}

}  // namespace
}  // namespace stark
