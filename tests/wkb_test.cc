// Tests for the WKB reader/writer: round trips for every geometry type,
// cross-format equivalence with WKT, endianness handling, hex transport,
// and malformed-input robustness (including a fuzz sweep).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/wkb.h"
#include "geometry/wkt.h"

namespace stark {
namespace {

Geometry G(const char* wkt) { return ParseWkt(wkt).ValueOrDie(); }

void RoundTrip(const Geometry& g) {
  const std::vector<char> wkb = WriteWkb(g);
  auto back = ParseWkb(wkb);
  ASSERT_TRUE(back.ok()) << g.ToWkt() << ": " << back.status().ToString();
  EXPECT_EQ(back.ValueOrDie(), g) << g.ToWkt();
}

TEST(WkbTest, AllTypesRoundTrip) {
  RoundTrip(G("POINT (1.5 -2.25)"));
  RoundTrip(G("LINESTRING (0 0, 1 1, 2 0)"));
  RoundTrip(G("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))"));
  RoundTrip(
      G("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))"));
  RoundTrip(G("MULTIPOINT (1 2, 3 4, 5 6)"));
  RoundTrip(G("MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)), "
              "((5 5, 6 5, 6 6, 5 5)))"));
}

TEST(WkbTest, KnownPointEncoding) {
  // Little-endian WKB for POINT(1 2):
  // 01 01000000 000000000000F03F 0000000000000040
  const std::string hex = WriteWkbHex(G("POINT (1 2)"));
  EXPECT_EQ(hex, "0101000000000000000000F03F0000000000000040");
}

TEST(WkbTest, HexRoundTrip) {
  const Geometry g = G("POLYGON ((0 0, 4 0, 4 4, 0 0))");
  auto back = ParseWkbHex(WriteWkbHex(g));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.ValueOrDie(), g);
  // Lower-case hex is accepted too.
  std::string lower = WriteWkbHex(g);
  for (char& c : lower) c = static_cast<char>(std::tolower(c));
  EXPECT_TRUE(ParseWkbHex(lower).ok());
}

TEST(WkbTest, BigEndianInputIsAccepted) {
  // Big-endian WKB for POINT(1 2):
  // 00 00000001 3FF0000000000000 4000000000000000
  auto g = ParseWkbHex("00000000013FF00000000000004000000000000000");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g.ValueOrDie(), G("POINT (1 2)"));
}

TEST(WkbTest, Errors) {
  EXPECT_FALSE(ParseWkb(nullptr, 0).ok());
  EXPECT_FALSE(ParseWkbHex("01").ok());               // truncated
  EXPECT_FALSE(ParseWkbHex("0x5").ok());              // bad characters
  EXPECT_FALSE(ParseWkbHex("ABC").ok());              // odd length
  EXPECT_FALSE(ParseWkbHex("0109000000").ok());       // unsupported type 9
  EXPECT_FALSE(ParseWkbHex("0201000000").ok());       // bad order marker 2
  // Trailing garbage after a valid point.
  EXPECT_FALSE(
      ParseWkbHex("0101000000000000000000F03F0000000000000040FF").ok());
}

TEST(WkbTest, WktAndWkbAgree) {
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const double x = rng.Uniform(-100, 100);
    const double y = rng.Uniform(-100, 100);
    Geometry g = trial % 2 == 0
                     ? Geometry::MakePoint(x, y)
                     : Geometry::MakePolygon({{x, y},
                                              {x + 2, y},
                                              {x + 2, y + 2},
                                              {x, y + 2}})
                           .ValueOrDie();
    // WKT and WKB must decode to the same geometry.
    EXPECT_EQ(ParseWkt(g.ToWkt()).ValueOrDie(),
              ParseWkb(WriteWkb(g)).ValueOrDie());
  }
}

// Fuzz sweep: random mutations of valid WKB must never crash — every
// outcome is either a parsed geometry or a clean ParseError.
TEST(WkbFuzzTest, MutatedBuffersNeverCrash) {
  Rng rng(18);
  const std::vector<char> base =
      WriteWkb(G("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), "
                 "(2 2, 4 2, 4 4, 2 4, 2 2))"));
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<char> fuzzed = base;
    const int mutations = static_cast<int>(rng.UniformInt(1, 8));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos =
          static_cast<size_t>(rng.UniformInt(0, fuzzed.size() - 1));
      fuzzed[pos] = static_cast<char>(rng.UniformInt(0, 255));
    }
    if (rng.Bernoulli(0.3)) {
      fuzzed.resize(static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(fuzzed.size()))));
    }
    auto result = ParseWkb(fuzzed);  // must not crash or hang
    if (!result.ok()) {
      // Either a format error or a geometry-validity error (e.g. a mutated
      // ring with too few points) — never anything else.
      const auto code = result.status().code();
      EXPECT_TRUE(code == StatusCode::kParseError ||
                  code == StatusCode::kInvalidArgument);
    }
  }
}

// Same fuzz discipline for the WKT parser.
TEST(WktFuzzTest, MutatedStringsNeverCrash) {
  Rng rng(19);
  const std::string base =
      "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string fuzzed = base;
    const int mutations = static_cast<int>(rng.UniformInt(1, 6));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos =
          static_cast<size_t>(rng.UniformInt(0, fuzzed.size() - 1));
      fuzzed[pos] = static_cast<char>(rng.UniformInt(32, 126));
    }
    auto result = ParseWkt(fuzzed);  // must not crash or hang
    if (!result.ok()) {
      const auto code = result.status().code();
      EXPECT_TRUE(code == StatusCode::kParseError ||
                  code == StatusCode::kInvalidArgument)
          << fuzzed;
    }
  }
}

}  // namespace
}  // namespace stark
