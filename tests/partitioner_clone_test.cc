// Regression tests for the PartitionBy partitioner-clone fix: growing the
// extents of the *shared* partitioner instance used to leak one dataset's
// extent growth into every later shuffle using the same instance, silently
// defeating partition pruning for disjoint data.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "partition/bsp_partitioner.h"
#include "partition/grid_partitioner.h"
#include "spatial_rdd/spatial_rdd.h"

namespace stark {
namespace {

using Element = std::pair<STObject, int64_t>;

// Dataset A: one oversized polygon per grid cell, each growing its home
// partition's extent far beyond the cell bounds.
std::vector<Element> BigPolygons(const Envelope& universe, size_t cells) {
  std::vector<Element> out;
  const double cw = universe.Width() / static_cast<double>(cells);
  const double ch = universe.Height() / static_cast<double>(cells);
  int64_t id = 0;
  for (size_t cy = 0; cy < cells; ++cy) {
    for (size_t cx = 0; cx < cells; ++cx) {
      const double x = universe.min_x() + (static_cast<double>(cx) + 0.5) * cw;
      const double y = universe.min_y() + (static_cast<double>(cy) + 0.5) * ch;
      const Envelope big(std::max(universe.min_x(), x - 45.0),
                         std::max(universe.min_y(), y - 45.0),
                         std::min(universe.max_x(), x + 45.0),
                         std::min(universe.max_y(), y + 45.0));
      out.emplace_back(STObject(Geometry::MakeBox(big)), id++);
    }
  }
  return out;
}

// Dataset B: points confined to the upper-right corner, disjoint from the
// query region used below.
std::vector<Element> CornerPoints() {
  std::vector<Element> out;
  for (int64_t i = 0; i < 100; ++i) {
    const double t = static_cast<double>(i) / 100.0;
    out.emplace_back(
        STObject(Geometry::MakePoint(80.0 + 15.0 * t, 80.0 + 15.0 * t)), i);
  }
  return out;
}

TEST(PartitionerCloneTest, SharedPartitionerReuseKeepsFullPruning) {
  Context ctx(4);
  const Envelope universe(0, 0, 100, 100);
  auto grid = std::make_shared<GridPartitioner>(universe, 4);

  // First shuffle: the oversized polygons would grow almost every extent to
  // cover most of the universe — on the clone, not on `grid` itself.
  auto parted_a =
      SpatialRDD<int64_t>::FromVector(&ctx, BigPolygons(universe, 4), 2)
          .PartitionBy(grid);
  // Second shuffle with the *same* instance over disjoint point data.
  auto parted_b = SpatialRDD<int64_t>::FromVector(&ctx, CornerPoints(), 2)
                      .PartitionBy(grid);

  // The shared instance was never mutated: extents still equal bounds.
  for (size_t i = 0; i < grid->NumPartitions(); ++i) {
    EXPECT_EQ(grid->PartitionExtent(i), grid->PartitionBounds(i)) << i;
  }

  // A query over the lower-left cell must prune every other partition of
  // dataset B — before the fix, A's stale extents covered the query region
  // and nothing was pruned.
  QueryStats stats;
  const STObject query(Geometry::MakeBox(Envelope(1, 1, 10, 10)));
  auto hits = parted_b.Filter(query, JoinPredicate::Intersects(), &stats);
  EXPECT_EQ(hits.Count(), 0u);
  EXPECT_EQ(stats.partitions_pruned.load(), grid->NumPartitions() - 1);
  EXPECT_LE(stats.partitions_scanned.load(), 1u);

  // Dataset A itself still joins/filters correctly through its clone: its
  // partitioner really does carry the grown extents.
  ASSERT_NE(parted_a.partitioner(), nullptr);
  EXPECT_NE(parted_a.partitioner().get(), grid.get());
  bool any_grown = false;
  for (size_t i = 0; i < parted_a.partitioner()->NumPartitions(); ++i) {
    if (!(parted_a.partitioner()->PartitionExtent(i) ==
          parted_a.partitioner()->PartitionBounds(i))) {
      any_grown = true;
    }
  }
  EXPECT_TRUE(any_grown);
}

TEST(PartitionerCloneTest, CloneSharesAssignmentButNotExtents) {
  const Envelope universe(0, 0, 100, 100);
  std::vector<Coordinate> centroids;
  for (int i = 0; i < 1000; ++i) {
    const double t = static_cast<double>(i) / 1000.0;
    centroids.emplace_back(Coordinate{100.0 * t, 100.0 * t * t});
  }
  BSPartitioner::Options options;
  options.max_cost = 100;
  const auto bsp = std::make_shared<BSPartitioner>(universe, centroids,
                                                   options);
  const auto clone = bsp->Clone();

  ASSERT_EQ(clone->NumPartitions(), bsp->NumPartitions());
  for (const Coordinate& c : centroids) {
    EXPECT_EQ(clone->PartitionFor(c), bsp->PartitionFor(c));
  }
  // Growing the clone's extents leaves the original untouched.
  clone->GrowExtent(0, Envelope(-50, -50, 150, 150));
  EXPECT_EQ(bsp->PartitionExtent(0), bsp->PartitionBounds(0));
  EXPECT_TRUE(clone->PartitionExtent(0).Contains(Envelope(-50, -50, 150, 150)));
  // And ResetExtents drops the growth again.
  clone->ResetExtents();
  EXPECT_EQ(clone->PartitionExtent(0), clone->PartitionBounds(0));
}

}  // namespace
}  // namespace stark
