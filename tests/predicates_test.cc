// Tests for the spatial predicates: Intersects, Contains, Distance.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/predicates.h"
#include "geometry/wkt.h"

namespace stark {
namespace {

Geometry G(const char* wkt) { return ParseWkt(wkt).ValueOrDie(); }

// ---------------------------------------------------------------------------
// Intersects
// ---------------------------------------------------------------------------

TEST(IntersectsTest, PointPoint) {
  EXPECT_TRUE(Intersects(G("POINT (1 2)"), G("POINT (1 2)")));
  EXPECT_FALSE(Intersects(G("POINT (1 2)"), G("POINT (1 2.1)")));
}

TEST(IntersectsTest, PointLine) {
  const Geometry line = G("LINESTRING (0 0, 4 4)");
  EXPECT_TRUE(Intersects(G("POINT (2 2)"), line));
  EXPECT_TRUE(Intersects(line, G("POINT (0 0)")));
  EXPECT_FALSE(Intersects(G("POINT (2 3)"), line));
}

TEST(IntersectsTest, PointPolygon) {
  const Geometry poly = G("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  EXPECT_TRUE(Intersects(G("POINT (2 2)"), poly));
  EXPECT_TRUE(Intersects(G("POINT (0 2)"), poly));   // boundary
  EXPECT_FALSE(Intersects(G("POINT (5 2)"), poly));
}

TEST(IntersectsTest, PointInPolygonHole) {
  const Geometry poly =
      G("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (3 3, 7 3, 7 7, 3 7, 3 3))");
  EXPECT_FALSE(Intersects(G("POINT (5 5)"), poly));  // inside the hole
  EXPECT_TRUE(Intersects(G("POINT (1 1)"), poly));
  EXPECT_TRUE(Intersects(G("POINT (3 5)"), poly));   // hole boundary
}

TEST(IntersectsTest, LineLine) {
  EXPECT_TRUE(Intersects(G("LINESTRING (0 0, 4 4)"),
                         G("LINESTRING (0 4, 4 0)")));
  EXPECT_FALSE(Intersects(G("LINESTRING (0 0, 1 0)"),
                          G("LINESTRING (0 1, 1 1)")));
}

TEST(IntersectsTest, LinePolygon) {
  const Geometry poly = G("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  EXPECT_TRUE(Intersects(G("LINESTRING (-1 2, 5 2)"), poly));  // crosses
  EXPECT_TRUE(Intersects(G("LINESTRING (1 1, 3 3)"), poly));   // fully inside
  EXPECT_FALSE(Intersects(G("LINESTRING (5 5, 6 6)"), poly));
}

TEST(IntersectsTest, PolygonPolygonOverlap) {
  const Geometry a = G("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  EXPECT_TRUE(Intersects(a, G("POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))")));
  EXPECT_FALSE(Intersects(a, G("POLYGON ((5 5, 6 5, 6 6, 5 6, 5 5))")));
}

TEST(IntersectsTest, PolygonPolygonNested) {
  const Geometry outer = G("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
  const Geometry inner = G("POLYGON ((4 4, 6 4, 6 6, 4 6, 4 4))");
  EXPECT_TRUE(Intersects(outer, inner));
  EXPECT_TRUE(Intersects(inner, outer));
}

TEST(IntersectsTest, PolygonPolygonTouchingEdge) {
  const Geometry a = G("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))");
  const Geometry b = G("POLYGON ((2 0, 4 0, 4 2, 2 2, 2 0))");
  EXPECT_TRUE(Intersects(a, b));
}

TEST(IntersectsTest, MultiGeometryAnyPart) {
  const Geometry mp = G("MULTIPOINT (0 0, 10 10)");
  const Geometry poly = G("POLYGON ((9 9, 11 9, 11 11, 9 11, 9 9))");
  EXPECT_TRUE(Intersects(mp, poly));
  EXPECT_FALSE(
      Intersects(G("MULTIPOINT (0 0, 1 1)"), poly));
}

// ---------------------------------------------------------------------------
// Contains
// ---------------------------------------------------------------------------

TEST(ContainsTest, PolygonContainsPoint) {
  const Geometry poly = G("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  EXPECT_TRUE(Contains(poly, G("POINT (2 2)")));
  EXPECT_TRUE(Contains(poly, G("POINT (4 4)")));  // covers semantics
  EXPECT_FALSE(Contains(poly, G("POINT (5 2)")));
  EXPECT_FALSE(Contains(G("POINT (2 2)"), poly));  // point can't contain poly
}

TEST(ContainsTest, PolygonWithHoleExcludesHole) {
  const Geometry poly =
      G("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (3 3, 7 3, 7 7, 3 7, 3 3))");
  EXPECT_FALSE(Contains(poly, G("POINT (5 5)")));
  EXPECT_TRUE(Contains(poly, G("POINT (1 5)")));
}

TEST(ContainsTest, PolygonContainsLine) {
  const Geometry poly = G("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
  EXPECT_TRUE(Contains(poly, G("LINESTRING (1 1, 9 9)")));
  EXPECT_FALSE(Contains(poly, G("LINESTRING (1 1, 11 11)")));  // leaves
}

TEST(ContainsTest, PolygonDoesNotContainLineCrossingHole) {
  const Geometry poly =
      G("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 6 4, 6 6, 4 6, 4 4))");
  EXPECT_FALSE(Contains(poly, G("LINESTRING (1 5, 9 5)")));  // spans the hole
  EXPECT_TRUE(Contains(poly, G("LINESTRING (1 1, 9 1)")));
}

TEST(ContainsTest, PolygonContainsPolygon) {
  const Geometry outer = G("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
  EXPECT_TRUE(Contains(outer, G("POLYGON ((2 2, 5 2, 5 5, 2 5, 2 2))")));
  EXPECT_FALSE(Contains(outer, G("POLYGON ((8 8, 12 8, 12 12, 8 12, 8 8))")));
  EXPECT_TRUE(Contains(outer, outer));  // covers itself
}

TEST(ContainsTest, OuterHoleBlocksContainment) {
  const Geometry outer =
      G("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 6 4, 6 6, 4 6, 4 4))");
  // The candidate fully covers the outer polygon's hole.
  EXPECT_FALSE(Contains(outer, G("POLYGON ((3 3, 7 3, 7 7, 3 7, 3 3))")));
  // A candidate away from the hole is contained.
  EXPECT_TRUE(Contains(outer, G("POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))")));
}

TEST(ContainsTest, LineContainsPointAndSubline) {
  const Geometry line = G("LINESTRING (0 0, 4 4, 8 4)");
  EXPECT_TRUE(Contains(line, G("POINT (2 2)")));
  EXPECT_TRUE(Contains(line, G("LINESTRING (1 1, 3 3)")));
  EXPECT_TRUE(Contains(line, G("LINESTRING (2 2, 4 4, 6 4)")));
  EXPECT_FALSE(Contains(line, G("LINESTRING (0 0, 5 5)")));
  EXPECT_FALSE(Contains(line, G("POINT (1 2)")));
}

TEST(ContainsTest, PointContainsOnlyEqualPoint) {
  EXPECT_TRUE(Contains(G("POINT (1 1)"), G("POINT (1 1)")));
  EXPECT_FALSE(Contains(G("POINT (1 1)"), G("POINT (2 2)")));
  EXPECT_FALSE(Contains(G("POINT (1 1)"), G("LINESTRING (0 0, 2 2)")));
}

TEST(ContainsTest, MultiPolygonContainsPerPart) {
  const Geometry mp = G(
      "MULTIPOLYGON (((0 0, 4 0, 4 4, 0 4, 0 0)), "
      "((10 10, 14 10, 14 14, 10 14, 10 10)))");
  EXPECT_TRUE(Contains(mp, G("POINT (2 2)")));
  EXPECT_TRUE(Contains(mp, G("POINT (12 12)")));
  EXPECT_TRUE(Contains(mp, G("MULTIPOINT (2 2, 12 12)")));
  EXPECT_FALSE(Contains(mp, G("POINT (7 7)")));  // in the gap
}

TEST(ContainedByTest, IsReverseOfContains) {
  const Geometry poly = G("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  const Geometry pt = G("POINT (1 1)");
  EXPECT_TRUE(ContainedBy(pt, poly));
  EXPECT_FALSE(ContainedBy(poly, pt));
}

// ---------------------------------------------------------------------------
// Distance
// ---------------------------------------------------------------------------

TEST(DistanceTest, PointPoint) {
  EXPECT_DOUBLE_EQ(Distance(G("POINT (0 0)"), G("POINT (3 4)")), 5.0);
}

TEST(DistanceTest, PointLine) {
  EXPECT_DOUBLE_EQ(Distance(G("POINT (2 3)"), G("LINESTRING (0 0, 4 0)")),
                   3.0);
}

TEST(DistanceTest, PointPolygonInsideIsZero) {
  const Geometry poly = G("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  EXPECT_EQ(Distance(G("POINT (2 2)"), poly), 0.0);
  EXPECT_DOUBLE_EQ(Distance(G("POINT (7 2)"), poly), 3.0);
}

TEST(DistanceTest, PointInHoleMeasuresToHoleRing) {
  const Geometry poly =
      G("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (3 3, 7 3, 7 7, 3 7, 3 3))");
  EXPECT_DOUBLE_EQ(Distance(G("POINT (5 5)"), poly), 2.0);
}

TEST(DistanceTest, PolygonPolygonGap) {
  const Geometry a = G("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))");
  const Geometry b = G("POLYGON ((4 0, 5 0, 5 1, 4 1, 4 0))");
  EXPECT_DOUBLE_EQ(Distance(a, b), 3.0);
  EXPECT_EQ(Distance(a, a), 0.0);
}

TEST(DistanceTest, LineLine) {
  EXPECT_DOUBLE_EQ(Distance(G("LINESTRING (0 0, 1 0)"),
                            G("LINESTRING (0 2, 1 2)")),
                   2.0);
}

// ---------------------------------------------------------------------------
// Properties over random geometries
// ---------------------------------------------------------------------------

class RandomGeometrySource {
 public:
  explicit RandomGeometrySource(uint64_t seed) : rng_(seed) {}

  Geometry Next() {
    switch (rng_.UniformInt(0, 3)) {
      case 0:
        return Geometry::MakePoint(Coord());
      case 1: {
        std::vector<Coordinate> pts(
            static_cast<size_t>(rng_.UniformInt(2, 5)));
        for (auto& p : pts) p = Coord();
        return Geometry::MakeLineString(std::move(pts)).ValueOrDie();
      }
      case 2: {
        std::vector<Coordinate> pts(
            static_cast<size_t>(rng_.UniformInt(1, 4)));
        for (auto& p : pts) p = Coord();
        return Geometry::MakeMultiPoint(std::move(pts)).ValueOrDie();
      }
      default: {
        const Coordinate c = Coord();
        const double w = rng_.Uniform(0.5, 3.0);
        const double h = rng_.Uniform(0.5, 3.0);
        return Geometry::MakePolygon(
                   {{c.x, c.y}, {c.x + w, c.y}, {c.x + w, c.y + h},
                    {c.x, c.y + h}})
            .ValueOrDie();
      }
    }
  }

  Coordinate Coord() {
    return {rng_.Uniform(-8, 8), rng_.Uniform(-8, 8)};
  }

 private:
  Rng rng_;
};

TEST(PredicatePropertyTest, IntersectsIsSymmetric) {
  RandomGeometrySource source(21);
  for (int trial = 0; trial < 500; ++trial) {
    const Geometry a = source.Next();
    const Geometry b = source.Next();
    EXPECT_EQ(Intersects(a, b), Intersects(b, a))
        << a.ToWkt() << " vs " << b.ToWkt();
  }
}

TEST(PredicatePropertyTest, ContainsImpliesIntersects) {
  RandomGeometrySource source(22);
  for (int trial = 0; trial < 500; ++trial) {
    const Geometry a = source.Next();
    const Geometry b = source.Next();
    if (Contains(a, b)) {
      EXPECT_TRUE(Intersects(a, b)) << a.ToWkt() << " vs " << b.ToWkt();
    }
  }
}

TEST(PredicatePropertyTest, DistanceZeroIffIntersects) {
  RandomGeometrySource source(23);
  for (int trial = 0; trial < 500; ++trial) {
    const Geometry a = source.Next();
    const Geometry b = source.Next();
    const double d = Distance(a, b);
    EXPECT_GE(d, 0.0);
    EXPECT_EQ(d == 0.0, Intersects(a, b))
        << a.ToWkt() << " vs " << b.ToWkt() << " dist=" << d;
  }
}

TEST(PredicatePropertyTest, DistanceIsSymmetric) {
  RandomGeometrySource source(24);
  for (int trial = 0; trial < 500; ++trial) {
    const Geometry a = source.Next();
    const Geometry b = source.Next();
    EXPECT_DOUBLE_EQ(Distance(a, b), Distance(b, a));
  }
}

TEST(PredicatePropertyTest, SelfRelations) {
  RandomGeometrySource source(25);
  for (int trial = 0; trial < 200; ++trial) {
    const Geometry g = source.Next();
    EXPECT_TRUE(Intersects(g, g)) << g.ToWkt();
    EXPECT_EQ(Distance(g, g), 0.0) << g.ToWkt();
  }
}

// Every geometry is contained by (a box around) its envelope.
TEST(PredicatePropertyTest, EnvelopeBoxCoversGeometry) {
  RandomGeometrySource source(26);
  for (int trial = 0; trial < 300; ++trial) {
    const Geometry g = source.Next();
    const Geometry box = Geometry::MakeBox(g.envelope().Expanded(0.001));
    EXPECT_TRUE(Contains(box, g)) << g.ToWkt();
    EXPECT_TRUE(Intersects(box, g)) << g.ToWkt();
  }
}

}  // namespace
}  // namespace stark
