// Tests for the always-on flight recorder: ring wrap/overwrite semantics,
// field round-trips through the packed seqlock slots, JSON dumps, and the
// post-mortem acceptance path — a job that dies on its deadline must leave
// a dump on disk holding the straggler's claim events plus the retry
// breadcrumbs of earlier jobs, with no opt-in from the caller.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/rdd.h"
#include "fault/failpoint.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace stark {
namespace {

using obs::FlightEvent;
using obs::FlightEventKind;
using obs::FlightRecorder;
using test::JsonArray;
using test::JsonObject;
using test::JsonValue;
using test::ParseJsonOrFail;

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::DefaultFailPoints().DisarmAll(); }
  void TearDown() override {
    fault::DefaultFailPoints().DisarmAll();
    obs::DefaultFlightRecorder().set_auto_dump_path("");
  }
};

TEST_F(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(1).capacity(), 64u);
  EXPECT_EQ(FlightRecorder(64).capacity(), 64u);
  EXPECT_EQ(FlightRecorder(65).capacity(), 128u);
  EXPECT_EQ(FlightRecorder(8192).capacity(), 8192u);
}

TEST_F(FlightRecorderTest, RecordTaskRoundTripsAllFields) {
  FlightRecorder ring(64);
  ring.RecordTask(FlightEventKind::kRetry, /*job=*/7, /*partition=*/123456,
                  /*copy=*/2, /*attempt=*/3, /*worker=*/5,
                  /*value=*/0xDEADBEEFCAFEBABEull, "disk gone");
  ring.RecordTask(FlightEventKind::kClaim, 8, 0, 1, 1, /*worker=*/-1);
  const std::vector<FlightEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  const FlightEvent& e = events[0];
  EXPECT_EQ(e.kind, FlightEventKind::kRetry);
  EXPECT_EQ(e.job, 7u);
  EXPECT_EQ(e.partition, 123456u);
  EXPECT_EQ(e.copy, 2u);
  EXPECT_EQ(e.attempt, 3u);
  EXPECT_EQ(e.worker, 5);
  EXPECT_EQ(e.value, 0xDEADBEEFCAFEBABEull);
  EXPECT_STREQ(e.detail, "disk gone");
  EXPECT_GT(e.ts_ns, 0u);
  // Driver-thread events keep the -1 sentinel through the packed slot.
  EXPECT_EQ(events[1].worker, -1);
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
}

TEST_F(FlightRecorderTest, LongDetailIsTruncatedNotOverrun) {
  FlightRecorder ring(64);
  const std::string longish(100, 'x');
  ring.RecordTask(FlightEventKind::kTaskFail, 1, 0, 1, 1, 0, 0,
                  longish.c_str());
  const std::vector<FlightEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].detail),
            std::string(FlightEvent::kDetailSize - 1, 'x'));
}

TEST_F(FlightRecorderTest, RingWrapsKeepingTheNewestEvents) {
  FlightRecorder ring(64);
  for (uint64_t i = 0; i < 100; ++i) {
    ring.RecordTask(FlightEventKind::kFinish, /*job=*/1, /*partition=*/0, 1, 1,
                    0, /*value=*/i);
  }
  EXPECT_EQ(ring.total_recorded(), 100u);
  const std::vector<FlightEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 64u);
  // Oldest-first: the survivors are exactly events 36..99.
  EXPECT_EQ(events.front().value, 36u);
  EXPECT_EQ(events.back().value, 99u);
}

TEST_F(FlightRecorderTest, DisableGatesRecording) {
  FlightRecorder ring(64);
  ring.Disable();
  ring.RecordTask(FlightEventKind::kClaim, 1, 0, 1, 1, 0);
  EXPECT_EQ(ring.total_recorded(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
  ring.Enable();
  ring.RecordTask(FlightEventKind::kClaim, 1, 0, 1, 1, 0);
  EXPECT_EQ(ring.Snapshot().size(), 1u);
}

TEST_F(FlightRecorderTest, DumpJsonRoundTrips) {
  FlightRecorder ring(64);
  ring.RecordTask(FlightEventKind::kWorkerDeath, 3, 2, 1, 1, 4, 0,
                  "say \"ow\"");
  const JsonValue json = ParseJsonOrFail(ring.DumpJson("test \"reason\""));
  ASSERT_TRUE(json.IsObject());
  const JsonObject& obj = json.AsObject();
  EXPECT_EQ(obj.at("reason").AsString(), "test \"reason\"");
  EXPECT_EQ(obj.at("capacity").AsNumber(), 64.0);
  EXPECT_EQ(obj.at("recorded").AsNumber(), 1.0);
  const JsonArray& events = obj.at("events").AsArray();
  ASSERT_EQ(events.size(), 1u);
  const JsonObject& e = events[0].AsObject();
  EXPECT_EQ(e.at("kind").AsString(), "worker_death");
  EXPECT_EQ(e.at("job").AsNumber(), 3.0);
  EXPECT_EQ(e.at("partition").AsNumber(), 2.0);
  EXPECT_EQ(e.at("worker").AsNumber(), 4.0);
  EXPECT_EQ(e.at("detail").AsString(), "say \"ow\"");
}

TEST_F(FlightRecorderTest, AutoDumpRequiresAnArmedPath) {
  FlightRecorder ring(64);
  EXPECT_FALSE(ring.AutoDump("nothing armed"));
  const std::string path = test::UniqueTempPath("flight_autodump.json");
  ring.set_auto_dump_path(path);
  EXPECT_EQ(ring.auto_dump_path(), path);
  ring.RecordTask(FlightEventKind::kCancel, 1, 0, 1, 1, 0);
  EXPECT_TRUE(ring.AutoDump("armed"));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, ConcurrentWritersNeverTearReaders) {
  FlightRecorder ring(128);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&ring, &stop, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Each writer stamps value = (writer << 32 | i) so a torn read
        // would surface as an impossible (job, value) pair below.
        ring.RecordTask(FlightEventKind::kFinish, static_cast<uint64_t>(t),
                        static_cast<size_t>(i), 1, 1, t,
                        (static_cast<uint64_t>(t) << 32) | (i & 0xffffffff));
        ++i;
      }
    });
  }
  for (int reads = 0; reads < 200; ++reads) {
    for (const FlightEvent& e : ring.Snapshot()) {
      ASSERT_EQ(e.kind, FlightEventKind::kFinish);
      ASSERT_LT(e.job, 4u);
      ASSERT_EQ(e.value >> 32, e.job);
      ASSERT_EQ(e.value & 0xffffffff, e.partition & 0xffffffff);
    }
  }
  stop.store(true);
  for (auto& w : writers) w.join();
}

// ---------------------------------------------------------------------------
// Post-mortem acceptance: a deadline-killed job must leave a dump behind
// containing both the straggler's lifecycle and earlier retry breadcrumbs.
// ---------------------------------------------------------------------------

TEST_F(FlightRecorderTest, DeadlineExceededJobAutoDumpsStragglerForensics) {
  obs::FlightRecorder& flight = obs::DefaultFlightRecorder();
  const std::string dump_path = test::UniqueTempPath("flight_deadline.json");
  flight.set_auto_dump_path(dump_path);
  const uint64_t dumps_before =
      obs::DefaultMetrics().GetCounter("engine.flight.dumps")->Value();

  Context ctx(2);

  // Job 1: a transient failure that is retried and succeeds — its retry
  // breadcrumb must survive into the post-mortem of the later failure.
  std::atomic<int> attempts{0};
  const Status retried =
      ctx.TryRunTasks("test.flight.transient", 2, [&](size_t p) {
        if (p == 0 && attempts.fetch_add(1) == 0) {
          throw StatusError(Status::IOError("transient blip"));
        }
      });
  ASSERT_TRUE(retried.ok()) << retried.ToString();

  // Job 2: one task stalls via the delay failpoint while the job runs
  // under a deadline it cannot make. The engine must dump the ring on the
  // DeadlineExceeded resolution without any explicit dump call here.
  ASSERT_TRUE(fault::DefaultFailPoints()
                  .ArmFromSpec("engine.task.run=delay:300@nth:1")
                  .ok());
  ctx.set_job_deadline_ms(60);
  const Status status = ctx.TryRunTasks("test.flight.straggler", 4,
                                        [](size_t) {});
  fault::DefaultFailPoints().DisarmAll();
  ASSERT_TRUE(status.IsDeadlineExceeded()) << status.ToString();

  EXPECT_GE(obs::DefaultMetrics().GetCounter("engine.flight.dumps")->Value(),
            dumps_before + 1);

  // The dump parses, names the failure, and holds the forensic trail.
  std::FILE* f = std::fopen(dump_path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << "auto-dump file missing: " << dump_path;
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(dump_path.c_str());

  const JsonValue json = ParseJsonOrFail(text);
  const JsonObject& obj = json.AsObject();
  EXPECT_NE(obj.at("reason").AsString().find("test.flight.straggler"),
            std::string::npos);
  const JsonArray& events = obj.at("events").AsArray();
  ASSERT_FALSE(events.empty());

  double failed_job = -1;
  for (const JsonValue& ev : events) {
    const JsonObject& e = ev.AsObject();
    if (e.at("kind").AsString() == "job_fail") {
      failed_job = e.at("job").AsNumber();
    }
  }
  ASSERT_GE(failed_job, 0.0) << "no job_fail event in dump";

  bool claim_in_failed_job = false;
  bool retry_breadcrumb = false;
  for (const JsonValue& ev : events) {
    const JsonObject& e = ev.AsObject();
    const std::string& kind = e.at("kind").AsString();
    if (kind == "claim" && e.at("job").AsNumber() == failed_job) {
      claim_in_failed_job = true;
    }
    if (kind == "retry") retry_breadcrumb = true;
  }
  EXPECT_TRUE(claim_in_failed_job)
      << "straggler job left no claim events in the dump";
  EXPECT_TRUE(retry_breadcrumb)
      << "earlier job's retry breadcrumb missing from the dump";
}

}  // namespace
}  // namespace stark
