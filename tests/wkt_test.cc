// Tests for the WKT parser and writer.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/wkt.h"

namespace stark {
namespace {

TEST(WktParseTest, Point) {
  Geometry g = ParseWkt("POINT (1.5 -2.25)").ValueOrDie();
  EXPECT_EQ(g.type(), GeometryType::kPoint);
  EXPECT_EQ(g.AsPoint().x, 1.5);
  EXPECT_EQ(g.AsPoint().y, -2.25);
}

TEST(WktParseTest, CaseAndWhitespaceInsensitive) {
  EXPECT_TRUE(ParseWkt("point(1 2)").ok());
  EXPECT_TRUE(ParseWkt("  PoInT  (  1   2  )  ").ok());
}

TEST(WktParseTest, ScientificNotation) {
  Geometry g = ParseWkt("POINT (1e3 -2.5e-2)").ValueOrDie();
  EXPECT_EQ(g.AsPoint().x, 1000.0);
  EXPECT_EQ(g.AsPoint().y, -0.025);
}

TEST(WktParseTest, LineString) {
  Geometry g = ParseWkt("LINESTRING (0 0, 1 1, 2 0)").ValueOrDie();
  EXPECT_EQ(g.type(), GeometryType::kLineString);
  ASSERT_EQ(g.coordinates().size(), 3u);
  EXPECT_EQ(g.coordinates()[2].x, 2.0);
}

TEST(WktParseTest, MultiPointBothStyles) {
  Geometry a = ParseWkt("MULTIPOINT (1 2, 3 4)").ValueOrDie();
  Geometry b = ParseWkt("MULTIPOINT ((1 2), (3 4))").ValueOrDie();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.coordinates().size(), 2u);
}

TEST(WktParseTest, Polygon) {
  Geometry g =
      ParseWkt("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))").ValueOrDie();
  EXPECT_EQ(g.type(), GeometryType::kPolygon);
  ASSERT_EQ(g.polygons().size(), 1u);
  EXPECT_EQ(g.polygons()[0].shell.size(), 5u);
  EXPECT_TRUE(g.polygons()[0].holes.empty());
}

TEST(WktParseTest, PolygonWithHole) {
  Geometry g = ParseWkt(
                   "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), "
                   "(2 2, 4 2, 4 4, 2 4, 2 2))")
                   .ValueOrDie();
  ASSERT_EQ(g.polygons()[0].holes.size(), 1u);
  EXPECT_EQ(g.polygons()[0].holes[0].size(), 5u);
}

TEST(WktParseTest, PolygonAutoCloseRing) {
  // Ring not explicitly closed: the factory closes it.
  Geometry g = ParseWkt("POLYGON ((0 0, 4 0, 4 4, 0 4))").ValueOrDie();
  const Ring& shell = g.polygons()[0].shell;
  EXPECT_EQ(shell.front(), shell.back());
  EXPECT_EQ(shell.size(), 5u);
}

TEST(WktParseTest, MultiPolygon) {
  Geometry g = ParseWkt(
                   "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), "
                   "((5 5, 6 5, 6 6, 5 6, 5 5)))")
                   .ValueOrDie();
  EXPECT_EQ(g.type(), GeometryType::kMultiPolygon);
  EXPECT_EQ(g.polygons().size(), 2u);
}

TEST(WktParseTest, Errors) {
  EXPECT_FALSE(ParseWkt("").ok());
  EXPECT_FALSE(ParseWkt("CIRCLE (0 0, 5)").ok());
  EXPECT_FALSE(ParseWkt("POINT (1)").ok());
  EXPECT_FALSE(ParseWkt("POINT (1 2").ok());
  EXPECT_FALSE(ParseWkt("POINT (1 2) trailing").ok());
  EXPECT_FALSE(ParseWkt("POINT (a b)").ok());
  EXPECT_FALSE(ParseWkt("LINESTRING (1 1)").ok());          // one point
  EXPECT_FALSE(ParseWkt("POLYGON ((0 0, 1 1))").ok());      // short ring
  EXPECT_FALSE(ParseWkt("POINT EMPTY").ok());
}

TEST(WktParseTest, ErrorIsParseError) {
  EXPECT_EQ(ParseWkt("NOPE").status().code(), StatusCode::kParseError);
}

TEST(WktWriteTest, CanonicalForms) {
  EXPECT_EQ(ParseWkt("POINT(1 2)").ValueOrDie().ToWkt(), "POINT (1 2)");
  EXPECT_EQ(ParseWkt("LINESTRING(0 0,1 1)").ValueOrDie().ToWkt(),
            "LINESTRING (0 0, 1 1)");
  EXPECT_EQ(
      ParseWkt("POLYGON((0 0,1 0,1 1,0 0))").ValueOrDie().ToWkt(),
      "POLYGON ((0 0, 1 0, 1 1, 0 0))");
}

TEST(WktWriteTest, CompactNumberFormatting) {
  EXPECT_EQ(ParseWkt("POINT(0.5 100000)").ValueOrDie().ToWkt(),
            "POINT (0.5 100000)");
}

// Property: parse(write(g)) == g for random geometries of every type.
TEST(WktPropertyTest, RoundTripRandomGeometries) {
  Rng rng(11);
  auto coord = [&] {
    return Coordinate{rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
  };
  for (int trial = 0; trial < 300; ++trial) {
    Geometry g = [&]() -> Geometry {
      switch (trial % 4) {
        case 0:
          return Geometry::MakePoint(coord());
        case 1: {
          std::vector<Coordinate> pts(2 + trial % 5);
          for (auto& p : pts) p = coord();
          return Geometry::MakeLineString(std::move(pts)).ValueOrDie();
        }
        case 2: {
          std::vector<Coordinate> pts(1 + trial % 6);
          for (auto& p : pts) p = coord();
          return Geometry::MakeMultiPoint(std::move(pts)).ValueOrDie();
        }
        default: {
          const Coordinate c = coord();
          Ring shell{{c.x, c.y}, {c.x + 3, c.y}, {c.x + 3, c.y + 3},
                     {c.x, c.y + 3}};
          return Geometry::MakePolygon(std::move(shell)).ValueOrDie();
        }
      }
    }();
    const std::string wkt = g.ToWkt();
    auto back = ParseWkt(wkt);
    ASSERT_TRUE(back.ok()) << wkt;
    EXPECT_EQ(back.ValueOrDie(), g) << wkt;
  }
}

}  // namespace
}  // namespace stark
