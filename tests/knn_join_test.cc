// Tests for the kNN join operator, verified against brute force.
#include <algorithm>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "io/generator.h"
#include "partition/grid_partitioner.h"
#include "spatial_rdd/knn_join.h"

namespace stark {
namespace {

class KnnJoinTest : public ::testing::Test {
 protected:
  KnnJoinTest() {
    SkewedPointsOptions gen;
    gen.count = 300;
    gen.universe = universe_;
    gen.seed = 101;
    auto lp = GenerateSkewedPoints(gen);
    for (size_t i = 0; i < lp.size(); ++i) {
      left_.emplace_back(lp[i], static_cast<int64_t>(i));
    }
    gen.count = 500;
    gen.seed = 102;
    auto rp = GenerateSkewedPoints(gen);
    for (size_t i = 0; i < rp.size(); ++i) {
      right_.emplace_back(rp[i], static_cast<int64_t>(i));
    }
  }

  /// Brute-force k nearest right ids for one left object, by distance.
  std::vector<double> BruteForceDistances(const STObject& l, size_t k) const {
    std::vector<double> dists;
    dists.reserve(right_.size());
    for (const auto& [obj, id] : right_) {
      dists.push_back(Distance(l.geo(), obj.geo()));
    }
    std::sort(dists.begin(), dists.end());
    dists.resize(std::min(k, dists.size()));
    return dists;
  }

  Envelope universe_ = Envelope(0, 0, 100, 100);
  Context ctx_{4};
  std::vector<std::pair<STObject, int64_t>> left_;
  std::vector<std::pair<STObject, int64_t>> right_;
};

TEST_F(KnnJoinTest, MatchesBruteForceUnpartitioned) {
  auto l = SpatialRDD<int64_t>::FromVector(&ctx_, left_, 3);
  auto r = SpatialRDD<int64_t>::FromVector(&ctx_, right_, 4);
  auto joined = KnnJoin(l, r, 5).Collect();
  ASSERT_EQ(joined.size(), left_.size());
  for (const auto& [lelem, matches] : joined) {
    ASSERT_EQ(matches.size(), 5u);
    const auto expect = BruteForceDistances(lelem.first, 5);
    for (size_t i = 0; i < matches.size(); ++i) {
      EXPECT_DOUBLE_EQ(matches[i].first, expect[i]);
      if (i > 0) {
        EXPECT_LE(matches[i - 1].first, matches[i].first);
      }
    }
  }
}

TEST_F(KnnJoinTest, MatchesBruteForcePartitioned) {
  auto grid_l = std::make_shared<GridPartitioner>(universe_, 3);
  auto grid_r = std::make_shared<GridPartitioner>(universe_, 5);
  auto l =
      SpatialRDD<int64_t>::FromVector(&ctx_, left_, 3).PartitionBy(grid_l);
  auto r =
      SpatialRDD<int64_t>::FromVector(&ctx_, right_, 4).PartitionBy(grid_r);
  auto joined = KnnJoin(l, r, 3).Collect();
  ASSERT_EQ(joined.size(), left_.size());
  for (const auto& [lelem, matches] : joined) {
    const auto expect = BruteForceDistances(lelem.first, 3);
    ASSERT_EQ(matches.size(), expect.size());
    for (size_t i = 0; i < matches.size(); ++i) {
      EXPECT_DOUBLE_EQ(matches[i].first, expect[i]);
    }
  }
}

TEST_F(KnnJoinTest, KLargerThanRightSide) {
  auto l = SpatialRDD<int64_t>::FromVector(
      &ctx_, {left_.begin(), left_.begin() + 5}, 2);
  auto r = SpatialRDD<int64_t>::FromVector(
      &ctx_, {right_.begin(), right_.begin() + 3}, 2);
  auto joined = KnnJoin(l, r, 10).Collect();
  for (const auto& [lelem, matches] : joined) {
    EXPECT_EQ(matches.size(), 3u);  // whole right side
  }
}

TEST_F(KnnJoinTest, NonPointLeftGeometries) {
  // Polygons as the left side: exact geometry distances, not centroid ones.
  PolygonsOptions pgen;
  pgen.count = 20;
  pgen.universe = universe_;
  pgen.min_radius = 2;
  pgen.max_radius = 6;
  pgen.seed = 103;
  auto polys = GenerateRandomPolygons(pgen);
  std::vector<std::pair<STObject, int64_t>> poly_left;
  for (size_t i = 0; i < polys.size(); ++i) {
    poly_left.emplace_back(polys[i], static_cast<int64_t>(i));
  }
  auto l = SpatialRDD<int64_t>::FromVector(&ctx_, poly_left, 2);
  auto grid_r = std::make_shared<GridPartitioner>(universe_, 4);
  auto r =
      SpatialRDD<int64_t>::FromVector(&ctx_, right_, 4).PartitionBy(grid_r);
  auto joined = KnnJoin(l, r, 4).Collect();
  ASSERT_EQ(joined.size(), poly_left.size());
  for (const auto& [lelem, matches] : joined) {
    const auto expect = BruteForceDistances(lelem.first, 4);
    ASSERT_EQ(matches.size(), expect.size());
    for (size_t i = 0; i < matches.size(); ++i) {
      EXPECT_DOUBLE_EQ(matches[i].first, expect[i]) << lelem.second;
    }
  }
}

TEST_F(KnnJoinTest, EmptyRightSideGivesEmptyMatches) {
  auto l = SpatialRDD<int64_t>::FromVector(&ctx_, left_, 2);
  auto r = SpatialRDD<int64_t>::FromVector(&ctx_, {}, 2);
  auto joined = KnnJoin(l, r, 5).Collect();
  ASSERT_EQ(joined.size(), left_.size());
  for (const auto& [lelem, matches] : joined) {
    EXPECT_TRUE(matches.empty());
  }
}

}  // namespace
}  // namespace stark
