// Tests for the kNN join operator, verified against brute force.
#include <algorithm>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "io/generator.h"
#include "partition/grid_partitioner.h"
#include "spatial_rdd/knn_join.h"

namespace stark {
namespace {

class KnnJoinTest : public ::testing::Test {
 protected:
  KnnJoinTest() {
    SkewedPointsOptions gen;
    gen.count = 300;
    gen.universe = universe_;
    gen.seed = 101;
    auto lp = GenerateSkewedPoints(gen);
    for (size_t i = 0; i < lp.size(); ++i) {
      left_.emplace_back(lp[i], static_cast<int64_t>(i));
    }
    gen.count = 500;
    gen.seed = 102;
    auto rp = GenerateSkewedPoints(gen);
    for (size_t i = 0; i < rp.size(); ++i) {
      right_.emplace_back(rp[i], static_cast<int64_t>(i));
    }
  }

  /// Brute-force k nearest right ids for one left object, by distance.
  std::vector<double> BruteForceDistances(const STObject& l, size_t k) const {
    std::vector<double> dists;
    dists.reserve(right_.size());
    for (const auto& [obj, id] : right_) {
      dists.push_back(Distance(l.geo(), obj.geo()));
    }
    std::sort(dists.begin(), dists.end());
    dists.resize(std::min(k, dists.size()));
    return dists;
  }

  Envelope universe_ = Envelope(0, 0, 100, 100);
  Context ctx_{4};
  std::vector<std::pair<STObject, int64_t>> left_;
  std::vector<std::pair<STObject, int64_t>> right_;
};

TEST_F(KnnJoinTest, MatchesBruteForceUnpartitioned) {
  auto l = SpatialRDD<int64_t>::FromVector(&ctx_, left_, 3);
  auto r = SpatialRDD<int64_t>::FromVector(&ctx_, right_, 4);
  auto joined = KnnJoin(l, r, 5).Collect();
  ASSERT_EQ(joined.size(), left_.size());
  for (const auto& [lelem, matches] : joined) {
    ASSERT_EQ(matches.size(), 5u);
    const auto expect = BruteForceDistances(lelem.first, 5);
    for (size_t i = 0; i < matches.size(); ++i) {
      EXPECT_DOUBLE_EQ(matches[i].first, expect[i]);
      if (i > 0) {
        EXPECT_LE(matches[i - 1].first, matches[i].first);
      }
    }
  }
}

TEST_F(KnnJoinTest, MatchesBruteForcePartitioned) {
  auto grid_l = std::make_shared<GridPartitioner>(universe_, 3);
  auto grid_r = std::make_shared<GridPartitioner>(universe_, 5);
  auto l =
      SpatialRDD<int64_t>::FromVector(&ctx_, left_, 3).PartitionBy(grid_l);
  auto r =
      SpatialRDD<int64_t>::FromVector(&ctx_, right_, 4).PartitionBy(grid_r);
  auto joined = KnnJoin(l, r, 3).Collect();
  ASSERT_EQ(joined.size(), left_.size());
  for (const auto& [lelem, matches] : joined) {
    const auto expect = BruteForceDistances(lelem.first, 3);
    ASSERT_EQ(matches.size(), expect.size());
    for (size_t i = 0; i < matches.size(); ++i) {
      EXPECT_DOUBLE_EQ(matches[i].first, expect[i]);
    }
  }
}

TEST_F(KnnJoinTest, KLargerThanRightSide) {
  auto l = SpatialRDD<int64_t>::FromVector(
      &ctx_, {left_.begin(), left_.begin() + 5}, 2);
  auto r = SpatialRDD<int64_t>::FromVector(
      &ctx_, {right_.begin(), right_.begin() + 3}, 2);
  auto joined = KnnJoin(l, r, 10).Collect();
  for (const auto& [lelem, matches] : joined) {
    EXPECT_EQ(matches.size(), 3u);  // whole right side
  }
}

TEST_F(KnnJoinTest, NonPointLeftGeometries) {
  // Polygons as the left side: exact geometry distances, not centroid ones.
  PolygonsOptions pgen;
  pgen.count = 20;
  pgen.universe = universe_;
  pgen.min_radius = 2;
  pgen.max_radius = 6;
  pgen.seed = 103;
  auto polys = GenerateRandomPolygons(pgen);
  std::vector<std::pair<STObject, int64_t>> poly_left;
  for (size_t i = 0; i < polys.size(); ++i) {
    poly_left.emplace_back(polys[i], static_cast<int64_t>(i));
  }
  auto l = SpatialRDD<int64_t>::FromVector(&ctx_, poly_left, 2);
  auto grid_r = std::make_shared<GridPartitioner>(universe_, 4);
  auto r =
      SpatialRDD<int64_t>::FromVector(&ctx_, right_, 4).PartitionBy(grid_r);
  auto joined = KnnJoin(l, r, 4).Collect();
  ASSERT_EQ(joined.size(), poly_left.size());
  for (const auto& [lelem, matches] : joined) {
    const auto expect = BruteForceDistances(lelem.first, 4);
    ASSERT_EQ(matches.size(), expect.size());
    for (size_t i = 0; i < matches.size(); ++i) {
      EXPECT_DOUBLE_EQ(matches[i].first, expect[i]) << lelem.second;
    }
  }
}

TEST_F(KnnJoinTest, EmptyRightSideGivesEmptyMatches) {
  auto l = SpatialRDD<int64_t>::FromVector(&ctx_, left_, 2);
  auto r = SpatialRDD<int64_t>::FromVector(&ctx_, {}, 2);
  auto joined = KnnJoin(l, r, 5).Collect();
  ASSERT_EQ(joined.size(), left_.size());
  for (const auto& [lelem, matches] : joined) {
    EXPECT_TRUE(matches.empty());
  }
}

TEST_F(KnnJoinTest, TieAtKthNeighborAcrossPartitionBoundary) {
  // Deterministic construction: the query point sits near the x=50 grid
  // boundary; its k-th nearest distance is shared by candidates on *both*
  // sides of the boundary, and the neighboring partition's extent distance
  // equals that k-th distance exactly. The probe loop's stop rule must not
  // skip the tied partition (strict >, not >=, against the k-th distance)
  // and the merged result must match brute force.
  std::vector<std::pair<STObject, int64_t>> lhs = {
      {STObject(Geometry::MakePoint(48, 50)), 0}};
  std::vector<std::pair<STObject, int64_t>> rhs = {
      {STObject(Geometry::MakePoint(46, 50)), 0},  // d=2, west cell
      {STObject(Geometry::MakePoint(45, 50)), 1},  // d=3, west cell
      {STObject(Geometry::MakePoint(44, 50)), 2},  // d=4, west cell (tie)
      {STObject(Geometry::MakePoint(52, 50)), 3},  // d=4, east cell (tie)
      {STObject(Geometry::MakePoint(60, 50)), 4},  // d=12, east cell
  };
  auto grid = std::make_shared<GridPartitioner>(universe_, 2);
  auto l = SpatialRDD<int64_t>::FromVector(&ctx_, lhs, 1);
  auto r = SpatialRDD<int64_t>::FromVector(&ctx_, rhs, 2).PartitionBy(grid);
  auto joined = KnnJoin(l, r, 3).Collect();
  ASSERT_EQ(joined.size(), 1u);
  const auto& matches = joined[0].second;
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_DOUBLE_EQ(matches[0].first, 2.0);
  EXPECT_DOUBLE_EQ(matches[1].first, 3.0);
  EXPECT_DOUBLE_EQ(matches[2].first, 4.0);  // one of the two tied candidates
  EXPECT_TRUE(matches[2].second.second == 2 || matches[2].second.second == 3);
  // Everything strictly closer than the k-th distance must be present.
  EXPECT_EQ(matches[0].second.second, 0);
  EXPECT_EQ(matches[1].second.second, 1);
}

TEST_F(KnnJoinTest, AllEmptyRightPartitions) {
  // A partitioned right side whose partitions are all empty: the probe
  // order over extent distances must terminate with no matches rather than
  // spin or crash on empty extents.
  auto grid_l = std::make_shared<GridPartitioner>(universe_, 2);
  auto grid_r = std::make_shared<GridPartitioner>(universe_, 4);
  auto l =
      SpatialRDD<int64_t>::FromVector(&ctx_, left_, 3).PartitionBy(grid_l);
  auto r = SpatialRDD<int64_t>::FromVector(&ctx_, {}, 2).PartitionBy(grid_r);
  ASSERT_EQ(r.NumPartitions(), 16u);
  auto joined = KnnJoin(l, r, 5).Collect();
  ASSERT_EQ(joined.size(), left_.size());
  for (const auto& [lelem, matches] : joined) {
    EXPECT_TRUE(matches.empty());
  }
}

TEST_F(KnnJoinTest, MixedPointAndPolygonLeftGeometries) {
  // A left side mixing points (fast path) and polygons (scan fallback) in
  // the same partitions: each element must take the path its geometry
  // requires and still match brute force.
  PolygonsOptions pgen;
  pgen.count = 10;
  pgen.universe = universe_;
  pgen.min_radius = 2;
  pgen.max_radius = 6;
  pgen.seed = 104;
  auto polys = GenerateRandomPolygons(pgen);
  std::vector<std::pair<STObject, int64_t>> mixed;
  for (size_t i = 0; i < polys.size(); ++i) {
    mixed.emplace_back(polys[i], static_cast<int64_t>(i));
    mixed.emplace_back(left_[i].first, static_cast<int64_t>(100 + i));
  }
  auto grid_r = std::make_shared<GridPartitioner>(universe_, 4);
  auto l = SpatialRDD<int64_t>::FromVector(&ctx_, mixed, 3);
  auto r =
      SpatialRDD<int64_t>::FromVector(&ctx_, right_, 4).PartitionBy(grid_r);
  auto joined = KnnJoin(l, r, 4).Collect();
  ASSERT_EQ(joined.size(), mixed.size());
  for (const auto& [lelem, matches] : joined) {
    const auto expect = BruteForceDistances(lelem.first, 4);
    ASSERT_EQ(matches.size(), expect.size());
    for (size_t i = 0; i < matches.size(); ++i) {
      EXPECT_DOUBLE_EQ(matches[i].first, expect[i]) << lelem.second;
    }
  }
}

}  // namespace
}  // namespace stark
