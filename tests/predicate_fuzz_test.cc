// Property-based differential testing of the spatial predicates and the
// R-tree-assisted filter path. A seeded generator produces a mixed
// population of points, boxes, star-shaped polygons, linestrings and
// multipoints; every unordered pair is checked against predicate algebra
// (symmetry, containment implies intersection, envelope consistency,
// distance/intersects duality), and R-tree candidate+refine query results
// are compared against a brute-force exact oracle over the whole
// population. Well over 10k generated cases per run, fully reproducible
// from the fixed seeds.
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/envelope.h"
#include "geometry/geometry.h"
#include "geometry/predicates.h"
#include "index/rtree.h"
#include "test_util.h"

namespace stark {
namespace {

// Generators live in test_util.h so the packed-index and prepared-geometry
// differential suites fuzz the same population shapes.
using test::RandomEnvelope;
using test::RandomPopulation;

// ---------------------------------------------------------------------------
// Predicate algebra over every pair of a mixed population
// ---------------------------------------------------------------------------

TEST(PredicateFuzzTest, PairwisePredicateAlgebraHolds) {
  // 160 geometries -> 12,720 unordered pairs; with several properties per
  // pair this is comfortably past the 10k-case bar for one seed alone.
  const std::vector<Geometry> pop = RandomPopulation(/*seed=*/1234, 160);
  size_t cases = 0;
  for (size_t i = 0; i < pop.size(); ++i) {
    const Geometry& a = pop[i];
    // Reflexivity: everything intersects itself at zero distance. (No
    // Contains(a, a) check: classifying a slanted boundary segment's
    // midpoint as on-boundary is tolerance-limited for arbitrary
    // polygons, so reflexive containment is not numerically guaranteed.)
    ASSERT_TRUE(Intersects(a, a)) << a.ToWkt();
    ASSERT_EQ(Distance(a, a), 0.0) << a.ToWkt();
    if (a.type() == GeometryType::kPoint ||
        a.type() == GeometryType::kMultiPoint) {
      ASSERT_TRUE(Contains(a, a)) << a.ToWkt();
    }
    for (size_t j = i + 1; j < pop.size(); ++j) {
      const Geometry& b = pop[j];
      ++cases;
      const bool ab = Intersects(a, b);

      // Intersects is symmetric.
      ASSERT_EQ(ab, Intersects(b, a)) << a.ToWkt() << " vs " << b.ToWkt();

      // ContainedBy is the mirror of Contains.
      const bool a_contains_b = Contains(a, b);
      const bool b_contains_a = Contains(b, a);
      ASSERT_EQ(ContainedBy(b, a), a_contains_b)
          << a.ToWkt() << " vs " << b.ToWkt();
      ASSERT_EQ(ContainedBy(a, b), b_contains_a)
          << a.ToWkt() << " vs " << b.ToWkt();

      // Containment implies intersection (shared points exist).
      if (a_contains_b || b_contains_a) {
        ASSERT_TRUE(ab) << a.ToWkt() << " vs " << b.ToWkt();
      }

      // Envelope consistency: exact hits never escape the MBR filter —
      // the soundness of every index-assisted candidate+refine plan.
      if (ab) {
        ASSERT_TRUE(a.envelope().Intersects(b.envelope()))
            << a.ToWkt() << " vs " << b.ToWkt();
      }
      if (a_contains_b) {
        ASSERT_TRUE(a.envelope().Contains(b.envelope()))
            << a.ToWkt() << " vs " << b.ToWkt();
      }

      // Distance/intersects duality. Distance is symmetric and never
      // below the envelope lower bound (the kNN pruning invariant).
      const double d = Distance(a, b);
      ASSERT_DOUBLE_EQ(d, Distance(b, a)) << a.ToWkt() << " vs " << b.ToWkt();
      if (ab) {
        ASSERT_EQ(d, 0.0) << a.ToWkt() << " vs " << b.ToWkt();
      } else {
        ASSERT_GT(d, 0.0) << a.ToWkt() << " vs " << b.ToWkt();
      }
      ASSERT_GE(d, a.envelope().Distance(b.envelope()) - 1e-9)
          << a.ToWkt() << " vs " << b.ToWkt();
    }
  }
  EXPECT_GE(cases, 10000u);
}

TEST(PredicateFuzzTest, BoxContainmentMatchesEnvelopeSemantics) {
  // For two axis-aligned boxes the exact predicates must agree with the
  // envelope predicates — a differential oracle with an independent,
  // trivially correct implementation.
  Rng rng(977);
  for (int i = 0; i < 4000; ++i) {
    const Envelope ea = RandomEnvelope(&rng, 12.0);
    const Envelope eb = RandomEnvelope(&rng, 12.0);
    const Geometry a = Geometry::MakeBox(ea);
    const Geometry b = Geometry::MakeBox(eb);
    ASSERT_EQ(Intersects(a, b), ea.Intersects(eb))
        << a.ToWkt() << " vs " << b.ToWkt();
    ASSERT_EQ(Contains(a, b), ea.Contains(eb))
        << a.ToWkt() << " vs " << b.ToWkt();
    ASSERT_EQ(ContainedBy(a, b), eb.Contains(ea))
        << a.ToWkt() << " vs " << b.ToWkt();
  }
}

// ---------------------------------------------------------------------------
// R-tree-assisted filter vs. brute-force exact oracle
// ---------------------------------------------------------------------------

using IdSet = std::set<size_t>;

IdSet RefineCandidates(const RTree<size_t>& tree, const Envelope& query_env,
                       const Geometry& query_geom,
                       const std::vector<Geometry>& pop) {
  IdSet out;
  for (const size_t* id : tree.QueryCandidates(query_env)) {
    if (Intersects(query_geom, pop[*id])) out.insert(*id);
  }
  return out;
}

IdSet BruteForceOracle(const Envelope& query_env, const Geometry& query_geom,
                       const std::vector<Geometry>& pop) {
  IdSet out;
  for (size_t id = 0; id < pop.size(); ++id) {
    // Envelope prefilter + exact refine, over *every* geometry — the
    // index-free reference plan.
    if (!query_env.Intersects(pop[id].envelope())) continue;
    if (Intersects(query_geom, pop[id])) out.insert(id);
  }
  return out;
}

TEST(PredicateFuzzTest, RTreeFilterMatchesBruteForceOracle) {
  const std::vector<Geometry> pop = RandomPopulation(/*seed=*/555, 300);

  std::vector<std::pair<Envelope, size_t>> entries;
  for (size_t id = 0; id < pop.size(); ++id) {
    entries.emplace_back(pop[id].envelope(), id);
  }
  // Differential across construction paths too: the bulk-loaded (STR) tree
  // and the incrementally grown tree must answer identically.
  RTree<size_t> bulk(8);
  bulk.BulkLoad(entries);
  RTree<size_t> incremental(4);
  for (const auto& [env, id] : entries) incremental.Insert(env, id);
  ASSERT_EQ(bulk.size(), pop.size());
  ASSERT_EQ(incremental.size(), pop.size());

  Rng rng(31337);
  size_t nonempty = 0;
  for (int q = 0; q < 120; ++q) {
    const Envelope query_env = RandomEnvelope(&rng, 20.0);
    const Geometry query_geom = Geometry::MakeBox(query_env);
    const IdSet expected = BruteForceOracle(query_env, query_geom, pop);
    ASSERT_EQ(RefineCandidates(bulk, query_env, query_geom, pop), expected)
        << "bulk-loaded tree, query " << query_geom.ToWkt();
    ASSERT_EQ(RefineCandidates(incremental, query_env, query_geom, pop),
              expected)
        << "incremental tree, query " << query_geom.ToWkt();
    if (!expected.empty()) ++nonempty;
  }
  // The workload must actually exercise matches, not vacuous empty sets.
  EXPECT_GT(nonempty, 60u);
}

TEST(PredicateFuzzTest, RTreeContainmentQueriesMatchOracle) {
  const std::vector<Geometry> pop = RandomPopulation(/*seed=*/888, 250);
  std::vector<std::pair<Envelope, size_t>> entries;
  for (size_t id = 0; id < pop.size(); ++id) {
    entries.emplace_back(pop[id].envelope(), id);
  }
  RTree<size_t> tree(10);
  tree.BulkLoad(entries);

  Rng rng(4242);
  size_t nonempty = 0;
  for (int q = 0; q < 80; ++q) {
    const Envelope query_env = RandomEnvelope(&rng, 30.0);
    const Geometry query_geom = Geometry::MakeBox(query_env);

    IdSet expected;
    for (size_t id = 0; id < pop.size(); ++id) {
      if (Contains(query_geom, pop[id])) expected.insert(id);
    }
    IdSet got;
    for (const size_t* id : tree.QueryCandidates(query_env)) {
      if (Contains(query_geom, pop[*id])) got.insert(*id);
    }
    ASSERT_EQ(got, expected) << "query " << query_geom.ToWkt();
    if (!expected.empty()) ++nonempty;
  }
  EXPECT_GT(nonempty, 20u);
}

}  // namespace
}  // namespace stark
