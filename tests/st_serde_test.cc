// Tests for the binary serialization of geometries and STObjects.
#include <gtest/gtest.h>

#include "core/st_serde.h"
#include "geometry/wkt.h"

namespace stark {
namespace {

Geometry G(const char* wkt) { return ParseWkt(wkt).ValueOrDie(); }

void RoundTripGeometry(const Geometry& g) {
  BinaryWriter w;
  WriteGeometry(&w, g);
  BinaryReader r(w.buffer());
  auto back = ReadGeometry(&r);
  ASSERT_TRUE(back.ok()) << g.ToWkt() << ": " << back.status().ToString();
  EXPECT_EQ(back.ValueOrDie(), g) << g.ToWkt();
  EXPECT_TRUE(r.AtEnd());
}

TEST(GeometrySerdeTest, AllTypesRoundTrip) {
  RoundTripGeometry(G("POINT (1.25 -7)"));
  RoundTripGeometry(G("MULTIPOINT (1 2, 3 4, 5 6)"));
  RoundTripGeometry(G("LINESTRING (0 0, 1 1, 2 0)"));
  RoundTripGeometry(G("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))"));
  RoundTripGeometry(
      G("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))"));
  RoundTripGeometry(G(
      "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)), ((5 5, 6 5, 6 6, 5 5)))"));
}

TEST(STObjectSerdeTest, RoundTripWithAndWithoutTime) {
  for (const STObject& obj :
       {STObject::FromWkt("POINT (3 4)").ValueOrDie(),
        STObject::FromWkt("POINT (3 4)", 77).ValueOrDie(),
        STObject::FromWkt("POLYGON ((0 0, 2 0, 2 2, 0 0))", 5, 9)
            .ValueOrDie()}) {
    BinaryWriter w;
    WriteSTObject(&w, obj);
    BinaryReader r(w.buffer());
    auto back = ReadSTObject(&r);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.ValueOrDie(), obj);
  }
}

TEST(STObjectSerdeTest, CorruptTagFails) {
  BinaryWriter w;
  w.WriteU8(99);  // invalid geometry tag
  BinaryReader r(w.buffer());
  EXPECT_FALSE(ReadGeometry(&r).ok());
}

TEST(STObjectSerdeTest, TruncatedPayloadFails) {
  BinaryWriter w;
  WriteSTObject(&w, STObject::FromWkt("POINT (1 2)", 3).ValueOrDie());
  std::vector<char> buf = w.buffer();
  buf.resize(buf.size() / 2);
  BinaryReader r(buf);
  EXPECT_FALSE(ReadSTObject(&r).ok());
}

TEST(STObjectSerdeTest, BogusCoordinateCountIsRejected) {
  BinaryWriter w;
  w.WriteU8(0);                       // POINT tag
  w.WriteU64(1ull << 60);             // absurd coordinate count
  BinaryReader r(w.buffer());
  EXPECT_FALSE(ReadGeometry(&r).ok());
}

TEST(EnvelopeSerdeTest, RoundTrip) {
  for (const Envelope& env :
       {Envelope(), Envelope(-1, -2, 3, 4), Envelope(0, 0, 0, 0)}) {
    BinaryWriter w;
    WriteEnvelope(&w, env);
    BinaryReader r(w.buffer());
    auto back = ReadEnvelope(&r);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.ValueOrDie(), env);
  }
}

}  // namespace
}  // namespace stark
