// Tests for the Envelope (minimum bounding rectangle) type.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/envelope.h"

namespace stark {
namespace {

TEST(EnvelopeTest, DefaultIsEmpty) {
  Envelope e;
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_EQ(e.Width(), 0.0);
  EXPECT_EQ(e.Height(), 0.0);
  EXPECT_EQ(e.Area(), 0.0);
  EXPECT_FALSE(e.Contains(Coordinate{0, 0}));
  EXPECT_FALSE(e.Intersects(Envelope(0, 0, 1, 1)));
}

TEST(EnvelopeTest, ExpandToIncludeCoordinates) {
  Envelope e;
  e.ExpandToInclude(Coordinate{1, 2});
  EXPECT_FALSE(e.IsEmpty());
  EXPECT_EQ(e.Area(), 0.0);
  e.ExpandToInclude(Coordinate{-1, 5});
  EXPECT_EQ(e.min_x(), -1);
  EXPECT_EQ(e.max_x(), 1);
  EXPECT_EQ(e.min_y(), 2);
  EXPECT_EQ(e.max_y(), 5);
  EXPECT_EQ(e.Width(), 2);
  EXPECT_EQ(e.Height(), 3);
  EXPECT_EQ(e.Area(), 6);
}

TEST(EnvelopeTest, ExpandToIncludeEnvelope) {
  Envelope a(0, 0, 1, 1);
  a.ExpandToInclude(Envelope(2, -1, 3, 0.5));
  EXPECT_EQ(a, Envelope(0, -1, 3, 1));
  a.ExpandToInclude(Envelope());  // empty is a no-op
  EXPECT_EQ(a, Envelope(0, -1, 3, 1));
}

TEST(EnvelopeTest, IntersectsAndTouches) {
  Envelope a(0, 0, 2, 2);
  EXPECT_TRUE(a.Intersects(Envelope(1, 1, 3, 3)));
  EXPECT_TRUE(a.Intersects(Envelope(2, 2, 3, 3)));  // corner touch
  EXPECT_TRUE(a.Intersects(Envelope(2, 0, 4, 2)));  // edge touch
  EXPECT_FALSE(a.Intersects(Envelope(2.01, 0, 3, 1)));
  EXPECT_FALSE(a.Intersects(Envelope(0, 2.01, 1, 3)));
  EXPECT_TRUE(a.Intersects(a));
}

TEST(EnvelopeTest, ContainsCoordinateIncludesBoundary) {
  Envelope a(0, 0, 2, 2);
  EXPECT_TRUE(a.Contains(Coordinate{1, 1}));
  EXPECT_TRUE(a.Contains(Coordinate{0, 0}));
  EXPECT_TRUE(a.Contains(Coordinate{2, 2}));
  EXPECT_FALSE(a.Contains(Coordinate{2.0001, 1}));
}

TEST(EnvelopeTest, ContainsEnvelope) {
  Envelope a(0, 0, 4, 4);
  EXPECT_TRUE(a.Contains(Envelope(1, 1, 2, 2)));
  EXPECT_TRUE(a.Contains(a));
  EXPECT_FALSE(a.Contains(Envelope(1, 1, 5, 2)));
  EXPECT_FALSE(Envelope().Contains(a));
  EXPECT_FALSE(a.Contains(Envelope()));
}

TEST(EnvelopeTest, DistanceToEnvelope) {
  Envelope a(0, 0, 1, 1);
  EXPECT_EQ(a.Distance(Envelope(0.5, 0.5, 2, 2)), 0.0);
  EXPECT_DOUBLE_EQ(a.Distance(Envelope(3, 0, 4, 1)), 2.0);   // pure x gap
  EXPECT_DOUBLE_EQ(a.Distance(Envelope(0, 4, 1, 5)), 3.0);   // pure y gap
  EXPECT_DOUBLE_EQ(a.Distance(Envelope(4, 5, 6, 7)), 5.0);   // diagonal 3-4-5
}

TEST(EnvelopeTest, DistanceToCoordinate) {
  Envelope a(0, 0, 2, 2);
  EXPECT_EQ(a.Distance(Coordinate{1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(a.Distance(Coordinate{5, 1}), 3.0);
  EXPECT_DOUBLE_EQ(a.Distance(Coordinate{5, 6}), 5.0);
}

TEST(EnvelopeTest, Intersection) {
  Envelope a(0, 0, 2, 2);
  EXPECT_EQ(a.Intersection(Envelope(1, 1, 3, 3)), Envelope(1, 1, 2, 2));
  EXPECT_TRUE(a.Intersection(Envelope(5, 5, 6, 6)).IsEmpty());
}

TEST(EnvelopeTest, ExpandedAddsMargin) {
  Envelope a(0, 0, 1, 1);
  EXPECT_EQ(a.Expanded(0.5), Envelope(-0.5, -0.5, 1.5, 1.5));
  EXPECT_TRUE(Envelope().Expanded(1.0).IsEmpty());
}

TEST(EnvelopeTest, CenterOfBox) {
  EXPECT_EQ(Envelope(0, 0, 2, 4).Center().x, 1.0);
  EXPECT_EQ(Envelope(0, 0, 2, 4).Center().y, 2.0);
}

// Property: distance is symmetric and zero iff intersecting, over random
// rectangles.
TEST(EnvelopePropertyTest, DistanceSymmetryAndZeroIffIntersect) {
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    auto random_env = [&] {
      const double x1 = rng.Uniform(-10, 10);
      const double y1 = rng.Uniform(-10, 10);
      const double x2 = x1 + rng.Uniform(0, 5);
      const double y2 = y1 + rng.Uniform(0, 5);
      return Envelope(x1, y1, x2, y2);
    };
    const Envelope a = random_env();
    const Envelope b = random_env();
    EXPECT_DOUBLE_EQ(a.Distance(b), b.Distance(a));
    EXPECT_EQ(a.Distance(b) == 0.0, a.Intersects(b));
    EXPECT_EQ(a.Intersects(b), b.Intersects(a));
  }
}

// Property: containment implies intersection and distance zero.
TEST(EnvelopePropertyTest, ContainmentImpliesIntersection) {
  Rng rng(100);
  for (int trial = 0; trial < 500; ++trial) {
    const double x1 = rng.Uniform(-10, 10);
    const double y1 = rng.Uniform(-10, 10);
    const Envelope outer(x1, y1, x1 + 6, y1 + 6);
    const Envelope inner(x1 + 1, y1 + 1, x1 + rng.Uniform(1, 5),
                         y1 + rng.Uniform(1, 5));
    ASSERT_TRUE(outer.Contains(inner));
    EXPECT_TRUE(outer.Intersects(inner));
    EXPECT_EQ(outer.Distance(inner), 0.0);
  }
}

}  // namespace
}  // namespace stark
