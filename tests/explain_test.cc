// Tests for the Piglet plan pretty-printer: canonical formatting and the
// parse -> format -> parse fixpoint property.
#include <gtest/gtest.h>

#include "piglet/explain.h"
#include "piglet/optimizer.h"
#include "piglet/parser.h"

namespace stark {
namespace piglet {
namespace {

TEST(ExplainTest, FormatsEveryStatementKind) {
  const char* script = R"(
    events = LOAD 'events.csv';
    s = SPATIALIZE events;
    p = PARTITION s BY GRID(4) TIME(3);
    b = PARTITION s BY BSP(1000);
    i = INDEX p ORDER 5;
    f = FILTER i BY INTERSECTS('POINT(1 2)', 10, 20) AND category == 'x';
    w = FILTER s BY WITHINDISTANCE('POINT(0 0)', 2.5);
    j = JOIN s, p ON WITHINDISTANCE(1.5);
    jc = JOIN s, p ON CONTAINS;
    k = KNN s QUERY 'POINT(3 4)' K 7;
    c = CLUSTER s USING DBSCAN(0.5, 4) GRID 8;
    a = AGGREGATE events BY category COUNT;
    t = LIMIT f 10;
    DUMP t;
    STORE w INTO 'out.csv';
    DESCRIBE j;
  )";
  const Program program = Parse(script).ValueOrDie();
  const std::string text = FormatProgram(program);
  EXPECT_NE(text.find("events = LOAD 'events.csv';"), std::string::npos);
  EXPECT_NE(text.find("p = PARTITION s BY GRID(4) TIME(3);"),
            std::string::npos);
  EXPECT_NE(text.find("b = PARTITION s BY BSP(1000);"), std::string::npos);
  EXPECT_NE(text.find("i = INDEX p ORDER 5;"), std::string::npos);
  EXPECT_NE(
      text.find(
          "f = FILTER i BY (INTERSECTS('POINT (1 2)', 10, 20) AND "
          "category == 'x');"),
      std::string::npos);
  EXPECT_NE(text.find("w = FILTER s BY WITHINDISTANCE('POINT (0 0)', 2.5);"),
            std::string::npos);
  EXPECT_NE(text.find("j = JOIN s, p ON WITHINDISTANCE(1.5);"),
            std::string::npos);
  EXPECT_NE(text.find("jc = JOIN s, p ON CONTAINS;"), std::string::npos);
  EXPECT_NE(text.find("k = KNN s QUERY 'POINT (3 4)' K 7;"),
            std::string::npos);
  EXPECT_NE(text.find("c = CLUSTER s USING DBSCAN(0.5, 4) GRID 8;"),
            std::string::npos);
  EXPECT_NE(text.find("a = AGGREGATE events BY category COUNT;"),
            std::string::npos);
  EXPECT_NE(text.find("t = LIMIT f 10;"), std::string::npos);
  EXPECT_NE(text.find("DUMP t;"), std::string::npos);
  EXPECT_NE(text.find("STORE w INTO 'out.csv';"), std::string::npos);
  EXPECT_NE(text.find("DESCRIBE j;"), std::string::npos);
}

// Property: formatting is a fixpoint — parse(format(p)) formats to the
// same text, so the printed plan is valid, canonical Piglet.
TEST(ExplainTest, FormatParseFormatFixpoint) {
  const char* script = R"(
    events = LOAD 'events.csv';
    s = SPATIALIZE events;
    f = FILTER s BY NOT (time > 100 OR category != 'a');
    g = FILTER f BY CONTAINEDBY('POLYGON((0 0, 4 0, 4 4, 0 0))');
    DUMP g;
  )";
  const Program first = Parse(script).ValueOrDie();
  const std::string once = FormatProgram(first);
  const Program second = Parse(once).ValueOrDie();
  EXPECT_EQ(FormatProgram(second), once);
}

TEST(ExplainTest, ShowsOptimizerRewrites) {
  const Program program = Parse(
                              "a = LOAD 'f.csv';\n"
                              "b = FILTER a BY id == 1;\n"
                              "c = FILTER b BY time > 5;\n"
                              "dead = LIMIT a 3;\n"
                              "DUMP c;")
                              .ValueOrDie();
  OptimizerReport report;
  const Program optimized = Optimize(program, &report);
  const std::string text = FormatProgram(optimized);
  EXPECT_NE(text.find("c = FILTER a BY (id == 1 AND time > 5);"),
            std::string::npos);
  EXPECT_EQ(text.find("dead"), std::string::npos);
  // The optimized plan still parses.
  EXPECT_TRUE(Parse(text).ok());
}

}  // namespace
}  // namespace piglet
}  // namespace stark
