// Tests for the Piglet plan pretty-printer: canonical formatting, the
// parse -> format -> parse fixpoint property, and EXPLAIN ANALYZE's
// per-operator runtime profiles.
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

#include "io/csv.h"
#include "piglet/explain.h"
#include "piglet/interpreter.h"
#include "piglet/optimizer.h"
#include "piglet/parser.h"

namespace stark {
namespace piglet {
namespace {

TEST(ExplainTest, FormatsEveryStatementKind) {
  const char* script = R"(
    events = LOAD 'events.csv';
    s = SPATIALIZE events;
    p = PARTITION s BY GRID(4) TIME(3);
    b = PARTITION s BY BSP(1000);
    i = INDEX p ORDER 5;
    f = FILTER i BY INTERSECTS('POINT(1 2)', 10, 20) AND category == 'x';
    w = FILTER s BY WITHINDISTANCE('POINT(0 0)', 2.5);
    j = JOIN s, p ON WITHINDISTANCE(1.5);
    jc = JOIN s, p ON CONTAINS;
    k = KNN s QUERY 'POINT(3 4)' K 7;
    c = CLUSTER s USING DBSCAN(0.5, 4) GRID 8;
    a = AGGREGATE events BY category COUNT;
    t = LIMIT f 10;
    DUMP t;
    STORE w INTO 'out.csv';
    DESCRIBE j;
  )";
  const Program program = Parse(script).ValueOrDie();
  const std::string text = FormatProgram(program);
  EXPECT_NE(text.find("events = LOAD 'events.csv';"), std::string::npos);
  EXPECT_NE(text.find("p = PARTITION s BY GRID(4) TIME(3);"),
            std::string::npos);
  EXPECT_NE(text.find("b = PARTITION s BY BSP(1000);"), std::string::npos);
  EXPECT_NE(text.find("i = INDEX p ORDER 5;"), std::string::npos);
  EXPECT_NE(
      text.find(
          "f = FILTER i BY (INTERSECTS('POINT (1 2)', 10, 20) AND "
          "category == 'x');"),
      std::string::npos);
  EXPECT_NE(text.find("w = FILTER s BY WITHINDISTANCE('POINT (0 0)', 2.5);"),
            std::string::npos);
  EXPECT_NE(text.find("j = JOIN s, p ON WITHINDISTANCE(1.5);"),
            std::string::npos);
  EXPECT_NE(text.find("jc = JOIN s, p ON CONTAINS;"), std::string::npos);
  EXPECT_NE(text.find("k = KNN s QUERY 'POINT (3 4)' K 7;"),
            std::string::npos);
  EXPECT_NE(text.find("c = CLUSTER s USING DBSCAN(0.5, 4) GRID 8;"),
            std::string::npos);
  EXPECT_NE(text.find("a = AGGREGATE events BY category COUNT;"),
            std::string::npos);
  EXPECT_NE(text.find("t = LIMIT f 10;"), std::string::npos);
  EXPECT_NE(text.find("DUMP t;"), std::string::npos);
  EXPECT_NE(text.find("STORE w INTO 'out.csv';"), std::string::npos);
  EXPECT_NE(text.find("DESCRIBE j;"), std::string::npos);
}

// Property: formatting is a fixpoint — parse(format(p)) formats to the
// same text, so the printed plan is valid, canonical Piglet.
TEST(ExplainTest, FormatParseFormatFixpoint) {
  const char* script = R"(
    events = LOAD 'events.csv';
    s = SPATIALIZE events;
    f = FILTER s BY NOT (time > 100 OR category != 'a');
    g = FILTER f BY CONTAINEDBY('POLYGON((0 0, 4 0, 4 4, 0 0))');
    DUMP g;
  )";
  const Program first = Parse(script).ValueOrDie();
  const std::string once = FormatProgram(first);
  const Program second = Parse(once).ValueOrDie();
  EXPECT_EQ(FormatProgram(second), once);
}

TEST(ExplainTest, ShowsOptimizerRewrites) {
  const Program program = Parse(
                              "a = LOAD 'f.csv';\n"
                              "b = FILTER a BY id == 1;\n"
                              "c = FILTER b BY time > 5;\n"
                              "dead = LIMIT a 3;\n"
                              "DUMP c;")
                              .ValueOrDie();
  OptimizerReport report;
  const Program optimized = Optimize(program, &report);
  const std::string text = FormatProgram(optimized);
  EXPECT_NE(text.find("c = FILTER a BY (id == 1 AND time > 5);"),
            std::string::npos);
  EXPECT_EQ(text.find("dead"), std::string::npos);
  // The optimized plan still parses.
  EXPECT_TRUE(Parse(text).ok());
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE
// ---------------------------------------------------------------------------

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  ExplainAnalyzeTest() : interp_(&ctx_, &out_) {
    csv_path_ = test::UniqueTempPath("explain_analyze_events.csv");
    // A 10x10 lattice of points over (0,0)-(90,90): with GRID(4)
    // partitioning, a small query window must prune most partitions.
    std::vector<EventRecord> records;
    int64_t id = 0;
    for (int x = 0; x < 10; ++x) {
      for (int y = 0; y < 10; ++y) {
        char wkt[64];
        std::snprintf(wkt, sizeof(wkt), "POINT (%d %d)", x * 10, y * 10);
        records.push_back(
            {++id, x % 2 == 0 ? "sports" : "culture", id * 10, wkt});
      }
    }
    STARK_CHECK(WriteEventsCsv(csv_path_, records).ok());
  }

  ~ExplainAnalyzeTest() override { std::remove(csv_path_.c_str()); }

  Context ctx_{2};
  std::ostringstream out_;
  Interpreter interp_;
  std::string csv_path_;
};

TEST_F(ExplainAnalyzeTest, ProfilesEveryOperatorWithRowsAndPruning) {
  const std::string script =
      "events = LOAD '" + csv_path_ + "';\n" +
      "s = SPATIALIZE events;\n"
      "p = PARTITION s BY GRID(4);\n"
      // Data carries instants, so the query needs a time window (formula
      // (3)); [0, 2000] covers every event, keeping this a spatial test.
      "f = FILTER p BY INTERSECTS('POLYGON((-1 -1, 12 -1, 12 12, -1 12, "
      "-1 -1))', 0, 2000);\n"
      "DUMP f;";
  AnalyzeReport report;
  ASSERT_TRUE(interp_.RunScriptAnalyze(script, &report).ok());
  ASSERT_EQ(report.operators.size(), 5u);
  EXPECT_GT(report.total_ms, 0.0);

  const OperatorProfile& load = report.operators[0];
  EXPECT_NE(load.statement.find("LOAD"), std::string::npos);
  EXPECT_TRUE(load.produced_relation);
  EXPECT_EQ(load.rows_out, 100u);
  EXPECT_GE(load.wall_ms, 0.0);

  const OperatorProfile& part = report.operators[2];
  EXPECT_NE(part.statement.find("PARTITION"), std::string::npos);
  EXPECT_EQ(part.rows_out, 100u);
  EXPECT_GE(part.num_partitions, 2u);  // 4x4 grid, non-empty cells kept

  // The spatial FILTER statement gets the pruning counters attributed to
  // it — not to the DUMP that would otherwise trigger evaluation.
  const OperatorProfile& filter = report.operators[3];
  EXPECT_NE(filter.statement.find("FILTER"), std::string::npos);
  EXPECT_TRUE(filter.produced_relation);
  EXPECT_EQ(filter.rows_out, 4u);  // lattice points at 0/10 in both axes
  EXPECT_GE(filter.filter.partitions_pruned, 1u);
  EXPECT_GE(filter.filter.partitions_scanned, 1u);
  EXPECT_EQ(filter.filter.results, filter.rows_out);
  // No pruning stats leak into non-filter operators.
  EXPECT_EQ(load.filter.partitions_pruned, 0u);
  EXPECT_EQ(part.filter.partitions_pruned, 0u);

  // Sinks profile wall time but produce no relation.
  const OperatorProfile& dump = report.operators[4];
  EXPECT_NE(dump.statement.find("DUMP"), std::string::npos);
  EXPECT_FALSE(dump.produced_relation);

  // The rendered report carries the headline numbers.
  const std::string text = FormatAnalyzeReport(report);
  EXPECT_NE(text.find("EXPLAIN ANALYZE"), std::string::npos);
  EXPECT_NE(text.find("pruned="), std::string::npos);
  EXPECT_NE(text.find("FILTER"), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, JoinScriptCarriesQueryProfileTree) {
  const std::string script =
      "events = LOAD '" + csv_path_ + "';\n" +
      "s = SPATIALIZE events;\n"
      "p = PARTITION s BY GRID(4);\n"
      "j = JOIN p, s ON INTERSECTS;\n"
      "DUMP j;";
  AnalyzeReport report;
  ASSERT_TRUE(interp_.RunScriptAnalyze(script, &report).ok());
  ASSERT_EQ(report.operators.size(), 5u);

  // The hierarchical QueryProfile mirrors the script: a script root with
  // one statement child per executed statement, each holding the engine
  // jobs (stages) that statement ran.
  EXPECT_EQ(report.profile.kind, obs::ProfileNodeKind::kScript);
  ASSERT_EQ(report.profile.children.size(), 5u);
  const obs::ProfileNode& join_stmt = report.profile.children[3];
  EXPECT_EQ(join_stmt.kind, obs::ProfileNodeKind::kStatement);
  EXPECT_NE(join_stmt.label.find("JOIN"), std::string::npos);
  EXPECT_GE(join_stmt.wall_ms, 0.0);
  ASSERT_FALSE(join_stmt.children.empty())
      << "JOIN statement ran no profiled engine jobs";
  uint64_t join_rows = 0;
  for (const obs::ProfileNode& job : join_stmt.children) {
    EXPECT_EQ(job.kind, obs::ProfileNodeKind::kJob);
    EXPECT_GE(job.partitions, 1u);
    EXPECT_FALSE(job.failed);
    join_rows += job.rows_out;
  }
  EXPECT_GT(join_rows, 0u);

  // Per-operator access mirrors the tree (this is what the formatter
  // walks), and the rendered report shows the per-job stat lines.
  EXPECT_EQ(report.operators[3].profile.children.size(),
            join_stmt.children.size());
  const std::string text = FormatAnalyzeReport(report);
  EXPECT_NE(text.find(join_stmt.children[0].label), std::string::npos);
  EXPECT_NE(text.find("parts="), std::string::npos);
  EXPECT_NE(text.find(" ms"), std::string::npos);

  // The tree also renders standalone (shell \a uses the same path).
  const std::string tree = obs::FormatProfileTree(report.profile);
  EXPECT_NE(tree.find("JOIN"), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, ErrorKeepsProfilesOfExecutedStatements) {
  const std::string script = "events = LOAD '" + csv_path_ +
                             "';\n"
                             "bad = FILTER missing BY id == 1;\n";
  AnalyzeReport report;
  EXPECT_FALSE(interp_.RunScriptAnalyze(script, &report).ok());
  // The LOAD ran and is profiled; the failing statement is not.
  ASSERT_EQ(report.operators.size(), 1u);
  EXPECT_NE(report.operators[0].statement.find("LOAD"), std::string::npos);
  EXPECT_EQ(report.operators[0].rows_out, 100u);
}

}  // namespace
}  // namespace piglet
}  // namespace stark
