// Checkpoint hardening tests: the version-2 on-disk format carries a
// per-part CRC-32, so truncation and bit flips are detected and reported
// as clean IOErrors instead of deserializing garbage, and
// LoadCheckpointOrRecompute falls back to lineage recomputation (and heals
// the damaged checkpoint) exactly like Spark recomputes a lost block.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/checkpoint.h"
#include "engine/rdd.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "spatial_rdd/value_serde.h"
#include "test_util.h"

namespace stark {
namespace {

uint64_t CounterValue(const char* name) {
  return obs::DefaultMetrics().GetCounter(name)->Value();
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

class CheckpointRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::DefaultFailPoints().DisarmAll();
    dir_ = test::UniqueTempPath("ckpt_recovery");
    ASSERT_EQ(std::system(("rm -rf " + dir_ + " && mkdir -p " + dir_).c_str()),
              0);
  }
  void TearDown() override { fault::DefaultFailPoints().DisarmAll(); }

  std::vector<int64_t> Values() const {
    std::vector<int64_t> v;
    for (int64_t i = 0; i < 200; ++i) v.push_back(i * 7 - 3);
    return v;
  }

  RDD<int64_t> Lineage() { return MakeRDD(&ctx_, Values(), 4); }

  void WriteHealthyCheckpoint() {
    ASSERT_TRUE(Checkpoint(Lineage(), dir_).ok());
  }

  std::string PartPath(int p) const {
    return dir_ + "/part-" + std::to_string(p) + ".bin";
  }

  Context ctx_{4};
  std::string dir_;
};

TEST_F(CheckpointRecoveryTest, RoundTripsVersion2Format) {
  WriteHealthyCheckpoint();
  auto loaded = LoadCheckpoint<int64_t>(&ctx_, dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie().NumPartitions(), 4u);
  EXPECT_EQ(loaded.ValueOrDie().Collect(), Values());
}

TEST_F(CheckpointRecoveryTest, TruncatedPartIsACleanIOError) {
  WriteHealthyCheckpoint();
  std::vector<char> bytes = ReadAll(PartPath(0));
  ASSERT_GT(bytes.size(), 16u);
  bytes.resize(bytes.size() / 2);  // drop the tail, including the CRC
  WriteAll(PartPath(0), bytes);

  const uint64_t crc_errors_before = CounterValue("engine.checkpoint.crc_errors");
  auto loaded = LoadCheckpoint<int64_t>(&ctx_, dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  EXPECT_NE(loaded.status().message().find("part-0.bin"), std::string::npos);
  EXPECT_GT(CounterValue("engine.checkpoint.crc_errors"), crc_errors_before);
}

TEST_F(CheckpointRecoveryTest, TruncatedBelowHeaderIsACleanIOError) {
  WriteHealthyCheckpoint();
  WriteAll(PartPath(1), std::vector<char>{'S', 'T'});
  auto loaded = LoadCheckpoint<int64_t>(&ctx_, dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  EXPECT_NE(loaded.status().message().find("truncated"), std::string::npos);
}

TEST_F(CheckpointRecoveryTest, BitFlipIsDetectedByChecksum) {
  WriteHealthyCheckpoint();
  std::vector<char> bytes = ReadAll(PartPath(2));
  bytes[bytes.size() / 2] ^= 0x40;  // flip one bit mid-payload
  WriteAll(PartPath(2), bytes);

  auto loaded = LoadCheckpoint<int64_t>(&ctx_, dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos);
}

TEST_F(CheckpointRecoveryTest, MissingMetaIsAnError) {
  WriteHealthyCheckpoint();
  ASSERT_EQ(std::remove((dir_ + "/_meta").c_str()), 0);
  EXPECT_FALSE(LoadCheckpoint<int64_t>(&ctx_, dir_).ok());
}

TEST_F(CheckpointRecoveryTest, MissingPartIsAnError) {
  WriteHealthyCheckpoint();
  ASSERT_EQ(std::remove(PartPath(3).c_str()), 0);
  EXPECT_FALSE(LoadCheckpoint<int64_t>(&ctx_, dir_).ok());
}

TEST_F(CheckpointRecoveryTest, BadMetaMagicOrVersionIsAnError) {
  WriteHealthyCheckpoint();
  std::vector<char> meta = ReadAll(dir_ + "/_meta");

  std::vector<char> bad_magic = meta;
  bad_magic[0] ^= 0x01;
  WriteAll(dir_ + "/_meta", bad_magic);
  auto loaded = LoadCheckpoint<int64_t>(&ctx_, dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("magic"), std::string::npos);

  std::vector<char> bad_version = meta;
  bad_version[4] = 99;  // version field follows the u32 magic
  WriteAll(dir_ + "/_meta", bad_version);
  loaded = LoadCheckpoint<int64_t>(&ctx_, dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

TEST_F(CheckpointRecoveryTest, RecomputesFromLineageWhenPartIsCorrupt) {
  WriteHealthyCheckpoint();
  std::vector<char> bytes = ReadAll(PartPath(0));
  bytes[bytes.size() / 3] ^= 0x08;
  WriteAll(PartPath(0), bytes);

  const uint64_t recovered_before = CounterValue("engine.checkpoint.recovered");
  auto rdd = LoadCheckpointOrRecompute<int64_t>(&ctx_, dir_, Lineage());
  ASSERT_TRUE(rdd.ok()) << rdd.status().ToString();
  EXPECT_EQ(rdd.ValueOrDie().Collect(), Values());
  EXPECT_EQ(CounterValue("engine.checkpoint.recovered") - recovered_before,
            1u);

  // Recovery healed the checkpoint: a plain load now succeeds again.
  auto reloaded = LoadCheckpoint<int64_t>(&ctx_, dir_);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded.ValueOrDie().Collect(), Values());
}

TEST_F(CheckpointRecoveryTest, RecomputesWhenCheckpointNeverExisted) {
  const uint64_t recovered_before = CounterValue("engine.checkpoint.recovered");
  auto rdd = LoadCheckpointOrRecompute<int64_t>(&ctx_, dir_, Lineage());
  ASSERT_TRUE(rdd.ok()) << rdd.status().ToString();
  EXPECT_EQ(rdd.ValueOrDie().Collect(), Values());
  EXPECT_EQ(CounterValue("engine.checkpoint.recovered") - recovered_before,
            1u);
  // ...and wrote the checkpoint for the next reader.
  EXPECT_TRUE(LoadCheckpoint<int64_t>(&ctx_, dir_).ok());
}

TEST_F(CheckpointRecoveryTest, HealthyCheckpointSkipsRecomputation) {
  WriteHealthyCheckpoint();
  const uint64_t recovered_before = CounterValue("engine.checkpoint.recovered");
  auto rdd = LoadCheckpointOrRecompute<int64_t>(&ctx_, dir_, Lineage());
  ASSERT_TRUE(rdd.ok());
  EXPECT_EQ(CounterValue("engine.checkpoint.recovered"), recovered_before);
}

TEST_F(CheckpointRecoveryTest, PersistentReadFaultFallsBackToLineage) {
  WriteHealthyCheckpoint();
  ASSERT_TRUE(fault::DefaultFailPoints()
                  .ArmFromSpec("engine.checkpoint.read=every:1")
                  .ok());
  auto rdd = LoadCheckpointOrRecompute<int64_t>(&ctx_, dir_, Lineage());
  ASSERT_TRUE(rdd.ok()) << rdd.status().ToString();
  EXPECT_EQ(rdd.ValueOrDie().Collect(), Values());
}

TEST_F(CheckpointRecoveryTest, PairElementsSurviveCorruptionRecovery) {
  std::vector<std::pair<std::string, int64_t>> data;
  for (int i = 0; i < 50; ++i) data.emplace_back("k" + std::to_string(i), i);
  auto rdd = MakeRDD(&ctx_, data, 3);
  ASSERT_TRUE(Checkpoint(rdd, dir_).ok());

  std::vector<char> bytes = ReadAll(PartPath(1));
  bytes[10] ^= 0xFF;
  WriteAll(PartPath(1), bytes);

  auto recovered = LoadCheckpointOrRecompute<std::pair<std::string, int64_t>>(
      &ctx_, dir_, rdd);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  auto out = recovered.ValueOrDie().Collect();
  EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace stark
