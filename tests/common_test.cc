// Tests for the common substrate: Status/Result, binary serde streams,
// the worker thread pool and the deterministic RNG.
#include <atomic>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "test_util.h"

#include "common/result.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace stark {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad ring");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad ring");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad ring");
}

TEST(StatusTest, CopySemantics) {
  Status a = Status::IOError("disk gone");
  Status b = a;
  EXPECT_EQ(b.ToString(), a.ToString());
  Status c;
  c = b;
  EXPECT_EQ(c.code(), StatusCode::kIOError);
  // Self-assignment must be safe.
  c = *&c;
  EXPECT_EQ(c.code(), StatusCode::kIOError);
}

TEST(StatusTest, EachFactoryProducesItsCode) {
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::KeyError("x").code(), StatusCode::kKeyError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::UnknownError("x").code(), StatusCode::kUnknownError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.ValueOrDie(), 7);
  EXPECT_EQ(r.ValueOr(3), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::KeyError("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kKeyError);
  EXPECT_EQ(r.ValueOr(3), 3);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  STARK_ASSIGN_OR_RETURN(int half, HalveEven(x));
  STARK_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(QuarterEven(8).ValueOrDie(), 2);
  EXPECT_FALSE(QuarterEven(6).ok());   // 6/2 = 3 is odd
  EXPECT_FALSE(QuarterEven(5).ok());
}

TEST(SerdeTest, ScalarRoundTrip) {
  BinaryWriter w;
  w.WriteU8(200);
  w.WriteU32(123456u);
  w.WriteU64(99);
  w.WriteI64(-42);
  w.WriteDouble(3.25);
  w.WriteBool(true);
  w.WriteBool(false);
  w.WriteString("hello, stark");

  BinaryReader r(w.buffer());
  EXPECT_EQ(r.ReadU8().ValueOrDie(), 200);
  EXPECT_EQ(r.ReadU32().ValueOrDie(), 123456u);
  EXPECT_EQ(r.ReadU64().ValueOrDie(), 99u);
  EXPECT_EQ(r.ReadI64().ValueOrDie(), -42);
  EXPECT_EQ(r.ReadDouble().ValueOrDie(), 3.25);
  EXPECT_TRUE(r.ReadBool().ValueOrDie());
  EXPECT_FALSE(r.ReadBool().ValueOrDie());
  EXPECT_EQ(r.ReadString().ValueOrDie(), "hello, stark");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, TruncatedStreamIsIOError) {
  BinaryWriter w;
  w.WriteU32(7);
  BinaryReader r(w.buffer());
  EXPECT_TRUE(r.ReadU64().status().code() == StatusCode::kIOError);
}

TEST(SerdeTest, TruncatedStringIsIOError) {
  BinaryWriter w;
  w.WriteU64(1'000'000);  // length prefix far beyond the buffer
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.ReadString().status().code(), StatusCode::kIOError);
}

TEST(SerdeTest, FileRoundTrip) {
  const std::string path = test::UniqueTempPath("stark_serde_file");
  std::vector<char> payload{'a', 'b', 'c', '\0', 'd'};
  ASSERT_TRUE(WriteFileBytes(path, payload).ok());
  auto read = ReadFileBytes(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.ValueOrDie(), payload);
  std::remove(path.c_str());
}

TEST(SerdeTest, MissingFileIsIOError) {
  auto read = ReadFileBytes("/nonexistent/stark/file");
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

TEST(ThreadPoolTest, SubmitReturnsValues) {
  ThreadPool pool(3);
  auto f1 = pool.Submit([] { return 1 + 1; });
  auto f2 = pool.Submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 2);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i]++; });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(8,
                       [&](size_t i) {
                         if (i == 3) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ZeroAndOneShortcut) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
  int calls = 0;
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1'000'000), b.UniformInt(0, 1'000'000));
  }
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

}  // namespace
}  // namespace stark
