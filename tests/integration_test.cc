// End-to-end integration tests: the full pipeline of the paper's Figure 2 —
// raw data -> (load) -> spatial partitioning -> optional indexing ->
// store/load index -> query execution — plus cross-operator consistency
// checks (scan vs index vs reloaded index vs Piglet must all agree).
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "test_util.h"

#include "clustering/distributed_dbscan.h"
#include "io/csv.h"
#include "io/generator.h"
#include "partition/bsp_partitioner.h"
#include "partition/grid_partitioner.h"
#include "piglet/interpreter.h"
#include "spatial_rdd/join.h"
#include "spatial_rdd/spatial_rdd.h"

namespace stark {
namespace {

using Payload = std::pair<int64_t, std::string>;

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() {
    EventsOptions gen;
    gen.count = 3000;
    gen.universe = Envelope(0, 0, 100, 100);
    gen.clusters = 5;
    gen.seed = 91;
    gen.time_min = 0;
    gen.time_max = 10'000;
    records_ = GenerateEvents(gen);
    csv_path_ = test::UniqueTempPath("stark_integration.csv");
    STARK_CHECK(WriteEventsCsv(csv_path_, records_).ok());
  }

  ~IntegrationTest() override { std::remove(csv_path_.c_str()); }

  static std::set<int64_t> Ids(
      const std::vector<std::pair<STObject, Payload>>& elems) {
    std::set<int64_t> ids;
    for (const auto& [obj, payload] : elems) ids.insert(payload.first);
    return ids;
  }

  Context ctx_{4};
  std::vector<EventRecord> records_;
  std::string csv_path_;
};

TEST_F(IntegrationTest, Figure2WorkflowEndToEnd) {
  // Load from "HDFS" (local CSV), convert, and wrap — §2.3 preprocessing.
  auto loaded = ReadEventsCsv(csv_path_).ValueOrDie();
  ASSERT_EQ(loaded.size(), records_.size());
  auto pairs = EventsToPairs(loaded).ValueOrDie();
  auto events = SpatialRDD<Payload>::FromVector(&ctx_, std::move(pairs));

  // Spatial partitioning (BSP over the data's centroids).
  std::vector<Coordinate> centroids;
  for (const auto& [obj, payload] : events.rdd().Collect()) {
    centroids.push_back(obj.Centroid());
  }
  BSPartitioner::Options bsp_options;
  bsp_options.max_cost = 300;
  auto bsp = std::make_shared<BSPartitioner>(Envelope(0, 0, 100, 100),
                                             centroids, bsp_options);
  auto parted = events.PartitionBy(bsp);
  ASSERT_EQ(parted.rdd().Count(), records_.size());

  // Optional indexing, persisted to disk.
  const std::string index_dir = test::UniqueTempPath("stark_integ_idx");
  ASSERT_EQ(std::system(("mkdir -p " + index_dir).c_str()), 0);
  auto indexed = parted.Index(8);
  ASSERT_TRUE(indexed.Save(index_dir).ok());

  // Query execution: the same spatio-temporal query through four paths.
  const STObject qry(Geometry::MakeBox(Envelope(10, 10, 55, 60)), 2'000,
                     8'000);
  const auto scan_ids = Ids(events.Intersects(qry).Collect());
  const auto pruned_ids = Ids(parted.Intersects(qry).Collect());
  const auto live_ids = Ids(parted.LiveIndex(5).Intersects(qry).Collect());
  auto reloaded = IndexedSpatialRDD<Payload>::Load(&ctx_, index_dir);
  ASSERT_TRUE(reloaded.ok());
  const auto disk_ids =
      Ids(reloaded.ValueOrDie().Intersects(qry).Collect());

  EXPECT_FALSE(scan_ids.empty());
  EXPECT_EQ(scan_ids, pruned_ids);
  EXPECT_EQ(scan_ids, live_ids);
  EXPECT_EQ(scan_ids, disk_ids);
}

TEST_F(IntegrationTest, PigletAgreesWithNativeApi) {
  // The same filter once through the Scala-style API and once as a Piglet
  // script must select the same ids.
  auto pairs = EventsToPairs(records_).ValueOrDie();
  auto events = SpatialRDD<Payload>::FromVector(&ctx_, std::move(pairs));
  const STObject qry(Geometry::MakeBox(Envelope(20, 20, 70, 70)), 1'000,
                     9'000);
  const auto native_ids = Ids(events.ContainedBy(qry).Collect());

  std::ostringstream out;
  piglet::Interpreter interp(&ctx_, &out);
  const std::string script =
      "events = LOAD '" + csv_path_ + "';\n" +
      "s = SPATIALIZE events;\n" +
      "hits = FILTER s BY CONTAINEDBY('POLYGON((20 20, 70 20, 70 70, "
      "20 70, 20 20))', 1000, 9000);\n";
  ASSERT_TRUE(interp.RunScript(script).ok());
  std::set<int64_t> piglet_ids;
  for (const auto& row :
       interp.relation("hits").ValueOrDie()->rdd.Collect()) {
    piglet_ids.insert(std::get<int64_t>(row.fields[0]));
  }
  EXPECT_EQ(piglet_ids, native_ids);
  EXPECT_FALSE(native_ids.empty());
}

TEST_F(IntegrationTest, JoinThenClusterPipeline) {
  // Join events against region polygons, then cluster the matching events —
  // the kind of multi-operator pipeline the demo scenarios describe.
  auto pairs = EventsToPairs(records_).ValueOrDie();
  auto events =
      SpatialRDD<Payload>::FromVector(&ctx_, std::move(pairs)).Cache();

  PolygonsOptions pgen;
  pgen.count = 12;
  pgen.universe = Envelope(0, 0, 100, 100);
  pgen.min_radius = 5;
  pgen.max_radius = 15;
  auto polys = GenerateRandomPolygons(pgen);
  std::vector<std::pair<STObject, int64_t>> regions;
  for (size_t i = 0; i < polys.size(); ++i) {
    regions.emplace_back(polys[i], static_cast<int64_t>(i));
  }
  auto region_rdd = SpatialRDD<int64_t>::FromVector(&ctx_, regions);

  // Spatial-only join: strip the events' time so formula (2) applies.
  auto spatial_events = SpatialRDD<Payload>(
      events.rdd().Map([](std::pair<STObject, Payload>& e) {
        return std::make_pair(STObject(e.first.geo()), std::move(e.second));
      }));
  auto in_region = SpatialJoinProject(
      spatial_events, region_rdd, JoinPredicate::ContainedBy(), {},
      [](const std::pair<STObject, Payload>& l,
         const std::pair<STObject, int64_t>& r) {
        return std::make_pair(l.first, std::make_pair(l.second.first,
                                                      r.second));
      });
  const size_t join_count = in_region.Count();
  EXPECT_GT(join_count, 0u);

  // Cluster the joined events.
  auto grid = std::make_shared<GridPartitioner>(Envelope(0, 0, 100, 100), 4);
  SpatialRDD<std::pair<int64_t, int64_t>> joined(in_region);
  auto clustered = DistributedDbscan(joined, {2.0, 10}, grid);
  EXPECT_EQ(clustered.Count(), join_count);

  // Every cluster id is either noise or a dense group of >= min_pts? Not
  // necessarily (border points), but every non-noise cluster has >= 2
  // members and clusters partition the labeled points.
  std::map<int64_t, size_t> sizes;
  for (const auto& [elem, label] : clustered.Collect()) {
    if (label != kNoise) sizes[label]++;
  }
  for (const auto& [label, size] : sizes) {
    EXPECT_GE(size, 2u) << "cluster " << label;
  }
}

TEST_F(IntegrationTest, RepartitioningIsLossless) {
  // Shuffling between partitioners must never lose or duplicate elements.
  auto pairs = EventsToPairs(records_).ValueOrDie();
  auto events = SpatialRDD<Payload>::FromVector(&ctx_, std::move(pairs));
  const auto original = Ids(events.rdd().Collect());

  auto grid = std::make_shared<GridPartitioner>(Envelope(0, 0, 100, 100), 7);
  auto once = events.PartitionBy(grid);
  auto grid2 = std::make_shared<GridPartitioner>(Envelope(0, 0, 100, 100), 3);
  auto twice = once.PartitionBy(grid2);

  EXPECT_EQ(Ids(once.rdd().Collect()), original);
  EXPECT_EQ(Ids(twice.rdd().Collect()), original);
  EXPECT_EQ(twice.NumPartitions(), 9u);
}

}  // namespace
}  // namespace stark
