// Tests for the R-tree: incremental insertion, STR bulk loading, envelope
// queries and branch-and-bound kNN, verified against brute force and
// parameterized over the tree order (the paper's liveIndex `order`).
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "index/rtree.h"

namespace stark {
namespace {

std::vector<std::pair<Envelope, size_t>> RandomBoxes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<Envelope, size_t>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.Uniform(-100, 100);
    const double y = rng.Uniform(-100, 100);
    const double w = rng.Uniform(0, 4);
    const double h = rng.Uniform(0, 4);
    out.emplace_back(Envelope(x, y, x + w, y + h), i);
  }
  return out;
}

std::set<size_t> BruteForceQuery(
    const std::vector<std::pair<Envelope, size_t>>& data,
    const Envelope& probe) {
  std::set<size_t> hits;
  for (const auto& [env, id] : data) {
    if (env.Intersects(probe)) hits.insert(id);
  }
  return hits;
}

std::set<size_t> TreeQuery(const RTree<size_t>& tree, const Envelope& probe) {
  std::set<size_t> hits;
  tree.Query(probe, [&](const Envelope&, const size_t& id) {
    auto [it, inserted] = hits.insert(id);
    EXPECT_TRUE(inserted) << "duplicate id " << id << " from tree query";
  });
  return hits;
}

TEST(RTreeTest, EmptyTree) {
  RTree<int> tree(4);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  int hits = 0;
  tree.Query(Envelope(-1e9, -1e9, 1e9, 1e9),
             [&](const Envelope&, const int&) { ++hits; });
  EXPECT_EQ(hits, 0);
  EXPECT_TRUE(tree.Knn({0, 0}, 3, [](const int&) { return 0.0; }).empty());
}

TEST(RTreeTest, OrderIsClampedToAtLeastTwo) {
  RTree<int> tree(0);
  EXPECT_GE(tree.order(), 2u);
}

TEST(RTreeTest, SingleEntry) {
  RTree<size_t> tree(4);
  tree.Insert(Envelope(0, 0, 1, 1), 7);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(TreeQuery(tree, Envelope(0.5, 0.5, 2, 2)),
            (std::set<size_t>{7}));
  EXPECT_TRUE(TreeQuery(tree, Envelope(5, 5, 6, 6)).empty());
}

class RTreeOrderTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RTreeOrderTest, InsertMatchesBruteForce) {
  const auto data = RandomBoxes(500, 31);
  RTree<size_t> tree(GetParam());
  for (const auto& [env, id] : data) tree.Insert(env, id);
  EXPECT_EQ(tree.size(), data.size());

  Rng rng(32);
  for (int q = 0; q < 100; ++q) {
    const double x = rng.Uniform(-110, 110);
    const double y = rng.Uniform(-110, 110);
    const Envelope probe(x, y, x + rng.Uniform(0, 30), y + rng.Uniform(0, 30));
    EXPECT_EQ(TreeQuery(tree, probe), BruteForceQuery(data, probe));
  }
}

TEST_P(RTreeOrderTest, BulkLoadMatchesBruteForce) {
  const auto data = RandomBoxes(500, 33);
  RTree<size_t> tree(GetParam());
  tree.BulkLoad(data);
  EXPECT_EQ(tree.size(), data.size());

  Rng rng(34);
  for (int q = 0; q < 100; ++q) {
    const double x = rng.Uniform(-110, 110);
    const double y = rng.Uniform(-110, 110);
    const Envelope probe(x, y, x + rng.Uniform(0, 30), y + rng.Uniform(0, 30));
    EXPECT_EQ(TreeQuery(tree, probe), BruteForceQuery(data, probe));
  }
}

TEST_P(RTreeOrderTest, KnnMatchesBruteForce) {
  Rng rng(35);
  std::vector<std::pair<Envelope, size_t>> data;
  std::vector<Coordinate> pts;
  for (size_t i = 0; i < 400; ++i) {
    const Coordinate c{rng.Uniform(-50, 50), rng.Uniform(-50, 50)};
    pts.push_back(c);
    data.emplace_back(Envelope(c), i);
  }
  RTree<size_t> tree(GetParam());
  tree.BulkLoad(data);

  for (int q = 0; q < 50; ++q) {
    const Coordinate query{rng.Uniform(-60, 60), rng.Uniform(-60, 60)};
    for (size_t k : {1u, 5u, 17u}) {
      auto result = tree.Knn(query, k, [&](const size_t& id) {
        return query.DistanceTo(pts[id]);
      });
      ASSERT_EQ(result.size(), std::min<size_t>(k, pts.size()));
      // Distances must be ascending.
      for (size_t i = 1; i < result.size(); ++i) {
        EXPECT_LE(result[i - 1].first, result[i].first);
      }
      // The k-th distance must match brute force.
      std::vector<double> dists;
      for (const auto& p : pts) dists.push_back(query.DistanceTo(p));
      std::sort(dists.begin(), dists.end());
      EXPECT_DOUBLE_EQ(result.back().first, dists[result.size() - 1]);
    }
  }
}

TEST_P(RTreeOrderTest, ForEachVisitsEverything) {
  const auto data = RandomBoxes(200, 36);
  RTree<size_t> tree(GetParam());
  tree.BulkLoad(data);
  std::set<size_t> seen;
  tree.ForEach([&](const Envelope&, const size_t& id) { seen.insert(id); });
  EXPECT_EQ(seen.size(), data.size());
}

TEST_P(RTreeOrderTest, BoundsCoverAllEntries) {
  const auto data = RandomBoxes(300, 37);
  RTree<size_t> tree(GetParam());
  for (const auto& [env, id] : data) tree.Insert(env, id);
  for (const auto& [env, id] : data) {
    EXPECT_TRUE(tree.bounds().Contains(env));
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, RTreeOrderTest,
                         ::testing::Values(2, 3, 5, 10, 32),
                         [](const auto& info) {
                           return "order" + std::to_string(info.param);
                         });

TEST(RTreeTest, DuplicateEnvelopesAllReturned) {
  RTree<size_t> tree(4);
  for (size_t i = 0; i < 20; ++i) tree.Insert(Envelope(1, 1, 2, 2), i);
  EXPECT_EQ(TreeQuery(tree, Envelope(0, 0, 3, 3)).size(), 20u);
}

TEST(RTreeTest, DepthGrowsWithSize) {
  RTree<size_t> small(4);
  small.Insert(Envelope(0, 0, 1, 1), 0);
  EXPECT_EQ(small.Depth(), 1u);

  RTree<size_t> big(4);
  for (const auto& [env, id] : RandomBoxes(200, 38)) big.Insert(env, id);
  EXPECT_GT(big.Depth(), 2u);
}

TEST(RTreeTest, InsertKeepsEnvelopesTight) {
  // Regression for the Insert envelope-tightening bug: ancestors are now
  // expanded before overflow splits, so every node's envelope must equal
  // the exact union of its children at all times. The old AdjustUpward
  // ordering left stale (over-wide or under-wide) interior envelopes after
  // a split, which CheckInvariants flags.
  for (uint64_t seed : {7u, 21u, 99u}) {
    for (size_t order : {2u, 3u, 5u, 10u}) {
      RTree<size_t> tree(order);
      const auto data = RandomBoxes(300, seed);
      size_t step = 0;
      for (const auto& [env, id] : data) {
        tree.Insert(env, id);
        if (++step % 50 == 0) {
          ASSERT_TRUE(tree.CheckInvariants())
              << "seed " << seed << " order " << order << " after " << step;
        }
      }
      ASSERT_TRUE(tree.CheckInvariants()) << "seed " << seed << " order "
                                          << order;
      // Invariants must also survive the bulk-load path.
      tree.BulkLoad(data);
      ASSERT_TRUE(tree.CheckInvariants()) << "bulk, seed " << seed;
    }
  }
}

TEST(RTreeTest, BulkLoadReplacesContents) {
  RTree<size_t> tree(4);
  tree.Insert(Envelope(0, 0, 1, 1), 999);
  tree.BulkLoad(RandomBoxes(50, 39));
  EXPECT_EQ(tree.size(), 50u);
  std::set<size_t> seen;
  tree.ForEach([&](const Envelope&, const size_t& id) { seen.insert(id); });
  EXPECT_EQ(seen.count(999), 0u);
}

}  // namespace
}  // namespace stark
