// Concurrency and stress tests for the sparklet engine: cache thread
// safety, deep lineage chains, wide shuffles, and pruning interaction.
#include <atomic>
#include <numeric>
#include <thread>

#include <gtest/gtest.h>

#include "engine/pair_rdd.h"
#include "engine/rdd.h"

namespace stark {
namespace {

TEST(EngineStressTest, CacheIsComputedOnceUnderConcurrentActions) {
  Context ctx(4);
  std::atomic<int> computations{0};
  std::vector<int> data(1000);
  std::iota(data.begin(), data.end(), 0);
  auto cached = MakeRDD(&ctx, data, 8)
                    .Map([&computations](int& x) {
                      ++computations;
                      return x;
                    })
                    .Cache();
  // Hammer the cached RDD from several driver threads at once.
  std::vector<std::thread> drivers;
  std::atomic<size_t> total{0};
  for (int t = 0; t < 4; ++t) {
    drivers.emplace_back([&cached, &total] {
      for (int i = 0; i < 10; ++i) total += cached.Count();
    });
  }
  for (auto& d : drivers) d.join();
  EXPECT_EQ(total.load(), 4u * 10u * 1000u);
  EXPECT_EQ(computations.load(), 1000);  // each element computed exactly once
}

TEST(EngineStressTest, DeepLineageChain) {
  Context ctx(2);
  auto rdd = MakeRDD(&ctx, std::vector<int64_t>{1, 2, 3, 4, 5}, 2);
  // 200 chained maps: the lazy lineage must neither overflow nor slow down
  // catastrophically.
  for (int i = 0; i < 200; ++i) {
    rdd = rdd.Map([](int64_t& x) { return x + 1; });
  }
  auto out = rdd.Collect();
  EXPECT_EQ(out, (std::vector<int64_t>{201, 202, 203, 204, 205}));
}

TEST(EngineStressTest, WideShuffle) {
  Context ctx(4);
  constexpr size_t kN = 200'000;
  std::vector<int64_t> data(kN);
  std::iota(data.begin(), data.end(), 0);
  auto shuffled = MakeRDD(&ctx, std::move(data), 8)
                      .PartitionBy(64, [](const int64_t& x) {
                        return static_cast<size_t>(x) % 64;
                      });
  EXPECT_EQ(shuffled.NumPartitions(), 64u);
  EXPECT_EQ(shuffled.Count(), kN);
  const int64_t sum =
      shuffled.Fold(int64_t{0}, [](int64_t a, int64_t b) { return a + b; });
  EXPECT_EQ(sum, static_cast<int64_t>(kN) * (kN - 1) / 2);
}

TEST(EngineStressTest, PrunePartitionsComposesWithCache) {
  Context ctx(2);
  std::atomic<int> computations{0};
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  auto cached = MakeRDD(&ctx, data, 10)
                    .Map([&computations](int& x) {
                      ++computations;
                      return x;
                    })
                    .Cache();
  // Prune all but partition 0: only 10 elements may be computed.
  auto pruned = cached.PrunePartitions([](size_t p) { return p == 0; });
  EXPECT_EQ(pruned.Count(), 10u);
  EXPECT_EQ(computations.load(), 10);
  // The unpruned partitions are still reachable through the cache.
  EXPECT_EQ(cached.Count(), 100u);
  EXPECT_EQ(computations.load(), 100);
}

TEST(EngineStressTest, ReduceByKeyManyKeys) {
  Context ctx(4);
  constexpr int64_t kN = 100'000;
  std::vector<std::pair<int64_t, int64_t>> data;
  data.reserve(kN);
  for (int64_t i = 0; i < kN; ++i) data.emplace_back(i % 1000, 1);
  auto reduced = ReduceByKey(MakeRDD(&ctx, std::move(data), 16),
                             [](int64_t a, int64_t b) { return a + b; });
  auto out = reduced.Collect();
  ASSERT_EQ(out.size(), 1000u);
  for (const auto& [k, v] : out) EXPECT_EQ(v, kN / 1000);
}

TEST(EngineStressTest, UnionOfManyRdds) {
  Context ctx(2);
  RDD<int> acc = MakeRDD(&ctx, std::vector<int>{0}, 1);
  for (int i = 1; i < 50; ++i) {
    acc = acc.Union(MakeRDD(&ctx, std::vector<int>{i}, 1));
  }
  EXPECT_EQ(acc.NumPartitions(), 50u);
  EXPECT_EQ(acc.Count(), 50u);
  const int sum = acc.Fold(0, [](int a, int b) { return a + b; });
  EXPECT_EQ(sum, 49 * 50 / 2);
}

}  // namespace
}  // namespace stark
