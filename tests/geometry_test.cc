// Tests for the Geometry factories, envelopes and centroids.
#include <gtest/gtest.h>

#include "geometry/geometry.h"

namespace stark {
namespace {

TEST(GeometryTest, PointBasics) {
  Geometry g = Geometry::MakePoint(3, -4);
  EXPECT_TRUE(g.IsPoint());
  EXPECT_EQ(g.envelope(), Envelope(3, -4, 3, -4));
  EXPECT_EQ(g.Centroid().x, 3);
  EXPECT_EQ(g.Centroid().y, -4);
  EXPECT_EQ(g.NumCoordinates(), 1u);
}

TEST(GeometryTest, LineStringEnvelopeAndCentroid) {
  Geometry g =
      Geometry::MakeLineString({{0, 0}, {4, 0}, {4, 2}}).ValueOrDie();
  EXPECT_EQ(g.envelope(), Envelope(0, 0, 4, 2));
  // Vertex-mean centroid.
  EXPECT_DOUBLE_EQ(g.Centroid().x, 8.0 / 3.0);
}

TEST(GeometryTest, LineStringRequiresTwoPoints) {
  EXPECT_FALSE(Geometry::MakeLineString({{0, 0}}).ok());
  EXPECT_FALSE(Geometry::MakeLineString({}).ok());
}

TEST(GeometryTest, MultiPointRequiresOnePoint) {
  EXPECT_FALSE(Geometry::MakeMultiPoint({}).ok());
  EXPECT_TRUE(Geometry::MakeMultiPoint({{1, 1}}).ok());
}

TEST(GeometryTest, PolygonClosesAndValidates) {
  Geometry g = Geometry::MakePolygon({{0, 0}, {2, 0}, {2, 2}}).ValueOrDie();
  EXPECT_EQ(g.polygons()[0].shell.size(), 4u);
  EXPECT_FALSE(Geometry::MakePolygon({{0, 0}, {1, 1}}).ok());
  EXPECT_FALSE(Geometry::MakeMultiPolygon({}).ok());
}

TEST(GeometryTest, PolygonCentroidIsAreaWeighted) {
  Geometry g = Geometry::MakePolygon(
                   {{0, 0}, {6, 0}, {6, 6}, {0, 6}})
                   .ValueOrDie();
  EXPECT_DOUBLE_EQ(g.Centroid().x, 3.0);
  EXPECT_DOUBLE_EQ(g.Centroid().y, 3.0);
}

TEST(GeometryTest, MultiPolygonCentroidWeightsByArea) {
  // A big square (area 16, centroid (2,2)) and a far small one (area 1,
  // centroid (10.5, 10.5)): the combined centroid leans heavily to the big.
  std::vector<PolygonData> polys;
  polys.push_back({{{0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}}, {}});
  polys.push_back({{{10, 10}, {11, 10}, {11, 11}, {10, 11}, {10, 10}}, {}});
  Geometry g = Geometry::MakeMultiPolygon(std::move(polys)).ValueOrDie();
  const Coordinate c = g.Centroid();
  EXPECT_NEAR(c.x, (2.0 * 16 + 10.5 * 1) / 17.0, 1e-9);
  EXPECT_NEAR(c.y, c.x, 1e-9);
}

TEST(GeometryTest, MakeBoxIsClosedRectangle) {
  Geometry g = Geometry::MakeBox(Envelope(1, 2, 3, 5));
  EXPECT_EQ(g.type(), GeometryType::kPolygon);
  EXPECT_EQ(g.envelope(), Envelope(1, 2, 3, 5));
  EXPECT_EQ(g.polygons()[0].shell.size(), 5u);
}

TEST(GeometryTest, NumCoordinatesCountsAllRings) {
  Geometry g =
      Geometry::MakePolygon({{0, 0}, {9, 0}, {9, 9}, {0, 9}},
                            {{{1, 1}, {2, 1}, {2, 2}, {1, 2}}})
          .ValueOrDie();
  EXPECT_EQ(g.NumCoordinates(), 10u);  // 5 shell + 5 hole (closed rings)
}

TEST(GeometryTest, EqualityIsStructural) {
  Geometry a = Geometry::MakePoint(1, 2);
  Geometry b = Geometry::MakePoint(1, 2);
  Geometry c = Geometry::MakePoint(1, 3);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  Geometry line = Geometry::MakeLineString({{1, 2}, {3, 4}}).ValueOrDie();
  EXPECT_FALSE(a == line);
}

TEST(GeometryTest, TypeNames) {
  EXPECT_STREQ(GeometryTypeName(GeometryType::kPoint), "POINT");
  EXPECT_STREQ(GeometryTypeName(GeometryType::kMultiPolygon),
               "MULTIPOLYGON");
}

}  // namespace
}  // namespace stark
