// Tests for the Piglet logical optimizer: each rule in isolation, the
// conservative bail-outs, and end-to-end result equivalence between the
// optimized and unoptimized execution of the same script.
#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "test_util.h"

#include "io/csv.h"
#include "io/generator.h"
#include "piglet/interpreter.h"
#include "piglet/parser.h"

namespace stark {
namespace piglet {
namespace {

Program P(const std::string& source) {
  return Parse(source).ValueOrDie();
}

TEST(OptimizerTest, CloneExprDeepCopies) {
  Program p = P("x = FILTER y BY a == 1 AND NOT b == 2;");
  auto clone = CloneExpr(*p.statements[0].filter);
  EXPECT_EQ(clone->kind, Expr::Kind::kAnd);
  EXPECT_NE(clone->lhs.get(), p.statements[0].filter->lhs.get());
  EXPECT_EQ(clone->rhs->kind, Expr::Kind::kNot);
}

TEST(OptimizerTest, IsAttributeOnly) {
  EXPECT_TRUE(IsAttributeOnly(
      *P("x = FILTER y BY a == 1 AND b != 'z';").statements[0].filter));
  EXPECT_FALSE(IsAttributeOnly(
      *P("x = FILTER y BY INTERSECTS('POINT(0 0)');").statements[0].filter));
  EXPECT_FALSE(IsAttributeOnly(
      *P("x = FILTER y BY a == 1 AND INTERSECTS('POINT(0 0)');")
           .statements[0]
           .filter));
  EXPECT_TRUE(IsAttributeOnly(
      *P("x = FILTER y BY NOT a == 1;").statements[0].filter));
}

TEST(OptimizerTest, DeadCodeElimination) {
  OptimizerReport report;
  Program out = Optimize(P("a = LOAD 'f.csv';\n"
                           "b = LOAD 'g.csv';\n"  // never used
                           "DUMP a;"),
                         &report);
  EXPECT_EQ(out.statements.size(), 2u);
  EXPECT_EQ(report.removed_statements, 1u);
  EXPECT_EQ(out.statements[0].target, "a");
  EXPECT_EQ(out.statements[1].kind, Statement::Kind::kDump);
}

TEST(OptimizerTest, DeadCodeCascades) {
  // c depends on b depends on a; only DUMP x keeps x alive.
  OptimizerReport report;
  Program out = Optimize(P("x = LOAD 'f.csv';\n"
                           "a = LOAD 'g.csv';\n"
                           "b = FILTER a BY id == 1;\n"
                           "c = LIMIT b 5;\n"
                           "DUMP x;"),
                         &report);
  EXPECT_EQ(out.statements.size(), 2u);
  EXPECT_EQ(report.removed_statements, 3u);
}

TEST(OptimizerTest, MergesFilterChains) {
  OptimizerReport report;
  Program out = Optimize(P("a = LOAD 'f.csv';\n"
                           "b = FILTER a BY id == 1;\n"
                           "c = FILTER b BY time > 5;\n"
                           "DUMP c;"),
                         &report);
  EXPECT_EQ(report.merged_filters, 1u);
  ASSERT_EQ(out.statements.size(), 3u);  // LOAD, merged FILTER, DUMP
  const Statement& merged = out.statements[1];
  EXPECT_EQ(merged.kind, Statement::Kind::kFilter);
  EXPECT_EQ(merged.target, "c");
  EXPECT_EQ(merged.input, "a");
  EXPECT_EQ(merged.filter->kind, Expr::Kind::kAnd);
}

TEST(OptimizerTest, FilterChainNotMergedWhenIntermediateUsed) {
  OptimizerReport report;
  Program out = Optimize(P("a = LOAD 'f.csv';\n"
                           "b = FILTER a BY id == 1;\n"
                           "c = FILTER b BY time > 5;\n"
                           "DUMP b;\nDUMP c;"),
                         &report);
  EXPECT_EQ(report.merged_filters, 0u);
  EXPECT_EQ(out.statements.size(), 5u);
}

TEST(OptimizerTest, PushesAttributeFilterBelowPartition) {
  OptimizerReport report;
  Program out = Optimize(P("a = LOAD 'f.csv';\n"
                           "s = SPATIALIZE a;\n"
                           "p = PARTITION s BY GRID(4);\n"
                           "f = FILTER p BY category == 'x';\n"
                           "DUMP f;"),
                         &report);
  EXPECT_EQ(report.pushed_filters, 1u);
  // Expected order: LOAD, SPATIALIZE, pushed FILTER, PARTITION(f), DUMP.
  ASSERT_EQ(out.statements.size(), 5u);
  EXPECT_EQ(out.statements[2].kind, Statement::Kind::kFilter);
  EXPECT_EQ(out.statements[2].input, "s");
  EXPECT_EQ(out.statements[3].kind, Statement::Kind::kPartition);
  EXPECT_EQ(out.statements[3].target, "f");
  EXPECT_EQ(out.statements[3].input, out.statements[2].target);
}

TEST(OptimizerTest, SpatialFilterStaysAbovePartition) {
  OptimizerReport report;
  Program out = Optimize(
      P("a = LOAD 'f.csv';\n"
        "s = SPATIALIZE a;\n"
        "p = PARTITION s BY GRID(4);\n"
        "f = FILTER p BY INTERSECTS('POINT(1 1)');\n"
        "DUMP f;"),
      &report);
  EXPECT_EQ(report.pushed_filters, 0u);
  EXPECT_EQ(out.statements[2].kind, Statement::Kind::kPartition);
}

TEST(OptimizerTest, BailsOutOnReassignment) {
  OptimizerReport report;
  Program out = Optimize(P("a = LOAD 'f.csv';\n"
                           "a = FILTER a BY id == 1;\n"
                           "DUMP a;"),
                         &report);
  EXPECT_EQ(report.Total(), 0u);
  EXPECT_EQ(out.statements.size(), 3u);
}

class OptimizerExecutionTest : public ::testing::Test {
 protected:
  OptimizerExecutionTest() {
    csv_path_ = test::UniqueTempPath("optimizer_events.csv");
    EventsOptions gen;
    gen.count = 500;
    gen.universe = Envelope(0, 0, 100, 100);
    gen.seed = 121;
    STARK_CHECK(WriteEventsCsv(csv_path_, GenerateEvents(gen)).ok());
  }
  ~OptimizerExecutionTest() override { std::remove(csv_path_.c_str()); }

  std::string csv_path_;
  Context ctx_{2};
};

TEST_F(OptimizerExecutionTest, OptimizedOutputMatchesUnoptimized) {
  const std::string script =
      "events = LOAD '" + csv_path_ + "';\n" +
      "s = SPATIALIZE events;\n"
      "p = PARTITION s BY GRID(3);\n"
      "f = FILTER p BY category == 'sports';\n"
      "g = FILTER f BY time > 100;\n"
      "unused = LIMIT s 3;\n"
      "counts = AGGREGATE g BY category COUNT;\n"
      "DUMP counts;\n";

  std::ostringstream plain_out;
  Interpreter plain(&ctx_, &plain_out);
  ASSERT_TRUE(plain.RunScript(script).ok());

  std::ostringstream opt_out;
  Interpreter optimized(&ctx_, &opt_out);
  OptimizerReport report;
  ASSERT_TRUE(optimized.RunScriptOptimized(script, &report).ok());

  EXPECT_EQ(opt_out.str(), plain_out.str());
  EXPECT_GE(report.removed_statements, 1u);  // "unused" is dead
  EXPECT_GE(report.pushed_filters, 0u);
}

TEST_F(OptimizerExecutionTest, PushdownPreservesPartitionedSemantics) {
  const std::string script =
      "events = LOAD '" + csv_path_ + "';\n" +
      "s = SPATIALIZE events;\n"
      "p = PARTITION s BY GRID(3);\n"
      "f = FILTER p BY category == 'sports';\n"
      "DESCRIBE f;\nDUMP f;\n";

  std::ostringstream plain_out;
  Interpreter plain(&ctx_, &plain_out);
  ASSERT_TRUE(plain.RunScript(script).ok());

  std::ostringstream opt_out;
  Interpreter optimized(&ctx_, &opt_out);
  OptimizerReport report;
  ASSERT_TRUE(optimized.RunScriptOptimized(script, &report).ok());
  EXPECT_EQ(report.pushed_filters, 1u);

  // The unoptimized FILTER drops the partitioner (it re-materializes), the
  // optimized plan partitions last, so DESCRIBE differs — but the actual
  // tuples (DUMP) must be identical as multisets.
  auto tuples = [](const std::string& text) {
    std::multiset<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] == '(') lines.insert(line);
    }
    return lines;
  };
  EXPECT_EQ(tuples(opt_out.str()), tuples(plain_out.str()));
  // And the optimized relation is spatially partitioned.
  EXPECT_NE(opt_out.str().find("partitioned=grid"), std::string::npos);
}

}  // namespace
}  // namespace piglet
}  // namespace stark
