// Tests for the spatial partitioners (§2.1): grid and cost-based BSP.
#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "io/generator.h"
#include "partition/bsp_partitioner.h"
#include "partition/grid_partitioner.h"

namespace stark {
namespace {

TEST(GridPartitionerTest, CellLayout) {
  GridPartitioner grid(Envelope(0, 0, 10, 10), 2, 5);
  EXPECT_EQ(grid.NumPartitions(), 10u);
  EXPECT_EQ(grid.Name(), "grid");
  EXPECT_EQ(grid.PartitionBounds(0), Envelope(0, 0, 5, 2));
  EXPECT_EQ(grid.PartitionBounds(9), Envelope(5, 8, 10, 10));
}

TEST(GridPartitionerTest, AssignmentMatchesBounds) {
  GridPartitioner grid(Envelope(0, 0, 8, 8), 4);
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    const Coordinate c{rng.Uniform(0, 8), rng.Uniform(0, 8)};
    const size_t p = grid.PartitionFor(c);
    ASSERT_LT(p, grid.NumPartitions());
    EXPECT_TRUE(grid.PartitionBounds(p).Contains(c));
  }
}

TEST(GridPartitionerTest, OutOfUniverseIsClamped) {
  GridPartitioner grid(Envelope(0, 0, 8, 8), 4);
  EXPECT_LT(grid.PartitionFor({-5, -5}), grid.NumPartitions());
  EXPECT_LT(grid.PartitionFor({100, 100}), grid.NumPartitions());
  EXPECT_EQ(grid.PartitionFor({-5, -5}), grid.PartitionFor({0, 0}));
}

TEST(GridPartitionerTest, CellsTileTheUniverseWithoutOverlap) {
  GridPartitioner grid(Envelope(0, 0, 6, 6), 3);
  double total_area = 0.0;
  for (size_t i = 0; i < grid.NumPartitions(); ++i) {
    total_area += grid.PartitionBounds(i).Area();
    for (size_t j = i + 1; j < grid.NumPartitions(); ++j) {
      const Envelope overlap =
          grid.PartitionBounds(i).Intersection(grid.PartitionBounds(j));
      EXPECT_EQ(overlap.Area(), 0.0);  // cells may touch but not overlap
    }
  }
  EXPECT_DOUBLE_EQ(total_area, 36.0);
}

TEST(GridPartitionerTest, ExtentStartsAtBoundsAndGrows) {
  GridPartitioner grid(Envelope(0, 0, 8, 8), 2);
  EXPECT_EQ(grid.PartitionExtent(0), grid.PartitionBounds(0));
  grid.GrowExtent(0, Envelope(-1, -1, 1, 1));
  EXPECT_TRUE(grid.PartitionExtent(0).Contains(Envelope(-1, -1, 1, 1)));
  EXPECT_TRUE(grid.PartitionExtent(0).Contains(grid.PartitionBounds(0)));
  // Other partitions are untouched.
  EXPECT_EQ(grid.PartitionExtent(1), grid.PartitionBounds(1));
}

std::vector<Coordinate> Centroids(const std::vector<STObject>& objs) {
  std::vector<Coordinate> out;
  out.reserve(objs.size());
  for (const auto& o : objs) out.push_back(o.Centroid());
  return out;
}

TEST(BSPartitionerTest, RespectsCostThreshold) {
  SkewedPointsOptions gen;
  gen.count = 5000;
  gen.universe = Envelope(0, 0, 100, 100);
  const auto points = GenerateSkewedPoints(gen);
  const auto centroids = Centroids(points);

  BSPartitioner::Options options;
  options.max_cost = 500;
  BSPartitioner bsp(gen.universe, centroids, options);
  EXPECT_GT(bsp.NumPartitions(), 1u);
  EXPECT_EQ(bsp.Name(), "bsp");

  // No partition holds more than max_cost points (splits stop only at the
  // granularity threshold, which this workload never reaches).
  std::vector<size_t> counts(bsp.NumPartitions(), 0);
  for (const auto& c : centroids) counts[bsp.PartitionFor(c)]++;
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_LE(counts[i], options.max_cost) << "partition " << i;
  }
}

TEST(BSPartitionerTest, AssignmentMatchesBounds) {
  SkewedPointsOptions gen;
  gen.count = 2000;
  gen.universe = Envelope(0, 0, 100, 100);
  const auto centroids = Centroids(GenerateSkewedPoints(gen));
  BSPartitioner::Options options;
  options.max_cost = 200;
  BSPartitioner bsp(gen.universe, centroids, options);
  for (const auto& c : centroids) {
    const size_t p = bsp.PartitionFor(c);
    ASSERT_LT(p, bsp.NumPartitions());
    EXPECT_TRUE(bsp.PartitionBounds(p).Expanded(1e-9).Contains(c));
  }
}

TEST(BSPartitionerTest, LeavesTileTheUniverse) {
  SkewedPointsOptions gen;
  gen.count = 3000;
  gen.universe = Envelope(0, 0, 64, 64);
  const auto centroids = Centroids(GenerateSkewedPoints(gen));
  BSPartitioner::Options options;
  options.max_cost = 250;
  BSPartitioner bsp(gen.universe, centroids, options);

  double total_area = 0.0;
  for (size_t i = 0; i < bsp.NumPartitions(); ++i) {
    total_area += bsp.PartitionBounds(i).Area();
    for (size_t j = i + 1; j < bsp.NumPartitions(); ++j) {
      EXPECT_EQ(bsp.PartitionBounds(i)
                    .Intersection(bsp.PartitionBounds(j))
                    .Area(),
                0.0);
    }
  }
  EXPECT_NEAR(total_area, 64.0 * 64.0, 1e-6);
}

TEST(BSPartitionerTest, BalancesSkewBetterThanGrid) {
  // The paper's motivation: on skewed data the fixed grid has empty and
  // overfull cells; BSP equalizes the per-partition cost.
  SkewedPointsOptions gen;
  gen.count = 20'000;
  gen.universe = Envelope(0, 0, 100, 100);
  gen.clusters = 3;
  gen.cluster_spread = 0.01;
  gen.noise_fraction = 0.02;
  const auto centroids = Centroids(GenerateSkewedPoints(gen));

  BSPartitioner::Options options;
  options.max_cost = 2000;
  BSPartitioner bsp(gen.universe, centroids, options);
  GridPartitioner grid(gen.universe, 4);  // 16 cells, comparable count

  auto max_load = [&](const SpatialPartitioner& part) {
    std::vector<size_t> counts(part.NumPartitions(), 0);
    for (const auto& c : centroids) counts[part.PartitionFor(c)]++;
    return *std::max_element(counts.begin(), counts.end());
  };
  EXPECT_LT(max_load(bsp), max_load(grid));
  EXPECT_LE(max_load(bsp), options.max_cost);
}

TEST(BSPartitionerTest, MinSideLengthStopsRecursion) {
  // All points identical: splitting can never help; the granularity
  // threshold and the degenerate-split guard must terminate the recursion.
  std::vector<Coordinate> centroids(1000, Coordinate{5, 5});
  BSPartitioner::Options options;
  options.max_cost = 10;
  options.min_side_length = 1.0;
  BSPartitioner bsp(Envelope(0, 0, 10, 10), centroids, options);
  EXPECT_GE(bsp.NumPartitions(), 1u);
  // Every leaf respects the minimum side length.
  for (size_t i = 0; i < bsp.NumPartitions(); ++i) {
    const Envelope& b = bsp.PartitionBounds(i);
    EXPECT_GE(b.Width() + 1e-9, options.min_side_length);
    EXPECT_GE(b.Height() + 1e-9, options.min_side_length);
  }
}

TEST(BSPartitionerTest, EmptyInputYieldsSingleLeaf) {
  BSPartitioner bsp(Envelope(0, 0, 1, 1), {}, BSPartitioner::Options{});
  EXPECT_EQ(bsp.NumPartitions(), 1u);
  EXPECT_EQ(bsp.PartitionFor({0.5, 0.5}), 0u);
}

TEST(PartitionerTest, PartitionsWithinDistance) {
  GridPartitioner grid(Envelope(0, 0, 10, 10), 2);
  // Point at the center is near all four cells.
  EXPECT_EQ(grid.PartitionsWithinDistance({5, 5}, 0.5).size(), 4u);
  // Point deep inside cell 0 is near only cell 0.
  EXPECT_EQ(grid.PartitionsWithinDistance({1, 1}, 0.5).size(), 1u);
}

}  // namespace
}  // namespace stark
