// Deterministic failure-schedule tests for the fault-injection and
// retry/recovery subsystem: every injection site is driven here. A task
// that fails transiently must yield byte-identical results to the no-fault
// run; retries-exhausted must surface a Status (never an exception through
// the thread pool); seeded probabilistic schedules must be reproducible
// across runs.
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "engine/checkpoint.h"
#include "engine/pair_rdd.h"
#include "engine/rdd.h"
#include "fault/failpoint.h"
#include "fault/retry.h"
#include "obs/metrics.h"
#include "spatial_rdd/value_serde.h"
#include "test_util.h"

namespace stark {
namespace {

using fault::DefaultFailPoints;
using fault::FailPoint;
using fault::RetryPolicy;
using fault::TriggerPolicy;

uint64_t CounterValue(const char* name) {
  return obs::DefaultMetrics().GetCounter(name)->Value();
}

class FaultTest : public ::testing::Test {
 protected:
  // Sites may be armed by a previous test in this process or by a CI-level
  // STARK_FAILPOINTS; every test starts and ends from a clean slate so its
  // failure schedule is exactly the one it arms.
  void SetUp() override { DefaultFailPoints().DisarmAll(); }
  void TearDown() override { DefaultFailPoints().DisarmAll(); }

  Context ctx_{4};
};

std::vector<int> Iota(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

// ---------------------------------------------------------------------------
// Trigger-policy spec parsing
// ---------------------------------------------------------------------------

TEST(TriggerPolicyTest, ParsesNthEveryProbOff) {
  auto nth = TriggerPolicy::Parse("nth:3");
  ASSERT_TRUE(nth.ok());
  EXPECT_EQ(nth.ValueOrDie().kind, TriggerPolicy::Kind::kNth);
  EXPECT_EQ(nth.ValueOrDie().n, 3u);

  auto every = TriggerPolicy::Parse("every:2");
  ASSERT_TRUE(every.ok());
  EXPECT_EQ(every.ValueOrDie().kind, TriggerPolicy::Kind::kEvery);
  EXPECT_EQ(every.ValueOrDie().n, 2u);

  auto prob = TriggerPolicy::Parse("prob:0.25:seed=7");
  ASSERT_TRUE(prob.ok());
  EXPECT_EQ(prob.ValueOrDie().kind, TriggerPolicy::Kind::kProbability);
  EXPECT_DOUBLE_EQ(prob.ValueOrDie().probability, 0.25);
  EXPECT_EQ(prob.ValueOrDie().seed, 7u);

  auto prob_default_seed = TriggerPolicy::Parse("prob:1");
  ASSERT_TRUE(prob_default_seed.ok());
  EXPECT_DOUBLE_EQ(prob_default_seed.ValueOrDie().probability, 1.0);

  auto off = TriggerPolicy::Parse("off");
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off.ValueOrDie().kind, TriggerPolicy::Kind::kOff);
}

TEST(TriggerPolicyTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(TriggerPolicy::Parse("").ok());
  EXPECT_FALSE(TriggerPolicy::Parse("nth:0").ok());
  EXPECT_FALSE(TriggerPolicy::Parse("nth:x").ok());
  EXPECT_FALSE(TriggerPolicy::Parse("every:").ok());
  EXPECT_FALSE(TriggerPolicy::Parse("prob:1.5").ok());
  EXPECT_FALSE(TriggerPolicy::Parse("prob:-0.1").ok());
  EXPECT_FALSE(TriggerPolicy::Parse("prob:0.5:sneed=1").ok());
  EXPECT_FALSE(TriggerPolicy::Parse("sometimes:3").ok());
  EXPECT_FALSE(TriggerPolicy::Parse("off:1").ok());
}

TEST(TriggerPolicyTest, ToStringRoundTrips) {
  for (const char* spec :
       {"off", "nth:3", "every:7", "prob:0.25:seed=99", "delay:50",
        "delay:50@nth:2", "delay:50@every:7", "delay:5@prob:0.5:seed=9"}) {
    auto policy = TriggerPolicy::Parse(spec);
    ASSERT_TRUE(policy.ok()) << spec;
    EXPECT_EQ(policy.ValueOrDie().ToString(), spec);
  }
}

TEST(TriggerPolicyTest, ParsesDelayPolicies) {
  auto plain = TriggerPolicy::Parse("delay:50");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.ValueOrDie().action, TriggerPolicy::Action::kDelay);
  EXPECT_EQ(plain.ValueOrDie().delay_ms, 50u);
  // Bare delay fires on every hit.
  EXPECT_EQ(plain.ValueOrDie().kind, TriggerPolicy::Kind::kEvery);
  EXPECT_EQ(plain.ValueOrDie().n, 1u);

  auto scheduled = TriggerPolicy::Parse("delay:50@every:7");
  ASSERT_TRUE(scheduled.ok());
  EXPECT_EQ(scheduled.ValueOrDie().action, TriggerPolicy::Action::kDelay);
  EXPECT_EQ(scheduled.ValueOrDie().delay_ms, 50u);
  EXPECT_EQ(scheduled.ValueOrDie().kind, TriggerPolicy::Kind::kEvery);
  EXPECT_EQ(scheduled.ValueOrDie().n, 7u);

  EXPECT_FALSE(TriggerPolicy::Parse("delay:").ok());
  EXPECT_FALSE(TriggerPolicy::Parse("delay:x").ok());
  EXPECT_FALSE(TriggerPolicy::Parse("delay:5@").ok());
  EXPECT_FALSE(TriggerPolicy::Parse("delay:5@off").ok());
  EXPECT_FALSE(TriggerPolicy::Parse("delay:5@delay:6").ok());
}

TEST(TriggerPolicyTest, NthFiresExactlyOnce) {
  FailPoint fp("t");
  fp.Arm(TriggerPolicy::Parse("nth:3").ValueOrDie());
  std::vector<bool> fired;
  for (int i = 0; i < 10; ++i) fired.push_back(fp.ShouldFire());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                      false, false, false, false, false}));
  EXPECT_EQ(fp.hits(), 10u);
  EXPECT_EQ(fp.fires(), 1u);
}

TEST(TriggerPolicyTest, EveryFiresPeriodically) {
  FailPoint fp("t");
  fp.Arm(TriggerPolicy::Parse("every:3").ValueOrDie());
  int fires = 0;
  for (int i = 1; i <= 12; ++i) {
    if (fp.ShouldFire()) {
      EXPECT_EQ(i % 3, 0) << "fired at hit " << i;
      ++fires;
    }
  }
  EXPECT_EQ(fires, 4);
}

TEST(TriggerPolicyTest, DisarmedFailPointNeverCountsOrFires) {
  FailPoint fp("t");
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(fp.ShouldFire());
  EXPECT_EQ(fp.hits(), 0u);  // hits are only counted while armed
}

// ---------------------------------------------------------------------------
// Seeded probabilistic schedules are reproducible
// ---------------------------------------------------------------------------

TEST(TriggerPolicyTest, ProbabilisticScheduleIsReproducibleAcrossRuns) {
  const auto policy = TriggerPolicy::Parse("prob:0.3:seed=123").ValueOrDie();
  auto run_schedule = [&policy] {
    FailPoint fp("t");
    fp.Arm(policy);
    std::vector<uint64_t> fired_hits;
    for (uint64_t i = 1; i <= 1000; ++i) {
      if (fp.ShouldFire()) fired_hits.push_back(i);
    }
    return fired_hits;
  };
  const std::vector<uint64_t> first = run_schedule();
  const std::vector<uint64_t> second = run_schedule();
  EXPECT_EQ(first, second);
  // p=0.3 over 1000 hits: expect roughly 300 fires; a deterministic hash
  // schedule far outside [200, 400] would be a broken mapping, not chance.
  EXPECT_GT(first.size(), 200u);
  EXPECT_LT(first.size(), 400u);

  // A different seed must produce a different schedule.
  FailPoint other("t");
  other.Arm(TriggerPolicy::Parse("prob:0.3:seed=124").ValueOrDie());
  std::vector<uint64_t> other_hits;
  for (uint64_t i = 1; i <= 1000; ++i) {
    if (other.ShouldFire()) other_hits.push_back(i);
  }
  EXPECT_NE(first, other_hits);
}

TEST(TriggerPolicyTest, ProbabilisticDecisionIsPureInHitIndex) {
  // The decision depends only on (seed, hit), not on evaluation order —
  // this is what makes schedules reproducible under thread interleaving.
  for (uint64_t hit = 1; hit <= 100; ++hit) {
    EXPECT_EQ(FailPoint::ProbabilisticDecision(9, hit, 0.5),
              FailPoint::ProbabilisticDecision(9, hit, 0.5));
  }
  EXPECT_TRUE(FailPoint::ProbabilisticDecision(1, 1, 1.0));
  EXPECT_FALSE(FailPoint::ProbabilisticDecision(1, 1, 0.0));
}

// ---------------------------------------------------------------------------
// Registry and spec strings
// ---------------------------------------------------------------------------

TEST_F(FaultTest, RegistryReturnsStablePointers) {
  FailPoint* a = DefaultFailPoints().Get("test.site.a");
  EXPECT_EQ(a, DefaultFailPoints().Get("test.site.a"));
  EXPECT_NE(a, DefaultFailPoints().Get("test.site.b"));
}

TEST_F(FaultTest, ArmFromSpecArmsMultipleSites) {
  ASSERT_TRUE(DefaultFailPoints()
                  .ArmFromSpec("test.spec.a=nth:1; test.spec.b=every:2,"
                               "test.spec.c=prob:0.5:seed=3")
                  .ok());
  EXPECT_TRUE(DefaultFailPoints().Get("test.spec.a")->armed());
  EXPECT_TRUE(DefaultFailPoints().Get("test.spec.b")->armed());
  EXPECT_TRUE(DefaultFailPoints().Get("test.spec.c")->armed());
  EXPECT_EQ(DefaultFailPoints().Get("test.spec.c")->policy().seed, 3u);

  DefaultFailPoints().DisarmAll();
  EXPECT_FALSE(DefaultFailPoints().Get("test.spec.a")->armed());
}

TEST_F(FaultTest, ArmFromSpecRejectsGarbage) {
  EXPECT_FALSE(DefaultFailPoints().ArmFromSpec("no-equals-sign").ok());
  EXPECT_FALSE(DefaultFailPoints().ArmFromSpec("site=bogus:1").ok());
  EXPECT_FALSE(DefaultFailPoints().ArmFromSpec("=nth:1").ok());
  // "off" in a spec disarms the named site.
  ASSERT_TRUE(DefaultFailPoints().ArmFromSpec("test.off.site=nth:1").ok());
  ASSERT_TRUE(DefaultFailPoints().ArmFromSpec("test.off.site=off").ok());
  EXPECT_FALSE(DefaultFailPoints().Get("test.off.site")->armed());
}

TEST_F(FaultTest, ReportListsResolvedSites) {
  ASSERT_TRUE(DefaultFailPoints().ArmFromSpec("test.report.x=nth:2").ok());
  const std::string report = DefaultFailPoints().Report();
  EXPECT_NE(report.find("test.report.x"), std::string::npos);
  EXPECT_NE(report.find("nth:2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Retry policy knobs
// ---------------------------------------------------------------------------

TEST(RetryPolicyTest, EffectiveAttemptsAndBackoff) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.backoff_base_ms = 10;
  policy.backoff_multiplier = 2.0;
  EXPECT_EQ(policy.EffectiveAttempts(), 4u);
  EXPECT_EQ(policy.BackoffMs(1), 10u);
  EXPECT_EQ(policy.BackoffMs(2), 20u);
  EXPECT_EQ(policy.BackoffMs(3), 40u);

  policy.fail_fast = true;
  EXPECT_EQ(policy.EffectiveAttempts(), 1u);

  RetryPolicy no_backoff;
  EXPECT_EQ(no_backoff.BackoffMs(5), 0u);

  RetryPolicy capped;
  capped.backoff_base_ms = 5000;
  EXPECT_EQ(capped.BackoffMs(10), 10'000u);  // 10s cap
}

TEST(RetryPolicyTest, FromEnvReadsOverrides) {
  ::setenv("STARK_TASK_RETRIES", "5", 1);
  ::setenv("STARK_TASK_BACKOFF_MS", "17", 1);
  ::setenv("STARK_TASK_FAIL_FAST", "1", 1);
  const RetryPolicy policy = RetryPolicy::FromEnv();
  ::unsetenv("STARK_TASK_RETRIES");
  ::unsetenv("STARK_TASK_BACKOFF_MS");
  ::unsetenv("STARK_TASK_FAIL_FAST");
  EXPECT_EQ(policy.max_attempts, 5u);
  EXPECT_EQ(policy.backoff_base_ms, 17u);
  EXPECT_TRUE(policy.fail_fast);

  const RetryPolicy defaults = RetryPolicy::FromEnv();
  EXPECT_EQ(defaults.max_attempts, 3u);
  EXPECT_FALSE(defaults.fail_fast);
}

// ---------------------------------------------------------------------------
// Task boundary: exceptions become Status, never unwind through the pool
// ---------------------------------------------------------------------------

TEST(ThreadPoolFaultTest, TryParallelForConvertsExceptionsToStatus) {
  ThreadPool pool(2);
  const Status status = pool.TryParallelFor(8, [](size_t i) {
    if (i == 3) throw std::runtime_error("bad record");
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnknownError);
  EXPECT_NE(status.message().find("bad record"), std::string::npos);
}

TEST(ThreadPoolFaultTest, TryParallelForKeepsStatusErrorCode) {
  ThreadPool pool(2);
  const Status status = pool.TryParallelFor(4, [](size_t i) {
    if (i == 1) throw StatusError(Status::IOError("disk gone"));
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_NE(status.message().find("disk gone"), std::string::npos);
}

TEST(ThreadPoolFaultTest, TryParallelForRunsEveryTaskDespiteFailure) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  const Status status = pool.TryParallelFor(32, [&ran](size_t i) {
    ran.fetch_add(1);
    if (i % 2 == 0) throw std::runtime_error("boom");
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolFaultTest, ParallelForThrowsStatusErrorOnDriver) {
  ThreadPool pool(2);
  try {
    pool.ParallelFor(4, [](size_t i) {
      if (i == 2) throw std::runtime_error("kaboom");
    });
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kUnknownError);
    EXPECT_NE(e.status().message().find("kaboom"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Engine retry: transient failures recover with identical results
// ---------------------------------------------------------------------------

TEST_F(FaultTest, TransientTaskFaultYieldsIdenticalResults) {
  const std::vector<int> input = Iota(1000);
  auto pipeline = [this, &input] {
    return MakeRDD(&ctx_, input, 8)
        .Map([](int& x) { return x * 3; })
        .Filter([](const int& x) { return x % 2 == 0; })
        .Collect();
  };
  const std::vector<int> expected = pipeline();

  const uint64_t retries_before = CounterValue("engine.task.retries");
  const uint64_t injected_before = CounterValue("engine.fault.injected");
  ASSERT_TRUE(DefaultFailPoints().ArmFromSpec("engine.task.run=nth:1").ok());
  const std::vector<int> with_fault = pipeline();

  EXPECT_EQ(with_fault, expected);
  EXPECT_EQ(CounterValue("engine.fault.injected") - injected_before, 1u);
  EXPECT_GT(CounterValue("engine.task.retries"), retries_before)
      << "recovery path must actually have run";
}

TEST_F(FaultTest, UserTaskFailingTwiceThenSucceedingMatchesCleanRun) {
  // Not an injected fault: the user's own task body throws on its first
  // two executions (e.g. a flaky external resource) and then succeeds.
  const std::vector<int> expected =
      MakeRDD(&ctx_, Iota(100), 4).Map([](int& x) { return x + 1; }).Collect();

  std::atomic<int> failures_left{2};
  const std::vector<int> out =
      MakeRDD(&ctx_, Iota(100), 4)
          .Map([&failures_left](int& x) {
            if (x == 37 && failures_left.fetch_sub(1) > 0) {
              throw std::runtime_error("flaky record");
            }
            return x + 1;
          })
          .Collect();  // default policy: 3 attempts, so 2 failures recover
  EXPECT_EQ(out, expected);
}

TEST_F(FaultTest, RetriesExhaustedSurfaceStatusNotException) {
  ASSERT_TRUE(DefaultFailPoints().ArmFromSpec("engine.task.run=every:1").ok());
  const uint64_t jobs_failed_before = CounterValue("engine.jobs.failed");

  auto result = MakeRDD(&ctx_, Iota(64), 4).TryCollect();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("engine.task.run"),
            std::string::npos);
  EXPECT_NE(result.status().message().find("failed after 3 attempt"),
            std::string::npos);
  EXPECT_GT(CounterValue("engine.jobs.failed"), jobs_failed_before);

  auto count = MakeRDD(&ctx_, Iota(64), 4).TryCount();
  EXPECT_FALSE(count.ok());
}

TEST_F(FaultTest, ThrowingActionsSurfaceStatusErrorOnDriver) {
  ASSERT_TRUE(DefaultFailPoints().ArmFromSpec("engine.task.run=every:1").ok());
  RDD<int> rdd = MakeRDD(&ctx_, Iota(16), 2);
  EXPECT_THROW(rdd.Collect(), StatusError);
  EXPECT_THROW(rdd.Count(), StatusError);
}

TEST_F(FaultTest, FailFastSkipsRetries) {
  RetryPolicy fail_fast;
  fail_fast.fail_fast = true;
  ctx_.set_retry_policy(fail_fast);
  ASSERT_TRUE(DefaultFailPoints().ArmFromSpec("engine.task.run=nth:1").ok());

  const uint64_t retries_before = CounterValue("engine.task.retries");
  auto result = MakeRDD(&ctx_, Iota(64), 4).TryCollect();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("failed after 1 attempt"),
            std::string::npos);
  EXPECT_EQ(CounterValue("engine.task.retries"), retries_before);
}

TEST_F(FaultTest, ConfiguredAttemptsAreHonoured) {
  RetryPolicy generous;
  generous.max_attempts = 6;
  ctx_.set_retry_policy(generous);
  // Single-partition job whose task fails its first five attempts; only a
  // policy honouring all six configured attempts can reach the success.
  std::atomic<int> failures_left{5};
  const std::vector<int> out = MakeRDD(&ctx_, Iota(10), 1)
                                   .Map([&failures_left](int& x) {
                                     if (failures_left.fetch_sub(1) > 0) {
                                       throw std::runtime_error("flaky");
                                     }
                                     return x;
                                   })
                                   .Collect();
  EXPECT_EQ(out.size(), 10u);
}

// ---------------------------------------------------------------------------
// Shuffle, reduce and cache injection sites
// ---------------------------------------------------------------------------

TEST_F(FaultTest, ShuffleRouteFaultRecoversWithIdenticalResults) {
  const std::vector<int> input = Iota(500);
  auto shuffle = [this, &input] {
    auto out = MakeRDD(&ctx_, input, 8).PartitionBy(
        4, [](const int& x) { return static_cast<size_t>(x) % 4; });
    auto collected = out.Collect();
    std::sort(collected.begin(), collected.end());
    return collected;
  };
  const std::vector<int> expected = shuffle();

  ASSERT_TRUE(
      DefaultFailPoints().ArmFromSpec("engine.shuffle.route=nth:1").ok());
  const uint64_t records_before = CounterValue("engine.shuffle.records");
  EXPECT_EQ(shuffle(), expected);
  // The failed routing attempt must not double-count shuffled records.
  EXPECT_EQ(CounterValue("engine.shuffle.records") - records_before,
            input.size());
}

TEST_F(FaultTest, ReduceByKeyRecoversFromBothShuffleSites) {
  std::vector<std::pair<std::string, int64_t>> data;
  for (int i = 0; i < 300; ++i) {
    data.emplace_back("key-" + std::to_string(i % 7), 1);
  }
  auto reduce = [this, &data] {
    auto rdd = MakeRDD(&ctx_, data, 6);
    auto counts =
        ReduceByKey(rdd, [](int64_t a, int64_t b) { return a + b; }, 4)
            .Collect();
    std::sort(counts.begin(), counts.end());
    return counts;
  };
  const auto expected = reduce();

  ASSERT_TRUE(DefaultFailPoints()
                  .ArmFromSpec("engine.shuffle.route=nth:1;"
                               "engine.shuffle.reduce=nth:1")
                  .ok());
  EXPECT_EQ(reduce(), expected);
  EXPECT_GE(DefaultFailPoints().Get("engine.shuffle.reduce")->fires(), 1u);
}

TEST_F(FaultTest, CacheMaterializationFaultDoesNotLatchBrokenSlot) {
  const uint64_t misses_before = CounterValue("engine.cache.misses");
  ASSERT_TRUE(
      DefaultFailPoints().ArmFromSpec("engine.cache.materialize=nth:1").ok());

  std::atomic<int> parent_computes{0};
  RDD<int> cached = MakeRDD(&ctx_, Iota(40), 4)
                        .Map([&parent_computes](int& x) {
                          parent_computes.fetch_add(1);
                          return x;
                        })
                        .Cache();
  EXPECT_EQ(cached.Collect(), Iota(40));
  // The fault fires before the parent partition is materialized, so the
  // retried attempt is the only one that computed it: exactly one parent
  // evaluation per element despite the failure.
  EXPECT_EQ(parent_computes.load(), 40);
  EXPECT_EQ(CounterValue("engine.cache.misses") - misses_before, 4u);

  const int computes_after_first_action = parent_computes.load();
  EXPECT_EQ(cached.Count(), 40u);
  EXPECT_EQ(parent_computes.load(), computes_after_first_action)
      << "second action must hit the cache, not recompute";
}

// ---------------------------------------------------------------------------
// Checkpoint I/O injection sites
// ---------------------------------------------------------------------------

TEST_F(FaultTest, CheckpointWriteRecoversFromTransientFault) {
  const std::string dir = test::UniqueTempPath("fault_ckpt_write");
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  auto rdd = MakeRDD(&ctx_, std::vector<int64_t>{1, 2, 3, 4, 5, 6}, 3);

  ASSERT_TRUE(
      DefaultFailPoints().ArmFromSpec("engine.checkpoint.write=nth:1").ok());
  ASSERT_TRUE(Checkpoint(rdd, dir).ok());

  DefaultFailPoints().DisarmAll();
  auto loaded = LoadCheckpoint<int64_t>(&ctx_, dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie().Collect(),
            (std::vector<int64_t>{1, 2, 3, 4, 5, 6}));
}

TEST_F(FaultTest, CheckpointWritePersistentFaultSurfacesStatus) {
  const std::string dir = test::UniqueTempPath("fault_ckpt_write_hard");
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  auto rdd = MakeRDD(&ctx_, std::vector<int64_t>{1, 2, 3}, 1);

  ASSERT_TRUE(
      DefaultFailPoints().ArmFromSpec("engine.checkpoint.write=every:1").ok());
  const Status status = Checkpoint(rdd, dir);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_NE(status.message().find("engine.checkpoint.write"),
            std::string::npos);
}

TEST_F(FaultTest, CheckpointReadRecoversFromTransientFault) {
  const std::string dir = test::UniqueTempPath("fault_ckpt_read");
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  auto rdd = MakeRDD(&ctx_, Iota(100), 4).Map([](int& x) {
    return static_cast<int64_t>(x);
  });
  ASSERT_TRUE(Checkpoint(rdd, dir).ok());

  ASSERT_TRUE(
      DefaultFailPoints().ArmFromSpec("engine.checkpoint.read=nth:1").ok());
  auto loaded = LoadCheckpoint<int64_t>(&ctx_, dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie().Collect().size(), 100u);
  EXPECT_GE(DefaultFailPoints().Get("engine.checkpoint.read")->fires(), 1u);
}

// ---------------------------------------------------------------------------
// Everything armed at nth-hit=1: one transient failure per site, and a
// full pipeline still produces byte-identical results.
// ---------------------------------------------------------------------------

TEST_F(FaultTest, AllSitesArmedOneTransientFaultEachStillCorrect) {
  const std::string dir = test::UniqueTempPath("fault_all_sites");
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  // One unlucky task can consume the nth:1 fire of several sites on
  // consecutive attempts (task.run, then shuffle.route, then
  // cache.materialize); a generous attempt budget keeps the schedule
  // deterministic-in-outcome regardless of thread interleaving.
  RetryPolicy generous;
  generous.max_attempts = 6;
  ctx_.set_retry_policy(generous);

  std::vector<std::pair<std::string, int64_t>> data;
  for (int i = 0; i < 400; ++i) {
    data.emplace_back("k" + std::to_string(i % 13), i);
  }
  auto pipeline = [this, &data, &dir] {
    auto cached = MakeRDD(&ctx_, data, 8).Cache();
    auto sums =
        ReduceByKey(cached, [](int64_t a, int64_t b) { return a + b; }, 4);
    if (!Checkpoint(sums, dir).ok()) {
      return std::vector<std::pair<std::string, int64_t>>{};
    }
    auto loaded = LoadCheckpoint<std::pair<std::string, int64_t>>(&ctx_, dir);
    if (!loaded.ok()) return std::vector<std::pair<std::string, int64_t>>{};
    auto out = loaded.ValueOrDie().Collect();
    std::sort(out.begin(), out.end());
    return out;
  };
  const auto expected = pipeline();
  ASSERT_FALSE(expected.empty());

  const uint64_t retries_before = CounterValue("engine.task.retries");
  ASSERT_TRUE(DefaultFailPoints()
                  .ArmFromSpec("engine.task.run=nth:1;"
                               "engine.shuffle.route=nth:1;"
                               "engine.shuffle.reduce=nth:1;"
                               "engine.cache.materialize=nth:1;"
                               "engine.checkpoint.write=nth:1;"
                               "engine.checkpoint.read=nth:1")
                  .ok());
  EXPECT_EQ(pipeline(), expected);
  EXPECT_GT(CounterValue("engine.task.retries"), retries_before);
  for (const char* site :
       {"engine.task.run", "engine.shuffle.route", "engine.shuffle.reduce",
        "engine.cache.materialize", "engine.checkpoint.write",
        "engine.checkpoint.read"}) {
    EXPECT_GE(DefaultFailPoints().Get(site)->fires(), 1u) << site;
  }
}

// ---------------------------------------------------------------------------
// Retry-annotated trace spans
// ---------------------------------------------------------------------------

TEST_F(FaultTest, RetriedTaskProducesFailedAndSuccessfulSpans) {
  obs::TaskTracer tracer;
  Context traced_ctx(2, &tracer);
  tracer.Enable();
  DefaultFailPoints().DisarmAll();
  ASSERT_TRUE(DefaultFailPoints().ArmFromSpec("engine.task.run=nth:1").ok());

  EXPECT_EQ(MakeRDD(&traced_ctx, Iota(20), 2).Count(), 20u);

  int failed_attempts = 0;
  int retried_attempts = 0;
  for (const obs::TaskSpan& span : tracer.Spans()) {
    if (!span.ok) {
      ++failed_attempts;
      EXPECT_NE(span.error.find("engine.task.run"), std::string::npos);
    }
    if (span.attempt > 1) ++retried_attempts;
  }
  EXPECT_EQ(failed_attempts, 1);
  EXPECT_EQ(retried_attempts, 1);

  const std::string json = tracer.ChromeTraceJson();
  EXPECT_NE(json.find("\"attempt\":2"), std::string::npos);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
}

}  // namespace
}  // namespace stark
