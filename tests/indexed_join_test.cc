// Tests for the indexed join engine: cached-index joins that reuse the
// trees built by Index() (differential against the live join), the
// broadcast strategy, skew-aware sub-range splitting (visible as per-pair
// trace spans), and the engine.join.* metrics.
#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "io/generator.h"
#include "obs/trace.h"
#include "partition/grid_partitioner.h"
#include "spatial_rdd/join.h"

namespace stark {
namespace {

using Pair = std::pair<int64_t, int64_t>;

/// Plain-value observation of the engine.join.* counters.
struct JoinSnap {
  uint64_t pairs_enumerated = 0;
  uint64_t pairs_pruned = 0;
  uint64_t pairs_split = 0;
  uint64_t subtasks = 0;
  uint64_t tree_builds = 0;
  uint64_t tree_reuse_hits = 0;
  uint64_t broadcast_joins = 0;
  uint64_t prefilter_skips = 0;
};

JoinSnap SnapJoinMetrics() {
  const JoinMetricSet& m = GlobalJoinMetrics();
  JoinSnap s;
  s.pairs_enumerated = m.pairs_enumerated->Value();
  s.pairs_pruned = m.pairs_pruned->Value();
  s.pairs_split = m.pairs_split->Value();
  s.subtasks = m.subtasks->Value();
  s.tree_builds = m.tree_builds->Value();
  s.tree_reuse_hits = m.tree_reuse_hits->Value();
  s.broadcast_joins = m.broadcast_joins->Value();
  s.prefilter_skips = m.prefilter_skips->Value();
  return s;
}

class IndexedJoinTest : public ::testing::Test {
 protected:
  IndexedJoinTest() {
    SkewedPointsOptions gen;
    gen.count = 400;
    gen.universe = universe_;
    gen.seed = 71;
    auto pts = GenerateSkewedPoints(gen);
    for (size_t i = 0; i < pts.size(); ++i) {
      left_.emplace_back(pts[i], static_cast<int64_t>(i));
    }
    PolygonsOptions pgen;
    pgen.count = 60;
    pgen.universe = universe_;
    pgen.seed = 72;
    pgen.min_radius = 2;
    pgen.max_radius = 8;
    auto polys = GenerateRandomPolygons(pgen);
    for (size_t i = 0; i < polys.size(); ++i) {
      right_.emplace_back(polys[i], static_cast<int64_t>(i));
    }
  }

  std::set<Pair> BruteForce(const JoinPredicate& pred) const {
    std::set<Pair> out;
    for (const auto& [lo, lid] : left_) {
      for (const auto& [ro, rid] : right_) {
        if (pred.Eval(lo, ro)) out.emplace(lid, rid);
      }
    }
    return out;
  }

  template <typename JoinedRdd>
  static std::set<Pair> Ids(const JoinedRdd& rdd) {
    std::set<Pair> out;
    for (const auto& [l, r] : rdd.Collect()) {
      auto [it, inserted] = out.emplace(l.second, r.second);
      EXPECT_TRUE(inserted) << "duplicate join result (" << l.second << ", "
                            << r.second << ")";
    }
    return out;
  }

  Envelope universe_ = Envelope(0, 0, 100, 100);
  Context ctx_{4};
  std::vector<std::pair<STObject, int64_t>> left_;
  std::vector<std::pair<STObject, int64_t>> right_;
};

TEST_F(IndexedJoinTest, CachedIndexJoinMatchesLiveJoinWithoutTreeBuilds) {
  auto grid_l = std::make_shared<GridPartitioner>(universe_, 4);
  auto grid_r = std::make_shared<GridPartitioner>(universe_, 3);
  auto l =
      SpatialRDD<int64_t>::FromVector(&ctx_, left_, 3).PartitionBy(grid_l);
  auto r =
      SpatialRDD<int64_t>::FromVector(&ctx_, right_, 2).PartitionBy(grid_r);

  IndexedSpatialRDD<int64_t> indexed = l.Index(8);
  indexed.trees().Count();  // materialize the cached trees up front

  for (const JoinPredicate& pred :
       {JoinPredicate::Intersects(), JoinPredicate::ContainedBy(),
        JoinPredicate::WithinDistance(2.5)}) {
    const auto live = Ids(SpatialJoin(l, r, pred));
    const JoinSnap before = SnapJoinMetrics();
    const auto cached = Ids(SpatialJoin(indexed, r, pred));
    const JoinSnap after = SnapJoinMetrics();
    EXPECT_EQ(cached, live) << PredicateName(pred.type);
    EXPECT_EQ(cached, BruteForce(pred)) << PredicateName(pred.type);
    // The cached path never builds a tree; every probed tree is a reuse.
    EXPECT_EQ(after.tree_builds, before.tree_builds)
        << PredicateName(pred.type);
    EXPECT_GT(after.tree_reuse_hits, before.tree_reuse_hits)
        << PredicateName(pred.type);
    // Extents captured at indexing time still prune partition pairs.
    EXPECT_GT(after.pairs_pruned, before.pairs_pruned)
        << PredicateName(pred.type);
  }
}

TEST_F(IndexedJoinTest, CachedIndexJoinNonPrunablePredicateScansTrees) {
  auto l = SpatialRDD<int64_t>::FromVector(&ctx_, left_, 3);
  auto r = SpatialRDD<int64_t>::FromVector(&ctx_, right_, 2);
  IndexedSpatialRDD<int64_t> indexed = l.Index(8);
  indexed.trees().Count();

  // A custom distance function (not promised euclidean-compatible) cannot
  // use envelope candidate pruning — the cached path must still answer
  // correctly, by scanning the trees, without building anything.
  const auto pred = JoinPredicate::WithinDistance(
      4.0, [](const STObject& a, const STObject& b) {
        return ManhattanDistance(a, b);
      });
  ASSERT_FALSE(pred.Prunable());
  const JoinSnap before = SnapJoinMetrics();
  const auto got = Ids(SpatialJoin(indexed, r, pred));
  const JoinSnap after = SnapJoinMetrics();
  EXPECT_EQ(got, BruteForce(pred));
  EXPECT_EQ(after.tree_builds, before.tree_builds);
}

TEST_F(IndexedJoinTest, LiveJoinSkipsTreeBuildForNonPrunablePredicate) {
  auto l = SpatialRDD<int64_t>::FromVector(&ctx_, left_, 3);
  auto r = SpatialRDD<int64_t>::FromVector(&ctx_, right_, 2);
  const auto pred = JoinPredicate::WithinDistance(
      4.0, [](const STObject& a, const STObject& b) {
        return ManhattanDistance(a, b);
      });
  ASSERT_FALSE(pred.Prunable());
  JoinOptions options;  // index_order = 10: would build trees if usable
  const JoinSnap before = SnapJoinMetrics();
  const auto got = Ids(SpatialJoin(l, r, pred, options));
  const JoinSnap after = SnapJoinMetrics();
  EXPECT_EQ(got, BruteForce(pred));
  // Regression: the index cannot serve a non-prunable predicate, so
  // building it would be pure wasted work.
  EXPECT_EQ(after.tree_builds, before.tree_builds);
}

TEST_F(IndexedJoinTest, NestedLoopPrefilterPrunesAndStaysExact) {
  auto l = SpatialRDD<int64_t>::FromVector(&ctx_, left_, 3);
  auto r = SpatialRDD<int64_t>::FromVector(&ctx_, right_, 2);
  JoinOptions no_index;
  no_index.index_order = 0;
  const JoinSnap before = SnapJoinMetrics();
  const auto got = Ids(SpatialJoin(l, r, JoinPredicate::Intersects(),
                                   no_index));
  const JoinSnap after = SnapJoinMetrics();
  EXPECT_EQ(got, BruteForce(JoinPredicate::Intersects()));
  // The envelope prefilter rejected element pairs before the exact test.
  EXPECT_GT(after.prefilter_skips, before.prefilter_skips);
}

TEST_F(IndexedJoinTest, BroadcastJoinSmallRightSide) {
  auto l = SpatialRDD<int64_t>::FromVector(&ctx_, left_, 4);
  auto r = SpatialRDD<int64_t>::FromVector(&ctx_, right_, 3);
  JoinOptions options;
  options.broadcast_threshold = 100;  // right side (60 polygons) qualifies
  for (const JoinPredicate& pred :
       {JoinPredicate::Intersects(), JoinPredicate::WithinDistance(2.5)}) {
    const JoinSnap before = SnapJoinMetrics();
    const auto got = Ids(SpatialJoin(l, r, pred, options));
    const JoinSnap after = SnapJoinMetrics();
    EXPECT_EQ(got, BruteForce(pred)) << PredicateName(pred.type);
    EXPECT_EQ(after.broadcast_joins, before.broadcast_joins + 1)
        << PredicateName(pred.type);
    // Broadcast skips pair enumeration entirely.
    EXPECT_EQ(after.pairs_enumerated, before.pairs_enumerated)
        << PredicateName(pred.type);
  }
}

TEST_F(IndexedJoinTest, BroadcastJoinSmallLeftSide) {
  // Swap the sides so the broadcast side is the left one (its own probe
  // direction in the implementation).
  auto l = SpatialRDD<int64_t>::FromVector(&ctx_, right_, 3);  // 60 polygons
  auto r = SpatialRDD<int64_t>::FromVector(&ctx_, left_, 4);   // 400 points
  JoinOptions options;
  options.broadcast_threshold = 100;
  const auto pred = JoinPredicate::Contains();  // polygons contain points
  std::set<Pair> expect;
  for (const auto& [lo, lid] : right_) {
    for (const auto& [ro, rid] : left_) {
      if (pred.Eval(lo, ro)) expect.emplace(lid, rid);
    }
  }
  const JoinSnap before = SnapJoinMetrics();
  const auto got = Ids(SpatialJoin(l, r, pred, options));
  const JoinSnap after = SnapJoinMetrics();
  EXPECT_EQ(got, expect);
  EXPECT_EQ(after.broadcast_joins, before.broadcast_joins + 1);
}

TEST_F(IndexedJoinTest, BroadcastRespectsThreshold) {
  auto l = SpatialRDD<int64_t>::FromVector(&ctx_, left_, 4);
  auto r = SpatialRDD<int64_t>::FromVector(&ctx_, right_, 3);
  JoinOptions options;
  options.broadcast_threshold = 10;  // both sides are bigger than this
  const JoinSnap before = SnapJoinMetrics();
  const auto got = Ids(SpatialJoin(l, r, JoinPredicate::Intersects(),
                                   options));
  const JoinSnap after = SnapJoinMetrics();
  EXPECT_EQ(got, BruteForce(JoinPredicate::Intersects()));
  EXPECT_EQ(after.broadcast_joins, before.broadcast_joins);
  EXPECT_GT(after.pairs_enumerated, before.pairs_enumerated);
}

// Deterministic lattice of points inside one quadrant of the 100x100
// universe, kept >= 2 units away from the quadrant edges so partition
// extents never bleed into neighbouring cells (margin 1 stays inside).
void FillQuadrant(std::vector<std::pair<STObject, int64_t>>* out, int qx,
                  int qy, size_t count, int64_t* next_id) {
  for (size_t i = 0; i < count; ++i) {
    const double fx = static_cast<double>(i % 32) / 31.0;
    const double fy = static_cast<double>(i / 32 % 32) / 31.0;
    const double x = qx * 50.0 + 2.0 + 45.0 * fx;
    const double y = qy * 50.0 + 2.0 + 45.0 * fy;
    out->emplace_back(STObject(Geometry::MakePoint(x, y)), (*next_id)++);
  }
}

TEST_F(IndexedJoinTest, SkewedPairSplitsIntoSubtaskSpans) {
  // Right partition 0 holds 50% of the right records: its pair is the
  // join's straggler unless it is split.
  std::vector<std::pair<STObject, int64_t>> lhs;
  std::vector<std::pair<STObject, int64_t>> rhs;
  int64_t id = 0;
  for (int q = 0; q < 4; ++q) FillQuadrant(&lhs, q % 2, q / 2, 250, &id);
  id = 0;
  FillQuadrant(&rhs, 0, 0, 500, &id);
  FillQuadrant(&rhs, 1, 0, 167, &id);
  FillQuadrant(&rhs, 0, 1, 167, &id);
  FillQuadrant(&rhs, 1, 1, 166, &id);

  obs::TaskTracer tracer;
  tracer.Enable();
  Context ctx(4, &tracer);
  auto grid_l = std::make_shared<GridPartitioner>(universe_, 2);
  auto grid_r = std::make_shared<GridPartitioner>(universe_, 2);
  auto l = SpatialRDD<int64_t>::FromVector(&ctx, lhs, 2).PartitionBy(grid_l);
  auto r = SpatialRDD<int64_t>::FromVector(&ctx, rhs, 2).PartitionBy(grid_r);

  JoinOptions options;
  options.skew_split_factor = 1.5;
  const auto pred = JoinPredicate::WithinDistance(1.0);

  const JoinSnap before = SnapJoinMetrics();
  const auto got = Ids(SpatialJoin(l, r, pred, options));
  const JoinSnap after = SnapJoinMetrics();

  // Still exact.
  std::set<Pair> expect;
  for (const auto& [lo, lid] : lhs) {
    for (const auto& [ro, rid] : rhs) {
      if (pred.Eval(lo, ro)) expect.emplace(lid, rid);
    }
  }
  EXPECT_EQ(got, expect);

  // The dense pair was split: more probe tasks than enumerated pairs.
  EXPECT_GE(after.pairs_split - before.pairs_split, 1u);
  EXPECT_GT(after.subtasks - before.subtasks,
            after.pairs_enumerated - before.pairs_enumerated);

  // And the split is visible in the trace: >= 2 probe spans carry the same
  // partition-pair label, with explicit sub-ranges.
  size_t dense_pair_spans = 0;
  size_t ranged_spans = 0;
  for (const obs::TaskSpan& span : tracer.Spans()) {
    if (span.stage != "spatial.join.probe") continue;
    if (span.detail.rfind("L0xR0", 0) == 0) {
      ++dense_pair_spans;
      if (span.detail.find('[') != std::string::npos) ++ranged_spans;
    }
  }
  EXPECT_GE(dense_pair_spans, 2u);
  EXPECT_GE(ranged_spans, 2u);
}

TEST_F(IndexedJoinTest, CachedIndexJoinUnpartitionedRightMatches) {
  // Indexed left against a right side with no partitioner at all: no
  // pruning possible, every pair probed, still exact.
  auto l = SpatialRDD<int64_t>::FromVector(&ctx_, left_, 3);
  auto r = SpatialRDD<int64_t>::FromVector(&ctx_, right_, 2);
  IndexedSpatialRDD<int64_t> indexed = l.Index(8);
  const auto pred = JoinPredicate::Intersects();
  EXPECT_EQ(Ids(SpatialJoin(indexed, r, pred)), BruteForce(pred));
}

TEST_F(IndexedJoinTest, CachedIndexJoinEmptySides) {
  auto l = SpatialRDD<int64_t>::FromVector(&ctx_, {}, 2);
  auto r = SpatialRDD<int64_t>::FromVector(&ctx_, right_, 2);
  IndexedSpatialRDD<int64_t> indexed = l.Index(8);
  EXPECT_EQ(SpatialJoin(indexed, r, JoinPredicate::Intersects()).Count(), 0u);

  auto l2 = SpatialRDD<int64_t>::FromVector(&ctx_, left_, 3);
  auto empty_r = SpatialRDD<int64_t>::FromVector(&ctx_, {}, 2);
  IndexedSpatialRDD<int64_t> indexed2 = l2.Index(8);
  EXPECT_EQ(SpatialJoin(indexed2, empty_r, JoinPredicate::Intersects()).Count(),
            0u);
}

}  // namespace
}  // namespace stark
