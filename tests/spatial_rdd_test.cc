// Tests for SpatialRDD: filters with every predicate, partition pruning,
// kNN, and the live/persistent indexing modes — all verified against brute
// force over the same data.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "test_util.h"

#include "common/rng.h"
#include "io/generator.h"
#include "partition/bsp_partitioner.h"
#include "partition/grid_partitioner.h"
#include "spatial_rdd/spatial_rdd.h"

namespace stark {
namespace {

using Element = std::pair<STObject, int64_t>;

class SpatialRddTest : public ::testing::Test {
 protected:
  SpatialRddTest() {
    SkewedPointsOptions gen;
    gen.count = 2000;
    gen.universe = Envelope(0, 0, 100, 100);
    gen.seed = 51;
    auto points = GenerateSkewedPoints(gen);
    Rng rng(52);
    for (size_t i = 0; i < points.size(); ++i) {
      // Half the objects carry a temporal instant, matching real event data.
      STObject obj = (i % 2 == 0)
                         ? STObject(points[i].geo(), rng.UniformInt(0, 1000))
                         : points[i];
      data_.emplace_back(std::move(obj), static_cast<int64_t>(i));
    }
    universe_ = Envelope(0, 0, 100, 100);
  }

  SpatialRDD<int64_t> MakeSpatial(size_t partitions = 4) {
    return SpatialRDD<int64_t>::FromVector(&ctx_, data_, partitions);
  }

  std::set<int64_t> BruteForce(const STObject& query,
                               const JoinPredicate& pred) {
    std::set<int64_t> ids;
    for (const auto& [obj, id] : data_) {
      if (pred.Eval(obj, query)) ids.insert(id);
    }
    return ids;
  }

  static std::set<int64_t> Ids(const std::vector<Element>& elems) {
    std::set<int64_t> ids;
    for (const auto& [obj, id] : elems) ids.insert(id);
    return ids;
  }

  Context ctx_{4};
  std::vector<Element> data_;
  Envelope universe_;
};

STObject QueryPolygon() {
  // A polygon window over part of the universe, no temporal component.
  return STObject(Geometry::MakeBox(Envelope(20, 20, 60, 55)));
}

STObject QueryPolygonWithTime() {
  return STObject(Geometry::MakeBox(Envelope(20, 20, 60, 55)), 100, 500);
}

TEST_F(SpatialRddTest, IntersectsMatchesBruteForce) {
  const STObject qry = QueryPolygon();
  auto got = Ids(MakeSpatial().Intersects(qry).Collect());
  EXPECT_EQ(got, BruteForce(qry, JoinPredicate::Intersects()));
  EXPECT_FALSE(got.empty());
}

TEST_F(SpatialRddTest, ContainedByMatchesBruteForce) {
  const STObject qry = QueryPolygon();
  auto got = Ids(MakeSpatial().ContainedBy(qry).Collect());
  EXPECT_EQ(got, BruteForce(qry, JoinPredicate::ContainedBy()));
}

TEST_F(SpatialRddTest, TemporalComponentFiltersResults) {
  const STObject plain = QueryPolygon();
  const STObject timed = QueryPolygonWithTime();
  auto ids_plain = Ids(MakeSpatial().Intersects(plain).Collect());
  auto ids_timed = Ids(MakeSpatial().Intersects(timed).Collect());
  // The timed query only matches objects that carry time (formula (3));
  // the plain query only matches objects without time (formula (2)).
  EXPECT_EQ(ids_timed, BruteForce(timed, JoinPredicate::Intersects()));
  for (int64_t id : ids_timed) {
    EXPECT_TRUE(data_[static_cast<size_t>(id)].first.HasTime());
  }
  for (int64_t id : ids_plain) {
    EXPECT_FALSE(data_[static_cast<size_t>(id)].first.HasTime());
  }
}

TEST_F(SpatialRddTest, WithinDistanceMatchesBruteForce) {
  const STObject qry(Geometry::MakePoint(50, 50));
  const auto pred = JoinPredicate::WithinDistance(7.5);
  auto got = Ids(MakeSpatial().WithinDistance(qry, 7.5).Collect());
  EXPECT_EQ(got, BruteForce(qry, pred));
}

TEST_F(SpatialRddTest, WithinDistanceCustomFunction) {
  const STObject qry(Geometry::MakePoint(50, 50));
  DistanceFunction manhattan = ManhattanDistance;
  auto got = Ids(MakeSpatial().WithinDistance(qry, 10.0, manhattan).Collect());
  std::set<int64_t> expect;
  for (const auto& [obj, id] : data_) {
    if (ManhattanDistance(obj, qry) <= 10.0) expect.insert(id);
  }
  EXPECT_EQ(got, expect);
}

TEST_F(SpatialRddTest, GridPartitioningPreservesFilterResults) {
  const STObject qry = QueryPolygon();
  auto grid = std::make_shared<GridPartitioner>(universe_, 5);
  auto parted = MakeSpatial().PartitionBy(grid);
  EXPECT_EQ(parted.NumPartitions(), 25u);
  EXPECT_EQ(parted.rdd().Count(), data_.size());  // nothing lost or duplicated
  auto got = Ids(parted.Intersects(qry).Collect());
  EXPECT_EQ(got, BruteForce(qry, JoinPredicate::Intersects()));
}

TEST_F(SpatialRddTest, BspPartitioningPreservesFilterResults) {
  const STObject qry = QueryPolygon();
  std::vector<Coordinate> centroids;
  for (const auto& [obj, id] : data_) centroids.push_back(obj.Centroid());
  BSPartitioner::Options opt;
  opt.max_cost = 200;
  auto bsp = std::make_shared<BSPartitioner>(universe_, centroids, opt);
  auto parted = MakeSpatial().PartitionBy(bsp);
  EXPECT_EQ(parted.rdd().Count(), data_.size());
  EXPECT_EQ(Ids(parted.Intersects(qry).Collect()),
            BruteForce(qry, JoinPredicate::Intersects()));
  EXPECT_EQ(Ids(parted.ContainedBy(qry).Collect()),
            BruteForce(qry, JoinPredicate::ContainedBy()));
}

TEST_F(SpatialRddTest, PartitionPruningSkipsIrrelevantPartitions) {
  // Count evaluated elements through a side-effect counter: with a small
  // query window and a grid partitioner, pruning must touch fewer elements
  // than the full scan.
  auto grid = std::make_shared<GridPartitioner>(universe_, 5);
  auto parted = MakeSpatial().PartitionBy(grid);
  const STObject qry(Geometry::MakeBox(Envelope(1, 1, 6, 6)));

  // Pruned path: partitions whose extent misses the query return empty
  // without scanning. We verify via partition-level result counts.
  auto result_parts = parted.Intersects(qry).CollectPartitions();
  size_t non_empty = 0;
  for (const auto& p : result_parts) non_empty += p.empty() ? 0 : 1;
  EXPECT_LE(non_empty, 4u);  // the window overlaps at most 4 cells
  EXPECT_EQ(result_parts.size(), 25u);
}

TEST_F(SpatialRddTest, KnnReturnsSortedNearest) {
  const STObject qry(Geometry::MakePoint(42, 42));
  auto knn = MakeSpatial().Knn(qry, 10);
  ASSERT_EQ(knn.size(), 10u);
  for (size_t i = 1; i < knn.size(); ++i) {
    EXPECT_LE(knn[i - 1].first, knn[i].first);
  }
  // Verify against brute force distances.
  std::vector<double> dists;
  for (const auto& [obj, id] : data_) {
    dists.push_back(Distance(obj.geo(), qry.geo()));
  }
  std::sort(dists.begin(), dists.end());
  for (size_t i = 0; i < knn.size(); ++i) {
    EXPECT_DOUBLE_EQ(knn[i].first, dists[i]);
  }
}

TEST_F(SpatialRddTest, KnnWithKLargerThanData) {
  auto small = SpatialRDD<int64_t>::FromVector(
      &ctx_, {data_.begin(), data_.begin() + 5}, 2);
  EXPECT_EQ(small.Knn(STObject(Geometry::MakePoint(0, 0)), 50).size(), 5u);
}

// A user distance function that returns NaN for part of the data — e.g. a
// haversine formula fed coordinates outside its domain. NaN used to break
// partial_sort's strict weak ordering (undefined behavior, garbage
// neighbors); it must rank as "infinitely far" instead.
double NanWestOfFifty(const STObject& a, const STObject& b) {
  if (a.Centroid().x < 50.0) return std::nan("");
  return Distance(a.geo(), b.geo());
}

TEST_F(SpatialRddTest, KnnTreatsNanDistanceAsInfinitelyFar) {
  const STObject qry(Geometry::MakePoint(42, 42));
  auto knn = MakeSpatial().Knn(qry, 10, NanWestOfFifty);
  ASSERT_EQ(knn.size(), 10u);
  // Brute force over the finite-distance subset only.
  std::vector<double> dists;
  for (const auto& [obj, id] : data_) {
    const double d = NanWestOfFifty(obj, qry);
    if (!std::isnan(d)) dists.push_back(d);
  }
  std::sort(dists.begin(), dists.end());
  ASSERT_GE(dists.size(), 10u);
  for (size_t i = 0; i < knn.size(); ++i) {
    EXPECT_DOUBLE_EQ(knn[i].first, dists[i]) << i;
    // No NaN-distance element may surface as a neighbor.
    EXPECT_GE(knn[i].second.first.Centroid().x, 50.0) << i;
  }
}

TEST_F(SpatialRddTest, KnnAllNanDistancesReturnsInfinities) {
  const STObject qry(Geometry::MakePoint(42, 42));
  auto knn = MakeSpatial().Knn(
      qry, 5, [](const STObject&, const STObject&) { return std::nan(""); });
  ASSERT_EQ(knn.size(), 5u);  // k results still come back, ranked +inf
  for (const auto& [dist, elem] : knn) {
    EXPECT_TRUE(std::isinf(dist));
  }
}

TEST_F(SpatialRddTest, IndexedKnnWithCustomFunctionMatchesScan) {
  const STObject qry(Geometry::MakePoint(42, 42));
  auto indexed = MakeSpatial().Index(8);
  auto knn_indexed = indexed.Knn(qry, 10, NanWestOfFifty);
  auto knn_scan = MakeSpatial().Knn(qry, 10, NanWestOfFifty);
  ASSERT_EQ(knn_indexed.size(), knn_scan.size());
  for (size_t i = 0; i < knn_indexed.size(); ++i) {
    EXPECT_DOUBLE_EQ(knn_indexed[i].first, knn_scan[i].first) << i;
    EXPECT_GE(knn_indexed[i].second.first.Centroid().x, 50.0) << i;
  }
}

TEST_F(SpatialRddTest, LiveIndexMatchesScan) {
  const STObject qry = QueryPolygon();
  for (size_t order : {2u, 5u, 16u}) {
    auto indexed = MakeSpatial().LiveIndex(order);
    EXPECT_EQ(Ids(indexed.Intersects(qry).Collect()),
              BruteForce(qry, JoinPredicate::Intersects()))
        << "order " << order;
  }
}

TEST_F(SpatialRddTest, LiveIndexWithPartitionerMatchesScan) {
  const STObject qry = QueryPolygon();
  auto grid = std::make_shared<GridPartitioner>(universe_, 4);
  auto indexed = MakeSpatial().LiveIndex(5, grid);
  EXPECT_EQ(indexed.NumPartitions(), 16u);
  EXPECT_EQ(Ids(indexed.Intersects(qry).Collect()),
            BruteForce(qry, JoinPredicate::Intersects()));
  EXPECT_EQ(Ids(indexed.WithinDistance(qry, 5.0).Collect()),
            BruteForce(qry, JoinPredicate::WithinDistance(5.0)));
}

TEST_F(SpatialRddTest, IndexedKnnMatchesScanKnn) {
  const STObject qry(Geometry::MakePoint(42, 42));
  auto indexed = MakeSpatial().Index(8);
  auto knn_indexed = indexed.Knn(qry, 15);
  auto knn_scan = MakeSpatial().Knn(qry, 15);
  ASSERT_EQ(knn_indexed.size(), knn_scan.size());
  for (size_t i = 0; i < knn_indexed.size(); ++i) {
    EXPECT_DOUBLE_EQ(knn_indexed[i].first, knn_scan[i].first);
  }
}

TEST_F(SpatialRddTest, ToElementsRoundTrips) {
  auto indexed = MakeSpatial().Index(8);
  EXPECT_EQ(Ids(indexed.ToElements().Collect()), Ids(data_));
}

TEST_F(SpatialRddTest, PersistentIndexSaveLoadQueryEquivalence) {
  const std::string dir = test::UniqueTempPath("stark_index");
  std::remove((dir + "/index.meta").c_str());
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);

  auto grid = std::make_shared<GridPartitioner>(universe_, 3);
  auto indexed = MakeSpatial().Index(6, grid);
  ASSERT_TRUE(indexed.Save(dir).ok());

  auto loaded = IndexedSpatialRDD<int64_t>::Load(&ctx_, dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto& reloaded = loaded.ValueOrDie();
  EXPECT_EQ(reloaded.NumPartitions(), indexed.NumPartitions());

  const STObject qry = QueryPolygon();
  EXPECT_EQ(Ids(reloaded.Intersects(qry).Collect()),
            Ids(indexed.Intersects(qry).Collect()));
  EXPECT_EQ(Ids(reloaded.ToElements().Collect()), Ids(data_));

  const STObject pt(Geometry::MakePoint(42, 42));
  auto knn_a = indexed.Knn(pt, 7);
  auto knn_b = reloaded.Knn(pt, 7);
  ASSERT_EQ(knn_a.size(), knn_b.size());
  for (size_t i = 0; i < knn_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(knn_a[i].first, knn_b[i].first);
  }
}

TEST_F(SpatialRddTest, LoadFromMissingDirectoryFails) {
  auto loaded =
      IndexedSpatialRDD<int64_t>::Load(&ctx_, "/nonexistent/stark_idx");
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(SpatialRddTest, SpatialWrapperMirrorsImplicitConversion) {
  RDD<Element> plain = MakeRDD(&ctx_, data_, 4);
  SpatialRDD<int64_t> wrapped = Spatial(plain);
  EXPECT_EQ(wrapped.NumPartitions(), 4u);
  EXPECT_EQ(wrapped.rdd().Count(), data_.size());
}

}  // namespace
}  // namespace stark
