// Tests for the observability layer: metrics registry semantics under
// concurrent increments, task spans recorded by the engine's traced
// dispatch path, phase-span nesting, and well-formedness of the Chrome
// trace_event JSON export (verified by an actual round-trip parse).
#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "common/stopwatch.h"
#include "engine/rdd.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_util.h"

namespace stark {
namespace {

// JSON round-trips use the shared strict parser in test_util.h.
using test::JsonArray;
using test::JsonObject;
using test::JsonValue;
using test::ParseJsonOrFail;

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterConcurrentIncrementsAreLossless) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("test.counter");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kIncrements; ++i) counter->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsTest, GetterReturnsStablePointerPerName) {
  obs::MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("a"), registry.GetCounter("a"));
  EXPECT_NE(registry.GetCounter("a"), registry.GetCounter("b"));
  EXPECT_EQ(registry.GetHistogram("h"), registry.GetHistogram("h"));
  EXPECT_EQ(registry.GetGauge("g"), registry.GetGauge("g"));
}

TEST(MetricsTest, GaugeLastWriteWins) {
  obs::MetricsRegistry registry;
  obs::Gauge* gauge = registry.GetGauge("test.gauge");
  gauge->Set(42);
  gauge->Set(-7);
  EXPECT_EQ(gauge->Value(), -7);
}

TEST(MetricsTest, HistogramConcurrentRecords) {
  obs::MetricsRegistry registry;
  obs::Histogram* hist = registry.GetHistogram("test.hist");
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([hist] {
      for (uint64_t i = 1; i <= kPerThread; ++i) hist->Record(i);
    });
  }
  for (auto& t : threads) t.join();
  const obs::Histogram::Snapshot snap = hist->Snap();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.sum, kThreads * (kPerThread * (kPerThread + 1) / 2));
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
  // Percentiles are bucket upper bounds: monotone and within [min, max]-ish.
  const uint64_t p50 = snap.ApproxPercentile(0.5);
  const uint64_t p99 = snap.ApproxPercentile(0.99);
  EXPECT_LE(p50, p99);
  EXPECT_GE(p50, snap.min);
  EXPECT_GE(p99, kPerThread / 2);  // true p99 is ~9900; bucket bound >= 8191
}

TEST(MetricsTest, SnapshotAndReportsContainRegisteredNames) {
  obs::MetricsRegistry registry;
  registry.GetCounter("alpha.count")->Add(3);
  registry.GetGauge("beta.gauge")->Set(5);
  registry.GetHistogram("gamma.hist")->Record(100);
  const obs::MetricsRegistry::Snapshot snap = registry.Snap();
  EXPECT_EQ(snap.counters.at("alpha.count"), 3u);
  EXPECT_EQ(snap.gauges.at("beta.gauge"), 5);
  EXPECT_EQ(snap.histograms.at("gamma.hist").count, 1u);

  const std::string text = registry.TextReport();
  EXPECT_NE(text.find("alpha.count"), std::string::npos);
  EXPECT_NE(text.find("gamma.hist"), std::string::npos);

  // The JSON dump round-trips and carries the same values.
  const JsonValue json = ParseJsonOrFail(registry.Json());
  ASSERT_TRUE(json.IsObject());
  const JsonObject& obj = json.AsObject();
  EXPECT_EQ(obj.at("counters").AsObject().at("alpha.count").AsNumber(), 3.0);
  EXPECT_EQ(obj.at("gauges").AsObject().at("beta.gauge").AsNumber(), 5.0);
  EXPECT_EQ(
      obj.at("histograms").AsObject().at("gamma.hist").AsObject().at("count")
          .AsNumber(),
      1.0);
}

TEST(MetricsTest, JsonEscapesHostileMetricNames) {
  // Instrument names are free-form strings; a name containing quotes,
  // backslashes or control characters must not corrupt the JSON dump.
  obs::MetricsRegistry registry;
  const std::string hostile = "weird\"name\\with\ncontrol\tchars";
  registry.GetCounter(hostile)->Add(7);
  registry.GetGauge("gauge\"q")->Set(-2);
  registry.GetHistogram("hist\\b")->Record(42);
  const JsonValue json = ParseJsonOrFail(registry.Json());
  const JsonObject& obj = json.AsObject();
  EXPECT_EQ(obj.at("counters").AsObject().at(hostile).AsNumber(), 7.0);
  EXPECT_EQ(obj.at("gauges").AsObject().at("gauge\"q").AsNumber(), -2.0);
  EXPECT_EQ(obj.at("histograms")
                .AsObject()
                .at("hist\\b")
                .AsObject()
                .at("count")
                .AsNumber(),
            1.0);
}

TEST(MetricsTest, ScopedTimerReportsIntoHistogram) {
  obs::MetricsRegistry registry;
  obs::Histogram* hist = registry.GetHistogram("timer.ns");
  {
    ScopedTimer<obs::Histogram> timer(hist);
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  const obs::Histogram::Snapshot snap = hist->Snap();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GT(snap.sum, 0u);
  {
    ScopedTimer<obs::Histogram> disabled(
        static_cast<obs::Histogram*>(nullptr));
  }
  EXPECT_EQ(hist->Snap().count, 1u);  // null sink records nothing
}

// ---------------------------------------------------------------------------
// Task tracing
// ---------------------------------------------------------------------------

TEST(TraceTest, DisabledTracerIsANullSink) {
  obs::TaskTracer tracer;
  Context ctx(2, &tracer);
  EXPECT_FALSE(tracer.enabled());
  auto rdd = MakeRDD(&ctx, std::vector<int>{1, 2, 3, 4, 5, 6}, 3);
  EXPECT_EQ(rdd.Count(), 6u);
  EXPECT_TRUE(tracer.Spans().empty());
  EXPECT_TRUE(tracer.Phases().empty());
  EXPECT_EQ(obs::CurrentTaskSpan(), nullptr);
  // ScopedSpan constructed while disabled records nothing even if the
  // tracer is enabled before the destructor runs.
  {
    obs::ScopedSpan span(tracer, "late");
    tracer.Enable();
  }
  tracer.Disable();
  EXPECT_TRUE(tracer.Phases().empty());
}

TEST(TraceTest, RecordsOneSpanPerPartitionTask) {
  obs::TaskTracer tracer;
  tracer.Enable();
  Context ctx(2, &tracer);
  std::vector<int> data(100);
  auto rdd = MakeRDD(&ctx, data, 4);
  EXPECT_EQ(rdd.Count(), 100u);
  // Exactly one *successful* span per partition-task. Failed attempts get
  // their own spans (e.g. when STARK_FAILPOINTS arms an injection site in
  // the environment), so the count filters on ok.
  std::vector<obs::TaskSpan> spans;
  for (const obs::TaskSpan& s : tracer.Spans()) {
    if (s.ok) spans.push_back(s);
  }
  ASSERT_EQ(spans.size(), 4u);
  std::vector<bool> seen(4, false);
  for (const obs::TaskSpan& s : spans) {
    EXPECT_EQ(s.stage, "rdd.count");
    EXPECT_EQ(s.job_id, spans[0].job_id);
    ASSERT_LT(s.partition, 4u);
    seen[s.partition] = true;
    EXPECT_LE(s.queued_ns, s.start_ns);
    EXPECT_LE(s.start_ns, s.end_ns);
    EXPECT_GE(s.worker, 0);  // ran on a pool worker
    EXPECT_GE(s.attempt, 1u);
    EXPECT_TRUE(s.error.empty());
    EXPECT_EQ(s.records_in, 25u);
    EXPECT_EQ(s.records_out, 1u);
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));

  // A second action is a new job.
  rdd.Collect();
  std::vector<obs::TaskSpan> more;
  for (const obs::TaskSpan& s : tracer.Spans()) {
    if (s.ok) more.push_back(s);
  }
  ASSERT_EQ(more.size(), 8u);
  EXPECT_NE(more.back().job_id, spans[0].job_id);
  EXPECT_EQ(more.back().stage, "rdd.collect");
}

TEST(TraceTest, ScopedSpansNestProperly) {
  obs::TaskTracer tracer;
  tracer.Enable();
  {
    obs::ScopedSpan outer(tracer, "outer");
    {
      obs::ScopedSpan inner(tracer, "inner");
    }
  }
  const std::vector<obs::PhaseEvent> phases = tracer.Phases();
  ASSERT_EQ(phases.size(), 4u);
  // Begin/end events nest like brackets: outer-B inner-B inner-E outer-E.
  EXPECT_EQ(phases[0].name, "outer");
  EXPECT_TRUE(phases[0].begin);
  EXPECT_EQ(phases[1].name, "inner");
  EXPECT_TRUE(phases[1].begin);
  EXPECT_EQ(phases[2].name, "inner");
  EXPECT_FALSE(phases[2].begin);
  EXPECT_EQ(phases[3].name, "outer");
  EXPECT_FALSE(phases[3].begin);
  // Timestamps are monotone, so the inner interval lies within the outer.
  EXPECT_LE(phases[0].ts_ns, phases[1].ts_ns);
  EXPECT_LE(phases[1].ts_ns, phases[2].ts_ns);
  EXPECT_LE(phases[2].ts_ns, phases[3].ts_ns);
}

TEST(TraceTest, ChromeTraceJsonRoundTrips) {
  obs::TaskTracer tracer;
  tracer.Enable();
  Context ctx(2, &tracer);
  {
    obs::ScopedSpan phase(tracer, "phase \"quoted\"\nname");
    auto rdd = MakeRDD(&ctx, std::vector<int>{1, 2, 3, 4}, 2);
    rdd.Count();
  }
  const std::string json = tracer.ChromeTraceJson();
  const JsonValue root = ParseJsonOrFail(json);
  ASSERT_TRUE(root.IsObject());
  const JsonObject& obj = root.AsObject();
  ASSERT_TRUE(obj.count("traceEvents"));
  const JsonArray& events = obj.at("traceEvents").AsArray();
  // 2 successful task spans (X) + 2 phase events (B/E). Failed attempts
  // (possible when STARK_FAILPOINTS is set in the environment) export
  // extra X events with "ok":false, which are checked for shape but not
  // counted.
  size_t task_events = 0;
  size_t phase_events = 0;
  bool saw_process_name = false;
  size_t thread_names = 0;
  for (const JsonValue& ev : events) {
    ASSERT_TRUE(ev.IsObject());
    const JsonObject& e = ev.AsObject();
    ASSERT_TRUE(e.count("name"));
    ASSERT_TRUE(e.count("ph"));
    ASSERT_TRUE(e.count("pid"));
    ASSERT_TRUE(e.count("tid"));
    const std::string& ph = e.at("ph").AsString();
    if (ph == "M") {
      // process_name/thread_name metadata labels the rows in the trace
      // viewer; no "ts" on metadata events.
      const std::string& name = e.at("name").AsString();
      const JsonObject& args = e.at("args").AsObject();
      ASSERT_TRUE(args.count("name"));
      if (name == "process_name") {
        saw_process_name = true;
        EXPECT_EQ(args.at("name").AsString(), "stark");
      } else {
        EXPECT_EQ(name, "thread_name");
        ++thread_names;
      }
      continue;
    }
    ASSERT_TRUE(e.count("ts"));
    if (ph == "X") {
      EXPECT_EQ(e.at("name").AsString(), "rdd.count");
      EXPECT_GE(e.at("dur").AsNumber(), 0.0);
      const JsonObject& args = e.at("args").AsObject();
      EXPECT_TRUE(args.count("job"));
      EXPECT_TRUE(args.count("partition"));
      EXPECT_TRUE(args.count("queue_wait_us"));
      EXPECT_TRUE(args.count("records_in"));
      EXPECT_TRUE(args.count("records_out"));
      ASSERT_TRUE(args.count("ok"));
      ASSERT_TRUE(args.count("attempt"));
      if (args.at("ok").AsBool()) {
        ++task_events;
        EXPECT_FALSE(args.count("error"));
      } else {
        EXPECT_TRUE(args.count("error"));
      }
    } else {
      ++phase_events;
      EXPECT_TRUE(ph == "B" || ph == "E");
      EXPECT_EQ(e.at("name").AsString(), "phase \"quoted\"\nname");
    }
  }
  EXPECT_EQ(task_events, 2u);
  EXPECT_EQ(phase_events, 2u);
  EXPECT_TRUE(saw_process_name);
  // Driver thread (tid 0) plus at least one pool worker get names.
  EXPECT_GE(thread_names, 2u);

  // Clear drops everything.
  tracer.Clear();
  EXPECT_TRUE(tracer.Spans().empty());
  const JsonValue empty = ParseJsonOrFail(tracer.ChromeTraceJson());
  EXPECT_TRUE(empty.AsObject().at("traceEvents").AsArray().empty());
}

TEST(TraceTest, EngineCountersObserveCacheAndPrune) {
  obs::MetricsRegistry& m = obs::DefaultMetrics();
  const uint64_t hits_before = m.GetCounter("engine.cache.hits")->Value();
  const uint64_t misses_before = m.GetCounter("engine.cache.misses")->Value();
  const uint64_t pruned_before =
      m.GetCounter("engine.partitions.pruned")->Value();

  Context ctx(2);
  auto rdd = MakeRDD(&ctx, std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}, 4);
  auto cached = rdd.Cache();
  cached.Count();  // 4 misses
  cached.Count();  // 4 hits
  EXPECT_EQ(m.GetCounter("engine.cache.misses")->Value() - misses_before, 4u);
  EXPECT_EQ(m.GetCounter("engine.cache.hits")->Value() - hits_before, 4u);

  auto pruned = rdd.PrunePartitions([](size_t p) { return p % 2 == 0; });
  EXPECT_EQ(pruned.Count(), 4u);  // partitions 1 and 3 skipped
  EXPECT_EQ(m.GetCounter("engine.partitions.pruned")->Value() - pruned_before,
            2u);
}

}  // namespace
}  // namespace stark
