// Tests for the spatial store: the Figure-2 store/load cycle with partition
// metadata surviving across "program runs".
#include <cstdlib>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "test_util.h"

#include "io/generator.h"
#include "partition/bsp_partitioner.h"
#include "partition/grid_partitioner.h"
#include "spatial_rdd/spatial_store.h"

namespace stark {
namespace {

class SpatialStoreTest : public ::testing::Test {
 protected:
  SpatialStoreTest() {
    SkewedPointsOptions gen;
    gen.count = 1200;
    gen.universe = universe_;
    gen.seed = 111;
    auto points = GenerateSkewedPoints(gen);
    for (size_t i = 0; i < points.size(); ++i) {
      data_.emplace_back(points[i], static_cast<int64_t>(i));
    }
  }

  std::string MakeDir(const char* name) {
    const std::string dir = test::UniqueTempPath(name);
    STARK_CHECK(std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str()) ==
                0);
    return dir;
  }

  static std::set<int64_t> Ids(
      const std::vector<std::pair<STObject, int64_t>>& elems) {
    std::set<int64_t> ids;
    for (const auto& [obj, id] : elems) ids.insert(id);
    return ids;
  }

  Envelope universe_ = Envelope(0, 0, 100, 100);
  Context ctx_{4};
  std::vector<std::pair<STObject, int64_t>> data_;
};

TEST(ExplicitPartitionerTest, RoutesAndFallsBackToNearest) {
  std::vector<Envelope> bounds = {Envelope(0, 0, 5, 10),
                                  Envelope(5, 0, 10, 10)};
  ExplicitPartitioner part(bounds, {});
  EXPECT_EQ(part.NumPartitions(), 2u);
  EXPECT_EQ(part.PartitionFor({2, 5}), 0u);
  EXPECT_EQ(part.PartitionFor({7, 5}), 1u);
  // Out-of-universe point routes to the nearest bounds.
  EXPECT_EQ(part.PartitionFor({-3, 5}), 0u);
  EXPECT_EQ(part.PartitionFor({14, 5}), 1u);
  EXPECT_EQ(part.Name(), "explicit");
}

TEST(ExplicitPartitionerTest, PreloadedExtentsAreKept) {
  std::vector<Envelope> bounds = {Envelope(0, 0, 5, 10)};
  std::vector<Envelope> extents = {Envelope(-1, -1, 6, 11)};
  ExplicitPartitioner part(bounds, extents);
  EXPECT_TRUE(part.PartitionExtent(0).Contains(Envelope(-1, -1, 6, 11)));
}

TEST_F(SpatialStoreTest, UnpartitionedRoundTrip) {
  const std::string dir = MakeDir("stark_store_plain");
  auto rdd = SpatialRDD<int64_t>::FromVector(&ctx_, data_, 3);
  ASSERT_TRUE(SaveSpatial(rdd, dir).ok());
  auto loaded = LoadSpatial<int64_t>(&ctx_, dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie().partitioner(), nullptr);
  EXPECT_EQ(Ids(loaded.ValueOrDie().rdd().Collect()), Ids(data_));
  EXPECT_EQ(loaded.ValueOrDie().NumPartitions(), 3u);
}

TEST_F(SpatialStoreTest, PartitionedRoundTripKeepsPruning) {
  const std::string dir = MakeDir("stark_store_bsp");
  std::vector<Coordinate> centroids;
  for (const auto& [obj, id] : data_) centroids.push_back(obj.Centroid());
  BSPartitioner::Options options;
  options.max_cost = 150;
  auto bsp = std::make_shared<BSPartitioner>(universe_, centroids, options);
  auto rdd = SpatialRDD<int64_t>::FromVector(&ctx_, data_).PartitionBy(bsp);
  ASSERT_TRUE(SaveSpatial(rdd, dir).ok());

  auto loaded_result = LoadSpatial<int64_t>(&ctx_, dir);
  ASSERT_TRUE(loaded_result.ok());
  const auto& loaded = loaded_result.ValueOrDie();
  ASSERT_NE(loaded.partitioner(), nullptr);
  EXPECT_EQ(loaded.partitioner()->NumPartitions(), bsp->NumPartitions());

  // Same query results before and after the store/load cycle...
  const STObject qry(Geometry::MakeBox(Envelope(10, 10, 40, 40)));
  EXPECT_EQ(Ids(loaded.Intersects(qry).Collect()),
            Ids(rdd.Intersects(qry).Collect()));
  // ...and partition pruning still skips irrelevant partitions.
  const STObject tiny(Geometry::MakeBox(Envelope(1, 1, 4, 4)));
  auto parts = loaded.Intersects(tiny).CollectPartitions();
  size_t non_empty = 0;
  for (const auto& p : parts) non_empty += p.empty() ? 0 : 1;
  EXPECT_LT(non_empty, parts.size() / 2);
}

TEST_F(SpatialStoreTest, GridMetadataSurvives) {
  const std::string dir = MakeDir("stark_store_grid");
  auto grid = std::make_shared<GridPartitioner>(universe_, 4);
  auto rdd = SpatialRDD<int64_t>::FromVector(&ctx_, data_).PartitionBy(grid);
  ASSERT_TRUE(SaveSpatial(rdd, dir).ok());
  auto loaded = LoadSpatial<int64_t>(&ctx_, dir).ValueOrDie();
  for (size_t i = 0; i < grid->NumPartitions(); ++i) {
    EXPECT_EQ(loaded.partitioner()->PartitionBounds(i),
              grid->PartitionBounds(i));
    EXPECT_TRUE(loaded.partitioner()->PartitionExtent(i).Contains(
        grid->PartitionExtent(i)));
  }
}

TEST_F(SpatialStoreTest, MissingMetaFails) {
  auto loaded = LoadSpatial<int64_t>(&ctx_, "/no/such/store");
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace stark
