// Tests for the job-control layer: deadlines, cooperative cancellation,
// speculative execution, and executor-loss recovery. Spans and counters are
// the observable surface — a cancelled job must not start new tasks (span
// timestamps prove it), a worker death must heal (engine.worker.restarts),
// and speculation must never change results (differential against the
// speculation-off run).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "engine/job_control.h"
#include "engine/rdd.h"
#include "fault/failpoint.h"
#include "io/generator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "partition/grid_partitioner.h"
#include "spatial_rdd/join.h"

namespace stark {
namespace {

using fault::DefaultFailPoints;
using fault::RetryPolicy;

uint64_t CounterValue(const char* name) {
  return obs::DefaultMetrics().GetCounter(name)->Value();
}

class JobControlTest : public ::testing::Test {
 protected:
  // A CI-level STARK_FAILPOINTS or a previous test may have armed sites;
  // every test runs exactly the schedule it arms.
  void SetUp() override { DefaultFailPoints().DisarmAll(); }
  void TearDown() override { DefaultFailPoints().DisarmAll(); }
};

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

TEST_F(JobControlTest, DeadlineExpiredJobReturnsDeadlineExceeded) {
  auto ctx = std::make_unique<Context>(2);
  ctx->set_job_deadline_ms(50);
  const uint64_t cancelled_before = CounterValue("engine.task.cancelled");
  std::atomic<int> started{0};
  Stopwatch w;
  const Status status = ctx->TryRunTasks("test.deadline", 8, [&](size_t) {
    ++started;
    // 40 x 10ms of "work" with a checkpoint between batches; a full run
    // would take 8 tasks x 400ms / 2 workers = 1.6s.
    for (int i = 0; i < 40; ++i) {
      SleepMs(10);
      ThrowIfTaskCancelled();
    }
  });
  const double elapsed_s = w.ElapsedSeconds();
  EXPECT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
  // In-flight tasks stopped at a checkpoint, queued tasks were skipped.
  EXPECT_LT(elapsed_s, 0.8);
  EXPECT_LT(started.load(), 8);
  // Skipped queued copies bump the counter as the pool drains them, which
  // can be after the cancelled job settles — join the pool before reading.
  ctx.reset();
  EXPECT_GE(CounterValue("engine.task.cancelled"), cancelled_before + 1);
}

TEST_F(JobControlTest, ZeroDeadlineMeansNoDeadline) {
  Context ctx(2);
  ctx.set_job_deadline_ms(0);
  std::atomic<int> ran{0};
  const Status status =
      ctx.TryRunTasks("test.nodeadline", 4, [&](size_t) { ++ran; });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(ran.load(), 4);
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

TEST_F(JobControlTest, PreCancelledTokenSkipsEveryTask) {
  obs::TaskTracer tracer;
  tracer.Enable();
  Context ctx(2, &tracer);
  auto token = std::make_shared<CancelToken>();
  token->RequestCancel();
  ctx.set_cancel_token(token);
  std::atomic<int> ran{0};
  const Status status =
      ctx.TryRunTasks("test.precancel", 6, [&](size_t) { ++ran; });
  EXPECT_TRUE(status.IsCancelled()) << status.ToString();
  EXPECT_EQ(ran.load(), 0);  // user code never started
  EXPECT_TRUE(tracer.Spans().empty());  // skipped tasks record no attempt
}

TEST_F(JobControlTest, NoTaskStartsAfterCancellation) {
  obs::TaskTracer tracer;
  tracer.Enable();
  Context ctx(2, &tracer);
  auto token = std::make_shared<CancelToken>();
  ctx.set_cancel_token(token);

  uint64_t cancel_ns = 0;
  std::thread canceller([&] {
    SleepMs(50);
    cancel_ns = tracer.NowNanos();
    token->RequestCancel();
  });
  // 16 tasks x 30ms on 2 workers = 240ms uncancelled; the cancel lands at
  // ~50ms, so later tasks must be skipped without a span.
  const Status status = ctx.TryRunTasks("test.midcancel", 16, [&](size_t) {
    for (int i = 0; i < 3; ++i) {
      SleepMs(10);
      ThrowIfTaskCancelled();
    }
  });
  canceller.join();
  EXPECT_TRUE(status.IsCancelled()) << status.ToString();

  const auto spans = tracer.Spans();
  EXPECT_LT(spans.size(), 16u);
  // A worker may have passed its stop check just before the flag latched;
  // allow a small window, far below the 30ms task length.
  const uint64_t margin_ns = 20'000'000;  // 20ms
  for (const auto& span : spans) {
    EXPECT_LE(span.start_ns, cancel_ns + margin_ns)
        << "task started " << (span.start_ns - cancel_ns) / 1e6
        << "ms after cancellation";
  }
}

TEST_F(JobControlTest, TokenIsReusableAfterReset) {
  Context ctx(2);
  auto token = std::make_shared<CancelToken>();
  ctx.set_cancel_token(token);
  token->RequestCancel();
  EXPECT_TRUE(ctx.TryRunTasks("test.reuse", 4, [](size_t) {}).IsCancelled());
  token->Reset();
  std::atomic<int> ran{0};
  const Status status =
      ctx.TryRunTasks("test.reuse", 4, [&](size_t) { ++ran; });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(ran.load(), 4);
}

// ---------------------------------------------------------------------------
// Fail-fast: a permanent failure cancels the rest of the job
// ---------------------------------------------------------------------------

TEST_F(JobControlTest, FailFastSkipsQueuedTasksAfterFirstFailure) {
  ::setenv("STARK_TASK_FAIL_FAST", "1", 1);
  auto ctx = std::make_unique<Context>(2);
  ::unsetenv("STARK_TASK_FAIL_FAST");
  ASSERT_TRUE(ctx->retry_policy().fail_fast);

  const uint64_t cancelled_before = CounterValue("engine.task.cancelled");
  std::atomic<int> ran{0};
  const Status status = ctx->TryRunTasks("test.failfast", 16, [&](size_t p) {
    if (p == 0) throw StatusError(Status::IOError("disk gone"));
    ++ran;
    SleepMs(20);
  });
  // The real failure surfaces (not the secondary cancellation), with the
  // task-boundary message format.
  ASSERT_FALSE(status.ok());
  EXPECT_FALSE(status.IsCancelled()) << status.ToString();
  EXPECT_NE(status.ToString().find("failed after 1 attempt(s)"),
            std::string::npos)
      << status.ToString();
  EXPECT_LT(ran.load(), 15);  // queued tasks were skipped, not run
  // Join the pool first: skipped copies count themselves as they drain.
  ctx.reset();
  EXPECT_GE(CounterValue("engine.task.cancelled"), cancelled_before + 1);
}

TEST_F(JobControlTest, NoBackoffSleepAfterFinalAttempt) {
  Context ctx(2);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_base_ms = 80;
  policy.backoff_multiplier = 1.0;
  ctx.set_retry_policy(policy);
  std::atomic<int> attempts{0};
  Stopwatch w;
  const Status status = ctx.TryRunTasks("test.backoff", 1, [&](size_t) {
    ++attempts;
    throw StatusError(Status::IOError("always fails"));
  });
  const double elapsed_s = w.ElapsedSeconds();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(attempts.load(), 3);
  // Two backoff sleeps (after attempts 1 and 2) and none after the final
  // attempt: ~160ms. A third sleep would push past 240ms.
  EXPECT_GE(elapsed_s, 0.14);
  EXPECT_LT(elapsed_s, 0.22);
}

// ---------------------------------------------------------------------------
// Executor loss: a killed worker's task is requeued, the worker respawned
// ---------------------------------------------------------------------------

TEST_F(JobControlTest, WorkerDeathRequeuesTaskAndRespawnsWorker) {
  auto ctx = std::make_unique<Context>(2);
  const uint64_t restarts_before = CounterValue("engine.worker.restarts");
  const uint64_t deaths_before = CounterValue("engine.worker.deaths");
  ASSERT_TRUE(DefaultFailPoints()
                  .ArmFromSpec("engine.worker.die=nth:2")
                  .ok());
  std::vector<int64_t> data(1000);
  std::iota(data.begin(), data.end(), 0);
  const auto doubled = MakeRDD(ctx.get(), data, 8)
                           .Map([](int64_t& x) { return x * 2; })
                           .Collect();
  DefaultFailPoints().DisarmAll();

  ASSERT_EQ(doubled.size(), 1000u);
  for (size_t i = 0; i < doubled.size(); ++i) {
    EXPECT_EQ(doubled[i], static_cast<int64_t>(i) * 2);
  }

  // The healed pool still runs full-width jobs.
  std::atomic<int> ran{0};
  const Status status =
      ctx->TryRunTasks("test.after-heal", 8, [&](size_t) { ++ran; });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(ran.load(), 8);

  // The dying worker thread bumps the death/restart counters on its way
  // out, possibly after the job completed on the survivors — join the
  // pool before asserting them.
  ctx.reset();
  EXPECT_GE(CounterValue("engine.worker.deaths"), deaths_before + 1);
  EXPECT_GE(CounterValue("engine.worker.restarts"), restarts_before + 1);
}

// ---------------------------------------------------------------------------
// Speculation: stragglers get a backup copy; results never change
// ---------------------------------------------------------------------------

SpeculationPolicy AggressivePolicy() {
  SpeculationPolicy policy;
  policy.enabled = true;
  policy.quantile = 0.5;
  policy.multiplier = 1.25;
  policy.min_task_ms = 5;
  return policy;
}

TEST_F(JobControlTest, SpeculativeCopyWinsAgainstDelayedStraggler) {
  auto ctx = std::make_unique<Context>(4);
  ctx->set_speculation_policy(AggressivePolicy());
  const uint64_t wins_before = CounterValue("engine.task.speculation_wins");
  ASSERT_TRUE(DefaultFailPoints()
                  .ArmFromSpec("engine.task.run=delay:400@nth:1")
                  .ok());
  std::vector<int> out(4, 0);
  Stopwatch w;
  const Status status = ctx->TryRunTasks("test.straggler", 4, [&](size_t p) {
    SleepMs(20);
    out[p] = static_cast<int>(p) + 1;
  });
  const double elapsed_s = w.ElapsedSeconds();
  DefaultFailPoints().DisarmAll();
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4}));  // exactly-once commit
  // The job returned via the backup copy, not the 400ms sleeper.
  EXPECT_LT(elapsed_s, 0.35);
  // The winning copy bumps the counter after the commit that releases the
  // driver — join the pool (which also waits out the sleeper) first.
  ctx.reset();
  EXPECT_GE(CounterValue("engine.task.speculation_wins"), wins_before + 1);
}

TEST_F(JobControlTest, SpeculationDifferentialOnSpatialQueries) {
  // Workload: skewed points joined/filtered/kNN-queried against polygons.
  SkewedPointsOptions gen;
  gen.count = 300;
  gen.universe = Envelope(0, 0, 100, 100);
  gen.seed = 91;
  const auto pts = GenerateSkewedPoints(gen);
  PolygonsOptions pgen;
  pgen.count = 40;
  pgen.universe = gen.universe;
  pgen.seed = 92;
  pgen.min_radius = 2;
  pgen.max_radius = 8;
  const auto polys = GenerateRandomPolygons(pgen);
  std::vector<std::pair<STObject, int64_t>> left, right;
  for (size_t i = 0; i < pts.size(); ++i) {
    left.emplace_back(pts[i], static_cast<int64_t>(i));
  }
  for (size_t i = 0; i < polys.size(); ++i) {
    right.emplace_back(polys[i], static_cast<int64_t>(i));
  }

  const auto join_ids = [&](Context* cx) {
    auto grid = std::make_shared<GridPartitioner>(gen.universe, 3);
    auto l = SpatialRDD<int64_t>::FromVector(cx, left, 3).PartitionBy(grid);
    auto r = SpatialRDD<int64_t>::FromVector(cx, right, 2).PartitionBy(grid);
    std::set<std::pair<int64_t, int64_t>> ids;
    for (const auto& [a, b] :
         SpatialJoin(l, r, JoinPredicate::ContainedBy()).Collect()) {
      ids.emplace(a.second, b.second);
    }
    return ids;
  };
  const STObject window(Geometry::MakeBox(Envelope(20, 20, 70, 70)));
  const auto filter_ids = [&](Context* cx) {
    auto s = SpatialRDD<int64_t>::FromVector(cx, left, 4);
    std::vector<int64_t> ids;
    for (const auto& [obj, id] :
         s.Filter(window, JoinPredicate::ContainedBy()).Collect()) {
      ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  const auto knn_ids = [&](Context* cx) {
    auto s = SpatialRDD<int64_t>::FromVector(cx, left, 4);
    std::vector<std::pair<double, int64_t>> hits;
    for (const auto& [dist, elem] : s.Knn(pts[0], 10)) {
      hits.emplace_back(dist, elem.second);
    }
    return hits;
  };

  // Baseline: speculation off, no faults.
  Context base(4);
  SpeculationPolicy off;
  off.enabled = false;
  base.set_speculation_policy(off);
  const auto base_join = join_ids(&base);
  const auto base_filter = filter_ids(&base);
  const auto base_knn = knn_ids(&base);
  EXPECT_FALSE(base_join.empty());
  EXPECT_FALSE(base_filter.empty());
  EXPECT_EQ(base_knn.size(), 10u);

  // Speculation on, one delayed straggler per query: results must be
  // identical — the claim makes the duplicate copies invisible.
  const uint64_t wins_before = CounterValue("engine.task.speculation_wins");
  {
    Context spec(4);
    spec.set_speculation_policy(AggressivePolicy());
    ASSERT_TRUE(DefaultFailPoints()
                    .ArmFromSpec("engine.task.run=delay:300@nth:1")
                    .ok());
    EXPECT_EQ(join_ids(&spec), base_join);
    DefaultFailPoints().DisarmAll();
    ASSERT_TRUE(DefaultFailPoints()
                    .ArmFromSpec("engine.task.run=delay:300@nth:1")
                    .ok());
    EXPECT_EQ(filter_ids(&spec), base_filter);
    DefaultFailPoints().DisarmAll();
    ASSERT_TRUE(DefaultFailPoints()
                    .ArmFromSpec("engine.task.run=delay:300@nth:1")
                    .ok());
    EXPECT_EQ(knn_ids(&spec), base_knn);
    DefaultFailPoints().DisarmAll();
  }
  EXPECT_GE(CounterValue("engine.task.speculation_wins"), wins_before + 1);
}

// ---------------------------------------------------------------------------
// Shutdown under load (primarily a TSan target)
// ---------------------------------------------------------------------------

TEST_F(JobControlTest, ContextDestructionWhileExpiredJobStillDrains) {
  // A deadline-expired job returns as soon as no claimed copy is inside
  // user code; unclaimed queued/sleeping copies may still reference the
  // JobControl. Destroying the Context right away must be safe: the pool
  // drains the leftovers, which skip via the heap-owned control block.
  ASSERT_TRUE(DefaultFailPoints()
                  .ArmFromSpec("engine.task.run=delay:100@nth:1")
                  .ok());
  auto ctx = std::make_unique<Context>(2);
  ctx->set_job_deadline_ms(30);
  const Status status = ctx->TryRunTasks("test.drain", 16, [&](size_t) {
    for (int i = 0; i < 4; ++i) {
      SleepMs(10);
      ThrowIfTaskCancelled();
    }
  });
  EXPECT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
  ctx.reset();  // joins workers; queued copies run their skip path
  DefaultFailPoints().DisarmAll();
}

}  // namespace
}  // namespace stark
