// Tests for DBSCAN: the sequential reference implementation and the
// distributed MR-DBSCAN-style operator, including the equivalence property
// distributed == sequential (as partitions of the point set).
#include <map>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "clustering/distributed_dbscan.h"
#include "clustering/union_find.h"
#include "common/rng.h"
#include "io/generator.h"
#include "partition/bsp_partitioner.h"
#include "partition/grid_partitioner.h"

namespace stark {
namespace {

TEST(UnionFindTest, BasicMerging) {
  UnionFind uf(6);
  EXPECT_FALSE(uf.Connected(0, 1));
  uf.Union(0, 1);
  uf.Union(2, 3);
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(1, 2));
  uf.Union(1, 3);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(0, 5));
  EXPECT_EQ(uf.Find(0), uf.Find(3));
}

TEST(DbscanLocalTest, EmptyInput) {
  auto result = DbscanLocal({}, {1.0, 3});
  EXPECT_TRUE(result.labels.empty());
  EXPECT_EQ(result.num_clusters, 0u);
}

TEST(DbscanLocalTest, TwoClustersAndNoise) {
  // Two tight groups of 4 points each, plus one far-away noise point.
  std::vector<Coordinate> pts = {
      {0, 0}, {0.1, 0}, {0, 0.1}, {0.1, 0.1},          // cluster A
      {10, 10}, {10.1, 10}, {10, 10.1}, {10.1, 10.1},  // cluster B
      {50, 50},                                        // noise
  };
  auto result = DbscanLocal(pts, {0.5, 3});
  EXPECT_EQ(result.num_clusters, 2u);
  EXPECT_EQ(result.labels[0], result.labels[1]);
  EXPECT_EQ(result.labels[0], result.labels[3]);
  EXPECT_EQ(result.labels[4], result.labels[7]);
  EXPECT_NE(result.labels[0], result.labels[4]);
  EXPECT_EQ(result.labels[8], kNoise);
  EXPECT_FALSE(result.core[8]);
  EXPECT_TRUE(result.core[0]);
}

TEST(DbscanLocalTest, MinPtsCountsSelf) {
  // Two points within eps: with min_pts = 2 they form a cluster; with 3
  // they are noise.
  std::vector<Coordinate> pts = {{0, 0}, {0.1, 0}};
  EXPECT_EQ(DbscanLocal(pts, {0.5, 2}).num_clusters, 1u);
  EXPECT_EQ(DbscanLocal(pts, {0.5, 3}).num_clusters, 0u);
}

TEST(DbscanLocalTest, ChainOfCorePointsFormsOneCluster) {
  // Points spaced 0.9 apart with eps 1.0: density-connected chain.
  std::vector<Coordinate> pts;
  for (int i = 0; i < 20; ++i) pts.push_back({0.9 * i, 0.0});
  auto result = DbscanLocal(pts, {1.0, 2});
  EXPECT_EQ(result.num_clusters, 1u);
  for (int64_t label : result.labels) EXPECT_EQ(label, 0);
}

TEST(DbscanLocalTest, BorderPointJoinsFirstCluster) {
  // A border point (not core) adjacent to a dense cluster is labeled.
  std::vector<Coordinate> pts = {{0, 0}, {0.1, 0}, {0, 0.1},
                                 {0.1, 0.1}, {0.55, 0}};
  auto result = DbscanLocal(pts, {0.5, 4});
  EXPECT_EQ(result.num_clusters, 1u);
  EXPECT_EQ(result.labels[4], 0);
  EXPECT_FALSE(result.core[4]);
}

// ---------------------------------------------------------------------------
// Distributed DBSCAN
// ---------------------------------------------------------------------------

/// Canonical form of a clustering: set of clusters, each a set of ids.
template <typename GetLabel>
std::set<std::set<int64_t>> CanonicalClusters(size_t n, GetLabel get) {
  std::map<int64_t, std::set<int64_t>> by_label;
  for (size_t i = 0; i < n; ++i) {
    const int64_t label = get(i);
    if (label != kNoise) by_label[label].insert(static_cast<int64_t>(i));
  }
  std::set<std::set<int64_t>> out;
  for (auto& [label, members] : by_label) out.insert(std::move(members));
  return out;
}

class DistributedDbscanTest : public ::testing::Test {
 protected:
  Context ctx_{4};

  /// Runs distributed DBSCAN with the given partitioner and compares the
  /// resulting partition of points into clusters with sequential DBSCAN.
  void ExpectMatchesSequential(
      const std::vector<STObject>& points, const DbscanParams& params,
      const std::shared_ptr<SpatialPartitioner>& partitioner) {
    std::vector<std::pair<STObject, int64_t>> data;
    std::vector<Coordinate> coords;
    for (size_t i = 0; i < points.size(); ++i) {
      data.emplace_back(points[i], static_cast<int64_t>(i));
      coords.push_back(points[i].Centroid());
    }
    const DbscanResult seq = DbscanLocal(coords, params);

    auto rdd = SpatialRDD<int64_t>::FromVector(&ctx_, data, 4);
    auto clustered = DistributedDbscan(rdd, params, partitioner).Collect();
    ASSERT_EQ(clustered.size(), points.size());

    std::map<int64_t, int64_t> dist_labels;  // point id -> cluster
    for (const auto& [elem, label] : clustered) {
      dist_labels[elem.second] = label;
    }
    const auto seq_clusters = CanonicalClusters(
        points.size(), [&](size_t i) { return seq.labels[i]; });
    const auto dist_clusters = CanonicalClusters(
        points.size(),
        [&](size_t i) { return dist_labels[static_cast<int64_t>(i)]; });
    EXPECT_EQ(dist_clusters, seq_clusters);
    // Noise sets match implicitly: same clusters over the same points.
  }
};

TEST_F(DistributedDbscanTest, MatchesSequentialOnSkewedData) {
  SkewedPointsOptions gen;
  gen.count = 1500;
  gen.universe = Envelope(0, 0, 100, 100);
  gen.clusters = 6;
  gen.cluster_spread = 0.015;
  gen.seed = 71;
  const auto points = GenerateSkewedPoints(gen);
  auto grid = std::make_shared<GridPartitioner>(gen.universe, 4);
  ExpectMatchesSequential(points, {1.5, 5}, grid);
}

TEST_F(DistributedDbscanTest, MatchesSequentialWithBsp) {
  SkewedPointsOptions gen;
  gen.count = 1200;
  gen.universe = Envelope(0, 0, 100, 100);
  gen.clusters = 4;
  gen.seed = 72;
  const auto points = GenerateSkewedPoints(gen);
  std::vector<Coordinate> centroids;
  for (const auto& p : points) centroids.push_back(p.Centroid());
  BSPartitioner::Options opt;
  opt.max_cost = 150;
  auto bsp =
      std::make_shared<BSPartitioner>(gen.universe, centroids, opt);
  ExpectMatchesSequential(points, {2.0, 4}, bsp);
}

TEST_F(DistributedDbscanTest, ClusterStraddlingPartitionBorderIsMerged) {
  // A single dense chain crossing the border between grid cells: the merge
  // step must unify the two local clusters.
  std::vector<STObject> points;
  for (int i = 0; i < 40; ++i) {
    points.emplace_back(Geometry::MakePoint(30 + i, 50.0));
  }
  auto grid = std::make_shared<GridPartitioner>(Envelope(0, 0, 100, 100), 2);
  std::vector<std::pair<STObject, int64_t>> data;
  for (size_t i = 0; i < points.size(); ++i) {
    data.emplace_back(points[i], static_cast<int64_t>(i));
  }
  auto rdd = SpatialRDD<int64_t>::FromVector(&ctx_, data, 4);
  auto clustered = DistributedDbscan(rdd, {1.5, 2}, grid).Collect();
  std::set<int64_t> labels;
  for (const auto& [elem, label] : clustered) {
    EXPECT_NE(label, kNoise);
    labels.insert(label);
  }
  EXPECT_EQ(labels.size(), 1u);  // one global cluster, not two halves
}

TEST_F(DistributedDbscanTest, RandomizedEquivalenceSweep) {
  // Property sweep over random parameters: distributed must equal
  // sequential for any eps/min_pts/partitioner granularity.
  Rng rng(73);
  for (int trial = 0; trial < 5; ++trial) {
    SkewedPointsOptions gen;
    gen.count = 600;
    gen.universe = Envelope(0, 0, 50, 50);
    gen.clusters = static_cast<size_t>(rng.UniformInt(2, 6));
    gen.seed = 100 + static_cast<uint64_t>(trial);
    const auto points = GenerateSkewedPoints(gen);
    const DbscanParams params{rng.Uniform(0.5, 2.5),
                              static_cast<size_t>(rng.UniformInt(2, 8))};
    auto grid = std::make_shared<GridPartitioner>(
        gen.universe, static_cast<size_t>(rng.UniformInt(2, 5)));
    ExpectMatchesSequential(points, params, grid);
  }
}

TEST_F(DistributedDbscanTest, AllNoiseWhenEpsTiny) {
  const auto points =
      GenerateUniformPoints(200, 74, Envelope(0, 0, 1000, 1000));
  std::vector<std::pair<STObject, int64_t>> data;
  for (size_t i = 0; i < points.size(); ++i) {
    data.emplace_back(points[i], static_cast<int64_t>(i));
  }
  auto rdd = SpatialRDD<int64_t>::FromVector(&ctx_, data, 4);
  auto grid = std::make_shared<GridPartitioner>(Envelope(0, 0, 1000, 1000), 3);
  auto clustered = DistributedDbscan(rdd, {0.001, 3}, grid).Collect();
  for (const auto& [elem, label] : clustered) EXPECT_EQ(label, kNoise);
}

}  // namespace
}  // namespace stark
