// Deterministic stream-replay harness.
//
// Everything here is driven by *event time*, so the "clock" of a replay is
// entirely virtual: a test scripts an arrival schedule (any permutation of
// the events, with duplicates and late stragglers), replays it through a
// StreamContext, and compares the fired windows byte-for-byte against a
// batch recomputation by the oracle below. The oracle is deliberately
// scalar and brute-force — no watermark tracker, no window manager, no
// tree-accelerated matching — so an agreement between the two is evidence,
// not tautology.
#ifndef STARK_TESTS_STREAM_TEST_UTIL_H_
#define STARK_TESTS_STREAM_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "geometry/geometry.h"
#include "stream/cep.h"
#include "stream/event.h"
#include "stream/source.h"
#include "stream/stream_context.h"
#include "stream/watermark.h"
#include "stream/window.h"

namespace stark {
namespace test {

using stream::FiredWindow;
using stream::StreamEvent;
using stream::WindowSpec;

inline StreamEvent MakeEvent(int64_t id, Instant t,
                             const std::string& category, double x,
                             double y) {
  StreamEvent e;
  e.id = id;
  e.category = category;
  e.obj = STObject(Geometry::MakePoint({x, y}), t);
  return e;
}

/// A source that replays a scripted arrival schedule verbatim — the knob
/// that lets tests feed any out-of-order / late / duplicate interleaving.
class ScriptedSource final : public stream::StreamSource {
 public:
  explicit ScriptedSource(std::vector<StreamEvent> arrivals,
                          std::string name = "scripted")
      : name_(std::move(name)), arrivals_(std::move(arrivals)) {}

  const std::string& name() const override { return name_; }

  std::vector<StreamEvent> Poll(size_t max_events) override {
    std::vector<StreamEvent> batch;
    while (cursor_ < arrivals_.size() && batch.size() < max_events) {
      batch.push_back(arrivals_[cursor_++]);
    }
    return batch;
  }

  bool Exhausted() const override { return cursor_ >= arrivals_.size(); }
  void Reset() override { cursor_ = 0; }

 private:
  std::string name_;
  std::vector<StreamEvent> arrivals_;
  size_t cursor_ = 0;
};

/// A seeded arrival schedule: events shuffled by at most `disorder` ticks
/// of displacement, with `duplicates` extra deliveries of random events
/// appended at random later positions.
inline std::vector<StreamEvent> ShuffledArrivals(
    const std::vector<StreamEvent>& events, uint64_t seed, int64_t disorder,
    size_t duplicates = 0) {
  Rng rng(seed);
  std::vector<std::pair<int64_t, size_t>> order;
  order.reserve(events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    const int64_t jitter =
        disorder > 0 ? static_cast<int64_t>(rng.UniformInt(0, disorder)) : 0;
    order.emplace_back(events[i].event_time() + jitter, i);
  }
  std::sort(order.begin(), order.end());
  std::vector<StreamEvent> arrivals;
  arrivals.reserve(events.size() + duplicates);
  for (const auto& [key, i] : order) arrivals.push_back(events[i]);
  for (size_t d = 0; d < duplicates && !arrivals.empty(); ++d) {
    const size_t src = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(arrivals.size()) - 1));
    const size_t pos = src + static_cast<size_t>(rng.UniformInt(
                                 0, static_cast<int64_t>(arrivals.size()) -
                                        static_cast<int64_t>(src) - 1));
    arrivals.insert(arrivals.begin() + static_cast<int64_t>(pos) + 1,
                    arrivals[src]);
  }
  return arrivals;
}

// ---------------------------------------------------------------------------
// Batch-reference oracle.
// ---------------------------------------------------------------------------

/// What a scalar replay of \p arrivals decides about each delivery. This
/// re-derives the accept/late/duplicate split with plain sequential code:
/// watermark = max event time seen so far minus the bound, evaluated
/// *before* the event it judges.
struct ReferenceReplay {
  std::vector<StreamEvent> accepted;  // arrival order, deduplicated
  std::vector<StreamEvent> late;      // arrival order
  size_t duplicates = 0;
};

inline ReferenceReplay ReplayArrivals(const std::vector<StreamEvent>& arrivals,
                                      int64_t bound) {
  ReferenceReplay out;
  std::set<int64_t> seen;
  Instant max_seen = std::numeric_limits<Instant>::min();
  bool any = false;
  for (const StreamEvent& e : arrivals) {
    if (!seen.insert(e.id).second) {
      ++out.duplicates;
      continue;
    }
    const Instant t = e.event_time();
    if (any && t < max_seen - bound) {
      out.late.push_back(e);
    } else {
      out.accepted.push_back(e);
    }
    if (!any || t > max_seen) {
      max_seen = t;
      any = true;
    }
  }
  return out;
}

/// Batch window enumeration over a complete event set: every aligned window
/// start from the earliest window containing the earliest event through the
/// last window containing the latest event, empty windows included. Window
/// membership is a plain scalar time filter; contents are in canonical
/// (event_time, id) order.
inline std::vector<FiredWindow> BatchWindows(
    const std::vector<StreamEvent>& events, const WindowSpec& spec) {
  std::vector<FiredWindow> out;
  if (events.empty()) return out;
  Instant min_t = events[0].event_time();
  Instant max_t = min_t;
  for (const StreamEvent& e : events) {
    min_t = std::min(min_t, e.event_time());
    max_t = std::max(max_t, e.event_time());
  }
  const int64_t slide = spec.EffectiveSlide();
  const int64_t first = stream::WindowStartsFor(min_t, spec).front();
  const int64_t last = stream::LastWindowStart(max_t, spec);
  for (int64_t s = first; s <= last; s += slide) {
    FiredWindow w;
    w.start = s;
    w.end = s + spec.size;
    for (const StreamEvent& e : events) {
      if (e.event_time() >= s && e.event_time() < w.end) w.events.push_back(e);
    }
    std::sort(w.events.begin(), w.events.end(), stream::CanonicalLess);
    out.push_back(std::move(w));
  }
  return out;
}

/// Brute-force scalar pattern evaluation over one window, using only
/// StepPredicate::Matches — no engine job, no tree, no chunking. Must agree
/// with stream::EvaluatePattern on every window.
inline std::vector<stream::PatternMatch> ReferencePattern(
    const stream::PatternSpec& spec, const FiredWindow& window) {
  std::vector<std::vector<size_t>> step_indices(spec.steps.size());
  for (size_t s = 0; s < spec.steps.size(); ++s) {
    for (size_t i = 0; i < window.events.size(); ++i) {
      if (spec.steps[s].Matches(window.events[i])) {
        step_indices[s].push_back(i);
      }
    }
  }
  std::vector<stream::PatternMatch> matches;
  auto make_match = [&window](int64_t count) {
    stream::PatternMatch m;
    m.window_start = window.start;
    m.window_end = window.end;
    m.count = count;
    return m;
  };
  switch (spec.kind) {
    case stream::PatternKind::kCount: {
      const int64_t count = static_cast<int64_t>(step_indices[0].size());
      if (stream::EvalCountCmp(count, spec.cmp, spec.threshold)) {
        stream::PatternMatch m = make_match(count);
        for (size_t i : step_indices[0]) m.events.push_back(window.events[i]);
        matches.push_back(std::move(m));
      }
      break;
    }
    case stream::PatternKind::kAbsence: {
      if (step_indices[0].empty()) matches.push_back(make_match(0));
      break;
    }
    case stream::PatternKind::kSequence: {
      // Iterative odometer over one index per step, filtered for strictly
      // increasing times and the WITHIN span; emits tuples in lexicographic
      // order like a nested loop would.
      std::vector<size_t> pos(spec.steps.size(), 0);
      std::vector<size_t> tuple;
      struct Frame { size_t step; size_t cursor; };
      std::vector<Frame> stack;
      stack.push_back({0, 0});
      while (!stack.empty()) {
        Frame& f = stack.back();
        if (f.step == spec.steps.size()) {
          stream::PatternMatch m =
              make_match(static_cast<int64_t>(tuple.size()));
          for (size_t i : tuple) m.events.push_back(window.events[i]);
          matches.push_back(std::move(m));
          stack.pop_back();
          if (!tuple.empty()) tuple.pop_back();
          continue;
        }
        bool advanced = false;
        while (f.cursor < step_indices[f.step].size()) {
          const size_t i = step_indices[f.step][f.cursor++];
          const Instant t = window.events[i].event_time();
          if (!tuple.empty()) {
            const Instant prev =
                window.events[tuple.back()].event_time();
            const Instant first =
                window.events[tuple.front()].event_time();
            if (t <= prev) continue;
            if (spec.within > 0 && t - first > spec.within) continue;
          }
          tuple.push_back(i);
          stack.push_back({f.step + 1, 0});
          advanced = true;
          break;
        }
        if (!advanced) {
          stack.pop_back();
          if (!tuple.empty()) tuple.pop_back();
        }
      }
      break;
    }
  }
  return matches;
}

// ---------------------------------------------------------------------------
// Byte-comparable serializations: the differential assertions compare these
// strings, so "equal" means equal in every field and in order.
// ---------------------------------------------------------------------------

inline std::string FormatEventRef(const StreamEvent& e) {
  return std::to_string(e.id) + "@" + std::to_string(e.event_time()) + ":" +
         e.category;
}

inline std::string FormatWindow(const FiredWindow& w) {
  std::string out =
      "[" + std::to_string(w.start) + "," + std::to_string(w.end) + ")";
  for (const StreamEvent& e : w.events) out += " " + FormatEventRef(e);
  return out;
}

inline std::string FormatWindows(const std::vector<FiredWindow>& windows) {
  std::string out;
  for (const FiredWindow& w : windows) out += FormatWindow(w) + "\n";
  return out;
}

inline std::string FormatMatch(const stream::PatternMatch& m) {
  std::string out = "[" + std::to_string(m.window_start) + "," +
                    std::to_string(m.window_end) +
                    ") count=" + std::to_string(m.count);
  for (const StreamEvent& e : m.events) out += " " + FormatEventRef(e);
  return out;
}

inline std::string FormatMatches(
    const std::vector<stream::PatternMatch>& matches) {
  std::string out;
  for (const stream::PatternMatch& m : matches) out += FormatMatch(m) + "\n";
  return out;
}

/// Runs one scripted replay end to end and collects every sink delivery.
struct ReplayRun {
  std::vector<stream::WindowResult> results;
  stream::StreamStats stats;
  std::vector<StreamEvent> side_output;
  /// The exactly-once ledger: window starts in sink-delivery order.
  std::vector<int64_t> delivered_starts;
  Status status = Status::OK();

  std::vector<FiredWindow> Windows() const {
    std::vector<FiredWindow> out;
    for (const stream::WindowResult& r : results) out.push_back(r.window);
    return out;
  }
  std::vector<stream::PatternMatch> Matches() const {
    std::vector<stream::PatternMatch> out;
    for (const stream::WindowResult& r : results) {
      out.insert(out.end(), r.matches.begin(), r.matches.end());
    }
    return out;
  }
};

inline ReplayRun Replay(Context* ctx, std::vector<StreamEvent> arrivals,
                        int64_t bound, stream::StreamContext::Options options) {
  ReplayRun run;
  stream::StreamContext sc(ctx, std::move(options));
  sc.AddSource(std::make_unique<ScriptedSource>(std::move(arrivals)), bound);
  sc.SetSink([&run](const stream::WindowResult& result) {
    run.results.push_back(result);
  });
  run.status = sc.RunToCompletion();
  run.stats = sc.stats();
  run.side_output = sc.TakeSideOutput();
  run.delivered_starts = sc.delivered_window_starts();
  return run;
}

}  // namespace test
}  // namespace stark

#endif  // STARK_TESTS_STREAM_TEST_UTIL_H_
