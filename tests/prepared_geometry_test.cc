// Differential testing of PreparedGeometry and BoundPredicate against the
// plain predicate entry points: over the shared fuzz corpus, every prepared
// evaluation must return exactly what the unprepared call returns —
// including bit-identical distances — and the preparation counters must
// reflect one miss per distinct geometry plus a hit per reuse.
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/stobject.h"
#include "geometry/geometry.h"
#include "geometry/predicates.h"
#include "geometry/prepared.h"
#include "spatial_rdd/predicate.h"
#include "test_util.h"

namespace stark {
namespace {

using test::RandomPopulation;

// ---------------------------------------------------------------------------
// PreparedGeometry vs plain predicates on the fuzz corpus
// ---------------------------------------------------------------------------

TEST(PreparedGeometryTest, AgreesWithPlainPredicatesOnFuzzCorpus) {
  const std::vector<Geometry> pop = RandomPopulation(/*seed=*/60708, 120);
  size_t intersecting = 0;
  for (size_t i = 0; i < pop.size(); ++i) {
    const PreparedGeometry prep(pop[i]);
    EXPECT_TRUE(prep.envelope() == pop[i].envelope());
    for (size_t j = 0; j < pop.size(); ++j) {
      const Geometry& other = pop[j];
      // IntersectedBy(other) == Intersects(other, mine).
      const bool expected_isect = Intersects(other, pop[i]);
      ASSERT_EQ(prep.IntersectedBy(other), expected_isect)
          << pop[i].ToWkt() << " vs " << other.ToWkt();
      // Contains(other) == Contains(mine, other); ContainedBy mirrors.
      ASSERT_EQ(prep.Contains(other), Contains(pop[i], other))
          << pop[i].ToWkt() << " vs " << other.ToWkt();
      ASSERT_EQ(prep.ContainedBy(other), Contains(other, pop[i]))
          << pop[i].ToWkt() << " vs " << other.ToWkt();
      // DistanceFrom replicates Distance(other, mine) exactly — same part
      // order, same arithmetic — so plain == comparison is the contract.
      ASSERT_EQ(prep.DistanceFrom(other), Distance(other, pop[i]))
          << pop[i].ToWkt() << " vs " << other.ToWkt();
      if (expected_isect) ++intersecting;
    }
  }
  // The corpus must exercise hits, not only misses.
  EXPECT_GT(intersecting, 100u);
}

// ---------------------------------------------------------------------------
// BoundPredicate vs JoinPredicate::Eval, both candidate sides, with and
// without temporal components
// ---------------------------------------------------------------------------

std::vector<STObject> MakeObjects(const std::vector<Geometry>& pop) {
  // Mix of no-time, instant, and interval objects so the combined
  // spatio-temporal rule (paper formulas (1)-(3)) is exercised end to end.
  std::vector<STObject> out;
  out.reserve(pop.size());
  for (size_t i = 0; i < pop.size(); ++i) {
    switch (i % 3) {
      case 0:
        out.emplace_back(pop[i]);
        break;
      case 1:
        out.emplace_back(pop[i], static_cast<Instant>(100 + i % 7));
        break;
      default:
        out.emplace_back(pop[i], static_cast<Instant>(i % 5),
                         static_cast<Instant>(i % 5 + 10));
        break;
    }
  }
  return out;
}

TEST(BoundPredicateTest, MatchesJoinPredicateEvalBothSides) {
  const std::vector<Geometry> pop = RandomPopulation(/*seed=*/424242, 90);
  const std::vector<STObject> objs = MakeObjects(pop);

  const std::vector<JoinPredicate> preds = {
      JoinPredicate::Intersects(),
      JoinPredicate::Contains(),
      JoinPredicate::ContainedBy(),
      JoinPredicate::WithinDistance(3.5),
  };
  for (const JoinPredicate& pred : preds) {
    for (size_t f = 0; f < objs.size(); f += 9) {
      const STObject& fixed = objs[f];
      BoundPredicate as_right(pred, fixed,
                              BoundPredicate::Side::kCandidateLeft);
      BoundPredicate as_left(pred, fixed,
                             BoundPredicate::Side::kCandidateRight);
      for (const STObject& cand : objs) {
        ASSERT_EQ(as_right.Eval(cand), pred.Eval(cand, fixed))
            << PredicateName(pred.type) << " candidate-left, fixed " << f;
        ASSERT_EQ(as_left.Eval(cand), pred.Eval(fixed, cand))
            << PredicateName(pred.type) << " candidate-right, fixed " << f;
      }
    }
  }
}

TEST(BoundPredicateTest, PreparesOnceAndCountsReuse) {
  const std::vector<Geometry> pop = RandomPopulation(/*seed=*/5150, 40);
  const std::vector<STObject> objs = MakeObjects(pop);
  const STObject& fixed = objs[0];
  const JoinPredicate pred = JoinPredicate::Intersects();

  BoundPredicate bound(pred, fixed, BoundPredicate::Side::kCandidateLeft);
  EXPECT_EQ(bound.prepared_misses(), 0u);  // nothing until the first Eval
  EXPECT_EQ(bound.prepared_hits(), 0u);
  for (const STObject& cand : objs) bound.Eval(cand);
  EXPECT_EQ(bound.prepared_misses(), 1u);
  EXPECT_EQ(bound.prepared_hits(), objs.size() - 1);
}

TEST(BoundPredicateTest, CustomDistanceFunctionBypassesPreparation) {
  const std::vector<Geometry> pop = RandomPopulation(/*seed=*/321, 30);
  const std::vector<STObject> objs = MakeObjects(pop);
  const JoinPredicate pred = JoinPredicate::WithinDistance(
      5.0, [](const STObject& a, const STObject& b) {
        return EuclideanDistance(a, b);
      });

  BoundPredicate bound(pred, objs[0], BoundPredicate::Side::kCandidateLeft);
  for (const STObject& cand : objs) {
    ASSERT_EQ(bound.Eval(cand), pred.Eval(cand, objs[0]));
  }
  // The custom function never interrogates the prepared form.
  EXPECT_EQ(bound.prepared_misses(), 0u);
  EXPECT_EQ(bound.prepared_hits(), 0u);
}

// ---------------------------------------------------------------------------
// PreparedGeometryCache bookkeeping
// ---------------------------------------------------------------------------

TEST(PreparedGeometryCacheTest, OneMissPerDistinctGeometry) {
  const std::vector<Geometry> pop = RandomPopulation(/*seed=*/888, 10);
  PreparedGeometryCache cache;
  for (int round = 0; round < 4; ++round) {
    for (const Geometry& g : pop) {
      const PreparedGeometry& p = cache.Get(g);
      ASSERT_EQ(&p.geometry(), &g);
    }
  }
  EXPECT_EQ(cache.misses(), pop.size());
  EXPECT_EQ(cache.hits(), 3 * pop.size());
  EXPECT_EQ(cache.size(), pop.size());
}

}  // namespace
}  // namespace stark
