// The serving front end: correctness of snapshot-backed queries
// (differential vs a direct interpreter), session isolation of SET state,
// typed load shedding with Retry-After hints, the deadline/cancel storm
// (every query terminates with exactly one terminal status and the flight
// recorder holds the cancel evidence), draining shutdown, and the TCP wire
// protocol.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "engine/context.h"
#include "obs/flight_recorder.h"
#include "piglet/interpreter.h"
#include "serve/catalog.h"
#include "serve/server.h"
#include "serve/tcp.h"
#include "stream/event.h"

namespace stark {
namespace serve {
namespace {

stream::StreamEvent PointEvent(int64_t id, double x, double y, int64_t t) {
  return stream::StreamEvent(
      id, id % 2 == 0 ? "even" : "odd",
      STObject(Geometry::MakePoint({x, y}), t));
}

std::vector<stream::StreamEvent> GridEvents(size_t n) {
  std::vector<stream::StreamEvent> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    events.push_back(PointEvent(static_cast<int64_t>(i),
                                static_cast<double>(i % 10),
                                static_cast<double>(i / 10),
                                static_cast<int64_t>(i)));
  }
  return events;
}

/// Order-independent comparison key for DUMP output.
std::vector<std::string> SortedLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

constexpr char kFilterScript[] =
    "hits = FILTER events BY INTERSECTS('POLYGON((1.5 1.5, 6.5 1.5, "
    "6.5 6.5, 1.5 6.5, 1.5 1.5))', 0, 100);\n"
    "DUMP hits;\n";

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.CreateDataset("events", 8).ok());
    ASSERT_TRUE(catalog_.Ingest("events", GridEvents(100)).ok());
  }

  /// Ground truth: the same script through a plain interpreter over the
  /// same snapshot (shared BuildSnapshot => identical trees).
  std::string Serial(const std::string& script) {
    Context ctx(1);
    std::ostringstream out;
    piglet::Interpreter interp(&ctx, &out);
    Result<PinnedDataset> pin = catalog_.Pin("events");
    EXPECT_TRUE(pin.ok());
    piglet::PigRelation rel;
    rel.schema = {"id", "category", "time", "wkt"};
    rel.spatialized = true;
    rel.snapshot = pin.ValueOrDie().state();
    std::vector<piglet::PigRow> rows;
    for (const stream::StreamEvent& e : *rel.snapshot->events) {
      rows.push_back(piglet::RowFromStreamEvent(e));
    }
    rel.rdd = MakeRDD(&ctx, std::move(rows));
    interp.BindRelation("events", std::move(rel));
    EXPECT_TRUE(interp.RunScript(script).ok());
    return out.str();
  }

  Catalog catalog_;
};

// Regression: a class that sat idle under sustained load must not bank a
// stale low stride pass — when it re-enters a previously-empty queue it
// joins at the scheduler's current virtual time, so a best-effort burst
// cannot win a run of consecutive dequeues ahead of interactive work.
TEST(AdmissionQueueTest, IdleClassJoinsAtCurrentVirtualTime) {
  SchedulerOptions options;
  AdmissionQueue queue(options);
  auto offer = [&](QueryClass cls) {
    Ticket t;
    t.cls = cls;
    t.run = [] {};
    ASSERT_TRUE(queue.Offer(std::move(t)).ok());
  };

  // Sustained interactive load: 40 dequeues with the queue never draining,
  // so passes are never reset while best-effort sits idle at pass 0.
  Ticket taken;
  offer(QueryClass::kInteractive);
  for (int i = 0; i < 40; ++i) {
    offer(QueryClass::kInteractive);
    ASSERT_TRUE(queue.Take(&taken));
    ASSERT_EQ(taken.cls, QueryClass::kInteractive);
  }

  // Best-effort bursts in behind the interactive backlog.
  for (int i = 0; i < 8; ++i) offer(QueryClass::kBestEffort);
  for (int i = 0; i < 8; ++i) offer(QueryClass::kInteractive);

  // Weighted fairness must hold from the first dequeue: with weights 8:1,
  // interactive dominates immediately; a stale best-effort pass would
  // instead win the first several dequeues outright.
  size_t best_effort = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.Take(&taken));
    if (taken.cls == QueryClass::kBestEffort) ++best_effort;
  }
  EXPECT_LE(best_effort, 1u);
  queue.Close();
}

TEST_F(ServeTest, SnapshotQueryMatchesSerialExecution) {
  ServerOptions options;
  options.query_threads = 2;
  options.engine_threads = 2;
  Server server(&catalog_, options);
  ASSERT_TRUE(server.Start().ok());

  std::unique_ptr<Session> session = server.OpenSession();
  QueryResult result = session->Run(kFilterScript);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GT(result.epoch, 0u);
  EXPECT_FALSE(result.output.empty());
  EXPECT_EQ(SortedLines(result.output), SortedLines(Serial(kFilterScript)));

  server.Shutdown();
}

// Regression: a relation derived from a snapshot relation by an operator
// that changes its row set (general-expression FILTER, LIMIT) must not keep
// the snapshot binding — a subsequent spatial FILTER would otherwise take
// the snapshot fast path, probe the full R-tree, and resurrect rows the
// intermediate operator removed.
TEST_F(ServeTest, DerivedRelationDropsSnapshotFastPath) {
  ServerOptions options;
  options.query_threads = 1;
  Server server(&catalog_, options);
  ASSERT_TRUE(server.Start().ok());
  std::unique_ptr<Session> session = server.OpenSession();

  // FILTER by category, then spatially: no "even" row may survive.
  QueryResult result = session->Run(
      "odds = FILTER events BY category == 'odd';\n"
      "hits = FILTER odds BY INTERSECTS('POLYGON((1.5 1.5, 6.5 1.5, "
      "6.5 6.5, 1.5 6.5, 1.5 1.5))', 0, 100);\n"
      "DUMP hits;\n");
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_FALSE(result.output.empty());
  for (const std::string& line : SortedLines(result.output)) {
    EXPECT_EQ(line.find("even"), std::string::npos) << line;
  }

  // LIMIT, then an all-covering spatial filter: at most 1 row out.
  QueryResult limited = session->Run(
      "one = LIMIT events 1;\n"
      "hits = FILTER one BY INTERSECTS('POLYGON((-1 -1, 11 -1, 11 11, "
      "-1 11, -1 -1))', 0, 100);\n"
      "DUMP hits;\n");
  ASSERT_TRUE(limited.status.ok()) << limited.status.ToString();
  EXPECT_LE(SortedLines(limited.output).size(), 1u);

  server.Shutdown();
}

TEST_F(ServeTest, ConcurrentSessionsSeeConsistentSnapshots) {
  ServerOptions options;
  options.query_threads = 4;
  options.engine_threads = 4;
  Server server(&catalog_, options);
  ASSERT_TRUE(server.Start().ok());

  const std::vector<std::string> expected =
      SortedLines(Serial(kFilterScript));
  constexpr size_t kClients = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      std::unique_ptr<Session> session = server.OpenSession();
      for (int i = 0; i < 5; ++i) {
        QueryResult r = session->Run(kFilterScript);
        if (!r.status.ok() || SortedLines(r.output) != expected) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  server.Shutdown();
}

TEST_F(ServeTest, SetStateIsSessionScoped) {
  ServerOptions options;
  options.query_threads = 2;
  Server server(&catalog_, options);
  ASSERT_TRUE(server.Start().ok());

  std::unique_ptr<Session> a = server.OpenSession();
  std::unique_ptr<Session> b = server.OpenSession();

  // a sets a 1ms deadline and a batch class; b must be unaffected.
  ASSERT_TRUE(a->Run("SET job.deadline_ms 1;").status.ok());
  ASSERT_TRUE(a->Run("SET serve.class 1;").status.ok());
  EXPECT_EQ(a->query_class(), QueryClass::kBatch);
  EXPECT_EQ(b->query_class(), QueryClass::kInteractive);

  QueryResult rb = b->Run(kFilterScript);
  EXPECT_TRUE(rb.status.ok()) << rb.status.ToString();

  // Process-global SET keys are rejected in served sessions.
  EXPECT_FALSE(a->Run("SET obs.slow_task_ms 5;").status.ok());
  EXPECT_FALSE(b->Run("SET obs.slow_query_ms 5;").status.ok());
  // Invalid class values are rejected.
  EXPECT_FALSE(a->Run("SET serve.class 7;").status.ok());

  server.Shutdown();
}

TEST_F(ServeTest, OverloadShedsWithTypedStatusAndRetryHint) {
  ServerOptions options;
  options.query_threads = 1;
  options.engine_threads = 1;
  options.scheduler.queue_limit = 2;
  Server server(&catalog_, options);
  ASSERT_TRUE(server.Start().ok());

  // Wedge the single worker, then overfill the queue.
  std::unique_ptr<Session> session = server.OpenSession();
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  // A long-running query: a generator stream replay with enough events to
  // hold the worker for a while is overkill here — instead submit many
  // queries at once; with queue_limit=2, the surplus must shed.
  constexpr size_t kSubmitted = 16;
  std::vector<std::future<QueryResult>> futures;
  for (size_t i = 0; i < kSubmitted; ++i) {
    futures.push_back(session->Submit(kFilterScript));
  }
  (void)released;
  release.set_value();

  size_t ok = 0, shed = 0;
  for (std::future<QueryResult>& f : futures) {
    QueryResult r = f.get();
    if (r.status.ok()) {
      ++ok;
    } else if (r.status.IsResourceExhausted()) {
      ++shed;
      EXPECT_GT(r.retry_after_ms, 0u);
      EXPECT_NE(r.status.message().find("retry_after_ms="),
                std::string::npos);
    } else {
      ADD_FAILURE() << "unexpected status " << r.status.ToString();
    }
  }
  EXPECT_EQ(ok + shed, kSubmitted);
  EXPECT_GT(shed, 0u);
  server.Shutdown();
}

// Regression (TSan): concurrent Submits on one session while queries from
// the same session execute on workers — Submit captures the session-scoped
// deadline lock-free while RunScript rewrites the Context's per-query
// remaining-budget deadline, so the two must not share a plain field.
TEST_F(ServeTest, ConcurrentSubmitsOnOneSessionWithDeadline) {
  ServerOptions options;
  options.query_threads = 2;
  options.engine_threads = 2;
  Server server(&catalog_, options);
  ASSERT_TRUE(server.Start().ok());

  std::unique_ptr<Session> session = server.OpenSession();
  ASSERT_TRUE(session->Run("SET job.deadline_ms 200;").status.ok());
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(session->Submit(kFilterScript));
  }
  for (std::future<QueryResult>& f : futures) {
    const QueryResult r = f.get();
    EXPECT_TRUE(r.status.ok() || r.status.IsDeadlineExceeded() ||
                r.status.IsResourceExhausted() || r.status.IsCancelled())
        << r.status.ToString();
  }
  server.Shutdown();
}

// Satellite: the deadline/cancel storm. 100 concurrent queries, half with
// a 1ms deadline. Every single one must terminate with exactly one of
// {OK, DeadlineExceeded, Cancelled, ResourceExhausted}, and the flight
// recorder must contain cancel events for the post-mortem.
TEST_F(ServeTest, DeadlineCancelStorm) {
  obs::DefaultFlightRecorder().Enable();

  ServerOptions options;
  options.query_threads = 2;
  options.engine_threads = 2;
  options.scheduler.queue_limit = 32;
  Server server(&catalog_, options);
  ASSERT_TRUE(server.Start().ok());

  // Set up every session first (the SET is itself a served query), then
  // fire all 100 scripts at once so the admission queue actually builds
  // depth — that is the storm.
  constexpr size_t kQueries = 100;
  std::vector<std::unique_ptr<Session>> sessions;
  sessions.reserve(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    sessions.push_back(server.OpenSession());
    if (i % 2 == 0) {
      QueryResult set = sessions.back()->Run("SET job.deadline_ms 1;");
      ASSERT_TRUE(set.status.ok()) << set.status.ToString();
    }
  }
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(kQueries);
  for (std::unique_ptr<Session>& s : sessions) {
    futures.push_back(s->Submit(kFilterScript));
  }

  size_t ok = 0, deadline = 0, cancelled = 0, shed = 0, other = 0;
  for (std::future<QueryResult>& f : futures) {
    const QueryResult r = f.get();
    if (r.status.ok()) {
      ++ok;
    } else if (r.status.IsDeadlineExceeded()) {
      ++deadline;
    } else if (r.status.IsCancelled()) {
      ++cancelled;
    } else if (r.status.IsResourceExhausted()) {
      ++shed;
    } else {
      ++other;
      ADD_FAILURE() << "unexpected status " << r.status.ToString();
    }
  }
  EXPECT_EQ(ok + deadline + cancelled + shed, kQueries);
  EXPECT_EQ(other, 0u);
  // The 1ms half cannot all have finished in time on 2 workers.
  EXPECT_GT(deadline, 0u);

  server.Shutdown();

  // Cancel evidence in the flight ring (serve.deadline / serve.cancel /
  // engine task cancels all record kCancel).
  size_t cancel_events = 0;
  for (const obs::FlightEvent& e : obs::DefaultFlightRecorder().Snapshot()) {
    if (e.kind == obs::FlightEventKind::kCancel) ++cancel_events;
  }
  EXPECT_GT(cancel_events, 0u);
}

TEST_F(ServeTest, DrainShutdownRefusesNewWorkAndDrainsEpochs) {
  ServerOptions options;
  options.query_threads = 2;
  options.drain_grace_ms = 200;
  Server server(&catalog_, options);
  ASSERT_TRUE(server.Start().ok());

  std::unique_ptr<Session> session = server.OpenSession();
  ASSERT_TRUE(session->Run(kFilterScript).status.ok());

  server.Shutdown();

  // Post-drain: submission is refused with the typed shedding status...
  QueryResult refused = session->Run(kFilterScript);
  EXPECT_TRUE(refused.status.IsResourceExhausted())
      << refused.status.ToString();
  EXPECT_NE(refused.status.message().find("draining"), std::string::npos);

  // ...and all pins have drained: exactly one live epoch remains.
  Result<DatasetRegistry*> registry = catalog_.Registry("events");
  ASSERT_TRUE(registry.ok());
  EXPECT_EQ(registry.ValueOrDie()->LiveEpochs(), 1u);

  // Shutdown is idempotent.
  server.Shutdown();
}

TEST_F(ServeTest, IngestDuringQueriesKeepsReadersConsistent) {
  ServerOptions options;
  options.query_threads = 2;
  options.engine_threads = 2;
  Server server(&catalog_, options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::thread ingester([&] {
    int64_t next_id = 1000;
    while (!stop.load()) {
      std::vector<stream::StreamEvent> batch;
      for (int i = 0; i < 10; ++i) {
        const int64_t id = next_id++;
        batch.push_back(PointEvent(id, 3.0, 3.0, id));
      }
      ASSERT_TRUE(catalog_.Ingest("events", std::move(batch)).ok());
    }
  });

  std::unique_ptr<Session> session = server.OpenSession();
  for (int i = 0; i < 20; ++i) {
    QueryResult r = session->Run(
        "hits = FILTER events BY INTERSECTS('POLYGON((2.5 2.5, 3.5 2.5, "
        "3.5 3.5, 2.5 3.5, 2.5 2.5))', 0, 1000000);\nDUMP hits;\n");
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    // Every (3,3) hit is one of the ingested events: the count grows
    // monotonically across queries (snapshots are append-only).
    EXPECT_FALSE(r.output.empty());
  }
  stop.store(true);
  ingester.join();
  server.Shutdown();

  Result<DatasetRegistry*> registry = catalog_.Registry("events");
  ASSERT_TRUE(registry.ok());
  EXPECT_EQ(registry.ValueOrDie()->LiveEpochs(), 1u);
}

// ---------------------------------------------------------------------------
// TCP wire protocol

// Sends `request` and reads `num_replies` ".\n"-terminated replies (the
// frontend runs every ';'-terminated line as one statement, so a two-line
// script yields two replies). Returns the replies in order.
std::vector<std::string> TcpRoundTrip(uint16_t port,
                                      const std::string& request,
                                      size_t num_replies) {
  std::vector<std::string> replies;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string pending;
  char buf[4096];
  while (replies.size() < num_replies) {
    // A terminator is a lone "." line: at the start of the stream or after
    // a newline.
    size_t term = pending.rfind(".\n", 0) == 0 ? 0 : pending.find("\n.\n");
    if (term != std::string::npos) {
      const size_t end = term == 0 ? 2 : term + 3;
      replies.push_back(pending.substr(0, end));
      pending.erase(0, end);
      continue;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    pending.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return replies;
}

TEST_F(ServeTest, TcpProtocolServesQueriesAndTypedErrors) {
  ServerOptions options;
  options.query_threads = 2;
  Server server(&catalog_, options);
  ASSERT_TRUE(server.Start().ok());
  TcpFrontend frontend(&server, 0);
  ASSERT_TRUE(frontend.Start().ok());
  ASSERT_GT(frontend.port(), 0);

  // A successful query. The two-line script yields one reply per
  // statement; the DUMP reply's payload must match serial execution.
  const std::vector<std::string> good =
      TcpRoundTrip(frontend.port(), kFilterScript, 2);
  ASSERT_EQ(good.size(), 2u);
  for (const std::string& reply : good) {
    EXPECT_EQ(reply.rfind("+OK ", 0), 0u) << reply;
  }
  const std::string& dump = good[1];
  const size_t header_end = dump.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  std::string payload = dump.substr(header_end + 1);
  const size_t term = payload.rfind(".\n");
  ASSERT_NE(term, std::string::npos);
  payload.resize(term);
  EXPECT_EQ(SortedLines(payload), SortedLines(Serial(kFilterScript)));

  // A parse error: typed -ERR line.
  const std::vector<std::string> bad =
      TcpRoundTrip(frontend.port(), "THIS IS NOT PIG;\n", 1);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0].rfind("-ERR ", 0), 0u) << bad[0];

  frontend.Stop();
  server.Shutdown();
}

// Regression: connection churn and teardown ownership. Handler threads of
// closed connections are reaped as later connections arrive (a long-lived
// frontend must not accumulate dead thread handles), and clients
// connecting/closing concurrently with Stop() must never wedge the
// frontend or let it act on a recycled descriptor — CloseClient() closes
// fds under the same lock Stop() uses for its shutdown() sweep.
TEST_F(ServeTest, TcpConnectionChurnAndConcurrentStop) {
  ServerOptions options;
  options.query_threads = 2;
  Server server(&catalog_, options);
  ASSERT_TRUE(server.Start().ok());
  TcpFrontend frontend(&server, 0);
  ASSERT_TRUE(frontend.Start().ok());
  const uint16_t port = frontend.port();

  // Sequential churn: each round trip is a fresh connection.
  for (int i = 0; i < 12; ++i) {
    const std::vector<std::string> replies =
        TcpRoundTrip(port, "DESCRIBE events;\n", 1);
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].rfind("+OK ", 0), 0u) << replies[0];
  }

  // Concurrent churn racing Stop().
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      while (!stop.load()) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) return;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
          const char q[] = "DESCRIBE events;\n";
          (void)::send(fd, q, sizeof(q) - 1, MSG_NOSIGNAL);
          char buf[256];
          (void)::recv(fd, buf, sizeof(buf), 0);
        }
        ::close(fd);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  frontend.Stop();
  stop.store(true);
  for (std::thread& t : clients) t.join();
  server.Shutdown();
}

}  // namespace
}  // namespace serve
}  // namespace stark
