// Tests for the spatio-temporal join: every predicate, partitioned and
// unpartitioned, indexed and nested-loop — verified against brute force.
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "io/generator.h"
#include "partition/bsp_partitioner.h"
#include "partition/grid_partitioner.h"
#include "spatial_rdd/join.h"

namespace stark {
namespace {

using Pair = std::pair<int64_t, int64_t>;

class JoinTest : public ::testing::Test {
 protected:
  JoinTest() {
    SkewedPointsOptions gen;
    gen.count = 400;
    gen.universe = universe_;
    gen.seed = 61;
    auto pts = GenerateSkewedPoints(gen);
    for (size_t i = 0; i < pts.size(); ++i) {
      left_.emplace_back(pts[i], static_cast<int64_t>(i));
    }
    PolygonsOptions pgen;
    pgen.count = 60;
    pgen.universe = universe_;
    pgen.seed = 62;
    pgen.min_radius = 2;
    pgen.max_radius = 8;
    auto polys = GenerateRandomPolygons(pgen);
    for (size_t i = 0; i < polys.size(); ++i) {
      right_.emplace_back(polys[i], static_cast<int64_t>(i));
    }
  }

  std::set<Pair> BruteForce(const JoinPredicate& pred) const {
    std::set<Pair> out;
    for (const auto& [lo, lid] : left_) {
      for (const auto& [ro, rid] : right_) {
        if (pred.Eval(lo, ro)) out.emplace(lid, rid);
      }
    }
    return out;
  }

  template <typename JoinedRdd>
  static std::set<Pair> Ids(const JoinedRdd& rdd) {
    std::set<Pair> out;
    for (const auto& [l, r] : rdd.Collect()) {
      auto [it, inserted] = out.emplace(l.second, r.second);
      EXPECT_TRUE(inserted) << "duplicate join result (" << l.second << ", "
                            << r.second << ")";
    }
    return out;
  }

  Envelope universe_ = Envelope(0, 0, 100, 100);
  Context ctx_{4};
  std::vector<std::pair<STObject, int64_t>> left_;
  std::vector<std::pair<STObject, int64_t>> right_;
};

TEST_F(JoinTest, IntersectsJoinUnpartitioned) {
  auto l = SpatialRDD<int64_t>::FromVector(&ctx_, left_, 3);
  auto r = SpatialRDD<int64_t>::FromVector(&ctx_, right_, 2);
  auto expect = BruteForce(JoinPredicate::Intersects());
  EXPECT_FALSE(expect.empty());
  EXPECT_EQ(Ids(SpatialJoin(l, r, JoinPredicate::Intersects())), expect);
}

TEST_F(JoinTest, JoinWithoutIndexMatches) {
  auto l = SpatialRDD<int64_t>::FromVector(&ctx_, left_, 3);
  auto r = SpatialRDD<int64_t>::FromVector(&ctx_, right_, 2);
  JoinOptions no_index;
  no_index.index_order = 0;
  EXPECT_EQ(Ids(SpatialJoin(l, r, JoinPredicate::Intersects(), no_index)),
            BruteForce(JoinPredicate::Intersects()));
}

TEST_F(JoinTest, ContainedByJoin) {
  // Points contained by polygons.
  auto l = SpatialRDD<int64_t>::FromVector(&ctx_, left_, 3);
  auto r = SpatialRDD<int64_t>::FromVector(&ctx_, right_, 2);
  EXPECT_EQ(Ids(SpatialJoin(l, r, JoinPredicate::ContainedBy())),
            BruteForce(JoinPredicate::ContainedBy()));
}

TEST_F(JoinTest, ContainsJoinPolygonsOverPoints) {
  auto l = SpatialRDD<int64_t>::FromVector(&ctx_, right_, 2);  // polygons
  auto r = SpatialRDD<int64_t>::FromVector(&ctx_, left_, 3);   // points
  std::set<Pair> expect;
  for (const auto& [lo, lid] : right_) {
    for (const auto& [ro, rid] : left_) {
      if (lo.Contains(ro)) expect.emplace(lid, rid);
    }
  }
  EXPECT_EQ(Ids(SpatialJoin(l, r, JoinPredicate::Contains())), expect);
}

TEST_F(JoinTest, WithinDistanceJoin) {
  auto l = SpatialRDD<int64_t>::FromVector(&ctx_, left_, 3);
  auto r = SpatialRDD<int64_t>::FromVector(&ctx_, right_, 2);
  const auto pred = JoinPredicate::WithinDistance(3.0);
  EXPECT_EQ(Ids(SpatialJoin(l, r, pred)), BruteForce(pred));
}

TEST_F(JoinTest, PartitionedJoinMatchesUnpartitioned) {
  auto grid_l = std::make_shared<GridPartitioner>(universe_, 4);
  auto grid_r = std::make_shared<GridPartitioner>(universe_, 3);
  auto l =
      SpatialRDD<int64_t>::FromVector(&ctx_, left_, 3).PartitionBy(grid_l);
  auto r =
      SpatialRDD<int64_t>::FromVector(&ctx_, right_, 2).PartitionBy(grid_r);
  EXPECT_EQ(Ids(SpatialJoin(l, r, JoinPredicate::Intersects())),
            BruteForce(JoinPredicate::Intersects()));
  const auto wd = JoinPredicate::WithinDistance(2.5);
  EXPECT_EQ(Ids(SpatialJoin(l, r, wd)), BruteForce(wd));
}

TEST_F(JoinTest, BspPartitionedJoinMatches) {
  std::vector<Coordinate> centroids;
  for (const auto& [o, id] : left_) centroids.push_back(o.Centroid());
  BSPartitioner::Options opt;
  opt.max_cost = 50;
  auto bsp = std::make_shared<BSPartitioner>(universe_, centroids, opt);
  auto l = SpatialRDD<int64_t>::FromVector(&ctx_, left_, 3).PartitionBy(bsp);
  auto grid = std::make_shared<GridPartitioner>(universe_, 4);
  auto r =
      SpatialRDD<int64_t>::FromVector(&ctx_, right_, 2).PartitionBy(grid);
  EXPECT_EQ(Ids(SpatialJoin(l, r, JoinPredicate::Intersects())),
            BruteForce(JoinPredicate::Intersects()));
}

TEST_F(JoinTest, MixedPartitioningOneSideOnly) {
  auto grid = std::make_shared<GridPartitioner>(universe_, 4);
  auto l = SpatialRDD<int64_t>::FromVector(&ctx_, left_, 3).PartitionBy(grid);
  auto r = SpatialRDD<int64_t>::FromVector(&ctx_, right_, 2);
  EXPECT_EQ(Ids(SpatialJoin(l, r, JoinPredicate::Intersects())),
            BruteForce(JoinPredicate::Intersects()));
}

TEST_F(JoinTest, TemporalJoinSemantics) {
  // Left: instants; right: one interval query region. Only temporally
  // overlapping pairs join.
  std::vector<std::pair<STObject, int64_t>> timed_left;
  for (int64_t i = 0; i < 10; ++i) {
    timed_left.emplace_back(
        STObject(Geometry::MakePoint(5, 5), /*time=*/i * 10), i);
  }
  std::vector<std::pair<STObject, int64_t>> timed_right;
  timed_right.emplace_back(
      STObject(Geometry::MakeBox(Envelope(0, 0, 10, 10)), 25, 55), 0);
  auto l = SpatialRDD<int64_t>::FromVector(&ctx_, timed_left, 2);
  auto r = SpatialRDD<int64_t>::FromVector(&ctx_, timed_right, 1);
  auto got = Ids(SpatialJoin(l, r, JoinPredicate::Intersects()));
  // Instants 30, 40, 50 fall in [25, 55].
  EXPECT_EQ(got, (std::set<Pair>{{3, 0}, {4, 0}, {5, 0}}));
}

TEST_F(JoinTest, SelfJoinExcludesIdentityAndIsSymmetric) {
  std::vector<std::pair<STObject, int64_t>> pts;
  for (const auto& [o, id] : left_) pts.emplace_back(o, id);
  auto rdd = SpatialRDD<int64_t>::FromVector(&ctx_, pts, 4);
  auto joined = SelfSpatialJoin(rdd, JoinPredicate::WithinDistance(2.0));
  std::set<Pair> got;
  for (const auto& [l, r] : joined.Collect()) {
    EXPECT_NE(l.second.second, r.second.second);  // no identity pairs
    got.emplace(static_cast<int64_t>(l.second.second),
                static_cast<int64_t>(r.second.second));
  }
  // Symmetric: (a, b) present iff (b, a) present.
  for (const auto& [a, b] : got) {
    EXPECT_TRUE(got.count({b, a})) << a << "," << b;
  }
  // Matches brute force.
  std::set<Pair> expect;
  for (size_t i = 0; i < pts.size(); ++i) {
    for (size_t j = 0; j < pts.size(); ++j) {
      if (i != j &&
          EuclideanDistance(pts[i].first, pts[j].first) <= 2.0) {
        expect.emplace(static_cast<int64_t>(i), static_cast<int64_t>(j));
      }
    }
  }
  EXPECT_EQ(got, expect);
}

TEST_F(JoinTest, EmptySideYieldsEmptyResult) {
  auto l = SpatialRDD<int64_t>::FromVector(&ctx_, {}, 2);
  auto r = SpatialRDD<int64_t>::FromVector(&ctx_, right_, 2);
  EXPECT_EQ(SpatialJoin(l, r, JoinPredicate::Intersects()).Count(), 0u);
  EXPECT_EQ(SpatialJoin(r, l, JoinPredicate::Intersects()).Count(), 0u);
}

}  // namespace
}  // namespace stark
