// Tests for the sparklet engine: lazy lineage, transformations, actions,
// caching and shuffles.
#include <atomic>
#include <numeric>
#include <string>

#include <gtest/gtest.h>

#include "engine/rdd.h"

namespace stark {
namespace {

std::vector<int> Iota(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

class EngineTest : public ::testing::Test {
 protected:
  Context ctx_{4};
};

TEST_F(EngineTest, ParallelizeSplitsIntoPartitions) {
  RDD<int> rdd = MakeRDD(&ctx_, Iota(100), 7);
  EXPECT_EQ(rdd.NumPartitions(), 7u);
  EXPECT_EQ(rdd.Count(), 100u);
  std::vector<int> collected = rdd.Collect();
  EXPECT_EQ(collected, Iota(100));  // partition order preserves input order
}

TEST_F(EngineTest, DefaultPartitionsUseContextParallelism) {
  RDD<int> rdd = MakeRDD(&ctx_, Iota(10));
  EXPECT_EQ(rdd.NumPartitions(), 4u);
}

TEST_F(EngineTest, EmptyInput) {
  RDD<int> rdd = MakeRDD(&ctx_, std::vector<int>{}, 3);
  EXPECT_EQ(rdd.Count(), 0u);
  EXPECT_TRUE(rdd.Collect().empty());
}

TEST_F(EngineTest, MapTransformsEveryElement) {
  auto doubled = MakeRDD(&ctx_, Iota(50), 5).Map([](int& x) { return x * 2; });
  std::vector<int> out = doubled.Collect();
  ASSERT_EQ(out.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(out[i], 2 * i);
}

TEST_F(EngineTest, MapCanChangeType) {
  auto strs = MakeRDD(&ctx_, Iota(3), 2).Map([](int& x) {
    return std::to_string(x);
  });
  EXPECT_EQ(strs.Collect(), (std::vector<std::string>{"0", "1", "2"}));
}

TEST_F(EngineTest, FilterKeepsMatching) {
  auto evens =
      MakeRDD(&ctx_, Iota(100), 8).Filter([](const int& x) {
        return x % 2 == 0;
      });
  EXPECT_EQ(evens.Count(), 50u);
}

TEST_F(EngineTest, FlatMapExpands) {
  auto out = MakeRDD(&ctx_, Iota(10), 3).FlatMap([](int& x) {
    return std::vector<int>(static_cast<size_t>(x % 3), x);
  });
  // x in 0..9 contributes (x % 3) copies: {1,4,7} once, {2,5,8} twice.
  EXPECT_EQ(out.Count(), 3u * 1 + 3u * 2);
}

TEST_F(EngineTest, MapPartitionsWithIndexSeesPartitionIds) {
  auto ids = MakeRDD(&ctx_, Iota(40), 4)
                 .MapPartitionsWithIndex([](size_t idx, std::vector<int> part) {
                   return std::vector<size_t>{idx, part.size()};
                 });
  std::vector<size_t> out = ids.Collect();
  EXPECT_EQ(out, (std::vector<size_t>{0, 10, 1, 10, 2, 10, 3, 10}));
}

TEST_F(EngineTest, UnionConcatenates) {
  auto a = MakeRDD(&ctx_, Iota(10), 2);
  auto b = MakeRDD(&ctx_, Iota(5), 3);
  auto u = a.Union(b);
  EXPECT_EQ(u.NumPartitions(), 5u);
  EXPECT_EQ(u.Count(), 15u);
}

TEST_F(EngineTest, LazinessNoWorkUntilAction) {
  std::atomic<int> calls{0};
  auto mapped = MakeRDD(&ctx_, Iota(10), 2).Map([&calls](int& x) {
    ++calls;
    return x;
  });
  EXPECT_EQ(calls.load(), 0);  // nothing computed yet
  mapped.Collect();
  EXPECT_EQ(calls.load(), 10);
  mapped.Collect();
  EXPECT_EQ(calls.load(), 20);  // recomputed: no implicit caching
}

TEST_F(EngineTest, CacheComputesEachPartitionOnce) {
  std::atomic<int> calls{0};
  auto cached = MakeRDD(&ctx_, Iota(10), 2)
                    .Map([&calls](int& x) {
                      ++calls;
                      return x;
                    })
                    .Cache();
  cached.Collect();
  cached.Collect();
  cached.Count();
  EXPECT_EQ(calls.load(), 10);  // computed exactly once
}

TEST_F(EngineTest, FoldSumsAcrossPartitions) {
  auto rdd = MakeRDD(&ctx_, Iota(101), 7);
  const int sum = rdd.Fold(0, [](int a, int b) { return a + b; });
  EXPECT_EQ(sum, 5050);
}

TEST_F(EngineTest, TakeReturnsPrefix) {
  auto rdd = MakeRDD(&ctx_, Iota(100), 5);
  EXPECT_EQ(rdd.Take(3), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(rdd.Take(0).size(), 0u);
  EXPECT_EQ(rdd.Take(1000).size(), 100u);
}

TEST_F(EngineTest, PartitionByRoutesEveryElement) {
  auto rdd = MakeRDD(&ctx_, Iota(100), 4);
  auto parted =
      rdd.PartitionBy(10, [](const int& x) { return static_cast<size_t>(x) % 10; });
  EXPECT_EQ(parted.NumPartitions(), 10u);
  EXPECT_EQ(parted.Count(), 100u);
  auto parts = parted.CollectPartitions();
  for (size_t p = 0; p < parts.size(); ++p) {
    EXPECT_EQ(parts[p].size(), 10u);
    for (int x : parts[p]) EXPECT_EQ(static_cast<size_t>(x) % 10, p);
  }
}

TEST_F(EngineTest, RepartitionBalances) {
  auto rdd = MakeRDD(&ctx_, Iota(100), 1).Repartition(4);
  EXPECT_EQ(rdd.NumPartitions(), 4u);
  auto parts = rdd.CollectPartitions();
  for (const auto& p : parts) EXPECT_EQ(p.size(), 25u);
  EXPECT_EQ(rdd.Count(), 100u);
}

TEST_F(EngineTest, ZipWithIndexIsGloballyUniqueAndOrdered) {
  auto zipped = MakeRDD(&ctx_, Iota(50), 7).ZipWithIndex();
  auto out = zipped.Collect();
  ASSERT_EQ(out.size(), 50u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].second, i);
    EXPECT_EQ(out[i].first, static_cast<int>(i));
  }
}

TEST_F(EngineTest, SampleIsDeterministicAndRoughlyProportional) {
  auto rdd = MakeRDD(&ctx_, Iota(10'000), 4);
  auto s1 = rdd.Sample(0.1, 7).Collect();
  auto s2 = rdd.Sample(0.1, 7).Collect();
  EXPECT_EQ(s1, s2);
  EXPECT_GT(s1.size(), 700u);
  EXPECT_LT(s1.size(), 1300u);
  EXPECT_TRUE(rdd.Sample(0.0).Collect().empty());
  EXPECT_EQ(rdd.Sample(1.0).Count(), 10'000u);
}

TEST_F(EngineTest, ChainedPipeline) {
  // A small end-to-end lineage: map -> filter -> flatMap -> fold.
  auto result = MakeRDD(&ctx_, Iota(20), 3)
                    .Map([](int& x) { return x + 1; })
                    .Filter([](const int& x) { return x % 2 == 0; })
                    .FlatMap([](int& x) {
                      return std::vector<int>{x, -x};
                    })
                    .Fold(0, [](int a, int b) { return a + b; });
  EXPECT_EQ(result, 0);  // every x is cancelled by -x
}

TEST_F(EngineTest, CollectPartitionsPreservesStructure) {
  auto rdd = MakeRDD(&ctx_, Iota(10), 3);
  auto parts = rdd.CollectPartitions();
  ASSERT_EQ(parts.size(), 3u);
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  EXPECT_EQ(total, 10u);
}

}  // namespace
}  // namespace stark
