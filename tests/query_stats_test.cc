// Tests for the query-statistics instrumentation: the §2.1/§2.2 pruning
// claims become directly observable counters instead of timing inferences.
// Observations are taken through the plain-value QueryStats::Snapshot API.
#include <memory>

#include <gtest/gtest.h>

#include "io/generator.h"
#include "partition/grid_partitioner.h"
#include "partition/st_grid_partitioner.h"
#include "spatial_rdd/spatial_rdd.h"

namespace stark {
namespace {

class QueryStatsTest : public ::testing::Test {
 protected:
  QueryStatsTest() {
    auto points =
        GenerateUniformPoints(4000, 131, Envelope(0, 0, 100, 100));
    for (size_t i = 0; i < points.size(); ++i) {
      data_.emplace_back(points[i], static_cast<int64_t>(i));
    }
  }

  Context ctx_{4};
  std::vector<std::pair<STObject, int64_t>> data_;
};

TEST_F(QueryStatsTest, UnpartitionedScanTouchesEverything) {
  auto rdd = SpatialRDD<int64_t>::FromVector(&ctx_, data_, 4);
  QueryStats stats;
  const STObject qry(Geometry::MakeBox(Envelope(10, 10, 20, 20)));
  const size_t results =
      rdd.Filter(qry, JoinPredicate::Intersects(), &stats).Count();
  const QueryStats::Snapshot snap = stats.Snap();
  EXPECT_EQ(snap.partitions_pruned, 0u);
  EXPECT_EQ(snap.partitions_scanned, 4u);
  EXPECT_EQ(snap.candidates, data_.size());  // no pruning, no index
  EXPECT_EQ(snap.results, results);
  EXPECT_GT(results, 0u);
}

TEST_F(QueryStatsTest, PartitionPruningReportsSkippedPartitions) {
  auto grid = std::make_shared<GridPartitioner>(Envelope(0, 0, 100, 100), 5);
  auto rdd =
      SpatialRDD<int64_t>::FromVector(&ctx_, data_).PartitionBy(grid);
  QueryStats stats;
  // Query window inside a single cell.
  const STObject qry(Geometry::MakeBox(Envelope(5, 5, 15, 15)));
  const size_t results =
      rdd.Filter(qry, JoinPredicate::Intersects(), &stats).Count();
  const QueryStats::Snapshot snap = stats.Snap();
  // The window spans at most 4 of 25 cells; the rest must be pruned.
  EXPECT_GE(snap.partitions_pruned, 21u);
  EXPECT_LE(snap.partitions_scanned, 4u);
  // Candidates are only the surviving partitions' elements — the §2.1
  // "decrease the number of data items to process" claim, as a count.
  EXPECT_LT(snap.candidates, data_.size() / 4);
  EXPECT_EQ(snap.results, results);
}

TEST_F(QueryStatsTest, IndexedFilterReportsCandidatePruning) {
  auto grid = std::make_shared<GridPartitioner>(Envelope(0, 0, 100, 100), 5);
  auto indexed =
      SpatialRDD<int64_t>::FromVector(&ctx_, data_).Index(8, grid);
  QueryStats stats;
  const STObject qry(Geometry::MakeBox(Envelope(5, 5, 15, 15)));
  const size_t results =
      indexed.Filter(qry, JoinPredicate::Intersects(), &stats).Count();
  const QueryStats::Snapshot snap = stats.Snap();
  // The R-tree narrows candidates further than partition pruning alone:
  // candidates are bounding-box matches, close to the result size for
  // point data.
  EXPECT_GE(snap.partitions_pruned, 21u);
  EXPECT_EQ(snap.candidates, results);  // points: bbox match = hit
  EXPECT_EQ(snap.results, results);
}

TEST_F(QueryStatsTest, TemporalPruningCounted) {
  std::vector<std::pair<STObject, int64_t>> timed;
  Rng rng(132);
  for (int64_t i = 0; i < 2000; ++i) {
    timed.emplace_back(
        STObject(Geometry::MakePoint(rng.Uniform(0, 100),
                                     rng.Uniform(0, 100)),
                 rng.UniformInt(0, 10'000)),
        i);
  }
  auto part = std::make_shared<SpatioTemporalGridPartitioner>(
      Envelope(0, 0, 100, 100), 2, 0, 10'000, 5);
  auto rdd =
      SpatialRDD<int64_t>::FromVector(&ctx_, timed).PartitionBy(part);
  QueryStats stats;
  // Spatially-everything query with a one-bucket time window: 4 spatial
  // cells x 4 pruned buckets = 16 partitions pruned by time alone.
  const STObject qry(Geometry::MakeBox(Envelope(0, 0, 100, 100)), 4'100,
                     5'900);
  rdd.Filter(qry, JoinPredicate::Intersects(), &stats).Count();
  EXPECT_GE(stats.Snap().partitions_pruned, 12u);
}

TEST_F(QueryStatsTest, WithinDistanceCustomFunctionDisablesPruning) {
  auto grid = std::make_shared<GridPartitioner>(Envelope(0, 0, 100, 100), 5);
  auto rdd =
      SpatialRDD<int64_t>::FromVector(&ctx_, data_).PartitionBy(grid);
  QueryStats stats;
  const STObject qry(Geometry::MakePoint(10, 10));
  DistanceFunction manhattan = ManhattanDistance;
  rdd.Filter(qry, JoinPredicate::WithinDistance(3.0, manhattan), &stats)
      .Count();
  // A custom distance function cannot be bounded by envelopes: no pruning.
  const QueryStats::Snapshot snap = stats.Snap();
  EXPECT_EQ(snap.partitions_pruned, 0u);
  EXPECT_EQ(snap.candidates, data_.size());
}

TEST_F(QueryStatsTest, ResetClearsCounters) {
  QueryStats stats;
  stats.candidates = 5;
  stats.results = 3;
  stats.partitions_pruned = 2;
  stats.partitions_scanned = 1;
  stats.Reset();
  EXPECT_EQ(stats.Snap(), QueryStats::Snapshot{});
}

TEST_F(QueryStatsTest, SnapshotDeltaSeparatesTwoObservations) {
  auto grid = std::make_shared<GridPartitioner>(Envelope(0, 0, 100, 100), 5);
  auto rdd =
      SpatialRDD<int64_t>::FromVector(&ctx_, data_).PartitionBy(grid);
  QueryStats stats;
  const STObject q1(Geometry::MakeBox(Envelope(5, 5, 15, 15)));
  const size_t r1 = rdd.Filter(q1, JoinPredicate::Intersects(), &stats).Count();
  const QueryStats::Snapshot first = stats.Snap();

  const STObject q2(Geometry::MakeBox(Envelope(40, 40, 60, 60)));
  const size_t r2 = rdd.Filter(q2, JoinPredicate::Intersects(), &stats).Count();
  const QueryStats::Snapshot second = stats.Snap();

  // The delta isolates the second query even though the counters are
  // cumulative — the diff workflow the bare atomics could not support.
  const QueryStats::Snapshot delta = second.Delta(first);
  EXPECT_EQ(first.results, r1);
  EXPECT_EQ(delta.results, r2);
  EXPECT_GE(delta.partitions_pruned, 1u);
  EXPECT_EQ(second.results, r1 + r2);
  // Delta against itself is zero.
  EXPECT_EQ(second.Delta(second), QueryStats::Snapshot{});
}

TEST_F(QueryStatsTest, GlobalFilterMetricsMirrorCounters) {
  const FilterMetricSet& global = GlobalFilterMetrics();
  const uint64_t pruned_before = global.partitions_pruned->Value();
  const uint64_t results_before = global.results->Value();

  auto grid = std::make_shared<GridPartitioner>(Envelope(0, 0, 100, 100), 5);
  auto rdd =
      SpatialRDD<int64_t>::FromVector(&ctx_, data_).PartitionBy(grid);
  QueryStats stats;
  const STObject qry(Geometry::MakeBox(Envelope(5, 5, 15, 15)));
  const size_t results =
      rdd.Filter(qry, JoinPredicate::Intersects(), &stats).Count();

  // The same pruning numbers flow into the engine-wide named metrics
  // (>= because other tests in this process may also filter).
  EXPECT_GE(global.partitions_pruned->Value() - pruned_before,
            stats.Snap().partitions_pruned);
  EXPECT_GE(global.results->Value() - results_before, results);
}

}  // namespace
}  // namespace stark
