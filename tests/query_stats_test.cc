// Tests for the query-statistics instrumentation: the §2.1/§2.2 pruning
// claims become directly observable counters instead of timing inferences.
#include <memory>

#include <gtest/gtest.h>

#include "io/generator.h"
#include "partition/grid_partitioner.h"
#include "partition/st_grid_partitioner.h"
#include "spatial_rdd/spatial_rdd.h"

namespace stark {
namespace {

class QueryStatsTest : public ::testing::Test {
 protected:
  QueryStatsTest() {
    auto points =
        GenerateUniformPoints(4000, 131, Envelope(0, 0, 100, 100));
    for (size_t i = 0; i < points.size(); ++i) {
      data_.emplace_back(points[i], static_cast<int64_t>(i));
    }
  }

  Context ctx_{4};
  std::vector<std::pair<STObject, int64_t>> data_;
};

TEST_F(QueryStatsTest, UnpartitionedScanTouchesEverything) {
  auto rdd = SpatialRDD<int64_t>::FromVector(&ctx_, data_, 4);
  QueryStats stats;
  const STObject qry(Geometry::MakeBox(Envelope(10, 10, 20, 20)));
  const size_t results =
      rdd.Filter(qry, JoinPredicate::Intersects(), &stats).Count();
  EXPECT_EQ(stats.partitions_pruned.load(), 0u);
  EXPECT_EQ(stats.partitions_scanned.load(), 4u);
  EXPECT_EQ(stats.candidates.load(), data_.size());  // no pruning, no index
  EXPECT_EQ(stats.results.load(), results);
  EXPECT_GT(results, 0u);
}

TEST_F(QueryStatsTest, PartitionPruningReportsSkippedPartitions) {
  auto grid = std::make_shared<GridPartitioner>(Envelope(0, 0, 100, 100), 5);
  auto rdd =
      SpatialRDD<int64_t>::FromVector(&ctx_, data_).PartitionBy(grid);
  QueryStats stats;
  // Query window inside a single cell.
  const STObject qry(Geometry::MakeBox(Envelope(5, 5, 15, 15)));
  const size_t results =
      rdd.Filter(qry, JoinPredicate::Intersects(), &stats).Count();
  // The window spans at most 4 of 25 cells; the rest must be pruned.
  EXPECT_GE(stats.partitions_pruned.load(), 21u);
  EXPECT_LE(stats.partitions_scanned.load(), 4u);
  // Candidates are only the surviving partitions' elements — the §2.1
  // "decrease the number of data items to process" claim, as a count.
  EXPECT_LT(stats.candidates.load(), data_.size() / 4);
  EXPECT_EQ(stats.results.load(), results);
}

TEST_F(QueryStatsTest, IndexedFilterReportsCandidatePruning) {
  auto grid = std::make_shared<GridPartitioner>(Envelope(0, 0, 100, 100), 5);
  auto indexed =
      SpatialRDD<int64_t>::FromVector(&ctx_, data_).Index(8, grid);
  QueryStats stats;
  const STObject qry(Geometry::MakeBox(Envelope(5, 5, 15, 15)));
  const size_t results =
      indexed.Filter(qry, JoinPredicate::Intersects(), &stats).Count();
  // The R-tree narrows candidates further than partition pruning alone:
  // candidates are bounding-box matches, close to the result size for
  // point data.
  EXPECT_GE(stats.partitions_pruned.load(), 21u);
  EXPECT_EQ(stats.candidates.load(), results);  // points: bbox match = hit
  EXPECT_EQ(stats.results.load(), results);
}

TEST_F(QueryStatsTest, TemporalPruningCounted) {
  std::vector<std::pair<STObject, int64_t>> timed;
  Rng rng(132);
  for (int64_t i = 0; i < 2000; ++i) {
    timed.emplace_back(
        STObject(Geometry::MakePoint(rng.Uniform(0, 100),
                                     rng.Uniform(0, 100)),
                 rng.UniformInt(0, 10'000)),
        i);
  }
  auto part = std::make_shared<SpatioTemporalGridPartitioner>(
      Envelope(0, 0, 100, 100), 2, 0, 10'000, 5);
  auto rdd =
      SpatialRDD<int64_t>::FromVector(&ctx_, timed).PartitionBy(part);
  QueryStats stats;
  // Spatially-everything query with a one-bucket time window: 4 spatial
  // cells x 4 pruned buckets = 16 partitions pruned by time alone.
  const STObject qry(Geometry::MakeBox(Envelope(0, 0, 100, 100)), 4'100,
                     5'900);
  rdd.Filter(qry, JoinPredicate::Intersects(), &stats).Count();
  EXPECT_GE(stats.partitions_pruned.load(), 12u);
}

TEST_F(QueryStatsTest, WithinDistanceCustomFunctionDisablesPruning) {
  auto grid = std::make_shared<GridPartitioner>(Envelope(0, 0, 100, 100), 5);
  auto rdd =
      SpatialRDD<int64_t>::FromVector(&ctx_, data_).PartitionBy(grid);
  QueryStats stats;
  const STObject qry(Geometry::MakePoint(10, 10));
  DistanceFunction manhattan = ManhattanDistance;
  rdd.Filter(qry, JoinPredicate::WithinDistance(3.0, manhattan), &stats)
      .Count();
  // A custom distance function cannot be bounded by envelopes: no pruning.
  EXPECT_EQ(stats.partitions_pruned.load(), 0u);
  EXPECT_EQ(stats.candidates.load(), data_.size());
}

TEST_F(QueryStatsTest, ResetClearsCounters) {
  QueryStats stats;
  stats.candidates = 5;
  stats.results = 3;
  stats.partitions_pruned = 2;
  stats.partitions_scanned = 1;
  stats.Reset();
  EXPECT_EQ(stats.candidates.load(), 0u);
  EXPECT_EQ(stats.results.load(), 0u);
  EXPECT_EQ(stats.partitions_pruned.load(), 0u);
  EXPECT_EQ(stats.partitions_scanned.load(), 0u);
}

}  // namespace
}  // namespace stark
