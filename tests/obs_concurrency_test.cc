// Concurrency hammer for the observability primitives, written for the CI
// TSan job: many threads pound the MetricsRegistry (creation races on the
// same names included) and the flight-recorder ring while readers snapshot
// and render concurrently. Assertions are deliberately coarse — the point
// is that TSan sees every interleaving the registry and the seqlock ring
// claim to support, and that totals stay lossless where they must.
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/context.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/profile.h"

namespace stark {
namespace {

TEST(ObsConcurrencyTest, RegistryAndRingSurviveTheHammer) {
  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 5'000;
  obs::MetricsRegistry registry;
  obs::FlightRecorder ring(256);
  std::atomic<bool> stop_readers{false};

  std::vector<std::thread> threads;
  // Writers: counters, gauges, histograms and ring events, with instrument
  // lookup (the name -> pointer map) exercised on every iteration so
  // creation races with snapshots.
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&registry, &ring, t] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        registry.GetCounter("hammer.shared")->Increment();
        registry.GetCounter("hammer.c" + std::to_string(i % 7))->Add(2);
        registry.GetGauge("hammer.gauge")->Set(i);
        registry.GetHistogram("hammer.hist")
            ->Record(static_cast<uint64_t>(i));
        ring.RecordTask(obs::FlightEventKind::kFinish,
                        static_cast<uint64_t>(t), static_cast<size_t>(i), 1,
                        1, t, static_cast<uint64_t>(i), "hammer");
      }
    });
  }
  // Readers: snapshot + render both surfaces until the writers finish.
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&registry, &ring, &stop_readers] {
      while (!stop_readers.load(std::memory_order_acquire)) {
        const obs::MetricsRegistry::Snapshot snap = registry.Snap();
        (void)obs::RenderOpenMetrics(snap);
        (void)registry.Json();
        for (const obs::FlightEvent& e : ring.Snapshot()) {
          // A torn slot would show up as an out-of-range writer id.
          ASSERT_LT(e.job, static_cast<uint64_t>(kWriters));
        }
        (void)ring.DumpJson("hammer");
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) threads[t].join();
  stop_readers.store(true, std::memory_order_release);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  EXPECT_EQ(registry.GetCounter("hammer.shared")->Value(),
            static_cast<uint64_t>(kWriters) * kOpsPerWriter);
  EXPECT_EQ(registry.GetHistogram("hammer.hist")->Snap().count,
            static_cast<uint64_t>(kWriters) * kOpsPerWriter);
  EXPECT_EQ(ring.total_recorded(),
            static_cast<uint64_t>(kWriters) * kOpsPerWriter);
  // The final exposition of the settled registry must validate.
  EXPECT_EQ(obs::ValidateOpenMetrics(obs::RenderOpenMetrics(registry.Snap())),
            "");
}

TEST(ObsConcurrencyTest, ProfiledEngineJobsRaceWithMetricReaders) {
  // End-to-end variant: profiled jobs (accounting atomics + flight events
  // on the default ring) race a reader thread snapshotting the default
  // registry, matching what a live exporter does during query execution.
  Context ctx(4);
  std::atomic<bool> stop{false};
  std::thread reader([&stop] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)obs::RenderOpenMetrics(obs::DefaultMetrics().Snap());
      (void)obs::DefaultFlightRecorder().Snapshot();
    }
  });
  obs::ProfileCollector collector;
  obs::ProfileCollectorScope scope(&collector);
  for (int round = 0; round < 20; ++round) {
    std::atomic<uint64_t> sum{0};
    const Status status = ctx.TryRunTasks("test.obs.hammer", 8, [&](size_t p) {
      sum.fetch_add(p, std::memory_order_relaxed);
    });
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_EQ(sum.load(), 28u);
    ASSERT_EQ(collector.root().children.size(), static_cast<size_t>(round) + 1);
  }
  stop.store(true, std::memory_order_release);
  reader.join();
}

}  // namespace
}  // namespace stark
