// Shared test helpers.
#ifndef STARK_TESTS_TEST_UTIL_H_
#define STARK_TESTS_TEST_UTIL_H_

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/envelope.h"
#include "geometry/geometry.h"

namespace stark {
namespace test {

// ---------------------------------------------------------------------------
// A minimal strict JSON parser, just enough to round-trip the observability
// exporters' output (metrics JSON, Chrome traces, flight-recorder dumps,
// profile trees). Parsing failures surface as ADD_FAILURE + null values.
// ---------------------------------------------------------------------------

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v = nullptr;

  bool IsObject() const { return std::holds_alternative<JsonObject>(v); }
  bool IsArray() const { return std::holds_alternative<JsonArray>(v); }
  const JsonObject& AsObject() const { return std::get<JsonObject>(v); }
  const JsonArray& AsArray() const { return std::get<JsonArray>(v); }
  double AsNumber() const { return std::get<double>(v); }
  bool AsBool() const { return std::get<bool>(v); }
  const std::string& AsString() const { return std::get<std::string>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    ok_ = true;
    pos_ = 0;
    *out = ParseValue();
    SkipWs();
    return ok_ && pos_ == text_.size();
  }

 private:
  void Fail() { ok_ = false; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) {
      Fail();
      return {};
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  JsonValue ParseObject() {
    JsonObject obj;
    if (!Consume('{')) Fail();
    SkipWs();
    if (Consume('}')) return {obj};
    do {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        Fail();
        return {};
      }
      JsonValue key = ParseString();
      if (!ok_ || !Consume(':')) {
        Fail();
        return {};
      }
      obj[key.AsString()] = ParseValue();
      if (!ok_) return {};
    } while (Consume(','));
    if (!Consume('}')) Fail();
    return {obj};
  }

  JsonValue ParseArray() {
    JsonArray arr;
    if (!Consume('[')) Fail();
    SkipWs();
    if (Consume(']')) return {arr};
    do {
      arr.push_back(ParseValue());
      if (!ok_) return {};
    } while (Consume(','));
    if (!Consume(']')) Fail();
    return {arr};
  }

  JsonValue ParseString() {
    std::string s;
    if (!Consume('"')) Fail();
    while (ok_ && pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          Fail();
          break;
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'n': s += '\n'; break;
          case 't': s += '\t'; break;
          case 'r': s += '\r'; break;
          case 'b': s += '\b'; break;
          case 'f': s += '\f'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) {
              Fail();
            } else {
              pos_ += 4;  // validated as hex-ish, decoded as '?'
              s += '?';
            }
            break;
          default: Fail();
        }
      } else {
        s += c;
      }
    }
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      Fail();
      return {};
    }
    ++pos_;
    return {s};
  }

  JsonValue ParseBool() {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return {true};
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return {false};
    }
    Fail();
    return {};
  }

  JsonValue ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return {nullptr};
    }
    Fail();
    return {};
  }

  JsonValue ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      Fail();
      return {};
    }
    return {std::stod(text_.substr(start, pos_ - start))};
  }

  const std::string& text_;
  size_t pos_ = 0;
  bool ok_ = true;
};

inline JsonValue ParseJsonOrFail(const std::string& text) {
  JsonValue v;
  JsonParser parser(text);
  EXPECT_TRUE(parser.Parse(&v)) << "invalid JSON: " << text.substr(0, 200);
  return v;
}

/// A temp path unique to this test process. gtest_discover_tests runs every
/// test in its own process, and ctest may run them concurrently — fixed
/// names under TempDir() would race.
inline std::string UniqueTempPath(const std::string& stem) {
  return ::testing::TempDir() + "/" + stem + "." +
         std::to_string(::getpid());
}

// ---------------------------------------------------------------------------
// Seeded random-geometry generators, shared by the predicate fuzz suite and
// the packed-index / prepared-geometry differential tests so every suite
// exercises the same mixed population shapes.
// ---------------------------------------------------------------------------

/// Side length of the square universe the generators draw from.
inline constexpr double kFuzzUniverse = 100.0;

inline Coordinate RandomCoord(Rng* rng) {
  return Coordinate{rng->Uniform(0.0, kFuzzUniverse),
                    rng->Uniform(0.0, kFuzzUniverse)};
}

inline Envelope RandomEnvelope(Rng* rng, double max_extent) {
  const Coordinate c = RandomCoord(rng);
  // Strictly positive extents: MakeBox of the envelope must be a valid
  // (non-degenerate) polygon ring.
  const double w = rng->Uniform(0.05, max_extent);
  const double h = rng->Uniform(0.05, max_extent);
  return Envelope(c.x, c.y, c.x + w, c.y + h);
}

/// A simple (non-self-intersecting) polygon: vertices on a star around a
/// center, angles sorted, radius varying per vertex.
inline Geometry RandomStarPolygon(Rng* rng) {
  const Coordinate center = RandomCoord(rng);
  const double base_radius = rng->Uniform(0.5, 8.0);
  const int n = static_cast<int>(rng->UniformInt(3, 9));
  std::vector<double> angles;
  for (int i = 0; i < n; ++i) angles.push_back(rng->Uniform(0.0, 6.2831853));
  std::sort(angles.begin(), angles.end());
  Ring shell;
  for (int i = 0; i < n; ++i) {
    const double r = base_radius * rng->Uniform(0.4, 1.0);
    shell.push_back(Coordinate{center.x + r * std::cos(angles[i]),
                               center.y + r * std::sin(angles[i])});
  }
  auto polygon = Geometry::MakePolygon(std::move(shell));
  // Degenerate draws (collinear / duplicate vertices) fall back to a box
  // so the population size stays fixed.
  if (!polygon.ok()) {
    return Geometry::MakeBox(Envelope(center.x - 1, center.y - 1,
                                      center.x + 1, center.y + 1));
  }
  return polygon.ValueOrDie();
}

/// One random geometry of a mixed type: point, box, star polygon,
/// linestring, or multipoint.
inline Geometry RandomGeometry(Rng* rng) {
  switch (rng->UniformInt(0, 4)) {
    case 0:
      return Geometry::MakePoint(RandomCoord(rng));
    case 1:
      return Geometry::MakeBox(RandomEnvelope(rng, 10.0));
    case 2:
      return RandomStarPolygon(rng);
    case 3: {
      const int n = static_cast<int>(rng->UniformInt(2, 6));
      std::vector<Coordinate> coords;
      const Coordinate start = RandomCoord(rng);
      coords.push_back(start);
      for (int i = 1; i < n; ++i) {
        coords.push_back(Coordinate{start.x + rng->Uniform(-6.0, 6.0),
                                    start.y + rng->Uniform(-6.0, 6.0)});
      }
      auto line = Geometry::MakeLineString(std::move(coords));
      if (!line.ok()) return Geometry::MakePoint(start);
      return line.ValueOrDie();
    }
    default: {
      const int n = static_cast<int>(rng->UniformInt(2, 5));
      std::vector<Coordinate> coords;
      const Coordinate anchor = RandomCoord(rng);
      for (int i = 0; i < n; ++i) {
        coords.push_back(Coordinate{anchor.x + rng->Uniform(-4.0, 4.0),
                                    anchor.y + rng->Uniform(-4.0, 4.0)});
      }
      auto mp = Geometry::MakeMultiPoint(std::move(coords));
      if (!mp.ok()) return Geometry::MakePoint(anchor);
      return mp.ValueOrDie();
    }
  }
}

/// A reproducible mixed population of \p count geometries.
inline std::vector<Geometry> RandomPopulation(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<Geometry> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(RandomGeometry(&rng));
  return out;
}

}  // namespace test
}  // namespace stark

#endif  // STARK_TESTS_TEST_UTIL_H_
