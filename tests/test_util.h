// Shared test helpers.
#ifndef STARK_TESTS_TEST_UTIL_H_
#define STARK_TESTS_TEST_UTIL_H_

#include <unistd.h>

#include <string>

#include <gtest/gtest.h>

namespace stark {
namespace test {

/// A temp path unique to this test process. gtest_discover_tests runs every
/// test in its own process, and ctest may run them concurrently — fixed
/// names under TempDir() would race.
inline std::string UniqueTempPath(const std::string& stem) {
  return ::testing::TempDir() + "/" + stem + "." +
         std::to_string(::getpid());
}

}  // namespace test
}  // namespace stark

#endif  // STARK_TESTS_TEST_UTIL_H_
