// Tests for the OpenMetrics exposition path: renderer output shape, the
// strict validator (which doubles as the CI checker's engine), their
// round-trip, and the background MetricsExporter's file lifecycle.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "test_util.h"

namespace stark {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---------------------------------------------------------------------------
// Renderer
// ---------------------------------------------------------------------------

TEST(OpenMetricsTest, RendersCountersGaugesAndHistograms) {
  obs::MetricsRegistry registry;
  registry.GetCounter("engine.tasks.run")->Add(17);
  registry.GetGauge("engine.pool.size")->Set(-3);
  obs::Histogram* h = registry.GetHistogram("engine.task.ns");
  h->Record(0);   // bucket 0, le="0"
  h->Record(5);   // bucket 3, le="7"
  h->Record(5);

  const std::string text = obs::RenderOpenMetrics(registry.Snap());
  EXPECT_NE(text.find("# TYPE stark_engine_tasks_run counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("stark_engine_tasks_run_total 17\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE stark_engine_pool_size gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("stark_engine_pool_size -3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE stark_engine_task_ns histogram\n"),
            std::string::npos);
  // Buckets are cumulative: le="0" holds 1, le="7" holds all 3.
  EXPECT_NE(text.find("stark_engine_task_ns_bucket{le=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("stark_engine_task_ns_bucket{le=\"7\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("stark_engine_task_ns_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("stark_engine_task_ns_sum 10\n"), std::string::npos);
  EXPECT_NE(text.find("stark_engine_task_ns_count 3\n"), std::string::npos);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(OpenMetricsTest, RoundTripsThroughTheValidator) {
  obs::MetricsRegistry registry;
  registry.GetCounter("a.count")->Add(1);
  registry.GetGauge("b.gauge")->Set(2);
  for (uint64_t v = 0; v < 100; ++v) {
    registry.GetHistogram("c.hist")->Record(v * v);
  }
  // Hostile name characters sanitize into the allowed alphabet.
  registry.GetCounter("weird-name with spaces!")->Add(4);
  const std::string text = obs::RenderOpenMetrics(registry.Snap());
  EXPECT_EQ(obs::ValidateOpenMetrics(text), "");
  EXPECT_NE(text.find("stark_weird_name_with_spaces__total 4\n"),
            std::string::npos);
}

TEST(OpenMetricsTest, EmptyRegistryRendersValidExposition) {
  obs::MetricsRegistry registry;
  const std::string text = obs::RenderOpenMetrics(registry.Snap());
  EXPECT_EQ(text, "# EOF\n");
  EXPECT_EQ(obs::ValidateOpenMetrics(text), "");
}

// ---------------------------------------------------------------------------
// Validator rejections
// ---------------------------------------------------------------------------

TEST(OpenMetricsTest, ValidatorRejectsMalformedExpositions) {
  // Missing trailing newline.
  EXPECT_NE(obs::ValidateOpenMetrics("# EOF"), "");
  // Missing EOF marker.
  EXPECT_NE(obs::ValidateOpenMetrics("# TYPE a counter\na_total 1\n"), "");
  // Content after EOF.
  EXPECT_NE(obs::ValidateOpenMetrics("# EOF\na 1\n"), "");
  // Sample before any TYPE.
  EXPECT_NE(obs::ValidateOpenMetrics("a 1\n# EOF\n"), "");
  // Counter sample without the _total suffix.
  EXPECT_NE(
      obs::ValidateOpenMetrics("# TYPE a counter\na 1\n# EOF\n"), "");
  // Negative counter.
  EXPECT_NE(obs::ValidateOpenMetrics(
                "# TYPE a counter\na_total -1\n# EOF\n"),
            "");
  // Histogram without a +Inf bucket.
  EXPECT_NE(obs::ValidateOpenMetrics("# TYPE h histogram\n"
                                     "h_bucket{le=\"1\"} 1\n"
                                     "h_sum 1\nh_count 1\n# EOF\n"),
            "");
  // Non-monotonic le.
  EXPECT_NE(obs::ValidateOpenMetrics("# TYPE h histogram\n"
                                     "h_bucket{le=\"7\"} 1\n"
                                     "h_bucket{le=\"3\"} 2\n"
                                     "h_bucket{le=\"+Inf\"} 2\n"
                                     "h_sum 1\nh_count 2\n# EOF\n"),
            "");
  // Non-cumulative bucket counts.
  EXPECT_NE(obs::ValidateOpenMetrics("# TYPE h histogram\n"
                                     "h_bucket{le=\"3\"} 5\n"
                                     "h_bucket{le=\"7\"} 2\n"
                                     "h_bucket{le=\"+Inf\"} 5\n"
                                     "h_sum 1\nh_count 5\n# EOF\n"),
            "");
  // +Inf disagreeing with _count.
  EXPECT_NE(obs::ValidateOpenMetrics("# TYPE h histogram\n"
                                     "h_bucket{le=\"+Inf\"} 5\n"
                                     "h_sum 1\nh_count 4\n# EOF\n"),
            "");
  // Metric name starting with a digit.
  EXPECT_NE(obs::ValidateOpenMetrics("# TYPE 9lives counter\n"
                                     "9lives_total 1\n# EOF\n"),
            "");
  // Double space before the value.
  EXPECT_NE(obs::ValidateOpenMetrics("# TYPE g gauge\ng  1\n# EOF\n"), "");
}

TEST(OpenMetricsTest, ValidatorNamesTheOffendingLine) {
  const std::string problem = obs::ValidateOpenMetrics(
      "# TYPE a counter\na_total 1\nbogus line here\n# EOF\n");
  EXPECT_NE(problem.find("line 3"), std::string::npos) << problem;
}

// ---------------------------------------------------------------------------
// Exporter
// ---------------------------------------------------------------------------

TEST(OpenMetricsTest, ExporterWritesOnStartRefreshesAndStops) {
  obs::MetricsRegistry registry;
  registry.GetCounter("export.me")->Add(1);
  const std::string path = test::UniqueTempPath("openmetrics_export.txt");
  {
    obs::MetricsExporter exporter(&registry, path, /*interval_ms=*/20);
    // The file exists immediately (constructor exports synchronously).
    const std::string first = Slurp(path);
    EXPECT_EQ(obs::ValidateOpenMetrics(first), "");
    EXPECT_NE(first.find("stark_export_me_total 1\n"), std::string::npos);

    // The background thread picks up new values.
    registry.GetCounter("export.me")->Add(41);
    std::string refreshed;
    for (int i = 0; i < 100; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      refreshed = Slurp(path);
      if (refreshed.find("stark_export_me_total 42\n") != std::string::npos) {
        break;
      }
    }
    EXPECT_NE(refreshed.find("stark_export_me_total 42\n"), std::string::npos);

    // Stop() is idempotent and leaves a final valid exposition behind.
    registry.GetCounter("export.final")->Add(7);
    exporter.Stop();
    exporter.Stop();
    const std::string last = Slurp(path);
    EXPECT_EQ(obs::ValidateOpenMetrics(last), "");
    EXPECT_NE(last.find("stark_export_final_total 7\n"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(OpenMetricsTest, FromEnvReturnsNullWithoutTheVariable) {
  // The test runner does not set STARK_METRICS_EXPORT; CI jobs that do get
  // the exporter through the bench binaries instead.
  if (std::getenv("STARK_METRICS_EXPORT") == nullptr) {
    EXPECT_EQ(obs::MetricsExporter::FromEnv(), nullptr);
  }
}

}  // namespace
}  // namespace stark
