// SnapshotRegistry: epoch lifecycle basics plus the concurrency hammer the
// serving layer's correctness rests on — N reader threads pin/query/release
// while a writer publishes new epochs as fast as it can. Run under TSan in
// CI. Checked invariants: a pinned epoch is never reclaimed (its state
// outlives the pin), a Pin() never observes a torn {events, tree} pair, and
// after all readers drain exactly one epoch remains.
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/catalog.h"
#include "serve/snapshot_registry.h"
#include "stream/event.h"

namespace stark {
namespace serve {
namespace {

stream::StreamEvent PointEvent(int64_t id, double x, double y, int64_t t) {
  return stream::StreamEvent(
      id, "cat", STObject(Geometry::MakePoint({x, y}), t));
}

std::shared_ptr<const DatasetSnapshot> MakeSnapshot(uint64_t version,
                                                    size_t num_events) {
  std::vector<stream::StreamEvent> events;
  events.reserve(num_events);
  for (size_t i = 0; i < num_events; ++i) {
    events.push_back(PointEvent(static_cast<int64_t>(i),
                                static_cast<double>(i), 0.0,
                                static_cast<int64_t>(i)));
  }
  return std::make_shared<const DatasetSnapshot>(
      BuildSnapshot(version, std::move(events), 8));
}

TEST(SnapshotRegistry, PublishPinRelease) {
  SnapshotRegistry<DatasetSnapshot> registry;
  EXPECT_EQ(registry.NewestEpoch(), 0u);
  EXPECT_FALSE(registry.Pin().valid());

  const uint64_t e1 = registry.Publish(MakeSnapshot(1, 4));
  EXPECT_EQ(e1, 1u);
  EXPECT_EQ(registry.LiveEpochs(), 1u);

  PinnedSnapshot<DatasetSnapshot> pin = registry.Pin();
  ASSERT_TRUE(pin.valid());
  EXPECT_EQ(pin.epoch(), e1);
  EXPECT_EQ(pin->version, 1u);
  EXPECT_EQ(registry.Pins(e1), 1u);

  // Publishing while e1 is pinned retains both epochs.
  const uint64_t e2 = registry.Publish(MakeSnapshot(2, 8));
  EXPECT_EQ(e2, 2u);
  EXPECT_EQ(registry.LiveEpochs(), 2u);
  EXPECT_EQ(pin->events->size(), 4u);  // reader's view unchanged

  // Releasing the pin reclaims e1; only the newest remains.
  pin.Release();
  EXPECT_EQ(registry.LiveEpochs(), 1u);
  EXPECT_EQ(registry.Pins(e1), 0u);
  EXPECT_EQ(registry.NewestEpoch(), e2);
}

TEST(SnapshotRegistry, UnpinnedEpochsReclaimedOnPublish) {
  SnapshotRegistry<DatasetSnapshot> registry;
  for (uint64_t v = 1; v <= 5; ++v) {
    registry.Publish(MakeSnapshot(v, 2));
    EXPECT_EQ(registry.LiveEpochs(), 1u) << "at version " << v;
  }
  EXPECT_EQ(registry.NewestEpoch(), 5u);
}

TEST(SnapshotRegistry, InteriorEpochReclaimedWhileOlderStaysPinned) {
  SnapshotRegistry<DatasetSnapshot> registry;
  registry.Publish(MakeSnapshot(1, 1));
  PinnedSnapshot<DatasetSnapshot> old_pin = registry.Pin();  // pins epoch 1
  registry.Publish(MakeSnapshot(2, 1));  // epoch 2, unpinned
  registry.Publish(MakeSnapshot(3, 1));  // epoch 3 (newest)
  // Epoch 2 must not be retained just because epoch 1 still is.
  EXPECT_EQ(registry.LiveEpochs(), 2u);
  EXPECT_EQ(registry.Pins(2), 0u);
  old_pin.Release();
  EXPECT_EQ(registry.LiveEpochs(), 1u);
}

TEST(SnapshotRegistry, StateOutlivesRegistryThroughSharedPtr) {
  std::shared_ptr<const DatasetSnapshot> state;
  {
    SnapshotRegistry<DatasetSnapshot> registry;
    registry.Publish(MakeSnapshot(7, 3));
    PinnedSnapshot<DatasetSnapshot> pin = registry.Pin();
    state = pin.state();
    pin.Release();  // pins must drain before the registry dies
  }
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->version, 7u);
  EXPECT_TRUE(state->Consistent());
}

TEST(SnapshotRegistry, MoveTransfersThePin) {
  SnapshotRegistry<DatasetSnapshot> registry;
  registry.Publish(MakeSnapshot(1, 1));
  PinnedSnapshot<DatasetSnapshot> a = registry.Pin();
  PinnedSnapshot<DatasetSnapshot> b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): post-move test
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(registry.Pins(1), 1u);
  b.Release();
  EXPECT_EQ(registry.Pins(1), 0u);
}

// The TSan hammer (satellite): readers pin/verify/release in a tight loop
// while the writer publishes rapidly. The per-snapshot Consistent() check
// is the torn-swap detector: events and tree of one snapshot always match
// in size, so observing a mix of two versions trips it.
TEST(SnapshotRegistryHammer, ConcurrentPinPublishRelease) {
  constexpr size_t kReaders = 8;
  constexpr size_t kPublishes = 200;
  constexpr size_t kReadsPerReader = 400;

  SnapshotRegistry<DatasetSnapshot> registry;
  registry.Publish(MakeSnapshot(1, 1));

  std::atomic<bool> writer_done{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> invalid_pins{0};

  std::thread writer([&] {
    for (size_t v = 2; v <= kPublishes; ++v) {
      // Version v has exactly v events: the differential handle the
      // readers use to prove their view is internally consistent.
      registry.Publish(MakeSnapshot(v, v));
    }
    writer_done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      for (size_t i = 0; i < kReadsPerReader; ++i) {
        PinnedSnapshot<DatasetSnapshot> pin = registry.Pin();
        if (!pin.valid()) {
          invalid_pins.fetch_add(1);
          continue;
        }
        // No epoch reclaim while pinned: every dereference below must hit
        // live memory (TSan/ASan would flag a reclaimed snapshot), and the
        // {version, events, tree} triple must be internally consistent.
        if (!pin->Consistent() || pin->events->size() != pin->version) {
          torn.fetch_add(1);
        }
        // Query through the pinned tree to touch the full structure.
        size_t hits = 0;
        pin->tree->Query(Envelope(0.0, 0.0, 1e9, 1e9),
                         [&](const Envelope&, const uint32_t&) { ++hits; });
        if (hits != pin->events->size()) torn.fetch_add(1);
      }
    });
  }

  writer.join();
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(invalid_pins.load(), 0u);  // an epoch existed throughout
  // All pins drained: exactly the newest epoch survives.
  EXPECT_EQ(registry.LiveEpochs(), 1u);
  EXPECT_EQ(registry.NewestEpoch(), kPublishes);
  EXPECT_EQ(registry.Pin().state()->events->size(), kPublishes);
}

TEST(Catalog, CreateIngestPin) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateDataset("events", 8).ok());
  ASSERT_TRUE(catalog.CreateDataset("events").ok());  // idempotent

  // The initial empty epoch is pinnable.
  Result<PinnedDataset> empty = catalog.Pin("events");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.ValueOrDie()->events->size(), 0u);

  std::vector<stream::StreamEvent> batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back(PointEvent(i, i, i, i));
  }
  Result<uint64_t> epoch = catalog.Ingest("events", std::move(batch));
  ASSERT_TRUE(epoch.ok());

  Result<PinnedDataset> pin = catalog.Pin("events");
  ASSERT_TRUE(pin.ok());
  EXPECT_EQ(pin.ValueOrDie()->events->size(), 10u);
  EXPECT_TRUE(pin.ValueOrDie()->Consistent());

  EXPECT_FALSE(catalog.Pin("nope").ok());
  EXPECT_FALSE(catalog.Ingest("nope", {}).ok());
}

}  // namespace
}  // namespace serve
}  // namespace stark
