// CEP operator tests: the DCORE exemplar stream (SEQ with filters over a
// temperature/humidity stream), plus the algebraic properties the operators
// must satisfy — absence == zero-count, sequence matches time-ordered and
// span-bounded, duplicates never double-fire an exactly-once sink — and a
// differential check of the tree-accelerated match path against the scalar
// reference.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "stream_test_util.h"

namespace stark {
namespace {

using stream::PatternKind;
using stream::PatternSpec;
using stream::StepPredicate;
using stream::StreamContext;
using test::BatchWindows;
using test::FormatMatches;
using test::MakeEvent;
using test::Replay;
using test::ReplayRun;
using test::ShuffledArrivals;
using test::StreamEvent;

class CepTest : public ::testing::Test {
 protected:
  Context ctx_{4};
};

// Randomly-timed events delivered in event-time order, so nothing is late
// against a zero watermark bound and the batch oracle sees every event.
std::vector<StreamEvent> TimeOrdered(std::vector<StreamEvent> events) {
  std::sort(events.begin(), events.end(), stream::CanonicalLess);
  return events;
}

// The DCORE execution-time exemplar: a sensor stream interleaving
// temperature (T) and humidity (H) readings,
//   T;0:0:0;-2  H;0:0:1;30  H;0:0:2;20  H;0:0:3;10
//   H;0:0:4;65  T;0:0:5;-5  H;0:0:6;10  H;0:0:7;70
// matched against (T as t1 ; H+ as hs ; H as h1) FILTER (t1[temp<0] AND
// hs[hum<60] AND h1[hum>60]). The attribute filters partition the events
// into categories up front (cold T, dry H, wet H), so the query becomes a
// three-step SEQ over categories.
std::vector<StreamEvent> DcoreStream() {
  auto sensor = [](int64_t id, Instant t, double reading, bool is_temp) {
    const bool cold = is_temp && reading < 0;
    const bool dry = !is_temp && reading < 60;
    const std::string cat = is_temp ? (cold ? "t_cold" : "t_warm")
                                    : (dry ? "h_dry" : "h_wet");
    // The reading rides along as the x coordinate; y pins the sensor site.
    return MakeEvent(id, t, cat, reading, 41.4);
  };
  return {
      sensor(1, 0, -2, true), sensor(2, 1, 30, false),
      sensor(3, 2, 20, false), sensor(4, 3, 10, false),
      sensor(5, 4, 65, false), sensor(6, 5, -5, true),
      sensor(7, 6, 10, false), sensor(8, 7, 70, false),
  };
}

PatternSpec DcorePattern(int64_t within) {
  PatternSpec spec;
  spec.kind = PatternKind::kSequence;
  spec.within = within;
  for (const char* cat : {"t_cold", "h_dry", "h_wet"}) {
    StepPredicate step;
    step.category = cat;
    spec.steps.push_back(step);
  }
  return spec;
}

TEST_F(CepTest, DcoreExemplarSequenceMatches) {
  StreamContext::Options options;
  options.window.size = 10;
  options.pattern = DcorePattern(/*within=*/0);
  ReplayRun run = Replay(&ctx_, DcoreStream(), 0, options);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  // Every (cold T, dry H, wet H) triple with strictly increasing times:
  // T@0 pairs with dry {1,2,3} x wet {4,7} plus dry 6 x wet 7 = 7;
  // T@5 pairs with dry 6 x wet 7 = 1.
  ASSERT_EQ(run.Matches().size(), 8u);
  for (const auto& m : run.Matches()) {
    ASSERT_EQ(m.events.size(), 3u);
    EXPECT_EQ(m.events[0].category, "t_cold");
    EXPECT_EQ(m.events[1].category, "h_dry");
    EXPECT_EQ(m.events[2].category, "h_wet");
    EXPECT_LT(m.events[0].event_time(), m.events[1].event_time());
    EXPECT_LT(m.events[1].event_time(), m.events[2].event_time());
  }
}

TEST_F(CepTest, DcoreExemplarWithinBoundPrunesWideTuples) {
  StreamContext::Options options;
  options.window.size = 10;
  options.pattern = DcorePattern(/*within=*/4);
  ReplayRun run = Replay(&ctx_, DcoreStream(), 0, options);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  // Span <= 4 keeps (0,1,4), (0,2,4), (0,3,4) and (5,6,7).
  ASSERT_EQ(run.Matches().size(), 4u);
  for (const auto& m : run.Matches()) {
    EXPECT_LE(m.events.back().event_time() - m.events.front().event_time(),
              4);
  }
}

TEST_F(CepTest, DcoreExemplarSurvivesOutOfOrderReplay) {
  const std::vector<StreamEvent> events = DcoreStream();
  StreamContext::Options options;
  options.window.size = 10;
  options.pattern = DcorePattern(0);
  const ReplayRun in_order = Replay(&ctx_, events, 0, options);
  ASSERT_TRUE(in_order.status.ok());
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const ReplayRun shuffled =
        Replay(&ctx_, ShuffledArrivals(events, seed, 3), /*bound=*/3,
               options);
    ASSERT_TRUE(shuffled.status.ok()) << shuffled.status.ToString();
    EXPECT_EQ(FormatMatches(shuffled.Matches()),
              FormatMatches(in_order.Matches()))
        << "seed " << seed;
  }
}

// Property: absence(p) fires on exactly the windows where count(p) == 0.
TEST_F(CepTest, AbsenceFiresIffCountIsZero) {
  for (uint64_t seed = 0; seed < 100; ++seed) {
    Rng rng(seed + 500);
    std::vector<StreamEvent> events;
    const size_t count = static_cast<size_t>(rng.UniformInt(1, 30));
    const char* const cats[] = {"p", "q"};
    for (size_t i = 0; i < count; ++i) {
      events.push_back(MakeEvent(static_cast<int64_t>(i),
                                 rng.UniformInt(0, 60),
                                 cats[rng.UniformInt(0, 1)],
                                 rng.Uniform(0.0, 100.0),
                                 rng.Uniform(0.0, 100.0)));
    }
    StreamContext::Options absent;
    absent.window.size = 10;
    absent.pattern = PatternSpec{};
    absent.pattern->kind = PatternKind::kAbsence;
    absent.pattern->steps.push_back(StepPredicate{"p", {}, {}});

    StreamContext::Options count_zero;
    count_zero.window.size = 10;
    count_zero.pattern = PatternSpec{};
    count_zero.pattern->kind = PatternKind::kCount;
    count_zero.pattern->cmp = stream::CountCmp::kEq;
    count_zero.pattern->threshold = 0;
    count_zero.pattern->steps.push_back(StepPredicate{"p", {}, {}});

    const ReplayRun a = Replay(&ctx_, events, 0, absent);
    const ReplayRun c = Replay(&ctx_, events, 0, count_zero);
    ASSERT_TRUE(a.status.ok() && c.status.ok());
    std::vector<int64_t> absent_windows, zero_windows;
    for (const auto& m : a.Matches()) absent_windows.push_back(m.window_start);
    for (const auto& m : c.Matches()) zero_windows.push_back(m.window_start);
    EXPECT_EQ(absent_windows, zero_windows) << "seed " << seed;
  }
}

// Property: every SEQ match is time-ordered and spans at most WITHIN, and
// the engine-parallel evaluation equals the brute-force scalar reference.
TEST_F(CepTest, SequenceMatchesAreOrderedBoundedAndEqualReference) {
  for (uint64_t seed = 0; seed < 100; ++seed) {
    Rng rng(seed * 31 + 7);
    std::vector<StreamEvent> events;
    const size_t count = static_cast<size_t>(rng.UniformInt(3, 25));
    const char* const cats[] = {"a", "b", "c"};
    for (size_t i = 0; i < count; ++i) {
      events.push_back(MakeEvent(static_cast<int64_t>(i),
                                 rng.UniformInt(0, 40),
                                 cats[rng.UniformInt(0, 2)],
                                 rng.Uniform(0.0, 100.0),
                                 rng.Uniform(0.0, 100.0)));
    }
    const int64_t within = rng.UniformInt(1, 12);
    PatternSpec pattern;
    pattern.kind = PatternKind::kSequence;
    pattern.within = within;
    pattern.steps.push_back(StepPredicate{"a", {}, {}});
    pattern.steps.push_back(StepPredicate{"b", {}, {}});

    StreamContext::Options options;
    options.window.size = 15;
    options.pattern = pattern;
    const ReplayRun run = Replay(&ctx_, TimeOrdered(events), 0, options);
    ASSERT_TRUE(run.status.ok()) << run.status.ToString();
    for (const auto& m : run.Matches()) {
      ASSERT_EQ(m.events.size(), 2u);
      EXPECT_LT(m.events[0].event_time(), m.events[1].event_time());
      EXPECT_LE(m.events[1].event_time() - m.events[0].event_time(), within);
    }
    std::vector<stream::PatternMatch> expected;
    for (const auto& w : BatchWindows(events, options.window)) {
      const auto ref = test::ReferencePattern(pattern, w);
      expected.insert(expected.end(), ref.begin(), ref.end());
    }
    ASSERT_EQ(FormatMatches(run.Matches()), FormatMatches(expected))
        << "seed " << seed;
  }
}

// Property: duplicate deliveries never double-fire the sink — the match set
// is identical to the clean replay and no window start is delivered twice.
TEST_F(CepTest, DuplicatesNeverDoubleFireExactlyOnceSink) {
  const std::vector<StreamEvent> events = DcoreStream();
  StreamContext::Options options;
  options.window.size = 10;
  options.pattern = DcorePattern(0);
  const ReplayRun clean = Replay(&ctx_, events, 0, options);
  ASSERT_TRUE(clean.status.ok());

  for (uint64_t seed = 0; seed < 20; ++seed) {
    const std::vector<StreamEvent> arrivals =
        ShuffledArrivals(events, seed, 0, /*duplicates=*/4);
    stream::StreamContext sc(&ctx_, options);
    sc.AddSource(std::make_unique<test::ScriptedSource>(arrivals), 0);
    std::vector<stream::PatternMatch> matches;
    sc.SetSink([&matches](const stream::WindowResult& r) {
      matches.insert(matches.end(), r.matches.begin(), r.matches.end());
    });
    ASSERT_TRUE(sc.RunToCompletion().ok());
    EXPECT_EQ(sc.stats().duplicates, 4u) << "seed " << seed;
    EXPECT_EQ(FormatMatches(matches), FormatMatches(clean.Matches()))
        << "seed " << seed;
    // The exactly-once ledger is strictly increasing: no loss, no repeat.
    const std::vector<int64_t>& starts = sc.delivered_window_starts();
    for (size_t i = 1; i < starts.size(); ++i) {
      EXPECT_LT(starts[i - 1], starts[i]);
    }
  }
}

// The tree-accelerated region match (PackedRTree candidates + BoundPredicate
// refinement, engaged above the pool-size threshold) must be exact: equal to
// the brute-force scalar evaluation of the same window.
TEST_F(CepTest, TreeAcceleratedRegionMatchEqualsScalarReference) {
  Rng rng(1234);
  std::vector<StreamEvent> events;
  for (size_t i = 0; i < 300; ++i) {
    events.push_back(MakeEvent(static_cast<int64_t>(i), rng.UniformInt(0, 9),
                               "ping", rng.Uniform(0.0, 100.0),
                               rng.Uniform(0.0, 100.0)));
  }
  PatternSpec pattern;
  pattern.kind = PatternKind::kCount;
  pattern.threshold = 1;
  StepPredicate step;
  step.category = "ping";
  step.region = STObject(Geometry::MakeBox(Envelope(20, 20, 60, 60)));
  step.pred = JoinPredicate::Intersects();
  pattern.steps.push_back(step);

  StreamContext::Options options;
  options.window.size = 10;
  options.pattern = pattern;

  obs::Counter* const probes =
      obs::DefaultMetrics().GetCounter("stream.cep.tree_probes");
  const uint64_t probes_before = probes->Value();
  const ReplayRun run = Replay(&ctx_, TimeOrdered(events), 0, options);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_GT(probes->Value(), probes_before);  // the tree path actually ran

  std::vector<stream::PatternMatch> expected;
  for (const auto& w : BatchWindows(events, options.window)) {
    const auto ref = test::ReferencePattern(pattern, w);
    expected.insert(expected.end(), ref.begin(), ref.end());
  }
  ASSERT_EQ(FormatMatches(run.Matches()), FormatMatches(expected));
}

// WITHINDISTANCE region steps run through the same refinement with an
// envelope margin; exactness must hold there too.
TEST_F(CepTest, DistanceRegionMatchEqualsScalarReference) {
  Rng rng(99);
  std::vector<StreamEvent> events;
  for (size_t i = 0; i < 120; ++i) {
    events.push_back(MakeEvent(static_cast<int64_t>(i), rng.UniformInt(0, 4),
                               "ping", rng.Uniform(0.0, 100.0),
                               rng.Uniform(0.0, 100.0)));
  }
  PatternSpec pattern;
  pattern.kind = PatternKind::kCount;
  pattern.threshold = 1;
  StepPredicate step;
  step.category = "ping";
  step.region = STObject(Geometry::MakePoint({50, 50}));
  step.pred = JoinPredicate::WithinDistance(15.0);
  pattern.steps.push_back(step);

  StreamContext::Options options;
  options.window.size = 5;
  options.pattern = pattern;
  const ReplayRun run = Replay(&ctx_, TimeOrdered(events), 0, options);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();

  std::vector<stream::PatternMatch> expected;
  for (const auto& w : BatchWindows(events, options.window)) {
    const auto ref = test::ReferencePattern(pattern, w);
    expected.insert(expected.end(), ref.begin(), ref.end());
  }
  ASSERT_EQ(FormatMatches(run.Matches()), FormatMatches(expected));
}

// A region literal that carries a time window engages the combined
// spatio-temporal predicate semantics: an event outside the region's time
// interval must not match even when it is inside spatially.
TEST_F(CepTest, TimedRegionConstrainsTemporally) {
  std::vector<StreamEvent> events = {
      MakeEvent(1, 2, "ping", 50, 50),   // in region, in time
      MakeEvent(2, 8, "ping", 50, 50),   // in region, out of time
      MakeEvent(3, 3, "ping", 90, 90),   // out of region, in time
  };
  auto region = STObject::FromWkt("POLYGON((40 40, 60 40, 60 60, 40 60, 40 40))",
                                  0, 5);
  ASSERT_TRUE(region.ok());
  PatternSpec pattern;
  pattern.kind = PatternKind::kCount;
  pattern.threshold = 1;
  StepPredicate step;
  step.category = "ping";
  step.region = region.ValueOrDie();
  pattern.steps.push_back(step);

  StreamContext::Options options;
  options.window.size = 10;
  options.pattern = pattern;
  const ReplayRun run = Replay(&ctx_, events, 0, options);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  ASSERT_EQ(run.Matches().size(), 1u);
  ASSERT_EQ(run.Matches()[0].events.size(), 1u);
  EXPECT_EQ(run.Matches()[0].events[0].id, 1);
}

}  // namespace
}  // namespace stark
