// Differential tests for event-time windowing: every streaming answer must
// equal a batch recomputation of the same events, byte for byte, for any
// arrival order the watermark bound admits.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stream_test_util.h"

namespace stark {
namespace {

using stream::LatePolicy;
using stream::StreamContext;
using test::BatchWindows;
using test::FormatMatches;
using test::FormatWindows;
using test::MakeEvent;
using test::Replay;
using test::ReplayArrivals;
using test::ReplayRun;
using test::ShuffledArrivals;
using test::StreamEvent;
using test::WindowSpec;

class StreamWindowTest : public ::testing::Test {
 protected:
  Context ctx_{4};
};

std::vector<StreamEvent> SequentialEvents(size_t count, int64_t step = 1) {
  std::vector<StreamEvent> events;
  for (size_t i = 0; i < count; ++i) {
    events.push_back(MakeEvent(static_cast<int64_t>(i),
                               static_cast<int64_t>(i) * step, "cat",
                               static_cast<double>(i % 10),
                               static_cast<double>(i % 7)));
  }
  return events;
}

TEST_F(StreamWindowTest, TumblingWindowsMatchBatchOracle) {
  const std::vector<StreamEvent> events = SequentialEvents(30);
  StreamContext::Options options;
  options.window.size = 10;
  ReplayRun run = Replay(&ctx_, events, 0, options);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(FormatWindows(run.Windows()),
            FormatWindows(BatchWindows(events, options.window)));
  EXPECT_EQ(run.stats.accepted, 30u);
  EXPECT_EQ(run.stats.windows_fired, 3u);
}

TEST_F(StreamWindowTest, SlidingWindowsOverlapCorrectly) {
  const std::vector<StreamEvent> events = SequentialEvents(20);
  StreamContext::Options options;
  options.window.size = 10;
  options.window.slide = 5;
  ReplayRun run = Replay(&ctx_, events, 0, options);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  const auto oracle = BatchWindows(events, options.window);
  EXPECT_EQ(FormatWindows(run.Windows()), FormatWindows(oracle));
  // An interior event appears in size/slide = 2 windows.
  size_t appearances = 0;
  for (const auto& w : run.Windows()) {
    for (const auto& e : w.events) {
      if (e.id == 12) ++appearances;
    }
  }
  EXPECT_EQ(appearances, 2u);
}

TEST_F(StreamWindowTest, EmptyWindowsBetweenOccupiedOnesFire) {
  // Events at t=1 and t=35 with size-10 tumbling windows: [0,10), [10,20),
  // [20,30), [30,40) all fire; the two middle ones are empty.
  std::vector<StreamEvent> events = {MakeEvent(1, 1, "a", 0, 0),
                                     MakeEvent(2, 35, "a", 1, 1)};
  StreamContext::Options options;
  options.window.size = 10;
  ReplayRun run = Replay(&ctx_, events, 0, options);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  ASSERT_EQ(run.Windows().size(), 4u);
  EXPECT_EQ(run.Windows()[1].events.size(), 0u);
  EXPECT_EQ(run.Windows()[2].events.size(), 0u);
  EXPECT_EQ(FormatWindows(run.Windows()),
            FormatWindows(BatchWindows(events, options.window)));
}

TEST_F(StreamWindowTest, BoundaryEventsLandInHalfOpenWindows) {
  // Half-open [start, start+size): an event exactly at a boundary belongs
  // to the window that starts there, never the one that ends there.
  std::vector<StreamEvent> events = {
      MakeEvent(1, 0, "a", 0, 0),  MakeEvent(2, 9, "a", 0, 0),
      MakeEvent(3, 10, "a", 0, 0), MakeEvent(4, 19, "a", 0, 0),
      MakeEvent(5, 20, "a", 0, 0),
  };
  StreamContext::Options options;
  options.window.size = 10;
  ReplayRun run = Replay(&ctx_, events, 0, options);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  ASSERT_EQ(run.Windows().size(), 3u);
  EXPECT_EQ(run.Windows()[0].events.size(), 2u);  // t=0, t=9
  EXPECT_EQ(run.Windows()[1].events.size(), 2u);  // t=10, t=19
  EXPECT_EQ(run.Windows()[2].events.size(), 1u);  // t=20
  EXPECT_EQ(FormatWindows(run.Windows()),
            FormatWindows(BatchWindows(events, options.window)));
}

TEST_F(StreamWindowTest, OutOfOrderWithinBoundLosesNothing) {
  const std::vector<StreamEvent> events = SequentialEvents(50);
  const std::vector<StreamEvent> arrivals = ShuffledArrivals(events, 7, 5);
  StreamContext::Options options;
  options.window.size = 8;
  ReplayRun run = Replay(&ctx_, arrivals, /*bound=*/5, options);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(run.stats.late, 0u);
  EXPECT_EQ(FormatWindows(run.Windows()),
            FormatWindows(BatchWindows(events, options.window)));
}

TEST_F(StreamWindowTest, LateEventsAreDroppedUnderDropPolicy) {
  // In-order burst to t=20, then a straggler at t=3: with bound 2 the
  // watermark is 18, so the straggler is late and its windows are unchanged.
  std::vector<StreamEvent> arrivals = SequentialEvents(21);
  arrivals.push_back(MakeEvent(100, 3, "late", 0, 0));
  StreamContext::Options options;
  options.window.size = 5;
  ReplayRun run = Replay(&ctx_, arrivals, /*bound=*/2, options);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(run.stats.late, 1u);
  EXPECT_EQ(run.stats.dropped, 1u);
  EXPECT_EQ(run.stats.side_output, 0u);
  EXPECT_EQ(FormatWindows(run.Windows()),
            FormatWindows(BatchWindows(SequentialEvents(21), options.window)));
}

TEST_F(StreamWindowTest, LateEventsGoToSideOutputUnderSideOutputPolicy) {
  std::vector<StreamEvent> arrivals = SequentialEvents(21);
  arrivals.push_back(MakeEvent(100, 3, "late", 0, 0));
  StreamContext::Options options;
  options.window.size = 5;
  options.late_policy = LatePolicy::kSideOutput;
  ReplayRun run = Replay(&ctx_, arrivals, /*bound=*/2, options);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(run.stats.late, 1u);
  EXPECT_EQ(run.stats.dropped, 0u);
  EXPECT_EQ(run.stats.side_output, 1u);
  ASSERT_EQ(run.side_output.size(), 1u);
  EXPECT_EQ(run.side_output[0].id, 100);
}

TEST_F(StreamWindowTest, DuplicateDeliveriesAreSuppressed) {
  std::vector<StreamEvent> arrivals = SequentialEvents(10);
  arrivals.push_back(arrivals[3]);  // redeliver id 3
  arrivals.push_back(arrivals[7]);  // and id 7
  StreamContext::Options options;
  options.window.size = 4;
  ReplayRun run = Replay(&ctx_, arrivals, 0, options);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(run.stats.duplicates, 2u);
  EXPECT_EQ(run.stats.accepted, 10u);
  EXPECT_EQ(FormatWindows(run.Windows()),
            FormatWindows(BatchWindows(SequentialEvents(10), options.window)));
}

TEST_F(StreamWindowTest, EmptyStreamFiresNothing) {
  StreamContext::Options options;
  options.window.size = 10;
  ReplayRun run = Replay(&ctx_, {}, 0, options);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_TRUE(run.results.empty());
  EXPECT_EQ(run.stats.ingested, 0u);
}

// The headline differential: >= 1k seeded cases across window shapes,
// disorder levels, duplicate injections and late stragglers. For every case
// the streaming windows must equal the batch oracle applied to the events
// the scalar reference replay accepts — byte-identical, empty windows and
// boundary events included.
TEST_F(StreamWindowTest, ThousandShuffledArrivalCasesMatchBatchOracle) {
  size_t pattern_cases = 0;
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    Rng rng(seed * 7919 + 13);
    const size_t count = static_cast<size_t>(rng.UniformInt(0, 40));
    const int64_t size = rng.UniformInt(1, 16);
    const int64_t slide = rng.UniformInt(0, 1) ? rng.UniformInt(1, size) : 0;
    const int64_t disorder = rng.UniformInt(0, 8);
    // Half the cases give the watermark enough slack for the disorder
    // (nothing late); the other half run a tighter bound so real late
    // events exercise the drop path.
    const int64_t bound =
        rng.UniformInt(0, 1) ? disorder : rng.UniformInt(0, disorder);

    std::vector<StreamEvent> events;
    const char* const cats[] = {"a", "b", "c"};
    for (size_t i = 0; i < count; ++i) {
      events.push_back(MakeEvent(
          static_cast<int64_t>(i), rng.UniformInt(0, 20 * size),
          cats[rng.UniformInt(0, 2)], rng.Uniform(0.0, 100.0),
          rng.Uniform(0.0, 100.0)));
    }
    const size_t duplicates = static_cast<size_t>(rng.UniformInt(0, 3));
    const std::vector<StreamEvent> arrivals =
        ShuffledArrivals(events, seed, disorder, duplicates);

    StreamContext::Options options;
    options.window.size = size;
    options.window.slide = slide;
    const bool with_pattern = seed % 4 == 0;
    stream::PatternSpec pattern;
    if (with_pattern) {
      pattern.kind = stream::PatternKind::kCount;
      stream::StepPredicate step;
      step.category = "a";
      step.region = STObject(
          Geometry::MakeBox(Envelope(rng.Uniform(0.0, 50.0),
                                     rng.Uniform(0.0, 50.0), 100.0, 100.0)));
      step.pred = JoinPredicate::Intersects();
      pattern.steps.push_back(step);
      pattern.threshold = 1;
      options.pattern = pattern;
      ++pattern_cases;
    }

    ReplayRun run = Replay(&ctx_, arrivals, bound, options);
    ASSERT_TRUE(run.status.ok())
        << "seed " << seed << ": " << run.status.ToString();

    const test::ReferenceReplay ref = ReplayArrivals(arrivals, bound);
    const auto oracle = BatchWindows(ref.accepted, options.window);
    ASSERT_EQ(FormatWindows(run.Windows()), FormatWindows(oracle))
        << "seed " << seed << " size=" << size << " slide=" << slide
        << " disorder=" << disorder << " bound=" << bound;

    // Books reconcile: every delivery is accounted for exactly once.
    EXPECT_EQ(run.stats.ingested, arrivals.size()) << "seed " << seed;
    EXPECT_EQ(run.stats.accepted, ref.accepted.size()) << "seed " << seed;
    EXPECT_EQ(run.stats.late, ref.late.size()) << "seed " << seed;
    EXPECT_EQ(run.stats.duplicates, ref.duplicates) << "seed " << seed;
    EXPECT_EQ(run.stats.ingested,
              run.stats.accepted + run.stats.late + run.stats.duplicates)
        << "seed " << seed;

    if (with_pattern) {
      std::vector<stream::PatternMatch> expected;
      for (const auto& w : oracle) {
        const auto ref_matches = test::ReferencePattern(pattern, w);
        expected.insert(expected.end(), ref_matches.begin(),
                        ref_matches.end());
      }
      ASSERT_EQ(FormatMatches(run.Matches()), FormatMatches(expected))
          << "seed " << seed;
    }
  }
  EXPECT_GE(pattern_cases, 200u);
}

}  // namespace
}  // namespace stark
