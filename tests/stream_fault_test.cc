// Fault matrix for continuous queries: with `engine.task.run` and
// `engine.worker.die` armed while a stream replays, every window must still
// be delivered exactly once (none lost, none duplicated), the results must
// equal a no-fault replay byte for byte, and the flight recorder must hold
// the injected-fault / retry / worker-death evidence for the post-mortem.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/failpoint.h"
#include "fault/retry.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "stream_test_util.h"

namespace stark {
namespace {

using stream::LatePolicy;
using stream::StreamContext;
using test::BatchWindows;
using test::FormatMatches;
using test::FormatWindows;
using test::MakeEvent;
using test::Replay;
using test::ReplayRun;
using test::ShuffledArrivals;
using test::StreamEvent;

uint64_t CounterValue(const std::string& name) {
  return static_cast<uint64_t>(
      obs::DefaultMetrics().GetCounter(name)->Value());
}

class StreamFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::DefaultFailPoints().DisarmAll(); }
  void TearDown() override { fault::DefaultFailPoints().DisarmAll(); }

  // A workload big enough that every window job runs several tasks, so an
  // every:N task fault fires multiple times across the replay.
  static std::vector<StreamEvent> Workload() {
    std::vector<StreamEvent> events;
    for (int64_t i = 0; i < 120; ++i) {
      events.push_back(MakeEvent(i, i, i % 3 == 0 ? "alert" : "ping",
                                 static_cast<double>(i % 25),
                                 static_cast<double>(i % 13)));
    }
    return events;
  }

  static StreamContext::Options QueryOptions() {
    StreamContext::Options options;
    options.window.size = 10;
    options.tasks_per_window = 4;  // several tasks per window job
    stream::PatternSpec pattern;
    pattern.kind = stream::PatternKind::kCount;
    stream::StepPredicate step;
    step.category = "alert";
    pattern.steps.push_back(step);
    pattern.threshold = 3;
    options.pattern = pattern;
    return options;
  }

  // Oracle: the same replay with nothing armed.
  static ReplayRun NoFaultOracle(const std::vector<StreamEvent>& arrivals,
                                 int64_t bound) {
    Context clean_ctx(4);
    ReplayRun oracle = Replay(&clean_ctx, arrivals, bound, QueryOptions());
    EXPECT_TRUE(oracle.status.ok()) << oracle.status.ToString();
    return oracle;
  }

  static void ExpectExactlyOnce(const ReplayRun& run,
                                const ReplayRun& oracle) {
    // Byte-identical to the no-fault run: contents and matches.
    EXPECT_EQ(FormatWindows(run.Windows()), FormatWindows(oracle.Windows()));
    EXPECT_EQ(FormatMatches(run.Matches()), FormatMatches(oracle.Matches()));
    // The delivery ledger has no losses and no repeats.
    ASSERT_EQ(run.delivered_starts.size(), oracle.delivered_starts.size());
    EXPECT_EQ(run.delivered_starts, oracle.delivered_starts);
    for (size_t i = 1; i < run.delivered_starts.size(); ++i) {
      EXPECT_LT(run.delivered_starts[i - 1], run.delivered_starts[i]);
    }
    EXPECT_EQ(run.stats.windows_fired, oracle.stats.windows_fired);
  }
};

TEST_F(StreamFaultTest, InjectedTaskFaultsRetryWithoutDisturbingWindows) {
  const std::vector<StreamEvent> arrivals = Workload();
  const ReplayRun oracle = NoFaultOracle(arrivals, 0);
  ASSERT_FALSE(oracle.Windows().empty());

  const uint64_t retries_before = CounterValue("engine.task.retries");
  const uint64_t recorded_before =
      obs::DefaultFlightRecorder().total_recorded();

  Context ctx(4);
  // every:6 fires repeatedly across the replay's window jobs; a generous
  // attempt budget keeps back-to-back hits on one task survivable.
  fault::RetryPolicy policy;
  policy.max_attempts = 8;
  ctx.set_retry_policy(policy);
  ASSERT_TRUE(fault::DefaultFailPoints()
                  .ArmFromSpec("engine.task.run=every:6")
                  .ok());
  const ReplayRun run = Replay(&ctx, arrivals, 0, QueryOptions());
  fault::DefaultFailPoints().DisarmAll();

  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  ExpectExactlyOnce(run, oracle);
  EXPECT_GT(CounterValue("engine.task.retries"), retries_before);

  // The recorder kept the evidence: injected faults and the retries that
  // absorbed them.
  bool saw_fault = false, saw_retry = false;
  for (const auto& e : obs::DefaultFlightRecorder().Snapshot()) {
    if (e.kind == obs::FlightEventKind::kFault) saw_fault = true;
    if (e.kind == obs::FlightEventKind::kRetry) saw_retry = true;
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_TRUE(saw_retry);
  EXPECT_GT(obs::DefaultFlightRecorder().total_recorded(), recorded_before);
}

TEST_F(StreamFaultTest, WorkerDeathMidStreamHealsAndDeliversAllWindows) {
  const std::vector<StreamEvent> arrivals = Workload();
  const ReplayRun oracle = NoFaultOracle(arrivals, 0);

  const uint64_t deaths_before = CounterValue("engine.worker.deaths");
  const uint64_t restarts_before = CounterValue("engine.worker.restarts");

  ReplayRun run;
  {
    auto ctx = std::make_unique<Context>(4);
    ASSERT_TRUE(fault::DefaultFailPoints()
                    .ArmFromSpec("engine.worker.die=nth:3")
                    .ok());
    run = Replay(ctx.get(), arrivals, 0, QueryOptions());
    fault::DefaultFailPoints().DisarmAll();
    ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  }  // join the (respawned) pool before auditing the counters

  ExpectExactlyOnce(run, oracle);
  EXPECT_GE(CounterValue("engine.worker.deaths"), deaths_before + 1);
  EXPECT_GE(CounterValue("engine.worker.restarts"), restarts_before + 1);

  bool saw_death = false;
  for (const auto& e : obs::DefaultFlightRecorder().Snapshot()) {
    if (e.kind == obs::FlightEventKind::kWorkerDeath) saw_death = true;
  }
  EXPECT_TRUE(saw_death);
}

// The full matrix: task faults AND a worker death in the same continuous
// query, out-of-order arrivals on top. The streaming answer must still be
// byte-identical to the clean oracle, and the flight-recorder dump must
// contain the fault events for a post-mortem.
TEST_F(StreamFaultTest, CombinedFaultMatrixKeepsStreamingExactlyOnce) {
  std::vector<StreamEvent> ordered = Workload();
  const std::vector<StreamEvent> arrivals =
      ShuffledArrivals(ordered, /*seed=*/17, /*disorder=*/4);
  const ReplayRun oracle = NoFaultOracle(arrivals, /*bound=*/4);
  ASSERT_EQ(oracle.stats.late, 0u);

  ReplayRun run;
  {
    auto ctx = std::make_unique<Context>(4);
    fault::RetryPolicy policy;
    policy.max_attempts = 8;
    ctx->set_retry_policy(policy);
    ASSERT_TRUE(fault::DefaultFailPoints()
                    .ArmFromSpec(
                        "engine.task.run=every:9;engine.worker.die=nth:5")
                    .ok());
    run = Replay(ctx.get(), arrivals, /*bound=*/4, QueryOptions());
    fault::DefaultFailPoints().DisarmAll();
    ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  }

  ExpectExactlyOnce(run, oracle);
  EXPECT_EQ(run.stats.ingested, arrivals.size());
  EXPECT_EQ(run.stats.ingested,
            run.stats.accepted + run.stats.late + run.stats.duplicates);

  // DumpJson is what an operator reads after the incident: it must name
  // the injected faults and the recovery actions.
  const std::string dump =
      obs::DefaultFlightRecorder().DumpJson("stream fault matrix");
  EXPECT_NE(dump.find("\"reason\":\"stream fault matrix\""),
            std::string::npos);
  EXPECT_NE(dump.find("\"kind\":\"fault\""), std::string::npos);
  EXPECT_NE(dump.find("\"kind\":\"worker_death\""), std::string::npos);
  EXPECT_NE(dump.find("\"kind\":\"retry\""), std::string::npos);
}

}  // namespace
}  // namespace stark
