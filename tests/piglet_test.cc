// Tests for the Piglet language: lexer, parser, and end-to-end program
// execution against the spatial operators.
#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include <gtest/gtest.h>

#include "test_util.h"

#include "clustering/dbscan.h"
#include "common/serde.h"
#include "fault/failpoint.h"
#include "io/csv.h"
#include "io/generator.h"
#include "obs/profile.h"
#include "piglet/interpreter.h"
#include "piglet/lexer.h"
#include "piglet/parser.h"

namespace stark {
namespace piglet {
namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(PigletLexerTest, BasicTokens) {
  auto tokens = Tokenize("a = LOAD 'x.csv'; -- comment\nb = 4.5 <= -2;")
                    .ValueOrDie();
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].type, TokenType::kIdent);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].type, TokenType::kEquals);
  EXPECT_EQ(tokens[2].text, "LOAD");
  EXPECT_EQ(tokens[3].type, TokenType::kString);
  EXPECT_EQ(tokens[3].text, "x.csv");
  EXPECT_EQ(tokens[4].type, TokenType::kSemi);
  // Comment swallowed; next is "b" on line 2.
  EXPECT_EQ(tokens[5].text, "b");
  EXPECT_EQ(tokens[5].line, 2u);
  EXPECT_EQ(tokens[7].type, TokenType::kNumber);
  EXPECT_DOUBLE_EQ(tokens[7].number, 4.5);
  EXPECT_EQ(tokens[8].type, TokenType::kCompare);
  EXPECT_EQ(tokens[8].text, "<=");
  EXPECT_EQ(tokens[9].type, TokenType::kNumber);
  EXPECT_DOUBLE_EQ(tokens[9].number, -2.0);
}

TEST(PigletLexerTest, ComparisonOperators) {
  auto tokens = Tokenize("== != < <= > >=").ValueOrDie();
  ASSERT_EQ(tokens.size(), 7u);  // 6 + end
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kCompare);
  }
}

TEST(PigletLexerTest, Errors) {
  EXPECT_FALSE(Tokenize("a = 'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
  EXPECT_FALSE(Tokenize("a # b").ok());
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(PigletParserTest, FullPipelineParses) {
  const char* script = R"(
    events = LOAD 'events.csv';
    spatial = SPATIALIZE events;
    parted = PARTITION spatial BY BSP(1000);
    indexed = INDEX parted ORDER 5;
    hits = FILTER indexed BY INTERSECTS('POLYGON((0 0, 1 0, 1 1, 0 0))');
    near = FILTER spatial BY WITHINDISTANCE('POINT(1 2)', 5.0);
    sports = FILTER events BY category == 'sports' AND time > 100;
    j = JOIN spatial, parted ON WITHINDISTANCE(2.5);
    k = KNN spatial QUERY 'POINT(3 4)' K 5;
    c = CLUSTER spatial USING DBSCAN(0.5, 4) GRID 8;
    top = LIMIT hits 10;
    DUMP top;
    STORE near INTO 'out.csv';
    DESCRIBE j;
  )";
  auto program = Parse(script);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program.ValueOrDie().statements.size(), 14u);
}

TEST(PigletParserTest, StatementFields) {
  auto program =
      Parse("x = FILTER y BY NOT (a == 1 OR b != 'z');").ValueOrDie();
  const Statement& stmt = program.statements[0];
  EXPECT_EQ(stmt.kind, Statement::Kind::kFilter);
  EXPECT_EQ(stmt.target, "x");
  EXPECT_EQ(stmt.input, "y");
  ASSERT_NE(stmt.filter, nullptr);
  EXPECT_EQ(stmt.filter->kind, Expr::Kind::kNot);
  EXPECT_EQ(stmt.filter->lhs->kind, Expr::Kind::kOr);
}

TEST(PigletParserTest, SpatialPredicateWithTimeWindow) {
  auto program =
      Parse("x = FILTER y BY CONTAINEDBY('POLYGON((0 0,9 0,9 9,0 0))', "
            "100, 500);")
          .ValueOrDie();
  const Expr& e = *program.statements[0].filter;
  EXPECT_EQ(e.kind, Expr::Kind::kSpatialPred);
  EXPECT_EQ(e.pred, PredicateType::kContainedBy);
  ASSERT_TRUE(e.query.has_value());
  ASSERT_TRUE(e.query->HasTime());
  EXPECT_EQ(e.query->time()->start(), 100);
  EXPECT_EQ(e.query->time()->end(), 500);
}

TEST(PigletParserTest, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("x = 7;").ok());                       // not an operator
  EXPECT_FALSE(Parse("x = LOAD missing_quotes;").ok());
  EXPECT_FALSE(Parse("x = FILTER y BY;").ok());
  EXPECT_FALSE(Parse("x = FILTER y BY INTERSECTS('BAD WKT');").ok());
  EXPECT_FALSE(Parse("x = PARTITION y BY HILBERT(4);").ok());
  EXPECT_FALSE(Parse("x = KNN y QUERY 'POINT(0 0)' K 0;").ok());
  EXPECT_FALSE(Parse("x = LOAD 'f.csv'").ok());             // missing ';'
  EXPECT_FALSE(Parse("DUMP;").ok());
}

// ---------------------------------------------------------------------------
// Interpreter (end to end)
// ---------------------------------------------------------------------------

class PigletInterpreterTest : public ::testing::Test {
 protected:
  PigletInterpreterTest() : interp_(&ctx_, &out_) {
    csv_path_ = test::UniqueTempPath("piglet_events.csv");
    std::vector<EventRecord> records = {
        {1, "sports", 100, "POINT (1 1)"},
        {2, "sports", 300, "POINT (2 2)"},
        {3, "politics", 200, "POINT (8 8)"},
        {4, "culture", 400, "POINT (9 9)"},
        {5, "sports", 900, "POINT (50 50)"},
    };
    STARK_CHECK(WriteEventsCsv(csv_path_, records).ok());
  }

  ~PigletInterpreterTest() override { std::remove(csv_path_.c_str()); }

  std::string Script(const std::string& body) {
    return "events = LOAD '" + csv_path_ + "';\n" + body;
  }

  Context ctx_{2};
  std::ostringstream out_;
  Interpreter interp_;
  std::string csv_path_;
};

TEST_F(PigletInterpreterTest, LoadAndDescribe) {
  ASSERT_TRUE(interp_.RunScript(Script("DESCRIBE events;")).ok());
  EXPECT_EQ(out_.str(), "events: (id, category, time, wkt)\n");
  auto rel = interp_.relation("events").ValueOrDie();
  EXPECT_EQ(rel->rdd.Count(), 5u);
}

TEST_F(PigletInterpreterTest, AttributeFilter) {
  ASSERT_TRUE(interp_
                  .RunScript(Script(
                      "sports = FILTER events BY category == 'sports' AND "
                      "time < 500;\nDUMP sports;"))
                  .ok());
  // Events 1 and 2 are sports before 500.
  const std::string dumped = out_.str();
  EXPECT_NE(dumped.find("(1, sports, 100"), std::string::npos);
  EXPECT_NE(dumped.find("(2, sports, 300"), std::string::npos);
  EXPECT_EQ(dumped.find("politics"), std::string::npos);
  EXPECT_EQ(interp_.relation("sports").ValueOrDie()->rdd.Count(), 2u);
}

TEST_F(PigletInterpreterTest, SpatialFilterRequiresSpatialize) {
  auto status = interp_.RunScript(
      Script("x = FILTER events BY INTERSECTS('POINT(1 1)');"));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(PigletInterpreterTest, SpatializeThenSpatialFilter) {
  ASSERT_TRUE(
      interp_
          .RunScript(Script(
              "s = SPATIALIZE events;\n"
              "near = FILTER s BY WITHINDISTANCE('POINT(1.5 1.5)', 1.0);\n"))
          .ok());
  // Points (1,1) and (2,2) are within ~0.707 of (1.5,1.5).
  EXPECT_EQ(interp_.relation("near").ValueOrDie()->rdd.Count(), 2u);
}

TEST_F(PigletInterpreterTest, TemporalWindowInPredicate) {
  // Spatial region covers everything; the time window selects times in
  // [150, 450]: events 2 (300), 3 (200), 4 (400).
  ASSERT_TRUE(interp_
                  .RunScript(Script(
                      "s = SPATIALIZE events;\n"
                      "w = FILTER s BY CONTAINEDBY('POLYGON((0 0, 100 0, "
                      "100 100, 0 100, 0 0))', 150, 450);\n"))
                  .ok());
  EXPECT_EQ(interp_.relation("w").ValueOrDie()->rdd.Count(), 3u);
}

TEST_F(PigletInterpreterTest, PartitionAndIndexedFilter) {
  ASSERT_TRUE(interp_
                  .RunScript(Script(
                      "s = SPATIALIZE events;\n"
                      "p = PARTITION s BY GRID(3);\n"
                      "i = INDEX p ORDER 4;\n"
                      // The window [0, 1000] covers all events: formula (3)
                      // requires the query to carry time when the data does.
                      "hits = FILTER i BY INTERSECTS('POLYGON((0 0, 3 0, "
                      "3 3, 0 3, 0 0))', 0, 1000);\nDESCRIBE i;\n"))
                  .ok());
  EXPECT_EQ(interp_.relation("hits").ValueOrDie()->rdd.Count(), 2u);
  EXPECT_NE(out_.str().find("partitioned=grid(9)"), std::string::npos);
  EXPECT_NE(out_.str().find("index_order=4"), std::string::npos);
}

TEST_F(PigletInterpreterTest, BspPartition) {
  ASSERT_TRUE(interp_
                  .RunScript(Script("s = SPATIALIZE events;\n"
                                    "p = PARTITION s BY BSP(2);\n"))
                  .ok());
  const auto* rel = interp_.relation("p").ValueOrDie();
  ASSERT_NE(rel->partitioner, nullptr);
  EXPECT_EQ(rel->partitioner->Name(), "bsp");
  EXPECT_EQ(rel->rdd.Count(), 5u);
}

TEST_F(PigletInterpreterTest, JoinProducesCombinedSchema) {
  ASSERT_TRUE(interp_
                  .RunScript(Script(
                      "s = SPATIALIZE events;\n"
                      "j = JOIN s, s ON WITHINDISTANCE(2.0);\nDESCRIBE j;"))
                  .ok());
  const auto* rel = interp_.relation("j").ValueOrDie();
  EXPECT_EQ(rel->schema.size(), 8u);
  EXPECT_EQ(rel->schema[4], "right_id");
  // Pairs within distance 2: {1,2} and {3,4} both directions, plus the 5
  // identity self-matches (a plain join does not exclude them).
  EXPECT_EQ(rel->rdd.Count(), 9u);
}

TEST_F(PigletInterpreterTest, ContainsJoinExecutes) {
  // Polygons-contain-points join via a second loaded relation.
  const std::string poly_csv = test::UniqueTempPath("piglet_regions.csv");
  std::vector<EventRecord> regions = {
      {100, "zoneA", 0, "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))"},
      {200, "zoneB", 0, "POLYGON ((7 7, 10 7, 10 10, 7 10, 7 7))"},
  };
  STARK_CHECK(WriteEventsCsv(poly_csv, regions).ok());
  // Events carry times, regions have time=0, so formula (3) would reject
  // every pair — strip the temporal mismatch by comparing spatially: give
  // regions the full window via the raw schema (time column is 0; both
  // sides are SPATIALIZEd, so both carry instants). Use WITHINDISTANCE
  // which ignores time, then CONTAINS via region window with time 0..1000
  // is not expressible per-row — so instead verify CONTAINS with matching
  // instants: set event times equal to 0 is not the fixture; keep this
  // test to the spatial-only reachable case: join regions with regions.
  ASSERT_TRUE(interp_
                  .RunScript("r = LOAD '" + poly_csv + "';\n" +
                             "rs = SPATIALIZE r;\n"
                             "jj = JOIN rs, rs ON CONTAINS;\n")
                  .ok());
  // Each region contains itself (same instant, same shape): 2 matches.
  EXPECT_EQ(interp_.relation("jj").ValueOrDie()->rdd.Count(), 2u);
  std::remove(poly_csv.c_str());
}

TEST_F(PigletInterpreterTest, KnnAddsDistanceColumn) {
  ASSERT_TRUE(interp_
                  .RunScript(Script("s = SPATIALIZE events;\n"
                                    "k = KNN s QUERY 'POINT(0 0)' K 2;\n"))
                  .ok());
  const auto* rel = interp_.relation("k").ValueOrDie();
  EXPECT_EQ(rel->schema.back(), "knn_distance");
  auto rows = rel->rdd.Collect();
  ASSERT_EQ(rows.size(), 2u);
  // Nearest to origin is (1,1), then (2,2).
  EXPECT_EQ(std::get<int64_t>(rows[0].fields[0]), 1);
  EXPECT_EQ(std::get<int64_t>(rows[1].fields[0]), 2);
}

TEST_F(PigletInterpreterTest, ClusterAddsClusterColumn) {
  ASSERT_TRUE(interp_
                  .RunScript(Script(
                      "s = SPATIALIZE events;\n"
                      "c = CLUSTER s USING DBSCAN(2.0, 2) GRID 2;\n"))
                  .ok());
  const auto* rel = interp_.relation("c").ValueOrDie();
  EXPECT_EQ(rel->schema.back(), "cluster");
  auto rows = rel->rdd.Collect();
  ASSERT_EQ(rows.size(), 5u);
  std::map<int64_t, int64_t> label_by_id;
  for (const auto& row : rows) {
    label_by_id[std::get<int64_t>(row.fields[0])] =
        std::get<int64_t>(row.fields.back());
  }
  // {1,2} cluster together, {3,4} cluster together, 5 is noise.
  EXPECT_EQ(label_by_id[1], label_by_id[2]);
  EXPECT_EQ(label_by_id[3], label_by_id[4]);
  EXPECT_NE(label_by_id[1], label_by_id[3]);
  EXPECT_EQ(label_by_id[5], kNoise);
}

TEST_F(PigletInterpreterTest, SpatioTemporalPartitioning) {
  ASSERT_TRUE(interp_
                  .RunScript(Script("s = SPATIALIZE events;\n"
                                    "p = PARTITION s BY GRID(2) TIME(3);\n"
                                    "DESCRIBE p;"))
                  .ok());
  const auto* rel = interp_.relation("p").ValueOrDie();
  ASSERT_NE(rel->partitioner, nullptr);
  EXPECT_EQ(rel->partitioner->Name(), "st-grid");
  EXPECT_EQ(rel->partitioner->NumPartitions(), 2u * 2u * 3u);
  EXPECT_EQ(rel->rdd.Count(), 5u);
}

TEST_F(PigletInterpreterTest, TimeBucketsRejectBsp) {
  EXPECT_FALSE(Parse("p = PARTITION s BY BSP(100) TIME(3);").ok());
}

TEST_F(PigletInterpreterTest, AggregateCountsByColumn) {
  ASSERT_TRUE(interp_
                  .RunScript(Script(
                      "counts = AGGREGATE events BY category COUNT;\n"
                      "DUMP counts;\nDESCRIBE counts;"))
                  .ok());
  const auto* rel = interp_.relation("counts").ValueOrDie();
  EXPECT_EQ(rel->schema, (std::vector<std::string>{"category", "count"}));
  auto rows = rel->rdd.Collect();
  std::map<std::string, int64_t> counts;
  for (const auto& row : rows) {
    counts[std::get<std::string>(row.fields[0])] =
        std::get<int64_t>(row.fields[1]);
  }
  EXPECT_EQ(counts["sports"], 3);
  EXPECT_EQ(counts["politics"], 1);
  EXPECT_EQ(counts["culture"], 1);
}

TEST_F(PigletInterpreterTest, AggregateUnknownColumnFails) {
  auto status =
      interp_.RunScript(Script("x = AGGREGATE events BY bogus COUNT;"));
  EXPECT_EQ(status.code(), StatusCode::kKeyError);
}

TEST_F(PigletInterpreterTest, LimitAndStore) {
  const std::string out_path = test::UniqueTempPath("piglet_out.csv");
  ASSERT_TRUE(interp_
                  .RunScript(Script("top = LIMIT events 2;\nSTORE top INTO '" +
                                    out_path + "';"))
                  .ok());
  auto bytes = ReadFileBytes(out_path).ValueOrDie();
  const std::string text(bytes.begin(), bytes.end());
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  std::remove(out_path.c_str());
}

TEST_F(PigletInterpreterTest, UnknownRelationError) {
  auto status = interp_.RunScript("DUMP nothing;");
  EXPECT_EQ(status.code(), StatusCode::kKeyError);
}

TEST_F(PigletInterpreterTest, UnknownColumnError) {
  auto status =
      interp_.RunScript(Script("x = FILTER events BY bogus == 1;"));
  EXPECT_EQ(status.code(), StatusCode::kKeyError);
}

TEST_F(PigletInterpreterTest, LoadMissingFileError) {
  auto status = interp_.RunScript("x = LOAD '/no/such/file.csv';");
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

// ---------------------------------------------------------------------------
// SET statements and script cancellation
// ---------------------------------------------------------------------------

TEST_F(PigletInterpreterTest, SetJobDeadlineConfiguresContext) {
  ASSERT_TRUE(interp_.RunScript("SET job.deadline_ms 250;").ok());
  EXPECT_EQ(ctx_.job_deadline_ms(), 250u);
  ASSERT_TRUE(interp_.RunScript("SET job.deadline_ms 0;").ok());
  EXPECT_EQ(ctx_.job_deadline_ms(), 0u);
}

TEST_F(PigletInterpreterTest, SetSpeculationKnobsConfigureContext) {
  ASSERT_TRUE(interp_
                  .RunScript("SET job.speculation 1;\n"
                             "SET job.speculation_multiplier 2;\n"
                             "SET job.speculation_quantile 0.5;")
                  .ok());
  EXPECT_TRUE(ctx_.speculation_policy().enabled);
  EXPECT_DOUBLE_EQ(ctx_.speculation_policy().multiplier, 2.0);
  EXPECT_DOUBLE_EQ(ctx_.speculation_policy().quantile, 0.5);
  ASSERT_TRUE(interp_.RunScript("SET job.speculation 0;").ok());
  EXPECT_FALSE(ctx_.speculation_policy().enabled);
}

TEST_F(PigletInterpreterTest, SetRejectsUnknownKeyAndBadValues) {
  EXPECT_EQ(interp_.RunScript("SET job.bogus 1;").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(interp_.RunScript("SET job.deadline_ms -5;").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(interp_.RunScript("SET job.speculation_quantile 2;").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(interp_.RunScript("SET obs.slow_task_ms -1;").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PigletInterpreterTest, SetObsProfilePrintsQueryTreeAfterScripts) {
  ASSERT_TRUE(interp_.RunScript("SET obs.profile 1;").ok());
  ASSERT_TRUE(
      interp_.RunScript(Script("s = SPATIALIZE events;\nDUMP s;")).ok());
  const std::string with_profile = out_.str();
  // The per-job tree follows the DUMP output: statements plus the engine
  // stages they ran, with stats.
  EXPECT_NE(with_profile.find("SPATIALIZE"), std::string::npos);
  EXPECT_NE(with_profile.find("parts="), std::string::npos);

  out_.str("");
  ASSERT_TRUE(interp_.RunScript("SET obs.profile 0;").ok());
  ASSERT_TRUE(interp_.RunScript("DUMP s;").ok());
  EXPECT_EQ(out_.str().find("parts="), std::string::npos);
}

TEST_F(PigletInterpreterTest, SetObsSlowThresholdsConfigureGlobalSlowLog) {
  const double task_prev = obs::GlobalSlowLog().slow_task_ms();
  const double query_prev = obs::GlobalSlowLog().slow_query_ms();
  ASSERT_TRUE(interp_
                  .RunScript("SET obs.slow_task_ms 125;\n"
                             "SET obs.slow_query_ms 2500;")
                  .ok());
  EXPECT_DOUBLE_EQ(obs::GlobalSlowLog().slow_task_ms(), 125.0);
  EXPECT_DOUBLE_EQ(obs::GlobalSlowLog().slow_query_ms(), 2500.0);
  obs::GlobalSlowLog().set_slow_task_ms(task_prev);
  obs::GlobalSlowLog().set_slow_query_ms(query_prev);
}

TEST_F(PigletInterpreterTest, SetSurvivesTheOptimizer) {
  // SET has no target relation; dead-code elimination must keep it.
  ASSERT_TRUE(
      interp_.RunScriptOptimized("SET job.deadline_ms 123;").ok());
  EXPECT_EQ(ctx_.job_deadline_ms(), 123u);
}

TEST_F(PigletInterpreterTest, DeadlineExceededSurfacesAsStatusNotCrash) {
  // Collect() rethrows a terminal job Status as StatusError; the
  // interpreter must catch it and return it as the statement's Status
  // instead of letting it unwind past the shell's REPL loop.
  fault::DefaultFailPoints().DisarmAll();
  ASSERT_TRUE(fault::DefaultFailPoints()
                  .ArmFromSpec("engine.task.run=delay:200@every:1")
                  .ok());
  const Status status = interp_.RunScript(
      Script("SET job.deadline_ms 30;\nDUMP events;"));
  fault::DefaultFailPoints().DisarmAll();
  EXPECT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
  // Clearing the deadline makes the same statement succeed again.
  ASSERT_TRUE(
      interp_.RunScript("SET job.deadline_ms 0;\nDUMP events;").ok());
}

TEST_F(PigletInterpreterTest, CancelTokenStopsScriptBetweenStatements) {
  auto token = std::make_shared<CancelToken>();
  interp_.set_cancel_token(token);
  token->RequestCancel();
  const Status status = interp_.RunScript(Script("DESCRIBE events;"));
  EXPECT_TRUE(status.IsCancelled()) << status.ToString();
  // Nothing executed: the LOAD never defined the relation.
  EXPECT_FALSE(interp_.relation("events").ok());

  token->Reset();
  EXPECT_TRUE(interp_.RunScript(Script("DESCRIBE events;")).ok());
  interp_.set_cancel_token(nullptr);
}

// ---------------------------------------------------------------------------
// Streaming statements: STREAM / WINDOW / PATTERN / EMIT
// ---------------------------------------------------------------------------

TEST(PigletParserTest, StreamingStatementsParse) {
  const char* script = R"(
    STREAM events FROM GENERATOR(2000, 42, 1);
    STREAM pings FROM TAIL('pings.csv');
    win = WINDOW events SIZE 120 SLIDE 60 LATENESS 15;
    trip = PATTERN win SEQ 'a', 'b', 'c' WITHIN 10;
    quiet = PATTERN win ABSENT 'guard';
    alerts = PATTERN win COUNT 'device' >= 25
      WHERE INTERSECTS('POLYGON((18 18, 32 18, 32 32, 18 32, 18 18))');
    EMIT alerts;
  )";
  auto program = Parse(script);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const auto& stmts = program.ValueOrDie().statements;
  ASSERT_EQ(stmts.size(), 7u);

  EXPECT_EQ(stmts[0].kind, Statement::Kind::kStream);
  EXPECT_EQ(stmts[0].stream_source, StreamSourceKind::kGenerator);
  EXPECT_EQ(stmts[0].gen_count, 2000);
  EXPECT_EQ(stmts[0].gen_seed, 42);
  EXPECT_EQ(stmts[0].gen_step, 1);

  EXPECT_EQ(stmts[1].stream_source, StreamSourceKind::kTail);
  EXPECT_EQ(stmts[1].path, "pings.csv");

  EXPECT_EQ(stmts[2].kind, Statement::Kind::kWindow);
  EXPECT_EQ(stmts[2].input, "events");
  EXPECT_EQ(stmts[2].window_size, 120);
  EXPECT_EQ(stmts[2].window_slide, 60);
  EXPECT_EQ(stmts[2].window_lateness, 15);

  EXPECT_EQ(stmts[3].kind, Statement::Kind::kPattern);
  EXPECT_EQ(stmts[3].pattern_kind, StreamPatternKind::kSequence);
  EXPECT_EQ(stmts[3].pattern_categories.size(), 3u);
  EXPECT_EQ(stmts[3].pattern_within, 10);

  EXPECT_EQ(stmts[4].pattern_kind, StreamPatternKind::kAbsence);

  EXPECT_EQ(stmts[5].pattern_kind, StreamPatternKind::kCount);
  EXPECT_EQ(stmts[5].pattern_cmp, ">=");
  EXPECT_EQ(stmts[5].pattern_threshold, 25);
  ASSERT_TRUE(stmts[5].pattern_region.has_value());
  EXPECT_EQ(stmts[5].pattern_region_pred, PredicateType::kIntersects);

  EXPECT_EQ(stmts[6].kind, Statement::Kind::kEmit);
  EXPECT_EQ(stmts[6].input, "alerts");
}

TEST(PigletParserTest, StreamingTimedRegionParses) {
  auto program =
      Parse("p = PATTERN w COUNT 'device' >= 1 "
            "WHERE WITHINDISTANCE('POINT(5 5)', 2.5, 100, 500);")
          .ValueOrDie();
  const Statement& stmt = program.statements[0];
  EXPECT_EQ(stmt.pattern_region_pred, PredicateType::kWithinDistance);
  EXPECT_DOUBLE_EQ(stmt.pattern_region_distance, 2.5);
  ASSERT_TRUE(stmt.pattern_region.has_value());
  ASSERT_TRUE(stmt.pattern_region->HasTime());
  EXPECT_EQ(stmt.pattern_region->time()->start(), 100);
  EXPECT_EQ(stmt.pattern_region->time()->end(), 500);
}

TEST(PigletParserTest, StreamingErrors) {
  // STREAM sources and their argument validation.
  EXPECT_FALSE(Parse("STREAM s FROM NOWHERE(1);").ok());
  EXPECT_FALSE(Parse("STREAM s FROM GENERATOR(-1, 0, 1);").ok());
  EXPECT_FALSE(Parse("STREAM s FROM GENERATOR(10, 0, 0);").ok());
  EXPECT_FALSE(Parse("STREAM s FROM TAIL(missing_quotes);").ok());
  // WINDOW geometry: no gaps between windows, no negative lateness.
  EXPECT_FALSE(Parse("w = WINDOW s SIZE 0;").ok());
  EXPECT_FALSE(Parse("w = WINDOW s SIZE 10 SLIDE 0;").ok());
  EXPECT_FALSE(Parse("w = WINDOW s SIZE 10 SLIDE 20;").ok());
  EXPECT_FALSE(Parse("w = WINDOW s SIZE 10 LATENESS -1;").ok());
  // PATTERN shapes.
  EXPECT_FALSE(Parse("p = PATTERN w SEQ 'only';").ok());
  EXPECT_FALSE(Parse("p = PATTERN w SEQ 'a', 'b' WITHIN 0;").ok());
  EXPECT_FALSE(Parse("p = PATTERN w COUNT 'a' != 1;").ok());
  EXPECT_FALSE(Parse("p = PATTERN w EVENTUALLY 'a';").ok());
  EXPECT_FALSE(
      Parse("p = PATTERN w ABSENT 'a' WHERE INTERSECTS('BAD WKT');").ok());
  EXPECT_FALSE(
      Parse("p = PATTERN w ABSENT 'a' "
            "WHERE INTERSECTS('POINT(0 0)', 500, 100);").ok());
}

TEST_F(PigletInterpreterTest, GeneratorStreamEmitsWindows) {
  // 40 in-order events at t = 0..39 through tumbling 10s windows: four
  // full windows, nothing late, nothing dropped.
  ASSERT_TRUE(interp_
                  .RunScript("STREAM s FROM GENERATOR(40, 7, 1);\n"
                             "w = WINDOW s SIZE 10;\n"
                             "EMIT w;")
                  .ok());
  const std::string text = out_.str();
  EXPECT_NE(text.find("[0,10) events=10"), std::string::npos) << text;
  EXPECT_NE(text.find("[30,40) events=10"), std::string::npos) << text;
  EXPECT_NE(text.find("stream s: ingested=40 accepted=40 late=0 "
                      "duplicates=0 windows=4 matches=0"),
            std::string::npos)
      << text;
}

TEST_F(PigletInterpreterTest, TailedStreamCountPatternEndToEnd) {
  // The fixture CSV arrives in file order (100, 300, 200, 400, 900);
  // LATENESS 100 keeps the out-of-order event at t=200 on time. Window
  // [0,500) holds two sports events -> one COUNT match; [500,1000)
  // holds one -> none.
  ASSERT_TRUE(interp_
                  .RunScript("STREAM t FROM TAIL('" + csv_path_ + "');\n"
                             "w = WINDOW t SIZE 500 LATENESS 100;\n"
                             "p = PATTERN w COUNT 'sports' >= 2;\n"
                             "EMIT p;")
                  .ok());
  const std::string text = out_.str();
  EXPECT_NE(text.find("[0,500) events=4 matches=1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("  match count=2 1@100 2@300"), std::string::npos)
      << text;
  EXPECT_NE(text.find("[500,1000) events=1 matches=0"), std::string::npos)
      << text;
  EXPECT_NE(text.find("stream t: ingested=5 accepted=5 late=0 "
                      "duplicates=0 windows=2 matches=1"),
            std::string::npos)
      << text;
}

TEST_F(PigletInterpreterTest, AbsencePatternFiresOnQuietWindows) {
  // No 'disaster' events anywhere: ABSENT fires in both windows.
  ASSERT_TRUE(interp_
                  .RunScript("STREAM t FROM TAIL('" + csv_path_ + "');\n"
                             "w = WINDOW t SIZE 500 LATENESS 100;\n"
                             "q = PATTERN w ABSENT 'disaster';\n"
                             "EMIT q;")
                  .ok());
  const std::string text = out_.str();
  EXPECT_NE(text.find("windows=2 matches=2"), std::string::npos) << text;
}

TEST_F(PigletInterpreterTest, EmitBareWindowAndStreamErrors) {
  // EMIT accepts a bare window (no pattern, no matches column).
  ASSERT_TRUE(interp_
                  .RunScript("STREAM t FROM TAIL('" + csv_path_ + "');\n"
                             "w = WINDOW t SIZE 1000 LATENESS 100;\n"
                             "EMIT w;")
                  .ok());
  EXPECT_NE(out_.str().find("[0,1000) events=5\n"), std::string::npos)
      << out_.str();

  // Dangling references resolve to KeyError, like batch relations.
  EXPECT_EQ(interp_.RunScript("w2 = WINDOW nostream SIZE 10;").code(),
            StatusCode::kKeyError);
  EXPECT_EQ(interp_.RunScript("p2 = PATTERN nowindow ABSENT 'a';").code(),
            StatusCode::kKeyError);
  EXPECT_EQ(interp_.RunScript("EMIT nothing;").code(), StatusCode::kKeyError);
}

}  // namespace
}  // namespace piglet
}  // namespace stark
