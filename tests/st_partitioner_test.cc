// Tests for the spatio-temporal grid partitioner and the temporal pruning
// it enables — the extension of §2.1 ("current version only considers the
// spatial component") implemented in this reproduction.
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "partition/st_grid_partitioner.h"
#include "spatial_rdd/spatial_rdd.h"

namespace stark {
namespace {

TEST(StGridPartitionerTest, LayoutAndCounts) {
  SpatioTemporalGridPartitioner part(Envelope(0, 0, 10, 10), 2, 0, 100, 5);
  EXPECT_EQ(part.NumPartitions(), 2u * 2u * 5u);
  EXPECT_EQ(part.Name(), "st-grid");
  EXPECT_EQ(part.time_buckets(), 5u);
}

TEST(StGridPartitionerTest, BucketAssignment) {
  SpatioTemporalGridPartitioner part(Envelope(0, 0, 10, 10), 1, 0, 100, 4);
  EXPECT_EQ(part.BucketOf(0), 0u);
  EXPECT_EQ(part.BucketOf(10), 0u);
  EXPECT_EQ(part.BucketOf(30), 1u);
  EXPECT_EQ(part.BucketOf(99), 3u);
  EXPECT_EQ(part.BucketOf(100), 3u);
  EXPECT_EQ(part.BucketOf(-50), 0u);   // clamped
  EXPECT_EQ(part.BucketOf(500), 3u);   // clamped
}

TEST(StGridPartitionerTest, AssignmentConsistentWithBounds) {
  SpatioTemporalGridPartitioner part(Envelope(0, 0, 10, 10), 2, 0, 1000, 4);
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    const Coordinate c{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    const Instant t = rng.UniformInt(0, 1000);
    const size_t p = part.PartitionForST(c, TemporalInterval(t));
    ASSERT_LT(p, part.NumPartitions());
    EXPECT_TRUE(part.PartitionBounds(p).Contains(c));
    const auto time_bounds = part.PartitionTimeBounds(p);
    ASSERT_TRUE(time_bounds.has_value());
    EXPECT_TRUE(time_bounds->Contains(t))
        << "t=" << t << " bounds=" << time_bounds->ToString();
  }
}

TEST(StGridPartitionerTest, UntimedObjectsGoToBucketZero) {
  SpatioTemporalGridPartitioner part(Envelope(0, 0, 10, 10), 2, 0, 100, 4);
  const size_t p = part.PartitionForST({1, 1}, std::nullopt);
  EXPECT_EQ(p % part.time_buckets(), 0u);
  EXPECT_EQ(p, part.PartitionFor({1, 1}));
}

TEST(StGridPartitionerTest, DegenerateTimeRange) {
  SpatioTemporalGridPartitioner part(Envelope(0, 0, 10, 10), 1, 50, 50, 3);
  EXPECT_EQ(part.BucketOf(50), 0u);
  EXPECT_LT(part.PartitionForST({5, 5}, TemporalInterval(50)),
            part.NumPartitions());
}

class StPartitionedRddTest : public ::testing::Test {
 protected:
  StPartitionedRddTest() {
    Rng rng(14);
    for (int64_t i = 0; i < 2000; ++i) {
      const Coordinate c{rng.Uniform(0, 100), rng.Uniform(0, 100)};
      // 10% of objects carry no time at all.
      if (i % 10 == 0) {
        data_.emplace_back(STObject(Geometry::MakePoint(c.x, c.y)), i);
      } else {
        data_.emplace_back(
            STObject(Geometry::MakePoint(c.x, c.y), rng.UniformInt(0, 10'000)),
            i);
      }
    }
  }

  std::set<int64_t> BruteForce(const STObject& query) const {
    std::set<int64_t> ids;
    for (const auto& [obj, id] : data_) {
      if (obj.Intersects(query)) ids.insert(id);
    }
    return ids;
  }

  static std::set<int64_t> Ids(
      const std::vector<std::pair<STObject, int64_t>>& elems) {
    std::set<int64_t> ids;
    for (const auto& [obj, id] : elems) ids.insert(id);
    return ids;
  }

  Context ctx_{4};
  std::vector<std::pair<STObject, int64_t>> data_;
};

TEST_F(StPartitionedRddTest, ShuffleIsLossless) {
  auto part = std::make_shared<SpatioTemporalGridPartitioner>(
      Envelope(0, 0, 100, 100), 3, 0, 10'000, 4);
  auto rdd = SpatialRDD<int64_t>::FromVector(&ctx_, data_).PartitionBy(part);
  EXPECT_EQ(rdd.NumPartitions(), 36u);
  EXPECT_EQ(Ids(rdd.rdd().Collect()), Ids(data_));
}

TEST_F(StPartitionedRddTest, TimedQueryMatchesBruteForce) {
  auto part = std::make_shared<SpatioTemporalGridPartitioner>(
      Envelope(0, 0, 100, 100), 3, 0, 10'000, 4);
  auto rdd = SpatialRDD<int64_t>::FromVector(&ctx_, data_).PartitionBy(part);
  const STObject qry(Geometry::MakeBox(Envelope(10, 10, 70, 70)), 2'000,
                     4'000);
  EXPECT_EQ(Ids(rdd.Intersects(qry).Collect()), BruteForce(qry));
  // Untimed query also stays correct (no temporal pruning applies).
  const STObject plain(Geometry::MakeBox(Envelope(10, 10, 70, 70)));
  EXPECT_EQ(Ids(rdd.Intersects(plain).Collect()), BruteForce(plain));
}

TEST_F(StPartitionedRddTest, TemporalPruningSkipsBuckets) {
  auto part = std::make_shared<SpatioTemporalGridPartitioner>(
      Envelope(0, 0, 100, 100), 2, 0, 10'000, 10);
  auto rdd = SpatialRDD<int64_t>::FromVector(&ctx_, data_).PartitionBy(part);
  // Narrow time window covering exactly one bucket; spatial window covers
  // everything — only partitions of that bucket may contribute.
  const STObject qry(Geometry::MakeBox(Envelope(0, 0, 100, 100)), 2'100,
                     2'900);
  auto parts = rdd.Intersects(qry).CollectPartitions();
  size_t non_empty = 0;
  for (const auto& p : parts) non_empty += p.empty() ? 0 : 1;
  // 4 spatial cells x 1 surviving bucket.
  EXPECT_LE(non_empty, 4u);
  EXPECT_EQ(Ids(rdd.Intersects(qry).Collect()), BruteForce(qry));
}

TEST_F(StPartitionedRddTest, KnnWithCustomDistance) {
  auto rdd = SpatialRDD<int64_t>::FromVector(&ctx_, data_, 4);
  const STObject qry(Geometry::MakePoint(50, 50));
  auto knn = rdd.Knn(qry, 5, ManhattanDistance);
  ASSERT_EQ(knn.size(), 5u);
  // Verify against brute force under Manhattan distance.
  std::vector<double> dists;
  for (const auto& [obj, id] : data_) {
    dists.push_back(ManhattanDistance(obj, qry));
  }
  std::sort(dists.begin(), dists.end());
  for (size_t i = 0; i < knn.size(); ++i) {
    EXPECT_DOUBLE_EQ(knn[i].first, dists[i]);
  }
  // Euclidean and Manhattan orderings differ in general.
  auto euclid = rdd.Knn(qry, 5);
  EXPECT_LE(euclid[0].first, knn[0].first);
}

}  // namespace
}  // namespace stark
