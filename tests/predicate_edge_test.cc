// Edge-case tests for the spatial predicates: boundary touches, collinear
// configurations, degenerate shapes, shared vertices, and the documented
// covers-style semantics.
#include <gtest/gtest.h>

#include "geometry/predicates.h"
#include "geometry/wkt.h"

namespace stark {
namespace {

Geometry G(const char* wkt) { return ParseWkt(wkt).ValueOrDie(); }

TEST(PredicateEdgeTest, PointOnPolygonCorner) {
  const Geometry poly = G("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  EXPECT_TRUE(Intersects(G("POINT (0 0)"), poly));
  EXPECT_TRUE(Contains(poly, G("POINT (0 0)")));  // covers semantics
}

TEST(PredicateEdgeTest, PointOnSharedEdgeOfTwoPolygons) {
  const Geometry left = G("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))");
  const Geometry right = G("POLYGON ((2 0, 4 0, 4 2, 2 2, 2 0))");
  const Geometry pt = G("POINT (2 1)");
  EXPECT_TRUE(Contains(left, pt));
  EXPECT_TRUE(Contains(right, pt));
}

TEST(PredicateEdgeTest, LineAlongPolygonEdge) {
  const Geometry poly = G("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  const Geometry edge = G("LINESTRING (1 0, 3 0)");
  EXPECT_TRUE(Intersects(edge, poly));
  EXPECT_TRUE(Contains(poly, edge));  // boundary counts as covered
}

TEST(PredicateEdgeTest, LineTouchingPolygonAtSinglePoint) {
  const Geometry poly = G("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  const Geometry touching = G("LINESTRING (4 2, 8 2)");
  EXPECT_TRUE(Intersects(touching, poly));
  EXPECT_FALSE(Contains(poly, touching));
}

TEST(PredicateEdgeTest, PolygonsSharingOnlyACorner) {
  const Geometry a = G("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))");
  const Geometry b = G("POLYGON ((2 2, 4 2, 4 4, 2 4, 2 2))");
  EXPECT_TRUE(Intersects(a, b));
  EXPECT_FALSE(Contains(a, b));
  EXPECT_DOUBLE_EQ(Distance(a, b), 0.0);
}

TEST(PredicateEdgeTest, IdenticalPolygonsContainEachOther) {
  const Geometry a = G("POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))");
  const Geometry b = G("POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))");
  EXPECT_TRUE(Contains(a, b));
  EXPECT_TRUE(Contains(b, a));
}

TEST(PredicateEdgeTest, NestedPolygonTouchingInnerBoundary) {
  // Inner polygon shares part of the outer polygon's boundary.
  const Geometry outer = G("POLYGON ((0 0, 6 0, 6 6, 0 6, 0 0))");
  const Geometry inner = G("POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))");
  EXPECT_TRUE(Contains(outer, inner));
  EXPECT_FALSE(Contains(inner, outer));
}

TEST(PredicateEdgeTest, PolygonInsideHoleIsDisjointFromDonut) {
  const Geometry donut =
      G("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 8 2, 8 8, 2 8, 2 2))");
  const Geometry island = G("POLYGON ((4 4, 6 4, 6 6, 4 6, 4 4))");
  EXPECT_FALSE(Intersects(donut, island));
  EXPECT_FALSE(Contains(donut, island));
  EXPECT_DOUBLE_EQ(Distance(donut, island), 2.0);  // island to hole ring
}

TEST(PredicateEdgeTest, PolygonFillingHoleTouchesBoundary) {
  const Geometry donut =
      G("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 8 2, 8 8, 2 8, 2 2))");
  // Exactly fills the hole: shares the hole ring with the donut.
  const Geometry plug = G("POLYGON ((2 2, 8 2, 8 8, 2 8, 2 2))");
  EXPECT_TRUE(Intersects(donut, plug));   // boundaries touch
  EXPECT_FALSE(Contains(donut, plug));    // interior is missing
}

TEST(PredicateEdgeTest, ZeroAreaDegeneratePolygonRing) {
  // Collinear "polygon": parses (3 points + closure) but has zero area.
  auto degenerate = Geometry::MakePolygon({{0, 0}, {2, 0}, {4, 0}});
  ASSERT_TRUE(degenerate.ok());
  const Geometry g = degenerate.ValueOrDie();
  EXPECT_TRUE(Intersects(g, G("POINT (1 0)")));
  EXPECT_FALSE(Intersects(g, G("POINT (1 1)")));
}

TEST(PredicateEdgeTest, MultiPointPartiallyInside) {
  const Geometry poly = G("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  EXPECT_TRUE(Intersects(G("MULTIPOINT (2 2, 9 9)"), poly));
  EXPECT_FALSE(Contains(poly, G("MULTIPOINT (2 2, 9 9)")));
  EXPECT_TRUE(Contains(poly, G("MULTIPOINT (2 2, 0 0)")));
}

TEST(PredicateEdgeTest, MultiPolygonDistanceUsesNearestPart) {
  const Geometry mp = G(
      "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), "
      "((10 0, 11 0, 11 1, 10 1, 10 0)))");
  EXPECT_DOUBLE_EQ(Distance(mp, G("POINT (12 0.5)")), 1.0);
  EXPECT_DOUBLE_EQ(Distance(mp, G("POINT (5.5 0.5)")), 4.5);
}

TEST(PredicateEdgeTest, LineStringSelfContainsReversed) {
  const Geometry forward = G("LINESTRING (0 0, 2 2, 4 0)");
  const Geometry backward = G("LINESTRING (4 0, 2 2, 0 0)");
  EXPECT_TRUE(Contains(forward, backward));
  EXPECT_TRUE(Contains(backward, forward));
}

TEST(PredicateEdgeTest, VeryThinTriangleDistance) {
  const Geometry sliver = G("POLYGON ((0 0, 10 0.001, 10 0, 0 0))");
  EXPECT_EQ(Distance(sliver, G("POINT (5 0.0004)")), 0.0);  // inside
  EXPECT_NEAR(Distance(sliver, G("POINT (5 1)")), 1.0, 1e-3);
}

TEST(PredicateEdgeTest, ContainsIsAntisymmetricForProperSubsets) {
  const Geometry big = G("POLYGON ((0 0, 8 0, 8 8, 0 8, 0 0))");
  const Geometry small = G("POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))");
  EXPECT_TRUE(Contains(big, small));
  EXPECT_FALSE(Contains(small, big));
}

TEST(PredicateEdgeTest, CrossingPolygonsNeitherContains) {
  // Plus-sign configuration: overlap but neither contains the other.
  const Geometry horizontal = G("POLYGON ((0 2, 8 2, 8 4, 0 4, 0 2))");
  const Geometry vertical = G("POLYGON ((3 0, 5 0, 5 8, 3 8, 3 0))");
  EXPECT_TRUE(Intersects(horizontal, vertical));
  EXPECT_FALSE(Contains(horizontal, vertical));
  EXPECT_FALSE(Contains(vertical, horizontal));
}

}  // namespace
}  // namespace stark
