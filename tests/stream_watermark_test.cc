// Watermark and late-event fuzz: across random arrival permutations the
// stream's books must reconcile exactly (every delivery accounted for once),
// the side-output must capture precisely the late events, and the watermark
// must never regress — including under genuinely concurrent source threads
// (this suite is part of the TSan job).
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "stream_test_util.h"

namespace stark {
namespace {

using stream::LatePolicy;
using stream::StreamContext;
using stream::WatermarkTracker;
using test::MakeEvent;
using test::Replay;
using test::ReplayArrivals;
using test::ReplayRun;
using test::ShuffledArrivals;
using test::StreamEvent;

class StreamWatermarkTest : public ::testing::Test {
 protected:
  Context ctx_{4};
};

TEST_F(StreamWatermarkTest, TrackerAdvancesAndNeverRegresses) {
  WatermarkTracker tracker(/*bound=*/5);
  EXPECT_EQ(tracker.Current(), stream::kMinWatermark);
  tracker.Observe(10);
  EXPECT_EQ(tracker.Current(), 5);
  tracker.Observe(3);  // stale observation: no effect
  EXPECT_EQ(tracker.Current(), 5);
  tracker.Observe(20);
  EXPECT_EQ(tracker.Current(), 15);
  EXPECT_EQ(tracker.MaxSeen(), 20);
}

TEST_F(StreamWatermarkTest, TrackerIsMonotoneUnderConcurrentObserve) {
  WatermarkTracker tracker(/*bound=*/2);
  std::atomic<bool> regressed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&tracker, &regressed, t] {
      Instant last = stream::kMinWatermark;
      for (int i = 0; i < 5000; ++i) {
        tracker.Observe(t * 3 + i);
        const Instant now = tracker.Current();
        if (now < last) regressed = true;
        last = now;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(regressed.load());
  EXPECT_EQ(tracker.MaxSeen(), 3 * 3 + 4999);
}

// Fuzz across arrival permutations: the drop counter and the side-output
// sizes must reconcile to the total input, for both late policies.
TEST_F(StreamWatermarkTest, BooksReconcileAcrossArrivalPermutations) {
  for (uint64_t seed = 0; seed < 300; ++seed) {
    Rng rng(seed * 101 + 3);
    const size_t count = static_cast<size_t>(rng.UniformInt(1, 40));
    std::vector<StreamEvent> events;
    for (size_t i = 0; i < count; ++i) {
      events.push_back(MakeEvent(static_cast<int64_t>(i),
                                 rng.UniformInt(0, 50), "cat",
                                 rng.Uniform(0.0, 100.0), 0.0));
    }
    // Disorder routinely exceeds the bound, so real late events occur.
    const int64_t disorder = rng.UniformInt(0, 12);
    const int64_t bound = rng.UniformInt(0, 4);
    const size_t duplicates = static_cast<size_t>(rng.UniformInt(0, 4));
    const std::vector<StreamEvent> arrivals =
        ShuffledArrivals(events, seed, disorder, duplicates);

    const bool side = seed % 2 == 0;
    StreamContext::Options options;
    options.window.size = 7;
    options.late_policy = side ? LatePolicy::kSideOutput : LatePolicy::kDrop;
    const ReplayRun run = Replay(&ctx_, arrivals, bound, options);
    ASSERT_TRUE(run.status.ok()) << run.status.ToString();

    // Conservation: every delivery lands in exactly one bucket.
    EXPECT_EQ(run.stats.ingested, arrivals.size()) << "seed " << seed;
    EXPECT_EQ(run.stats.ingested,
              run.stats.accepted + run.stats.late + run.stats.duplicates)
        << "seed " << seed;
    if (side) {
      EXPECT_EQ(run.stats.side_output, run.stats.late) << "seed " << seed;
      EXPECT_EQ(run.side_output.size(), run.stats.late) << "seed " << seed;
      EXPECT_EQ(run.stats.dropped, 0u) << "seed " << seed;
    } else {
      EXPECT_EQ(run.stats.dropped, run.stats.late) << "seed " << seed;
      EXPECT_TRUE(run.side_output.empty()) << "seed " << seed;
    }

    // The scalar reference decides the same accept/late split.
    const test::ReferenceReplay ref = ReplayArrivals(arrivals, bound);
    EXPECT_EQ(run.stats.accepted, ref.accepted.size()) << "seed " << seed;
    EXPECT_EQ(run.stats.late, ref.late.size()) << "seed " << seed;

    // Accepted events are exactly the window contents (each sliding window
    // multiplies membership, so compare the union of ids instead).
    std::set<int64_t> windowed_ids;
    for (const auto& r : run.results) {
      for (const auto& e : r.window.events) windowed_ids.insert(e.id);
    }
    std::set<int64_t> accepted_ids;
    for (const auto& e : ref.accepted) accepted_ids.insert(e.id);
    EXPECT_EQ(windowed_ids, accepted_ids) << "seed " << seed;
  }
}

// The combined watermark observed between micro-batches never regresses.
TEST_F(StreamWatermarkTest, CombinedWatermarkIsMonotonePerStep) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed + 77);
    std::vector<StreamEvent> events;
    for (size_t i = 0; i < 60; ++i) {
      events.push_back(MakeEvent(static_cast<int64_t>(i),
                                 rng.UniformInt(0, 80), "cat", 0.0, 0.0));
    }
    StreamContext::Options options;
    options.window.size = 9;
    options.poll_batch = 5;  // many steps per replay
    stream::StreamContext sc(&ctx_, options);
    sc.AddSource(std::make_unique<test::ScriptedSource>(
                     ShuffledArrivals(events, seed, 6)),
                 /*bound=*/6);
    Instant last = stream::kMinWatermark;
    while (!sc.AllExhausted()) {
      ASSERT_TRUE(sc.Step().ok());
      const Instant now = sc.CombinedWatermark();
      EXPECT_GE(now, last) << "seed " << seed;
      last = now;
    }
    ASSERT_TRUE(sc.Flush().ok());
  }
}

// Concurrent external source threads ingest while the driver fires: the
// invariants that survive any interleaving — counter reconciliation,
// watermark monotonicity, exactly-once window delivery — must hold, and the
// suite must be clean under TSan.
TEST_F(StreamWatermarkTest, ConcurrentSourceThreadsReconcileAndFireOnce) {
  constexpr int kThreads = 3;
  constexpr int kPerThread = 400;

  StreamContext::Options options;
  options.window.size = 25;
  options.late_policy = LatePolicy::kSideOutput;
  stream::StreamContext sc(&ctx_, options);
  std::vector<size_t> slots;
  for (int t = 0; t < kThreads; ++t) {
    slots.push_back(sc.AddExternalSource(/*bound=*/10));
  }
  std::atomic<size_t> windows_delivered{0};
  sc.SetSink([&windows_delivered](const stream::WindowResult&) {
    ++windows_delivered;
  });

  std::atomic<bool> watermark_regressed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) * 13 + 1);
      Instant last = stream::kMinWatermark;
      for (int i = 0; i < kPerThread; ++i) {
        // Ids are globally unique; times drift forward with jitter.
        const int64_t id = static_cast<int64_t>(t) * kPerThread + i;
        const Instant time = i * 2 + rng.UniformInt(0, 8);
        sc.Ingest(slots[static_cast<size_t>(t)],
                  MakeEvent(id, time, "cat", 0.0, 0.0));
        const Instant now = sc.CombinedWatermark();
        if (now < last) watermark_regressed = true;
        last = now;
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE(sc.FireReady().ok());
  ASSERT_TRUE(sc.Flush().ok());

  EXPECT_FALSE(watermark_regressed.load());
  const stream::StreamStats stats = sc.stats();
  EXPECT_EQ(stats.ingested,
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.ingested,
            stats.accepted + stats.late + stats.duplicates);
  EXPECT_EQ(stats.side_output, stats.late);
  EXPECT_EQ(sc.TakeSideOutput().size(), stats.late);
  EXPECT_EQ(stats.windows_fired, windows_delivered.load());
  // Exactly-once: delivered starts strictly increase — no loss, no repeat.
  const std::vector<int64_t>& starts = sc.delivered_window_starts();
  EXPECT_EQ(starts.size(), windows_delivered.load());
  for (size_t i = 1; i < starts.size(); ++i) {
    EXPECT_LT(starts[i - 1], starts[i]);
  }
}

}  // namespace
}  // namespace stark
