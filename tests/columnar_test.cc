// Columnar data plane tests: SoA round-trip bit-identity over the shared
// fuzz corpus (NaN coordinates, empty-envelope sentinels, degenerate
// shapes), batch-vs-scalar differentials for every refinement kernel, the
// slab wire format against the per-object serde, the checkpoint slab
// encoding, the CSV point fast path, and the filter kill-switch
// differential. The contract everywhere is exactness: the columnar plane
// must be byte-for-byte indistinguishable from the per-object paths.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/serde.h"
#include "core/columnar.h"
#include "core/st_serde.h"
#include "core/stobject.h"
#include "engine/checkpoint.h"
#include "engine/rdd.h"
#include "geometry/kernels.h"
#include "geometry/predicates.h"
#include "geometry/prepared.h"
#include "geometry/wkt.h"
#include "io/csv.h"
#include "io/generator.h"
#include "obs/metrics.h"
#include "spatial_rdd/columnar_refine.h"
#include "spatial_rdd/predicate.h"
#include "spatial_rdd/spatial_rdd.h"
#include "spatial_rdd/value_serde.h"
#include "test_util.h"

namespace stark {
namespace {

using test::RandomPopulation;

// STObject::operator== treats NaN coordinates as unequal-to-themselves, so
// bit-identity is asserted over the serialized form instead: two objects
// are "the same" iff WriteSTObject emits the same bytes.
std::string STBytes(const STObject& obj) {
  BinaryWriter w;
  WriteSTObject(&w, obj);
  return std::string(w.buffer().data(), w.buffer().size());
}

// The prepared-geometry suite's population mix: no-time, instant, and
// interval objects over mixed geometry types.
std::vector<STObject> MakeObjects(const std::vector<Geometry>& pop) {
  std::vector<STObject> out;
  out.reserve(pop.size());
  for (size_t i = 0; i < pop.size(); ++i) {
    switch (i % 3) {
      case 0:
        out.emplace_back(pop[i]);
        break;
      case 1:
        out.emplace_back(pop[i], static_cast<Instant>(100 + i % 7));
        break;
      default:
        out.emplace_back(pop[i], static_cast<Instant>(i % 5),
                         static_cast<Instant>(i % 5 + 10));
        break;
    }
  }
  return out;
}

void ExpectBitIdenticalRoundTrip(const std::vector<STObject>& objs) {
  const ColumnarBatch batch = ColumnarBatch::FromObjects(objs);
  ASSERT_EQ(batch.rows(), objs.size());
  auto back = batch.ToObjects();
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const std::vector<STObject>& got = back.ValueOrDie();
  ASSERT_EQ(got.size(), objs.size());
  for (size_t i = 0; i < objs.size(); ++i) {
    ASSERT_EQ(STBytes(got[i]), STBytes(objs[i])) << "row " << i;
    // The envelope slab must carry the object's envelope bit-exactly —
    // FilterEnvelopesBatch reads it in place of obj.envelope().
    EXPECT_EQ(batch.envelopes().min_x[i], objs[i].envelope().min_x())
        << "row " << i;
    EXPECT_EQ(batch.envelopes().Get(i).IsEmpty(), objs[i].envelope().IsEmpty())
        << "row " << i;
  }
}

// ---------------------------------------------------------------------------
// Round-trip bit-identity
// ---------------------------------------------------------------------------

TEST(ColumnarBatchTest, RoundTripsFuzzCorpusBitIdentically) {
  ExpectBitIdenticalRoundTrip(
      MakeObjects(RandomPopulation(/*seed=*/9001, 150)));
}

TEST(ColumnarBatchTest, RoundTripsSentinelsAndDegenerateShapes) {
  const double nan = std::nan("");
  std::vector<STObject> objs;
  // NaN coordinates: the point's envelope is the empty sentinel
  // (ExpandToInclude never fires), and the NaN payload bits must survive.
  objs.emplace_back(Geometry::MakePoint({nan, 7.0}));
  objs.emplace_back(Geometry::MakePoint({nan, nan}), Instant{42});
  objs.emplace_back(Geometry::MakePoint({3.0, nan}), Instant{-5}, Instant{5});
  // Signed zero and extreme magnitudes.
  objs.emplace_back(Geometry::MakePoint({-0.0, 0.0}));
  objs.emplace_back(Geometry::MakePoint({1e308, -1e308}));
  // Degenerate-but-accepted shapes: a hairline box and a two-vertex line.
  objs.emplace_back(Geometry::MakeBox(Envelope(5, 5, 5 + 1e-12, 5 + 1e-12)));
  auto line = Geometry::MakeLineString({{0, 0}, {0, 0 + 1e-300}});
  if (line.ok()) objs.emplace_back(line.ValueOrDie(), Instant{0});
  // A NaN vertex inside a multipoint (non-point row with NaN slab data).
  auto mp = Geometry::MakeMultiPoint({{1, 2}, {nan, 4}});
  if (mp.ok()) objs.emplace_back(mp.ValueOrDie());
  ASSERT_TRUE(objs[0].envelope().IsEmpty());
  ExpectBitIdenticalRoundTrip(objs);
}

TEST(ColumnarBatchTest, AllPointsFastPathAndPointDetection) {
  std::vector<STObject> points;
  for (int i = 0; i < 10; ++i) {
    points.emplace_back(Geometry::MakePoint({double(i), double(-i)}),
                        Instant{i});
  }
  ColumnarBatch batch = ColumnarBatch::FromObjects(points);
  EXPECT_TRUE(batch.AllPoints());
  EXPECT_EQ(batch.non_point_rows(), 0u);
  EXPECT_EQ(batch.x()[3], 3.0);
  EXPECT_EQ(batch.y()[3], -3.0);
  EXPECT_EQ(batch.t_start()[3], 3);
  batch.Append(STObject(Geometry::MakeBox(Envelope(0, 0, 1, 1))));
  EXPECT_FALSE(batch.AllPoints());
  EXPECT_EQ(batch.non_point_rows(), 1u);
  EXPECT_GT(batch.MemoryBytes(), 0u);
}

TEST(ColumnarBatchTest, AppendPointMatchesObjectAppendBitIdentically) {
  const double nan = std::nan("");
  const std::vector<std::pair<double, double>> coords = {
      {1.5, -2.5}, {nan, 4.0}, {-0.0, 1e17}};
  ColumnarBatch via_point;
  ColumnarBatch via_object;
  for (const auto& [x, y] : coords) {
    via_point.AppendPoint(x, y, /*has_time=*/true, 7, 9);
    via_object.Append(STObject(Geometry::MakePoint({x, y}), 7, 9));
  }
  auto a = via_point.ToObjects();
  auto b = via_object.ToObjects();
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < coords.size(); ++i) {
    EXPECT_EQ(STBytes(a.ValueOrDie()[i]), STBytes(b.ValueOrDie()[i]));
    EXPECT_EQ(via_point.envelopes().Get(i).IsEmpty(),
              via_object.envelopes().Get(i).IsEmpty());
  }
}

// ---------------------------------------------------------------------------
// Slab serde
// ---------------------------------------------------------------------------

TEST(ColumnarSerdeTest, SlabRoundTripMatchesPerObjectSerde) {
  const std::vector<STObject> objs =
      MakeObjects(RandomPopulation(/*seed=*/777, 80));
  const ColumnarBatch batch = ColumnarBatch::FromObjects(objs);

  BinaryWriter w;
  WriteColumnarBatch(&w, batch);
  BinaryReader r(w.buffer());
  auto read = ReadColumnarBatch(&r);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(r.AtEnd());

  auto got = read.ValueOrDie().ToObjects();
  ASSERT_TRUE(got.ok());
  for (size_t i = 0; i < objs.size(); ++i) {
    // Identical to the object and therefore to what the per-object wire
    // format (WriteSTObject/ReadSTObject) would have reproduced.
    ASSERT_EQ(STBytes(got.ValueOrDie()[i]), STBytes(objs[i])) << "row " << i;
  }
}

TEST(ColumnarSerdeTest, RejectsTruncatedAndCorruptBytes) {
  const std::vector<STObject> objs =
      MakeObjects(RandomPopulation(/*seed=*/31337, 40));
  BinaryWriter w;
  WriteColumnarBatch(&w, ColumnarBatch::FromObjects(objs));
  const std::vector<char>& bytes = w.buffer();

  // Truncations at various depths must all surface as clean errors.
  for (size_t keep : {size_t{0}, size_t{3}, size_t{9}, bytes.size() / 2,
                      bytes.size() - 1}) {
    BinaryReader r(bytes.data(), keep);
    EXPECT_FALSE(ReadColumnarBatch(&r).ok()) << "keep=" << keep;
  }
  // A corrupt geometry-type tag must be rejected by validation, not fed to
  // the row reconstructor.
  std::vector<char> corrupt = bytes;
  // magic(4) + version(1) + rows(8) + non_point(8) + row_ids slab header(8)
  // + row_ids data + geo_type slab header(8) puts the first tag at:
  const size_t first_tag = 4 + 1 + 8 + 8 + 8 + 4 * objs.size() + 8;
  ASSERT_LT(first_tag, corrupt.size());
  corrupt[first_tag] = 0x7f;
  BinaryReader r2(corrupt);
  EXPECT_FALSE(ReadColumnarBatch(&r2).ok());
}

// ---------------------------------------------------------------------------
// Kernel differentials
// ---------------------------------------------------------------------------

TEST(ColumnarKernelsTest, PointSpecializationsMatchGenericPreparedCalls) {
  const std::vector<Geometry> pop = RandomPopulation(/*seed=*/515, 60);
  Rng rng(516);
  std::vector<Coordinate> probes;
  for (int i = 0; i < 40; ++i) probes.push_back(test::RandomCoord(&rng));
  probes.push_back({std::nan(""), 50.0});
  probes.push_back({std::nan(""), std::nan("")});
  for (const Geometry& g : pop) {
    const PreparedGeometry prep(g);
    for (const Coordinate& p : probes) {
      const Geometry pt = Geometry::MakePoint(p);
      ASSERT_EQ(prep.IntersectsPoint(p), prep.IntersectedBy(pt)) << g.ToWkt();
      ASSERT_EQ(prep.ContainsPoint(p), prep.Contains(pt)) << g.ToWkt();
      ASSERT_EQ(prep.ContainedByPoint(p), prep.ContainedBy(pt)) << g.ToWkt();
      const double got = prep.DistanceFromPoint(p);
      const double want = prep.DistanceFrom(pt);
      // Bit comparison so NaN==NaN and -0.0 != 0.0 are handled exactly.
      ASSERT_EQ(std::memcmp(&got, &want, sizeof(double)), 0) << g.ToWkt();
    }
  }
}

TEST(ColumnarKernelsTest, TemporalOverlapBatchMatchesIntervalOps) {
  Rng rng(99);
  const size_t n = 200;
  std::vector<int64_t> ts(n), te(n);
  std::vector<uint8_t> ht(n);
  for (size_t i = 0; i < n; ++i) {
    ht[i] = static_cast<uint8_t>(rng.UniformInt(0, 1));
    const int64_t s = rng.UniformInt(-20, 20);
    ts[i] = ht[i] ? s : 0;
    te[i] = ht[i] ? s + rng.UniformInt(0, 15) : 0;
  }
  std::vector<uint32_t> cand(n);
  for (size_t i = 0; i < n; ++i) cand[i] = static_cast<uint32_t>(i);
  std::vector<uint32_t> out(n);

  for (const bool query_has_time : {false, true}) {
    const int64_t qs = -3;
    const int64_t qe = 11;
    const TemporalInterval query(qs, qe);
    for (const TemporalPredicate pred :
         {TemporalPredicate::kIntersects, TemporalPredicate::kContains,
          TemporalPredicate::kContainedBy}) {
      for (const bool query_is_left : {true, false}) {
        const size_t kept =
            TemporalOverlapBatch(ts.data(), te.data(), ht.data(),
                                 query_has_time, qs, qe, pred, query_is_left,
                                 cand.data(), n, out.data());
        std::vector<uint32_t> expect;
        for (size_t i = 0; i < n; ++i) {
          // Formulas (1)-(3): both undefined, or both defined and the
          // temporal predicate holds in the stated operand orientation.
          bool hit;
          if (!ht[i] || !query_has_time) {
            hit = !ht[i] && !query_has_time;
          } else {
            const TemporalInterval row(ts[i], te[i]);
            const TemporalInterval& lhs = query_is_left ? query : row;
            const TemporalInterval& rhs = query_is_left ? row : query;
            switch (pred) {
              case TemporalPredicate::kIntersects:
                hit = lhs.Intersects(rhs);
                break;
              case TemporalPredicate::kContains:
                hit = lhs.Contains(rhs);
                break;
              default:
                hit = rhs.Contains(lhs);
                break;
            }
          }
          if (hit) expect.push_back(static_cast<uint32_t>(i));
        }
        ASSERT_EQ(std::vector<uint32_t>(out.begin(), out.begin() + kept),
                  expect)
            << "pred=" << static_cast<int>(pred) << " qleft=" << query_is_left
            << " qtime=" << query_has_time;
      }
    }
  }
}

TEST(ColumnarRefineTest, MatchesBoundPredicateOnMixedBatches) {
  const std::vector<Geometry> pop = RandomPopulation(/*seed=*/246810, 90);
  const std::vector<STObject> objs = MakeObjects(pop);
  const ColumnarBatch batch = ColumnarBatch::FromObjects(objs);
  ASSERT_FALSE(batch.AllPoints());

  const std::vector<JoinPredicate> preds = {
      JoinPredicate::Intersects(),
      JoinPredicate::Contains(),
      JoinPredicate::ContainedBy(),
      JoinPredicate::WithinDistance(3.5),
  };
  std::vector<uint32_t> scratch;
  for (const JoinPredicate& pred : preds) {
    ASSERT_TRUE(columnar_refine::Refinable(pred));
    for (size_t f = 0; f < objs.size(); f += 7) {
      const STObject& fixed = objs[f];
      const PreparedGeometry prep(fixed.geo());
      for (const bool cand_left : {true, false}) {
        BoundPredicate bound(pred, fixed,
                             cand_left ? BoundPredicate::Side::kCandidateLeft
                                       : BoundPredicate::Side::kCandidateRight);
        std::vector<uint32_t> expect;
        std::vector<uint32_t> cand;
        for (uint32_t j = 0; j < objs.size(); ++j) {
          cand.push_back(j);
          if (bound.Eval(objs[j])) expect.push_back(j);
        }
        columnar_refine::Stats stats;
        columnar_refine::RefineCandidates(
            batch, pred, fixed, prep, cand_left, &cand,
            [&](uint32_t j) -> const STObject& { return objs[j]; }, &stats,
            &scratch);
        ASSERT_EQ(cand, expect)
            << PredicateName(pred.type) << " cand_left=" << cand_left
            << " fixed=" << f;
        EXPECT_EQ(stats.kernel_rows + stats.fallback_rows, objs.size());
        EXPECT_GT(stats.kernel_rows, 0u);   // the corpus contains points
        EXPECT_GT(stats.fallback_rows, 0u); // ...and non-points
      }
    }
  }
}

TEST(ColumnarRefineTest, AllPointsBatchStaysOnKernels) {
  Rng rng(4242);
  std::vector<STObject> points;
  for (size_t i = 0; i < 120; ++i) {
    const Coordinate c = test::RandomCoord(&rng);
    switch (i % 3) {
      case 0:
        points.emplace_back(Geometry::MakePoint(c));
        break;
      case 1:
        points.emplace_back(Geometry::MakePoint(c), Instant(i % 11));
        break;
      default:
        points.emplace_back(Geometry::MakePoint(c), Instant(0),
                            Instant(i % 13));
        break;
    }
  }
  points.emplace_back(Geometry::MakePoint({std::nan(""), 1.0}), Instant{3});
  const ColumnarBatch batch = ColumnarBatch::FromObjects(points);
  ASSERT_TRUE(batch.AllPoints());

  const STObject fixed(Geometry::MakeBox(Envelope(20, 20, 70, 70)),
                       Instant{2}, Instant{9});
  const PreparedGeometry prep(fixed.geo());
  std::vector<uint32_t> scratch;
  for (const JoinPredicate& pred :
       {JoinPredicate::Intersects(), JoinPredicate::Contains(),
        JoinPredicate::ContainedBy(), JoinPredicate::WithinDistance(12.0)}) {
    for (const bool cand_left : {true, false}) {
      BoundPredicate bound(pred, fixed,
                           cand_left ? BoundPredicate::Side::kCandidateLeft
                                     : BoundPredicate::Side::kCandidateRight);
      std::vector<uint32_t> expect;
      std::vector<uint32_t> cand;
      for (uint32_t j = 0; j < points.size(); ++j) {
        cand.push_back(j);
        if (bound.Eval(points[j])) expect.push_back(j);
      }
      columnar_refine::Stats stats;
      columnar_refine::RefineCandidates(
          batch, pred, fixed, prep, cand_left, &cand,
          [&](uint32_t j) -> const STObject& { return points[j]; }, &stats,
          &scratch);
      ASSERT_EQ(cand, expect) << PredicateName(pred.type);
      EXPECT_EQ(stats.kernel_rows, points.size());
      EXPECT_EQ(stats.fallback_rows, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end: filter kill-switch differential, checkpoint slabs, CSV ingest
// ---------------------------------------------------------------------------

class ColumnarEndToEndTest : public ::testing::Test {
 protected:
  void TearDown() override { columnar::SetEnabled(true); }
};

TEST_F(ColumnarEndToEndTest, FilterAgreesWithKillSwitchOff) {
  SkewedPointsOptions gen;
  gen.count = 1500;
  gen.universe = Envelope(0, 0, 100, 100);
  gen.seed = 61;
  auto points = GenerateSkewedPoints(gen);
  Rng rng(62);
  std::vector<std::pair<STObject, int64_t>> data;
  for (size_t i = 0; i < points.size(); ++i) {
    STObject obj = (i % 2 == 0)
                       ? STObject(points[i].geo(), rng.UniformInt(0, 1000))
                       : points[i];
    data.emplace_back(std::move(obj), static_cast<int64_t>(i));
  }
  // A couple of non-point rows force the mixed-batch merge path.
  data.emplace_back(STObject(Geometry::MakeBox(Envelope(30, 30, 40, 40))),
                    9001);
  data.emplace_back(
      STObject(Geometry::MakeBox(Envelope(50, 20, 55, 26)), Instant{500}),
      9002);

  Context ctx(4);
  const STObject query(Geometry::MakeBox(Envelope(20, 20, 60, 55)),
                       Instant{100}, Instant{700});
  const uint64_t rows_before = GlobalColumnarMetrics().rows->Value();
  for (const JoinPredicate& pred :
       {JoinPredicate::Intersects(), JoinPredicate::Contains(),
        JoinPredicate::ContainedBy(), JoinPredicate::WithinDistance(7.0)}) {
    columnar::SetEnabled(true);
    auto on = SpatialRDD<int64_t>::FromVector(&ctx, data, 4)
                  .Filter(query, pred)
                  .Collect();
    columnar::SetEnabled(false);
    auto off = SpatialRDD<int64_t>::FromVector(&ctx, data, 4)
                   .Filter(query, pred)
                   .Collect();
    ASSERT_EQ(on.size(), off.size()) << PredicateName(pred.type);
    for (size_t i = 0; i < on.size(); ++i) {
      ASSERT_EQ(on[i].second, off[i].second)
          << PredicateName(pred.type) << " row " << i;
      ASSERT_EQ(STBytes(on[i].first), STBytes(off[i].first))
          << PredicateName(pred.type) << " row " << i;
    }
  }
  // The enabled runs must actually have gone through the kernels.
  EXPECT_GT(GlobalColumnarMetrics().rows->Value(), rows_before);
}

TEST_F(ColumnarEndToEndTest, CheckpointColumnarPartsRoundTrip) {
  using Element = std::pair<STObject, int64_t>;
  const std::vector<Geometry> pop = RandomPopulation(/*seed=*/135, 60);
  const std::vector<STObject> objs = MakeObjects(pop);
  std::vector<Element> data;
  for (size_t i = 0; i < objs.size(); ++i) {
    data.emplace_back(objs[i], static_cast<int64_t>(i));
  }
  Context ctx(2);
  const std::string dir = test::UniqueTempPath("columnar_ckpt");
  ASSERT_EQ(std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str()), 0);

  columnar::SetEnabled(true);
  ASSERT_TRUE(Checkpoint(MakeRDD(&ctx, data, 3), dir).ok());
  auto loaded = LoadCheckpoint<Element>(&ctx, dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const std::vector<Element> got = loaded.ValueOrDie().Collect();
  ASSERT_EQ(got.size(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(got[i].second, data[i].second);
    ASSERT_EQ(STBytes(got[i].first), STBytes(data[i].first)) << "row " << i;
  }

  // The same directory read with the kill-switch off decodes identically —
  // the format is self-describing via the part magic.
  columnar::SetEnabled(false);
  auto loaded_off = LoadCheckpoint<Element>(&ctx, dir);
  ASSERT_TRUE(loaded_off.ok());
  EXPECT_EQ(loaded_off.ValueOrDie().Collect().size(), data.size());
  std::system(("rm -rf " + dir).c_str());
}

TEST(CsvColumnarTest, ParsePointWktAgreesWithFullParser) {
  const std::vector<std::string> accepted = {
      "POINT (3 4)", "POINT(3 4)", "  point ( 1.5 -2e3 )  ",
      "POINT (0.1 100000000000000000001)"};
  for (const std::string& wkt : accepted) {
    double x = 0.0, y = 0.0;
    ASSERT_TRUE(ParsePointWkt(wkt, &x, &y)) << wkt;
    auto full = ParseWkt(wkt);
    ASSERT_TRUE(full.ok()) << wkt;
    const Coordinate& c = full.ValueOrDie().AsPoint();
    EXPECT_EQ(x, c.x) << wkt;
    EXPECT_EQ(y, c.y) << wkt;
  }
  const std::vector<std::string> rejected = {
      "LINESTRING (0 0, 1 1)", "POINT (1 2) x", "POINT (1)", "POINT",
      "POLYGON ((0 0, 1 0, 1 1, 0 0))", "", "POINT (a b)"};
  for (const std::string& wkt : rejected) {
    double x = 0.0, y = 0.0;
    EXPECT_FALSE(ParsePointWkt(wkt, &x, &y)) << wkt;
  }
}

TEST(CsvColumnarTest, EventsToColumnarBatchMatchesEventsToPairs) {
  std::vector<EventRecord> records;
  for (int i = 0; i < 20; ++i) {
    EventRecord rec;
    rec.id = i;
    rec.category = i % 2 ? "sports" : "politics";
    rec.time = 100 + i;
    rec.wkt = "POINT (" + std::to_string(i) + " " + std::to_string(2 * i) +
              ".5)";
    records.push_back(rec);
  }
  EventRecord poly;
  poly.id = 99;
  poly.category = "culture";
  poly.time = 7;
  poly.wkt = "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))";
  records.push_back(poly);

  auto batch = EventsToColumnarBatch(records);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  auto pairs = EventsToPairs(records);
  ASSERT_TRUE(pairs.ok());
  auto objs = batch.ValueOrDie().ToObjects();
  ASSERT_TRUE(objs.ok());
  ASSERT_EQ(objs.ValueOrDie().size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    ASSERT_EQ(STBytes(objs.ValueOrDie()[i]),
              STBytes(pairs.ValueOrDie()[i].first))
        << "row " << i;
  }
  EXPECT_EQ(batch.ValueOrDie().non_point_rows(), 1u);

  // File round trip with payload columns.
  const std::string path = test::UniqueTempPath("columnar_events.csv");
  ASSERT_TRUE(WriteEventsCsv(path, records).ok());
  auto cols = ReadEventsCsvColumnar(path);
  ASSERT_TRUE(cols.ok()) << cols.status().ToString();
  ASSERT_EQ(cols.ValueOrDie().batch.rows(), records.size());
  EXPECT_EQ(cols.ValueOrDie().ids[3], 3);
  EXPECT_EQ(cols.ValueOrDie().categories[1], "sports");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace stark
