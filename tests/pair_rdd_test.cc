// Tests for the key-value engine operations (PairRDDFunctions analogue)
// and for RDD checkpointing.
#include <cstdio>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "test_util.h"

#include "core/st_serde.h"
#include "engine/checkpoint.h"
#include "engine/pair_rdd.h"
#include "spatial_rdd/value_serde.h"

namespace stark {
namespace {

class PairRddTest : public ::testing::Test {
 protected:
  Context ctx_{4};
};

TEST_F(PairRddTest, ReduceByKeySums) {
  std::vector<std::pair<std::string, int64_t>> data;
  for (int i = 0; i < 100; ++i) {
    data.emplace_back(i % 2 == 0 ? "even" : "odd", i);
  }
  auto rdd = MakeRDD(&ctx_, data, 5);
  auto reduced =
      ReduceByKey(rdd, [](int64_t a, int64_t b) { return a + b; });
  std::map<std::string, int64_t> result;
  for (auto& [k, v] : reduced.Collect()) result[k] = v;
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result["even"], 2450);  // 0+2+...+98
  EXPECT_EQ(result["odd"], 2500);   // 1+3+...+99
}

TEST_F(PairRddTest, ReduceByKeyEachKeyOnce) {
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < 1000; ++i) data.emplace_back(i % 37, 1);
  auto reduced = ReduceByKey(MakeRDD(&ctx_, data, 7),
                             [](int64_t a, int64_t b) { return a + b; }, 4);
  auto out = reduced.Collect();
  EXPECT_EQ(out.size(), 37u);
  EXPECT_EQ(reduced.NumPartitions(), 4u);
}

TEST_F(PairRddTest, GroupByKeyCollectsAllValues) {
  std::vector<std::pair<std::string, int64_t>> data = {
      {"a", 1}, {"b", 2}, {"a", 3}, {"c", 4}, {"a", 5}};
  auto grouped = GroupByKey(MakeRDD(&ctx_, data, 3));
  std::map<std::string, size_t> sizes;
  for (auto& [k, vs] : grouped.Collect()) sizes[k] = vs.size();
  EXPECT_EQ(sizes["a"], 3u);
  EXPECT_EQ(sizes["b"], 1u);
  EXPECT_EQ(sizes["c"], 1u);
}

TEST_F(PairRddTest, CountByKey) {
  std::vector<std::pair<std::string, int64_t>> data;
  for (int i = 0; i < 60; ++i) {
    data.emplace_back(std::to_string(i % 3), i);
  }
  auto counts = CountByKey(MakeRDD(&ctx_, data, 4));
  EXPECT_EQ(counts.at("0"), 20u);
  EXPECT_EQ(counts.at("1"), 20u);
  EXPECT_EQ(counts.at("2"), 20u);
}

TEST_F(PairRddTest, DistinctRemovesDuplicates) {
  std::vector<int64_t> data;
  for (int64_t i = 0; i < 500; ++i) data.push_back(i % 50);
  auto distinct = Distinct(MakeRDD(&ctx_, data, 6));
  auto out = distinct.Collect();
  EXPECT_EQ(out.size(), 50u);
  std::sort(out.begin(), out.end());
  for (int64_t i = 0; i < 50; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i);
}

TEST_F(PairRddTest, SortByOrdersGlobally) {
  std::vector<int64_t> data = {5, 3, 9, 1, 7, 2, 8, 0, 6, 4};
  auto sorted = SortBy(MakeRDD(&ctx_, data, 3),
                       [](const int64_t& x) { return -x; }, 2);
  auto out = sorted.Collect();
  ASSERT_EQ(out.size(), 10u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int64_t>(9 - i));  // descending by -x
  }
  EXPECT_EQ(sorted.NumPartitions(), 2u);
}

TEST_F(PairRddTest, CheckpointRoundTrip) {
  const std::string dir = test::UniqueTempPath("stark_ckpt");
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  std::vector<std::pair<int64_t, std::string>> data;
  for (int64_t i = 0; i < 100; ++i) {
    data.emplace_back(i, "value-" + std::to_string(i));
  }
  auto rdd = MakeRDD(&ctx_, data, 5);
  ASSERT_TRUE(Checkpoint(rdd, dir).ok());

  auto loaded = LoadCheckpoint<std::pair<int64_t, std::string>>(&ctx_, dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie().NumPartitions(), 5u);
  EXPECT_EQ(loaded.ValueOrDie().Collect(), rdd.Collect());
}

TEST_F(PairRddTest, CheckpointSpatialData) {
  // Figure 2's "store to HDFS" step: persist spatially partitioned pairs.
  const std::string dir = test::UniqueTempPath("stark_ckpt_spatial");
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  std::vector<std::pair<STObject, int64_t>> data;
  for (int64_t i = 0; i < 50; ++i) {
    data.emplace_back(
        STObject(Geometry::MakePoint(static_cast<double>(i), 1.0), i), i);
  }
  auto rdd = MakeRDD(&ctx_, data, 4);
  ASSERT_TRUE(Checkpoint(rdd, dir).ok());
  auto loaded = LoadCheckpoint<std::pair<STObject, int64_t>>(&ctx_, dir);
  ASSERT_TRUE(loaded.ok());
  auto out = loaded.ValueOrDie().Collect();
  ASSERT_EQ(out.size(), data.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].first, data[i].first);
    EXPECT_EQ(out[i].second, data[i].second);
  }
}

TEST_F(PairRddTest, LoadCheckpointMissingDirFails) {
  auto loaded = LoadCheckpoint<int64_t>(&ctx_, "/no/such/ckpt");
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace stark
