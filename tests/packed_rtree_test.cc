// Differential testing of the packed (flat SoA) R-tree against the classic
// pointer-based RTree and a brute-force oracle: same candidates for window
// queries, same kNN distances, same depth/bounds — across orders, random
// mixed-geometry populations, duplicates, and degenerate sizes. Also unit
// tests of the branchless FilterEnvelopesBatch kernel the leaf scans use.
#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/envelope.h"
#include "geometry/geometry.h"
#include "geometry/kernels.h"
#include "geometry/predicates.h"
#include "index/packed_rtree.h"
#include "index/rtree.h"
#include "test_util.h"

namespace stark {
namespace {

using test::RandomEnvelope;
using test::RandomPopulation;

std::vector<std::pair<Envelope, size_t>> EntriesFor(
    const std::vector<Geometry>& pop) {
  std::vector<std::pair<Envelope, size_t>> entries;
  entries.reserve(pop.size());
  for (size_t id = 0; id < pop.size(); ++id) {
    entries.emplace_back(pop[id].envelope(), id);
  }
  return entries;
}

std::multiset<size_t> BruteForceCandidates(
    const std::vector<std::pair<Envelope, size_t>>& entries,
    const Envelope& query) {
  std::multiset<size_t> out;
  for (const auto& [env, id] : entries) {
    if (query.Intersects(env)) out.insert(id);
  }
  return out;
}

template <typename Tree>
std::multiset<size_t> TreeCandidates(const Tree& tree, const Envelope& query) {
  std::multiset<size_t> out;
  tree.Query(query, [&out](const Envelope&, const size_t& id) {
    out.insert(id);
  });
  return out;
}

// ---------------------------------------------------------------------------
// Window queries: packed vs classic vs brute force
// ---------------------------------------------------------------------------

TEST(PackedRTreeTest, QueryMatchesClassicAndBruteForceAcrossOrders) {
  const std::vector<Geometry> pop = RandomPopulation(/*seed=*/20260807, 400);
  const auto entries = EntriesFor(pop);

  for (size_t order : {2u, 3u, 5u, 10u, 32u}) {
    RTree<size_t> classic(order);
    classic.BulkLoad(entries);
    PackedRTree<size_t> packed(order, entries);
    ASSERT_EQ(packed.size(), pop.size());
    ASSERT_EQ(packed.Depth(), classic.Depth()) << "order " << order;
    ASSERT_EQ(packed.bounds().min_x(), classic.bounds().min_x());
    ASSERT_EQ(packed.bounds().max_y(), classic.bounds().max_y());

    Rng rng(1000 + order);
    size_t nonempty = 0;
    for (int q = 0; q < 150; ++q) {
      const Envelope query = RandomEnvelope(&rng, 25.0);
      const std::multiset<size_t> expected =
          BruteForceCandidates(entries, query);
      ASSERT_EQ(TreeCandidates(packed, query), expected)
          << "order " << order << " query " << q;
      ASSERT_EQ(TreeCandidates(classic, query), expected)
          << "order " << order << " query " << q;
      if (!expected.empty()) ++nonempty;
    }
    EXPECT_GT(nonempty, 100u) << "order " << order;
  }
}

TEST(PackedRTreeTest, QueryCandidatesAndForEachCoverEveryEntry) {
  const std::vector<Geometry> pop = RandomPopulation(/*seed=*/77, 123);
  PackedRTree<size_t> packed(8, EntriesFor(pop));

  // The universe query sees everything, as does ForEach.
  const Envelope all(-1e9, -1e9, 1e9, 1e9);
  EXPECT_EQ(packed.QueryCandidates(all).size(), pop.size());

  std::multiset<size_t> seen;
  packed.ForEach([&seen, &pop](const Envelope& env, const size_t& id) {
    seen.insert(id);
    EXPECT_TRUE(env == pop[id].envelope()) << id;
  });
  EXPECT_EQ(seen.size(), pop.size());
}

TEST(PackedRTreeTest, EmptyAndTinyTrees) {
  PackedRTree<size_t> empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.Depth(), 1u);
  EXPECT_TRUE(empty.bounds().IsEmpty());
  EXPECT_TRUE(empty.QueryCandidates(Envelope(0, 0, 1, 1)).empty());
  EXPECT_TRUE(empty.Knn({0, 0}, 3, [](const size_t&) { return 0.0; }).empty());

  // One entry: root is a leaf.
  std::vector<std::pair<Envelope, size_t>> one;
  one.emplace_back(Envelope(1, 1, 2, 2), 42u);
  PackedRTree<size_t> single(4, one);
  EXPECT_EQ(single.size(), 1u);
  EXPECT_EQ(single.Depth(), 1u);
  EXPECT_EQ(single.num_leaf_nodes(), 1u);
  auto hits = single.QueryCandidates(Envelope(0, 0, 3, 3));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(*hits[0], 42u);
  EXPECT_TRUE(single.QueryCandidates(Envelope(5, 5, 6, 6)).empty());
}

TEST(PackedRTreeTest, DuplicateEnvelopesAllReported) {
  std::vector<std::pair<Envelope, size_t>> entries;
  const Envelope dup(3, 3, 4, 4);
  for (size_t i = 0; i < 37; ++i) entries.emplace_back(dup, i);
  PackedRTree<size_t> packed(4, entries);
  const auto got = TreeCandidates(packed, Envelope(0, 0, 10, 10));
  EXPECT_EQ(got.size(), 37u);
  for (size_t i = 0; i < 37; ++i) EXPECT_EQ(got.count(i), 1u) << i;
}

// ---------------------------------------------------------------------------
// kNN: packed vs classic vs brute force
// ---------------------------------------------------------------------------

TEST(PackedRTreeTest, KnnMatchesClassicAndBruteForce) {
  const std::vector<Geometry> pop = RandomPopulation(/*seed=*/909, 250);
  const auto entries = EntriesFor(pop);
  RTree<size_t> classic(7);
  classic.BulkLoad(entries);
  PackedRTree<size_t> packed(7, entries);

  Rng rng(606);
  for (int q = 0; q < 60; ++q) {
    const Coordinate c{rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
    const Geometry probe = Geometry::MakePoint(c);
    const size_t k = 1 + static_cast<size_t>(q % 12);

    auto packed_hits = packed.Knn(c, k, [&](const size_t& id) {
      return Distance(pop[id], probe);
    });
    auto classic_hits = classic.Knn(c, k, [&](const size_t& id) {
      return Distance(pop[id], probe);
    });

    // Brute-force k smallest exact distances.
    std::vector<double> all;
    all.reserve(pop.size());
    for (const Geometry& g : pop) all.push_back(Distance(g, probe));
    std::sort(all.begin(), all.end());
    all.resize(std::min(k, all.size()));

    ASSERT_EQ(packed_hits.size(), all.size()) << "query " << q;
    ASSERT_EQ(classic_hits.size(), all.size()) << "query " << q;
    for (size_t i = 0; i < all.size(); ++i) {
      // Ties may order arbitrarily, but the distance sequence is unique.
      EXPECT_DOUBLE_EQ(packed_hits[i].first, all[i]) << "query " << q;
      EXPECT_DOUBLE_EQ(classic_hits[i].first, all[i]) << "query " << q;
    }
  }
}

// ---------------------------------------------------------------------------
// Freeze(): classic incremental tree -> packed tree
// ---------------------------------------------------------------------------

TEST(PackedRTreeTest, FreezeOfIncrementalTreeAnswersIdentically) {
  const std::vector<Geometry> pop = RandomPopulation(/*seed=*/313, 300);
  const auto entries = EntriesFor(pop);
  RTree<size_t> incremental(5);
  for (const auto& [env, id] : entries) incremental.Insert(env, id);
  ASSERT_TRUE(incremental.CheckInvariants());
  const PackedRTree<size_t> frozen = incremental.Freeze();
  ASSERT_EQ(frozen.size(), incremental.size());

  Rng rng(515);
  for (int q = 0; q < 100; ++q) {
    const Envelope query = RandomEnvelope(&rng, 30.0);
    ASSERT_EQ(TreeCandidates(frozen, query),
              BruteForceCandidates(entries, query))
        << "query " << q;
  }
}

// ---------------------------------------------------------------------------
// FilterEnvelopesBatch kernel
// ---------------------------------------------------------------------------

TEST(PackedRTreeTest, FilterEnvelopesBatchMatchesEnvelopeIntersects) {
  Rng rng(2468);
  EnvelopeSoA soa;
  std::vector<Envelope> envs;
  for (int i = 0; i < 500; ++i) {
    const Envelope e = RandomEnvelope(&rng, 15.0);
    envs.push_back(e);
    soa.PushBack(e);
  }
  for (int q = 0; q < 200; ++q) {
    const Envelope query = RandomEnvelope(&rng, 40.0);
    std::vector<uint32_t> got;
    FilterEnvelopesBatch(soa, query, &got);
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < envs.size(); ++i) {
      if (query.Intersects(envs[i])) expected.push_back(i);
    }
    ASSERT_EQ(got, expected) << "query " << q;
  }
}

TEST(PackedRTreeTest, FilterEnvelopesBatchHandlesEmptyAndNaN) {
  // The contract is consistency with Envelope::Intersects, including for
  // the empty sentinel (never matches: its +inf/-inf bounds fail the
  // comparisons) and all-NaN boxes (every comparison is false, so the
  // negated form matches — same answer Envelope::Intersects gives).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<Envelope> envs = {
      Envelope(0, 0, 1, 1),
      Envelope(),  // empty sentinel
      Envelope(nan, nan, nan, nan),
  };
  EnvelopeSoA soa;
  for (const Envelope& e : envs) soa.PushBack(e);

  std::vector<uint32_t> out;
  // Empty query intersects nothing (matches Envelope::Intersects).
  EXPECT_EQ(FilterEnvelopesBatch(soa, Envelope(), &out), 0u);
  out.clear();
  const Envelope query(-1, -1, 2, 2);
  const size_t n = FilterEnvelopesBatch(soa, query, &out);
  std::vector<uint32_t> expected;
  for (uint32_t i = 0; i < envs.size(); ++i) {
    // Element-wise comparison form, as the kernel computes it (the
    // Envelope::Intersects entry point short-circuits empties first, which
    // the empty sentinel's ordering makes equivalent).
    const Envelope& e = envs[i];
    const bool hit = !(e.min_x() > query.max_x()) &&
                     !(e.max_x() < query.min_x()) &&
                     !(e.min_y() > query.max_y()) &&
                     !(e.max_y() < query.min_y());
    if (hit) expected.push_back(i);
  }
  ASSERT_EQ(n, expected.size());
  EXPECT_EQ(out, expected);
  // The real (non-NaN) envelopes agree with Envelope::Intersects exactly.
  EXPECT_TRUE(query.Intersects(envs[0]));
  EXPECT_FALSE(query.Intersects(envs[1]));
  EXPECT_EQ(out[0], 0u);
}

}  // namespace
}  // namespace stark
