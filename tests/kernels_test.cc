// Tests for the low-level computational geometry kernels.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/kernels.h"

namespace stark {
namespace {

TEST(OrientationTest, BasicTurns) {
  EXPECT_EQ(Orientation({0, 0}, {1, 0}, {1, 1}), 1);   // ccw
  EXPECT_EQ(Orientation({0, 0}, {1, 0}, {1, -1}), -1); // cw
  EXPECT_EQ(Orientation({0, 0}, {1, 0}, {2, 0}), 0);   // collinear
}

TEST(OrientationTest, NearCollinearIsCollinear) {
  EXPECT_EQ(Orientation({0, 0}, {1e6, 0}, {2e6, 1e-9}), 0);
}

TEST(PointOnSegmentTest, EndpointsAndMidpoints) {
  EXPECT_TRUE(PointOnSegment({0, 0}, {0, 0}, {2, 2}));
  EXPECT_TRUE(PointOnSegment({2, 2}, {0, 0}, {2, 2}));
  EXPECT_TRUE(PointOnSegment({1, 1}, {0, 0}, {2, 2}));
  EXPECT_FALSE(PointOnSegment({3, 3}, {0, 0}, {2, 2}));  // beyond the end
  EXPECT_FALSE(PointOnSegment({1, 1.5}, {0, 0}, {2, 2}));
}

TEST(SegmentsIntersectTest, ProperCrossing) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
}

TEST(SegmentsIntersectTest, EndpointTouch) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
}

TEST(SegmentsIntersectTest, CollinearOverlap) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 0}, {1, 0}, {3, 0}));
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 0}, {2, 0}, {3, 0}));
}

TEST(SegmentsIntersectTest, ParallelDisjoint) {
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {2, 0}, {0, 1}, {2, 1}));
}

TEST(SegmentsIntersectTest, TShapeTouch) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 0}, {1, 0}, {1, 1}));
}

Ring UnitSquare() {
  return {{0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}};
}

TEST(LocateInRingTest, InsideOutsideBoundary) {
  const Ring ring = UnitSquare();
  EXPECT_EQ(LocateInRing({2, 2}, ring), RingLocation::kInside);
  EXPECT_EQ(LocateInRing({5, 2}, ring), RingLocation::kOutside);
  EXPECT_EQ(LocateInRing({0, 2}, ring), RingLocation::kBoundary);
  EXPECT_EQ(LocateInRing({0, 0}, ring), RingLocation::kBoundary);
  EXPECT_EQ(LocateInRing({2, 4}, ring), RingLocation::kBoundary);
}

TEST(LocateInRingTest, ConcaveRing) {
  // U-shaped ring: the notch (2,3) is outside.
  const Ring ring = {{0, 0}, {6, 0}, {6, 6}, {4, 6}, {4, 2},
                     {2, 2}, {2, 6}, {0, 6}, {0, 0}};
  EXPECT_EQ(LocateInRing({1, 5}, ring), RingLocation::kInside);
  EXPECT_EQ(LocateInRing({5, 5}, ring), RingLocation::kInside);
  EXPECT_EQ(LocateInRing({3, 5}, ring), RingLocation::kOutside);  // notch
  EXPECT_EQ(LocateInRing({3, 1}, ring), RingLocation::kInside);   // below notch
}

TEST(LocateInRingTest, DegenerateRingIsOutside) {
  EXPECT_EQ(LocateInRing({0, 0}, Ring{{0, 0}, {1, 1}}),
            RingLocation::kOutside);
}

TEST(DistancePointSegmentTest, ProjectionCases) {
  EXPECT_DOUBLE_EQ(DistancePointSegment({0, 1}, {-1, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(DistancePointSegment({3, 0}, {-1, 0}, {1, 0}), 2.0);
  EXPECT_DOUBLE_EQ(DistancePointSegment({0, 0}, {0, 0}, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(DistancePointSegment({1, 1}, {0, 0}, {2, 2}), 0.0);
}

TEST(DistanceSegmentSegmentTest, IntersectingIsZero) {
  EXPECT_EQ(DistanceSegmentSegment({0, 0}, {2, 2}, {0, 2}, {2, 0}), 0.0);
}

TEST(DistanceSegmentSegmentTest, ParallelGap) {
  EXPECT_DOUBLE_EQ(DistanceSegmentSegment({0, 0}, {2, 0}, {0, 3}, {2, 3}),
                   3.0);
}

TEST(DistanceSegmentSegmentTest, EndpointToEndpoint) {
  EXPECT_DOUBLE_EQ(DistanceSegmentSegment({0, 0}, {1, 0}, {4, 4}, {5, 5}),
                   5.0);  // (1,0) to (4,4): 3-4-5 triangle
}

TEST(SignedRingAreaTest, OrientationSign) {
  EXPECT_DOUBLE_EQ(SignedRingArea(UnitSquare()), 16.0);  // ccw positive
  Ring cw = UnitSquare();
  std::reverse(cw.begin(), cw.end());
  EXPECT_DOUBLE_EQ(SignedRingArea(cw), -16.0);
}

TEST(RingCentroidTest, SquareCentroid) {
  const Coordinate c = RingCentroid(UnitSquare());
  EXPECT_DOUBLE_EQ(c.x, 2.0);
  EXPECT_DOUBLE_EQ(c.y, 2.0);
}

TEST(RingCentroidTest, DegenerateFallsBackToVertexMean) {
  const Ring line = {{0, 0}, {2, 0}, {4, 0}, {0, 0}};
  const Coordinate c = RingCentroid(line);
  EXPECT_DOUBLE_EQ(c.x, 2.0);
  EXPECT_DOUBLE_EQ(c.y, 0.0);
}

// Property: SegmentsIntersect is symmetric in both segment order and
// endpoint order, over random segments.
TEST(KernelPropertyTest, SegmentIntersectSymmetry) {
  Rng rng(7);
  for (int trial = 0; trial < 1000; ++trial) {
    auto pt = [&] {
      return Coordinate{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    };
    const Coordinate a = pt(), b = pt(), c = pt(), d = pt();
    const bool r = SegmentsIntersect(a, b, c, d);
    EXPECT_EQ(r, SegmentsIntersect(c, d, a, b));
    EXPECT_EQ(r, SegmentsIntersect(b, a, d, c));
  }
}

// Property: if segments intersect, their distance is 0 and vice versa.
TEST(KernelPropertyTest, DistanceZeroIffIntersect) {
  Rng rng(8);
  for (int trial = 0; trial < 1000; ++trial) {
    auto pt = [&] {
      return Coordinate{rng.Uniform(-3, 3), rng.Uniform(-3, 3)};
    };
    const Coordinate a = pt(), b = pt(), c = pt(), d = pt();
    const double dist = DistanceSegmentSegment(a, b, c, d);
    EXPECT_EQ(dist == 0.0, SegmentsIntersect(a, b, c, d));
  }
}

}  // namespace
}  // namespace stark
