// ServeFault: the serving layer under injected engine faults. With
// `engine.worker.die` (a pool worker killed mid-task) and `engine.task.run`
// (task-level fault/delay) armed while many clients query concurrently and
// an ingester churns epochs, every query must still resolve — correct
// answers or typed errors, never a wedge — and the epoch count must drain
// back to one.
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "serve/catalog.h"
#include "serve/server.h"
#include "stream/event.h"

namespace stark {
namespace serve {
namespace {

stream::StreamEvent PointEvent(int64_t id, double x, double y, int64_t t) {
  return stream::StreamEvent(
      id, "cat", STObject(Geometry::MakePoint({x, y}), t));
}

class ServeFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::DefaultFailPoints().DisarmAll();
    ASSERT_TRUE(catalog_.CreateDataset("events", 8).ok());
    std::vector<stream::StreamEvent> events;
    for (int64_t i = 0; i < 200; ++i) {
      events.push_back(PointEvent(i, static_cast<double>(i % 20),
                                  static_cast<double>(i / 20), i));
    }
    ASSERT_TRUE(catalog_.Ingest("events", std::move(events)).ok());
  }
  void TearDown() override { fault::DefaultFailPoints().DisarmAll(); }

  Catalog catalog_;
};

TEST_F(ServeFaultTest, ConcurrentServingSurvivesWorkerDeathAndTaskFaults) {
  // Same arming the CI fault matrix uses (the matrix also sets
  // STARK_FAILPOINTS, but SetUp's DisarmAll makes in-test arming the one
  // source of truth). `nth` offsets keep the two faults from always
  // colliding on the very same task.
  ASSERT_TRUE(fault::DefaultFailPoints()
                  .ArmFromSpec("engine.worker.die=nth:5;engine.task.run=nth:3")
                  .ok());

  ServerOptions options;
  options.query_threads = 3;
  options.engine_threads = 3;
  options.scheduler.queue_limit = 16;
  Server server(&catalog_, options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::thread ingester([&] {
    int64_t next_id = 10000;
    while (!stop.load()) {
      std::vector<stream::StreamEvent> batch;
      for (int i = 0; i < 5; ++i) {
        const int64_t id = next_id++;
        batch.push_back(PointEvent(id, 5.0, 5.0, id));
      }
      EXPECT_TRUE(catalog_.Ingest("events", std::move(batch)).ok());
    }
  });

  constexpr size_t kClients = 6;
  constexpr int kQueriesPerClient = 10;
  std::atomic<size_t> ok{0}, typed_errors{0}, unexpected{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::unique_ptr<Session> session = server.OpenSession();
      if (c % 3 == 2) session->set_query_class(QueryClass::kBatch);
      for (int i = 0; i < kQueriesPerClient; ++i) {
        QueryResult r = session->Run(
            "hits = FILTER events BY INTERSECTS('POLYGON((2.5 2.5, 8.5 2.5,"
            " 8.5 8.5, 2.5 8.5, 2.5 2.5))', 0, 100000);\nDUMP hits;\n");
        if (r.status.ok()) {
          ok.fetch_add(1);
          EXPECT_FALSE(r.output.empty());
        } else if (r.status.IsResourceExhausted() ||
                   r.status.IsDeadlineExceeded() ||
                   r.status.IsCancelled() ||
                   r.status.code() == StatusCode::kIOError ||
                   r.status.code() == StatusCode::kUnknownError) {
          // Injected faults surface as the engine's typed statuses once
          // retries exhaust; shedding under the fault-slowed queue is
          // equally legitimate.
          typed_errors.fetch_add(1);
        } else {
          unexpected.fetch_add(1);
          ADD_FAILURE() << "unexpected status: " << r.status.ToString();
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop.store(true);
  ingester.join();

  EXPECT_EQ(ok.load() + typed_errors.load(), kClients * kQueriesPerClient);
  EXPECT_EQ(unexpected.load(), 0u);
  // The retry layer must have absorbed most faults: the serving layer
  // stays usable, it does not collapse into all-errors.
  EXPECT_GT(ok.load(), 0u);

  server.Shutdown();

  Result<DatasetRegistry*> registry = catalog_.Registry("events");
  ASSERT_TRUE(registry.ok());
  EXPECT_EQ(registry.ValueOrDie()->LiveEpochs(), 1u);
}

}  // namespace
}  // namespace serve
}  // namespace stark
