// Tests for TemporalInterval and the temporal predicates.
#include <gtest/gtest.h>

#include "temporal/interval.h"

namespace stark {
namespace {

TEST(TemporalIntervalTest, InstantIsDegenerateInterval) {
  TemporalInterval t(42);
  EXPECT_TRUE(t.IsInstant());
  EXPECT_EQ(t.start(), 42);
  EXPECT_EQ(t.end(), 42);
  EXPECT_EQ(t.Length(), 0);
  EXPECT_EQ(t.Center(), 42);
  EXPECT_EQ(t.ToString(), "@42");
}

TEST(TemporalIntervalTest, IntervalBasics) {
  TemporalInterval t(10, 20);
  EXPECT_FALSE(t.IsInstant());
  EXPECT_EQ(t.Length(), 10);
  EXPECT_EQ(t.Center(), 15);
  EXPECT_EQ(t.ToString(), "[10, 20]");
}

TEST(TemporalIntervalTest, IntersectsClosedSemantics) {
  TemporalInterval a(0, 10);
  EXPECT_TRUE(a.Intersects(TemporalInterval(5, 15)));
  EXPECT_TRUE(a.Intersects(TemporalInterval(10, 20)));  // touching end
  EXPECT_FALSE(a.Intersects(TemporalInterval(11, 20)));
  EXPECT_TRUE(a.Intersects(TemporalInterval(3)));       // instant inside
  EXPECT_TRUE(a.Intersects(a));
}

TEST(TemporalIntervalTest, Contains) {
  TemporalInterval a(0, 10);
  EXPECT_TRUE(a.Contains(TemporalInterval(2, 8)));
  EXPECT_TRUE(a.Contains(a));
  EXPECT_TRUE(a.Contains(TemporalInterval(0, 10)));
  EXPECT_FALSE(a.Contains(TemporalInterval(-1, 5)));
  EXPECT_TRUE(a.Contains(Instant{5}));
  EXPECT_FALSE(a.Contains(Instant{11}));
}

TEST(TemporalIntervalTest, Distance) {
  TemporalInterval a(0, 10);
  EXPECT_EQ(a.Distance(TemporalInterval(5, 7)), 0);
  EXPECT_EQ(a.Distance(TemporalInterval(15, 20)), 5);
  EXPECT_EQ(a.Distance(TemporalInterval(-8, -3)), 3);
}

TEST(TemporalIntervalTest, Union) {
  TemporalInterval u = TemporalInterval(0, 5).Union(TemporalInterval(10, 12));
  EXPECT_EQ(u.start(), 0);
  EXPECT_EQ(u.end(), 12);
}

TEST(TemporalPredicateTest, Dispatch) {
  TemporalInterval a(0, 10);
  TemporalInterval b(2, 8);
  EXPECT_TRUE(EvalTemporalPredicate(TemporalPredicate::kIntersects, a, b));
  EXPECT_TRUE(EvalTemporalPredicate(TemporalPredicate::kContains, a, b));
  EXPECT_FALSE(EvalTemporalPredicate(TemporalPredicate::kContains, b, a));
  EXPECT_TRUE(EvalTemporalPredicate(TemporalPredicate::kContainedBy, b, a));
  EXPECT_FALSE(EvalTemporalPredicate(TemporalPredicate::kContainedBy, a, b));
}

}  // namespace
}  // namespace stark
