// Tests for STObject and the combined spatio-temporal predicate semantics
// (the paper's formula (1)-(3)).
#include <gtest/gtest.h>

#include "core/distance.h"
#include "core/stobject.h"

namespace stark {
namespace {

STObject Pt(double x, double y) {
  return STObject(Geometry::MakePoint(x, y));
}

STObject PtAt(double x, double y, Instant t) {
  return STObject(Geometry::MakePoint(x, y), t);
}

STObject Box(double x1, double y1, double x2, double y2) {
  return STObject(Geometry::MakeBox(Envelope(x1, y1, x2, y2)));
}

STObject BoxDuring(double x1, double y1, double x2, double y2, Instant b,
                   Instant e) {
  return STObject(Geometry::MakeBox(Envelope(x1, y1, x2, y2)), b, e);
}

TEST(STObjectTest, FromWktVariants) {
  STObject a = STObject::FromWkt("POINT (1 2)").ValueOrDie();
  EXPECT_FALSE(a.HasTime());
  STObject b = STObject::FromWkt("POINT (1 2)", 99).ValueOrDie();
  ASSERT_TRUE(b.HasTime());
  EXPECT_TRUE(b.time()->IsInstant());
  STObject c = STObject::FromWkt("POINT (1 2)", 10, 20).ValueOrDie();
  EXPECT_EQ(c.time()->Length(), 10);
  EXPECT_FALSE(STObject::FromWkt("JUNK").ok());
}

TEST(STObjectTest, ToStringIncludesTime) {
  EXPECT_EQ(Pt(1, 2).ToString(), "STObject(POINT (1 2))");
  EXPECT_EQ(PtAt(1, 2, 5).ToString(), "STObject(POINT (1 2), @5)");
}

// Formula (2): both temporal components undefined -> spatial alone decides.
TEST(STObjectSemanticsTest, BothTimesUndefined) {
  EXPECT_TRUE(Pt(1, 1).Intersects(Pt(1, 1)));
  EXPECT_FALSE(Pt(1, 1).Intersects(Pt(2, 2)));
  EXPECT_TRUE(Box(0, 0, 4, 4).Contains(Pt(2, 2)));
  EXPECT_TRUE(Pt(2, 2).ContainedBy(Box(0, 0, 4, 4)));
}

// Formula (3): both defined -> spatial AND temporal must hold.
TEST(STObjectSemanticsTest, BothTimesDefined) {
  const STObject box = BoxDuring(0, 0, 4, 4, 0, 100);
  EXPECT_TRUE(PtAt(2, 2, 50).Intersects(box));
  EXPECT_FALSE(PtAt(2, 2, 200).Intersects(box));  // spatial yes, temporal no
  EXPECT_FALSE(PtAt(9, 9, 50).Intersects(box));   // temporal yes, spatial no
}

// Defined/undefined mix -> always false (per the formal definition).
TEST(STObjectSemanticsTest, MixedDefinednessIsFalse) {
  EXPECT_FALSE(PtAt(1, 1, 5).Intersects(Pt(1, 1)));
  EXPECT_FALSE(Pt(1, 1).Intersects(PtAt(1, 1, 5)));
  EXPECT_FALSE(Box(0, 0, 4, 4).Contains(PtAt(2, 2, 5)));
  EXPECT_FALSE(BoxDuring(0, 0, 4, 4, 0, 10).Contains(Pt(2, 2)));
}

TEST(STObjectSemanticsTest, ContainsUsesTemporalContains) {
  const STObject box = BoxDuring(0, 0, 4, 4, 0, 100);
  // Spatially contained, temporally contained.
  EXPECT_TRUE(box.Contains(BoxDuring(1, 1, 2, 2, 10, 20)));
  // Spatially contained, but the interval leaks out.
  EXPECT_FALSE(box.Contains(BoxDuring(1, 1, 2, 2, 50, 150)));
  // Intersects is weaker: overlap suffices.
  EXPECT_TRUE(box.Intersects(BoxDuring(1, 1, 2, 2, 50, 150)));
}

TEST(STObjectSemanticsTest, ContainedByIsReverse) {
  const STObject inner = BoxDuring(1, 1, 2, 2, 10, 20);
  const STObject outer = BoxDuring(0, 0, 4, 4, 0, 100);
  EXPECT_TRUE(inner.ContainedBy(outer));
  EXPECT_FALSE(outer.ContainedBy(inner));
}

TEST(STObjectTest, CentroidAndEnvelopeDelegate) {
  const STObject box = Box(0, 0, 4, 2);
  EXPECT_DOUBLE_EQ(box.Centroid().x, 2.0);
  EXPECT_DOUBLE_EQ(box.Centroid().y, 1.0);
  EXPECT_EQ(box.envelope(), Envelope(0, 0, 4, 2));
}

TEST(STObjectTest, Equality) {
  EXPECT_EQ(PtAt(1, 2, 3), PtAt(1, 2, 3));
  EXPECT_FALSE(PtAt(1, 2, 3) == PtAt(1, 2, 4));
  EXPECT_FALSE(PtAt(1, 2, 3) == Pt(1, 2));
}

// -- Distance functions ----------------------------------------------------

TEST(DistanceFunctionTest, Euclidean) {
  EXPECT_DOUBLE_EQ(EuclideanDistance(Pt(0, 0), Pt(3, 4)), 5.0);
  EXPECT_EQ(EuclideanDistance(Pt(1, 1), Box(0, 0, 4, 4)), 0.0);
}

TEST(DistanceFunctionTest, Manhattan) {
  EXPECT_DOUBLE_EQ(ManhattanDistance(Pt(0, 0), Pt(3, 4)), 7.0);
}

TEST(DistanceFunctionTest, HaversineKnownDistance) {
  // Berlin (13.405, 52.52) to Hamburg (9.993, 53.551): ~255 km.
  const double d =
      HaversineDistanceKm(Pt(13.405, 52.52), Pt(9.993, 53.551));
  EXPECT_NEAR(d, 255.0, 5.0);
  EXPECT_DOUBLE_EQ(HaversineDistanceKm(Pt(10, 50), Pt(10, 50)), 0.0);
}

TEST(DistanceFunctionTest, TemporalDistance) {
  EXPECT_EQ(TemporalDistance(PtAt(0, 0, 10), PtAt(0, 0, 25)), 15.0);
  EXPECT_EQ(TemporalDistance(PtAt(0, 0, 10), Pt(0, 0)), 0.0);
  EXPECT_EQ(TemporalDistance(Pt(0, 0), Pt(0, 0)), 0.0);
}

TEST(DistanceFunctionTest, CombinedDistanceWeights) {
  DistanceFunction fn = CombinedDistance(EuclideanDistance, 2.0, 0.5);
  // spatial 5 * 2 + temporal 10 * 0.5 = 15.
  EXPECT_DOUBLE_EQ(fn(PtAt(0, 0, 0), PtAt(3, 4, 10)), 15.0);
}

}  // namespace
}  // namespace stark
