// Tests for the CSV event reader/writer and the workload generators.
#include <cstdio>

#include <gtest/gtest.h>

#include "test_util.h"

#include "io/csv.h"
#include "io/generator.h"

namespace stark {
namespace {

TEST(CsvTest, ParsesSchemaWithQuotedWkt) {
  const std::string text =
      "1,sports,1000,\"POINT (1 2)\"\n"
      "2,politics,2000,\"POLYGON ((0 0, 4 0, 4 4, 0 0))\"\n";
  auto records = ParseEventsCsv(text).ValueOrDie();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].id, 1);
  EXPECT_EQ(records[0].category, "sports");
  EXPECT_EQ(records[0].time, 1000);
  EXPECT_EQ(records[0].wkt, "POINT (1 2)");
  EXPECT_EQ(records[1].wkt, "POLYGON ((0 0, 4 0, 4 4, 0 0))");
}

TEST(CsvTest, UnquotedWktWithoutCommasIsAccepted) {
  auto records = ParseEventsCsv("7,x,-5,POINT (3 4)\n").ValueOrDie();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].time, -5);
  EXPECT_EQ(records[0].wkt, "POINT (3 4)");
}

TEST(CsvTest, SkipsEmptyLinesAndHandlesCrLf) {
  auto records =
      ParseEventsCsv("1,a,2,\"POINT (0 0)\"\r\n\n2,b,3,\"POINT (1 1)\"\n")
          .ValueOrDie();
  EXPECT_EQ(records.size(), 2u);
}

TEST(CsvTest, EscapedQuotesInsideField) {
  auto records =
      ParseEventsCsv("1,\"say \"\"hi\"\"\",2,\"POINT (0 0)\"\n").ValueOrDie();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].category, "say \"hi\"");
}

TEST(CsvTest, Errors) {
  EXPECT_FALSE(ParseEventsCsv("1,a,2\n").ok());                 // 3 fields
  EXPECT_FALSE(ParseEventsCsv("x,a,2,POINT (0 0)\n").ok());     // bad id
  EXPECT_FALSE(ParseEventsCsv("1,a,zz,POINT (0 0)\n").ok());    // bad time
  EXPECT_FALSE(ParseEventsCsv("1,\"a,2,POINT (0 0)\n").ok());   // open quote
  EXPECT_EQ(ParseEventsCsv("1,a\n").status().code(),
            StatusCode::kParseError);
}

TEST(CsvTest, RoundTripThroughFile) {
  std::vector<EventRecord> records = {
      {1, "sports", 100, "POINT (1 2)"},
      {2, "a,b \"quoted\"", 200, "POLYGON ((0 0, 1 0, 1 1, 0 0))"},
  };
  const std::string path = test::UniqueTempPath("stark_events.csv");
  ASSERT_TRUE(WriteEventsCsv(path, records).ok());
  auto back = ReadEventsCsv(path).ValueOrDie();
  EXPECT_EQ(back, records);
  std::remove(path.c_str());
}

TEST(CsvTest, EventsToPairsBuildsSTObjects) {
  std::vector<EventRecord> records = {{5, "cat", 123, "POINT (7 8)"}};
  auto pairs = EventsToPairs(records).ValueOrDie();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first.Centroid().x, 7.0);
  ASSERT_TRUE(pairs[0].first.HasTime());
  EXPECT_EQ(pairs[0].first.time()->start(), 123);
  EXPECT_EQ(pairs[0].second.first, 5);
  EXPECT_EQ(pairs[0].second.second, "cat");
}

TEST(CsvTest, EventsToPairsRejectsBadWkt) {
  std::vector<EventRecord> records = {{5, "cat", 123, "NOT WKT"}};
  EXPECT_FALSE(EventsToPairs(records).ok());
}

TEST(GeneratorTest, SkewedPointsDeterministicAndInUniverse) {
  SkewedPointsOptions opt;
  opt.count = 500;
  opt.universe = Envelope(-10, -5, 10, 5);
  auto a = GenerateSkewedPoints(opt);
  auto b = GenerateSkewedPoints(opt);
  ASSERT_EQ(a.size(), 500u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
    EXPECT_TRUE(opt.universe.Contains(a[i].Centroid()));
  }
}

TEST(GeneratorTest, SkewedPointsAreActuallySkewed) {
  SkewedPointsOptions opt;
  opt.count = 5000;
  opt.universe = Envelope(0, 0, 100, 100);
  opt.clusters = 2;
  opt.cluster_spread = 0.01;
  opt.noise_fraction = 0.0;
  auto pts = GenerateSkewedPoints(opt);
  // With 2 tight clusters, a 10x10 grid must leave most cells empty.
  std::set<std::pair<int, int>> occupied;
  for (const auto& p : pts) {
    const Coordinate c = p.Centroid();
    occupied.insert({static_cast<int>(c.x / 10), static_cast<int>(c.y / 10)});
  }
  EXPECT_LT(occupied.size(), 30u);
}

TEST(GeneratorTest, UniformPointsCoverUniverse) {
  auto pts = GenerateUniformPoints(2000, 9, Envelope(0, 0, 10, 10));
  std::set<std::pair<int, int>> occupied;
  for (const auto& p : pts) {
    const Coordinate c = p.Centroid();
    occupied.insert({static_cast<int>(c.x), static_cast<int>(c.y)});
  }
  EXPECT_GT(occupied.size(), 90u);  // nearly all 100 unit cells hit
}

TEST(GeneratorTest, PolygonsAreValidAndBounded) {
  PolygonsOptions opt;
  opt.count = 200;
  opt.universe = Envelope(0, 0, 100, 100);
  auto polys = GenerateRandomPolygons(opt);
  ASSERT_EQ(polys.size(), 200u);
  for (const auto& p : polys) {
    EXPECT_EQ(p.geo().type(), GeometryType::kPolygon);
    EXPECT_GE(p.geo().polygons()[0].shell.size(), 4u);
    EXPECT_LE(p.envelope().Width(), 2 * opt.max_radius + 1e-9);
  }
}

TEST(GeneratorTest, EventsHaveSchemaFieldsPopulated) {
  EventsOptions opt;
  opt.count = 300;
  auto events = GenerateEvents(opt);
  ASSERT_EQ(events.size(), 300u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, static_cast<int64_t>(i));
    EXPECT_FALSE(events[i].category.empty());
    EXPECT_GE(events[i].time, opt.time_min);
    EXPECT_LE(events[i].time, opt.time_max);
    EXPECT_EQ(events[i].wkt.rfind("POINT", 0), 0u);
  }
  // Generated events parse back into STObjects.
  EXPECT_TRUE(EventsToPairs(events).ok());
}

}  // namespace
}  // namespace stark
