// Tests for the Figure-4 baseline strategies: all three systems must
// produce exactly the same self-join result count (the paper notes that
// GeoSpark produced *different* counts per run — a bug we must not have).
#include <gtest/gtest.h>

#include "baselines/geospark_like.h"
#include "baselines/spatialspark_like.h"
#include "baselines/stark_selfjoin.h"
#include "io/generator.h"

namespace stark {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest() {
    SkewedPointsOptions gen;
    gen.count = 1500;
    gen.universe = Envelope(0, 0, 100, 100);
    gen.clusters = 5;
    gen.seed = 81;
    data_ = GenerateSkewedPoints(gen);
  }

  size_t BruteForcePairs(double dist) const {
    size_t count = 0;
    for (size_t i = 0; i < data_.size(); ++i) {
      for (size_t j = 0; j < data_.size(); ++j) {
        if (i != j &&
            data_[i].Centroid().DistanceTo(data_[j].Centroid()) <= dist) {
          ++count;
        }
      }
    }
    return count;
  }

  Context ctx_{4};
  std::vector<STObject> data_;
};

constexpr double kDist = 1.0;

TEST_F(BaselinesTest, GeoSparkLikeUnpartitionedCorrect) {
  const size_t expect = BruteForcePairs(kDist);
  GeoSparkLikeOptions opt;
  auto stats = GeoSparkLikeSelfJoin(&ctx_, data_, kDist, opt);
  EXPECT_EQ(stats.result_pairs, expect);
  EXPECT_EQ(stats.system, "GeoSpark-like");
  EXPECT_EQ(stats.config, "none");
  EXPECT_EQ(stats.replicated, 0u);
}

TEST_F(BaselinesTest, GeoSparkLikeVoronoiCorrectAndReplicates) {
  const size_t expect = BruteForcePairs(kDist);
  GeoSparkLikeOptions opt;
  opt.voronoi_seeds = 12;
  auto stats = GeoSparkLikeSelfJoin(&ctx_, data_, kDist, opt);
  EXPECT_EQ(stats.result_pairs, expect);
  EXPECT_EQ(stats.config, "voronoi");
  EXPECT_GT(stats.replicated, 0u);  // replication is the strategy's cost
}

TEST_F(BaselinesTest, SpatialSparkLikeUnpartitionedCorrect) {
  const size_t expect = BruteForcePairs(kDist);
  auto stats = SpatialSparkLikeSelfJoin(&ctx_, data_, kDist, {});
  EXPECT_EQ(stats.result_pairs, expect);
  EXPECT_EQ(stats.config, "none");
}

TEST_F(BaselinesTest, SpatialSparkLikeTiledCorrect) {
  const size_t expect = BruteForcePairs(kDist);
  SpatialSparkLikeOptions opt;
  opt.tiles = 8;
  auto stats = SpatialSparkLikeSelfJoin(&ctx_, data_, kDist, opt);
  EXPECT_EQ(stats.result_pairs, expect);
  EXPECT_EQ(stats.config, "tile");
}

TEST_F(BaselinesTest, StarkAllPartitionersCorrect) {
  const size_t expect = BruteForcePairs(kDist);
  for (auto choice : {StarkPartitionerChoice::kNone,
                      StarkPartitionerChoice::kGrid,
                      StarkPartitionerChoice::kBsp}) {
    StarkSelfJoinOptions opt;
    opt.partitioner = choice;
    opt.bsp_max_cost = 200;
    opt.grid_cells_per_dim = 4;
    auto stats = StarkSelfJoin(&ctx_, data_, kDist, opt);
    EXPECT_EQ(stats.result_pairs, expect)
        << "partitioner config " << stats.config;
    EXPECT_EQ(stats.replicated, 0u);  // STARK never replicates (§2.1)
  }
}

TEST_F(BaselinesTest, AllSystemsAgreeOnLargerDistance) {
  const double dist = 3.5;
  const size_t expect = BruteForcePairs(dist);
  GeoSparkLikeOptions geo;
  geo.voronoi_seeds = 8;
  SpatialSparkLikeOptions ss;
  ss.tiles = 6;
  StarkSelfJoinOptions st;
  st.partitioner = StarkPartitionerChoice::kBsp;
  st.bsp_max_cost = 300;
  EXPECT_EQ(GeoSparkLikeSelfJoin(&ctx_, data_, dist, geo).result_pairs,
            expect);
  EXPECT_EQ(SpatialSparkLikeSelfJoin(&ctx_, data_, dist, ss).result_pairs,
            expect);
  EXPECT_EQ(StarkSelfJoin(&ctx_, data_, dist, st).result_pairs, expect);
}

TEST_F(BaselinesTest, EmptyInputYieldsZeroPairs) {
  std::vector<STObject> empty;
  EXPECT_EQ(GeoSparkLikeSelfJoin(&ctx_, empty, kDist, {}).result_pairs, 0u);
  EXPECT_EQ(SpatialSparkLikeSelfJoin(&ctx_, empty, kDist, {}).result_pairs,
            0u);
  EXPECT_EQ(StarkSelfJoin(&ctx_, empty, kDist, {}).result_pairs, 0u);
}

}  // namespace
}  // namespace stark
