/// \file openmetrics_check.cc
/// Strict OpenMetrics text-format checker for CI: reads an exposition file
/// written by the STARK metrics exporter (STARK_METRICS_EXPORT) and
/// validates it line by line — TYPE metadata before samples, counter
/// samples named `<family>_total`, histogram buckets cumulative with
/// strictly increasing `le` and a final `+Inf` equal to `_count`, and a
/// terminating `# EOF`. Exit 0 when the file parses clean, 1 with the
/// offending line on stderr otherwise.
///
/// Usage: openmetrics_check <file> [--require <metric-name>]...
///
/// Each --require asserts a metric family (post-sanitization name, e.g.
/// stark_engine_tasks_run) appears in the exposition, so the CI smoke can
/// prove the engine actually exported real counters, not an empty file.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/openmetrics.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <file> [--require <metric-name>]...\n", argv[0]);
    return 2;
  }
  const char* path = argv[1];
  std::vector<std::string> required;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require") == 0 && i + 1 < argc) {
      required.push_back(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "openmetrics_check: cannot read %s\n", path);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  const std::string problem = stark::obs::ValidateOpenMetrics(text);
  if (!problem.empty()) {
    std::fprintf(stderr, "openmetrics_check: %s: %s\n", path, problem.c_str());
    return 1;
  }

  int missing = 0;
  for (const std::string& name : required) {
    // A family is present when some line starts with "<name>" followed by
    // a sample/label/suffix boundary ('{', ' ', or '_' for _total/_bucket).
    bool found = false;
    size_t pos = 0;
    while (!found && pos < text.size()) {
      size_t end = text.find('\n', pos);
      if (end == std::string::npos) end = text.size();
      if (text.compare(pos, name.size(), name) == 0) {
        const char next = pos + name.size() < end ? text[pos + name.size()]
                                                  : '\n';
        found = next == '{' || next == ' ' || next == '_';
      }
      pos = end + 1;
    }
    if (!found) {
      std::fprintf(stderr, "openmetrics_check: %s: required metric %s absent\n",
                   path, name.c_str());
      ++missing;
    }
  }
  if (missing > 0) return 1;

  std::fprintf(stderr, "openmetrics_check: %s: OK\n", path);
  return 0;
}
