/// \file bench_join.cc
/// Experiment E3 (spatialbm extended suite): spatial join predicates —
/// point-in-polygon (containedBy) and polygon-polygon (intersects) joins,
/// partitioned vs. unpartitioned, indexed vs. nested loop vs. cached-index
/// vs. broadcast.
///
/// `bench_join --smoke` runs a fast self-checking mode instead of the
/// benchmark suite: it asserts the join strategies agree on result counts
/// and that the broadcast plan beats pair enumeration on a 1-large ×
/// 1-small workload (exit code 1 on violation). CI runs this on every push.
#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "partition/grid_partitioner.h"
#include "spatial_rdd/join.h"

namespace stark {
namespace {

size_t NPoints() { return bench::EnvSize("STARK_BENCH_JOIN_N", 150'000); }
size_t NPolys() { return bench::EnvSize("STARK_BENCH_JOIN_POLYS", 1'500); }

Context* Ctx() {
  static Context ctx;
  return &ctx;
}

using Rdd = SpatialRDD<int64_t>;

Rdd FromObjects(std::vector<STObject> objects) {
  std::vector<std::pair<STObject, int64_t>> data;
  data.reserve(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    data.emplace_back(std::move(objects[i]), static_cast<int64_t>(i));
  }
  return Rdd::FromVector(Ctx(), std::move(data)).Cache();
}

const Rdd& Points() {
  static const Rdd rdd = FromObjects(bench::BenchPoints(NPoints()));
  return rdd;
}

const Rdd& Polygons() {
  static const Rdd rdd = FromObjects(bench::BenchPolygons(NPolys()));
  return rdd;
}

const Rdd& PointsPartitioned() {
  static const Rdd rdd = [] {
    auto grid = std::make_shared<GridPartitioner>(bench::BenchUniverse(), 4);
    return Points().PartitionBy(grid).Cache();
  }();
  return rdd;
}

const Rdd& PolygonsPartitioned() {
  static const Rdd rdd = [] {
    auto grid = std::make_shared<GridPartitioner>(bench::BenchUniverse(), 4);
    return Polygons().PartitionBy(grid).Cache();
  }();
  return rdd;
}

using E = std::pair<STObject, int64_t>;

std::pair<int64_t, int64_t> ProjectIds(const E& l, const E& r) {
  return {l.second, r.second};
}

size_t CountJoin(const Rdd& left, const Rdd& right, const JoinPredicate& pred,
                 size_t index_order, size_t broadcast_threshold = 0) {
  JoinOptions options;
  options.index_order = index_order;
  options.broadcast_threshold = broadcast_threshold;
  return SpatialJoinProject(left, right, pred, options, ProjectIds).Count();
}

/// The cached-index variant: the left trees exist before the join runs, so
/// each iteration measures probe cost only (engine.join.tree_builds = 0).
const IndexedSpatialRDD<int64_t>& PointsIndexed() {
  static const IndexedSpatialRDD<int64_t> indexed = [] {
    IndexedSpatialRDD<int64_t> idx = PointsPartitioned().Index(10);
    idx.trees().Count();  // materialize outside the timed region
    return idx;
  }();
  return indexed;
}

size_t CountJoinCached(const IndexedSpatialRDD<int64_t>& left,
                       const Rdd& right, const JoinPredicate& pred) {
  return SpatialJoinProject(left, right, pred, JoinOptions(), ProjectIds)
      .Count();
}

void BM_Join_PointInPolygon_Unpartitioned(benchmark::State& state) {
  size_t results = 0;
  for (auto _ : state) {
    results =
        CountJoin(Points(), Polygons(), JoinPredicate::ContainedBy(), 10);
  }
  state.counters["results"] = static_cast<double>(results);
}
BENCHMARK(BM_Join_PointInPolygon_Unpartitioned)
    ->Unit(benchmark::kMillisecond);

void BM_Join_PointInPolygon_Partitioned(benchmark::State& state) {
  size_t results = 0;
  for (auto _ : state) {
    results = CountJoin(PointsPartitioned(), PolygonsPartitioned(),
                        JoinPredicate::ContainedBy(), 10);
  }
  state.counters["results"] = static_cast<double>(results);
}
BENCHMARK(BM_Join_PointInPolygon_Partitioned)->Unit(benchmark::kMillisecond);

void BM_Join_PointInPolygon_NoIndex(benchmark::State& state) {
  size_t results = 0;
  for (auto _ : state) {
    results = CountJoin(PointsPartitioned(), PolygonsPartitioned(),
                        JoinPredicate::ContainedBy(), 0);
  }
  state.counters["results"] = static_cast<double>(results);
}
BENCHMARK(BM_Join_PointInPolygon_NoIndex)->Unit(benchmark::kMillisecond);

void BM_Join_PolygonIntersects_Unpartitioned(benchmark::State& state) {
  size_t results = 0;
  for (auto _ : state) {
    results =
        CountJoin(Polygons(), Polygons(), JoinPredicate::Intersects(), 10);
  }
  state.counters["results"] = static_cast<double>(results);
}
BENCHMARK(BM_Join_PolygonIntersects_Unpartitioned)
    ->Unit(benchmark::kMillisecond);

void BM_Join_PolygonIntersects_Partitioned(benchmark::State& state) {
  size_t results = 0;
  for (auto _ : state) {
    results = CountJoin(PolygonsPartitioned(), PolygonsPartitioned(),
                        JoinPredicate::Intersects(), 10);
  }
  state.counters["results"] = static_cast<double>(results);
}
BENCHMARK(BM_Join_PolygonIntersects_Partitioned)
    ->Unit(benchmark::kMillisecond);

void BM_Join_WithinDistance_Partitioned(benchmark::State& state) {
  size_t results = 0;
  for (auto _ : state) {
    results = CountJoin(PointsPartitioned(), PolygonsPartitioned(),
                        JoinPredicate::WithinDistance(0.5), 10);
  }
  state.counters["results"] = static_cast<double>(results);
}
BENCHMARK(BM_Join_WithinDistance_Partitioned)->Unit(benchmark::kMillisecond);

void BM_Join_PointInPolygon_CachedIndex(benchmark::State& state) {
  size_t results = 0;
  for (auto _ : state) {
    results = CountJoinCached(PointsIndexed(), PolygonsPartitioned(),
                              JoinPredicate::ContainedBy());
  }
  state.counters["results"] = static_cast<double>(results);
}
BENCHMARK(BM_Join_PointInPolygon_CachedIndex)->Unit(benchmark::kMillisecond);

void BM_Join_PointInPolygon_Broadcast(benchmark::State& state) {
  size_t results = 0;
  for (auto _ : state) {
    // Threshold above the polygon count: the small side is broadcast and
    // no partition pairs are enumerated.
    results = CountJoin(PointsPartitioned(), PolygonsPartitioned(),
                        JoinPredicate::ContainedBy(), 10, NPolys() + 1);
  }
  state.counters["results"] = static_cast<double>(results);
}
BENCHMARK(BM_Join_PointInPolygon_Broadcast)->Unit(benchmark::kMillisecond);

// ---- --smoke mode ---------------------------------------------------------

double MedianSeconds(const std::vector<double>& samples) {
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  return sorted[sorted.size() / 2];
}

/// Fast self-checking run for CI: strategy agreement, the broadcast claim,
/// and the packed-index/prepared-geometry plumbing (PR 5).
int RunSmoke(const std::string& json_path) {
  // Shrink the workload unless the caller pinned sizes explicitly.
  setenv("STARK_BENCH_JOIN_N", "20000", /*overwrite=*/0);
  setenv("STARK_BENCH_JOIN_POLYS", "800", /*overwrite=*/0);
  const JoinPredicate pred = JoinPredicate::ContainedBy();
  int failures = 0;
  auto check = [&failures](bool ok, const char* what) {
    std::fprintf(stderr, "[smoke] %s: %s\n", what, ok ? "ok" : "FAILED");
    if (!ok) ++failures;
  };

  obs::Counter* packed_probes =
      obs::DefaultMetrics().GetCounter("engine.index.packed_probes");
  obs::Counter* prepared_misses =
      obs::DefaultMetrics().GetCounter("spatial.prepared.misses");
  const uint64_t probes_before = packed_probes->Value();
  const uint64_t misses_before = prepared_misses->Value();

  const size_t live = CountJoin(PointsPartitioned(), PolygonsPartitioned(),
                                pred, 10);
  check(packed_probes->Value() > probes_before,
        "live join probed the packed index (packed_probes advanced)");
  check(prepared_misses->Value() > misses_before,
        "live join prepared probe geometries (prepared.misses advanced)");
  const size_t nested = CountJoin(PointsPartitioned(), PolygonsPartitioned(),
                                  pred, 0);
  const size_t cached = CountJoinCached(PointsIndexed(),
                                        PolygonsPartitioned(), pred);
  const size_t broadcast = CountJoin(PointsPartitioned(),
                                     PolygonsPartitioned(), pred, 10,
                                     NPolys() + 1);
  std::fprintf(stderr,
               "[smoke] results: live=%zu nested=%zu cached=%zu "
               "broadcast=%zu\n",
               live, nested, cached, broadcast);
  check(live == nested, "live matches nested loop");
  check(live == cached, "live matches cached index");
  check(live == broadcast, "live matches broadcast");
  check(obs::DefaultMetrics().GetCounter("engine.join.broadcast_joins")
                ->Value() > 0,
        "broadcast plan actually taken");

  // The broadcast claim: on 1 large side x 1 small side, skipping pair
  // enumeration beats the pair-enumerating plan. Median of 5 runs each,
  // interleaved so background noise hits both strategies alike.
  std::vector<double> pair_s, bcast_s;
  for (int i = 0; i < 5; ++i) {
    Stopwatch w;
    CountJoin(PointsPartitioned(), PolygonsPartitioned(), pred, 10);
    pair_s.push_back(w.ElapsedSeconds());
    w.Restart();
    CountJoin(PointsPartitioned(), PolygonsPartitioned(), pred, 10,
              NPolys() + 1);
    bcast_s.push_back(w.ElapsedSeconds());
  }
  const double pair_med = MedianSeconds(pair_s);
  const double bcast_med = MedianSeconds(bcast_s);
  std::fprintf(stderr,
               "[smoke] median join time: pair-enumeration=%.4fs "
               "broadcast=%.4fs\n",
               pair_med, bcast_med);
  check(bcast_med < pair_med, "broadcast beats pair enumeration");

  if (!json_path.empty()) {
    bench::JsonReport report;
    report.Add("join.n_points", static_cast<double>(NPoints()));
    report.Add("join.n_polygons", static_cast<double>(NPolys()));
    report.Add("join.results", static_cast<double>(live));
    report.Add("join.pair_enumeration_s", pair_med);
    report.Add("join.broadcast_s", bcast_med);
    report.Add("join.packed_probes",
               static_cast<double>(packed_probes->Value() - probes_before));
    report.Add("join.prepared_misses",
               static_cast<double>(prepared_misses->Value() - misses_before));
    report.WriteTo(json_path);
  }

  std::fprintf(stderr, "[smoke] %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stark

int main(int argc, char** argv) {
  const std::string json = stark::bench::JsonPathFromArgs(argc, argv);
  if (stark::bench::SmokeRequested(argc, argv) || !json.empty()) {
    return stark::RunSmoke(json);
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
