/// \file bench_join.cc
/// Experiment E3 (spatialbm extended suite): spatial join predicates —
/// point-in-polygon (containedBy) and polygon-polygon (intersects) joins,
/// partitioned vs. unpartitioned, indexed vs. nested loop.
#include <memory>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "partition/grid_partitioner.h"
#include "spatial_rdd/join.h"

namespace stark {
namespace {

size_t NPoints() { return bench::EnvSize("STARK_BENCH_JOIN_N", 150'000); }
size_t NPolys() { return bench::EnvSize("STARK_BENCH_JOIN_POLYS", 1'500); }

Context* Ctx() {
  static Context ctx;
  return &ctx;
}

using Rdd = SpatialRDD<int64_t>;

Rdd FromObjects(std::vector<STObject> objects) {
  std::vector<std::pair<STObject, int64_t>> data;
  data.reserve(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    data.emplace_back(std::move(objects[i]), static_cast<int64_t>(i));
  }
  return Rdd::FromVector(Ctx(), std::move(data)).Cache();
}

const Rdd& Points() {
  static const Rdd rdd = FromObjects(bench::BenchPoints(NPoints()));
  return rdd;
}

const Rdd& Polygons() {
  static const Rdd rdd = FromObjects(bench::BenchPolygons(NPolys()));
  return rdd;
}

const Rdd& PointsPartitioned() {
  static const Rdd rdd = [] {
    auto grid = std::make_shared<GridPartitioner>(bench::BenchUniverse(), 4);
    return Points().PartitionBy(grid).Cache();
  }();
  return rdd;
}

const Rdd& PolygonsPartitioned() {
  static const Rdd rdd = [] {
    auto grid = std::make_shared<GridPartitioner>(bench::BenchUniverse(), 4);
    return Polygons().PartitionBy(grid).Cache();
  }();
  return rdd;
}

size_t CountJoin(const Rdd& left, const Rdd& right, const JoinPredicate& pred,
                 size_t index_order) {
  JoinOptions options;
  options.index_order = index_order;
  using E = std::pair<STObject, int64_t>;
  return SpatialJoinProject(left, right, pred, options,
                            [](const E& l, const E& r) {
                              return std::pair<int64_t, int64_t>(l.second,
                                                                 r.second);
                            })
      .Count();
}

void BM_Join_PointInPolygon_Unpartitioned(benchmark::State& state) {
  size_t results = 0;
  for (auto _ : state) {
    results =
        CountJoin(Points(), Polygons(), JoinPredicate::ContainedBy(), 10);
  }
  state.counters["results"] = static_cast<double>(results);
}
BENCHMARK(BM_Join_PointInPolygon_Unpartitioned)
    ->Unit(benchmark::kMillisecond);

void BM_Join_PointInPolygon_Partitioned(benchmark::State& state) {
  size_t results = 0;
  for (auto _ : state) {
    results = CountJoin(PointsPartitioned(), PolygonsPartitioned(),
                        JoinPredicate::ContainedBy(), 10);
  }
  state.counters["results"] = static_cast<double>(results);
}
BENCHMARK(BM_Join_PointInPolygon_Partitioned)->Unit(benchmark::kMillisecond);

void BM_Join_PointInPolygon_NoIndex(benchmark::State& state) {
  size_t results = 0;
  for (auto _ : state) {
    results = CountJoin(PointsPartitioned(), PolygonsPartitioned(),
                        JoinPredicate::ContainedBy(), 0);
  }
  state.counters["results"] = static_cast<double>(results);
}
BENCHMARK(BM_Join_PointInPolygon_NoIndex)->Unit(benchmark::kMillisecond);

void BM_Join_PolygonIntersects_Unpartitioned(benchmark::State& state) {
  size_t results = 0;
  for (auto _ : state) {
    results =
        CountJoin(Polygons(), Polygons(), JoinPredicate::Intersects(), 10);
  }
  state.counters["results"] = static_cast<double>(results);
}
BENCHMARK(BM_Join_PolygonIntersects_Unpartitioned)
    ->Unit(benchmark::kMillisecond);

void BM_Join_PolygonIntersects_Partitioned(benchmark::State& state) {
  size_t results = 0;
  for (auto _ : state) {
    results = CountJoin(PolygonsPartitioned(), PolygonsPartitioned(),
                        JoinPredicate::Intersects(), 10);
  }
  state.counters["results"] = static_cast<double>(results);
}
BENCHMARK(BM_Join_PolygonIntersects_Partitioned)
    ->Unit(benchmark::kMillisecond);

void BM_Join_WithinDistance_Partitioned(benchmark::State& state) {
  size_t results = 0;
  for (auto _ : state) {
    results = CountJoin(PointsPartitioned(), PolygonsPartitioned(),
                        JoinPredicate::WithinDistance(0.5), 10);
  }
  state.counters["results"] = static_cast<double>(results);
}
BENCHMARK(BM_Join_WithinDistance_Partitioned)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stark

BENCHMARK_MAIN();
