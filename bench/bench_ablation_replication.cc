/// \file bench_ablation_replication.cc
/// Experiment E8 — ablation of STARK's §2.1 design decision: assigning each
/// object to exactly one partition by centroid and keeping overlapping
/// *extents* (STARK) versus replicating boundary objects into every
/// overlapping partition and deduplicating results (the GeoSpark strategy).
/// Both run the same self join on the same data so the duplication factor
/// and the dedup share of the runtime are directly attributable.
#include <cstdio>
#include <map>

#include <benchmark/benchmark.h>

#include "baselines/geospark_like.h"
#include "baselines/stark_selfjoin.h"
#include "bench_common.h"

namespace stark {
namespace {

size_t N() { return bench::EnvSize("STARK_BENCH_ABL_N", 100'000); }
double Dist() { return bench::EnvDouble("STARK_BENCH_ABL_DIST", 0.25); }

Context* Ctx() {
  static Context ctx;
  return &ctx;
}

const std::vector<STObject>& Data() {
  static const std::vector<STObject> data = bench::BenchPoints(N());
  return data;
}

std::map<std::string, BaselineStats> g_results;

void BM_Ablation_ReplicationDedup(benchmark::State& state) {
  const size_t seeds = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    GeoSparkLikeOptions options;
    options.voronoi_seeds = seeds;
    auto stats = GeoSparkLikeSelfJoin(Ctx(), Data(), Dist(), options);
    state.counters["replicated"] = static_cast<double>(stats.replicated);
    state.counters["dedup_s"] = stats.dedup_seconds;
    state.counters["dedup_share"] =
        stats.dedup_seconds / stats.total_seconds;
    g_results["replication/" + std::to_string(seeds)] = stats;
  }
}
BENCHMARK(BM_Ablation_ReplicationDedup)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

void BM_Ablation_CentroidExtent(benchmark::State& state) {
  const size_t cells = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    StarkSelfJoinOptions options;
    options.partitioner = StarkPartitionerChoice::kGrid;
    options.grid_cells_per_dim = cells;
    auto stats = StarkSelfJoin(Ctx(), Data(), Dist(), options);
    state.counters["replicated"] = 0;
    state.counters["dedup_s"] = 0;
    g_results["centroid/" + std::to_string(cells)] = stats;
  }
}
BENCHMARK(BM_Ablation_CentroidExtent)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

void PrintSummary() {
  std::printf("\n=== E8 ablation: replication+dedup vs centroid+extent "
              "(N=%zu, dist=%.2f) ===\n",
              N(), Dist());
  for (const auto& [key, stats] : g_results) {
    std::printf("%-24s total=%6.2fs join=%6.2fs dedup=%6.2fs "
                "replicated=%zu pairs=%zu\n",
                key.c_str(), stats.total_seconds, stats.join_seconds,
                stats.dedup_seconds, stats.replicated, stats.result_pairs);
  }
  std::printf("claim (§2.1): centroid assignment + extents avoids both the "
              "replicated copies and the dedup pass entirely.\n");
}

}  // namespace
}  // namespace stark

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  stark::PrintSummary();
  return 0;
}
