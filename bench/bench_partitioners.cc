/// \file bench_partitioners.cc
/// Experiment E5: the §2.1 claims in isolation — partitioner construction
/// and shuffle cost (grid vs. cost-based BSP, over partition-count sweeps)
/// and the load balance each produces on skewed data (max/avg partition
/// size, the quantity that bounds parallel makespan).
#include <algorithm>
#include <memory>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "partition/bsp_partitioner.h"
#include "partition/grid_partitioner.h"
#include "spatial_rdd/spatial_rdd.h"

namespace stark {
namespace {

size_t N() { return bench::EnvSize("STARK_BENCH_PART_N", 100'000); }

Context* Ctx() {
  static Context ctx;
  return &ctx;
}

const SpatialRDD<int64_t>& Data() {
  static const SpatialRDD<int64_t> rdd = [] {
    auto points = bench::BenchPoints(N());
    std::vector<std::pair<STObject, int64_t>> data;
    data.reserve(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
      data.emplace_back(std::move(points[i]), static_cast<int64_t>(i));
    }
    return SpatialRDD<int64_t>::FromVector(Ctx(), std::move(data)).Cache();
  }();
  return rdd;
}

const std::vector<Coordinate>& Centroids() {
  static const std::vector<Coordinate> centroids = [] {
    std::vector<Coordinate> out;
    for (const auto& [obj, id] : Data().rdd().Collect()) {
      out.push_back(obj.Centroid());
    }
    return out;
  }();
  return centroids;
}

void ReportBalance(benchmark::State& state, const SpatialRDD<int64_t>& rdd) {
  auto parts = rdd.rdd().CollectPartitions();
  size_t max_size = 0;
  size_t empty = 0;
  for (const auto& p : parts) {
    max_size = std::max(max_size, p.size());
    if (p.empty()) ++empty;
  }
  state.counters["partitions"] = static_cast<double>(parts.size());
  state.counters["max_part"] = static_cast<double>(max_size);
  state.counters["empty_parts"] = static_cast<double>(empty);
  state.counters["imbalance"] =
      static_cast<double>(max_size) /
      (static_cast<double>(N()) / static_cast<double>(parts.size()));
}

void BM_Partition_Grid(benchmark::State& state) {
  const size_t cells = static_cast<size_t>(state.range(0));
  SpatialRDD<int64_t> last = Data();
  for (auto _ : state) {
    auto grid =
        std::make_shared<GridPartitioner>(bench::BenchUniverse(), cells);
    last = Data().PartitionBy(grid);
    benchmark::DoNotOptimize(last.NumPartitions());
  }
  ReportBalance(state, last);
}
BENCHMARK(BM_Partition_Grid)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_Partition_Bsp(benchmark::State& state) {
  const size_t max_cost = N() / static_cast<size_t>(state.range(0));
  SpatialRDD<int64_t> last = Data();
  for (auto _ : state) {
    BSPartitioner::Options options;
    options.max_cost = std::max<size_t>(max_cost, 1);
    auto bsp = std::make_shared<BSPartitioner>(bench::BenchUniverse(),
                                               Centroids(), options);
    last = Data().PartitionBy(bsp);
    benchmark::DoNotOptimize(last.NumPartitions());
  }
  ReportBalance(state, last);
}
BENCHMARK(BM_Partition_Bsp)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

/// Pruning effectiveness: the same selective query with and without
/// partition bounds to prune on (the §2.1 "intersects only has to check
/// partitions whose bounds intersect the query" claim).
void BM_PruningEffect_Without(benchmark::State& state) {
  const STObject query(Geometry::MakeBox(Envelope(20, 20, 26, 26)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Data().Intersects(query).Count());
  }
}
BENCHMARK(BM_PruningEffect_Without)->Unit(benchmark::kMillisecond);

void BM_PruningEffect_With(benchmark::State& state) {
  static const SpatialRDD<int64_t> parted = [] {
    auto grid = std::make_shared<GridPartitioner>(bench::BenchUniverse(), 10);
    return Data().PartitionBy(grid).Cache();
  }();
  parted.rdd().Count();  // materialize cache outside timing
  const STObject query(Geometry::MakeBox(Envelope(20, 20, 26, 26)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(parted.Intersects(query).Count());
  }
}
BENCHMARK(BM_PruningEffect_With)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stark

BENCHMARK_MAIN();
