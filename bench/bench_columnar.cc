/// \file bench_columnar.cc
/// Columnar-vs-object data plane comparison (ROADMAP item 5): the same
/// filter and join workloads executed twice in one process, once through
/// the SoA slab + batched-kernel path and once with the columnar plane
/// kill-switched off, so the speedup is measured against the exact scalar
/// code the kernels replaced.
///
/// `bench_columnar --smoke` runs the fast self-checking mode: both planes
/// must return bit-identical filter rows and equal join counts, the
/// columnar counters (engine.columnar.batches/rows/fallbacks/slab_reuse)
/// must all advance, and the columnar filter must be no slower than the
/// object filter (ratio <= 1.0, with a small absolute slack for
/// sub-millisecond jitter). Pass `--json=<path>` to write the timings for
/// the checked-in BENCH_10.json snapshot.
#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/columnar.h"
#include "core/st_serde.h"
#include "partition/grid_partitioner.h"
#include "spatial_rdd/join.h"
#include "spatial_rdd/spatial_rdd.h"

namespace stark {
namespace {

size_t N() { return bench::EnvSize("STARK_BENCH_COLUMNAR_N", 400'000); }

Context* Ctx() {
  static Context ctx;
  return &ctx;
}

using Rdd = SpatialRDD<int64_t>;
using E = std::pair<STObject, int64_t>;

/// The workload the columnar plane targets: a dominant point population
/// (every 200th row is a polygon, so the mixed-batch fallback merge runs
/// too) with a mix of untimed and instant-stamped rows.
std::vector<E> MakeData() {
  static bench::TraceFromEnv trace_guard;
  bench::ScopedStage stage("columnar.make_data");
  auto points = bench::BenchPoints(N());
  auto polygons = bench::BenchPolygons(std::max<size_t>(N() / 200, 1));
  std::vector<E> data;
  data.reserve(points.size() + polygons.size());
  int64_t id = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    if (i % 3 == 0) {
      data.emplace_back(
          STObject(points[i].geo(), static_cast<Instant>(i % 1000)),
          id++);
    } else {
      data.emplace_back(std::move(points[i]), id++);
    }
  }
  for (auto& poly : polygons) data.emplace_back(std::move(poly), id++);
  return data;
}

const Rdd& Partitioned() {
  static const Rdd rdd = [] {
    auto grid = std::make_shared<GridPartitioner>(bench::BenchUniverse(), 4);
    return Rdd::FromVector(Ctx(), MakeData()).PartitionBy(grid).Cache();
  }();
  return rdd;
}

/// Small polygon side for the broadcast join.
const Rdd& SmallPolygons() {
  static const Rdd rdd = [] {
    auto polys = bench::BenchPolygons(200, /*seed=*/77);
    std::vector<E> data;
    data.reserve(polys.size());
    for (size_t i = 0; i < polys.size(); ++i) {
      data.emplace_back(std::move(polys[i]), static_cast<int64_t>(i));
    }
    return Rdd::FromVector(Ctx(), std::move(data), 4).Cache();
  }();
  return rdd;
}

STObject Query() {
  return STObject(Geometry::MakeBox(Envelope(20, 20, 35, 35)));
}

std::pair<int64_t, int64_t> ProjectIds(const E& l, const E& r) {
  return {l.second, r.second};
}

size_t RunFilterCount() {
  return Partitioned().Intersects(Query()).Count();
}

size_t RunBroadcastJoinCount() {
  JoinOptions options;
  options.index_order = 10;
  // Force the broadcast strategy: the polygon side is tiny by design.
  options.broadcast_threshold = 10'000;
  return SpatialJoinProject(Partitioned(), SmallPolygons(),
                            JoinPredicate::Intersects(), options, ProjectIds)
      .Count();
}

size_t RunLiveJoinCount() {
  JoinOptions options;
  options.index_order = 10;
  options.broadcast_threshold = 0;  // partition-pair strategy
  return SpatialJoinProject(Partitioned(), SmallPolygons(),
                            JoinPredicate::Intersects(), options, ProjectIds)
      .Count();
}

void BM_Filter_Columnar(benchmark::State& state) {
  columnar::SetEnabled(true);
  for (auto _ : state) benchmark::DoNotOptimize(RunFilterCount());
}
BENCHMARK(BM_Filter_Columnar)->Unit(benchmark::kMillisecond);

void BM_Filter_Object(benchmark::State& state) {
  columnar::SetEnabled(false);
  for (auto _ : state) benchmark::DoNotOptimize(RunFilterCount());
  columnar::SetEnabled(true);
}
BENCHMARK(BM_Filter_Object)->Unit(benchmark::kMillisecond);

void BM_BroadcastJoin_Columnar(benchmark::State& state) {
  columnar::SetEnabled(true);
  for (auto _ : state) benchmark::DoNotOptimize(RunBroadcastJoinCount());
}
BENCHMARK(BM_BroadcastJoin_Columnar)->Unit(benchmark::kMillisecond);

void BM_BroadcastJoin_Object(benchmark::State& state) {
  columnar::SetEnabled(false);
  for (auto _ : state) benchmark::DoNotOptimize(RunBroadcastJoinCount());
  columnar::SetEnabled(true);
}
BENCHMARK(BM_BroadcastJoin_Object)->Unit(benchmark::kMillisecond);

// ---- --smoke / --json mode ------------------------------------------------

double MedianOf(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

std::string RowBytes(const E& e) {
  BinaryWriter w;
  WriteSTObject(&w, e.first);
  w.WriteI64(e.second);
  return std::string(w.buffer().data(), w.buffer().size());
}

int RunSmoke(const std::string& json_path) {
  // Shrink the workload unless the caller pinned a size explicitly.
  setenv("STARK_BENCH_COLUMNAR_N", "60000", /*overwrite=*/0);
  const obs::MetricsRegistry::Snapshot metrics_before =
      obs::DefaultMetrics().Snap();
  int failures = 0;
  auto check = [&failures](bool ok, const char* what) {
    std::fprintf(stderr, "[smoke] %s: %s\n", what, ok ? "ok" : "FAILED");
    if (!ok) ++failures;
  };

  const ColumnarMetricSet& cm = GlobalColumnarMetrics();
  const uint64_t batches_before = cm.batches->Value();
  const uint64_t rows_before = cm.rows->Value();
  const uint64_t fallbacks_before = cm.fallbacks->Value();
  const uint64_t reuse_before = cm.slab_reuse->Value();

  // Bit-identity: the same filter, both planes, full rows compared by
  // serialized bytes (payload included) in emission order.
  columnar::SetEnabled(true);
  const std::vector<E> col_rows =
      Partitioned().Filter(Query(), JoinPredicate::Intersects()).Collect();
  columnar::SetEnabled(false);
  const std::vector<E> obj_rows =
      Partitioned().Filter(Query(), JoinPredicate::Intersects()).Collect();
  columnar::SetEnabled(true);
  std::fprintf(stderr, "[smoke] filter results: columnar=%zu object=%zu\n",
               col_rows.size(), obj_rows.size());
  bool identical = col_rows.size() == obj_rows.size();
  for (size_t i = 0; identical && i < col_rows.size(); ++i) {
    identical = RowBytes(col_rows[i]) == RowBytes(obj_rows[i]);
  }
  check(identical, "filter rows bit-identical across planes");

  // Join agreement on both strategies (broadcast builds the small-side
  // slab; partition-pair builds per-partition slabs).
  const size_t bc_col = RunBroadcastJoinCount();
  const size_t live_col = RunLiveJoinCount();
  columnar::SetEnabled(false);
  const size_t bc_obj = RunBroadcastJoinCount();
  const size_t live_obj = RunLiveJoinCount();
  columnar::SetEnabled(true);
  std::fprintf(stderr,
               "[smoke] join results: broadcast=%zu/%zu live=%zu/%zu "
               "(columnar/object)\n",
               bc_col, bc_obj, live_col, live_obj);
  check(bc_col == bc_obj, "broadcast join counts agree across planes");
  check(live_col == live_obj, "partition-pair join counts agree across planes");

  check(cm.batches->Value() > batches_before,
        "slabs built (engine.columnar.batches advanced)");
  check(cm.rows->Value() > rows_before,
        "batch kernels ran (engine.columnar.rows advanced)");
  check(cm.fallbacks->Value() > fallbacks_before,
        "mixed-batch fallback ran (engine.columnar.fallbacks advanced)");

  // Repeating the filter must hit the cached partition slabs.
  const uint64_t reuse_mark = cm.slab_reuse->Value();
  RunFilterCount();
  check(cm.slab_reuse->Value() > reuse_mark,
        "repeat filter reused slabs (engine.columnar.slab_reuse advanced)");

  // Median-of-5 filter timings, interleaved so noise hits both planes
  // alike. The columnar plane must not lose to the object plane it
  // replaced; a small absolute slack absorbs sub-millisecond jitter.
  std::vector<double> col_s, obj_s;
  for (int i = 0; i < 5; ++i) {
    columnar::SetEnabled(true);
    Stopwatch w;
    RunFilterCount();
    col_s.push_back(w.ElapsedSeconds());
    columnar::SetEnabled(false);
    w.Restart();
    RunFilterCount();
    obj_s.push_back(w.ElapsedSeconds());
    columnar::SetEnabled(true);
  }
  const double col_med = MedianOf(col_s);
  const double obj_med = MedianOf(obj_s);
  const double ratio = obj_med > 0 ? col_med / obj_med : 0.0;
  std::fprintf(stderr,
               "[smoke] median filter time: columnar=%.4fs object=%.4fs "
               "(ratio %.3f)\n",
               col_med, obj_med, ratio);
  check(col_med <= obj_med + 0.002,
        "columnar filter <= 1.0x object filter");

  // Join timings (reported, not gated: join cost is dominated by tree
  // probes and pair emission, so the refinement win is a smaller slice).
  std::vector<double> jcol_s, jobj_s;
  for (int i = 0; i < 3; ++i) {
    columnar::SetEnabled(true);
    Stopwatch w;
    RunBroadcastJoinCount();
    jcol_s.push_back(w.ElapsedSeconds());
    columnar::SetEnabled(false);
    w.Restart();
    RunBroadcastJoinCount();
    jobj_s.push_back(w.ElapsedSeconds());
    columnar::SetEnabled(true);
  }

  if (!json_path.empty()) {
    bench::JsonReport report;
    report.Add("columnar.n", static_cast<double>(N()));
    report.Add("columnar.filter_results",
               static_cast<double>(col_rows.size()));
    report.Add("columnar.filter_columnar_s", col_med);
    report.Add("columnar.filter_object_s", obj_med);
    report.Add("columnar.filter_ratio", ratio);
    report.Add("columnar.join_results", static_cast<double>(bc_col));
    report.Add("columnar.join_columnar_s", MedianOf(jcol_s));
    report.Add("columnar.join_object_s", MedianOf(jobj_s));
    report.Add("columnar.rows",
               static_cast<double>(cm.rows->Value() - rows_before));
    report.Add("columnar.fallbacks",
               static_cast<double>(cm.fallbacks->Value() - fallbacks_before));
    report.Add("columnar.batches",
               static_cast<double>(cm.batches->Value() - batches_before));
    report.Add("columnar.slab_reuse",
               static_cast<double>(cm.slab_reuse->Value() - reuse_before));
    report.AddMetricsDelta(metrics_before);
    report.WriteTo(json_path);
  }

  std::fprintf(stderr, "[smoke] %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stark

int main(int argc, char** argv) {
  const std::string json = stark::bench::JsonPathFromArgs(argc, argv);
  if (stark::bench::SmokeRequested(argc, argv) || !json.empty()) {
    return stark::RunSmoke(json);
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
