/// \file bench_serve.cc
/// Concurrent query serving: sustained queries/second through the serving
/// front end under a mixed interactive/batch workload with concurrent
/// ingestion churning snapshot epochs.
///
/// `bench_serve --smoke` runs the acceptance self-check instead of the
/// timing suite: 4x more clients than query workers hammer a small
/// admission queue while an ingester publishes new epochs and a CSV tail
/// leg feeds the catalog through the streaming source (including one
/// malformed row, so `stream.source.parse_errors` is exercised). The run
/// asserts that every query terminates with exactly one of {OK,
/// ResourceExhausted, DeadlineExceeded, Cancelled}, that every admitted
/// query's answer matches a serial re-execution over the same snapshot
/// version (differential correctness), that shedding produced typed
/// statuses with Retry-After hints, that interactive p99 stays below batch
/// p50 while the batch class saturates the engine pool, and that the epoch
/// count returns to one after the drain. With `--json=<path>` the latency
/// percentiles and counter deltas land in a JsonReport.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "engine/context.h"
#include "io/csv.h"
#include "piglet/interpreter.h"
#include "serve/catalog.h"
#include "serve/server.h"
#include "stream/source.h"

namespace stark {
namespace {

stream::StreamEvent PointEvent(int64_t id, double x, double y, int64_t t) {
  return stream::StreamEvent(
      id, id % 2 == 0 ? "even" : "odd",
      STObject(Geometry::MakePoint({x, y}), t));
}

/// Deterministic batches: batch 0 is the base grid, batch j >= 1 is a
/// small cluster with distinct ids. Any snapshot version is reproducible
/// as the concatenation of the first `version` batches, which is what the
/// differential check relies on.
std::vector<stream::StreamEvent> MakeBatch(size_t j, size_t base_n) {
  std::vector<stream::StreamEvent> events;
  if (j == 0) {
    events.reserve(base_n);
    for (size_t i = 0; i < base_n; ++i) {
      events.push_back(PointEvent(static_cast<int64_t>(i),
                                  static_cast<double>(i % 50),
                                  static_cast<double>(i / 50),
                                  static_cast<int64_t>(i)));
    }
    return events;
  }
  const int64_t base_id = static_cast<int64_t>(1'000'000 + j * 100);
  events.reserve(8);
  for (int64_t k = 0; k < 8; ++k) {
    events.push_back(PointEvent(base_id + k,
                                static_cast<double>((j * 7 + k) % 50),
                                static_cast<double>((j * 3 + k) % 40),
                                base_id + k));
  }
  return events;
}

constexpr char kInteractiveScript[] =
    "hits = FILTER events BY INTERSECTS('POLYGON((10.5 10.5, 14.5 10.5, "
    "14.5 14.5, 10.5 14.5, 10.5 10.5))', 0, 10000000);\n"
    "DUMP hits;\n";

constexpr char kBatchScript[] =
    "big = FILTER events BY INTERSECTS('POLYGON((-1 -1, 24 -1, 24 20, "
    "-1 20, -1 -1))', 0, 10000000);\n"
    "j = JOIN big, big ON WITHINDISTANCE(1.5);\n"
    "DUMP j;\n";

/// Order-independent comparison key for DUMP output.
std::vector<std::string> SortedLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

/// Serial ground truth: rebuild the snapshot for `version` from the batch
/// log and run `script` through a plain single-threaded interpreter.
std::string Serial(const std::vector<std::vector<stream::StreamEvent>>& log,
                   uint64_t version, const std::string& script) {
  std::vector<stream::StreamEvent> events;
  for (uint64_t b = 0; b < version && b < log.size(); ++b) {
    events.insert(events.end(), log[b].begin(), log[b].end());
  }
  const serve::DatasetSnapshot snap =
      serve::BuildSnapshot(version, std::move(events), 16);

  Context ctx(1);
  std::ostringstream out;
  piglet::Interpreter interp(&ctx, &out);
  piglet::PigRelation rel;
  rel.schema = {"id", "category", "time", "wkt"};
  rel.spatialized = true;
  rel.snapshot = std::make_shared<const serve::DatasetSnapshot>(snap);
  std::vector<piglet::PigRow> rows;
  rows.reserve(rel.snapshot->events->size());
  for (const stream::StreamEvent& e : *rel.snapshot->events) {
    rows.push_back(piglet::RowFromStreamEvent(e));
  }
  rel.rdd = MakeRDD(&ctx, std::move(rows));
  interp.BindRelation("events", std::move(rel));
  if (!interp.RunScript(script).ok()) return "<serial-failed>";
  return out.str();
}

double Percentile(std::vector<uint64_t> ns, double p) {
  if (ns.empty()) return 0;
  std::sort(ns.begin(), ns.end());
  const size_t idx = std::min(
      ns.size() - 1, static_cast<size_t>(p * static_cast<double>(ns.size())));
  return static_cast<double>(ns[idx]);
}

struct Observation {
  Status status;
  uint64_t epoch = 0;
  uint64_t latency_ns = 0;
  uint64_t retry_after_ms = 0;
  std::string output;
  bool batch = false;
};

// ---- timing benchmark -----------------------------------------------------

void BM_Serve_InteractiveQps(benchmark::State& state) {
  const size_t clients = static_cast<size_t>(state.range(0));
  serve::Catalog catalog;
  STARK_CHECK(catalog.CreateDataset("events", 16).ok());
  STARK_CHECK(catalog.Ingest("events", MakeBatch(0, 10'000)).ok());

  serve::ServerOptions options;
  options.query_threads = 4;
  options.engine_threads = 4;
  options.scheduler.queue_limit = 256;
  serve::Server server(&catalog, options);
  STARK_CHECK(server.Start().ok());

  size_t completed = 0;
  for (auto _ : state) {
    std::atomic<size_t> ok{0};
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        std::unique_ptr<serve::Session> session = server.OpenSession();
        for (int i = 0; i < 20; ++i) {
          if (session->Run(kInteractiveScript).status.ok()) ok.fetch_add(1);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    completed += ok.load();
  }
  server.Shutdown();
  state.SetItemsProcessed(static_cast<int64_t>(completed));
}
BENCHMARK(BM_Serve_InteractiveQps)->Arg(4)->Arg(16)->Unit(
    benchmark::kMillisecond);

// ---- --smoke mode ---------------------------------------------------------

int RunSmoke(const std::string& json_path) {
  const std::unique_ptr<obs::MetricsExporter> exporter =
      obs::MetricsExporter::FromEnv();
  int failures = 0;
  auto check = [&failures](bool ok, const char* what) {
    std::fprintf(stderr, "[smoke] %s: %s\n", what, ok ? "ok" : "FAILED");
    if (!ok) ++failures;
  };

  const size_t base_n = bench::EnvSize("STARK_BENCH_SERVE_N", 2'000);
  const obs::MetricsRegistry::Snapshot before = obs::DefaultMetrics().Snap();

  // The batch log doubles as the serial-reconstruction source: version v
  // of the dataset is exactly log[0..v).
  std::mutex log_mu;
  std::vector<std::vector<stream::StreamEvent>> batch_log;

  serve::Catalog catalog;
  STARK_CHECK(catalog.CreateDataset("events", 16).ok());
  {
    std::vector<stream::StreamEvent> base = MakeBatch(0, base_n);
    batch_log.push_back(base);
    STARK_CHECK(catalog.Ingest("events", std::move(base)).ok());
  }

  // CSV tail leg: feed a batch through the streaming source, malformed
  // row included — the per-row WKT failure must bump
  // stream.source.parse_errors without discarding its chunk.
  {
    std::vector<EventRecord> records;
    for (int64_t k = 0; k < 16; ++k) {
      records.push_back(
          {2'000'000 + k, "csv", 2'000'000 + k,
           "POINT (" + std::to_string(20 + k % 5) + " " +
               std::to_string(20 + k / 5) + ")"});
    }
    const std::string csv_path = "/tmp/bench_serve_tail.csv";
    STARK_CHECK(WriteEventsCsv(csv_path, records).ok());
    {
      std::FILE* f = std::fopen(csv_path.c_str(), "a");
      STARK_CHECK(f != nullptr);
      std::fputs("2999999,weird,2999999,NOT-A-WKT\n", f);
      std::fclose(f);
    }
    stream::CsvTailSource tail(csv_path, /*stop_at_eof=*/true);
    std::vector<stream::StreamEvent> polled = tail.Poll(1'000);
    check(polled.size() == records.size(),
          "csv tail delivers every well-formed row");
    batch_log.push_back(polled);
    STARK_CHECK(catalog.Ingest("events", std::move(polled)).ok());
    std::remove(csv_path.c_str());
  }

  serve::ServerOptions options;
  options.query_threads = 4;
  options.engine_threads = 4;
  options.scheduler.queue_limit = 8;  // small on purpose: force shedding
  serve::Server server(&catalog, options);
  STARK_CHECK(server.Start().ok());

  // Ingester: churn epochs for the whole load phase.
  std::atomic<bool> stop_ingest{false};
  std::thread ingester([&] {
    size_t j = 2;
    while (!stop_ingest.load(std::memory_order_acquire)) {
      std::vector<stream::StreamEvent> batch = MakeBatch(j++, base_n);
      {
        std::lock_guard<std::mutex> lock(log_mu);
        batch_log.push_back(batch);
      }
      STARK_CHECK(catalog.Ingest("events", std::move(batch)).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // 4x+ oversubscription: 16 interactive + 3 batch clients over 4 query
  // workers. Batch clients run the quadratic self-join so most of the
  // pool saturates; keeping batch concurrency below the worker count
  // leaves headroom the stride scheduler hands to the interactive class,
  // which is exactly the isolation property under test.
  constexpr size_t kInteractiveClients = 16;
  constexpr size_t kBatchClients = 3;
  constexpr int kQueriesPerInteractive = 25;
  constexpr int kQueriesPerBatch = 3;
  std::mutex obs_mu;
  std::vector<Observation> observations;

  Stopwatch timer;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kInteractiveClients + kBatchClients; ++c) {
    const bool batch = c >= kInteractiveClients;
    clients.emplace_back([&, batch] {
      std::unique_ptr<serve::Session> session = server.OpenSession();
      if (batch) {
        session->set_query_class(serve::QueryClass::kBatch);
      }
      const int n = batch ? kQueriesPerBatch : kQueriesPerInteractive;
      const char* script = batch ? kBatchScript : kInteractiveScript;
      for (int i = 0; i < n; ++i) {
        // A shed batch query retries after a backoff, like a well-behaved
        // client honoring the Retry-After hint (scaled down so the smoke
        // stays fast); interactive clients just move on.
        for (int attempt = 0; attempt < 500; ++attempt) {
          Stopwatch one;
          serve::QueryResult r = session->Run(script);
          Observation o;
          o.status = r.status;
          o.epoch = r.epoch;
          o.latency_ns =
              static_cast<uint64_t>(one.ElapsedSeconds() * 1e9);
          o.retry_after_ms = r.retry_after_ms;
          o.batch = batch;
          const bool retry = batch && r.status.IsResourceExhausted();
          if (r.status.ok()) o.output = std::move(r.output);
          {
            std::lock_guard<std::mutex> lock(obs_mu);
            observations.push_back(std::move(o));
          }
          if (!retry) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        if (!batch) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double elapsed_s = timer.ElapsedSeconds();
  stop_ingest.store(true, std::memory_order_release);
  ingester.join();

  // --- Terminal-status accounting -----------------------------------------
  size_t ok = 0, shed = 0, deadline = 0, cancelled = 0, unexpected = 0;
  size_t shed_without_hint = 0;
  std::vector<uint64_t> interactive_ns, batch_ns;
  for (const Observation& o : observations) {
    if (o.status.ok()) {
      ++ok;
      (o.batch ? batch_ns : interactive_ns).push_back(o.latency_ns);
    } else if (o.status.IsResourceExhausted()) {
      ++shed;
      if (o.retry_after_ms == 0) ++shed_without_hint;
    } else if (o.status.IsDeadlineExceeded()) {
      ++deadline;
    } else if (o.status.IsCancelled()) {
      ++cancelled;
    } else {
      ++unexpected;
      std::fprintf(stderr, "[smoke] unexpected status: %s\n",
                   o.status.ToString().c_str());
    }
  }
  const size_t total = kInteractiveClients * kQueriesPerInteractive +
                       kBatchClients * kQueriesPerBatch;
  // Shed batch queries retry, so attempts >= logical queries.
  check(observations.size() >= total, "every query returned");
  check(unexpected == 0,
        "every status in {OK, ResourceExhausted, DeadlineExceeded, "
        "Cancelled}");
  check(ok > 0, "some queries were admitted and completed");
  check(shed > 0, "the small queue shed load");
  check(shed_without_hint == 0, "every shed reply carries a Retry-After hint");

  // --- Differential correctness -------------------------------------------
  // Every admitted interactive answer must equal a serial re-execution
  // over the reconstructed snapshot of its epoch (version = epoch - 1:
  // epoch 1 is the empty pre-ingest publication). Verify one observation
  // per distinct epoch to keep the smoke fast; correctness is per-snapshot,
  // so one witness per epoch covers them all.
  std::vector<std::vector<stream::StreamEvent>> log_copy;
  {
    std::lock_guard<std::mutex> lock(log_mu);
    log_copy = batch_log;
  }
  size_t verified = 0, wrong = 0;
  std::vector<uint64_t> seen_epochs;
  for (const Observation& o : observations) {
    if (!o.status.ok() || o.batch || o.epoch == 0) continue;
    if (std::find(seen_epochs.begin(), seen_epochs.end(), o.epoch) !=
        seen_epochs.end()) {
      continue;
    }
    seen_epochs.push_back(o.epoch);
    if (seen_epochs.size() > 8) break;
    const std::string serial =
        Serial(log_copy, o.epoch - 1, kInteractiveScript);
    if (SortedLines(o.output) == SortedLines(serial)) {
      ++verified;
    } else {
      ++wrong;
      std::fprintf(stderr, "[smoke] wrong answer at epoch %llu\n",
                   static_cast<unsigned long long>(o.epoch));
    }
  }
  check(verified > 0, "differential check covered at least one epoch");
  check(wrong == 0, "admitted answers match serial execution per epoch");

  // --- Latency isolation ---------------------------------------------------
  const double int_p99 = Percentile(interactive_ns, 0.99);
  const double batch_p50 = Percentile(batch_ns, 0.50);
  check(!interactive_ns.empty() && !batch_ns.empty(),
        "both classes completed some queries");
  check(int_p99 < batch_p50,
        "interactive p99 below batch p50 under saturation");

  // --- Drain ----------------------------------------------------------------
  server.Shutdown();
  Result<serve::DatasetRegistry*> registry = catalog.Registry("events");
  STARK_CHECK(registry.ok());
  check(registry.ValueOrDie()->LiveEpochs() == 1,
        "epoch count returns to one after drain");

  const int64_t parse_errors =
      obs::DefaultMetrics().GetCounter("stream.source.parse_errors")->Value();
  check(parse_errors > 0, "malformed CSV row surfaced in parse_errors");

  std::fprintf(
      stderr,
      "[smoke] %zu queries in %.3fs: %zu ok, %zu shed, %zu deadline, "
      "%zu cancelled; interactive p99 %.2fms, batch p50 %.2fms\n",
      total, elapsed_s, ok, shed, deadline, cancelled, int_p99 / 1e6,
      batch_p50 / 1e6);

  if (!json_path.empty()) {
    bench::JsonReport report;
    report.Add("serve.queries", static_cast<double>(total));
    report.Add("serve.ok", static_cast<double>(ok));
    report.Add("serve.shed", static_cast<double>(shed));
    report.Add("serve.qps",
               elapsed_s > 0 ? static_cast<double>(ok) / elapsed_s : 0);
    report.Add("serve.interactive_p99_ms", int_p99 / 1e6);
    report.Add("serve.batch_p50_ms", batch_p50 / 1e6);
    report.Add("serve.epochs_published",
               static_cast<double>(log_copy.size()));
    report.Add("serve.elapsed_s", elapsed_s);
    report.AddMetricsDelta(before);
    report.WriteTo(json_path);
  }

  std::fprintf(stderr, "[smoke] %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stark

int main(int argc, char** argv) {
  stark::bench::TraceFromEnv trace_guard;
  if (stark::bench::SmokeRequested(argc, argv)) {
    return stark::RunSmoke(stark::bench::JsonPathFromArgs(argc, argv));
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
