/// \file bench_knn.cc
/// Experiment E4 (spatialbm extended suite): k-nearest-neighbor search for
/// k in {1, 5, 10, 50}, comparing the per-partition scan operator with the
/// R-tree branch-and-bound search of a persistent index.
#include <memory>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "partition/grid_partitioner.h"
#include "spatial_rdd/knn_join.h"
#include "spatial_rdd/spatial_rdd.h"

namespace stark {
namespace {

size_t N() { return bench::EnvSize("STARK_BENCH_KNN_N", 100'000); }

Context* Ctx() {
  static Context ctx;
  return &ctx;
}

const SpatialRDD<int64_t>& Data() {
  static const SpatialRDD<int64_t> rdd = [] {
    auto points = bench::BenchPoints(N());
    std::vector<std::pair<STObject, int64_t>> data;
    data.reserve(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
      data.emplace_back(std::move(points[i]), static_cast<int64_t>(i));
    }
    return SpatialRDD<int64_t>::FromVector(Ctx(), std::move(data)).Cache();
  }();
  return rdd;
}

const IndexedSpatialRDD<int64_t>& Indexed() {
  static const IndexedSpatialRDD<int64_t> indexed = [] {
    auto idx = Data().Index(16);
    idx.ToElements().Count();  // force tree construction outside timing
    return idx;
  }();
  return indexed;
}

void BM_Knn_Scan(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const STObject query(Geometry::MakePoint(42.0, 57.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Data().Knn(query, k));
  }
  state.counters["k"] = static_cast<double>(k);
}
BENCHMARK(BM_Knn_Scan)
    ->Arg(1)
    ->Arg(5)
    ->Arg(10)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond);

void BM_Knn_Indexed(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const STObject query(Geometry::MakePoint(42.0, 57.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Indexed().Knn(query, k));
  }
  state.counters["k"] = static_cast<double>(k);
}
BENCHMARK(BM_Knn_Indexed)
    ->Arg(1)
    ->Arg(5)
    ->Arg(10)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond);

/// Query point far outside the data: branch-and-bound must still prune.
void BM_Knn_Indexed_RemoteQuery(benchmark::State& state) {
  const STObject query(Geometry::MakePoint(-500.0, -500.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Indexed().Knn(query, 10));
  }
}
BENCHMARK(BM_Knn_Indexed_RemoteQuery)->Unit(benchmark::kMillisecond);

/// kNN join: k nearest right points for each of 2000 left points, with and
/// without spatial partitioning of the right side (extent pruning).
void BM_KnnJoin(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const bool partitioned = state.range(1) != 0;
  static const SpatialRDD<int64_t> left = [] {
    auto pts = bench::BenchPoints(2'000, /*seed=*/77);
    std::vector<std::pair<STObject, int64_t>> data;
    for (size_t i = 0; i < pts.size(); ++i) {
      data.emplace_back(std::move(pts[i]), static_cast<int64_t>(i));
    }
    return SpatialRDD<int64_t>::FromVector(Ctx(), std::move(data)).Cache();
  }();
  static const SpatialRDD<int64_t> right_parted = [] {
    auto grid = std::make_shared<GridPartitioner>(bench::BenchUniverse(), 6);
    return Data().PartitionBy(grid).Cache();
  }();
  const SpatialRDD<int64_t>& right = partitioned ? right_parted : Data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(KnnJoin(left, right, k).Count());
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["partitioned"] = partitioned ? 1 : 0;
}
BENCHMARK(BM_KnnJoin)
    ->Args({5, 0})
    ->Args({5, 1})
    ->Args({20, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stark

BENCHMARK_MAIN();
