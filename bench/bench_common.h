/// \file bench_common.h
/// Shared helpers for the benchmark binaries: environment-variable sizing
/// (so the paper-scale 1M-point runs are opt-in) and workload construction.
#ifndef STARK_BENCH_BENCH_COMMON_H_
#define STARK_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <string>
#include <vector>

#include "io/generator.h"

namespace stark {
namespace bench {

/// Reads a size_t from the environment, with a default.
inline size_t EnvSize(const char* name, size_t default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return default_value;
  return static_cast<size_t>(std::strtoull(value, nullptr, 10));
}

/// Reads a double from the environment, with a default.
inline double EnvDouble(const char* name, double default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return default_value;
  return std::strtod(value, nullptr);
}

/// The benchmark universe used throughout the suite.
inline Envelope BenchUniverse() { return Envelope(0, 0, 100, 100); }

/// The skewed ("land-mass") point workload of the evaluation: clustered
/// events plus background noise, matching the paper's motivation.
inline std::vector<STObject> BenchPoints(size_t count, uint64_t seed = 42) {
  SkewedPointsOptions options;
  options.count = count;
  options.seed = seed;
  options.universe = BenchUniverse();
  options.clusters = 12;
  options.cluster_spread = 0.02;
  options.noise_fraction = 0.05;
  return GenerateSkewedPoints(options);
}

/// Polygon workload for the join/filter benchmarks.
inline std::vector<STObject> BenchPolygons(size_t count, uint64_t seed = 43) {
  PolygonsOptions options;
  options.count = count;
  options.seed = seed;
  options.universe = BenchUniverse();
  options.min_radius = 0.5;
  options.max_radius = 3.0;
  return GenerateRandomPolygons(options);
}

}  // namespace bench
}  // namespace stark

#endif  // STARK_BENCH_BENCH_COMMON_H_
