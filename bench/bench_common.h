/// \file bench_common.h
/// Shared helpers for the benchmark binaries: environment-variable sizing
/// (so the paper-scale 1M-point runs are opt-in), workload construction,
/// and span-aware stage timing shared with the obs tracing layer. Set
/// STARK_TRACE=<file> to capture a Chrome trace of a benchmark run.
#ifndef STARK_BENCH_BENCH_COMMON_H_
#define STARK_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include <memory>

#include "common/stopwatch.h"
#include "fault/failpoint.h"
#include "io/generator.h"
#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/trace.h"

namespace stark {
namespace bench {

/// Reads a size_t from the environment, with a default. A value that does
/// not parse as a non-negative integer (or has trailing junk) falls back
/// to the default with a warning instead of silently becoming 0 — a bad
/// STARK_N must not produce an empty benchmark workload.
inline size_t EnvSize(const char* name, size_t default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return default_value;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    std::fprintf(stderr,
                 "warning: %s='%s' is not a valid size, using default %zu\n",
                 name, value, default_value);
    return default_value;
  }
  return static_cast<size_t>(parsed);
}

/// Reads a double from the environment, with a default. Invalid values
/// fall back to the default with a warning, like EnvSize.
inline double EnvDouble(const char* name, double default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return default_value;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    std::fprintf(stderr,
                 "warning: %s='%s' is not a valid number, using default %g\n",
                 name, value, default_value);
    return default_value;
  }
  return parsed;
}

/// Times a named benchmark stage with the shared obs idiom: reports the
/// scope's duration into the "bench.<name>.ns" histogram and, when tracing
/// is enabled, emits a matching span into the Chrome trace.
class ScopedStage {
 public:
  explicit ScopedStage(const std::string& name)
      : span_(obs::DefaultTracer(), "bench." + name),
        timer_(obs::DefaultMetrics().GetHistogram("bench." + name + ".ns")) {}

 private:
  obs::ScopedSpan span_;
  ScopedTimer<obs::Histogram> timer_;
};

/// Enables the default tracer when STARK_TRACE=<file> is set; the returned
/// guard writes the trace on destruction (instantiate once in main-scope,
/// e.g. as a static in a workload builder). Also warns when STARK_FAILPOINTS
/// armed any fault-injection site, since retried tasks would silently skew
/// the numbers; the end-of-run summary reports how many faults fired.
class TraceFromEnv {
 public:
  TraceFromEnv() {
    const char* path = std::getenv("STARK_TRACE");
    if (path != nullptr && *path != '\0') {
      path_ = path;
      obs::DefaultTracer().Enable();
    }
    // STARK_METRICS_EXPORT=<path>: continuous OpenMetrics snapshots over
    // the benchmark run; the exporter writes a final snapshot when this
    // guard is destroyed at process exit.
    exporter_ = obs::MetricsExporter::FromEnv();
    for (const fault::FailPoint* fp : fault::DefaultFailPoints().List()) {
      if (fp->armed()) {
        std::fprintf(stderr,
                     "warning: fail point %s is armed (%s) — benchmark "
                     "numbers include fault-recovery work\n",
                     fp->name().c_str(), fp->policy().ToString().c_str());
      }
    }
  }
  ~TraceFromEnv() {
    const uint64_t injected =
        obs::DefaultMetrics().GetCounter("engine.fault.injected")->Value();
    const uint64_t retries =
        obs::DefaultMetrics().GetCounter("engine.task.retries")->Value();
    if (injected > 0 || retries > 0) {
      std::fprintf(stderr,
                   "fault summary: %llu injected fault(s), %llu task "
                   "retr%s during this run\n",
                   static_cast<unsigned long long>(injected),
                   static_cast<unsigned long long>(retries),
                   retries == 1 ? "y" : "ies");
    }
    if (path_.empty()) return;
    const Status status = obs::DefaultTracer().WriteChromeTrace(path_);
    if (!status.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   status.ToString().c_str());
    }
  }

 private:
  std::string path_;
  std::unique_ptr<obs::MetricsExporter> exporter_;
};

/// \brief Minimal flat JSON metric report shared by the bench binaries.
///
/// Every binary accepts `--json=<path>` (see JsonPathFromArgs) and, in its
/// smoke/self-check mode, writes `{"metric": value, ...}` there — the raw
/// material for the checked-in BENCH_*.json snapshots (workflow in
/// docs/PERFORMANCE.md). Values are doubles; timings are in seconds.
class JsonReport {
 public:
  void Add(std::string name, double value) {
    entries_.emplace_back(std::move(name), value);
  }

  /// Embeds the engine-metrics delta accumulated since \p before was
  /// snapped: every counter that moved during the benchmark becomes a
  /// "metrics.<name>" entry. Lets the checked-in BENCH_*.json snapshots
  /// carry retries/cache-hits/pruning alongside the timings, so a perf
  /// regression can be told apart from a behavior change.
  void AddMetricsDelta(const obs::MetricsRegistry::Snapshot& before) {
    const obs::MetricsRegistry::Snapshot after = obs::DefaultMetrics().Snap();
    for (const auto& [name, value] : after.counters) {
      uint64_t prior = 0;
      const auto it = before.counters.find(name);
      if (it != before.counters.end()) prior = it->second;
      if (value > prior) {
        Add("metrics." + name, static_cast<double>(value - prior));
      }
    }
  }

  /// Writes the report; returns false (with a stderr warning) on I/O error.
  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write JSON report to %s\n",
                   path.c_str());
      return false;
    }
    std::fprintf(f, "{\n");
    for (size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "  %s: %.6f%s\n",
                   obs::JsonQuoted(entries_[i].first).c_str(),
                   entries_[i].second, i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::fprintf(stderr, "[bench] JSON report written to %s\n", path.c_str());
    return true;
  }

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

/// Extracts the path from a `--json=<path>` argument, or "" when absent.
inline std::string JsonPathFromArgs(int argc, char** argv) {
  const std::string prefix = "--json=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return std::string();
}

/// True when `--smoke` is among the arguments.
inline bool SmokeRequested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") return true;
  }
  return false;
}

/// The benchmark universe used throughout the suite.
inline Envelope BenchUniverse() { return Envelope(0, 0, 100, 100); }

/// The skewed ("land-mass") point workload of the evaluation: clustered
/// events plus background noise, matching the paper's motivation.
inline std::vector<STObject> BenchPoints(size_t count, uint64_t seed = 42) {
  SkewedPointsOptions options;
  options.count = count;
  options.seed = seed;
  options.universe = BenchUniverse();
  options.clusters = 12;
  options.cluster_spread = 0.02;
  options.noise_fraction = 0.05;
  return GenerateSkewedPoints(options);
}

/// Polygon workload for the join/filter benchmarks.
inline std::vector<STObject> BenchPolygons(size_t count, uint64_t seed = 43) {
  PolygonsOptions options;
  options.count = count;
  options.seed = seed;
  options.universe = BenchUniverse();
  options.min_radius = 0.5;
  options.max_radius = 3.0;
  return GenerateRandomPolygons(options);
}

}  // namespace bench
}  // namespace stark

#endif  // STARK_BENCH_BENCH_COMMON_H_
