/// \file bench_stream.cc
/// Streaming throughput: events/second through the micro-batch driver with
/// event-time windowing and CEP evaluation over fired windows.
///
/// `bench_stream --smoke` runs a fast self-check instead of the timing
/// suite: a seeded out-of-order generator stream replays through a windowed
/// COUNT query, and the run asserts that nothing was late or dropped, that
/// exactly the expected number of windows fired, and that the watermark lag
/// gauge returns to zero once the stream drains. With `--json=<path>` the
/// sustained events/sec and the counter deltas land in a JsonReport.
#include <cstring>
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "engine/context.h"
#include "stream/stream_context.h"

namespace stark {
namespace {

Context* Ctx() {
  static Context ctx;
  return &ctx;
}

stream::GeneratorOptions GenOptions(size_t count, int64_t disorder) {
  stream::GeneratorOptions gen;
  gen.count = count;
  gen.seed = 42;
  gen.time_step = 1;
  gen.disorder = disorder;
  return gen;
}

stream::PatternSpec CountPattern() {
  stream::PatternSpec pattern;
  pattern.kind = stream::PatternKind::kCount;
  stream::StepPredicate step;
  step.category = "disaster";
  step.region = STObject(Geometry::MakeBox(Envelope(10, 10, 80, 80)));
  step.pred = JoinPredicate::Intersects();
  pattern.steps.push_back(step);
  pattern.threshold = 1;
  return pattern;
}

/// One full replay of a generator stream; returns events ingested.
size_t ReplayOnce(size_t count, int64_t disorder, size_t window,
                  bool with_pattern) {
  stream::StreamContext::Options options;
  options.window.size = static_cast<int64_t>(window);
  if (with_pattern) options.pattern = CountPattern();
  stream::StreamContext sc(Ctx(), options);
  sc.AddSource(std::make_unique<stream::GeneratorSource>(
                   GenOptions(count, disorder)),
               /*watermark_bound=*/disorder);
  STARK_CHECK(sc.RunToCompletion().ok());
  return sc.stats().ingested;
}

size_t N() { return bench::EnvSize("STARK_BENCH_STREAM_N", 200'000); }

void BM_Stream_WindowedIngest(benchmark::State& state) {
  const size_t window = static_cast<size_t>(state.range(0));
  size_t ingested = 0;
  for (auto _ : state) {
    ingested += ReplayOnce(N(), /*disorder=*/16, window,
                           /*with_pattern=*/false);
  }
  state.SetItemsProcessed(static_cast<int64_t>(ingested));
}
BENCHMARK(BM_Stream_WindowedIngest)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_Stream_WindowedCepCount(benchmark::State& state) {
  const size_t window = static_cast<size_t>(state.range(0));
  size_t ingested = 0;
  for (auto _ : state) {
    ingested += ReplayOnce(N(), /*disorder=*/16, window,
                           /*with_pattern=*/true);
  }
  state.SetItemsProcessed(static_cast<int64_t>(ingested));
}
BENCHMARK(BM_Stream_WindowedCepCount)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// ---- --smoke mode ---------------------------------------------------------

int RunSmoke(const std::string& json_path) {
  const std::unique_ptr<obs::MetricsExporter> exporter =
      obs::MetricsExporter::FromEnv();
  fault::DefaultFailPoints().DisarmAll();
  int failures = 0;
  auto check = [&failures](bool ok, const char* what) {
    std::fprintf(stderr, "[smoke] %s: %s\n", what, ok ? "ok" : "FAILED");
    if (!ok) ++failures;
  };

  const size_t count = bench::EnvSize("STARK_BENCH_STREAM_N", 50'000);
  const int64_t disorder = 16;
  const size_t window = 100;
  const obs::MetricsRegistry::Snapshot before = obs::DefaultMetrics().Snap();

  Context ctx;
  stream::StreamContext::Options options;
  options.window.size = static_cast<int64_t>(window);
  options.pattern = CountPattern();
  stream::StreamContext sc(&ctx, options);
  sc.AddSource(std::make_unique<stream::GeneratorSource>(
                   GenOptions(count, disorder)),
               /*watermark_bound=*/disorder);

  Stopwatch timer;
  const Status status = sc.RunToCompletion();
  const double elapsed_s = timer.ElapsedSeconds();
  check(status.ok(), "continuous query completes");

  const stream::StreamStats stats = sc.stats();
  // Event i carries time i, so with the watermark bound covering the
  // generator's disorder nothing may be late, and tumbling windows cover
  // [0, count) densely.
  const uint64_t expected_windows = (count + window - 1) / window;
  check(stats.ingested == count, "every generated event ingested");
  check(stats.late == 0 && stats.dropped == 0,
        "bound covers disorder: nothing late, nothing dropped");
  check(stats.duplicates == 0, "exactly-once generator: no duplicates");
  check(stats.windows_fired == expected_windows,
        "tumbling windows cover the stream exactly");
  check(stats.matches > 0, "CEP count pattern fires");

  // Watermark-lag self-check: while draining the lag gauge tracks
  // max_seen - watermark; after the stream drains it must read zero.
  const int64_t final_lag =
      obs::DefaultMetrics().GetGauge("stream.watermark_lag_ms")->Value();
  check(final_lag == 0, "watermark lag returns to zero at end-of-stream");

  const double events_per_sec =
      elapsed_s > 0 ? static_cast<double>(stats.ingested) / elapsed_s : 0;
  std::fprintf(stderr,
               "[smoke] %llu events in %.3fs (%.0f events/s), %llu windows, "
               "%llu matches\n",
               static_cast<unsigned long long>(stats.ingested), elapsed_s,
               events_per_sec,
               static_cast<unsigned long long>(stats.windows_fired),
               static_cast<unsigned long long>(stats.matches));

  if (!json_path.empty()) {
    bench::JsonReport report;
    report.Add("stream.events", static_cast<double>(stats.ingested));
    report.Add("stream.events_per_sec", events_per_sec);
    report.Add("stream.windows_fired",
               static_cast<double>(stats.windows_fired));
    report.Add("stream.matches", static_cast<double>(stats.matches));
    report.Add("stream.elapsed_s", elapsed_s);
    report.Add("stream.watermark_lag_final", static_cast<double>(final_lag));
    report.AddMetricsDelta(before);
    report.WriteTo(json_path);
  }

  std::fprintf(stderr, "[smoke] %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stark

int main(int argc, char** argv) {
  stark::bench::TraceFromEnv trace_guard;
  if (stark::bench::SmokeRequested(argc, argv)) {
    return stark::RunSmoke(stark::bench::JsonPathFromArgs(argc, argv));
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
