/// \file bench_dbscan.cc
/// Experiment E7: the §2.3 density-based clustering operator — distributed
/// MR-DBSCAN-style DBSCAN (partitioning + eps-border replication + local
/// clustering + merge) against the sequential reference, over data-size and
/// eps sweeps.
#include <memory>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "clustering/distributed_dbscan.h"
#include "partition/bsp_partitioner.h"
#include "partition/grid_partitioner.h"

namespace stark {
namespace {

Context* Ctx() {
  static Context ctx;
  return &ctx;
}

std::vector<Coordinate> CoordsOf(const std::vector<STObject>& points) {
  std::vector<Coordinate> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(p.Centroid());
  return out;
}

SpatialRDD<int64_t> RddOf(const std::vector<STObject>& points) {
  std::vector<std::pair<STObject, int64_t>> data;
  data.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    data.emplace_back(points[i], static_cast<int64_t>(i));
  }
  return SpatialRDD<int64_t>::FromVector(Ctx(), std::move(data)).Cache();
}

void BM_Dbscan_Sequential(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto points = bench::BenchPoints(n);
  const auto coords = CoordsOf(points);
  size_t clusters = 0;
  for (auto _ : state) {
    clusters = DbscanLocal(coords, {0.5, 8}).num_clusters;
    benchmark::DoNotOptimize(clusters);
  }
  state.counters["clusters"] = static_cast<double>(clusters);
}
BENCHMARK(BM_Dbscan_Sequential)
    ->Arg(5'000)
    ->Arg(20'000)
    ->Arg(50'000)
    ->Unit(benchmark::kMillisecond);

void BM_Dbscan_Distributed_Grid(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto points = bench::BenchPoints(n);
  auto rdd = RddOf(points);
  rdd.rdd().Count();
  auto grid = std::make_shared<GridPartitioner>(bench::BenchUniverse(), 4);
  size_t clusters = 0;
  for (auto _ : state) {
    int64_t max_label = kNoise;
    for (const auto& [elem, label] :
         DistributedDbscan(rdd, {0.5, 8}, grid).Collect()) {
      max_label = std::max(max_label, label);
    }
    clusters = static_cast<size_t>(max_label + 1);
    benchmark::DoNotOptimize(clusters);
  }
  state.counters["clusters"] = static_cast<double>(clusters);
}
BENCHMARK(BM_Dbscan_Distributed_Grid)
    ->Arg(5'000)
    ->Arg(20'000)
    ->Arg(50'000)
    ->Unit(benchmark::kMillisecond);

void BM_Dbscan_Distributed_Bsp(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto points = bench::BenchPoints(n);
  auto rdd = RddOf(points);
  rdd.rdd().Count();
  BSPartitioner::Options options;
  options.max_cost = n / 16 + 1;
  auto bsp = std::make_shared<BSPartitioner>(bench::BenchUniverse(),
                                             CoordsOf(points), options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DistributedDbscan(rdd, {0.5, 8}, bsp).Count());
  }
}
BENCHMARK(BM_Dbscan_Distributed_Bsp)
    ->Arg(20'000)
    ->Arg(50'000)
    ->Unit(benchmark::kMillisecond);

/// Eps sweep: larger eps -> more replication across borders -> more merge
/// work. Counters show the replication the halo causes.
void BM_Dbscan_EpsSweep(benchmark::State& state) {
  const double eps = static_cast<double>(state.range(0)) / 10.0;
  const auto points = bench::BenchPoints(20'000);
  auto rdd = RddOf(points);
  rdd.rdd().Count();
  auto grid = std::make_shared<GridPartitioner>(bench::BenchUniverse(), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DistributedDbscan(rdd, {eps, 8}, grid).Count());
  }
  state.counters["eps"] = eps;
}
BENCHMARK(BM_Dbscan_EpsSweep)
    ->Arg(2)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stark

BENCHMARK_MAIN();
