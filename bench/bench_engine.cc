/// \file bench_engine.cc
/// Substrate benchmark (supporting DESIGN.md's substitution argument):
/// throughput of the sparklet engine primitives that every STARK operator
/// is built from — map/filter scans, shuffles, reduceByKey and caching —
/// so the E1–E8 numbers can be read relative to the engine's own costs.
#include <numeric>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "engine/pair_rdd.h"
#include "engine/rdd.h"

namespace stark {
namespace {

size_t N() { return bench::EnvSize("STARK_BENCH_ENGINE_N", 1'000'000); }

Context* Ctx() {
  static Context ctx;
  return &ctx;
}

const RDD<int64_t>& Data() {
  static const RDD<int64_t> rdd = [] {
    std::vector<int64_t> data(N());
    std::iota(data.begin(), data.end(), 0);
    return MakeRDD(Ctx(), std::move(data), 16).Cache();
  }();
  return rdd;
}

void BM_Engine_MapCount(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Data().Map([](int64_t& x) { return x * 2 + 1; }).Count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(N()));
}
BENCHMARK(BM_Engine_MapCount)->Unit(benchmark::kMillisecond);

void BM_Engine_FilterCount(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Data().Filter([](const int64_t& x) { return x % 7 == 0; }).Count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(N()));
}
BENCHMARK(BM_Engine_FilterCount)->Unit(benchmark::kMillisecond);

void BM_Engine_Fold(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Data().Fold(int64_t{0}, [](int64_t a, int64_t b) { return a + b; }));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(N()));
}
BENCHMARK(BM_Engine_Fold)->Unit(benchmark::kMillisecond);

void BM_Engine_Shuffle(benchmark::State& state) {
  const size_t targets = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Data()
            .PartitionBy(targets,
                         [targets](const int64_t& x) {
                           return static_cast<size_t>(x) % targets;
                         })
            .NumPartitions());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(N()));
  state.counters["targets"] = static_cast<double>(targets);
}
BENCHMARK(BM_Engine_Shuffle)
    ->Arg(8)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_Engine_ReduceByKey(benchmark::State& state) {
  static const RDD<std::pair<int64_t, int64_t>> pairs = [] {
    std::vector<std::pair<int64_t, int64_t>> data;
    data.reserve(N());
    for (size_t i = 0; i < N(); ++i) {
      data.emplace_back(static_cast<int64_t>(i % 1024), 1);
    }
    return MakeRDD(Ctx(), std::move(data), 16).Cache();
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ReduceByKey(pairs, [](int64_t a, int64_t b) { return a + b; })
            .Count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(N()));
}
BENCHMARK(BM_Engine_ReduceByKey)->Unit(benchmark::kMillisecond);

void BM_Engine_CacheHitCount(benchmark::State& state) {
  // Counting a cached RDD measures the per-evaluation overhead floor
  // (partition copy + task dispatch).
  Data().Count();  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(Data().Count());
  }
}
BENCHMARK(BM_Engine_CacheHitCount)->Unit(benchmark::kMillisecond);

void BM_Engine_PrunedCount(benchmark::State& state) {
  // Same as above but with 15/16 partitions pruned: the pruning fast path.
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Data().PrunePartitions([](size_t p) { return p == 0; }).Count());
  }
}
BENCHMARK(BM_Engine_PrunedCount)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stark

BENCHMARK_MAIN();
