/// \file bench_engine.cc
/// Substrate benchmark (supporting DESIGN.md's substitution argument):
/// throughput of the sparklet engine primitives that every STARK operator
/// is built from — map/filter scans, shuffles, reduceByKey and caching —
/// so the E1–E8 numbers can be read relative to the engine's own costs.
///
/// `bench_engine --smoke` runs a fast self-checking tail-latency scenario
/// instead of the timing suite: one task is delayed to 20x the median via
/// the engine.task.run delay failpoint, and the run asserts that
/// speculative execution recovers the job wall time (see docs/
/// FAULT_INJECTION.md).
#include <atomic>
#include <chrono>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "engine/pair_rdd.h"
#include "engine/rdd.h"

namespace stark {
namespace {

size_t N() { return bench::EnvSize("STARK_BENCH_ENGINE_N", 1'000'000); }

Context* Ctx() {
  static Context ctx;
  return &ctx;
}

const RDD<int64_t>& Data() {
  static const RDD<int64_t> rdd = [] {
    std::vector<int64_t> data(N());
    std::iota(data.begin(), data.end(), 0);
    return MakeRDD(Ctx(), std::move(data), 16).Cache();
  }();
  return rdd;
}

void BM_Engine_MapCount(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Data().Map([](int64_t& x) { return x * 2 + 1; }).Count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(N()));
}
BENCHMARK(BM_Engine_MapCount)->Unit(benchmark::kMillisecond);

void BM_Engine_FilterCount(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Data().Filter([](const int64_t& x) { return x % 7 == 0; }).Count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(N()));
}
BENCHMARK(BM_Engine_FilterCount)->Unit(benchmark::kMillisecond);

void BM_Engine_Fold(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Data().Fold(int64_t{0}, [](int64_t a, int64_t b) { return a + b; }));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(N()));
}
BENCHMARK(BM_Engine_Fold)->Unit(benchmark::kMillisecond);

void BM_Engine_Shuffle(benchmark::State& state) {
  const size_t targets = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Data()
            .PartitionBy(targets,
                         [targets](const int64_t& x) {
                           return static_cast<size_t>(x) % targets;
                         })
            .NumPartitions());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(N()));
  state.counters["targets"] = static_cast<double>(targets);
}
BENCHMARK(BM_Engine_Shuffle)
    ->Arg(8)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_Engine_ReduceByKey(benchmark::State& state) {
  static const RDD<std::pair<int64_t, int64_t>> pairs = [] {
    std::vector<std::pair<int64_t, int64_t>> data;
    data.reserve(N());
    for (size_t i = 0; i < N(); ++i) {
      data.emplace_back(static_cast<int64_t>(i % 1024), 1);
    }
    return MakeRDD(Ctx(), std::move(data), 16).Cache();
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ReduceByKey(pairs, [](int64_t a, int64_t b) { return a + b; })
            .Count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(N()));
}
BENCHMARK(BM_Engine_ReduceByKey)->Unit(benchmark::kMillisecond);

void BM_Engine_CacheHitCount(benchmark::State& state) {
  // Counting a cached RDD measures the per-evaluation overhead floor
  // (partition copy + task dispatch).
  Data().Count();  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(Data().Count());
  }
}
BENCHMARK(BM_Engine_CacheHitCount)->Unit(benchmark::kMillisecond);

void BM_Engine_PrunedCount(benchmark::State& state) {
  // Same as above but with 15/16 partitions pruned: the pruning fast path.
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Data().PrunePartitions([](size_t p) { return p == 0; }).Count());
  }
}
BENCHMARK(BM_Engine_PrunedCount)->Unit(benchmark::kMillisecond);

// ---- --smoke mode ---------------------------------------------------------

/// Tail-latency check for CI: a 4-task job where one task is a 20x-median
/// straggler. Without speculation the job waits out the full delay
/// (> 10x the clean wall time); with an aggressive speculation policy a
/// backup copy finishes first and the job completes in < 3x the clean
/// wall time, with byte-identical results.
constexpr size_t kTasks = 4;
constexpr int kTaskMs = 50;  // per-task work (sleep stands in for CPU);
                             // the armed delay of 1000ms is 20x this.

int RunSmoke() {
  // STARK_METRICS_EXPORT=<path>: continuous OpenMetrics snapshots over the
  // smoke run; the CI observability job validates the final file with
  // tools/openmetrics_check. The destructor writes the last snapshot.
  const std::unique_ptr<obs::MetricsExporter> exporter =
      obs::MetricsExporter::FromEnv();
  fault::DefaultFailPoints().DisarmAll();
  int failures = 0;
  auto check = [&failures](bool ok, const char* what) {
    std::fprintf(stderr, "[smoke] %s: %s\n", what, ok ? "ok" : "FAILED");
    if (!ok) ++failures;
  };

  obs::Counter* const wins =
      obs::DefaultMetrics().GetCounter("engine.task.speculation_wins");
  obs::Counter* const speculated =
      obs::DefaultMetrics().GetCounter("engine.task.speculated");

  // Each run records which partitions executed user code; results must be
  // identical with and without speculation (exactly-once commit).
  auto run_job = [&](Context* ctx, std::vector<uint64_t>* out) {
    out->assign(kTasks, 0);
    return ctx->TryRunTasks("bench.smoke", kTasks, [out](size_t p) {
      std::this_thread::sleep_for(std::chrono::milliseconds(kTaskMs));
      (*out)[p] = p * p + 1;
    });
  };

  // Clean baseline: 4 tasks on 4 workers, no faults.
  std::vector<uint64_t> base_out;
  double base_s = 0;
  {
    Context ctx(kTasks);
    SpeculationPolicy off;
    off.enabled = false;
    ctx.set_speculation_policy(off);
    Stopwatch w;
    const Status status = run_job(&ctx, &base_out);
    base_s = w.ElapsedSeconds();
    check(status.ok(), "baseline job succeeds");
  }

  // Straggler with speculation OFF: the job must wait out the delay.
  std::vector<uint64_t> off_out;
  double off_s = 0;
  {
    Context ctx(kTasks);
    SpeculationPolicy off;
    off.enabled = false;
    ctx.set_speculation_policy(off);
    STARK_CHECK(fault::DefaultFailPoints()
                    .ArmFromSpec("engine.task.run=delay:1000@nth:1")
                    .ok());
    Stopwatch w;
    const Status status = run_job(&ctx, &off_out);
    off_s = w.ElapsedSeconds();
    fault::DefaultFailPoints().DisarmAll();
    check(status.ok(), "straggler job (speculation off) succeeds");
  }

  // Straggler with aggressive speculation ON: a backup copy of the delayed
  // task wins and the job returns long before the straggler wakes.
  std::vector<uint64_t> on_out;
  double on_s = 0;
  const uint64_t wins_before = wins->Value();
  const uint64_t speculated_before = speculated->Value();
  {
    Context ctx(kTasks);
    SpeculationPolicy aggressive;
    aggressive.enabled = true;
    aggressive.quantile = 0.5;
    aggressive.multiplier = 1.25;
    aggressive.min_task_ms = 5;
    ctx.set_speculation_policy(aggressive);
    STARK_CHECK(fault::DefaultFailPoints()
                    .ArmFromSpec("engine.task.run=delay:1000@nth:1")
                    .ok());
    Stopwatch w;
    const Status status = run_job(&ctx, &on_out);
    on_s = w.ElapsedSeconds();
    fault::DefaultFailPoints().DisarmAll();
    check(status.ok(), "straggler job (speculation on) succeeds");
    // The Context dtor joins the still-sleeping original copy here; that
    // wait is deliberately outside the timed window.
  }
  // Counter deltas are read only after the pool joined: the winning copy
  // bumps speculation_wins after the commit that releases the driver.
  const uint64_t wins_delta = wins->Value() - wins_before;
  const uint64_t speculated_delta = speculated->Value() - speculated_before;

  std::fprintf(stderr,
               "[smoke] wall: base=%.3fs straggler(spec off)=%.3fs "
               "straggler(spec on)=%.3fs; speculated=%llu wins=%llu\n",
               base_s, off_s, on_s,
               static_cast<unsigned long long>(speculated_delta),
               static_cast<unsigned long long>(wins_delta));
  check(base_out == off_out, "speculation-off results match baseline");
  check(base_out == on_out, "speculation-on results match baseline");
  check(off_s > 10 * base_s, "without speculation the straggler dominates");
  check(on_s < 3 * base_s, "speculation recovers the tail latency");
  check(speculated_delta >= 1, "a speculative copy was launched");
  check(wins_delta >= 1, "a speculative copy won");

  std::fprintf(stderr, "[smoke] %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stark

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return stark::RunSmoke();
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
