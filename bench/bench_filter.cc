/// \file bench_filter.cc
/// Experiment E2 (spatialbm extended suite): range-query filters —
/// intersects and containedBy against a query polygon — under every
/// combination of partitioner (none / grid / BSP) and indexing mode
/// (scan / live index). Shows the §2.1 claim that partition pruning
/// "can decrease the number of data items to process significantly".
#include <memory>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "partition/bsp_partitioner.h"
#include "partition/grid_partitioner.h"
#include "spatial_rdd/spatial_rdd.h"

namespace stark {
namespace {

size_t N() { return bench::EnvSize("STARK_BENCH_FILTER_N", 400'000); }

Context* Ctx() {
  static Context ctx;
  return &ctx;
}

using Rdd = SpatialRDD<int64_t>;

std::vector<std::pair<STObject, int64_t>> MakeData() {
  // STARK_TRACE=<file> captures this binary's run as a Chrome trace.
  static bench::TraceFromEnv trace_guard;
  bench::ScopedStage stage("filter.make_data");
  auto points = bench::BenchPoints(N());
  std::vector<std::pair<STObject, int64_t>> data;
  data.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    data.emplace_back(std::move(points[i]), static_cast<int64_t>(i));
  }
  return data;
}

const Rdd& Unpartitioned() {
  static const Rdd rdd = Rdd::FromVector(Ctx(), MakeData()).Cache();
  return rdd;
}

const Rdd& GridPartitioned() {
  static const Rdd rdd = [] {
    auto grid = std::make_shared<GridPartitioner>(bench::BenchUniverse(), 4);
    return Unpartitioned().PartitionBy(grid).Cache();
  }();
  return rdd;
}

const Rdd& BspPartitioned() {
  static const Rdd rdd = [] {
    std::vector<Coordinate> centroids;
    for (const auto& [obj, id] : Unpartitioned().rdd().Collect()) {
      centroids.push_back(obj.Centroid());
    }
    BSPartitioner::Options options;
    options.max_cost = N() / 16 + 1;
    auto bsp = std::make_shared<BSPartitioner>(bench::BenchUniverse(),
                                               centroids, options);
    return Unpartitioned().PartitionBy(bsp).Cache();
  }();
  return rdd;
}

/// A selective query window over one of the dense clusters.
STObject Query() {
  return STObject(Geometry::MakeBox(Envelope(20, 20, 30, 30)));
}

void RunFilter(benchmark::State& state, const Rdd& rdd, bool live_index) {
  const STObject query = Query();
  size_t results = 0;
  for (auto _ : state) {
    results = live_index ? rdd.LiveIndex(10).Intersects(query).Count()
                         : rdd.Intersects(query).Count();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
  state.counters["partitions"] = static_cast<double>(rdd.NumPartitions());
}

void BM_Filter_Scan_NoPartitioning(benchmark::State& state) {
  RunFilter(state, Unpartitioned(), false);
}
BENCHMARK(BM_Filter_Scan_NoPartitioning)->Unit(benchmark::kMillisecond);

void BM_Filter_Scan_Grid(benchmark::State& state) {
  RunFilter(state, GridPartitioned(), false);
}
BENCHMARK(BM_Filter_Scan_Grid)->Unit(benchmark::kMillisecond);

void BM_Filter_Scan_Bsp(benchmark::State& state) {
  RunFilter(state, BspPartitioned(), false);
}
BENCHMARK(BM_Filter_Scan_Bsp)->Unit(benchmark::kMillisecond);

void BM_Filter_LiveIndex_NoPartitioning(benchmark::State& state) {
  RunFilter(state, Unpartitioned(), true);
}
BENCHMARK(BM_Filter_LiveIndex_NoPartitioning)->Unit(benchmark::kMillisecond);

void BM_Filter_LiveIndex_Grid(benchmark::State& state) {
  RunFilter(state, GridPartitioned(), true);
}
BENCHMARK(BM_Filter_LiveIndex_Grid)->Unit(benchmark::kMillisecond);

void BM_Filter_LiveIndex_Bsp(benchmark::State& state) {
  RunFilter(state, BspPartitioned(), true);
}
BENCHMARK(BM_Filter_LiveIndex_Bsp)->Unit(benchmark::kMillisecond);

/// containedBy (the paper's example query) on the best configuration.
void BM_Filter_ContainedBy_Bsp(benchmark::State& state) {
  const STObject query = Query();
  size_t results = 0;
  for (auto _ : state) {
    results = BspPartitioned().ContainedBy(query).Count();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
}
BENCHMARK(BM_Filter_ContainedBy_Bsp)->Unit(benchmark::kMillisecond);

/// withinDistance filter, scan vs pruned.
void BM_Filter_WithinDistance_NoPartitioning(benchmark::State& state) {
  const STObject query(Geometry::MakePoint(25, 25));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Unpartitioned().WithinDistance(query, 2.0).Count());
  }
}
BENCHMARK(BM_Filter_WithinDistance_NoPartitioning)
    ->Unit(benchmark::kMillisecond);

void BM_Filter_WithinDistance_Bsp(benchmark::State& state) {
  const STObject query(Geometry::MakePoint(25, 25));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BspPartitioned().WithinDistance(query, 2.0).Count());
  }
}
BENCHMARK(BM_Filter_WithinDistance_Bsp)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stark

BENCHMARK_MAIN();
