/// \file bench_filter.cc
/// Experiment E2 (spatialbm extended suite): range-query filters —
/// intersects and containedBy against a query polygon — under every
/// combination of partitioner (none / grid / BSP) and indexing mode
/// (scan / live index). Shows the §2.1 claim that partition pruning
/// "can decrease the number of data items to process significantly".
///
/// `bench_filter --smoke` runs a fast self-checking mode: scan, live-index
/// and persistent-index filters must return identical counts, the packed
/// index must actually be probed (engine.index.packed_probes > 0) and the
/// prepared-geometry path exercised (spatial.prepared.misses > 0). Pass
/// `--json=<path>` (with or without --smoke) to write median stage timings
/// as a flat JSON report for the BENCH_*.json snapshots.
#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "obs/flight_recorder.h"
#include "obs/profile.h"
#include "partition/bsp_partitioner.h"
#include "partition/grid_partitioner.h"
#include "spatial_rdd/spatial_rdd.h"

namespace stark {
namespace {

size_t N() { return bench::EnvSize("STARK_BENCH_FILTER_N", 400'000); }

Context* Ctx() {
  static Context ctx;
  return &ctx;
}

using Rdd = SpatialRDD<int64_t>;

std::vector<std::pair<STObject, int64_t>> MakeData() {
  // STARK_TRACE=<file> captures this binary's run as a Chrome trace.
  static bench::TraceFromEnv trace_guard;
  bench::ScopedStage stage("filter.make_data");
  auto points = bench::BenchPoints(N());
  std::vector<std::pair<STObject, int64_t>> data;
  data.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    data.emplace_back(std::move(points[i]), static_cast<int64_t>(i));
  }
  return data;
}

const Rdd& Unpartitioned() {
  static const Rdd rdd = Rdd::FromVector(Ctx(), MakeData()).Cache();
  return rdd;
}

const Rdd& GridPartitioned() {
  static const Rdd rdd = [] {
    auto grid = std::make_shared<GridPartitioner>(bench::BenchUniverse(), 4);
    return Unpartitioned().PartitionBy(grid).Cache();
  }();
  return rdd;
}

const Rdd& BspPartitioned() {
  static const Rdd rdd = [] {
    std::vector<Coordinate> centroids;
    for (const auto& [obj, id] : Unpartitioned().rdd().Collect()) {
      centroids.push_back(obj.Centroid());
    }
    BSPartitioner::Options options;
    options.max_cost = N() / 16 + 1;
    auto bsp = std::make_shared<BSPartitioner>(bench::BenchUniverse(),
                                               centroids, options);
    return Unpartitioned().PartitionBy(bsp).Cache();
  }();
  return rdd;
}

/// A selective query window over one of the dense clusters.
STObject Query() {
  return STObject(Geometry::MakeBox(Envelope(20, 20, 30, 30)));
}

void RunFilter(benchmark::State& state, const Rdd& rdd, bool live_index) {
  const STObject query = Query();
  size_t results = 0;
  for (auto _ : state) {
    results = live_index ? rdd.LiveIndex(10).Intersects(query).Count()
                         : rdd.Intersects(query).Count();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
  state.counters["partitions"] = static_cast<double>(rdd.NumPartitions());
}

void BM_Filter_Scan_NoPartitioning(benchmark::State& state) {
  RunFilter(state, Unpartitioned(), false);
}
BENCHMARK(BM_Filter_Scan_NoPartitioning)->Unit(benchmark::kMillisecond);

void BM_Filter_Scan_Grid(benchmark::State& state) {
  RunFilter(state, GridPartitioned(), false);
}
BENCHMARK(BM_Filter_Scan_Grid)->Unit(benchmark::kMillisecond);

void BM_Filter_Scan_Bsp(benchmark::State& state) {
  RunFilter(state, BspPartitioned(), false);
}
BENCHMARK(BM_Filter_Scan_Bsp)->Unit(benchmark::kMillisecond);

void BM_Filter_LiveIndex_NoPartitioning(benchmark::State& state) {
  RunFilter(state, Unpartitioned(), true);
}
BENCHMARK(BM_Filter_LiveIndex_NoPartitioning)->Unit(benchmark::kMillisecond);

void BM_Filter_LiveIndex_Grid(benchmark::State& state) {
  RunFilter(state, GridPartitioned(), true);
}
BENCHMARK(BM_Filter_LiveIndex_Grid)->Unit(benchmark::kMillisecond);

void BM_Filter_LiveIndex_Bsp(benchmark::State& state) {
  RunFilter(state, BspPartitioned(), true);
}
BENCHMARK(BM_Filter_LiveIndex_Bsp)->Unit(benchmark::kMillisecond);

/// containedBy (the paper's example query) on the best configuration.
void BM_Filter_ContainedBy_Bsp(benchmark::State& state) {
  const STObject query = Query();
  size_t results = 0;
  for (auto _ : state) {
    results = BspPartitioned().ContainedBy(query).Count();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] = static_cast<double>(results);
}
BENCHMARK(BM_Filter_ContainedBy_Bsp)->Unit(benchmark::kMillisecond);

/// withinDistance filter, scan vs pruned.
void BM_Filter_WithinDistance_NoPartitioning(benchmark::State& state) {
  const STObject query(Geometry::MakePoint(25, 25));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Unpartitioned().WithinDistance(query, 2.0).Count());
  }
}
BENCHMARK(BM_Filter_WithinDistance_NoPartitioning)
    ->Unit(benchmark::kMillisecond);

void BM_Filter_WithinDistance_Bsp(benchmark::State& state) {
  const STObject query(Geometry::MakePoint(25, 25));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BspPartitioned().WithinDistance(query, 2.0).Count());
  }
}
BENCHMARK(BM_Filter_WithinDistance_Bsp)->Unit(benchmark::kMillisecond);

// ---- --smoke / --json mode ------------------------------------------------

double MedianOf(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Fast self-checking run for CI plus optional JSON timing report.
int RunSmoke(const std::string& json_path) {
  // Shrink the workload unless the caller pinned a size explicitly.
  setenv("STARK_BENCH_FILTER_N", "60000", /*overwrite=*/0);
  const obs::MetricsRegistry::Snapshot metrics_before =
      obs::DefaultMetrics().Snap();
  const STObject query = Query();
  int failures = 0;
  auto check = [&failures](bool ok, const char* what) {
    std::fprintf(stderr, "[smoke] %s: %s\n", what, ok ? "ok" : "FAILED");
    if (!ok) ++failures;
  };

  obs::Counter* packed_probes =
      obs::DefaultMetrics().GetCounter("engine.index.packed_probes");
  obs::Counter* prepared_misses =
      obs::DefaultMetrics().GetCounter("spatial.prepared.misses");
  const uint64_t probes_before = packed_probes->Value();
  const uint64_t misses_before = prepared_misses->Value();

  // The three execution modes of §2.2 must agree exactly.
  const size_t scan = GridPartitioned().Intersects(query).Count();
  const size_t live = GridPartitioned().LiveIndex(10).Intersects(query).Count();
  auto indexed_rdd = GridPartitioned().Index(10);
  indexed_rdd.trees().Count();  // materialize the persistent trees
  const size_t indexed = indexed_rdd.Intersects(query).Count();
  std::fprintf(stderr, "[smoke] results: scan=%zu live=%zu indexed=%zu\n",
               scan, live, indexed);
  check(scan == live, "scan matches live index");
  check(scan == indexed, "scan matches persistent index");
  check(packed_probes->Value() > probes_before,
        "packed index probed (engine.index.packed_probes advanced)");
  check(prepared_misses->Value() > misses_before,
        "prepared refinement exercised (spatial.prepared.misses advanced)");

  // Median-of-3 stage timings, interleaved so noise hits all modes alike.
  std::vector<double> scan_s, live_s, indexed_s;
  for (int i = 0; i < 3; ++i) {
    Stopwatch w;
    GridPartitioned().Intersects(query).Count();
    scan_s.push_back(w.ElapsedSeconds());
    w.Restart();
    GridPartitioned().LiveIndex(10).Intersects(query).Count();
    live_s.push_back(w.ElapsedSeconds());
    w.Restart();
    indexed_rdd.Intersects(query).Count();
    indexed_s.push_back(w.ElapsedSeconds());
  }
  std::fprintf(stderr,
               "[smoke] median filter time: scan=%.4fs live=%.4fs "
               "indexed=%.4fs\n",
               MedianOf(scan_s), MedianOf(live_s), MedianOf(indexed_s));

  // Observability overhead guard: running the same filter with the query
  // profiler collecting and the flight recorder on must stay within 5% of
  // the fully-dark run (min-of-5, alternated so thermal/cache drift hits
  // both sides alike; min is the noise-robust statistic for "how fast can
  // this go"). A small absolute slack keeps sub-millisecond jitter from
  // failing the ratio on fast machines.
  obs::FlightRecorder& flight = obs::DefaultFlightRecorder();
  std::vector<double> obs_on_s, obs_off_s;
  for (int i = 0; i < 5; ++i) {
    {
      obs::ProfileCollector collector("overhead-guard");
      obs::ProfileCollectorScope scope(&collector);
      flight.Enable();
      Stopwatch w;
      GridPartitioned().Intersects(query).Count();
      obs_on_s.push_back(w.ElapsedSeconds());
    }
    flight.Disable();
    Stopwatch w;
    GridPartitioned().Intersects(query).Count();
    obs_off_s.push_back(w.ElapsedSeconds());
    flight.Enable();
  }
  const double on_min = *std::min_element(obs_on_s.begin(), obs_on_s.end());
  const double off_min = *std::min_element(obs_off_s.begin(), obs_off_s.end());
  std::fprintf(stderr,
               "[smoke] observability overhead: on=%.4fs off=%.4fs (%+.1f%%)\n",
               on_min, off_min,
               off_min > 0 ? (on_min / off_min - 1.0) * 100.0 : 0.0);
  check(on_min <= off_min * 1.05 + 0.002,
        "profiler+flight recorder overhead <= 5%");

  if (!json_path.empty()) {
    bench::JsonReport report;
    report.Add("filter.n", static_cast<double>(N()));
    report.Add("filter.results", static_cast<double>(scan));
    report.Add("filter.scan_s", MedianOf(scan_s));
    report.Add("filter.live_index_s", MedianOf(live_s));
    report.Add("filter.persistent_index_s", MedianOf(indexed_s));
    report.Add("filter.packed_probes",
               static_cast<double>(packed_probes->Value() - probes_before));
    report.Add("filter.prepared_misses",
               static_cast<double>(prepared_misses->Value() - misses_before));
    report.Add("filter.obs_on_s", on_min);
    report.Add("filter.obs_off_s", off_min);
    report.AddMetricsDelta(metrics_before);
    report.WriteTo(json_path);
  }

  std::fprintf(stderr, "[smoke] %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stark

int main(int argc, char** argv) {
  const std::string json = stark::bench::JsonPathFromArgs(argc, argv);
  if (stark::bench::SmokeRequested(argc, argv) || !json.empty()) {
    return stark::RunSmoke(json);
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
