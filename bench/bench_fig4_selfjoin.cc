/// \file bench_fig4_selfjoin.cc
/// Experiment E1 — reproduces **Figure 4** of the paper: execution time of
/// a self join (withinDistance predicate) on a clustered point data set for
/// GeoSpark, SpatialSpark and STARK, each without partitioning and with its
/// best partitioner (GeoSpark: Voronoi, SpatialSpark: Tile, STARK: BSP).
///
/// Sizing: the paper uses 1,000,000 points. The default here is 200,000 so
/// the whole suite runs quickly on small machines; set STARK_BENCH_N=1000000
/// (and optionally STARK_BENCH_DIST) to run at paper scale. The *shape* —
/// who wins and by what rough factor — is what this harness verifies.
#include <cstdio>
#include <map>
#include <string>

#include <benchmark/benchmark.h>

#include "baselines/geospark_like.h"
#include "baselines/spatialspark_like.h"
#include "baselines/stark_selfjoin.h"
#include "bench_common.h"

namespace stark {
namespace {

size_t N() { return bench::EnvSize("STARK_BENCH_N", 200'000); }
double Dist() { return bench::EnvDouble("STARK_BENCH_DIST", 0.25); }

const std::vector<STObject>& Data() {
  static const std::vector<STObject> data = bench::BenchPoints(N());
  return data;
}

Context* Ctx() {
  static Context ctx;
  return &ctx;
}

/// Collected results for the paper-style summary table.
std::map<std::string, BaselineStats> g_results;

void Record(benchmark::State& state, const BaselineStats& stats,
            const std::string& key) {
  state.counters["pairs"] = static_cast<double>(stats.result_pairs);
  state.counters["replicated"] = static_cast<double>(stats.replicated);
  state.counters["partition_s"] = stats.partition_seconds;
  state.counters["index_s"] = stats.index_seconds;
  state.counters["join_s"] = stats.join_seconds;
  state.counters["dedup_s"] = stats.dedup_seconds;
  g_results[key] = stats;
}

// GeoSpark's join requires spatially partitioned RDDs, so its
// "No Partitioning" column is N/A in the paper's Figure 4 — no benchmark.

void BM_GeoSpark_BestPartitioner_Voronoi(benchmark::State& state) {
  for (auto _ : state) {
    GeoSparkLikeOptions options;
    options.voronoi_seeds = 32;
    auto stats = GeoSparkLikeSelfJoin(Ctx(), Data(), Dist(), options);
    Record(state, stats, "GeoSpark/voronoi");
  }
}
BENCHMARK(BM_GeoSpark_BestPartitioner_Voronoi)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

void BM_SpatialSpark_NoPartitioning(benchmark::State& state) {
  for (auto _ : state) {
    auto stats = SpatialSparkLikeSelfJoin(Ctx(), Data(), Dist(), {});
    Record(state, stats, "SpatialSpark/none");
  }
}
BENCHMARK(BM_SpatialSpark_NoPartitioning)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

void BM_SpatialSpark_BestPartitioner_Tile(benchmark::State& state) {
  for (auto _ : state) {
    SpatialSparkLikeOptions options;
    options.tiles = 32;
    auto stats = SpatialSparkLikeSelfJoin(Ctx(), Data(), Dist(), options);
    Record(state, stats, "SpatialSpark/tile");
  }
}
BENCHMARK(BM_SpatialSpark_BestPartitioner_Tile)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

void BM_STARK_NoPartitioning(benchmark::State& state) {
  for (auto _ : state) {
    StarkSelfJoinOptions options;
    options.partitioner = StarkPartitionerChoice::kNone;
    auto stats = StarkSelfJoin(Ctx(), Data(), Dist(), options);
    Record(state, stats, "STARK/none");
  }
}
BENCHMARK(BM_STARK_NoPartitioning)->Unit(benchmark::kSecond)->Iterations(1);

void BM_STARK_BestPartitioner_Bsp(benchmark::State& state) {
  for (auto _ : state) {
    StarkSelfJoinOptions options;
    options.partitioner = StarkPartitionerChoice::kBsp;
    options.bsp_max_cost = std::max<size_t>(1000, N() / 64);
    auto stats = StarkSelfJoin(Ctx(), Data(), Dist(), options);
    Record(state, stats, "STARK/bsp");
  }
}
BENCHMARK(BM_STARK_BestPartitioner_Bsp)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

// Beyond the paper's figure: the same STARK self join through the other
// two join strategies (see docs/JOINS.md), for an apples-to-apples read on
// what index reuse and broadcasting buy over the live-index plan.

void BM_STARK_Grid_CachedIndex(benchmark::State& state) {
  for (auto _ : state) {
    StarkSelfJoinOptions options;
    options.partitioner = StarkPartitionerChoice::kGrid;
    options.join_mode = StarkJoinMode::kCachedIndex;
    auto stats = StarkSelfJoin(Ctx(), Data(), Dist(), options);
    Record(state, stats, "STARK/grid+cached-index");
  }
}
BENCHMARK(BM_STARK_Grid_CachedIndex)->Unit(benchmark::kSecond)->Iterations(1);

void BM_STARK_Grid_Broadcast(benchmark::State& state) {
  for (auto _ : state) {
    StarkSelfJoinOptions options;
    options.partitioner = StarkPartitionerChoice::kGrid;
    options.join_mode = StarkJoinMode::kBroadcast;
    auto stats = StarkSelfJoin(Ctx(), Data(), Dist(), options);
    Record(state, stats, "STARK/grid+broadcast");
  }
}
BENCHMARK(BM_STARK_Grid_Broadcast)->Unit(benchmark::kSecond)->Iterations(1);

void PrintFigure4Summary() {
  std::printf("\n=== Figure 4: self join execution time [s] "
              "(N=%zu, withinDistance=%.2f) ===\n",
              N(), Dist());
  std::printf("%-18s %-16s %-16s\n", "", "No Partitioning", "Best Partitioner");
  auto cell = [&](const char* key) {
    auto it = g_results.find(key);
    return it == g_results.end() ? -1.0 : it->second.total_seconds;
  };
  std::printf("%-18s %-16s %-16.2f  (best: Voronoi)\n", "GeoSpark-like",
              "N/A", cell("GeoSpark/voronoi"));
  std::printf("%-18s %-16.2f %-16.2f  (best: Tile)\n", "SpatialSpark-like",
              cell("SpatialSpark/none"), cell("SpatialSpark/tile"));
  std::printf("%-18s %-16.2f %-16.2f  (best: Bsp)\n", "STARK",
              cell("STARK/none"), cell("STARK/bsp"));
  const size_t pairs = g_results.count("STARK/bsp")
                           ? g_results["STARK/bsp"].result_pairs
                           : 0;
  std::printf("result pairs (all systems must agree): %zu\n", pairs);
  if (g_results.count("STARK/grid+cached-index") &&
      g_results.count("STARK/grid+broadcast")) {
    std::printf("STARK join strategies (grid partitioner, join phase only "
                "[s]): cached-index %.2f | broadcast %.2f\n",
                g_results["STARK/grid+cached-index"].join_seconds,
                g_results["STARK/grid+broadcast"].join_seconds);
  }
  std::printf("paper values [s]: GeoSpark N/A & 95.9 | SpatialSpark 51.9 & "
              "19.8 | STARK 31.1 & 6.3 (1M points on a cluster)\n");
  std::printf("paper shape: STARK fastest in both columns; GeoSpark's "
              "replication+dedup strategy slowest with partitioning.\n");
}

}  // namespace
}  // namespace stark

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  stark::PrintFigure4Summary();
  return 0;
}
