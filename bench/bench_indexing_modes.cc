/// \file bench_indexing_modes.cc
/// Experiment E6: the three indexing modes of §2.2 — no indexing, live
/// indexing (tree built on every evaluation), and persistent indexing
/// (tree built once / loaded from disk) — plus an R-tree order sweep.
///
/// `bench_indexing_modes --smoke` runs the packed-vs-classic microbench
/// guard: STR bulk load + 10k window probes on the packed SoA tree must run
/// within 1.25x of the classic pointer tree (min of 3 interleaved runs; in
/// practice the packed tree wins) and both must return identical candidate
/// sets on sampled queries. `--json=<path>` writes the timings.
#include <algorithm>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "index/packed_rtree.h"
#include "index/rtree.h"
#include "partition/grid_partitioner.h"
#include "spatial_rdd/spatial_rdd.h"

namespace stark {
namespace {

size_t N() { return bench::EnvSize("STARK_BENCH_INDEX_N", 100'000); }

Context* Ctx() {
  static Context ctx;
  return &ctx;
}

const SpatialRDD<int64_t>& Data() {
  static const SpatialRDD<int64_t> rdd = [] {
    auto points = bench::BenchPoints(N());
    std::vector<std::pair<STObject, int64_t>> data;
    data.reserve(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
      data.emplace_back(std::move(points[i]), static_cast<int64_t>(i));
    }
    auto grid = std::make_shared<GridPartitioner>(bench::BenchUniverse(), 6);
    return SpatialRDD<int64_t>::FromVector(Ctx(), std::move(data))
        .PartitionBy(grid)
        .Cache();
  }();
  return rdd;
}

STObject Query() {
  return STObject(Geometry::MakeBox(Envelope(22, 22, 32, 32)));
}

void BM_IndexMode_None(benchmark::State& state) {
  const STObject query = Query();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Data().Intersects(query).Count());
  }
}
BENCHMARK(BM_IndexMode_None)->Unit(benchmark::kMillisecond);

/// Live indexing rebuilds the R-tree on every evaluation — construction is
/// inside the timed region by design (that is the mode's semantics).
void BM_IndexMode_Live(benchmark::State& state) {
  const size_t order = static_cast<size_t>(state.range(0));
  const STObject query = Query();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Data().LiveIndex(order).Intersects(query).Count());
  }
  state.counters["order"] = static_cast<double>(order);
}
BENCHMARK(BM_IndexMode_Live)
    ->Arg(5)
    ->Arg(10)
    ->Arg(25)
    ->Unit(benchmark::kMillisecond);

/// Persistent mode: the tree is built once (cached) — queries pay only the
/// lookup, amortizing construction across reuses.
void BM_IndexMode_Persistent_Query(benchmark::State& state) {
  const size_t order = static_cast<size_t>(state.range(0));
  auto indexed = Data().Index(order);
  indexed.ToElements().Count();  // force construction outside timing
  const STObject query = Query();
  for (auto _ : state) {
    benchmark::DoNotOptimize(indexed.Intersects(query).Count());
  }
  state.counters["order"] = static_cast<double>(order);
}
BENCHMARK(BM_IndexMode_Persistent_Query)
    ->Arg(5)
    ->Arg(10)
    ->Arg(25)
    ->Unit(benchmark::kMillisecond);

void BM_IndexMode_Persistent_Save(benchmark::State& state) {
  auto indexed = Data().Index(10);
  indexed.ToElements().Count();
  const std::string dir = "/tmp/stark_bench_index";
  [[maybe_unused]] int rc = std::system(("mkdir -p " + dir).c_str());
  for (auto _ : state) {
    benchmark::DoNotOptimize(indexed.Save(dir).ok());
  }
}
BENCHMARK(BM_IndexMode_Persistent_Save)->Unit(benchmark::kMillisecond);

void BM_IndexMode_Persistent_LoadAndQuery(benchmark::State& state) {
  // "often the same index will be reused in subsequent runs": measure the
  // reload-then-query path of the next program.
  auto indexed = Data().Index(10);
  indexed.ToElements().Count();
  const std::string dir = "/tmp/stark_bench_index";
  [[maybe_unused]] int rc = std::system(("mkdir -p " + dir).c_str());
  STARK_CHECK(indexed.Save(dir).ok());
  const STObject query = Query();
  for (auto _ : state) {
    auto loaded = IndexedSpatialRDD<int64_t>::Load(Ctx(), dir);
    benchmark::DoNotOptimize(
        loaded.ValueOrDie().Intersects(query).Count());
  }
}
BENCHMARK(BM_IndexMode_Persistent_LoadAndQuery)->Unit(benchmark::kMillisecond);

// ---- --smoke / --json mode: packed-vs-classic microbench guard ------------

constexpr size_t kProbeCount = 10'000;
constexpr size_t kMicrobenchOrder = 10;

std::vector<Envelope> ProbeWindows(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Envelope> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const double x = rng.Uniform(0.0, 98.0);
    const double y = rng.Uniform(0.0, 98.0);
    const double w = rng.Uniform(0.1, 2.0);
    const double h = rng.Uniform(0.1, 2.0);
    out.push_back(Envelope(x, y, x + w, y + h));
  }
  return out;
}

/// One timed round: bulk load + all probes; returns (seconds, total hits).
template <typename BuildFn, typename ProbeFn>
std::pair<double, size_t> TimeRound(const BuildFn& build,
                                    const ProbeFn& probe,
                                    const std::vector<Envelope>& windows) {
  Stopwatch w;
  auto tree = build();
  size_t hits = 0;
  for (const Envelope& window : windows) hits += probe(tree, window);
  return {w.ElapsedSeconds(), hits};
}

int RunSmoke(const std::string& json_path) {
  setenv("STARK_BENCH_INDEX_N", "100000", /*overwrite=*/0);
  int failures = 0;
  auto check = [&failures](bool ok, const char* what) {
    std::fprintf(stderr, "[smoke] %s: %s\n", what, ok ? "ok" : "FAILED");
    if (!ok) ++failures;
  };

  auto points = bench::BenchPoints(N());
  std::vector<std::pair<Envelope, size_t>> entries;
  entries.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    entries.emplace_back(points[i].envelope(), i);
  }
  const std::vector<Envelope> windows = ProbeWindows(kProbeCount, 2026);

  auto build_classic = [&entries]() {
    RTree<size_t> tree(kMicrobenchOrder);
    tree.BulkLoad(entries);
    return tree;
  };
  auto build_packed = [&entries]() {
    return PackedRTree<size_t>(kMicrobenchOrder, entries);
  };
  auto probe = [](const auto& tree, const Envelope& window) {
    size_t hits = 0;
    tree.Query(window, [&hits](const Envelope&, const size_t&) { ++hits; });
    return hits;
  };

  // Identical candidates on sampled queries (multisets, both trees).
  {
    RTree<size_t> classic = build_classic();
    PackedRTree<size_t> packed = build_packed();
    bool identical = true;
    for (size_t q = 0; q < windows.size(); q += 97) {
      std::multiset<size_t> a, b;
      classic.Query(windows[q],
                    [&a](const Envelope&, const size_t& id) { a.insert(id); });
      packed.Query(windows[q],
                   [&b](const Envelope&, const size_t& id) { b.insert(id); });
      if (a != b) {
        identical = false;
        break;
      }
    }
    check(identical, "packed and classic candidates identical");
  }

  // Min of 3 interleaved rounds: build + 10k probes, each tree.
  double classic_s = 1e30, packed_s = 1e30;
  size_t classic_hits = 0, packed_hits = 0;
  for (int round = 0; round < 3; ++round) {
    const auto [cs, ch] = TimeRound(build_classic, probe, windows);
    const auto [ps, ph] = TimeRound(build_packed, probe, windows);
    classic_s = std::min(classic_s, cs);
    packed_s = std::min(packed_s, ps);
    classic_hits = ch;
    packed_hits = ph;
  }
  std::fprintf(stderr,
               "[smoke] bulk-load + %zu probes (n=%zu, order=%zu): "
               "classic=%.4fs packed=%.4fs (ratio %.3f)\n",
               kProbeCount, entries.size(), kMicrobenchOrder, classic_s,
               packed_s, packed_s / classic_s);
  check(classic_hits == packed_hits, "identical total hit counts");
  check(packed_s <= 1.25 * classic_s,
        "packed within 1.25x of classic (build + probes)");

  if (!json_path.empty()) {
    bench::JsonReport report;
    report.Add("indexing.n", static_cast<double>(entries.size()));
    report.Add("indexing.probes", static_cast<double>(kProbeCount));
    report.Add("indexing.order", static_cast<double>(kMicrobenchOrder));
    report.Add("indexing.classic_build_probe_s", classic_s);
    report.Add("indexing.packed_build_probe_s", packed_s);
    report.Add("indexing.packed_over_classic_ratio", packed_s / classic_s);
    report.Add("indexing.total_hits", static_cast<double>(packed_hits));
    report.WriteTo(json_path);
  }

  std::fprintf(stderr, "[smoke] %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stark

int main(int argc, char** argv) {
  const std::string json = stark::bench::JsonPathFromArgs(argc, argv);
  if (stark::bench::SmokeRequested(argc, argv) || !json.empty()) {
    return stark::RunSmoke(json);
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
