/// \file bench_indexing_modes.cc
/// Experiment E6: the three indexing modes of §2.2 — no indexing, live
/// indexing (tree built on every evaluation), and persistent indexing
/// (tree built once / loaded from disk) — plus an R-tree order sweep.
#include <cstdlib>
#include <memory>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "partition/grid_partitioner.h"
#include "spatial_rdd/spatial_rdd.h"

namespace stark {
namespace {

size_t N() { return bench::EnvSize("STARK_BENCH_INDEX_N", 100'000); }

Context* Ctx() {
  static Context ctx;
  return &ctx;
}

const SpatialRDD<int64_t>& Data() {
  static const SpatialRDD<int64_t> rdd = [] {
    auto points = bench::BenchPoints(N());
    std::vector<std::pair<STObject, int64_t>> data;
    data.reserve(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
      data.emplace_back(std::move(points[i]), static_cast<int64_t>(i));
    }
    auto grid = std::make_shared<GridPartitioner>(bench::BenchUniverse(), 6);
    return SpatialRDD<int64_t>::FromVector(Ctx(), std::move(data))
        .PartitionBy(grid)
        .Cache();
  }();
  return rdd;
}

STObject Query() {
  return STObject(Geometry::MakeBox(Envelope(22, 22, 32, 32)));
}

void BM_IndexMode_None(benchmark::State& state) {
  const STObject query = Query();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Data().Intersects(query).Count());
  }
}
BENCHMARK(BM_IndexMode_None)->Unit(benchmark::kMillisecond);

/// Live indexing rebuilds the R-tree on every evaluation — construction is
/// inside the timed region by design (that is the mode's semantics).
void BM_IndexMode_Live(benchmark::State& state) {
  const size_t order = static_cast<size_t>(state.range(0));
  const STObject query = Query();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Data().LiveIndex(order).Intersects(query).Count());
  }
  state.counters["order"] = static_cast<double>(order);
}
BENCHMARK(BM_IndexMode_Live)
    ->Arg(5)
    ->Arg(10)
    ->Arg(25)
    ->Unit(benchmark::kMillisecond);

/// Persistent mode: the tree is built once (cached) — queries pay only the
/// lookup, amortizing construction across reuses.
void BM_IndexMode_Persistent_Query(benchmark::State& state) {
  const size_t order = static_cast<size_t>(state.range(0));
  auto indexed = Data().Index(order);
  indexed.ToElements().Count();  // force construction outside timing
  const STObject query = Query();
  for (auto _ : state) {
    benchmark::DoNotOptimize(indexed.Intersects(query).Count());
  }
  state.counters["order"] = static_cast<double>(order);
}
BENCHMARK(BM_IndexMode_Persistent_Query)
    ->Arg(5)
    ->Arg(10)
    ->Arg(25)
    ->Unit(benchmark::kMillisecond);

void BM_IndexMode_Persistent_Save(benchmark::State& state) {
  auto indexed = Data().Index(10);
  indexed.ToElements().Count();
  const std::string dir = "/tmp/stark_bench_index";
  [[maybe_unused]] int rc = std::system(("mkdir -p " + dir).c_str());
  for (auto _ : state) {
    benchmark::DoNotOptimize(indexed.Save(dir).ok());
  }
}
BENCHMARK(BM_IndexMode_Persistent_Save)->Unit(benchmark::kMillisecond);

void BM_IndexMode_Persistent_LoadAndQuery(benchmark::State& state) {
  // "often the same index will be reused in subsequent runs": measure the
  // reload-then-query path of the next program.
  auto indexed = Data().Index(10);
  indexed.ToElements().Count();
  const std::string dir = "/tmp/stark_bench_index";
  [[maybe_unused]] int rc = std::system(("mkdir -p " + dir).c_str());
  STARK_CHECK(indexed.Save(dir).ok());
  const STObject query = Query();
  for (auto _ : state) {
    auto loaded = IndexedSpatialRDD<int64_t>::Load(Ctx(), dir);
    benchmark::DoNotOptimize(
        loaded.ValueOrDie().Intersects(query).Count());
  }
}
BENCHMARK(BM_IndexMode_Persistent_LoadAndQuery)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stark

BENCHMARK_MAIN();
