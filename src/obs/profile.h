/// \file profile.h
/// Hierarchical query profiles. A ProfileCollector is installed on the
/// driver thread (thread-local, like the ambient cancel token) and every
/// `Context::TryRunTasks` job that runs underneath it appends one
/// ProfileNode describing the operator it executed: stage kind, partition
/// count, rows in/out, bytes shuffled, spatial candidate/refined counts,
/// retry/speculation/cancel totals, wall time and the per-task duration
/// histogram. Piglet nests those job nodes under per-statement nodes, so
/// `EXPLAIN ANALYZE` can show a whole script as an operator tree with
/// per-operator cost — the substrate a cost-based optimizer reads from.
///
/// Costs: with no collector installed, the per-job overhead is one
/// thread-local load. With one installed, tasks additionally fill in the
/// same TaskSpan structs tracing uses and the job epilogue folds them into
/// plain structs on the driver thread — no extra locking on the task path.
#ifndef STARK_OBS_PROFILE_H_
#define STARK_OBS_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "obs/metrics.h"

namespace stark {
namespace obs {

/// What level of the query tree a node describes.
enum class ProfileNodeKind : uint8_t {
  kScript = 0,     ///< a whole Piglet script (root)
  kStatement = 1,  ///< one Piglet statement ("B = FILTER A BY ...")
  kJob = 2,        ///< one TryRunTasks job (stage) under a statement
};

/// One operator-tree node. Plain values — filled in by the engine, read by
/// formatters; never shared across threads while mutable.
struct ProfileNode {
  std::string label;  ///< stage name for jobs, statement text for statements
  ProfileNodeKind kind = ProfileNodeKind::kJob;

  double wall_ms = 0.0;      ///< end-to-end driver-side wall time
  size_t partitions = 0;     ///< tasks launched (primary copies)
  uint64_t rows_in = 0;      ///< records read by tasks (span records_in)
  uint64_t rows_out = 0;     ///< records produced by tasks
  uint64_t bytes = 0;        ///< bytes serialized/shuffled by tasks
  uint64_t candidates = 0;   ///< spatial index candidates probed
  uint64_t refined = 0;      ///< candidates surviving exact refinement
  uint64_t retries = 0;      ///< failed attempts that were retried
  uint64_t speculated = 0;   ///< speculative backup copies launched
  uint64_t cancelled = 0;    ///< task copies stopped by cancel/deadline
  bool failed = false;       ///< job resolved non-OK
  std::string error;         ///< status message when failed

  /// Per-task successful-run durations (ns), log2-bucketed.
  Histogram::Snapshot task_ns;

  std::vector<ProfileNode> children;

  /// Recursive totals including this node's own values.
  uint64_t TotalRowsOut() const;
  double TotalWallMs() const;
};

/// \brief Driver-side sink for profile nodes.
///
/// Jobs append to the node currently on top of the collector's stack;
/// Piglet pushes a statement node before interpreting a statement and pops
/// it after, which is how job nodes become children of statements. The
/// collector lives on one driver thread; it is not shared across threads.
class ProfileCollector {
 public:
  explicit ProfileCollector(std::string label = "query");
  STARK_DISALLOW_COPY_AND_ASSIGN(ProfileCollector);

  /// Root of the tree collected so far.
  const ProfileNode& root() const { return root_; }
  ProfileNode& mutable_root() { return root_; }

  /// Opens a child node under the current top; subsequent jobs nest inside
  /// it until the matching Pop. Returns the node (stable until Pop).
  ProfileNode* Push(std::string label, ProfileNodeKind kind);
  void Pop();

  /// Appends a finished job node under the current top.
  void RecordJob(ProfileNode node);

 private:
  ProfileNode root_;
  std::vector<ProfileNode*> stack_;  // top = stack_.back()
};

/// The collector installed on this thread, or nullptr when profiling is
/// off. Engine code checks this once per job.
ProfileCollector* CurrentProfileCollector();

/// Installs \p collector on this thread for the scope's lifetime (restores
/// the previous one on destruction, so scopes nest).
class ProfileCollectorScope {
 public:
  explicit ProfileCollectorScope(ProfileCollector* collector);
  ~ProfileCollectorScope();
  STARK_DISALLOW_COPY_AND_ASSIGN(ProfileCollectorScope);

 private:
  ProfileCollector* prev_;
};

/// Push/Pop pair as an RAII scope (used by Piglet around each statement).
class ProfileNodeScope {
 public:
  ProfileNodeScope(ProfileCollector* collector, std::string label,
                   ProfileNodeKind kind);
  ~ProfileNodeScope();
  STARK_DISALLOW_COPY_AND_ASSIGN(ProfileNodeScope);

  /// Null when no collector was installed.
  ProfileNode* node() const { return node_; }

 private:
  ProfileCollector* collector_;
  ProfileNode* node_;
};

/// JSON rendering of \p node (recursive object with a "children" array).
std::string ProfileJson(const ProfileNode& node);

/// Indented one-node-per-line tree, e.g. for EXPLAIN ANALYZE:
///   statement: B = FILTER ...        12.4 ms
///     job spatial.filter  parts=8 rows=5000/312 ...
std::string FormatProfileTree(const ProfileNode& node);

/// \brief Thresholds for the slow-task / slow-query log.
///
/// When a task's successful run exceeds slow_task_ms, or a profiled query's
/// wall time exceeds slow_query_ms, a one-line report goes to stderr and
/// `engine.task.slow` / `engine.query.slow` is incremented. 0 disables.
/// Initialized from STARK_SLOW_TASK_MS / STARK_SLOW_QUERY_MS; Piglet's
/// `SET obs.slow_task_ms / obs.slow_query_ms` override at runtime.
class SlowLogConfig {
 public:
  SlowLogConfig();

  double slow_task_ms() const { return AsMs(slow_task_us_); }
  double slow_query_ms() const { return AsMs(slow_query_us_); }
  void set_slow_task_ms(double ms) { slow_task_us_.store(ToUs(ms)); }
  void set_slow_query_ms(double ms) { slow_query_us_.store(ToUs(ms)); }

  /// Ordered shutdown: disables both thresholds so no task or query that
  /// finishes during teardown writes to stderr after the process has
  /// started dismantling its observability (server drain, shell exit).
  void Quiesce() {
    slow_task_us_.store(0);
    slow_query_us_.store(0);
  }

 private:
  static int64_t ToUs(double ms) { return static_cast<int64_t>(ms * 1000.0); }
  double AsMs(const std::atomic<int64_t>& us) const {
    return static_cast<double>(us.load(std::memory_order_relaxed)) / 1000.0;
  }

  std::atomic<int64_t> slow_task_us_{0};
  std::atomic<int64_t> slow_query_us_{0};
};

/// Process-wide slow-log thresholds (env-initialized on first use).
SlowLogConfig& GlobalSlowLog();

}  // namespace obs
}  // namespace stark

#endif  // STARK_OBS_PROFILE_H_
