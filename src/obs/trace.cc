#include "obs/trace.h"

#include <cstdio>
#include <set>

#include "common/serde.h"
#include "common/thread_pool.h"
#include "obs/json_util.h"

namespace stark {
namespace obs {

namespace {

thread_local TaskSpan* current_task_span = nullptr;

void AppendEscaped(std::string* out, const std::string& s) {
  AppendJsonEscaped(out, s);
}

std::string Micros(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e3);
  return buf;
}

}  // namespace

void TaskTracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  phases_.clear();
}

void TaskTracer::Record(TaskSpan span) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(span));
}

void TaskTracer::RecordPhase(PhaseEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  phases_.push_back(std::move(event));
}

std::vector<TaskSpan> TaskTracer::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<PhaseEvent> TaskTracer::Phases() const {
  std::lock_guard<std::mutex> lock(mu_);
  return phases_;
}

std::string TaskTracer::ChromeTraceJson() const {
  std::vector<TaskSpan> spans;
  std::vector<PhaseEvent> phases;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans = spans_;
    phases = phases_;
  }
  // tid 0 is the driver thread; worker w maps to tid w + 1.
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  // Metadata events first, so the trace viewer labels pid/tid rows
  // ("stark driver", "stark worker 3") instead of showing bare numbers.
  // An empty trace stays empty: no spans means no rows to label.
  if (!spans.empty() || !phases.empty()) {
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
           "\"args\":{\"name\":\"stark\"}}";
    first = false;
    std::set<int> tids;
    for (const TaskSpan& s : spans) tids.insert(s.worker + 1);
    for (const PhaseEvent& e : phases) tids.insert(e.worker + 1);
    tids.insert(0);
    for (int tid : tids) {
      const std::string label =
          tid == 0 ? "driver" : "worker " + std::to_string(tid - 1);
      out += ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
             std::to_string(tid) + ",\"args\":{\"name\":" + JsonQuoted(label) +
             "}}";
    }
  }
  for (const TaskSpan& s : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(&out, s.stage);
    out += "\",\"cat\":\"task\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
           std::to_string(s.worker + 1) + ",\"ts\":" + Micros(s.start_ns) +
           ",\"dur\":" + Micros(s.end_ns - s.start_ns) +
           ",\"args\":{\"job\":" + std::to_string(s.job_id) +
           ",\"partition\":" + std::to_string(s.partition) +
           ",\"queue_wait_us\":" + Micros(s.start_ns - s.queued_ns) +
           ",\"records_in\":" + std::to_string(s.records_in) +
           ",\"records_out\":" + std::to_string(s.records_out) +
           ",\"attempt\":" + std::to_string(s.attempt) +
           ",\"ok\":" + (s.ok ? "true" : "false");
    if (s.bytes > 0) out += ",\"bytes\":" + std::to_string(s.bytes);
    if (s.candidates > 0) {
      out += ",\"candidates\":" + std::to_string(s.candidates) +
             ",\"refined\":" + std::to_string(s.refined);
    }
    if (s.speculative) out += ",\"speculative\":true";
    if (!s.error.empty()) {
      out += ",\"error\":\"";
      AppendEscaped(&out, s.error);
      out += '"';
    }
    if (!s.detail.empty()) {
      out += ",\"detail\":\"";
      AppendEscaped(&out, s.detail);
      out += '"';
    }
    out += "}}";
  }
  for (const PhaseEvent& e : phases) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(&out, e.name);
    out += std::string("\",\"cat\":\"phase\",\"ph\":\"") +
           (e.begin ? "B" : "E") +
           "\",\"pid\":1,\"tid\":" + std::to_string(e.worker + 1) +
           ",\"ts\":" + Micros(e.ts_ns) + "}";
  }
  out += "]}";
  return out;
}

Status TaskTracer::WriteChromeTrace(const std::string& path) const {
  const std::string json = ChromeTraceJson();
  return WriteFileBytes(path, std::vector<char>(json.begin(), json.end()));
}

TaskTracer& DefaultTracer() {
  static TaskTracer* tracer = new TaskTracer();
  return *tracer;
}

TaskSpan* CurrentTaskSpan() { return current_task_span; }

CurrentTaskSpanScope::CurrentTaskSpanScope(TaskSpan* span)
    : previous_(current_task_span) {
  current_task_span = span;
}

CurrentTaskSpanScope::~CurrentTaskSpanScope() {
  current_task_span = previous_;
}

ScopedSpan::ScopedSpan(TaskTracer& tracer, std::string name)
    : tracer_(tracer.enabled() ? &tracer : nullptr), name_(std::move(name)) {
  if (tracer_ == nullptr) return;
  PhaseEvent e;
  e.name = name_;
  e.worker = ThreadPool::CurrentWorkerIndex();
  e.begin = true;
  e.ts_ns = tracer_->NowNanos();
  tracer_->RecordPhase(std::move(e));
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  PhaseEvent e;
  e.name = name_;
  e.worker = ThreadPool::CurrentWorkerIndex();
  e.begin = false;
  e.ts_ns = tracer_->NowNanos();
  tracer_->RecordPhase(std::move(e));
}

}  // namespace obs
}  // namespace stark
