/// \file metrics.h
/// Engine-wide metrics registry: named counters, gauges and histograms with
/// a lock-free hot path. Instruments resolve once (mutex-protected
/// create-or-get) and are then plain atomics, so incrementing from inside
/// partition tasks costs a single relaxed fetch_add. Snapshots copy every
/// instrument into plain value structs that can be diffed, printed, or
/// serialized without touching the live atomics again.
///
/// Granularity rule: engine code only records at *partition/task*
/// granularity (or batches per-element totals into one Add per partition),
/// never per element, so the always-on counters stay invisible in profiles.
#ifndef STARK_OBS_METRICS_H_
#define STARK_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/macros.h"

namespace stark {
namespace obs {

/// Monotonically increasing event count (tasks run, cache hits, ...).
class Counter {
 public:
  void Add(uint64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (pool size, live partitions, ...).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log2-bucketed distribution of non-negative samples (latencies in ns,
/// batch sizes, ...). Bucket i counts samples whose bit width is i, i.e.
/// values in [2^(i-1), 2^i); recording is a handful of relaxed atomic ops.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  void Record(uint64_t value);

  /// Plain-value copy of the distribution.
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;  ///< 0 when count == 0.
    uint64_t max = 0;
    std::array<uint64_t, kNumBuckets> buckets{};

    double Mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
    /// Upper bound of the bucket containing the p-quantile (p in [0, 1]);
    /// exact to within the log2 bucket resolution.
    uint64_t ApproxPercentile(double p) const;
  };
  Snapshot Snap() const;

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// \brief Create-or-get registry of named instruments.
///
/// Instrument pointers are stable for the registry's lifetime, so callers
/// resolve a name once (e.g. into a function-local static) and keep the
/// pointer. Registration takes a mutex; reads/writes of the instruments do
/// not.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  STARK_DISALLOW_COPY_AND_ASSIGN(MetricsRegistry);

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Plain-value copy of every registered instrument.
  struct Snapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, Histogram::Snapshot> histograms;
  };
  Snapshot Snap() const;

  /// Human-readable report, one instrument per line, sorted by name.
  std::string TextReport() const;

  /// JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string Json() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry used by the engine's built-in instrumentation
/// (engine.*, spatial.filter.*, bench.*). Tests may also create private
/// registries.
MetricsRegistry& DefaultMetrics();

}  // namespace obs
}  // namespace stark

#endif  // STARK_OBS_METRICS_H_
