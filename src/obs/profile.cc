#include "obs/profile.h"

#include <cstdio>
#include <cstdlib>

#include "obs/json_util.h"

namespace stark {
namespace obs {

namespace {

thread_local ProfileCollector* g_collector = nullptr;

const char* KindName(ProfileNodeKind kind) {
  switch (kind) {
    case ProfileNodeKind::kScript: return "script";
    case ProfileNodeKind::kStatement: return "statement";
    case ProfileNodeKind::kJob: return "job";
  }
  return "?";
}

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", ms);
  return buf;
}

void AppendNodeJson(const ProfileNode& n, std::string* out) {
  *out += "{\"label\":" + JsonQuoted(n.label) +
          ",\"kind\":" + JsonQuoted(KindName(n.kind)) +
          ",\"wall_ms\":" + FormatMs(n.wall_ms) +
          ",\"partitions\":" + std::to_string(n.partitions) +
          ",\"rows_in\":" + std::to_string(n.rows_in) +
          ",\"rows_out\":" + std::to_string(n.rows_out) +
          ",\"bytes\":" + std::to_string(n.bytes) +
          ",\"candidates\":" + std::to_string(n.candidates) +
          ",\"refined\":" + std::to_string(n.refined) +
          ",\"retries\":" + std::to_string(n.retries) +
          ",\"speculated\":" + std::to_string(n.speculated) +
          ",\"cancelled\":" + std::to_string(n.cancelled);
  if (n.failed) {
    *out += ",\"failed\":true,\"error\":" + JsonQuoted(n.error);
  }
  if (n.task_ns.count > 0) {
    *out += ",\"task_ns\":{\"count\":" + std::to_string(n.task_ns.count) +
            ",\"sum\":" + std::to_string(n.task_ns.sum) +
            ",\"min\":" + std::to_string(n.task_ns.min) +
            ",\"max\":" + std::to_string(n.task_ns.max) +
            ",\"p50\":" + std::to_string(n.task_ns.ApproxPercentile(0.5)) +
            ",\"p99\":" + std::to_string(n.task_ns.ApproxPercentile(0.99)) +
            "}";
  }
  *out += ",\"children\":[";
  bool first = true;
  for (const ProfileNode& c : n.children) {
    if (!first) *out += ',';
    first = false;
    AppendNodeJson(c, out);
  }
  *out += "]}";
}

void AppendNodeTree(const ProfileNode& n, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += KindName(n.kind);
  *out += ' ';
  *out += n.label;
  *out += "  [" + FormatMs(n.wall_ms) + " ms";
  if (n.kind == ProfileNodeKind::kJob) {
    *out += ", parts=" + std::to_string(n.partitions) +
            ", rows=" + std::to_string(n.rows_in) + "/" +
            std::to_string(n.rows_out);
    if (n.bytes > 0) *out += ", bytes=" + std::to_string(n.bytes);
    if (n.candidates > 0) {
      *out += ", cand=" + std::to_string(n.candidates) + "/" +
              std::to_string(n.refined);
    }
    if (n.retries > 0) *out += ", retries=" + std::to_string(n.retries);
    if (n.speculated > 0) *out += ", spec=" + std::to_string(n.speculated);
    if (n.cancelled > 0) *out += ", cancelled=" + std::to_string(n.cancelled);
    if (n.task_ns.count > 0) {
      *out += ", task p50=" +
              FormatMs(static_cast<double>(n.task_ns.ApproxPercentile(0.5)) /
                       1e6) +
              " ms p99=" +
              FormatMs(static_cast<double>(n.task_ns.ApproxPercentile(0.99)) /
                       1e6) +
              " ms";
    }
  }
  if (n.failed) *out += ", FAILED: " + n.error;
  *out += "]\n";
  for (const ProfileNode& c : n.children) AppendNodeTree(c, depth + 1, out);
}

}  // namespace

uint64_t ProfileNode::TotalRowsOut() const {
  uint64_t total = rows_out;
  for (const ProfileNode& c : children) total += c.TotalRowsOut();
  return total;
}

double ProfileNode::TotalWallMs() const {
  double total = wall_ms;
  for (const ProfileNode& c : children) total += c.TotalWallMs();
  return total;
}

ProfileCollector::ProfileCollector(std::string label) {
  root_.label = std::move(label);
  root_.kind = ProfileNodeKind::kScript;
  stack_.push_back(&root_);
}

ProfileNode* ProfileCollector::Push(std::string label, ProfileNodeKind kind) {
  ProfileNode* top = stack_.back();
  // Children of interior stack nodes are only ever appended through this
  // collector, and Push reserves nothing beyond — but vector growth would
  // invalidate pointers held by deeper frames. Statements are pushed one at
  // a time and popped before the next begins, so only the top frame's
  // children vector grows while a deeper pointer exists; keep it that way.
  top->children.emplace_back();
  ProfileNode* node = &top->children.back();
  node->label = std::move(label);
  node->kind = kind;
  stack_.push_back(node);
  return node;
}

void ProfileCollector::Pop() {
  if (stack_.size() > 1) stack_.pop_back();
}

void ProfileCollector::RecordJob(ProfileNode node) {
  stack_.back()->children.push_back(std::move(node));
}

ProfileCollector* CurrentProfileCollector() { return g_collector; }

ProfileCollectorScope::ProfileCollectorScope(ProfileCollector* collector)
    : prev_(g_collector) {
  g_collector = collector;
}

ProfileCollectorScope::~ProfileCollectorScope() { g_collector = prev_; }

ProfileNodeScope::ProfileNodeScope(ProfileCollector* collector,
                                   std::string label, ProfileNodeKind kind)
    : collector_(collector), node_(nullptr) {
  if (collector_ != nullptr) {
    node_ = collector_->Push(std::move(label), kind);
  }
}

ProfileNodeScope::~ProfileNodeScope() {
  if (collector_ != nullptr) collector_->Pop();
}

std::string ProfileJson(const ProfileNode& node) {
  std::string out;
  AppendNodeJson(node, &out);
  return out;
}

std::string FormatProfileTree(const ProfileNode& node) {
  std::string out;
  AppendNodeTree(node, 0, &out);
  return out;
}

SlowLogConfig::SlowLogConfig() {
  if (const char* raw = std::getenv("STARK_SLOW_TASK_MS")) {
    char* end = nullptr;
    const double v = std::strtod(raw, &end);
    if (end != raw && v >= 0.0) set_slow_task_ms(v);
  }
  if (const char* raw = std::getenv("STARK_SLOW_QUERY_MS")) {
    char* end = nullptr;
    const double v = std::strtod(raw, &end);
    if (end != raw && v >= 0.0) set_slow_query_ms(v);
  }
}

SlowLogConfig& GlobalSlowLog() {
  static SlowLogConfig* config = new SlowLogConfig();
  return *config;
}

}  // namespace obs
}  // namespace stark
