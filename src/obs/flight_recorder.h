/// \file flight_recorder.h
/// Always-on flight recorder: a fixed-size, lock-free ring buffer of recent
/// task-lifecycle events (claim / finish / retry / speculate / cancel /
/// worker death / injected fault). Unlike the TaskTracer, which must be
/// armed before the run, the recorder is recording *all the time* at a cost
/// of a few relaxed atomic stores per event, so when a job dies — deadline,
/// cancellation, exhausted retries — the last few thousand scheduling
/// decisions that led up to the failure can be dumped for a post-mortem
/// without re-running anything.
///
/// Concurrency model: writers claim a slot with one fetch_add and publish
/// it with a per-slot sequence counter (a seqlock); the payload itself is
/// stored as relaxed atomic words, so late readers either observe a fully
/// published event or skip the slot — no locks, no torn reads, TSan-clean.
///
/// Dumps: `Dump(path, reason)` writes a JSON post-mortem of the surviving
/// ring contents. Arm auto-dumping with STARK_FLIGHT_RECORDER=<path> (or
/// set_auto_dump_path): the engine then dumps automatically whenever a job
/// resolves to DeadlineExceeded / Cancelled / a permanent failure.
#ifndef STARK_OBS_FLIGHT_RECORDER_H_
#define STARK_OBS_FLIGHT_RECORDER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace stark {
namespace obs {

/// What happened to a task copy (or to the job/worker hosting it).
enum class FlightEventKind : uint8_t {
  kClaim = 0,       ///< a copy won the per-task claim and will run user code
  kFinish = 1,      ///< successful commit; value = run duration (ns)
  kRetry = 2,       ///< attempt failed, another attempt follows
  kSpeculate = 3,   ///< driver launched a speculative backup copy
  kCancel = 4,      ///< task skipped/stopped by cancel, deadline or fail-fast
  kWorkerDeath = 5, ///< the worker executing the copy was killed mid-task
  kTaskFail = 6,    ///< permanent task failure (retries exhausted)
  kJobFail = 7,     ///< job resolved non-OK; detail = stage, value = tasks
  kFault = 8,       ///< an armed fail point fired; detail = site name
};

/// Human-readable name of \p kind ("claim", "finish", ...).
const char* FlightEventKindName(FlightEventKind kind);

/// One decoded ring entry. `detail` is a short fixed-size annotation —
/// stage name for job events, fail-point site for kFault — truncated to
/// kDetailSize-1 characters.
struct FlightEvent {
  static constexpr size_t kDetailSize = 24;

  uint64_t ts_ns = 0;     ///< steady-clock ns since the recorder's epoch
  uint64_t job = 0;       ///< JobControl generation (0 = no job context)
  uint32_t partition = 0;
  uint32_t copy = 0;      ///< 1 = original, 2 = speculative; 0 = n/a
  uint32_t attempt = 0;   ///< 1-based attempt number; 0 = n/a
  int32_t worker = -1;    ///< pool worker index; -1 = driver thread
  FlightEventKind kind = FlightEventKind::kClaim;
  uint64_t value = 0;     ///< kind-specific (duration ns, task count, ...)
  char detail[kDetailSize] = {};
};

/// \brief The lock-free ring. One process-wide instance
/// (DefaultFlightRecorder()) is shared by the engine; tests may construct
/// private recorders.
class FlightRecorder {
 public:
  /// \p capacity is rounded up to a power of two; minimum 64.
  explicit FlightRecorder(size_t capacity = 8192);
  STARK_DISALLOW_COPY_AND_ASSIGN(FlightRecorder);

  /// Hot-path gate: a single relaxed load. Recording is ON by default —
  /// Disable() exists for overhead baselines, not normal operation.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  size_t capacity() const { return capacity_; }

  /// Nanoseconds since the recorder's epoch (steady clock).
  uint64_t NowNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Records one event (timestamps it if \p e.ts_ns is 0). Lock-free;
  /// callable from any thread including pool workers mid-task.
  void Record(FlightEvent e);

  /// Convenience: build + record a task-lifecycle event.
  void RecordTask(FlightEventKind kind, uint64_t job, size_t partition,
                  uint32_t copy, uint32_t attempt, int worker,
                  uint64_t value = 0, const char* detail = nullptr);

  /// Total events ever recorded (monotonic; may exceed capacity).
  uint64_t total_recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  /// Consistent copies of the surviving ring contents, oldest first.
  /// Slots being concurrently overwritten are skipped, not torn.
  std::vector<FlightEvent> Snapshot() const;

  /// JSON post-mortem: {"reason": ..., "recorded": N, "events": [...]}.
  std::string DumpJson(const std::string& reason) const;

  /// Writes DumpJson to \p path.
  Status Dump(const std::string& path, const std::string& reason) const;

  /// Arms automatic dump-on-failure to \p path (empty disarms). The
  /// default recorder arms itself from STARK_FLIGHT_RECORDER at creation.
  void set_auto_dump_path(const std::string& path);
  std::string auto_dump_path() const;

  /// Called by the engine when a job resolves non-OK (and by the fault
  /// layer when a fail point fires, if STARK_FLIGHT_DUMP_ON_FAULT=1):
  /// dumps to the armed path, if any. Returns true when a dump was
  /// written. Counted by `engine.flight.dumps`.
  bool AutoDump(const std::string& reason);

 private:
  // Payload words per slot: 5 fixed (ts, job, packed ids, worker, value)
  // + detail (kDetailSize bytes).
  static constexpr size_t kDetailWords = FlightEvent::kDetailSize / 8;
  static constexpr size_t kWordsPerSlot = 5 + kDetailWords;

  struct Slot {
    std::atomic<uint64_t> seq{0};  ///< 0 = empty; odd = writing; even = 2*(i+1)
    std::array<std::atomic<uint64_t>, kWordsPerSlot> words{};
  };

  const size_t capacity_;  // power of two
  const size_t mask_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> next_{0};
  std::unique_ptr<Slot[]> slots_;

  mutable std::mutex dump_mu_;  // guards auto_dump_path_ only
  std::string auto_dump_path_;
};

/// The process-wide recorder the engine records into; arms auto-dump from
/// STARK_FLIGHT_RECORDER on first use.
FlightRecorder& DefaultFlightRecorder();

}  // namespace obs
}  // namespace stark

#endif  // STARK_OBS_FLIGHT_RECORDER_H_
