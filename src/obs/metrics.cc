#include "obs/metrics.h"

#include <bit>
#include <cstdio>

#include "obs/json_util.h"

namespace stark {
namespace obs {

namespace {

/// Bit width of \p v: 0 for 0, otherwise 1 + floor(log2(v)).
size_t BucketIndex(uint64_t v) {
  return static_cast<size_t>(std::bit_width(v));
}

}  // namespace

void Histogram::Record(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  const uint64_t min = min_.load(std::memory_order_relaxed);
  s.min = min == UINT64_MAX ? 0 : min;
  s.max = max_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

uint64_t Histogram::Snapshot::ApproxPercentile(double p) const {
  if (count == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  const uint64_t rank =
      static_cast<uint64_t>(p * static_cast<double>(count - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // Upper bound of bucket i = 2^i - 1 (bucket 0 holds only zeros).
      if (i == 0) return 0;
      if (i >= 64) return UINT64_MAX;
      return (uint64_t{1} << i) - 1;
    }
  }
  return max;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  Snapshot s;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) s.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->Snap();
  return s;
}

std::string MetricsRegistry::TextReport() const {
  const Snapshot s = Snap();
  std::string out;
  char buf[256];
  for (const auto& [name, v] : s.counters) {
    std::snprintf(buf, sizeof(buf), "%-48s %20llu\n", name.c_str(),
                  static_cast<unsigned long long>(v));
    out += buf;
  }
  for (const auto& [name, v] : s.gauges) {
    std::snprintf(buf, sizeof(buf), "%-48s %20lld\n", name.c_str(),
                  static_cast<long long>(v));
    out += buf;
  }
  for (const auto& [name, h] : s.histograms) {
    std::snprintf(buf, sizeof(buf),
                  "%-48s count=%llu mean=%.1f min=%llu p50=%llu p99=%llu "
                  "max=%llu\n",
                  name.c_str(), static_cast<unsigned long long>(h.count),
                  h.Mean(), static_cast<unsigned long long>(h.min),
                  static_cast<unsigned long long>(h.ApproxPercentile(0.5)),
                  static_cast<unsigned long long>(h.ApproxPercentile(0.99)),
                  static_cast<unsigned long long>(h.max));
    out += buf;
  }
  return out;
}

std::string MetricsRegistry::Json() const {
  const Snapshot s = Snap();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : s.counters) {
    if (!first) out += ',';
    first = false;
    out += JsonQuoted(name);
    out += ":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : s.gauges) {
    if (!first) out += ',';
    first = false;
    out += JsonQuoted(name);
    out += ":" + std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : s.histograms) {
    if (!first) out += ',';
    first = false;
    out += JsonQuoted(name);
    out += ":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) +
           ",\"min\":" + std::to_string(h.min) +
           ",\"max\":" + std::to_string(h.max) +
           ",\"p50\":" + std::to_string(h.ApproxPercentile(0.5)) +
           ",\"p99\":" + std::to_string(h.ApproxPercentile(0.99)) + "}";
  }
  out += "}}";
  return out;
}

MetricsRegistry& DefaultMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace stark
