/// \file json_util.h
/// Shared JSON string escaping for every obs exporter (metrics JSON, Chrome
/// traces, query profiles, flight-recorder dumps) and the bench JsonReport.
/// One implementation so a metric or stage name containing quotes,
/// backslashes or control characters can never produce invalid JSON from
/// one exporter but not another.
#ifndef STARK_OBS_JSON_UTIL_H_
#define STARK_OBS_JSON_UTIL_H_

#include <cstdio>
#include <string>

namespace stark {
namespace obs {

/// Appends \p s to \p out with full JSON string escaping: quote, backslash,
/// the two-character escapes \b \f \n \r \t, and \u00xx for the remaining
/// control characters.
inline void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

/// Returns \p s as a quoted, escaped JSON string literal.
inline std::string JsonQuoted(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  AppendJsonEscaped(&out, s);
  out += '"';
  return out;
}

}  // namespace obs
}  // namespace stark

#endif  // STARK_OBS_JSON_UTIL_H_
