#include "obs/flight_recorder.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/serde.h"
#include "obs/json_util.h"
#include "obs/metrics.h"

namespace stark {
namespace obs {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 64;
  while (p < v) p <<= 1;
  return p;
}

/// Packs partition/copy/attempt/kind into one word (see Unpack).
uint64_t PackIds(const FlightEvent& e) {
  return (static_cast<uint64_t>(e.partition) << 32) |
         (static_cast<uint64_t>(e.copy & 0xffff) << 16) |
         (static_cast<uint64_t>(e.attempt & 0xff) << 8) |
         static_cast<uint64_t>(e.kind);
}

void UnpackIds(uint64_t a, FlightEvent* e) {
  e->partition = static_cast<uint32_t>(a >> 32);
  e->copy = static_cast<uint32_t>((a >> 16) & 0xffff);
  e->attempt = static_cast<uint32_t>((a >> 8) & 0xff);
  e->kind = static_cast<FlightEventKind>(a & 0xff);
}

}  // namespace

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kClaim: return "claim";
    case FlightEventKind::kFinish: return "finish";
    case FlightEventKind::kRetry: return "retry";
    case FlightEventKind::kSpeculate: return "speculate";
    case FlightEventKind::kCancel: return "cancel";
    case FlightEventKind::kWorkerDeath: return "worker_death";
    case FlightEventKind::kTaskFail: return "task_fail";
    case FlightEventKind::kJobFail: return "job_fail";
    case FlightEventKind::kFault: return "fault";
  }
  return "?";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(RoundUpPow2(capacity)),
      mask_(capacity_ - 1),
      epoch_(std::chrono::steady_clock::now()),
      slots_(new Slot[capacity_]) {}

void FlightRecorder::Record(FlightEvent e) {
  if (!enabled()) return;
  if (e.ts_ns == 0) e.ts_ns = NowNanos();
  const uint64_t i = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[i & mask_];
  // Seqlock write: mark the slot in-progress (odd), store the payload as
  // relaxed atomic words, then publish with the slot's even sequence for
  // lap i. A reader accepts the slot only when it sees the same even
  // sequence before and after reading the words. Two writers a full lap
  // apart can interleave on the same slot; whichever publishes last wins
  // and intermediate readers skip — acceptable for a stats ring.
  s.seq.store(2 * i + 1, std::memory_order_release);
  s.words[0].store(e.ts_ns, std::memory_order_relaxed);
  s.words[1].store(e.job, std::memory_order_relaxed);
  s.words[2].store(PackIds(e), std::memory_order_relaxed);
  s.words[3].store(static_cast<uint64_t>(static_cast<uint32_t>(e.worker)),
                   std::memory_order_relaxed);
  s.words[4].store(e.value, std::memory_order_relaxed);
  uint64_t detail_words[kDetailWords] = {};
  std::memcpy(detail_words, e.detail, sizeof(detail_words));
  for (size_t w = 0; w < kDetailWords; ++w) {
    s.words[5 + w].store(detail_words[w], std::memory_order_relaxed);
  }
  s.seq.store(2 * (i + 1), std::memory_order_release);
}

void FlightRecorder::RecordTask(FlightEventKind kind, uint64_t job,
                                size_t partition, uint32_t copy,
                                uint32_t attempt, int worker, uint64_t value,
                                const char* detail) {
  if (!enabled()) return;
  FlightEvent e;
  e.job = job;
  e.partition = static_cast<uint32_t>(partition);
  e.copy = copy;
  e.attempt = attempt;
  e.worker = worker;
  e.kind = kind;
  e.value = value;
  if (detail != nullptr) {
    std::strncpy(e.detail, detail, FlightEvent::kDetailSize - 1);
  }
  Record(e);
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  const uint64_t end = next_.load(std::memory_order_acquire);
  const uint64_t begin = end > capacity_ ? end - capacity_ : 0;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<size_t>(end - begin));
  for (uint64_t i = begin; i < end; ++i) {
    const Slot& s = slots_[i & mask_];
    const uint64_t seq_before = s.seq.load(std::memory_order_acquire);
    if (seq_before == 0 || (seq_before & 1) != 0) continue;  // empty/writing
    FlightEvent e;
    uint64_t detail_words[kDetailWords];
    e.ts_ns = s.words[0].load(std::memory_order_relaxed);
    e.job = s.words[1].load(std::memory_order_relaxed);
    const uint64_t a = s.words[2].load(std::memory_order_relaxed);
    const uint64_t worker_word = s.words[3].load(std::memory_order_relaxed);
    e.value = s.words[4].load(std::memory_order_relaxed);
    for (size_t w = 0; w < kDetailWords; ++w) {
      detail_words[w] = s.words[5 + w].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != seq_before) continue;
    UnpackIds(a, &e);
    e.worker = static_cast<int32_t>(static_cast<uint32_t>(worker_word));
    std::memcpy(e.detail, detail_words, sizeof(detail_words));
    e.detail[FlightEvent::kDetailSize - 1] = '\0';
    out.push_back(e);
  }
  return out;
}

std::string FlightRecorder::DumpJson(const std::string& reason) const {
  const std::vector<FlightEvent> events = Snapshot();
  std::string out = "{\"reason\":" + JsonQuoted(reason) +
                    ",\"capacity\":" + std::to_string(capacity_) +
                    ",\"recorded\":" + std::to_string(total_recorded()) +
                    ",\"events\":[";
  bool first = true;
  for (const FlightEvent& e : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"ts_ns\":" + std::to_string(e.ts_ns) +
           ",\"kind\":" + JsonQuoted(FlightEventKindName(e.kind)) +
           ",\"job\":" + std::to_string(e.job) +
           ",\"partition\":" + std::to_string(e.partition) +
           ",\"copy\":" + std::to_string(e.copy) +
           ",\"attempt\":" + std::to_string(e.attempt) +
           ",\"worker\":" + std::to_string(e.worker) +
           ",\"value\":" + std::to_string(e.value);
    if (e.detail[0] != '\0') {
      out += ",\"detail\":" + JsonQuoted(e.detail);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

Status FlightRecorder::Dump(const std::string& path,
                            const std::string& reason) const {
  const std::string json = DumpJson(reason);
  return WriteFileBytes(path, std::vector<char>(json.begin(), json.end()));
}

void FlightRecorder::set_auto_dump_path(const std::string& path) {
  std::lock_guard<std::mutex> lock(dump_mu_);
  auto_dump_path_ = path;
}

std::string FlightRecorder::auto_dump_path() const {
  std::lock_guard<std::mutex> lock(dump_mu_);
  return auto_dump_path_;
}

bool FlightRecorder::AutoDump(const std::string& reason) {
  const std::string path = auto_dump_path();
  if (path.empty()) return false;
  static Counter* const dumps =
      DefaultMetrics().GetCounter("engine.flight.dumps");
  const Status status = Dump(path, reason);
  if (!status.ok()) {
    std::fprintf(stderr, "flight-recorder dump to %s failed: %s\n",
                 path.c_str(), status.ToString().c_str());
    return false;
  }
  dumps->Increment();
  return true;
}

FlightRecorder& DefaultFlightRecorder() {
  static FlightRecorder* recorder = [] {
    size_t capacity = 8192;
    if (const char* raw = std::getenv("STARK_FLIGHT_CAPACITY")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(raw, &end, 10);
      if (end != raw && *end == '\0' && v > 0) {
        capacity = static_cast<size_t>(v);
      }
    }
    auto* r = new FlightRecorder(capacity);
    if (const char* path = std::getenv("STARK_FLIGHT_RECORDER")) {
      if (*path != '\0') r->set_auto_dump_path(path);
    }
    return r;
  }();
  return *recorder;
}

}  // namespace obs
}  // namespace stark
