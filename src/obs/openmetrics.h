/// \file openmetrics.h
/// OpenMetrics / Prometheus text rendering of the metrics registry, a
/// strict line-format validator for it, and a background exporter thread
/// that snapshots the registry to a file on an interval so a scraper (or a
/// human with `watch cat`) can follow a running engine live.
///
/// Mapping: registry names are sanitized to [a-zA-Z0-9_:] and prefixed
/// `stark_`; counters gain the mandated `_total` suffix; log2 histograms
/// become cumulative `_bucket{le="2^i - 1"}` series plus `_sum`/`_count`
/// and the required `le="+Inf"` bucket. The exposition ends with `# EOF`
/// (OpenMetrics) so truncated writes are detectable.
#ifndef STARK_OBS_OPENMETRICS_H_
#define STARK_OBS_OPENMETRICS_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/macros.h"
#include "obs/metrics.h"

namespace stark {
namespace obs {

/// Renders \p snap in OpenMetrics text format (ends with "# EOF\n").
std::string RenderOpenMetrics(const MetricsRegistry::Snapshot& snap);

/// Strict line-format check of an OpenMetrics exposition: metric-name and
/// label syntax, HELP/TYPE before samples, counter `_total` suffix,
/// histogram bucket monotonicity and a final `+Inf` bucket matching
/// `_count`, numeric sample values, and the terminal `# EOF`. Returns an
/// empty string when valid, else a "line N: <problem>" description of the
/// first violation.
std::string ValidateOpenMetrics(const std::string& text);

/// \brief Background thread that writes RenderOpenMetrics(registry) to a
/// file every interval (atomically: temp file + rename). Stops — after one
/// final export, so the file always reflects process end — on destruction
/// or Stop().
class MetricsExporter {
 public:
  MetricsExporter(MetricsRegistry* registry, std::string path,
                  int interval_ms);
  ~MetricsExporter();
  STARK_DISALLOW_COPY_AND_ASSIGN(MetricsExporter);

  const std::string& path() const { return path_; }

  /// Joins the thread after one final export. Idempotent.
  void Stop();

  /// Explicit ordered-shutdown entry point: identical to Stop(), named for
  /// call sites (server drain, shell exit) where the requirement is "the
  /// export thread is gone and the final file is on disk *before* the
  /// registry's instruments start disappearing". After it returns, no
  /// further writes to path() happen.
  void StopAndJoin() { Stop(); }

  /// Synchronous one-shot export (also used by the thread). Returns false
  /// and logs to stderr when the file cannot be written.
  bool ExportOnce();

  /// Creates an exporter for DefaultMetrics() when STARK_METRICS_EXPORT is
  /// set (interval from STARK_METRICS_INTERVAL_MS, default 1000, floored
  /// at 10); returns nullptr otherwise.
  static std::unique_ptr<MetricsExporter> FromEnv();

 private:
  void Loop();

  MetricsRegistry* const registry_;
  const std::string path_;
  const int interval_ms_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace obs
}  // namespace stark

#endif  // STARK_OBS_OPENMETRICS_H_
