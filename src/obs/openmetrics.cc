#include "obs/openmetrics.h"

#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/serde.h"
#include "common/status.h"

namespace stark {
namespace obs {

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

/// Registry names are dotted ("engine.tasks.retried"); OpenMetrics names
/// allow only [a-zA-Z0-9_:]. Sanitize and namespace under stark_.
std::string MetricName(const std::string& raw) {
  std::string out = "stark_";
  for (char c : raw) out += IsNameChar(c) ? c : '_';
  return out;
}

void AppendU64Sample(std::string* out, const std::string& name, uint64_t v) {
  *out += name;
  *out += ' ';
  *out += std::to_string(v);
  *out += '\n';
}

/// Inclusive upper bound of log2 bucket \p i (values with bit width i):
/// 2^i - 1. Bucket 0 holds only the value 0.
uint64_t BucketUpperBound(size_t i) {
  if (i >= 64) return UINT64_MAX;
  return (i == 0) ? 0 : ((uint64_t{1} << i) - 1);
}

}  // namespace

std::string RenderOpenMetrics(const MetricsRegistry::Snapshot& snap) {
  std::string out;
  for (const auto& [raw, value] : snap.counters) {
    const std::string name = MetricName(raw);
    out += "# TYPE " + name + " counter\n";
    AppendU64Sample(&out, name + "_total", value);
  }
  for (const auto& [raw, value] : snap.gauges) {
    const std::string name = MetricName(raw);
    out += "# TYPE " + name + " gauge\n";
    out += name + ' ' + std::to_string(value) + '\n';
  }
  for (const auto& [raw, h] : snap.histograms) {
    const std::string name = MetricName(raw);
    out += "# TYPE " + name + " histogram\n";
    size_t top = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (h.buckets[i] != 0) top = i;
    }
    uint64_t cumulative = 0;
    for (size_t i = 0; i <= top; ++i) {
      cumulative += h.buckets[i];
      out += name + "_bucket{le=\"" + std::to_string(BucketUpperBound(i)) +
             "\"} " + std::to_string(cumulative) + '\n';
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + '\n';
    AppendU64Sample(&out, name + "_sum", h.sum);
    AppendU64Sample(&out, name + "_count", h.count);
  }
  out += "# EOF\n";
  return out;
}

namespace {

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  if (std::isdigit(static_cast<unsigned char>(name[0]))) return false;
  for (char c : name) {
    if (!IsNameChar(c)) return false;
  }
  return true;
}

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

struct FamilyState {
  std::string name;
  std::string type;
  bool saw_inf_bucket = false;
  bool saw_count = false;
  double last_le = -1.0;
  uint64_t last_bucket_count = 0;
  uint64_t inf_bucket_count = 0;
  uint64_t count_value = 0;
};

std::string CheckFamilyComplete(const FamilyState& f) {
  if (f.type == "histogram" && !f.name.empty()) {
    if (!f.saw_inf_bucket) {
      return "histogram " + f.name + " has no le=\"+Inf\" bucket";
    }
    if (f.saw_count && f.inf_bucket_count != f.count_value) {
      return "histogram " + f.name + " +Inf bucket (" +
             std::to_string(f.inf_bucket_count) + ") != _count (" +
             std::to_string(f.count_value) + ")";
    }
  }
  return "";
}

}  // namespace

std::string ValidateOpenMetrics(const std::string& text) {
  auto fail = [](size_t line_no, const std::string& what) {
    return "line " + std::to_string(line_no) + ": " + what;
  };
  if (text.empty() || text.back() != '\n') {
    return "exposition must end with a newline";
  }

  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t nl = text.find('\n', pos);
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  if (lines.empty() || lines.back() != "# EOF") {
    return "last line must be exactly '# EOF'";
  }

  FamilyState family;
  bool saw_eof = false;
  for (size_t ln = 0; ln < lines.size(); ++ln) {
    const std::string& line = lines[ln];
    const size_t line_no = ln + 1;
    if (saw_eof) return fail(line_no, "content after # EOF");
    if (line.empty()) return fail(line_no, "empty line");

    if (line[0] == '#') {
      if (line == "# EOF") {
        saw_eof = true;
        continue;
      }
      // "# TYPE <name> <type>" or "# HELP <name> <text>".
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string rest = line.substr(7);
        const size_t sp = rest.find(' ');
        if (sp == std::string::npos) return fail(line_no, "malformed TYPE");
        const std::string name = rest.substr(0, sp);
        const std::string type = rest.substr(sp + 1);
        if (!ValidMetricName(name)) {
          return fail(line_no, "invalid metric name '" + name + "'");
        }
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "unknown") {
          return fail(line_no, "unknown metric type '" + type + "'");
        }
        const std::string incomplete = CheckFamilyComplete(family);
        if (!incomplete.empty()) return fail(line_no, incomplete);
        family = FamilyState{};
        family.name = name;
        family.type = type;
        continue;
      }
      if (line.rfind("# HELP ", 0) == 0) continue;
      return fail(line_no, "unrecognized comment line");
    }

    // Sample line: name[{labels}] value
    size_t name_end = 0;
    while (name_end < line.size() && IsNameChar(line[name_end])) ++name_end;
    const std::string name = line.substr(0, name_end);
    if (!ValidMetricName(name)) {
      return fail(line_no, "invalid sample metric name");
    }

    std::string le_value;
    size_t value_start = name_end;
    if (value_start < line.size() && line[value_start] == '{') {
      const size_t close = line.find('}', value_start);
      if (close == std::string::npos) {
        return fail(line_no, "unterminated label set");
      }
      const std::string labels = line.substr(value_start + 1,
                                             close - value_start - 1);
      // Strict single-label parse: we only ever emit le="...".
      if (labels.rfind("le=\"", 0) != 0 || labels.back() != '"') {
        return fail(line_no, "unsupported label set '" + labels + "'");
      }
      le_value = labels.substr(4, labels.size() - 5);
      value_start = close + 1;
    }
    if (value_start >= line.size() || line[value_start] != ' ') {
      return fail(line_no, "expected single space before value");
    }
    const std::string value_str = line.substr(value_start + 1);
    if (value_str.empty() || value_str.find(' ') != std::string::npos) {
      return fail(line_no, "malformed sample value");
    }
    char* end = nullptr;
    const double value = std::strtod(value_str.c_str(), &end);
    if (end != value_str.c_str() + value_str.size()) {
      return fail(line_no, "non-numeric sample value '" + value_str + "'");
    }

    if (family.name.empty()) {
      return fail(line_no, "sample before any # TYPE line");
    }
    if (family.type == "counter") {
      if (name != family.name + "_total") {
        return fail(line_no, "counter sample must be " + family.name +
                                 "_total, got " + name);
      }
      if (value < 0) return fail(line_no, "negative counter value");
    } else if (family.type == "gauge") {
      if (name != family.name) {
        return fail(line_no, "gauge sample name mismatch");
      }
    } else if (family.type == "histogram") {
      if (name == family.name + "_bucket") {
        if (le_value.empty()) {
          return fail(line_no, "histogram bucket missing le label");
        }
        double le = 0.0;
        if (le_value == "+Inf") {
          family.saw_inf_bucket = true;
          family.inf_bucket_count = static_cast<uint64_t>(value);
          le = 1e308;
        } else {
          char* le_end = nullptr;
          le = std::strtod(le_value.c_str(), &le_end);
          if (le_end != le_value.c_str() + le_value.size()) {
            return fail(line_no, "non-numeric le '" + le_value + "'");
          }
          if (family.saw_inf_bucket) {
            return fail(line_no, "bucket after +Inf bucket");
          }
        }
        if (le <= family.last_le) {
          return fail(line_no, "le values must increase");
        }
        if (value < static_cast<double>(family.last_bucket_count)) {
          return fail(line_no, "bucket counts must be cumulative");
        }
        family.last_le = le;
        family.last_bucket_count = static_cast<uint64_t>(value);
      } else if (name == family.name + "_sum") {
        if (value < 0) return fail(line_no, "negative histogram sum");
      } else if (name == family.name + "_count") {
        family.saw_count = true;
        family.count_value = static_cast<uint64_t>(value);
      } else {
        return fail(line_no, "unexpected histogram sample '" + name + "'");
      }
    } else {
      if (name != family.name && !HasSuffix(name, "_total")) {
        return fail(line_no, "sample does not match family " + family.name);
      }
    }
  }
  if (!saw_eof) return "missing # EOF";
  const std::string incomplete = CheckFamilyComplete(family);
  if (!incomplete.empty()) {
    return fail(lines.size(), incomplete);
  }
  return "";
}

MetricsExporter::MetricsExporter(MetricsRegistry* registry, std::string path,
                                 int interval_ms)
    : registry_(registry),
      path_(std::move(path)),
      interval_ms_(interval_ms < 10 ? 10 : interval_ms) {
  ExportOnce();  // file exists as soon as the exporter does
  thread_ = std::thread(&MetricsExporter::Loop, this);
}

MetricsExporter::~MetricsExporter() { Stop(); }

void MetricsExporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopping_ = true;
    stopped_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  ExportOnce();  // final export reflects end-of-run values
}

bool MetricsExporter::ExportOnce() {
  const std::string text = RenderOpenMetrics(registry_->Snap());
  const std::string tmp = path_ + ".tmp";
  const Status status =
      WriteFileBytes(tmp, std::vector<char>(text.begin(), text.end()));
  if (!status.ok()) {
    std::fprintf(stderr, "metrics export to %s failed: %s\n", tmp.c_str(),
                 status.ToString().c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::fprintf(stderr, "metrics export rename to %s failed\n",
                 path_.c_str());
    return false;
  }
  return true;
}

void MetricsExporter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                 [this] { return stopping_; });
    if (stopping_) break;
    lock.unlock();
    ExportOnce();
    lock.lock();
  }
}

std::unique_ptr<MetricsExporter> MetricsExporter::FromEnv() {
  const char* path = std::getenv("STARK_METRICS_EXPORT");
  if (path == nullptr || *path == '\0') return nullptr;
  int interval_ms = 1000;
  if (const char* raw = std::getenv("STARK_METRICS_INTERVAL_MS")) {
    char* end = nullptr;
    const long v = std::strtol(raw, &end, 10);
    if (end != raw && *end == '\0' && v > 0) {
      interval_ms = static_cast<int>(v);
    }
  }
  return std::unique_ptr<MetricsExporter>(
      new MetricsExporter(&DefaultMetrics(), path, interval_ms));
}

}  // namespace obs
}  // namespace stark
