/// \file trace.h
/// TaskTracer: records one span per partition-task (the sparklet analogue
/// of a Spark task in the stage/task UI) plus nestable driver-side phase
/// spans, and exports everything as Chrome `trace_event` JSON loadable in
/// chrome://tracing or Perfetto.
///
/// Tracing is OFF by default and the disabled path is a single relaxed
/// atomic load (`enabled()`), after which the engine dispatches tasks
/// exactly as before — no locks, no allocations, no timestamps. When
/// enabled, spans are buffered under a mutex; that cost is paid only at
/// task granularity while a trace is being captured.
#ifndef STARK_OBS_TRACE_H_
#define STARK_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace stark {
namespace obs {

/// One completed partition-task. Timestamps are nanoseconds since the
/// tracer's epoch (steady clock); queue wait = start_ns - queued_ns,
/// compute time = end_ns - start_ns.
struct TaskSpan {
  uint64_t job_id = 0;       ///< Action that launched the task.
  std::string stage;         ///< Stage label, e.g. "rdd.collect".
  size_t partition = 0;      ///< Partition index within the job.
  int worker = -1;           ///< ThreadPool worker index; -1 = driver thread.
  uint64_t queued_ns = 0;    ///< When the job submitted the task.
  uint64_t start_ns = 0;     ///< When a worker began computing it.
  uint64_t end_ns = 0;       ///< When it finished.
  uint64_t records_in = 0;   ///< Elements read by the task (0 if unknown).
  uint64_t records_out = 0;  ///< Elements produced by the task.
  uint64_t bytes = 0;        ///< Bytes serialized/shuffled (0 if none).
  uint64_t candidates = 0;   ///< Spatial index candidates probed.
  uint64_t refined = 0;      ///< Candidates surviving exact refinement.
  uint64_t attempt = 1;      ///< Execution attempt (1 = first run; >1 = retry).
  bool speculative = false;  ///< True for a speculative straggler copy.
  bool ok = true;            ///< False when this attempt failed.
  std::string error;         ///< Failure message of a failed attempt.
  std::string detail;        ///< Optional operator annotation (e.g. the
                             ///< partition pair and probe sub-range of a
                             ///< join task); empty = omitted from export.
};

/// One begin/end phase event from a ScopedSpan (driver-side phases such as
/// "shuffle" or a benchmark stage); these nest on a thread.
struct PhaseEvent {
  std::string name;
  int worker = -1;
  bool begin = true;
  uint64_t ts_ns = 0;
};

/// \brief Collects spans while enabled; null sink while disabled.
class TaskTracer {
 public:
  TaskTracer() : epoch_(std::chrono::steady_clock::now()) {}
  STARK_DISALLOW_COPY_AND_ASSIGN(TaskTracer);

  /// The hot-path check: engine code bails out immediately when false.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  /// Drops every buffered span/event (the epoch is kept).
  void Clear();

  /// Nanoseconds since the tracer's epoch.
  uint64_t NowNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Allocates a job id for an action (monotonic, process-wide per tracer).
  uint64_t BeginJob() { return next_job_.fetch_add(1, std::memory_order_relaxed); }

  /// Buffers a completed task span (call only while enabled).
  void Record(TaskSpan span);

  /// Buffers a phase begin/end event (call only while enabled).
  void RecordPhase(PhaseEvent event);

  std::vector<TaskSpan> Spans() const;
  std::vector<PhaseEvent> Phases() const;

  /// Serializes all buffered spans/phases to Chrome trace_event JSON
  /// ({"traceEvents": [...]}; task spans as complete "X" events with
  /// queue-wait and record counts in args, phases as nested "B"/"E").
  std::string ChromeTraceJson() const;

  /// Writes ChromeTraceJson() to \p path.
  Status WriteChromeTrace(const std::string& path) const;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_job_{1};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TaskSpan> spans_;
  std::vector<PhaseEvent> phases_;
};

/// The process-wide tracer used by Context unless one is injected;
/// `stark_shell --trace=<file>` and STARK_TRACE enable this one.
TaskTracer& DefaultTracer();

/// The span of the partition-task currently executing on this thread, or
/// null outside a traced task. Lets operator code annotate record counts
/// without threading the span through every signature.
TaskSpan* CurrentTaskSpan();

/// RAII guard installing \p span as the thread's current task span.
class CurrentTaskSpanScope {
 public:
  explicit CurrentTaskSpanScope(TaskSpan* span);
  ~CurrentTaskSpanScope();
  STARK_DISALLOW_COPY_AND_ASSIGN(CurrentTaskSpanScope);

 private:
  TaskSpan* previous_;
};

/// RAII phase span: emits a begin event on construction and the matching
/// end event on destruction. Nests naturally; no-op while the tracer is
/// disabled at construction time.
class ScopedSpan {
 public:
  ScopedSpan(TaskTracer& tracer, std::string name);
  ~ScopedSpan();
  STARK_DISALLOW_COPY_AND_ASSIGN(ScopedSpan);

 private:
  TaskTracer* tracer_;  // null when tracing was disabled at construction
  std::string name_;
};

}  // namespace obs
}  // namespace stark

#endif  // STARK_OBS_TRACE_H_
