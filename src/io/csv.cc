#include "io/csv.h"

#include <charconv>

#include "common/serde.h"
#include "geometry/wkt.h"

namespace stark {

namespace {

/// Splits one CSV line into fields, honoring double-quoted fields with
/// doubled-quote escapes. \p line must not contain the trailing newline.
Result<std::vector<std::string>> SplitCsvLine(const std::string& line,
                                              size_t line_no) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (in_quotes) {
    return Status::ParseError("csv: unterminated quote on line " +
                              std::to_string(line_no));
  }
  fields.push_back(std::move(cur));
  return fields;
}

Result<int64_t> ParseInt(const std::string& s, size_t line_no) {
  int64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::ParseError("csv: bad integer '" + s + "' on line " +
                              std::to_string(line_no));
  }
  return v;
}

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}

void AppendField(std::string* out, const std::string& s) {
  if (!NeedsQuoting(s)) {
    out->append(s);
    return;
  }
  out->push_back('"');
  for (char c : s) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

Result<std::vector<EventRecord>> ParseEventsCsv(const std::string& text) {
  std::vector<EventRecord> records;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    ++line_no;
    std::string line = text.substr(pos, end - pos);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    pos = end + 1;
    if (line.empty()) continue;
    STARK_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                           SplitCsvLine(line, line_no));
    if (fields.size() != 4) {
      return Status::ParseError(
          "csv: expected 4 fields (id, category, time, wkt) on line " +
          std::to_string(line_no) + ", got " +
          std::to_string(fields.size()));
    }
    EventRecord rec;
    STARK_ASSIGN_OR_RETURN(rec.id, ParseInt(fields[0], line_no));
    rec.category = std::move(fields[1]);
    STARK_ASSIGN_OR_RETURN(rec.time, ParseInt(fields[2], line_no));
    rec.wkt = std::move(fields[3]);
    records.push_back(std::move(rec));
  }
  return records;
}

Result<std::vector<EventRecord>> ReadEventsCsv(const std::string& path) {
  STARK_ASSIGN_OR_RETURN(std::vector<char> buf, ReadFileBytes(path));
  return ParseEventsCsv(std::string(buf.begin(), buf.end()));
}

std::string FormatEventsCsv(const std::vector<EventRecord>& records) {
  std::string out;
  for (const EventRecord& rec : records) {
    out.append(std::to_string(rec.id));
    out.push_back(',');
    AppendField(&out, rec.category);
    out.push_back(',');
    out.append(std::to_string(rec.time));
    out.push_back(',');
    AppendField(&out, rec.wkt);
    out.push_back('\n');
  }
  return out;
}

Status WriteEventsCsv(const std::string& path,
                      const std::vector<EventRecord>& records) {
  const std::string text = FormatEventsCsv(records);
  return WriteFileBytes(path, std::vector<char>(text.begin(), text.end()));
}

Result<std::vector<std::pair<STObject, std::pair<int64_t, std::string>>>>
EventsToPairs(const std::vector<EventRecord>& records) {
  std::vector<std::pair<STObject, std::pair<int64_t, std::string>>> out;
  out.reserve(records.size());
  for (const EventRecord& rec : records) {
    STARK_ASSIGN_OR_RETURN(STObject obj,
                           STObject::FromWkt(rec.wkt, rec.time));
    out.emplace_back(std::move(obj),
                     std::make_pair(rec.id, rec.category));
  }
  return out;
}

Result<ColumnarBatch> EventsToColumnarBatch(
    const std::vector<EventRecord>& records) {
  ColumnarBatch batch;
  batch.Reserve(records.size());
  for (const EventRecord& rec : records) {
    double x = 0.0;
    double y = 0.0;
    if (ParsePointWkt(rec.wkt, &x, &y)) {
      batch.AppendPoint(x, y, /*has_time=*/true, rec.time, rec.time);
    } else {
      STARK_ASSIGN_OR_RETURN(STObject obj,
                             STObject::FromWkt(rec.wkt, rec.time));
      batch.Append(obj);
    }
  }
  return batch;
}

Result<ColumnarEvents> ReadEventsCsvColumnar(const std::string& path) {
  STARK_ASSIGN_OR_RETURN(std::vector<EventRecord> records,
                         ReadEventsCsv(path));
  ColumnarEvents out;
  STARK_ASSIGN_OR_RETURN(out.batch, EventsToColumnarBatch(records));
  out.ids.reserve(records.size());
  out.categories.reserve(records.size());
  for (EventRecord& rec : records) {
    out.ids.push_back(rec.id);
    out.categories.push_back(std::move(rec.category));
  }
  return out;
}

}  // namespace stark
