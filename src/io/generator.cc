#include "io/generator.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace stark {

namespace {

/// Draws cluster centers and returns one skewed coordinate per call.
class SkewedSampler {
 public:
  SkewedSampler(Rng* rng, const Envelope& universe, size_t clusters,
                double cluster_spread, double noise_fraction)
      : rng_(rng), universe_(universe), noise_fraction_(noise_fraction),
        stddev_(cluster_spread * universe.Width()) {
    centers_.reserve(clusters);
    for (size_t i = 0; i < clusters; ++i) {
      centers_.push_back({rng_->Uniform(universe.min_x(), universe.max_x()),
                          rng_->Uniform(universe.min_y(), universe.max_y())});
    }
  }

  Coordinate Next() {
    if (centers_.empty() || rng_->Bernoulli(noise_fraction_)) {
      return {rng_->Uniform(universe_.min_x(), universe_.max_x()),
              rng_->Uniform(universe_.min_y(), universe_.max_y())};
    }
    const size_t c = static_cast<size_t>(
        rng_->UniformInt(0, static_cast<int64_t>(centers_.size()) - 1));
    Coordinate p{rng_->Normal(centers_[c].x, stddev_),
                 rng_->Normal(centers_[c].y, stddev_)};
    p.x = std::clamp(p.x, universe_.min_x(), universe_.max_x());
    p.y = std::clamp(p.y, universe_.min_y(), universe_.max_y());
    return p;
  }

 private:
  Rng* rng_;
  Envelope universe_;
  double noise_fraction_;
  double stddev_;
  std::vector<Coordinate> centers_;
};

}  // namespace

std::vector<STObject> GenerateSkewedPoints(
    const SkewedPointsOptions& options) {
  Rng rng(options.seed);
  SkewedSampler sampler(&rng, options.universe, options.clusters,
                        options.cluster_spread, options.noise_fraction);
  std::vector<STObject> out;
  out.reserve(options.count);
  for (size_t i = 0; i < options.count; ++i) {
    const Coordinate c = sampler.Next();
    out.emplace_back(Geometry::MakePoint(c.x, c.y));
  }
  return out;
}

std::vector<STObject> GenerateUniformPoints(size_t count, uint64_t seed,
                                            const Envelope& universe) {
  Rng rng(seed);
  std::vector<STObject> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.emplace_back(
        Geometry::MakePoint(rng.Uniform(universe.min_x(), universe.max_x()),
                            rng.Uniform(universe.min_y(), universe.max_y())));
  }
  return out;
}

std::vector<STObject> GenerateRandomPolygons(const PolygonsOptions& options) {
  Rng rng(options.seed);
  std::vector<STObject> out;
  out.reserve(options.count);
  constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
  for (size_t i = 0; i < options.count; ++i) {
    const Coordinate center{
        rng.Uniform(options.universe.min_x(), options.universe.max_x()),
        rng.Uniform(options.universe.min_y(), options.universe.max_y())};
    const double radius =
        rng.Uniform(options.min_radius, options.max_radius);
    const size_t vertices = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(options.min_vertices),
        static_cast<int64_t>(options.max_vertices)));
    // Sorted random angles around the center yield a simple (star-convex)
    // polygon without self-intersections.
    std::vector<double> angles(vertices);
    for (auto& a : angles) a = rng.Uniform(0.0, kTwoPi);
    std::sort(angles.begin(), angles.end());
    Ring shell;
    shell.reserve(vertices + 1);
    for (double a : angles) {
      const double r = radius * rng.Uniform(0.6, 1.0);
      shell.push_back(
          {center.x + r * std::cos(a), center.y + r * std::sin(a)});
    }
    auto poly = Geometry::MakePolygon(std::move(shell));
    if (poly.ok()) {
      out.emplace_back(std::move(poly).ValueOrDie());
    } else {
      // Degenerate draw (collinear vertices); retry with a triangle.
      Ring tri{{center.x - radius, center.y - radius},
               {center.x + radius, center.y - radius},
               {center.x, center.y + radius}};
      out.emplace_back(Geometry::MakePolygon(std::move(tri)).ValueOrDie());
    }
  }
  return out;
}

std::vector<EventRecord> GenerateEvents(const EventsOptions& options) {
  Rng rng(options.seed);
  SkewedSampler sampler(&rng, options.universe, options.clusters,
                        options.cluster_spread, options.noise_fraction);
  std::vector<EventRecord> out;
  out.reserve(options.count);
  for (size_t i = 0; i < options.count; ++i) {
    const Coordinate c = sampler.Next();
    EventRecord rec;
    rec.id = static_cast<int64_t>(i);
    rec.category = options.categories.empty()
                       ? "event"
                       : options.categories[static_cast<size_t>(rng.UniformInt(
                             0,
                             static_cast<int64_t>(options.categories.size()) -
                                 1))];
    rec.time = rng.UniformInt(options.time_min, options.time_max);
    rec.wkt = Geometry::MakePoint(c.x, c.y).ToWkt();
    out.push_back(std::move(rec));
  }
  return out;
}

}  // namespace stark
