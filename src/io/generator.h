/// \file generator.h
/// Synthetic spatio-temporal workload generators. Real event data sets
/// (Wikipedia events etc.) are not redistributable; these generators
/// reproduce their relevant statistical properties — above all the skew the
/// paper motivates ("events only occur on land, but not on sea") that makes
/// the fixed grid unbalanced and the BSP partitioner shine.
#ifndef STARK_IO_GENERATOR_H_
#define STARK_IO_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/stobject.h"
#include "io/csv.h"

namespace stark {

/// Parameters of the clustered ("land-mass") point generator.
struct SkewedPointsOptions {
  size_t count = 10'000;
  uint64_t seed = 42;
  Envelope universe = Envelope(-180.0, -90.0, 180.0, 90.0);
  /// Number of dense clusters (population centers).
  size_t clusters = 12;
  /// Standard deviation of each cluster, as a fraction of universe width.
  double cluster_spread = 0.02;
  /// Fraction of points drawn uniformly over the universe instead.
  double noise_fraction = 0.05;
};

/// Skewed point cloud: a mixture of Gaussian clusters plus uniform noise.
std::vector<STObject> GenerateSkewedPoints(const SkewedPointsOptions& options);

/// Uniform point cloud over \p universe.
std::vector<STObject> GenerateUniformPoints(size_t count, uint64_t seed,
                                            const Envelope& universe);

/// Parameters of the polygon generator.
struct PolygonsOptions {
  size_t count = 1'000;
  uint64_t seed = 43;
  Envelope universe = Envelope(-180.0, -90.0, 180.0, 90.0);
  /// Radius range of the generated convex polygons.
  double min_radius = 0.1;
  double max_radius = 2.0;
  /// Vertex count range.
  size_t min_vertices = 4;
  size_t max_vertices = 12;
};

/// Random convex polygons (region shapes) scattered over the universe.
std::vector<STObject> GenerateRandomPolygons(const PolygonsOptions& options);

/// Parameters of the full event-record generator.
struct EventsOptions {
  size_t count = 10'000;
  uint64_t seed = 44;
  Envelope universe = Envelope(-180.0, -90.0, 180.0, 90.0);
  size_t clusters = 12;
  double cluster_spread = 0.02;
  double noise_fraction = 0.05;
  int64_t time_min = 0;
  int64_t time_max = 1'000'000;
  std::vector<std::string> categories = {"politics", "sports", "culture",
                                         "disaster", "science"};
};

/// Full event records with the paper's schema (id, category, time, wkt),
/// spatially skewed and timestamped; suitable for WriteEventsCsv.
std::vector<EventRecord> GenerateEvents(const EventsOptions& options);

}  // namespace stark

#endif  // STARK_IO_GENERATOR_H_
