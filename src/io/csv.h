/// \file csv.h
/// Reader/writer for event files with the paper's schema
/// (id: Int, category: String, time: Long, wkt: String) — the raw input of
/// the example pipeline in §2.3. WKT fields are quoted because they contain
/// commas.
#ifndef STARK_IO_CSV_H_
#define STARK_IO_CSV_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/columnar.h"
#include "core/stobject.h"

namespace stark {

/// One raw input row, before spatial parsing.
struct EventRecord {
  int64_t id = 0;
  std::string category;
  int64_t time = 0;
  std::string wkt;

  bool operator==(const EventRecord& o) const {
    return id == o.id && category == o.category && time == o.time &&
           wkt == o.wkt;
  }
};

/// Parses event CSV text (RFC-4180-style quoting; no header row).
Result<std::vector<EventRecord>> ParseEventsCsv(const std::string& text);

/// Reads and parses an event CSV file.
Result<std::vector<EventRecord>> ReadEventsCsv(const std::string& path);

/// Serializes records to CSV text with quoting where needed.
std::string FormatEventsCsv(const std::vector<EventRecord>& records);

/// Writes records to \p path.
Status WriteEventsCsv(const std::string& path,
                      const std::vector<EventRecord>& records);

/// The pre-processing map of the paper's example: each record becomes
/// (STObject(wkt, time), (id, category)).
Result<std::vector<std::pair<STObject, std::pair<int64_t, std::string>>>>
EventsToPairs(const std::vector<EventRecord>& records);

/// Direct columnar ingest of the event schema: rows whose WKT is a plain
/// `POINT (x y)` append straight into the batch's coordinate slabs — no
/// Geometry or STObject is materialized on the way in — while any other
/// geometry goes through the generic WKT parser and the batch's object
/// appender. Row i corresponds to records[i]; batch.ToObjects() equals the
/// STObjects EventsToPairs would produce, bit for bit.
Result<ColumnarBatch> EventsToColumnarBatch(
    const std::vector<EventRecord>& records);

/// An event file ingested columnar: the spatial/temporal batch plus the
/// payload columns, row-aligned (ids[i] and categories[i] belong to batch
/// row i).
struct ColumnarEvents {
  ColumnarBatch batch;
  std::vector<int64_t> ids;
  std::vector<std::string> categories;
};

/// Reads and parses an event CSV straight into columnar form.
Result<ColumnarEvents> ReadEventsCsvColumnar(const std::string& path);

}  // namespace stark

#endif  // STARK_IO_CSV_H_
