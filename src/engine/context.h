/// \file context.h
/// Execution context of the sparklet engine — the stand-in for a
/// SparkContext. Worker threads play the role of cluster executors: every
/// partition of an RDD is computed as one task on the pool (see DESIGN.md
/// for why this substitution preserves the paper's behaviour).
#ifndef STARK_ENGINE_CONTEXT_H_
#define STARK_ENGINE_CONTEXT_H_

#include <memory>
#include <thread>

#include "common/thread_pool.h"

namespace stark {

/// \brief Owns the worker pool and the default parallelism of a program.
class Context {
 public:
  /// \p parallelism 0 means "number of hardware threads".
  explicit Context(size_t parallelism = 0)
      : parallelism_(parallelism != 0 ? parallelism
                                      : DefaultHardwareParallelism()),
        pool_(std::make_unique<ThreadPool>(parallelism_)) {}

  STARK_DISALLOW_COPY_AND_ASSIGN(Context);

  ThreadPool& pool() { return *pool_; }

  /// Default number of partitions for new RDDs, like Spark's
  /// `spark.default.parallelism`.
  size_t default_parallelism() const { return parallelism_; }

 private:
  static size_t DefaultHardwareParallelism() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 2 : hw;
  }

  size_t parallelism_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace stark

#endif  // STARK_ENGINE_CONTEXT_H_
