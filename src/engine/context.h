/// \file context.h
/// Execution context of the sparklet engine — the stand-in for a
/// SparkContext. Worker threads play the role of cluster executors: every
/// partition of an RDD is computed as one task on the pool (see DESIGN.md
/// for why this substitution preserves the paper's behaviour).
#ifndef STARK_ENGINE_CONTEXT_H_
#define STARK_ENGINE_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/job_control.h"
#include "fault/failpoint.h"
#include "fault/retry.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace stark {

/// \brief Owns the worker pool, the default parallelism and the task retry
/// policy of a program.
///
/// Also the engine's resilience and observability seam: every action
/// dispatches its partition tasks through RunTasks()/TryRunTasks(), which
/// (1) re-runs a failed task against its lineage according to the
/// RetryPolicy — RDDImpl::Compute is a pure function of the lineage graph,
/// so re-invoking the task body *is* Spark's recompute-from-lineage
/// recovery; (2) converts anything a task throws into a Status at the task
/// boundary, so worker exceptions never unwind through the thread pool;
/// (3) records one TaskSpan per *attempt* while tracing is enabled (plain
/// dispatch plus one relaxed atomic load otherwise); (4) hosts the
/// `engine.task.run` and `engine.worker.die` fault-injection sites (see
/// docs/FAULT_INJECTION.md); and (5) runs each job under a JobControl —
/// deadline + cooperative cancellation + speculative re-execution of
/// stragglers (see job_control.h).
class Context {
 public:
  /// \p parallelism 0 means "number of hardware threads". \p tracer null
  /// means the process-wide obs::DefaultTracer(). The retry policy is
  /// initialized from the environment (STARK_TASK_RETRIES etc.; defaults:
  /// 3 attempts, no backoff), as are the default job deadline
  /// (STARK_JOB_DEADLINE_MS; 0 = none) and the speculation policy
  /// (STARK_SPECULATION etc.; off by default).
  explicit Context(size_t parallelism = 0, obs::TaskTracer* tracer = nullptr)
      : parallelism_(parallelism != 0 ? parallelism
                                      : DefaultHardwareParallelism()),
        pool_(std::make_unique<ThreadPool>(parallelism_)),
        tracer_(tracer != nullptr ? tracer : &obs::DefaultTracer()),
        retry_policy_(fault::RetryPolicy::FromEnv()),
        job_deadline_ms_(DefaultJobDeadlineMs()),
        speculation_policy_(SpeculationPolicy::FromEnv()) {}

  STARK_DISALLOW_COPY_AND_ASSIGN(Context);

  ThreadPool& pool() { return *pool_; }

  obs::TaskTracer& tracer() const { return *tracer_; }

  /// Default number of partitions for new RDDs, like Spark's
  /// `spark.default.parallelism`.
  size_t default_parallelism() const { return parallelism_; }

  const fault::RetryPolicy& retry_policy() const { return retry_policy_; }
  void set_retry_policy(const fault::RetryPolicy& policy) {
    retry_policy_ = policy;
  }

  /// Deadline applied to every job launched by this context, in
  /// milliseconds; 0 disables. A job past its deadline cancels
  /// cooperatively and returns Status::DeadlineExceeded.
  uint64_t job_deadline_ms() const { return job_deadline_ms_; }
  void set_job_deadline_ms(uint64_t ms) { job_deadline_ms_ = ms; }

  const SpeculationPolicy& speculation_policy() const {
    return speculation_policy_;
  }
  void set_speculation_policy(const SpeculationPolicy& policy) {
    speculation_policy_ = policy;
  }

  /// Ctrl-C-style cancellation: jobs poll the token at task checkpoints
  /// and return Status::Cancelled once it is signalled. May be null.
  const std::shared_ptr<CancelToken>& cancel_token() const {
    return cancel_token_;
  }
  void set_cancel_token(std::shared_ptr<CancelToken> token) {
    cancel_token_ = std::move(token);
  }

  /// Runs \p fn(p) for p in [0, n) on the pool as one job of n
  /// partition-tasks labelled \p stage, retrying failed tasks per the
  /// retry policy. Returns the first permanent task failure as a Status
  /// (never throws through the pool); once a task fails permanently the
  /// job is cancelled and not-yet-started tasks are skipped (counted by
  /// `engine.task.cancelled`).
  ///
  /// Each job runs under a JobControl: the deadline and cancel token are
  /// polled by the driver and at task checkpoints; with speculation
  /// enabled, stragglers get a second copy and the first finisher commits
  /// via an atomic per-task claim. A worker killed by `engine.worker.die`
  /// takes its task copy back to the queue, where a surviving worker
  /// re-executes it.
  ///
  /// This is also the begin/end hook of the tracing layer: with tracing
  /// enabled each task attempt gets a span (job id, stage, partition,
  /// worker, attempt number, speculative flag, queue-wait vs compute time,
  /// failure message) and operator code can annotate record counts via
  /// obs::CurrentTaskSpan().
  template <typename Fn>
  Status TryRunTasks(const char* stage, size_t n, const Fn& fn) {
    static obs::Counter* const jobs =
        obs::DefaultMetrics().GetCounter("engine.jobs");
    static obs::Counter* const tasks =
        obs::DefaultMetrics().GetCounter("engine.tasks");
    static obs::Counter* const jobs_failed =
        obs::DefaultMetrics().GetCounter("engine.jobs.failed");
    static obs::Counter* const speculated =
        obs::DefaultMetrics().GetCounter("engine.task.speculated");
    static std::atomic<uint64_t> generation{0};
    jobs->Increment();
    tasks->Add(n);
    if (n == 0) return Status::OK();
    const fault::RetryPolicy policy = retry_policy_;  // stable for the job
    const SpeculationPolicy spec = speculation_policy_;
    obs::TaskTracer* const tracer = tracer_;
    const bool traced = tracer->enabled();
    const uint64_t job = traced ? tracer->BeginJob() : 0;
    // Every task is enqueued up front, so the job start is the enqueue
    // time of each task; queue wait = task start - job start.
    const uint64_t queued = traced ? tracer->NowNanos() : 0;

    const auto control = std::make_shared<JobControl>(
        n, job_deadline_ms_, cancel_token_,
        generation.fetch_add(1, std::memory_order_relaxed) + 1);

    if (n == 1) {
      // Single-task fast path: run inline on the driver, no pool dispatch.
      RunTaskCopy<Fn>(control, fn, 0, 1, policy, stage, traced, job, queued,
                      tracer);
      return ResolveJobStatus(*control, jobs_failed);
    }

    // fn is shared by all copies of all tasks, exactly as when the lambda
    // lived on the driver's stack — but on the heap, so a queued copy that
    // outlives this frame (possible only after cancellation, when it can
    // no longer win a claim and run user code) touches valid memory.
    const auto shared_fn = std::make_shared<Fn>(fn);
    for (size_t p = 0; p < n; ++p) {
      pool_->SubmitDetached(
          [control, shared_fn, p, policy, stage, traced, job, queued,
           tracer] {
            RunTaskCopy<Fn>(control, *shared_fn, p, 1, policy, stage, traced,
                            job, queued, tracer);
          });
    }

    // Driver-side monitor: promote deadline/token to a latched cancel so
    // workers skip queued tasks, and launch speculative copies for
    // stragglers. A cancelled job settles as soon as no claimed copy is
    // still inside user code — it does not wait out unclaimed sleepers.
    constexpr auto kTick = std::chrono::milliseconds(2);
    while (!control->WaitSettledFor(kTick)) {
      control->ShouldStop();
      if (spec.enabled) {
        for (size_t p : control->SpeculationCandidates(spec)) {
          speculated->Increment();
          pool_->SubmitDetached(
              [control, shared_fn, p, policy, stage, traced, job, queued,
               tracer] {
                RunTaskCopy<Fn>(control, *shared_fn, p, 2, policy, stage,
                                traced, job, queued, tracer);
              });
        }
      }
    }
    return ResolveJobStatus(*control, jobs_failed);
  }

  /// Throwing wrapper over TryRunTasks for value-returning actions: a
  /// permanently failed job surfaces as a StatusError on the calling
  /// (driver) thread.
  template <typename Fn>
  void RunTasks(const char* stage, size_t n, const Fn& fn) {
    const Status status = TryRunTasks(stage, n, fn);
    if (!status.ok()) throw StatusError(status);
  }

  /// Copies the pool's dispatch statistics into the default metrics
  /// registry (engine.pool.* gauges) so a metrics dump includes them.
  void PublishPoolStats() const {
    const ThreadPool::Stats stats = pool_->GetStats();
    obs::MetricsRegistry& m = obs::DefaultMetrics();
    m.GetGauge("engine.pool.threads")
        ->Set(static_cast<int64_t>(pool_->num_threads()));
    m.GetGauge("engine.pool.tasks_submitted")
        ->Set(static_cast<int64_t>(stats.tasks_submitted));
    m.GetGauge("engine.pool.tasks_executed")
        ->Set(static_cast<int64_t>(stats.tasks_executed));
    m.GetGauge("engine.pool.workers_died")
        ->Set(static_cast<int64_t>(stats.workers_died));
    m.GetGauge("engine.pool.workers_restarted")
        ->Set(static_cast<int64_t>(stats.workers_restarted));
  }

 private:
  /// One execution of one copy of one task: the engine's task boundary.
  /// `copy` is 1 for the original and 2 for a speculative duplicate. The
  /// flow is: skip if the job is done/cancelled; pass the failpoint sites
  /// (a WorkerKilledError unwinds into the pool, which requeues this exact
  /// copy); *claim* the task — only the claim winner ever runs \p fn, which
  /// is what makes speculative duplicates safe against task bodies that
  /// write shared per-partition output slots; run \p fn under a TaskContext
  /// (cooperative checkpoints) and a TaskSpan; commit exactly once.
  template <typename Fn>
  static void RunTaskCopy(const std::shared_ptr<JobControl>& control,
                          const Fn& fn, size_t p, uint32_t copy,
                          const fault::RetryPolicy& policy, const char* stage,
                          bool traced, uint64_t job, uint64_t queued,
                          obs::TaskTracer* tracer) {
    static obs::Counter* const retries =
        obs::DefaultMetrics().GetCounter("engine.task.retries");
    static obs::Counter* const failures =
        obs::DefaultMetrics().GetCounter("engine.task.failures");
    static obs::Counter* const cancelled_tasks =
        obs::DefaultMetrics().GetCounter("engine.task.cancelled");
    static obs::Counter* const speculation_wins =
        obs::DefaultMetrics().GetCounter("engine.task.speculation_wins");
    static fault::FailPoint* const task_fp =
        fault::DefaultFailPoints().Get("engine.task.run");
    static fault::FailPoint* const die_fp =
        fault::DefaultFailPoints().Get("engine.worker.die");

    if (control->TaskDone(p)) return;  // a copy arrived after completion
    if (control->ShouldStop()) {
      // Job is cancelled or past its deadline: skip without starting.
      if (control->CompleteTask(p, 0, false)) cancelled_tasks->Increment();
      // A copy that was killed mid-claim and requeued still holds the
      // claim bracket; close it so the driver can settle.
      if (control->OwnsTask(p, copy)) control->EndClaimedRun();
      return;
    }
    control->RecordTaskStart(p);

    const size_t max_attempts = policy.EffectiveAttempts();
    bool claimed = false;
    for (size_t attempt = 1; attempt <= max_attempts; ++attempt) {
      obs::TaskSpan span;
      if (traced) {
        span.job_id = job;
        span.stage = stage;
        span.partition = p;
        span.worker = ThreadPool::CurrentWorkerIndex();
        span.queued_ns = queued;
        span.attempt = attempt;
        span.speculative = copy > 1;
        span.start_ns = tracer->NowNanos();
      }
      Status task_status;
      uint64_t run_started_ns = 0;
      try {
        // Both sites fire *before* the claim on the first attempt, so a
        // delay-injected straggler sleeps unclaimed and a speculative copy
        // can win the task meanwhile.
        fault::MaybeThrow(task_fp);
        fault::MaybeKillWorker(die_fp);
        if (!claimed && !control->ClaimTask(p, copy)) {
          // Another copy owns this task: cooperative loser exit. The
          // owner commits; this copy must not touch fn's outputs.
          return;
        }
        claimed = true;
        TaskContext task_ctx(control.get(), p, copy > 1);
        CurrentTaskContextScope task_scope(&task_ctx);
        // Post-claim stop check (ordered against Cancel by the seq_cst
        // claim CAS): never start user code on a dead job.
        task_ctx.ThrowIfCancelled();
        run_started_ns = SteadyNowNs();
        if (traced) {
          obs::CurrentTaskSpanScope scope(&span);
          fn(p);
        } else {
          fn(p);
        }
      } catch (const StatusError& e) {
        task_status = e.status();
      } catch (const WorkerKilledError&) {
        throw;  // executor loss: unwind into the pool's worker loop
      } catch (const std::exception& e) {
        task_status = Status::UnknownError(e.what());
      } catch (...) {
        task_status = Status::UnknownError("non-std exception");
      }
      if (traced) {
        span.end_ns = tracer->NowNanos();
        span.ok = task_status.ok();
        span.error = task_status.message();
        tracer->Record(std::move(span));
      }
      if (task_status.ok()) {
        if (control->CompleteTask(p, SteadyNowNs() - run_started_ns, true) &&
            copy > 1) {
          speculation_wins->Increment();
        }
        control->EndClaimedRun();
        return;
      }
      failures->Increment();
      if (control->Cancelled()) {
        // The job is being torn down (deadline, cancel, or fail-fast
        // abort): a failing or cooperatively-stopped attempt is not
        // retried.
        if (control->CompleteTask(p, 0, false)) cancelled_tasks->Increment();
        if (claimed) control->EndClaimedRun();
        return;
      }
      if (attempt >= max_attempts) {
        // Permanent failure: record it and cancel the rest of the job,
        // like Spark cancelling a stage once a task exhausts
        // spark.task.maxFailures.
        control->FailJob(Status(
            task_status.code(),
            std::string(stage) + " partition " + std::to_string(p) +
                " failed after " + std::to_string(attempt) +
                " attempt(s): " + task_status.message()));
        control->CompleteTask(p, 0, false);
        if (claimed) control->EndClaimedRun();
        return;
      }
      retries->Increment();
      // No backoff after the final attempt (handled above), and none once
      // the job is already cancelled.
      const uint64_t backoff_ms = policy.BackoffMs(attempt);
      if (backoff_ms > 0 && !control->Cancelled()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      }
    }
  }

  static Status ResolveJobStatus(const JobControl& control,
                                 obs::Counter* jobs_failed) {
    Status result = control.first_failure();
    if (result.ok() && control.Cancelled()) result = control.cancel_status();
    if (!result.ok()) jobs_failed->Increment();
    return result;
  }

  static uint64_t SteadyNowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  static uint64_t DefaultJobDeadlineMs() {
    const char* raw = std::getenv("STARK_JOB_DEADLINE_MS");
    if (raw == nullptr || *raw == '\0') return 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(raw, &end, 10);
    return end == raw ? 0 : static_cast<uint64_t>(v);
  }

  static size_t DefaultHardwareParallelism() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 2 : hw;
  }

  size_t parallelism_;
  std::unique_ptr<ThreadPool> pool_;
  obs::TaskTracer* tracer_;
  fault::RetryPolicy retry_policy_;
  uint64_t job_deadline_ms_;
  SpeculationPolicy speculation_policy_;
  std::shared_ptr<CancelToken> cancel_token_;
};

}  // namespace stark

#endif  // STARK_ENGINE_CONTEXT_H_
