/// \file context.h
/// Execution context of the sparklet engine — the stand-in for a
/// SparkContext. Worker threads play the role of cluster executors: every
/// partition of an RDD is computed as one task on the pool (see DESIGN.md
/// for why this substitution preserves the paper's behaviour).
#ifndef STARK_ENGINE_CONTEXT_H_
#define STARK_ENGINE_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/job_control.h"
#include "fault/failpoint.h"
#include "fault/retry.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace stark {

/// \brief Owns the worker pool, the default parallelism and the task retry
/// policy of a program.
///
/// Also the engine's resilience and observability seam: every action
/// dispatches its partition tasks through RunTasks()/TryRunTasks(), which
/// (1) re-runs a failed task against its lineage according to the
/// RetryPolicy — RDDImpl::Compute is a pure function of the lineage graph,
/// so re-invoking the task body *is* Spark's recompute-from-lineage
/// recovery; (2) converts anything a task throws into a Status at the task
/// boundary, so worker exceptions never unwind through the thread pool;
/// (3) records one TaskSpan per *attempt* while tracing is enabled (plain
/// dispatch plus one relaxed atomic load otherwise); (4) hosts the
/// `engine.task.run` and `engine.worker.die` fault-injection sites (see
/// docs/FAULT_INJECTION.md); and (5) runs each job under a JobControl —
/// deadline + cooperative cancellation + speculative re-execution of
/// stragglers (see job_control.h).
class Context {
 public:
  /// \p parallelism 0 means "number of hardware threads". \p tracer null
  /// means the process-wide obs::DefaultTracer(). The retry policy is
  /// initialized from the environment (STARK_TASK_RETRIES etc.; defaults:
  /// 3 attempts, no backoff), as are the default job deadline
  /// (STARK_JOB_DEADLINE_MS; 0 = none) and the speculation policy
  /// (STARK_SPECULATION etc.; off by default).
  explicit Context(size_t parallelism = 0, obs::TaskTracer* tracer = nullptr)
      : parallelism_(parallelism != 0 ? parallelism
                                      : DefaultHardwareParallelism()),
        pool_(std::make_shared<ThreadPool>(parallelism_)),
        tracer_(tracer != nullptr ? tracer : &obs::DefaultTracer()),
        retry_policy_(fault::RetryPolicy::FromEnv()),
        job_deadline_ms_(DefaultJobDeadlineMs()),
        speculation_policy_(SpeculationPolicy::FromEnv()) {}

  /// Shares an existing worker pool instead of owning one — the serving
  /// layer gives every client session its own Context (so SET job.* and
  /// cancellation stay session-scoped) while all sessions execute on the
  /// server's single executor pool.
  explicit Context(std::shared_ptr<ThreadPool> pool,
                   obs::TaskTracer* tracer = nullptr)
      : parallelism_(pool->num_threads()),
        pool_(std::move(pool)),
        tracer_(tracer != nullptr ? tracer : &obs::DefaultTracer()),
        retry_policy_(fault::RetryPolicy::FromEnv()),
        job_deadline_ms_(DefaultJobDeadlineMs()),
        speculation_policy_(SpeculationPolicy::FromEnv()) {}

  STARK_DISALLOW_COPY_AND_ASSIGN(Context);

  ThreadPool& pool() { return *pool_; }

  /// The pool handle, for sharing with sibling Contexts (see the
  /// pool-sharing constructor above).
  const std::shared_ptr<ThreadPool>& shared_pool() const { return pool_; }

  obs::TaskTracer& tracer() const { return *tracer_; }

  /// Default number of partitions for new RDDs, like Spark's
  /// `spark.default.parallelism`.
  size_t default_parallelism() const { return parallelism_; }

  const fault::RetryPolicy& retry_policy() const { return retry_policy_; }
  void set_retry_policy(const fault::RetryPolicy& policy) {
    retry_policy_ = policy;
  }

  /// Deadline applied to every job launched by this context, in
  /// milliseconds; 0 disables. A job past its deadline cancels
  /// cooperatively and returns Status::DeadlineExceeded.
  uint64_t job_deadline_ms() const { return job_deadline_ms_; }
  void set_job_deadline_ms(uint64_t ms) { job_deadline_ms_ = ms; }

  const SpeculationPolicy& speculation_policy() const {
    return speculation_policy_;
  }
  void set_speculation_policy(const SpeculationPolicy& policy) {
    speculation_policy_ = policy;
  }

  /// Ctrl-C-style cancellation: jobs poll the token at task checkpoints
  /// and return Status::Cancelled once it is signalled. May be null.
  const std::shared_ptr<CancelToken>& cancel_token() const {
    return cancel_token_;
  }
  void set_cancel_token(std::shared_ptr<CancelToken> token) {
    cancel_token_ = std::move(token);
  }

  /// \brief What an admission hook learns about a job before it launches.
  struct JobAdmission {
    const char* stage = "";
    size_t num_tasks = 0;
    /// The context's job priority (lower = more important); the serving
    /// layer maps its query classes onto this.
    int priority = 0;
  };

  /// A non-OK return vetoes the job before any task is enqueued: TryRunTasks
  /// returns that status (typically Status::ResourceExhausted under
  /// overload, or Cancelled while a server drains) and increments
  /// `engine.jobs.rejected`. The hook runs on the driver thread of every
  /// job; keep it cheap and thread-safe when sessions share a hook.
  using AdmissionHook = std::function<Status(const JobAdmission&)>;
  void set_admission_hook(AdmissionHook hook) {
    admission_hook_ = std::move(hook);
  }

  /// Scheduling class recorded into every JobControl this context launches
  /// (0 = most important). The engine only carries it; admission hooks and
  /// the serving layer's degradation ladder act on it.
  int job_priority() const { return job_priority_; }
  void set_job_priority(int priority) { job_priority_ = priority; }

  /// Runs \p fn(p) for p in [0, n) on the pool as one job of n
  /// partition-tasks labelled \p stage, retrying failed tasks per the
  /// retry policy. Returns the first permanent task failure as a Status
  /// (never throws through the pool); once a task fails permanently the
  /// job is cancelled and not-yet-started tasks are skipped (counted by
  /// `engine.task.cancelled`).
  ///
  /// Each job runs under a JobControl: the deadline and cancel token are
  /// polled by the driver and at task checkpoints; with speculation
  /// enabled, stragglers get a second copy and the first finisher commits
  /// via an atomic per-task claim. A worker killed by `engine.worker.die`
  /// takes its task copy back to the queue, where a surviving worker
  /// re-executes it.
  ///
  /// This is also the begin/end hook of the tracing layer: with tracing
  /// enabled each task attempt gets a span (job id, stage, partition,
  /// worker, attempt number, speculative flag, queue-wait vs compute time,
  /// failure message) and operator code can annotate record counts via
  /// obs::CurrentTaskSpan().
  template <typename Fn>
  Status TryRunTasks(const char* stage, size_t n, const Fn& fn) {
    static obs::Counter* const jobs =
        obs::DefaultMetrics().GetCounter("engine.jobs");
    static obs::Counter* const tasks =
        obs::DefaultMetrics().GetCounter("engine.tasks");
    static obs::Counter* const jobs_failed =
        obs::DefaultMetrics().GetCounter("engine.jobs.failed");
    static obs::Counter* const speculated =
        obs::DefaultMetrics().GetCounter("engine.task.speculated");
    static obs::Counter* const jobs_rejected =
        obs::DefaultMetrics().GetCounter("engine.jobs.rejected");
    static std::atomic<uint64_t> generation{0};
    if (admission_hook_) {
      // Admission veto: no task is enqueued, no JobControl is created — the
      // caller sees the hook's status (e.g. ResourceExhausted under
      // overload) exactly as it would see a deadline or cancellation.
      const Status admitted =
          admission_hook_(JobAdmission{stage, n, job_priority_});
      if (!admitted.ok()) {
        jobs_rejected->Increment();
        return admitted;
      }
    }
    jobs->Increment();
    tasks->Add(n);
    if (n == 0) return Status::OK();
    const fault::RetryPolicy policy = retry_policy_;  // stable for the job
    const SpeculationPolicy spec = speculation_policy_;
    obs::TaskTracer* const tracer = tracer_;
    const bool traced = tracer->enabled();
    // Profiling piggybacks on the tracing span plumbing: when a
    // ProfileCollector is installed on this (driver) thread, tasks fill in
    // the same TaskSpan structs and fold them into the job's accounting.
    const bool profiled = obs::CurrentProfileCollector() != nullptr;
    const uint64_t job = traced ? tracer->BeginJob() : 0;
    // Every task is enqueued up front, so the job start is the enqueue
    // time of each task; queue wait = task start - job start.
    const uint64_t queued = traced ? tracer->NowNanos() : 0;
    const uint64_t job_started_ns = SteadyNowNs();

    const auto control = std::make_shared<JobControl>(
        n, job_deadline_ms_, cancel_token_,
        generation.fetch_add(1, std::memory_order_relaxed) + 1,
        job_priority_);

    if (n == 1) {
      // Single-task fast path: run inline on the driver, no pool dispatch.
      RunTaskCopy<Fn>(control, fn, 0, 1, policy, stage, traced, profiled,
                      job, queued, tracer);
      return FinishJob(control, stage, profiled, job_started_ns, jobs_failed);
    }

    // fn is shared by all copies of all tasks, exactly as when the lambda
    // lived on the driver's stack — but on the heap, so a queued copy that
    // outlives this frame (possible only after cancellation, when it can
    // no longer win a claim and run user code) touches valid memory.
    const auto shared_fn = std::make_shared<Fn>(fn);
    for (size_t p = 0; p < n; ++p) {
      pool_->SubmitDetached(
          [control, shared_fn, p, policy, stage, traced, profiled, job,
           queued, tracer] {
            RunTaskCopy<Fn>(control, *shared_fn, p, 1, policy, stage, traced,
                            profiled, job, queued, tracer);
          });
    }

    // Driver-side monitor: promote deadline/token to a latched cancel so
    // workers skip queued tasks, and launch speculative copies for
    // stragglers. A cancelled job settles as soon as no claimed copy is
    // still inside user code — it does not wait out unclaimed sleepers.
    constexpr auto kTick = std::chrono::milliseconds(2);
    while (!control->WaitSettledFor(kTick)) {
      control->ShouldStop();
      if (spec.enabled) {
        for (size_t p : control->SpeculationCandidates(spec)) {
          speculated->Increment();
          if (profiled) {
            control->accounting().speculated.fetch_add(
                1, std::memory_order_relaxed);
          }
          obs::DefaultFlightRecorder().RecordTask(
              obs::FlightEventKind::kSpeculate, control->generation(), p, 2,
              0, ThreadPool::CurrentWorkerIndex(), 0, stage);
          pool_->SubmitDetached(
              [control, shared_fn, p, policy, stage, traced, profiled, job,
               queued, tracer] {
                RunTaskCopy<Fn>(control, *shared_fn, p, 2, policy, stage,
                                traced, profiled, job, queued, tracer);
              });
        }
      }
    }
    return FinishJob(control, stage, profiled, job_started_ns, jobs_failed);
  }

  /// Throwing wrapper over TryRunTasks for value-returning actions: a
  /// permanently failed job surfaces as a StatusError on the calling
  /// (driver) thread.
  template <typename Fn>
  void RunTasks(const char* stage, size_t n, const Fn& fn) {
    const Status status = TryRunTasks(stage, n, fn);
    if (!status.ok()) throw StatusError(status);
  }

  /// Copies the pool's dispatch statistics into the default metrics
  /// registry (engine.pool.* gauges) so a metrics dump includes them.
  void PublishPoolStats() const {
    const ThreadPool::Stats stats = pool_->GetStats();
    obs::MetricsRegistry& m = obs::DefaultMetrics();
    m.GetGauge("engine.pool.threads")
        ->Set(static_cast<int64_t>(pool_->num_threads()));
    m.GetGauge("engine.pool.tasks_submitted")
        ->Set(static_cast<int64_t>(stats.tasks_submitted));
    m.GetGauge("engine.pool.tasks_executed")
        ->Set(static_cast<int64_t>(stats.tasks_executed));
    m.GetGauge("engine.pool.workers_died")
        ->Set(static_cast<int64_t>(stats.workers_died));
    m.GetGauge("engine.pool.workers_restarted")
        ->Set(static_cast<int64_t>(stats.workers_restarted));
  }

 private:
  /// One execution of one copy of one task: the engine's task boundary.
  /// `copy` is 1 for the original and 2 for a speculative duplicate. The
  /// flow is: skip if the job is done/cancelled; pass the failpoint sites
  /// (a WorkerKilledError unwinds into the pool, which requeues this exact
  /// copy); *claim* the task — only the claim winner ever runs \p fn, which
  /// is what makes speculative duplicates safe against task bodies that
  /// write shared per-partition output slots; run \p fn under a TaskContext
  /// (cooperative checkpoints) and a TaskSpan; commit exactly once.
  template <typename Fn>
  static void RunTaskCopy(const std::shared_ptr<JobControl>& control,
                          const Fn& fn, size_t p, uint32_t copy,
                          const fault::RetryPolicy& policy, const char* stage,
                          bool traced, bool profiled, uint64_t job,
                          uint64_t queued, obs::TaskTracer* tracer) {
    static obs::Counter* const retries =
        obs::DefaultMetrics().GetCounter("engine.task.retries");
    static obs::Counter* const failures =
        obs::DefaultMetrics().GetCounter("engine.task.failures");
    static obs::Counter* const cancelled_tasks =
        obs::DefaultMetrics().GetCounter("engine.task.cancelled");
    static obs::Counter* const speculation_wins =
        obs::DefaultMetrics().GetCounter("engine.task.speculation_wins");
    static obs::Counter* const slow_tasks =
        obs::DefaultMetrics().GetCounter("engine.task.slow");
    static fault::FailPoint* const task_fp =
        fault::DefaultFailPoints().Get("engine.task.run");
    static fault::FailPoint* const die_fp =
        fault::DefaultFailPoints().Get("engine.worker.die");
    obs::FlightRecorder& flight = obs::DefaultFlightRecorder();
    const uint64_t gen = control->generation();
    const int worker = ThreadPool::CurrentWorkerIndex();
    // Spans exist whenever someone consumes them: the tracer (per-attempt
    // export) or the profiler (accounting folded into the job on success).
    const bool observe = traced || profiled;

    if (control->TaskDone(p)) return;  // a copy arrived after completion
    if (control->ShouldStop()) {
      // Job is cancelled or past its deadline: skip without starting.
      if (control->CompleteTask(p, 0, false)) {
        cancelled_tasks->Increment();
        if (profiled) {
          control->accounting().cancelled.fetch_add(
              1, std::memory_order_relaxed);
        }
        flight.RecordTask(obs::FlightEventKind::kCancel, gen, p, copy, 0,
                          worker, 0, stage);
      }
      // A copy that was killed mid-claim and requeued still holds the
      // claim bracket; close it so the driver can settle.
      if (control->OwnsTask(p, copy)) control->EndClaimedRun();
      return;
    }
    control->RecordTaskStart(p);

    const size_t max_attempts = policy.EffectiveAttempts();
    bool claimed = false;
    for (size_t attempt = 1; attempt <= max_attempts; ++attempt) {
      obs::TaskSpan span;
      if (observe) {
        span.job_id = job;
        span.stage = stage;
        span.partition = p;
        span.worker = worker;
        span.queued_ns = queued;
        span.attempt = attempt;
        span.speculative = copy > 1;
        span.start_ns = traced ? tracer->NowNanos() : 0;
      }
      Status task_status;
      uint64_t run_started_ns = 0;
      try {
        // Both sites fire *before* the claim on the first attempt, so a
        // delay-injected straggler sleeps unclaimed and a speculative copy
        // can win the task meanwhile.
        fault::MaybeThrow(task_fp);
        fault::MaybeKillWorker(die_fp);
        if (!claimed && !control->ClaimTask(p, copy)) {
          // Another copy owns this task: cooperative loser exit. The
          // owner commits; this copy must not touch fn's outputs.
          return;
        }
        claimed = true;
        flight.RecordTask(obs::FlightEventKind::kClaim, gen, p, copy,
                          static_cast<uint32_t>(attempt), worker, 0, stage);
        TaskContext task_ctx(control.get(), p, copy > 1);
        CurrentTaskContextScope task_scope(&task_ctx);
        // Post-claim stop check (ordered against Cancel by the seq_cst
        // claim CAS): never start user code on a dead job.
        task_ctx.ThrowIfCancelled();
        run_started_ns = SteadyNowNs();
        if (observe) {
          obs::CurrentTaskSpanScope scope(&span);
          fn(p);
        } else {
          fn(p);
        }
      } catch (const StatusError& e) {
        task_status = e.status();
      } catch (const WorkerKilledError&) {
        // Executor loss: unwind into the pool's worker loop, which requeues
        // this exact copy on a surviving worker.
        flight.RecordTask(obs::FlightEventKind::kWorkerDeath, gen, p, copy,
                          static_cast<uint32_t>(attempt), worker, 0, stage);
        throw;
      } catch (const std::exception& e) {
        task_status = Status::UnknownError(e.what());
      } catch (...) {
        task_status = Status::UnknownError("non-std exception");
      }
      if (traced) {
        span.end_ns = tracer->NowNanos();
        span.ok = task_status.ok();
        span.error = task_status.message();
      }
      if (task_status.ok()) {
        const uint64_t duration_ns = SteadyNowNs() - run_started_ns;
        // All observation (span, flight event, accounting fold, slow log)
        // must land BEFORE CompleteTask: the moment the last task
        // completes, the driver settles the job, reads the accounting into
        // the ProfileNode, and may return to the caller — anything recorded
        // after CompleteTask can be missed by that read.
        flight.RecordTask(obs::FlightEventKind::kFinish, gen, p, copy,
                          static_cast<uint32_t>(attempt), worker, duration_ns,
                          stage);
        if (profiled) {
          JobControl::Accounting& acc = control->accounting();
          acc.rows_in.fetch_add(span.records_in, std::memory_order_relaxed);
          acc.rows_out.fetch_add(span.records_out, std::memory_order_relaxed);
          acc.bytes.fetch_add(span.bytes, std::memory_order_relaxed);
          acc.candidates.fetch_add(span.candidates,
                                   std::memory_order_relaxed);
          acc.refined.fetch_add(span.refined, std::memory_order_relaxed);
        }
        const double slow_ms = obs::GlobalSlowLog().slow_task_ms();
        if (slow_ms > 0 &&
            static_cast<double>(duration_ns) > slow_ms * 1e6) {
          slow_tasks->Increment();
          std::fprintf(stderr,
                       "[stark] slow task: %s partition %zu took %.1f ms "
                       "(threshold %.1f ms)\n",
                       stage, p, static_cast<double>(duration_ns) / 1e6,
                       slow_ms);
        }
        if (traced) tracer->Record(std::move(span));
        if (control->CompleteTask(p, duration_ns, true) && copy > 1) {
          speculation_wins->Increment();
        }
        control->EndClaimedRun();
        return;
      }
      if (traced) tracer->Record(std::move(span));
      failures->Increment();
      if (control->Cancelled()) {
        // The job is being torn down (deadline, cancel, or fail-fast
        // abort): a failing or cooperatively-stopped attempt is not
        // retried.
        if (control->CompleteTask(p, 0, false)) {
          cancelled_tasks->Increment();
          if (profiled) {
            control->accounting().cancelled.fetch_add(
                1, std::memory_order_relaxed);
          }
          flight.RecordTask(obs::FlightEventKind::kCancel, gen, p, copy,
                            static_cast<uint32_t>(attempt), worker, 0, stage);
        }
        if (claimed) control->EndClaimedRun();
        return;
      }
      if (attempt >= max_attempts) {
        // Permanent failure: record it and cancel the rest of the job,
        // like Spark cancelling a stage once a task exhausts
        // spark.task.maxFailures.
        flight.RecordTask(obs::FlightEventKind::kTaskFail, gen, p, copy,
                          static_cast<uint32_t>(attempt), worker, 0,
                          task_status.message().c_str());
        control->FailJob(Status(
            task_status.code(),
            std::string(stage) + " partition " + std::to_string(p) +
                " failed after " + std::to_string(attempt) +
                " attempt(s): " + task_status.message()));
        control->CompleteTask(p, 0, false);
        if (claimed) control->EndClaimedRun();
        return;
      }
      retries->Increment();
      if (profiled) {
        control->accounting().retries.fetch_add(1,
                                                std::memory_order_relaxed);
      }
      flight.RecordTask(obs::FlightEventKind::kRetry, gen, p, copy,
                        static_cast<uint32_t>(attempt), worker, 0,
                        task_status.message().c_str());
      // No backoff after the final attempt (handled above), and none once
      // the job is already cancelled.
      const uint64_t backoff_ms = policy.BackoffMs(attempt);
      if (backoff_ms > 0 && !control->Cancelled()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      }
    }
  }

  static Status ResolveJobStatus(const JobControl& control,
                                 obs::Counter* jobs_failed) {
    Status result = control.first_failure();
    if (result.ok() && control.Cancelled()) result = control.cancel_status();
    if (!result.ok()) jobs_failed->Increment();
    return result;
  }

  /// Shared job epilogue (single-task fast path and pooled path): resolves
  /// the job status, dumps the flight recorder when the job died, and
  /// appends the job's ProfileNode to the driver's collector.
  static Status FinishJob(const std::shared_ptr<JobControl>& control,
                          const char* stage, bool profiled,
                          uint64_t job_started_ns, obs::Counter* jobs_failed) {
    const Status status = ResolveJobStatus(*control, jobs_failed);
    const double wall_ms =
        static_cast<double>(SteadyNowNs() - job_started_ns) / 1e6;
    if (!status.ok()) {
      obs::FlightRecorder& flight = obs::DefaultFlightRecorder();
      flight.RecordTask(obs::FlightEventKind::kJobFail, control->generation(),
                        0, 0, 0, ThreadPool::CurrentWorkerIndex(),
                        control->num_tasks(), stage);
      flight.AutoDump(std::string(stage) + ": " + status.ToString());
    }
    if (profiled) {
      obs::ProfileCollector* collector = obs::CurrentProfileCollector();
      if (collector != nullptr) {
        obs::ProfileNode node;
        node.label = stage;
        node.kind = obs::ProfileNodeKind::kJob;
        node.wall_ms = wall_ms;
        node.partitions = control->num_tasks();
        const JobControl::Accounting& acc = control->accounting();
        node.rows_in = acc.rows_in.load(std::memory_order_relaxed);
        node.rows_out = acc.rows_out.load(std::memory_order_relaxed);
        node.bytes = acc.bytes.load(std::memory_order_relaxed);
        node.candidates = acc.candidates.load(std::memory_order_relaxed);
        node.refined = acc.refined.load(std::memory_order_relaxed);
        node.retries = acc.retries.load(std::memory_order_relaxed);
        node.speculated = acc.speculated.load(std::memory_order_relaxed);
        node.cancelled = acc.cancelled.load(std::memory_order_relaxed);
        node.failed = !status.ok();
        if (node.failed) node.error = status.ToString();
        obs::Histogram durations;
        for (uint64_t d : control->CompletedDurations()) durations.Record(d);
        node.task_ns = durations.Snap();
        collector->RecordJob(std::move(node));
      }
    }
    return status;
  }

  static uint64_t SteadyNowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  static uint64_t DefaultJobDeadlineMs() {
    const char* raw = std::getenv("STARK_JOB_DEADLINE_MS");
    if (raw == nullptr || *raw == '\0') return 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(raw, &end, 10);
    return end == raw ? 0 : static_cast<uint64_t>(v);
  }

  static size_t DefaultHardwareParallelism() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 2 : hw;
  }

  size_t parallelism_;
  std::shared_ptr<ThreadPool> pool_;
  obs::TaskTracer* tracer_;
  fault::RetryPolicy retry_policy_;
  uint64_t job_deadline_ms_;
  SpeculationPolicy speculation_policy_;
  std::shared_ptr<CancelToken> cancel_token_;
  AdmissionHook admission_hook_;
  int job_priority_ = 0;
};

}  // namespace stark

#endif  // STARK_ENGINE_CONTEXT_H_
