/// \file context.h
/// Execution context of the sparklet engine — the stand-in for a
/// SparkContext. Worker threads play the role of cluster executors: every
/// partition of an RDD is computed as one task on the pool (see DESIGN.md
/// for why this substitution preserves the paper's behaviour).
#ifndef STARK_ENGINE_CONTEXT_H_
#define STARK_ENGINE_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "common/status.h"
#include "common/thread_pool.h"
#include "fault/failpoint.h"
#include "fault/retry.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace stark {

/// \brief Owns the worker pool, the default parallelism and the task retry
/// policy of a program.
///
/// Also the engine's resilience and observability seam: every action
/// dispatches its partition tasks through RunTasks()/TryRunTasks(), which
/// (1) re-runs a failed task against its lineage according to the
/// RetryPolicy — RDDImpl::Compute is a pure function of the lineage graph,
/// so re-invoking the task body *is* Spark's recompute-from-lineage
/// recovery; (2) converts anything a task throws into a Status at the task
/// boundary, so worker exceptions never unwind through the thread pool;
/// (3) records one TaskSpan per *attempt* while tracing is enabled (plain
/// dispatch plus one relaxed atomic load otherwise); and (4) hosts the
/// `engine.task.run` fault-injection site (see docs/FAULT_INJECTION.md).
class Context {
 public:
  /// \p parallelism 0 means "number of hardware threads". \p tracer null
  /// means the process-wide obs::DefaultTracer(). The retry policy is
  /// initialized from the environment (STARK_TASK_RETRIES etc.; defaults:
  /// 3 attempts, no backoff).
  explicit Context(size_t parallelism = 0, obs::TaskTracer* tracer = nullptr)
      : parallelism_(parallelism != 0 ? parallelism
                                      : DefaultHardwareParallelism()),
        pool_(std::make_unique<ThreadPool>(parallelism_)),
        tracer_(tracer != nullptr ? tracer : &obs::DefaultTracer()),
        retry_policy_(fault::RetryPolicy::FromEnv()) {}

  STARK_DISALLOW_COPY_AND_ASSIGN(Context);

  ThreadPool& pool() { return *pool_; }

  obs::TaskTracer& tracer() const { return *tracer_; }

  /// Default number of partitions for new RDDs, like Spark's
  /// `spark.default.parallelism`.
  size_t default_parallelism() const { return parallelism_; }

  const fault::RetryPolicy& retry_policy() const { return retry_policy_; }
  void set_retry_policy(const fault::RetryPolicy& policy) {
    retry_policy_ = policy;
  }

  /// Runs \p fn(p) for p in [0, n) on the pool as one job of n
  /// partition-tasks labelled \p stage, retrying failed tasks per the
  /// retry policy. Returns the first permanent task failure as a Status
  /// (never throws through the pool); once a task fails permanently the
  /// job is aborted and not-yet-started tasks are skipped.
  ///
  /// This is also the begin/end hook of the tracing layer: with tracing
  /// enabled each task attempt gets a span (job id, stage, partition,
  /// worker, attempt number, queue-wait vs compute time, failure message)
  /// and operator code can annotate record counts via
  /// obs::CurrentTaskSpan().
  template <typename Fn>
  Status TryRunTasks(const char* stage, size_t n, const Fn& fn) {
    static obs::Counter* const jobs =
        obs::DefaultMetrics().GetCounter("engine.jobs");
    static obs::Counter* const tasks =
        obs::DefaultMetrics().GetCounter("engine.tasks");
    static obs::Counter* const retries =
        obs::DefaultMetrics().GetCounter("engine.task.retries");
    static obs::Counter* const failures =
        obs::DefaultMetrics().GetCounter("engine.task.failures");
    static obs::Counter* const jobs_failed =
        obs::DefaultMetrics().GetCounter("engine.jobs.failed");
    static fault::FailPoint* const task_fp =
        fault::DefaultFailPoints().Get("engine.task.run");
    jobs->Increment();
    tasks->Add(n);
    const fault::RetryPolicy policy = retry_policy_;  // stable for the job
    obs::TaskTracer& tracer = *tracer_;
    const bool traced = tracer.enabled();
    const uint64_t job = traced ? tracer.BeginJob() : 0;
    // ParallelFor enqueues every task up front, so the job start is the
    // enqueue time of each task; queue wait = task start - job start.
    const uint64_t queued = traced ? tracer.NowNanos() : 0;

    std::mutex mu;
    Status first_failure;
    std::atomic<bool> aborted{false};

    const Status pool_status = pool_->TryParallelFor(n, [&](size_t p) {
      if (aborted.load(std::memory_order_relaxed)) return;  // job is dead
      const size_t max_attempts = policy.EffectiveAttempts();
      for (size_t attempt = 1; attempt <= max_attempts; ++attempt) {
        obs::TaskSpan span;
        if (traced) {
          span.job_id = job;
          span.stage = stage;
          span.partition = p;
          span.worker = ThreadPool::CurrentWorkerIndex();
          span.queued_ns = queued;
          span.attempt = attempt;
          span.start_ns = tracer.NowNanos();
        }
        Status task_status;
        try {
          fault::MaybeThrow(task_fp);
          if (traced) {
            obs::CurrentTaskSpanScope scope(&span);
            fn(p);
          } else {
            fn(p);
          }
        } catch (const StatusError& e) {
          task_status = e.status();
        } catch (const std::exception& e) {
          task_status = Status::UnknownError(e.what());
        } catch (...) {
          task_status = Status::UnknownError("non-std exception");
        }
        if (traced) {
          span.end_ns = tracer.NowNanos();
          span.ok = task_status.ok();
          span.error = task_status.message();
          tracer.Record(std::move(span));
        }
        if (task_status.ok()) return;
        failures->Increment();
        if (attempt >= max_attempts) {
          // Permanent failure: record it and abort the rest of the job,
          // like Spark cancelling a stage once a task exhausts
          // spark.task.maxFailures.
          aborted.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(mu);
          if (first_failure.ok()) {
            first_failure = Status(
                task_status.code(),
                std::string(stage) + " partition " + std::to_string(p) +
                    " failed after " + std::to_string(attempt) +
                    " attempt(s): " + task_status.message());
          }
          return;
        }
        retries->Increment();
        const uint64_t backoff_ms = policy.BackoffMs(attempt);
        if (backoff_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        }
      }
    });
    // The per-attempt try/catch above is exhaustive, so pool_status can
    // only report a scheduling-level problem; keep it as a backstop.
    Status result = pool_status;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (result.ok()) result = first_failure;
    }
    if (!result.ok()) jobs_failed->Increment();
    return result;
  }

  /// Throwing wrapper over TryRunTasks for value-returning actions: a
  /// permanently failed job surfaces as a StatusError on the calling
  /// (driver) thread.
  template <typename Fn>
  void RunTasks(const char* stage, size_t n, const Fn& fn) {
    const Status status = TryRunTasks(stage, n, fn);
    if (!status.ok()) throw StatusError(status);
  }

  /// Copies the pool's dispatch statistics into the default metrics
  /// registry (engine.pool.* gauges) so a metrics dump includes them.
  void PublishPoolStats() const {
    const ThreadPool::Stats stats = pool_->GetStats();
    obs::MetricsRegistry& m = obs::DefaultMetrics();
    m.GetGauge("engine.pool.threads")
        ->Set(static_cast<int64_t>(pool_->num_threads()));
    m.GetGauge("engine.pool.tasks_submitted")
        ->Set(static_cast<int64_t>(stats.tasks_submitted));
    m.GetGauge("engine.pool.tasks_executed")
        ->Set(static_cast<int64_t>(stats.tasks_executed));
  }

 private:
  static size_t DefaultHardwareParallelism() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 2 : hw;
  }

  size_t parallelism_;
  std::unique_ptr<ThreadPool> pool_;
  obs::TaskTracer* tracer_;
  fault::RetryPolicy retry_policy_;
};

}  // namespace stark

#endif  // STARK_ENGINE_CONTEXT_H_
