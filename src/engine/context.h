/// \file context.h
/// Execution context of the sparklet engine — the stand-in for a
/// SparkContext. Worker threads play the role of cluster executors: every
/// partition of an RDD is computed as one task on the pool (see DESIGN.md
/// for why this substitution preserves the paper's behaviour).
#ifndef STARK_ENGINE_CONTEXT_H_
#define STARK_ENGINE_CONTEXT_H_

#include <memory>
#include <thread>
#include <utility>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace stark {

/// \brief Owns the worker pool and the default parallelism of a program.
///
/// Also the engine's observability seam: every action dispatches its
/// partition tasks through RunTasks(), which is a plain ParallelFor while
/// tracing is disabled (one relaxed atomic load extra) and records one
/// TaskSpan per partition-task while it is enabled.
class Context {
 public:
  /// \p parallelism 0 means "number of hardware threads". \p tracer null
  /// means the process-wide obs::DefaultTracer().
  explicit Context(size_t parallelism = 0, obs::TaskTracer* tracer = nullptr)
      : parallelism_(parallelism != 0 ? parallelism
                                      : DefaultHardwareParallelism()),
        pool_(std::make_unique<ThreadPool>(parallelism_)),
        tracer_(tracer != nullptr ? tracer : &obs::DefaultTracer()) {}

  STARK_DISALLOW_COPY_AND_ASSIGN(Context);

  ThreadPool& pool() { return *pool_; }

  obs::TaskTracer& tracer() const { return *tracer_; }

  /// Default number of partitions for new RDDs, like Spark's
  /// `spark.default.parallelism`.
  size_t default_parallelism() const { return parallelism_; }

  /// Runs \p fn(p) for p in [0, n) on the pool as one job of n
  /// partition-tasks labelled \p stage. This is the begin/end hook of the
  /// tracing layer: with tracing enabled each task gets a span (job id,
  /// stage, partition, worker, queue-wait vs compute time) and operator
  /// code can annotate record counts via obs::CurrentTaskSpan().
  template <typename Fn>
  void RunTasks(const char* stage, size_t n, const Fn& fn) {
    static obs::Counter* const jobs =
        obs::DefaultMetrics().GetCounter("engine.jobs");
    static obs::Counter* const tasks =
        obs::DefaultMetrics().GetCounter("engine.tasks");
    jobs->Increment();
    tasks->Add(n);
    obs::TaskTracer& tracer = *tracer_;
    if (!tracer.enabled()) {  // null-sink fast path
      pool_->ParallelFor(n, fn);
      return;
    }
    const uint64_t job = tracer.BeginJob();
    // ParallelFor enqueues every task up front, so the job start is the
    // enqueue time of each task; queue wait = task start - job start.
    const uint64_t queued = tracer.NowNanos();
    pool_->ParallelFor(n, [&tracer, &fn, stage, job, queued](size_t p) {
      obs::TaskSpan span;
      span.job_id = job;
      span.stage = stage;
      span.partition = p;
      span.worker = ThreadPool::CurrentWorkerIndex();
      span.queued_ns = queued;
      span.start_ns = tracer.NowNanos();
      {
        obs::CurrentTaskSpanScope scope(&span);
        fn(p);
      }
      span.end_ns = tracer.NowNanos();
      tracer.Record(std::move(span));
    });
  }

  /// Copies the pool's dispatch statistics into the default metrics
  /// registry (engine.pool.* gauges) so a metrics dump includes them.
  void PublishPoolStats() const {
    const ThreadPool::Stats stats = pool_->GetStats();
    obs::MetricsRegistry& m = obs::DefaultMetrics();
    m.GetGauge("engine.pool.threads")
        ->Set(static_cast<int64_t>(pool_->num_threads()));
    m.GetGauge("engine.pool.tasks_submitted")
        ->Set(static_cast<int64_t>(stats.tasks_submitted));
    m.GetGauge("engine.pool.tasks_executed")
        ->Set(static_cast<int64_t>(stats.tasks_executed));
  }

 private:
  static size_t DefaultHardwareParallelism() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 2 : hw;
  }

  size_t parallelism_;
  std::unique_ptr<ThreadPool> pool_;
  obs::TaskTracer* tracer_;
};

}  // namespace stark

#endif  // STARK_ENGINE_CONTEXT_H_
