/// \file job_control.h
/// Per-job control plane for the sparklet engine: deadlines, cooperative
/// cancellation, and speculative-execution bookkeeping.
///
/// Every Context::TryRunTasks call creates one JobControl shared by the
/// driver and all task copies of that job. Workers observe it through a
/// thread-local TaskContext handle (CurrentTaskContext), checking
/// StopRequested() between element batches; on deadline or cancel,
/// in-flight tasks stop at their next checkpoint, queued tasks are skipped,
/// and the job returns Status::DeadlineExceeded / Status::Cancelled.
///
/// Speculation follows Spark's model: once >= `quantile` of a job's tasks
/// have finished, tasks running longer than `multiplier x` the running
/// median duration are re-enqueued as speculative copies. Exactly-once
/// commit is enforced by an atomic per-task *claim* taken before any user
/// code runs — the claim winner executes the task body, the loser exits
/// cooperatively. (Task bodies side-effect into shared per-partition output
/// slots, so the claim doubles as the output committer: two copies of the
/// same partition never run user code concurrently.)
#ifndef STARK_ENGINE_JOB_CONTROL_H_
#define STARK_ENGINE_JOB_CONTROL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace stark {

/// \brief Ctrl-C-style cancellation token shared between a driver-side
/// requester (signal handler, REPL, test) and running jobs. Sticky until
/// Reset(); safe to signal from a signal handler or any thread.
class CancelToken {
 public:
  void RequestCancel() { cancelled_.store(true, std::memory_order_seq_cst); }
  bool requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void Reset() { cancelled_.store(false, std::memory_order_seq_cst); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// \brief Knobs for speculative re-execution of stragglers.
struct SpeculationPolicy {
  bool enabled = false;
  /// Fraction of a job's tasks that must have finished before any
  /// speculative copy launches (the running median needs a sample).
  double quantile = 0.75;
  /// A task is a straggler once it has run longer than
  /// multiplier x median(completed task durations).
  double multiplier = 1.5;
  /// Never speculate tasks below this runtime: duplicating sub-millisecond
  /// tasks only adds scheduling noise.
  uint64_t min_task_ms = 5;

  /// Reads STARK_SPECULATION, STARK_SPECULATION_QUANTILE,
  /// STARK_SPECULATION_MULTIPLIER, STARK_SPECULATION_MIN_TASK_MS.
  static SpeculationPolicy FromEnv();
};

/// \brief Shared state of one running job: cancel flag + reason, deadline,
/// per-task claim/completion slots, and completion accounting the driver
/// waits on. Heap-allocated (shared_ptr) so a late-waking task copy that
/// lost its claim can still run its epilogue after the driver has returned.
class JobControl {
 public:
  /// \p deadline_ms of 0 means no deadline. \p token may be null.
  /// \p priority is the scheduling class of the submitting session (0 =
  /// most important); the serving layer's admission hooks and degradation
  /// ladder read it, the engine itself only carries it.
  JobControl(size_t num_tasks, uint64_t deadline_ms,
             std::shared_ptr<CancelToken> token, uint64_t generation,
             int priority = 0);

  STARK_DISALLOW_COPY_AND_ASSIGN(JobControl);

  /// Monotonically increasing job id; lets logs and spans distinguish
  /// copies of different job generations.
  uint64_t generation() const { return generation_; }
  size_t num_tasks() const { return num_tasks_; }

  /// Scheduling class of the job (lower = more important; see
  /// serve::QueryClass). Purely informational at the engine layer.
  int priority() const { return priority_; }

  // --- Cancellation -------------------------------------------------------

  /// Cheap check of the already-latched cancel flag (no clock read).
  bool Cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Full stop check: latched flag, external token, and deadline. Latches
  /// the cancel reason on first detection. This is what task checkpoints
  /// call between element batches.
  bool ShouldStop();

  /// Requests cancellation with \p reason; the first reason wins.
  void Cancel(Status reason);

  /// The latched cancel reason (OK if not cancelled).
  Status cancel_status() const;

  /// First permanent task failure, if any (OK otherwise).
  Status first_failure() const;

  /// Records a permanent task failure and cancels the rest of the job so
  /// queued tasks are skipped (the fail-fast path when retries are
  /// exhausted or disabled).
  void FailJob(Status failure);

  // --- Per-task lifecycle (called by task copies) -------------------------

  /// Claims task \p p for copy \p copy (1 = original, 2 = speculative).
  /// First CAS wins; re-claiming by the same copy (across retry attempts)
  /// succeeds. Returns false when another copy owns the task: the caller
  /// must exit without running user code.
  bool ClaimTask(size_t p, uint32_t copy);

  /// Records the dispatch time of task \p p (first copy wins) so the
  /// driver's speculation scan can see how long it has been running.
  void RecordTaskStart(size_t p);

  /// True once the logical task \p p has completed (or been skipped).
  bool TaskDone(size_t p) const;

  /// True when copy \p copy holds the claim on task \p p (used by a
  /// requeued copy to detect that it still owns an open claim bracket).
  bool OwnsTask(size_t p, uint32_t copy) const;

  /// Marks logical task \p p complete. Returns true only for the call that
  /// performed the transition — the commit point that fires exactly once
  /// per task. \p duration_ns feeds the speculation median when
  /// \p record_duration is set (successful runs only).
  bool CompleteTask(size_t p, uint64_t duration_ns, bool record_duration);

  /// Closes the claim bracket opened by a winning ClaimTask: the owning
  /// copy calls this exactly once when it leaves the task wrapper, so the
  /// driver can tell "user code may be on some worker's stack" apart from
  /// "only heap state is referenced".
  void EndClaimedRun();

  // --- Driver side --------------------------------------------------------

  /// Waits up to \p d for the job to become *settled*: either all tasks
  /// done, or cancelled with no claimed copy still inside user code.
  /// Returns true when settled. After a cancelled job settles, unclaimed
  /// queued/sleeping copies may still exist, but they can only touch this
  /// JobControl (heap, shared ownership) — never the driver's stack.
  bool WaitSettledFor(std::chrono::nanoseconds d);

  /// True when every logical task completed (none skipped).
  bool AllDone() const;

  /// Scans for stragglers eligible for a speculative copy: started, not
  /// done, not yet speculated, running longer than
  /// max(multiplier x median completed duration, min_task_ms). Marks the
  /// returned tasks as speculated so each gets at most one copy. Empty
  /// until >= quantile of tasks completed, or after cancellation.
  std::vector<size_t> SpeculationCandidates(const SpeculationPolicy& policy);

  // --- Profile accounting -------------------------------------------------

  /// Relaxed per-job totals accumulated by task epilogues when a
  /// ProfileCollector is installed and read once by the driver epilogue.
  /// Kept here (not in the collector) because tasks outlive neither the
  /// job nor this struct, and the driver-side collector is single-threaded.
  struct Accounting {
    std::atomic<uint64_t> rows_in{0};
    std::atomic<uint64_t> rows_out{0};
    std::atomic<uint64_t> bytes{0};
    std::atomic<uint64_t> candidates{0};
    std::atomic<uint64_t> refined{0};
    std::atomic<uint64_t> retries{0};
    std::atomic<uint64_t> speculated{0};
    std::atomic<uint64_t> cancelled{0};
  };
  Accounting& accounting() { return accounting_; }

  /// Copy of the successful-run durations recorded so far (the same
  /// samples the speculation median uses); feeds the profile's per-task
  /// histogram.
  std::vector<uint64_t> CompletedDurations() const;

 private:
  friend class TaskContext;

  bool DeadlinePassed() const {
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  struct TaskState {
    std::atomic<uint32_t> owner{0};
    std::atomic<bool> done{false};
    std::atomic<bool> speculated{false};
    std::atomic<uint64_t> start_ns{0};  // steady-clock; 0 = not dispatched
  };

  const size_t num_tasks_;
  const uint64_t generation_;
  const int priority_;
  const uint64_t deadline_ms_;
  const bool has_deadline_;
  const std::chrono::steady_clock::time_point deadline_;
  const std::shared_ptr<CancelToken> token_;

  std::vector<TaskState> tasks_;

  Accounting accounting_;

  std::atomic<bool> cancelled_{false};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Status cancel_status_;           // guarded by mu_
  Status first_failure_;           // guarded by mu_
  size_t remaining_;               // guarded by mu_
  size_t claimed_open_ = 0;        // copies inside user code; guarded by mu_
  std::vector<uint64_t> completed_ns_;  // durations; guarded by mu_
};

/// \brief The handle task code sees: identifies the task copy and exposes
/// the cooperative stop checks. Installed in TLS for the duration of the
/// task body so deep operator loops (join probes, scans) can poll without
/// plumbing a parameter through every layer.
class TaskContext {
 public:
  TaskContext(JobControl* control, size_t partition, bool speculative)
      : control_(control), partition_(partition), speculative_(speculative) {}

  size_t partition() const { return partition_; }
  bool speculative() const { return speculative_; }

  /// True when this task should stop at its next checkpoint (job
  /// cancelled, deadline passed, or this copy lost its claim).
  bool StopRequested() const { return control_->ShouldStop(); }

  /// OK, or the job's cancel reason when the task should stop.
  Status CheckCancelled() const;

  /// Throws StatusError(cancel reason) when the task should stop — the
  /// standard checkpoint for operator inner loops.
  void ThrowIfCancelled() const;

 private:
  JobControl* control_;
  size_t partition_;
  bool speculative_;
};

/// Current task's context, or nullptr outside a task body.
TaskContext* CurrentTaskContext();

/// RAII installer for the thread-local TaskContext (mirrors
/// obs::CurrentTaskSpanScope).
class CurrentTaskContextScope {
 public:
  explicit CurrentTaskContextScope(TaskContext* ctx);
  ~CurrentTaskContextScope();

  STARK_DISALLOW_COPY_AND_ASSIGN(CurrentTaskContextScope);

 private:
  TaskContext* previous_;
};

/// Checkpoint helper for operator loops: true when the calling thread runs
/// inside a task whose job wants it to stop. No-op (false) off-task.
inline bool TaskStopRequested() {
  TaskContext* tc = CurrentTaskContext();
  return tc != nullptr && tc->StopRequested();
}

/// Checkpoint helper: throws StatusError with the job's cancel reason when
/// the current task should stop. The task boundary converts it back into
/// the job's Status. No-op off-task.
inline void ThrowIfTaskCancelled() {
  TaskContext* tc = CurrentTaskContext();
  if (tc != nullptr) tc->ThrowIfCancelled();
}

}  // namespace stark

#endif  // STARK_ENGINE_JOB_CONTROL_H_
