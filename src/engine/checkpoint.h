/// \file checkpoint.h
/// Materializes an RDD to disk and reads it back — the engine-level
/// "store to HDFS" step of the paper's Figure-2 workflow (partitioned data
/// is persisted once and re-used by later programs), with the local
/// filesystem substituting for HDFS.
#ifndef STARK_ENGINE_CHECKPOINT_H_
#define STARK_ENGINE_CHECKPOINT_H_

#include <string>
#include <vector>

#include "common/serde.h"
#include "engine/rdd.h"
// Callers must also include the Serde specializations for their element
// type: spatial_rdd/value_serde.h (scalars, strings, pairs) and/or
// core/st_serde.h (STObject).

namespace stark {

/// Writes every partition of \p rdd to `<directory>/part-<i>.bin` plus a
/// `_meta` file; T must have a Serde specialization.
template <typename T>
Status Checkpoint(const RDD<T>& rdd, const std::string& directory) {
  const auto parts = rdd.CollectPartitions();
  BinaryWriter meta;
  meta.WriteU32(0x53544350);  // "STCP"
  meta.WriteU64(parts.size());
  STARK_RETURN_NOT_OK(WriteFileBytes(directory + "/_meta", meta.buffer()));
  for (size_t p = 0; p < parts.size(); ++p) {
    BinaryWriter w;
    w.WriteU64(parts[p].size());
    for (const T& x : parts[p]) Serde<T>::Write(&w, x);
    STARK_RETURN_NOT_OK(WriteFileBytes(
        directory + "/part-" + std::to_string(p) + ".bin", w.buffer()));
  }
  return Status::OK();
}

/// Reads a checkpoint written by Checkpoint(), preserving the partition
/// structure.
template <typename T>
Result<RDD<T>> LoadCheckpoint(Context* ctx, const std::string& directory) {
  STARK_ASSIGN_OR_RETURN(std::vector<char> meta_buf,
                         ReadFileBytes(directory + "/_meta"));
  BinaryReader meta(meta_buf);
  STARK_ASSIGN_OR_RETURN(uint32_t magic, meta.ReadU32());
  if (magic != 0x53544350) {
    return Status::IOError("bad checkpoint magic in " + directory);
  }
  STARK_ASSIGN_OR_RETURN(uint64_t num_parts, meta.ReadU64());
  std::vector<std::vector<T>> parts(num_parts);
  for (uint64_t p = 0; p < num_parts; ++p) {
    STARK_ASSIGN_OR_RETURN(
        std::vector<char> buf,
        ReadFileBytes(directory + "/part-" + std::to_string(p) + ".bin"));
    BinaryReader r(buf);
    STARK_ASSIGN_OR_RETURN(uint64_t count, r.ReadU64());
    parts[p].reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      STARK_ASSIGN_OR_RETURN(T x, Serde<T>::Read(&r));
      parts[p].push_back(std::move(x));
    }
  }
  return MakeRDDFromPartitions(ctx, std::move(parts));
}

}  // namespace stark

#endif  // STARK_ENGINE_CHECKPOINT_H_
