/// \file checkpoint.h
/// Materializes an RDD to disk and reads it back — the engine-level
/// "store to HDFS" step of the paper's Figure-2 workflow (partitioned data
/// is persisted once and re-used by later programs), with the local
/// filesystem substituting for HDFS.
///
/// Format (version 2): `<directory>/_meta` is [magic "STCP"][u32 version]
/// [u64 num_parts]; each `<directory>/part-<i>.bin` is [magic "STPT"]
/// [u64 count][count serialized elements][u32 CRC-32 of all preceding
/// bytes]. The trailing checksum catches both truncation and bit flips, so
/// a damaged part is reported as a clean IOError instead of being
/// deserialized into garbage, and LoadCheckpointOrRecompute() can fall
/// back to recomputing the data from lineage (Spark's behaviour when a
/// checkpoint block is lost).
///
/// Both the write and the read path carry fault-injection sites
/// (`engine.checkpoint.write` / `engine.checkpoint.read`) and retry
/// per-part I/O under the context's RetryPolicy, so a transient injected
/// fault is invisible to callers while persistent corruption still fails.
#ifndef STARK_ENGINE_CHECKPOINT_H_
#define STARK_ENGINE_CHECKPOINT_H_

#include <cstring>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/serde.h"
#include "core/columnar.h"
#include "engine/rdd.h"
#include "fault/failpoint.h"
#include "fault/retry.h"
#include "obs/metrics.h"
// Callers must also include the Serde specializations for their element
// type: spatial_rdd/value_serde.h (scalars, strings, pairs) and/or
// core/st_serde.h (STObject).

namespace stark {

inline constexpr uint32_t kCheckpointMetaMagic = 0x53544350;  // "STCP"
inline constexpr uint32_t kCheckpointPartMagic = 0x53545054;  // "STPT"
/// Columnar part encoding: the STObject keys of a (STObject, V) element
/// vector go out as one ColumnarBatch slab block, followed by the packed
/// payload column — bulk memcpys instead of a per-object field walk.
inline constexpr uint32_t kCheckpointPartMagicColumnar = 0x53545043;  // "STPC"
inline constexpr uint32_t kCheckpointVersion = 2;

/// Detects the spatial element shape std::pair<STObject, V> that the
/// columnar checkpoint/shuffle encoding applies to.
template <typename T>
struct CheckpointSTPair : std::false_type {};
template <typename V>
struct CheckpointSTPair<std::pair<STObject, V>> : std::true_type {
  using Payload = V;
};

namespace checkpoint_internal {

inline std::string PartPath(const std::string& directory, uint64_t p) {
  return directory + "/part-" + std::to_string(p) + ".bin";
}

/// Runs the Status-returning \p fn up to \p attempts times, stopping on
/// the first success — per-part I/O retry for transient faults.
template <typename Fn>
Status RetryIo(size_t attempts, const Fn& fn) {
  Status status;
  for (size_t attempt = 1; attempt <= attempts; ++attempt) {
    status = fn();
    if (status.ok()) return status;
  }
  return status;
}

/// Decodes one part file: verifies the trailing CRC before trusting any
/// byte, then the magic and element count.
template <typename T>
Result<std::vector<T>> DecodeCheckpointPart(const std::vector<char>& buf,
                                            const std::string& path) {
  static obs::Counter* const crc_errors =
      obs::DefaultMetrics().GetCounter("engine.checkpoint.crc_errors");
  constexpr size_t kMinSize =
      sizeof(uint32_t) + sizeof(uint64_t) + sizeof(uint32_t);
  if (buf.size() < kMinSize) {
    crc_errors->Increment();
    return Status::IOError("truncated checkpoint part: " + path);
  }
  const size_t payload_size = buf.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, buf.data() + payload_size, sizeof(stored_crc));
  if (Crc32(buf.data(), payload_size) != stored_crc) {
    crc_errors->Increment();
    return Status::IOError("checkpoint part checksum mismatch (truncated or "
                           "corrupt): " +
                           path);
  }
  BinaryReader r(buf.data(), payload_size);
  STARK_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic == kCheckpointPartMagicColumnar) {
    if constexpr (CheckpointSTPair<T>::value) {
      using Payload = typename CheckpointSTPair<T>::Payload;
      STARK_ASSIGN_OR_RETURN(uint64_t count, r.ReadU64());
      STARK_ASSIGN_OR_RETURN(ColumnarBatch batch, ReadColumnarBatch(&r));
      if (batch.rows() != count) {
        return Status::IOError("columnar checkpoint part row mismatch: " +
                               path);
      }
      STARK_ASSIGN_OR_RETURN(std::vector<STObject> keys, batch.ToObjects());
      std::vector<T> out;
      out.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        STARK_ASSIGN_OR_RETURN(Payload v, Serde<Payload>::Read(&r));
        out.emplace_back(std::move(keys[i]), std::move(v));
      }
      if (!r.AtEnd()) {
        return Status::IOError("trailing bytes in checkpoint part: " + path);
      }
      return out;
    } else {
      return Status::IOError(
          "columnar checkpoint part for a non-spatial element type: " + path);
    }
  }
  if (magic != kCheckpointPartMagic) {
    return Status::IOError("bad checkpoint part magic in " + path);
  }
  STARK_ASSIGN_OR_RETURN(uint64_t count, r.ReadU64());
  std::vector<T> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    STARK_ASSIGN_OR_RETURN(T x, Serde<T>::Read(&r));
    out.push_back(std::move(x));
  }
  if (!r.AtEnd()) {
    return Status::IOError("trailing bytes in checkpoint part: " + path);
  }
  return out;
}

}  // namespace checkpoint_internal

/// Writes every partition of \p rdd to `<directory>/part-<i>.bin` plus a
/// `_meta` file; T must have a Serde specialization. Task failures while
/// evaluating the RDD and transient write faults are retried under the
/// context's RetryPolicy; a permanent failure is returned as a Status.
template <typename T>
Status Checkpoint(const RDD<T>& rdd, const std::string& directory) {
  static fault::FailPoint* const write_fp =
      fault::DefaultFailPoints().Get("engine.checkpoint.write");
  STARK_ASSIGN_OR_RETURN(const std::vector<std::vector<T>> parts,
                         rdd.TryCollectPartitions());
  const size_t attempts = rdd.ctx()->retry_policy().EffectiveAttempts();
  BinaryWriter meta;
  meta.WriteU32(kCheckpointMetaMagic);
  meta.WriteU32(kCheckpointVersion);
  meta.WriteU64(parts.size());
  STARK_RETURN_NOT_OK(checkpoint_internal::RetryIo(attempts, [&] {
    STARK_RETURN_NOT_OK(fault::MaybeStatus(write_fp));
    return WriteFileBytes(directory + "/_meta", meta.buffer());
  }));
  for (size_t p = 0; p < parts.size(); ++p) {
    BinaryWriter w;
    bool wrote_columnar = false;
    if constexpr (CheckpointSTPair<T>::value) {
      if (columnar::Enabled() && parts[p].size() <= UINT32_MAX) {
        using Payload = typename CheckpointSTPair<T>::Payload;
        w.WriteU32(kCheckpointPartMagicColumnar);
        w.WriteU64(parts[p].size());
        const ColumnarBatch batch = ColumnarBatch::Build(
            parts[p], [](const T& e) -> const STObject& { return e.first; });
        WriteColumnarBatch(&w, batch);
        for (const T& x : parts[p]) Serde<Payload>::Write(&w, x.second);
        GlobalColumnarMetrics().batches->Increment();
        wrote_columnar = true;
      }
    }
    if (!wrote_columnar) {
      w.WriteU32(kCheckpointPartMagic);
      w.WriteU64(parts[p].size());
      for (const T& x : parts[p]) Serde<T>::Write(&w, x);
    }
    const uint32_t crc = Crc32(w.buffer().data(), w.buffer().size());
    w.WriteU32(crc);
    STARK_RETURN_NOT_OK(checkpoint_internal::RetryIo(attempts, [&] {
      STARK_RETURN_NOT_OK(fault::MaybeStatus(write_fp));
      return WriteFileBytes(checkpoint_internal::PartPath(directory, p),
                            w.buffer());
    }));
  }
  return Status::OK();
}

/// Reads a checkpoint written by Checkpoint(), preserving the partition
/// structure. A truncated or bit-flipped part is detected by its checksum
/// and reported as a clean IOError (after the RetryPolicy's attempts, so
/// transient read faults recover but persistent damage does not loop).
template <typename T>
Result<RDD<T>> LoadCheckpoint(Context* ctx, const std::string& directory) {
  static fault::FailPoint* const read_fp =
      fault::DefaultFailPoints().Get("engine.checkpoint.read");
  const size_t attempts = ctx->retry_policy().EffectiveAttempts();
  STARK_ASSIGN_OR_RETURN(std::vector<char> meta_buf,
                         ReadFileBytes(directory + "/_meta"));
  BinaryReader meta(meta_buf);
  STARK_ASSIGN_OR_RETURN(uint32_t magic, meta.ReadU32());
  if (magic != kCheckpointMetaMagic) {
    return Status::IOError("bad checkpoint magic in " + directory);
  }
  STARK_ASSIGN_OR_RETURN(uint32_t version, meta.ReadU32());
  if (version != kCheckpointVersion) {
    return Status::IOError("unsupported checkpoint version " +
                           std::to_string(version) + " in " + directory);
  }
  STARK_ASSIGN_OR_RETURN(uint64_t num_parts, meta.ReadU64());
  std::vector<std::vector<T>> parts(num_parts);
  for (uint64_t p = 0; p < num_parts; ++p) {
    const std::string path = checkpoint_internal::PartPath(directory, p);
    Result<std::vector<T>> part = Status::UnknownError("unreachable");
    for (size_t attempt = 1; attempt <= attempts; ++attempt) {
      part = [&]() -> Result<std::vector<T>> {
        STARK_RETURN_NOT_OK(fault::MaybeStatus(read_fp));
        STARK_ASSIGN_OR_RETURN(std::vector<char> buf, ReadFileBytes(path));
        return checkpoint_internal::DecodeCheckpointPart<T>(buf, path);
      }();
      if (part.ok()) break;
    }
    STARK_ASSIGN_OR_RETURN(parts[p], std::move(part));
  }
  return MakeRDDFromPartitions(ctx, std::move(parts));
}

/// Loads the checkpoint at \p directory, falling back to recomputing
/// \p lineage when the checkpoint is missing, truncated or corrupt —
/// Spark's persist-and-reuse contract: damaged persisted data degrades to
/// a lineage recomputation, never to wrong results. On recovery the
/// checkpoint is rewritten (best effort) so the next reader finds a
/// healthy copy. Records engine.checkpoint.recovered.
template <typename T>
Result<RDD<T>> LoadCheckpointOrRecompute(Context* ctx,
                                         const std::string& directory,
                                         const RDD<T>& lineage) {
  static obs::Counter* const recovered =
      obs::DefaultMetrics().GetCounter("engine.checkpoint.recovered");
  static obs::Counter* const heal_failures =
      obs::DefaultMetrics().GetCounter("engine.checkpoint.heal_failures");
  Result<RDD<T>> loaded = LoadCheckpoint<T>(ctx, directory);
  if (loaded.ok()) return loaded;
  recovered->Increment();
  STARK_ASSIGN_OR_RETURN(std::vector<std::vector<T>> parts,
                         lineage.TryCollectPartitions());
  RDD<T> rdd = MakeRDDFromPartitions(ctx, std::move(parts));
  if (!Checkpoint(rdd, directory).ok()) heal_failures->Increment();
  return rdd;
}

}  // namespace stark

#endif  // STARK_ENGINE_CHECKPOINT_H_
