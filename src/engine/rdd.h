/// \file rdd.h
/// Lazy, lineage-based resilient-distributed-dataset abstraction — the
/// sparklet engine's equivalent of Spark's RDD. Transformations build a
/// lineage graph of RDDImpl nodes; actions evaluate all partitions in
/// parallel on the Context's worker pool.
#ifndef STARK_ENGINE_RDD_H_
#define STARK_ENGINE_RDD_H_

#include <functional>
#include <memory>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "common/rng.h"
#include "engine/context.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace stark {

/// Lineage node: computes the contents of one partition on demand.
template <typename T>
class RDDImpl {
 public:
  explicit RDDImpl(Context* ctx) : ctx_(ctx) { STARK_CHECK(ctx != nullptr); }
  virtual ~RDDImpl() = default;

  virtual size_t NumPartitions() const = 0;
  virtual std::vector<T> Compute(size_t partition) const = 0;

  Context* ctx() const { return ctx_; }

 private:
  Context* ctx_;
};

namespace engine_internal {

/// Materialized data, the leaf of every lineage graph.
template <typename T>
class CollectionRDD final : public RDDImpl<T> {
 public:
  CollectionRDD(Context* ctx, std::vector<std::vector<T>> partitions)
      : RDDImpl<T>(ctx), partitions_(std::move(partitions)) {}

  size_t NumPartitions() const override { return partitions_.size(); }
  std::vector<T> Compute(size_t p) const override { return partitions_[p]; }

 private:
  std::vector<std::vector<T>> partitions_;
};

template <typename T, typename U, typename F>
class MapRDD final : public RDDImpl<U> {
 public:
  MapRDD(std::shared_ptr<const RDDImpl<T>> parent, F fn)
      : RDDImpl<U>(parent->ctx()), parent_(std::move(parent)),
        fn_(std::move(fn)) {}

  size_t NumPartitions() const override { return parent_->NumPartitions(); }
  std::vector<U> Compute(size_t p) const override {
    std::vector<T> in = parent_->Compute(p);
    std::vector<U> out;
    out.reserve(in.size());
    for (auto& x : in) out.push_back(fn_(x));
    return out;
  }

 private:
  std::shared_ptr<const RDDImpl<T>> parent_;
  F fn_;
};

template <typename T, typename F>
class FilterRDD final : public RDDImpl<T> {
 public:
  FilterRDD(std::shared_ptr<const RDDImpl<T>> parent, F fn)
      : RDDImpl<T>(parent->ctx()), parent_(std::move(parent)),
        fn_(std::move(fn)) {}

  size_t NumPartitions() const override { return parent_->NumPartitions(); }
  std::vector<T> Compute(size_t p) const override {
    std::vector<T> in = parent_->Compute(p);
    std::vector<T> out;
    for (auto& x : in) {
      if (fn_(x)) out.push_back(std::move(x));
    }
    return out;
  }

 private:
  std::shared_ptr<const RDDImpl<T>> parent_;
  F fn_;
};

template <typename T, typename U, typename F>
class FlatMapRDD final : public RDDImpl<U> {
 public:
  FlatMapRDD(std::shared_ptr<const RDDImpl<T>> parent, F fn)
      : RDDImpl<U>(parent->ctx()), parent_(std::move(parent)),
        fn_(std::move(fn)) {}

  size_t NumPartitions() const override { return parent_->NumPartitions(); }
  std::vector<U> Compute(size_t p) const override {
    std::vector<T> in = parent_->Compute(p);
    std::vector<U> out;
    for (auto& x : in) {
      std::vector<U> ys = fn_(x);
      for (auto& y : ys) out.push_back(std::move(y));
    }
    return out;
  }

 private:
  std::shared_ptr<const RDDImpl<T>> parent_;
  F fn_;
};

/// fn(partition_index, partition_contents) -> new partition contents.
template <typename T, typename U, typename F>
class MapPartitionsRDD final : public RDDImpl<U> {
 public:
  MapPartitionsRDD(std::shared_ptr<const RDDImpl<T>> parent, F fn)
      : RDDImpl<U>(parent->ctx()), parent_(std::move(parent)),
        fn_(std::move(fn)) {}

  size_t NumPartitions() const override { return parent_->NumPartitions(); }
  std::vector<U> Compute(size_t p) const override {
    return fn_(p, parent_->Compute(p));
  }

 private:
  std::shared_ptr<const RDDImpl<T>> parent_;
  F fn_;
};

template <typename T>
class UnionRDD final : public RDDImpl<T> {
 public:
  UnionRDD(std::shared_ptr<const RDDImpl<T>> a,
           std::shared_ptr<const RDDImpl<T>> b)
      : RDDImpl<T>(a->ctx()), a_(std::move(a)), b_(std::move(b)) {}

  size_t NumPartitions() const override {
    return a_->NumPartitions() + b_->NumPartitions();
  }
  std::vector<T> Compute(size_t p) const override {
    if (p < a_->NumPartitions()) return a_->Compute(p);
    return b_->Compute(p - a_->NumPartitions());
  }

 private:
  std::shared_ptr<const RDDImpl<T>> a_;
  std::shared_ptr<const RDDImpl<T>> b_;
};

/// Skips whole partitions without ever computing them — the engine-level
/// hook behind STARK's partition-bound pruning (Spark's
/// PartitionPruningRDD). Pruned partitions yield an empty result.
template <typename T>
class PrunePartitionsRDD final : public RDDImpl<T> {
 public:
  PrunePartitionsRDD(std::shared_ptr<const RDDImpl<T>> parent,
                     std::function<bool(size_t)> keep)
      : RDDImpl<T>(parent->ctx()), parent_(std::move(parent)),
        keep_(std::move(keep)) {}

  size_t NumPartitions() const override { return parent_->NumPartitions(); }
  std::vector<T> Compute(size_t p) const override {
    static obs::Counter* const pruned =
        obs::DefaultMetrics().GetCounter("engine.partitions.pruned");
    if (!keep_(p)) {
      pruned->Increment();
      return {};
    }
    return parent_->Compute(p);
  }

 private:
  std::shared_ptr<const RDDImpl<T>> parent_;
  std::function<bool(size_t)> keep_;
};

/// Computes each parent partition at most once and keeps the result, like
/// Spark's MEMORY-persisted RDDs.
template <typename T>
class CacheRDD final : public RDDImpl<T> {
 public:
  explicit CacheRDD(std::shared_ptr<const RDDImpl<T>> parent)
      : RDDImpl<T>(parent->ctx()), parent_(std::move(parent)),
        slots_(parent_->NumPartitions()) {}

  size_t NumPartitions() const override { return parent_->NumPartitions(); }
  std::vector<T> Compute(size_t p) const override {
    static obs::Counter* const hits =
        obs::DefaultMetrics().GetCounter("engine.cache.hits");
    static obs::Counter* const misses =
        obs::DefaultMetrics().GetCounter("engine.cache.misses");
    static fault::FailPoint* const cache_fp =
        fault::DefaultFailPoints().Get("engine.cache.materialize");
    Slot& slot = slots_[p];
    bool computed = false;
    // An injected (or real) failure propagates out of call_once without
    // setting the flag, so a retried task re-materializes the partition —
    // the cache never latches a half-built slot.
    std::call_once(slot.once, [&] {
      fault::MaybeThrow(cache_fp);
      slot.data = parent_->Compute(p);
      computed = true;
    });
    (computed ? misses : hits)->Increment();
    return slot.data;
  }

 private:
  struct Slot {
    std::once_flag once;
    std::vector<T> data;
  };
  std::shared_ptr<const RDDImpl<T>> parent_;
  mutable std::vector<Slot> slots_;
};

}  // namespace engine_internal

/// \brief User-facing RDD handle (cheap to copy; shares the lineage node).
template <typename T>
class RDD {
 public:
  using ElementType = T;

  RDD() = default;
  explicit RDD(std::shared_ptr<const RDDImpl<T>> impl)
      : impl_(std::move(impl)) {}

  bool Valid() const { return impl_ != nullptr; }
  Context* ctx() const { return impl_->ctx(); }
  size_t NumPartitions() const { return impl_->NumPartitions(); }

  /// Computes the contents of one partition (used by multi-RDD operators
  /// such as the spatial join; combine with Cache() to avoid recomputation).
  std::vector<T> ComputePartition(size_t p) const { return impl_->Compute(p); }

  // ---- Transformations (lazy) -------------------------------------------

  /// Element-wise transform, like Spark's `map`.
  template <typename F>
  auto Map(F fn) const {
    using U = std::invoke_result_t<F, T&>;
    return RDD<U>(std::make_shared<engine_internal::MapRDD<T, U, F>>(
        impl_, std::move(fn)));
  }

  /// Keeps elements for which \p fn returns true.
  template <typename F>
  RDD<T> Filter(F fn) const {
    return RDD<T>(std::make_shared<engine_internal::FilterRDD<T, F>>(
        impl_, std::move(fn)));
  }

  /// Element to zero-or-more elements; \p fn returns a std::vector.
  template <typename F>
  auto FlatMap(F fn) const {
    using Vec = std::invoke_result_t<F, T&>;
    using U = typename Vec::value_type;
    return RDD<U>(std::make_shared<engine_internal::FlatMapRDD<T, U, F>>(
        impl_, std::move(fn)));
  }

  /// Whole-partition transform: fn(partition_index, std::vector<T>) must
  /// return the new partition contents (any element type).
  template <typename F>
  auto MapPartitionsWithIndex(F fn) const {
    using Vec = std::invoke_result_t<F, size_t, std::vector<T>>;
    using U = typename Vec::value_type;
    return RDD<U>(
        std::make_shared<engine_internal::MapPartitionsRDD<T, U, F>>(
            impl_, std::move(fn)));
  }

  /// Concatenation of the two datasets' partition lists.
  RDD<T> Union(const RDD<T>& other) const {
    return RDD<T>(std::make_shared<engine_internal::UnionRDD<T>>(
        impl_, other.impl_));
  }

  /// Marks this RDD as cached: each partition is computed at most once.
  RDD<T> Cache() const {
    return RDD<T>(std::make_shared<engine_internal::CacheRDD<T>>(impl_));
  }

  /// Skips partitions for which \p keep returns false without computing
  /// them (Spark's PartitionPruningRDD; partition count is preserved).
  RDD<T> PrunePartitions(std::function<bool(size_t)> keep) const {
    return RDD<T>(std::make_shared<engine_internal::PrunePartitionsRDD<T>>(
        impl_, std::move(keep)));
  }

  /// Bernoulli sample of roughly `fraction` of the elements; deterministic
  /// for a given seed (each partition derives its own stream).
  RDD<T> Sample(double fraction, uint64_t seed = 42) const {
    return MapPartitionsWithIndex(
        [fraction, seed](size_t idx, std::vector<T> part) {
          Rng rng(seed * 1315423911u + idx);
          std::vector<T> out;
          for (auto& x : part) {
            if (rng.Bernoulli(fraction)) out.push_back(std::move(x));
          }
          return out;
        });
  }

  // ---- Shuffles (eager, like a Spark stage boundary) --------------------

  /// Reassigns every element to the partition returned by \p target
  /// (which must be < \p num_partitions). Materializes the shuffle.
  RDD<T> PartitionBy(size_t num_partitions,
                     const std::function<size_t(const T&)>& target) const {
    STARK_CHECK(num_partitions >= 1);
    static obs::Counter* const shuffle_records =
        obs::DefaultMetrics().GetCounter("engine.shuffle.records");
    static obs::Counter* const shuffles =
        obs::DefaultMetrics().GetCounter("engine.shuffles");
    static fault::FailPoint* const shuffle_fp =
        fault::DefaultFailPoints().Get("engine.shuffle.route");
    shuffles->Increment();
    const size_t in_parts = NumPartitions();
    // Route each input partition into per-target buckets in parallel...
    // (Each attempt rebuilds its buckets from the lineage and the metric
    // Add happens after routing succeeds, so a retried map task neither
    // duplicates data nor double-counts records.)
    std::vector<std::vector<std::vector<T>>> routed(in_parts);
    ctx()->RunTasks("rdd.shuffle.map", in_parts, [&](size_t p) {
      fault::MaybeThrow(shuffle_fp);
      std::vector<std::vector<T>> buckets(num_partitions);
      std::vector<T> in = impl_->Compute(p);
      if (obs::TaskSpan* span = obs::CurrentTaskSpan()) {
        span->records_in = in.size();
        span->records_out = in.size();
        span->bytes = in.size() * sizeof(T);
      }
      for (auto& x : in) {
        const size_t t = target(x);
        STARK_DCHECK(t < num_partitions);
        buckets[t].push_back(std::move(x));
      }
      shuffle_records->Add(in.size());
      routed[p] = std::move(buckets);
    });
    // ...then concatenate the buckets per target partition.
    std::vector<std::vector<T>> out(num_partitions);
    for (size_t t = 0; t < num_partitions; ++t) {
      size_t total = 0;
      for (size_t p = 0; p < in_parts; ++p) total += routed[p][t].size();
      out[t].reserve(total);
      for (size_t p = 0; p < in_parts; ++p) {
        for (auto& x : routed[p][t]) out[t].push_back(std::move(x));
        routed[p][t].clear();
      }
    }
    return RDD<T>(std::make_shared<engine_internal::CollectionRDD<T>>(
        ctx(), std::move(out)));
  }

  /// Rebalances into \p num_partitions equal chunks (round-robin).
  RDD<T> Repartition(size_t num_partitions) const {
    std::vector<T> all = Collect();
    return MakeRDD(ctx(), std::move(all), num_partitions);
  }

  /// Pairs every element with a globally unique, stable index.
  RDD<std::pair<T, size_t>> ZipWithIndex() const {
    std::vector<std::vector<T>> parts = CollectPartitions();
    std::vector<std::vector<std::pair<T, size_t>>> out(parts.size());
    size_t next = 0;
    for (size_t p = 0; p < parts.size(); ++p) {
      out[p].reserve(parts[p].size());
      for (auto& x : parts[p]) out[p].emplace_back(std::move(x), next++);
    }
    return RDD<std::pair<T, size_t>>(
        std::make_shared<engine_internal::CollectionRDD<std::pair<T, size_t>>>(
            ctx(), std::move(out)));
  }

  // ---- Actions (trigger evaluation) --------------------------------------
  //
  // Each action has a Status-returning Try* form and a throwing
  // value-returning form. A task that keeps failing after the context's
  // RetryPolicy is exhausted surfaces as a non-OK Result from Try*; the
  // plain forms throw the same failure as a StatusError on the driver
  // thread (never through the worker pool).

  /// Evaluates and returns all partitions, in partition order.
  Result<std::vector<std::vector<T>>> TryCollectPartitions() const {
    const size_t n = NumPartitions();
    std::vector<std::vector<T>> parts(n);
    STARK_RETURN_NOT_OK(ctx()->TryRunTasks("rdd.collect", n, [&](size_t p) {
      parts[p] = impl_->Compute(p);
      if (obs::TaskSpan* span = obs::CurrentTaskSpan()) {
        span->records_in = parts[p].size();
        span->records_out = parts[p].size();
      }
    }));
    return parts;
  }

  std::vector<std::vector<T>> CollectPartitions() const {
    Result<std::vector<std::vector<T>>> parts = TryCollectPartitions();
    if (!parts.ok()) throw StatusError(parts.status());
    return std::move(parts).ValueOrDie();
  }

  /// Evaluates and concatenates all partitions.
  Result<std::vector<T>> TryCollect() const {
    STARK_ASSIGN_OR_RETURN(std::vector<std::vector<T>> parts,
                           TryCollectPartitions());
    size_t total = 0;
    for (const auto& part : parts) total += part.size();
    std::vector<T> out;
    out.reserve(total);
    for (auto& part : parts) {
      for (auto& x : part) out.push_back(std::move(x));
    }
    return out;
  }

  std::vector<T> Collect() const {
    Result<std::vector<T>> out = TryCollect();
    if (!out.ok()) throw StatusError(out.status());
    return std::move(out).ValueOrDie();
  }

  /// Number of elements.
  Result<size_t> TryCount() const {
    const size_t n = NumPartitions();
    std::vector<size_t> counts(n, 0);
    STARK_RETURN_NOT_OK(ctx()->TryRunTasks("rdd.count", n, [&](size_t p) {
      counts[p] = impl_->Compute(p).size();
      if (obs::TaskSpan* span = obs::CurrentTaskSpan()) {
        span->records_in = counts[p];
        span->records_out = 1;
      }
    }));
    size_t total = 0;
    for (size_t c : counts) total += c;
    return total;
  }

  size_t Count() const {
    Result<size_t> count = TryCount();
    if (!count.ok()) throw StatusError(count.status());
    return count.ValueOrDie();
  }

  /// Folds all elements with \p fn starting from \p init (fn must be
  /// associative and commutative, as in Spark).
  template <typename F>
  T Fold(T init, F fn) const {
    const size_t n = NumPartitions();
    std::vector<T> partials(n, init);
    ctx()->RunTasks("rdd.fold", n, [&](size_t p) {
      std::vector<T> items = impl_->Compute(p);
      if (obs::TaskSpan* span = obs::CurrentTaskSpan()) {
        span->records_in = items.size();
        span->records_out = 1;
      }
      T acc = init;
      for (auto& x : items) acc = fn(acc, x);
      partials[p] = std::move(acc);
    });
    T acc = init;
    for (auto& x : partials) acc = fn(acc, x);
    return acc;
  }

  /// First \p n elements in partition order.
  std::vector<T> Take(size_t n) const {
    std::vector<T> out;
    for (size_t p = 0; p < NumPartitions() && out.size() < n; ++p) {
      std::vector<T> part = impl_->Compute(p);
      for (auto& x : part) {
        if (out.size() >= n) break;
        out.push_back(std::move(x));
      }
    }
    return out;
  }

  const std::shared_ptr<const RDDImpl<T>>& impl() const { return impl_; }

 private:
  std::shared_ptr<const RDDImpl<T>> impl_;
};

/// Creates an RDD from in-memory data split into \p num_partitions chunks
/// (0 = the context's default parallelism) — Spark's `parallelize`.
template <typename T>
RDD<T> MakeRDD(Context* ctx, std::vector<T> data, size_t num_partitions = 0) {
  const size_t n =
      num_partitions != 0 ? num_partitions : ctx->default_parallelism();
  std::vector<std::vector<T>> parts(n);
  const size_t chunk = (data.size() + n - 1) / std::max<size_t>(n, 1);
  size_t i = 0;
  for (size_t p = 0; p < n && i < data.size(); ++p) {
    const size_t end = std::min(i + chunk, data.size());
    parts[p].reserve(end - i);
    for (; i < end; ++i) parts[p].push_back(std::move(data[i]));
  }
  return RDD<T>(std::make_shared<engine_internal::CollectionRDD<T>>(
      ctx, std::move(parts)));
}

/// Creates an RDD directly from pre-built partitions.
template <typename T>
RDD<T> MakeRDDFromPartitions(Context* ctx,
                             std::vector<std::vector<T>> partitions) {
  return RDD<T>(std::make_shared<engine_internal::CollectionRDD<T>>(
      ctx, std::move(partitions)));
}

}  // namespace stark

#endif  // STARK_ENGINE_RDD_H_
