/// \file pair_rdd.h
/// Key-value operations over RDDs of pairs — sparklet's counterpart of
/// Spark's PairRDDFunctions (the class whose implicit-conversion pattern
/// STARK's SpatialRDDFunctions mirrors, §2.3). Includes map-side combining
/// for ReduceByKey, exactly like Spark.
#ifndef STARK_ENGINE_PAIR_RDD_H_
#define STARK_ENGINE_PAIR_RDD_H_

#include <algorithm>
#include <functional>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/rdd.h"
#include "fault/failpoint.h"
#include "obs/trace.h"

namespace stark {

/// Merges values per key with an associative, commutative \p combine.
/// Values are pre-combined inside each input partition (map-side combine)
/// before the shuffle, like Spark's reduceByKey.
template <typename K, typename V, typename F>
RDD<std::pair<K, V>> ReduceByKey(const RDD<std::pair<K, V>>& rdd, F combine,
                                 size_t num_partitions = 0) {
  obs::ScopedSpan span(rdd.ctx()->tracer(), "pair_rdd.reduce_by_key");
  const size_t targets =
      num_partitions != 0 ? num_partitions : rdd.ctx()->default_parallelism();
  // Map-side combine.
  RDD<std::pair<K, V>> combined = rdd.MapPartitionsWithIndex(
      [combine](size_t, std::vector<std::pair<K, V>> part) {
        std::map<K, V> acc;
        for (auto& [k, v] : part) {
          auto it = acc.find(k);
          if (it == acc.end()) {
            acc.emplace(std::move(k), std::move(v));
          } else {
            it->second = combine(std::move(it->second), std::move(v));
          }
        }
        std::vector<std::pair<K, V>> out;
        out.reserve(acc.size());
        for (auto& [k, v] : acc) out.emplace_back(k, std::move(v));
        return out;
      });
  // Shuffle by key hash, then final merge per partition. The merge task
  // carries the engine.shuffle.reduce injection site; its accumulator is
  // rebuilt from the shuffled input on every attempt, so a retried merge
  // is idempotent.
  RDD<std::pair<K, V>> shuffled =
      combined.PartitionBy(targets, [targets](const std::pair<K, V>& kv) {
        return std::hash<K>{}(kv.first) % targets;
      });
  return shuffled.MapPartitionsWithIndex(
      [combine](size_t, std::vector<std::pair<K, V>> part) {
        static fault::FailPoint* const reduce_fp =
            fault::DefaultFailPoints().Get("engine.shuffle.reduce");
        fault::MaybeThrow(reduce_fp);
        std::map<K, V> acc;
        for (auto& [k, v] : part) {
          auto it = acc.find(k);
          if (it == acc.end()) {
            acc.emplace(std::move(k), std::move(v));
          } else {
            it->second = combine(std::move(it->second), std::move(v));
          }
        }
        std::vector<std::pair<K, V>> out;
        out.reserve(acc.size());
        for (auto& [k, v] : acc) out.emplace_back(k, std::move(v));
        return out;
      });
}

/// Groups all values per key (full shuffle; no combining possible).
template <typename K, typename V>
RDD<std::pair<K, std::vector<V>>> GroupByKey(const RDD<std::pair<K, V>>& rdd,
                                             size_t num_partitions = 0) {
  obs::ScopedSpan span(rdd.ctx()->tracer(), "pair_rdd.group_by_key");
  const size_t targets =
      num_partitions != 0 ? num_partitions : rdd.ctx()->default_parallelism();
  RDD<std::pair<K, V>> shuffled =
      rdd.PartitionBy(targets, [targets](const std::pair<K, V>& kv) {
        return std::hash<K>{}(kv.first) % targets;
      });
  return shuffled.MapPartitionsWithIndex(
      [](size_t, std::vector<std::pair<K, V>> part) {
        std::map<K, std::vector<V>> groups;
        for (auto& [k, v] : part) groups[k].push_back(std::move(v));
        std::vector<std::pair<K, std::vector<V>>> out;
        out.reserve(groups.size());
        for (auto& [k, vs] : groups) out.emplace_back(k, std::move(vs));
        return out;
      });
}

/// Element count per key, returned to the driver (Spark's countByKey).
template <typename K, typename V>
std::map<K, size_t> CountByKey(const RDD<std::pair<K, V>>& rdd) {
  auto ones = rdd.Map([](std::pair<K, V>& kv) {
    return std::pair<K, size_t>(std::move(kv.first), 1);
  });
  std::map<K, size_t> out;
  for (auto& [k, count] :
       ReduceByKey(ones, [](size_t a, size_t b) { return a + b; }).Collect()) {
    out.emplace(std::move(k), count);
  }
  return out;
}

/// Removes duplicate elements (hash shuffle + per-partition sort/unique).
template <typename T>
RDD<T> Distinct(const RDD<T>& rdd, size_t num_partitions = 0) {
  obs::ScopedSpan span(rdd.ctx()->tracer(), "pair_rdd.distinct");
  const size_t targets =
      num_partitions != 0 ? num_partitions : rdd.ctx()->default_parallelism();
  RDD<T> shuffled = rdd.PartitionBy(targets, [targets](const T& x) {
    return std::hash<T>{}(x) % targets;
  });
  return shuffled.MapPartitionsWithIndex(
      [](size_t, std::vector<T> part) {
        std::sort(part.begin(), part.end());
        part.erase(std::unique(part.begin(), part.end()), part.end());
        return part;
      });
}

/// Globally sorts by \p key_of into \p num_partitions range partitions
/// (ascending). The key extractor must be deterministic.
template <typename T, typename KeyOf>
RDD<T> SortBy(const RDD<T>& rdd, KeyOf key_of, size_t num_partitions = 0) {
  const size_t targets =
      num_partitions != 0 ? num_partitions : rdd.ctx()->default_parallelism();
  std::vector<T> all = rdd.Collect();
  std::sort(all.begin(), all.end(), [&key_of](const T& a, const T& b) {
    return key_of(a) < key_of(b);
  });
  return MakeRDD(rdd.ctx(), std::move(all), targets);
}

}  // namespace stark

#endif  // STARK_ENGINE_PAIR_RDD_H_
