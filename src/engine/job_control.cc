#include "engine/job_control.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace stark {

namespace {

thread_local TaskContext* current_task_context = nullptr;

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<uint64_t>(v);
}

double EnvDouble(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return v;
}

}  // namespace

SpeculationPolicy SpeculationPolicy::FromEnv() {
  SpeculationPolicy policy;
  policy.enabled = EnvU64("STARK_SPECULATION", 0) != 0;
  policy.quantile = EnvDouble("STARK_SPECULATION_QUANTILE", policy.quantile);
  policy.multiplier =
      EnvDouble("STARK_SPECULATION_MULTIPLIER", policy.multiplier);
  policy.min_task_ms =
      EnvU64("STARK_SPECULATION_MIN_TASK_MS", policy.min_task_ms);
  policy.quantile = std::min(1.0, std::max(0.0, policy.quantile));
  policy.multiplier = std::max(1.0, policy.multiplier);
  return policy;
}

JobControl::JobControl(size_t num_tasks, uint64_t deadline_ms,
                       std::shared_ptr<CancelToken> token, uint64_t generation,
                       int priority)
    : num_tasks_(num_tasks),
      generation_(generation),
      priority_(priority),
      deadline_ms_(deadline_ms),
      has_deadline_(deadline_ms > 0),
      deadline_(std::chrono::steady_clock::now() +
                std::chrono::milliseconds(deadline_ms)),
      token_(std::move(token)),
      tasks_(num_tasks),
      remaining_(num_tasks) {}

bool JobControl::ShouldStop() {
  if (cancelled_.load(std::memory_order_seq_cst)) return true;
  if (token_ != nullptr && token_->requested()) {
    Cancel(Status::Cancelled("job cancelled by caller"));
    return true;
  }
  if (DeadlinePassed()) {
    Cancel(Status::DeadlineExceeded("job deadline of " +
                                    std::to_string(deadline_ms_) +
                                    "ms exceeded"));
    return true;
  }
  return false;
}

void JobControl::Cancel(Status reason) {
  STARK_CHECK(!reason.ok());
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!cancelled_.load(std::memory_order_relaxed)) {
      cancel_status_ = std::move(reason);
    }
    // seq_cst store orders the cancel flag against task-copy claim CASes:
    // either the driver's settle-wait sees the claim, or the copy's
    // post-claim stop check sees the cancel — never neither.
    cancelled_.store(true, std::memory_order_seq_cst);
  }
  cv_.notify_all();
}

Status JobControl::cancel_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cancel_status_;
}

Status JobControl::first_failure() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_failure_;
}

void JobControl::FailJob(Status failure) {
  STARK_CHECK(!failure.ok());
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_failure_.ok()) first_failure_ = failure;
  }
  // Cancel the remainder of the job with the failure as the reason: queued
  // tasks skip instead of running work whose job already failed.
  Cancel(std::move(failure));
}

bool JobControl::ClaimTask(size_t p, uint32_t copy) {
  STARK_CHECK(p < num_tasks_ && copy != 0);
  uint32_t expected = 0;
  if (tasks_[p].owner.compare_exchange_strong(expected, copy,
                                              std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++claimed_open_;
    return true;
  }
  return expected == copy;  // re-claim across retry attempts
}

void JobControl::EndClaimedRun() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    STARK_CHECK(claimed_open_ > 0);
    --claimed_open_;
  }
  cv_.notify_all();
}

void JobControl::RecordTaskStart(size_t p) {
  STARK_CHECK(p < num_tasks_);
  uint64_t expected = 0;
  const uint64_t now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  tasks_[p].start_ns.compare_exchange_strong(expected, now,
                                             std::memory_order_relaxed);
}

bool JobControl::TaskDone(size_t p) const {
  STARK_CHECK(p < num_tasks_);
  return tasks_[p].done.load(std::memory_order_acquire);
}

bool JobControl::OwnsTask(size_t p, uint32_t copy) const {
  STARK_CHECK(p < num_tasks_);
  return tasks_[p].owner.load(std::memory_order_seq_cst) == copy;
}

bool JobControl::CompleteTask(size_t p, uint64_t duration_ns,
                              bool record_duration) {
  STARK_CHECK(p < num_tasks_);
  if (tasks_[p].done.exchange(true, std::memory_order_acq_rel)) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    STARK_CHECK(remaining_ > 0);
    --remaining_;
    if (record_duration) completed_ns_.push_back(duration_ns);
  }
  cv_.notify_all();
  return true;
}

std::vector<uint64_t> JobControl::CompletedDurations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_ns_;
}

bool JobControl::AllDone() const {
  std::lock_guard<std::mutex> lock(mu_);
  return remaining_ == 0;
}

bool JobControl::WaitSettledFor(std::chrono::nanoseconds d) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, d, [this] {
    if (remaining_ == 0) return true;
    return cancelled_.load(std::memory_order_seq_cst) && claimed_open_ == 0;
  });
}

std::vector<size_t> JobControl::SpeculationCandidates(
    const SpeculationPolicy& policy) {
  std::vector<size_t> candidates;
  if (!policy.enabled || num_tasks_ < 2) return candidates;
  if (cancelled_.load(std::memory_order_relaxed)) return candidates;

  uint64_t median_ns = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t completed = num_tasks_ - remaining_;
    const size_t needed = std::max<size_t>(
        1, static_cast<size_t>(policy.quantile *
                               static_cast<double>(num_tasks_)));
    if (completed < needed || completed_ns_.empty()) return candidates;
    std::vector<uint64_t> durations = completed_ns_;
    const size_t mid = durations.size() / 2;
    std::nth_element(durations.begin(), durations.begin() + mid,
                     durations.end());
    median_ns = durations[mid];
  }

  const uint64_t threshold_ns = std::max(
      static_cast<uint64_t>(policy.multiplier *
                            static_cast<double>(median_ns)),
      static_cast<uint64_t>(policy.min_task_ms) * 1'000'000u);
  const uint64_t now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  for (size_t p = 0; p < num_tasks_; ++p) {
    TaskState& t = tasks_[p];
    if (t.done.load(std::memory_order_acquire)) continue;
    if (t.speculated.load(std::memory_order_relaxed)) continue;
    const uint64_t started = t.start_ns.load(std::memory_order_relaxed);
    if (started == 0 || now <= started || now - started <= threshold_ns) {
      continue;
    }
    if (t.speculated.exchange(true, std::memory_order_relaxed)) continue;
    candidates.push_back(p);
  }
  return candidates;
}

Status TaskContext::CheckCancelled() const {
  if (!control_->ShouldStop()) return Status::OK();
  Status reason = control_->cancel_status();
  if (reason.ok()) reason = Status::Cancelled("job cancelled");
  return reason;
}

void TaskContext::ThrowIfCancelled() const {
  Status status = CheckCancelled();
  if (!status.ok()) throw StatusError(std::move(status));
}

TaskContext* CurrentTaskContext() { return current_task_context; }

CurrentTaskContextScope::CurrentTaskContextScope(TaskContext* ctx)
    : previous_(current_task_context) {
  current_task_context = ctx;
}

CurrentTaskContextScope::~CurrentTaskContextScope() {
  current_task_context = previous_;
}

}  // namespace stark
