#include "core/distance.h"

namespace stark {

double EuclideanDistance(const STObject& a, const STObject& b) {
  return Distance(a.geo(), b.geo());
}

double ManhattanDistance(const STObject& a, const STObject& b) {
  const Coordinate ca = a.Centroid();
  const Coordinate cb = b.Centroid();
  return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
}

double HaversineDistanceKm(const STObject& a, const STObject& b) {
  constexpr double kEarthRadiusKm = 6371.0088;
  constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
  const Coordinate ca = a.Centroid();
  const Coordinate cb = b.Centroid();
  const double lat1 = ca.y * kDegToRad;
  const double lat2 = cb.y * kDegToRad;
  const double dlat = (cb.y - ca.y) * kDegToRad;
  const double dlon = (cb.x - ca.x) * kDegToRad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double TemporalDistance(const STObject& a, const STObject& b) {
  if (!a.HasTime() || !b.HasTime()) return 0.0;
  return static_cast<double>(a.time()->Distance(*b.time()));
}

DistanceFunction CombinedDistance(DistanceFunction spatial,
                                  double spatial_weight,
                                  double temporal_weight) {
  return [spatial = std::move(spatial), spatial_weight, temporal_weight](
             const STObject& a, const STObject& b) {
    return spatial_weight * spatial(a, b) +
           temporal_weight * TemporalDistance(a, b);
  };
}

}  // namespace stark
