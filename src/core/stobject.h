/// \file stobject.h
/// STObject — the paper's central data type: a spatial geometry plus an
/// optional temporal component (§2.3).
#ifndef STARK_CORE_STOBJECT_H_
#define STARK_CORE_STOBJECT_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/result.h"
#include "geometry/geometry.h"
#include "geometry/predicates.h"
#include "temporal/interval.h"

namespace stark {

/// \brief Spatio-temporal object with two fields, exactly as in the paper:
/// (1) `geo`, the spatial attribute, and (2) an optional `time` field.
///
/// The combined predicates implement the paper's formula (1)-(3): a
/// predicate holds iff the spatial predicate holds AND either both temporal
/// components are undefined, or both are defined and the temporal predicate
/// holds as well. A defined/undefined mix is always false.
class STObject {
 public:
  /// Spatial-only object.
  explicit STObject(Geometry geo) : geo_(std::move(geo)) {}

  /// Object valid at a single instant.
  STObject(Geometry geo, Instant time)
      : geo_(std::move(geo)), time_(TemporalInterval(time)) {}

  /// Object valid over a closed interval [begin, end].
  STObject(Geometry geo, Instant begin, Instant end)
      : geo_(std::move(geo)), time_(TemporalInterval(begin, end)) {}

  STObject(Geometry geo, std::optional<TemporalInterval> time)
      : geo_(std::move(geo)), time_(std::move(time)) {}

  /// Parses the spatial component from WKT; mirrors `STObject(wkt, time)`
  /// from the paper's Scala example.
  static Result<STObject> FromWkt(std::string_view wkt);
  static Result<STObject> FromWkt(std::string_view wkt, Instant time);
  static Result<STObject> FromWkt(std::string_view wkt, Instant begin,
                                  Instant end);

  const Geometry& geo() const { return geo_; }
  const std::optional<TemporalInterval>& time() const { return time_; }
  bool HasTime() const { return time_.has_value(); }

  /// Bounding rectangle of the spatial component.
  const Envelope& envelope() const { return geo_.envelope(); }

  /// Centroid of the spatial component (partition assignment point, §2.1).
  Coordinate Centroid() const { return geo_.Centroid(); }

  // -- Combined spatio-temporal predicates (paper formula (1)-(3)) --------

  /// True iff this and \p o intersect spatially and temporally.
  bool Intersects(const STObject& o) const {
    return CombinedPredicate(o, stark::Intersects(geo_, o.geo_),
                             TemporalPredicate::kIntersects);
  }

  /// True iff this object completely contains \p o (space and time).
  bool Contains(const STObject& o) const {
    return CombinedPredicate(o, stark::Contains(geo_, o.geo_),
                             TemporalPredicate::kContains);
  }

  /// Reverse of Contains, as in the paper's API.
  bool ContainedBy(const STObject& o) const { return o.Contains(*this); }

  bool operator==(const STObject& o) const {
    return geo_ == o.geo_ && time_ == o.time_;
  }

  std::string ToString() const;

 private:
  bool CombinedPredicate(const STObject& o, bool spatial_holds,
                         TemporalPredicate temporal_pred) const {
    if (!spatial_holds) return false;
    if (!time_.has_value() && !o.time_.has_value()) return true;   // (2)
    if (time_.has_value() && o.time_.has_value()) {                // (3)
      return EvalTemporalPredicate(temporal_pred, *time_, *o.time_);
    }
    return false;  // defined/undefined mix
  }

  Geometry geo_;
  std::optional<TemporalInterval> time_;
};

}  // namespace stark

#endif  // STARK_CORE_STOBJECT_H_
