#include "core/stobject.h"

#include "geometry/wkt.h"

namespace stark {

Result<STObject> STObject::FromWkt(std::string_view wkt) {
  STARK_ASSIGN_OR_RETURN(Geometry geo, ParseWkt(wkt));
  return STObject(std::move(geo));
}

Result<STObject> STObject::FromWkt(std::string_view wkt, Instant time) {
  STARK_ASSIGN_OR_RETURN(Geometry geo, ParseWkt(wkt));
  return STObject(std::move(geo), time);
}

Result<STObject> STObject::FromWkt(std::string_view wkt, Instant begin,
                                   Instant end) {
  STARK_ASSIGN_OR_RETURN(Geometry geo, ParseWkt(wkt));
  return STObject(std::move(geo), begin, end);
}

std::string STObject::ToString() const {
  std::string s = "STObject(" + geo_.ToWkt();
  if (time_.has_value()) {
    s += ", " + time_->ToString();
  }
  s += ")";
  return s;
}

}  // namespace stark
