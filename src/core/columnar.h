/// \file columnar.h
/// Columnar partition representation: one ColumnarBatch holds a partition's
/// STObjects as structure-of-arrays slabs — representative-point coordinate
/// arrays, timestamp arrays, per-row envelope min/max slabs, an
/// offsets-based vertex array for non-point geometries, and a row-id column
/// — so the filter/join hot paths scan dense cache lines instead of
/// pointer-chasing heap objects (Thrill-style flat data plane, ROADMAP
/// item 5).
///
/// Round-trip contract: Append/FromObjects followed by ToObjects
/// reconstructs every object bit-identically through the same Geometry
/// factories the existing serde path uses — NaN coordinate bits, the empty
/// envelope sentinel (min=+inf/max=-inf), degenerate rings, and optional
/// time all survive. tests/columnar_test.cc enforces this over the fuzz
/// generators by comparing serialized bytes (STObject::operator== is
/// NaN-blind).
///
/// The slab serde (WriteColumnarBatch/ReadColumnarBatch) writes each column
/// as one length-prefixed contiguous block, so saving or loading a columnar
/// partition is a handful of memcpys instead of a per-object field walk.
#ifndef STARK_CORE_COLUMNAR_H_
#define STARK_CORE_COLUMNAR_H_

#include <cstdint>
#include <vector>

#include "common/serde.h"
#include "core/stobject.h"
#include "geometry/kernels.h"
#include "obs/metrics.h"

namespace stark {

namespace columnar {

/// Kill-switch: false when the environment sets STARK_COLUMNAR=0 (or
/// "false"/"off"), true otherwise. Read once, then cached; SetEnabled
/// overrides at runtime. Every columnar fast path consults this so the
/// per-object path stays one env var away for differential debugging.
bool Enabled();

/// Runtime override of the kill-switch (benches toggle it to time both
/// paths in one process). Thread-safe; affects subsequently started tasks.
void SetEnabled(bool enabled);

}  // namespace columnar

/// \brief SoA slab container for one batch/partition of STObjects.
///
/// Row layout: every row has a type tag, a representative point (the
/// coordinate itself for point rows, the first vertex otherwise), a
/// has_time flag with start/end ticks, and an envelope entry in the
/// EnvelopeSoA slab. Non-point rows additionally own a range of the
/// flattened vertex arrays via vertex_offsets, with structure described by
/// the tiling ladder part_offsets -> part_ring_offsets -> ring_offsets:
/// every non-point row contributes parts and vertex runs (a polygon part
/// holds one run per ring; a linestring/multipoint row is one part holding
/// its whole vertex list as a single run), so each level always starts
/// where the previous entry ends. Point rows keep their coordinate
/// only in x/y, so the dominant all-points case stores each coordinate
/// exactly once.
class ColumnarBatch {
 public:
  ColumnarBatch() = default;

  /// Builds a batch from \p objects with row_ids 0..n-1.
  static ColumnarBatch FromObjects(const std::vector<STObject>& objects);

  /// Builds a batch from any container, extracting the STObject per item
  /// with \p obj_of (e.g. `[](const Element& e) -> const STObject& { return
  /// e.first; }`). Row ids are the container positions.
  template <typename Container, typename Fn>
  static ColumnarBatch Build(const Container& items, Fn&& obj_of) {
    ColumnarBatch b;
    b.Reserve(items.size());
    for (const auto& item : items) b.Append(obj_of(item));
    return b;
  }

  void Reserve(size_t rows);

  /// Appends \p obj as the next row (row_id = current rows()).
  void Append(const STObject& obj);

  /// Point-schema fast path: appends a point row without materializing a
  /// Geometry (direct CSV ingest). The envelope is grown exactly like
  /// Geometry's constructor, so NaN coordinates yield the empty sentinel.
  void AppendPoint(double x, double y, bool has_time, Instant t_start,
                   Instant t_end);

  /// Reconstructs the objects in row order. Errors only on structurally
  /// invalid batches (possible after deserializing corrupt bytes).
  Result<std::vector<STObject>> ToObjects() const;

  /// Reconstructs a single row.
  Result<STObject> RowToObject(size_t row) const;

  size_t rows() const { return geo_type_.size(); }
  bool empty() const { return geo_type_.empty(); }

  /// True when every row is a single point — the batch kernels cover all
  /// rows and no scalar fallback is needed.
  bool AllPoints() const { return non_point_rows_ == 0; }
  size_t non_point_rows() const { return non_point_rows_; }

  bool RowIsPoint(size_t i) const {
    return geo_type_[i] == static_cast<uint8_t>(GeometryType::kPoint);
  }
  bool RowHasTime(size_t i) const { return has_time_[i] != 0; }
  GeometryType RowType(size_t i) const {
    return static_cast<GeometryType>(geo_type_[i]);
  }

  // -- slab views (contiguous, unit-stride) --------------------------------
  const std::vector<uint32_t>& row_ids() const { return row_ids_; }
  const std::vector<uint8_t>& geo_type() const { return geo_type_; }
  const std::vector<double>& x() const { return x_; }
  const std::vector<double>& y() const { return y_; }
  const std::vector<uint8_t>& has_time() const { return has_time_; }
  const std::vector<int64_t>& t_start() const { return t_start_; }
  const std::vector<int64_t>& t_end() const { return t_end_; }
  /// Per-row envelope slab — built once with the batch, so repeated
  /// FilterEnvelopesBatch queries reuse it (engine.columnar.slab_reuse).
  const EnvelopeSoA& envelopes() const { return envs_; }
  const std::vector<uint64_t>& vertex_offsets() const {
    return vertex_offsets_;
  }
  const std::vector<double>& vx() const { return vx_; }
  const std::vector<double>& vy() const { return vy_; }

  /// Approximate heap footprint in bytes (capacity-based).
  size_t MemoryBytes() const;

  friend void WriteColumnarBatch(BinaryWriter* w, const ColumnarBatch& b);
  friend Result<ColumnarBatch> ReadColumnarBatch(BinaryReader* r);

 private:
  Result<Geometry> RowGeometry(size_t row) const;
  Status Validate() const;

  std::vector<uint32_t> row_ids_;
  std::vector<uint8_t> geo_type_;
  std::vector<double> x_, y_;  // representative point per row
  std::vector<uint8_t> has_time_;
  std::vector<int64_t> t_start_, t_end_;  // 0/0 when untimed
  EnvelopeSoA envs_;

  // Non-point geometry structure. vertex_offsets_ has rows+1 entries; a
  // point row's range is empty. The remaining ladders tile their levels
  // exactly: row -> parts (part_offsets_, rows+1), part -> vertex runs
  // (part_ring_offsets_, total_parts+1) and run -> vertex range
  // (ring_offsets_, total_runs+1). A polygon part holds one run per ring
  // (closed, shell then holes); a linestring/multipoint row is one part
  // holding its vertex list as a single run.
  std::vector<uint64_t> vertex_offsets_{0};
  std::vector<double> vx_, vy_;
  std::vector<uint64_t> part_offsets_{0};
  std::vector<uint64_t> part_ring_offsets_{0};
  std::vector<uint64_t> ring_offsets_{0};
  size_t non_point_rows_ = 0;
};

/// Appends the batch as length-prefixed contiguous column blocks (the
/// zero-copy slab wire format: one bulk WriteRaw per column).
void WriteColumnarBatch(BinaryWriter* w, const ColumnarBatch& b);

/// Reads a batch written by WriteColumnarBatch; every offset table and enum
/// tag is validated so corrupt bytes surface as IOError, never OOB reads.
Result<ColumnarBatch> ReadColumnarBatch(BinaryReader* r);

template <>
struct Serde<ColumnarBatch> {
  static void Write(BinaryWriter* w, const ColumnarBatch& v) {
    WriteColumnarBatch(w, v);
  }
  static Result<ColumnarBatch> Read(BinaryReader* r) {
    return ReadColumnarBatch(r);
  }
};

/// Coverage counters for the columnar plane, mirrored into the global
/// registry (engine.columnar.*) and bumped batched per task:
/// - batches: ColumnarBatch builds performed by engine paths.
/// - rows: rows refined through the batch kernels (the columnar plane
///   actually executing, not the fallback).
/// - fallbacks: rows routed through the scalar per-object path instead
///   (non-point geometry, custom distance fn, kill-switch off).
/// - slab_reuse: filters served by an already-built batch/envelope slab
///   instead of rebuilding it.
struct ColumnarMetricSet {
  obs::Counter* batches;
  obs::Counter* rows;
  obs::Counter* fallbacks;
  obs::Counter* slab_reuse;
};

inline const ColumnarMetricSet& GlobalColumnarMetrics() {
  static const ColumnarMetricSet metrics = [] {
    obs::MetricsRegistry& m = obs::DefaultMetrics();
    return ColumnarMetricSet{
        m.GetCounter("engine.columnar.batches"),
        m.GetCounter("engine.columnar.rows"),
        m.GetCounter("engine.columnar.fallbacks"),
        m.GetCounter("engine.columnar.slab_reuse"),
    };
  }();
  return metrics;
}

}  // namespace stark

#endif  // STARK_CORE_COLUMNAR_H_
