/// \file distance.h
/// Pluggable distance functions for withinDistance and kNN. The paper lets
/// users pass their own distance function; these are the out-of-the-box ones.
#ifndef STARK_CORE_DISTANCE_H_
#define STARK_CORE_DISTANCE_H_

#include <cmath>
#include <functional>
#include <limits>

#include "core/stobject.h"

namespace stark {

/// User-suppliable distance between two spatio-temporal objects.
using DistanceFunction =
    std::function<double(const STObject&, const STObject&)>;

/// Maps NaN to +infinity so a misbehaving user distance function can never
/// break the strict weak ordering that kNN's sorting relies on — a NaN
/// distance means "never a neighbor", not undefined behavior.
inline double SanitizeDistance(double d) {
  return std::isnan(d) ? std::numeric_limits<double>::infinity() : d;
}

/// Minimum planar Euclidean distance between the spatial components.
double EuclideanDistance(const STObject& a, const STObject& b);

/// Manhattan (L1) distance between the spatial centroids.
double ManhattanDistance(const STObject& a, const STObject& b);

/// Great-circle distance in kilometers between the spatial centroids,
/// interpreting x as longitude and y as latitude in degrees (Haversine).
double HaversineDistanceKm(const STObject& a, const STObject& b);

/// Temporal gap between the two objects in ticks; 0 when either has no
/// temporal component or the intervals overlap.
double TemporalDistance(const STObject& a, const STObject& b);

/// Weighted combination of a spatial and the temporal distance:
/// spatial_weight * spatial(a,b) + temporal_weight * temporal_gap(a,b).
/// Lets withinDistance express "near in space and time" as one threshold.
DistanceFunction CombinedDistance(DistanceFunction spatial,
                                  double spatial_weight,
                                  double temporal_weight);

}  // namespace stark

#endif  // STARK_CORE_DISTANCE_H_
