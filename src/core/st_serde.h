/// \file st_serde.h
/// Binary serialization of Geometry, TemporalInterval and STObject values —
/// the wire format of STARK's persistent index mode ("Spark's method to
/// save binary objects", substituted by local files).
#ifndef STARK_CORE_ST_SERDE_H_
#define STARK_CORE_ST_SERDE_H_

#include "common/serde.h"
#include "core/stobject.h"

namespace stark {

/// Appends \p geo to \p writer.
void WriteGeometry(BinaryWriter* writer, const Geometry& geo);

/// Reads one Geometry previously written with WriteGeometry.
Result<Geometry> ReadGeometry(BinaryReader* reader);

/// Appends \p obj (geometry + optional interval) to \p writer.
void WriteSTObject(BinaryWriter* writer, const STObject& obj);

/// Reads one STObject previously written with WriteSTObject.
Result<STObject> ReadSTObject(BinaryReader* reader);

/// Appends an Envelope to \p writer.
void WriteEnvelope(BinaryWriter* writer, const Envelope& env);

/// Reads one Envelope previously written with WriteEnvelope.
Result<Envelope> ReadEnvelope(BinaryReader* reader);

/// Serde specialization so RDDs of STObjects (and pairs containing them)
/// can be checkpointed with engine/checkpoint.h.
template <>
struct Serde<STObject> {
  static void Write(BinaryWriter* w, const STObject& v) {
    WriteSTObject(w, v);
  }
  static Result<STObject> Read(BinaryReader* r) { return ReadSTObject(r); }
};

}  // namespace stark

#endif  // STARK_CORE_ST_SERDE_H_
