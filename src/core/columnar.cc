#include "core/columnar.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace stark {

namespace columnar {

namespace {
// Tri-state: -1 = environment not read yet, 0 = off, 1 = on.
std::atomic<int> g_enabled{-1};
}  // namespace

bool Enabled() {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("STARK_COLUMNAR");
    const bool off = env != nullptr &&
                     (std::strcmp(env, "0") == 0 ||
                      std::strcmp(env, "false") == 0 ||
                      std::strcmp(env, "off") == 0);
    v = off ? 0 : 1;
    g_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void SetEnabled(bool enabled) {
  g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace columnar

ColumnarBatch ColumnarBatch::FromObjects(const std::vector<STObject>& objects) {
  ColumnarBatch b;
  b.Reserve(objects.size());
  for (const auto& obj : objects) b.Append(obj);
  return b;
}

void ColumnarBatch::Reserve(size_t rows) {
  row_ids_.reserve(rows);
  geo_type_.reserve(rows);
  x_.reserve(rows);
  y_.reserve(rows);
  has_time_.reserve(rows);
  t_start_.reserve(rows);
  t_end_.reserve(rows);
  envs_.Reserve(rows);
  vertex_offsets_.reserve(rows + 1);
  part_offsets_.reserve(rows + 1);
}

void ColumnarBatch::AppendPoint(double x, double y, bool has_time,
                                Instant t_start, Instant t_end) {
  row_ids_.push_back(static_cast<uint32_t>(rows()));
  geo_type_.push_back(static_cast<uint8_t>(GeometryType::kPoint));
  x_.push_back(x);
  y_.push_back(y);
  has_time_.push_back(has_time ? 1 : 0);
  t_start_.push_back(has_time ? t_start : 0);
  t_end_.push_back(has_time ? t_end : 0);
  // Grown exactly like Geometry's constructor so NaN coordinates store the
  // empty-envelope sentinel, not a NaN box.
  Envelope env;
  env.ExpandToInclude({x, y});
  envs_.PushBack(env);
  vertex_offsets_.push_back(vx_.size());
  part_offsets_.push_back(part_ring_offsets_.size() - 1);
}

void ColumnarBatch::Append(const STObject& obj) {
  const Geometry& geo = obj.geo();
  const bool timed = obj.HasTime();
  if (geo.IsPoint()) {
    const Coordinate& c = geo.AsPoint();
    AppendPoint(c.x, c.y, timed, timed ? obj.time()->start() : 0,
                timed ? obj.time()->end() : 0);
    // AppendPoint recomputed the envelope; it is identical to the cached
    // one by construction, so nothing else to fix up.
    return;
  }
  row_ids_.push_back(static_cast<uint32_t>(rows()));
  geo_type_.push_back(static_cast<uint8_t>(geo.type()));
  has_time_.push_back(timed ? 1 : 0);
  t_start_.push_back(timed ? obj.time()->start() : 0);
  t_end_.push_back(timed ? obj.time()->end() : 0);
  envs_.PushBack(geo.envelope());
  ++non_point_rows_;
  switch (geo.type()) {
    case GeometryType::kPoint:
      break;  // handled above
    case GeometryType::kMultiPoint:
    case GeometryType::kLineString:
      for (const auto& c : geo.coordinates()) {
        vx_.push_back(c.x);
        vy_.push_back(c.y);
      }
      // Record the run (and a single part covering it) so every offset
      // ladder tiles its level exactly; without this a later polygon's
      // first ring would start at the previous *ring* end and swallow
      // these vertices.
      ring_offsets_.push_back(vx_.size());
      part_ring_offsets_.push_back(ring_offsets_.size() - 1);
      break;
    case GeometryType::kPolygon:
    case GeometryType::kMultiPolygon:
      for (const auto& poly : geo.polygons()) {
        const auto push_ring = [this](const Ring& ring) {
          for (const auto& c : ring) {
            vx_.push_back(c.x);
            vy_.push_back(c.y);
          }
          ring_offsets_.push_back(vx_.size());
        };
        push_ring(poly.shell);
        for (const auto& hole : poly.holes) push_ring(hole);
        part_ring_offsets_.push_back(ring_offsets_.size() - 1);
      }
      break;
  }
  // Representative point: the first vertex (factories guarantee >= 1).
  const size_t first = vertex_offsets_.back();
  x_.push_back(vx_[first]);
  y_.push_back(vy_[first]);
  vertex_offsets_.push_back(vx_.size());
  part_offsets_.push_back(part_ring_offsets_.size() - 1);
}

Result<Geometry> ColumnarBatch::RowGeometry(size_t row) const {
  const auto type = static_cast<GeometryType>(geo_type_[row]);
  const uint64_t v0 = vertex_offsets_[row];
  const uint64_t v1 = vertex_offsets_[row + 1];
  switch (type) {
    case GeometryType::kPoint:
      return Geometry::MakePoint(x_[row], y_[row]);
    case GeometryType::kMultiPoint:
    case GeometryType::kLineString: {
      std::vector<Coordinate> coords;
      coords.reserve(v1 - v0);
      for (uint64_t i = v0; i < v1; ++i) coords.push_back({vx_[i], vy_[i]});
      if (type == GeometryType::kMultiPoint) {
        return Geometry::MakeMultiPoint(std::move(coords));
      }
      return Geometry::MakeLineString(std::move(coords));
    }
    case GeometryType::kPolygon:
    case GeometryType::kMultiPolygon: {
      std::vector<PolygonData> polys;
      const uint64_t p0 = part_offsets_[row];
      const uint64_t p1 = part_offsets_[row + 1];
      polys.reserve(p1 - p0);
      for (uint64_t p = p0; p < p1; ++p) {
        PolygonData poly;
        const uint64_t r0 = part_ring_offsets_[p];
        const uint64_t r1 = part_ring_offsets_[p + 1];
        for (uint64_t r = r0; r < r1; ++r) {
          Ring ring;
          ring.reserve(ring_offsets_[r + 1] - ring_offsets_[r]);
          for (uint64_t i = ring_offsets_[r]; i < ring_offsets_[r + 1]; ++i) {
            ring.push_back({vx_[i], vy_[i]});
          }
          if (r == r0) {
            poly.shell = std::move(ring);
          } else {
            poly.holes.push_back(std::move(ring));
          }
        }
        polys.push_back(std::move(poly));
      }
      if (type == GeometryType::kPolygon) {
        if (polys.size() != 1) {
          return Status::IOError("columnar polygon row with bad part count");
        }
        return Geometry::MakePolygon(std::move(polys[0].shell),
                                     std::move(polys[0].holes));
      }
      return Geometry::MakeMultiPolygon(std::move(polys));
    }
  }
  return Status::IOError("columnar row with bad geometry tag");
}

Result<STObject> ColumnarBatch::RowToObject(size_t row) const {
  STARK_ASSIGN_OR_RETURN(Geometry geo, RowGeometry(row));
  if (has_time_[row] == 0) return STObject(std::move(geo));
  return STObject(std::move(geo), t_start_[row], t_end_[row]);
}

Result<std::vector<STObject>> ColumnarBatch::ToObjects() const {
  std::vector<STObject> out;
  out.reserve(rows());
  for (size_t i = 0; i < rows(); ++i) {
    STARK_ASSIGN_OR_RETURN(STObject obj, RowToObject(i));
    out.push_back(std::move(obj));
  }
  return out;
}

size_t ColumnarBatch::MemoryBytes() const {
  return row_ids_.capacity() * sizeof(uint32_t) +
         geo_type_.capacity() + has_time_.capacity() +
         (x_.capacity() + y_.capacity()) * sizeof(double) +
         (t_start_.capacity() + t_end_.capacity()) * sizeof(int64_t) +
         (envs_.min_x.capacity() + envs_.min_y.capacity() +
          envs_.max_x.capacity() + envs_.max_y.capacity()) * sizeof(double) +
         (vx_.capacity() + vy_.capacity()) * sizeof(double) +
         (vertex_offsets_.capacity() + part_offsets_.capacity() +
          part_ring_offsets_.capacity() + ring_offsets_.capacity()) *
             sizeof(uint64_t);
}

Status ColumnarBatch::Validate() const {
  const size_t n = rows();
  const auto column_sizes_ok =
      row_ids_.size() == n && x_.size() == n && y_.size() == n &&
      has_time_.size() == n && t_start_.size() == n && t_end_.size() == n &&
      envs_.size() == n && envs_.min_y.size() == n &&
      envs_.max_x.size() == n && envs_.max_y.size() == n &&
      vertex_offsets_.size() == n + 1 && part_offsets_.size() == n + 1;
  if (!column_sizes_ok) {
    return Status::IOError("columnar batch column sizes disagree");
  }
  const auto offsets_ok = [](const std::vector<uint64_t>& offs, uint64_t end) {
    if (offs.empty() || offs.front() != 0 || offs.back() != end) return false;
    for (size_t i = 0; i + 1 < offs.size(); ++i) {
      if (offs[i] > offs[i + 1]) return false;
    }
    return true;
  };
  if (!offsets_ok(vertex_offsets_, vx_.size()) || vx_.size() != vy_.size()) {
    return Status::IOError("columnar batch vertex offsets invalid");
  }
  // Every non-point row contributes parts and vertex runs (a linestring or
  // multipoint row is one part covering one run), so each offset ladder
  // tiles its level exactly: rows -> parts -> runs -> vertices.
  if (!offsets_ok(part_offsets_, part_ring_offsets_.size() - 1) ||
      !offsets_ok(part_ring_offsets_, ring_offsets_.size() - 1) ||
      !offsets_ok(ring_offsets_, vx_.size())) {
    return Status::IOError("columnar batch ring structure invalid");
  }
  size_t non_point = 0;
  for (size_t i = 0; i < n; ++i) {
    if (geo_type_[i] > static_cast<uint8_t>(GeometryType::kMultiPolygon)) {
      return Status::IOError("columnar batch row with bad geometry tag");
    }
    const auto type = static_cast<GeometryType>(geo_type_[i]);
    const bool is_point = type == GeometryType::kPoint;
    non_point += is_point ? 0 : 1;
    if (is_point && vertex_offsets_[i] != vertex_offsets_[i + 1]) {
      return Status::IOError("columnar point row with vertices");
    }
    const bool polygonal = type == GeometryType::kPolygon ||
                           type == GeometryType::kMultiPolygon;
    const uint64_t parts = part_offsets_[i + 1] - part_offsets_[i];
    if (is_point && parts != 0) {
      return Status::IOError("columnar point row with parts");
    }
    if (!is_point && !polygonal && parts != 1) {
      return Status::IOError("columnar linestring row with bad part count");
    }
    if (polygonal && parts == 0) {
      return Status::IOError("columnar polygon row without parts");
    }
    if (has_time_[i] != 0 && t_start_[i] > t_end_[i]) {
      return Status::IOError("columnar row with inverted interval");
    }
  }
  if (non_point != non_point_rows_) {
    return Status::IOError("columnar batch non-point count mismatch");
  }
  return Status::OK();
}

namespace {

constexpr uint32_t kColumnarMagic = 0x53544342;  // "STCB"
constexpr uint8_t kColumnarVersion = 1;

template <typename T>
void WriteSlab(BinaryWriter* w, const std::vector<T>& v) {
  w->WriteU64(v.size());
  // Empty guard keeps nullptr out of the raw-copy path (UBSan-clean).
  if (!v.empty()) w->WriteRaw(v.data(), v.size() * sizeof(T));
}

template <typename T>
Status ReadSlab(BinaryReader* r, std::vector<T>* out) {
  STARK_ASSIGN_OR_RETURN(uint64_t n, r->ReadU64());
  if (n > r->Remaining() / sizeof(T)) {
    return Status::IOError("columnar slab exceeds stream");
  }
  out->resize(n);
  if (n == 0) return Status::OK();
  return r->ReadRaw(out->data(), n * sizeof(T));
}

}  // namespace

void WriteColumnarBatch(BinaryWriter* w, const ColumnarBatch& b) {
  w->WriteU32(kColumnarMagic);
  w->WriteU8(kColumnarVersion);
  w->WriteU64(b.rows());
  w->WriteU64(b.non_point_rows_);
  WriteSlab(w, b.row_ids_);
  WriteSlab(w, b.geo_type_);
  WriteSlab(w, b.x_);
  WriteSlab(w, b.y_);
  WriteSlab(w, b.has_time_);
  WriteSlab(w, b.t_start_);
  WriteSlab(w, b.t_end_);
  WriteSlab(w, b.envs_.min_x);
  WriteSlab(w, b.envs_.min_y);
  WriteSlab(w, b.envs_.max_x);
  WriteSlab(w, b.envs_.max_y);
  WriteSlab(w, b.vertex_offsets_);
  WriteSlab(w, b.vx_);
  WriteSlab(w, b.vy_);
  WriteSlab(w, b.part_offsets_);
  WriteSlab(w, b.part_ring_offsets_);
  WriteSlab(w, b.ring_offsets_);
}

Result<ColumnarBatch> ReadColumnarBatch(BinaryReader* r) {
  STARK_ASSIGN_OR_RETURN(uint32_t magic, r->ReadU32());
  if (magic != kColumnarMagic) {
    return Status::IOError("bad columnar batch magic");
  }
  STARK_ASSIGN_OR_RETURN(uint8_t version, r->ReadU8());
  if (version != kColumnarVersion) {
    return Status::IOError("unsupported columnar batch version");
  }
  STARK_ASSIGN_OR_RETURN(uint64_t n, r->ReadU64());
  ColumnarBatch b;
  STARK_ASSIGN_OR_RETURN(uint64_t non_point, r->ReadU64());
  b.non_point_rows_ = non_point;
  STARK_RETURN_NOT_OK(ReadSlab(r, &b.row_ids_));
  STARK_RETURN_NOT_OK(ReadSlab(r, &b.geo_type_));
  STARK_RETURN_NOT_OK(ReadSlab(r, &b.x_));
  STARK_RETURN_NOT_OK(ReadSlab(r, &b.y_));
  STARK_RETURN_NOT_OK(ReadSlab(r, &b.has_time_));
  STARK_RETURN_NOT_OK(ReadSlab(r, &b.t_start_));
  STARK_RETURN_NOT_OK(ReadSlab(r, &b.t_end_));
  STARK_RETURN_NOT_OK(ReadSlab(r, &b.envs_.min_x));
  STARK_RETURN_NOT_OK(ReadSlab(r, &b.envs_.min_y));
  STARK_RETURN_NOT_OK(ReadSlab(r, &b.envs_.max_x));
  STARK_RETURN_NOT_OK(ReadSlab(r, &b.envs_.max_y));
  STARK_RETURN_NOT_OK(ReadSlab(r, &b.vertex_offsets_));
  STARK_RETURN_NOT_OK(ReadSlab(r, &b.vx_));
  STARK_RETURN_NOT_OK(ReadSlab(r, &b.vy_));
  STARK_RETURN_NOT_OK(ReadSlab(r, &b.part_offsets_));
  STARK_RETURN_NOT_OK(ReadSlab(r, &b.part_ring_offsets_));
  STARK_RETURN_NOT_OK(ReadSlab(r, &b.ring_offsets_));
  if (b.rows() != n) {
    return Status::IOError("columnar batch row count mismatch");
  }
  STARK_RETURN_NOT_OK(b.Validate());
  return b;
}

}  // namespace stark
