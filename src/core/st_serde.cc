#include "core/st_serde.h"

namespace stark {

namespace {

void WriteCoordinates(BinaryWriter* writer,
                      const std::vector<Coordinate>& coords) {
  writer->WriteU64(coords.size());
  for (const auto& c : coords) {
    writer->WriteDouble(c.x);
    writer->WriteDouble(c.y);
  }
}

Result<std::vector<Coordinate>> ReadCoordinates(BinaryReader* reader) {
  STARK_ASSIGN_OR_RETURN(uint64_t n, reader->ReadU64());
  // Divide instead of multiplying so absurd counts cannot overflow.
  if (n > reader->Remaining() / (2 * sizeof(double))) {
    return Status::IOError("coordinate list exceeds stream");
  }
  std::vector<Coordinate> coords(n);
  for (uint64_t i = 0; i < n; ++i) {
    STARK_ASSIGN_OR_RETURN(coords[i].x, reader->ReadDouble());
    STARK_ASSIGN_OR_RETURN(coords[i].y, reader->ReadDouble());
  }
  return coords;
}

}  // namespace

void WriteGeometry(BinaryWriter* writer, const Geometry& geo) {
  writer->WriteU8(static_cast<uint8_t>(geo.type()));
  switch (geo.type()) {
    case GeometryType::kPoint:
    case GeometryType::kMultiPoint:
    case GeometryType::kLineString:
      WriteCoordinates(writer, geo.coordinates());
      break;
    case GeometryType::kPolygon:
    case GeometryType::kMultiPolygon: {
      writer->WriteU64(geo.polygons().size());
      for (const auto& poly : geo.polygons()) {
        WriteCoordinates(writer, poly.shell);
        writer->WriteU64(poly.holes.size());
        for (const auto& hole : poly.holes) WriteCoordinates(writer, hole);
      }
      break;
    }
  }
}

Result<Geometry> ReadGeometry(BinaryReader* reader) {
  STARK_ASSIGN_OR_RETURN(uint8_t tag, reader->ReadU8());
  if (tag > static_cast<uint8_t>(GeometryType::kMultiPolygon)) {
    return Status::IOError("bad geometry tag in stream");
  }
  const auto type = static_cast<GeometryType>(tag);
  switch (type) {
    case GeometryType::kPoint: {
      STARK_ASSIGN_OR_RETURN(auto coords, ReadCoordinates(reader));
      if (coords.size() != 1) return Status::IOError("bad point payload");
      return Geometry::MakePoint(coords[0]);
    }
    case GeometryType::kMultiPoint: {
      STARK_ASSIGN_OR_RETURN(auto coords, ReadCoordinates(reader));
      return Geometry::MakeMultiPoint(std::move(coords));
    }
    case GeometryType::kLineString: {
      STARK_ASSIGN_OR_RETURN(auto coords, ReadCoordinates(reader));
      return Geometry::MakeLineString(std::move(coords));
    }
    case GeometryType::kPolygon:
    case GeometryType::kMultiPolygon: {
      STARK_ASSIGN_OR_RETURN(uint64_t n_polys, reader->ReadU64());
      std::vector<PolygonData> polys;
      polys.reserve(n_polys);
      for (uint64_t i = 0; i < n_polys; ++i) {
        PolygonData poly;
        STARK_ASSIGN_OR_RETURN(poly.shell, ReadCoordinates(reader));
        STARK_ASSIGN_OR_RETURN(uint64_t n_holes, reader->ReadU64());
        for (uint64_t h = 0; h < n_holes; ++h) {
          STARK_ASSIGN_OR_RETURN(Ring hole, ReadCoordinates(reader));
          poly.holes.push_back(std::move(hole));
        }
        polys.push_back(std::move(poly));
      }
      if (type == GeometryType::kPolygon) {
        if (polys.size() != 1) return Status::IOError("bad polygon payload");
        return Geometry::MakePolygon(std::move(polys[0].shell),
                                     std::move(polys[0].holes));
      }
      return Geometry::MakeMultiPolygon(std::move(polys));
    }
  }
  return Status::IOError("unreachable geometry tag");
}

void WriteSTObject(BinaryWriter* writer, const STObject& obj) {
  WriteGeometry(writer, obj.geo());
  writer->WriteBool(obj.HasTime());
  if (obj.HasTime()) {
    writer->WriteI64(obj.time()->start());
    writer->WriteI64(obj.time()->end());
  }
}

Result<STObject> ReadSTObject(BinaryReader* reader) {
  STARK_ASSIGN_OR_RETURN(Geometry geo, ReadGeometry(reader));
  STARK_ASSIGN_OR_RETURN(bool has_time, reader->ReadBool());
  if (!has_time) return STObject(std::move(geo));
  STARK_ASSIGN_OR_RETURN(int64_t start, reader->ReadI64());
  STARK_ASSIGN_OR_RETURN(int64_t end, reader->ReadI64());
  if (start > end) return Status::IOError("bad interval in stream");
  return STObject(std::move(geo), start, end);
}

void WriteEnvelope(BinaryWriter* writer, const Envelope& env) {
  writer->WriteBool(env.IsEmpty());
  if (!env.IsEmpty()) {
    writer->WriteDouble(env.min_x());
    writer->WriteDouble(env.min_y());
    writer->WriteDouble(env.max_x());
    writer->WriteDouble(env.max_y());
  }
}

Result<Envelope> ReadEnvelope(BinaryReader* reader) {
  STARK_ASSIGN_OR_RETURN(bool empty, reader->ReadBool());
  if (empty) return Envelope();
  STARK_ASSIGN_OR_RETURN(double min_x, reader->ReadDouble());
  STARK_ASSIGN_OR_RETURN(double min_y, reader->ReadDouble());
  STARK_ASSIGN_OR_RETURN(double max_x, reader->ReadDouble());
  STARK_ASSIGN_OR_RETURN(double max_y, reader->ReadDouble());
  return Envelope(min_x, min_y, max_x, max_y);
}

}  // namespace stark
