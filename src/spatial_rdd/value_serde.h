/// \file value_serde.h
/// Serialization traits for the payload type V of an RDD[(STObject, V)],
/// used by the persistent index mode. Specialize Serde<V> for custom
/// payload types.
#ifndef STARK_SPATIAL_RDD_VALUE_SERDE_H_
#define STARK_SPATIAL_RDD_VALUE_SERDE_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/serde.h"

namespace stark {

// The primary template lives in common/serde.h (intentionally undefined so
// unsupported payload types fail at compile time); these are the built-in
// specializations for common payload types.

template <>
struct Serde<int32_t> {
  static void Write(BinaryWriter* w, const int32_t& v) {
    w->WriteI64(v);
  }
  static Result<int32_t> Read(BinaryReader* r) {
    STARK_ASSIGN_OR_RETURN(int64_t v, r->ReadI64());
    return static_cast<int32_t>(v);
  }
};

template <>
struct Serde<int64_t> {
  static void Write(BinaryWriter* w, const int64_t& v) { w->WriteI64(v); }
  static Result<int64_t> Read(BinaryReader* r) { return r->ReadI64(); }
};

template <>
struct Serde<uint64_t> {
  static void Write(BinaryWriter* w, const uint64_t& v) { w->WriteU64(v); }
  static Result<uint64_t> Read(BinaryReader* r) { return r->ReadU64(); }
};

template <>
struct Serde<double> {
  static void Write(BinaryWriter* w, const double& v) { w->WriteDouble(v); }
  static Result<double> Read(BinaryReader* r) { return r->ReadDouble(); }
};

template <>
struct Serde<std::string> {
  static void Write(BinaryWriter* w, const std::string& v) {
    w->WriteString(v);
  }
  static Result<std::string> Read(BinaryReader* r) { return r->ReadString(); }
};

template <typename A, typename B>
struct Serde<std::pair<A, B>> {
  static void Write(BinaryWriter* w, const std::pair<A, B>& v) {
    Serde<A>::Write(w, v.first);
    Serde<B>::Write(w, v.second);
  }
  static Result<std::pair<A, B>> Read(BinaryReader* r) {
    STARK_ASSIGN_OR_RETURN(A a, Serde<A>::Read(r));
    STARK_ASSIGN_OR_RETURN(B b, Serde<B>::Read(r));
    return std::pair<A, B>{std::move(a), std::move(b)};
  }
};

}  // namespace stark

#endif  // STARK_SPATIAL_RDD_VALUE_SERDE_H_
