/// \file spatial_store.h
/// Persists a spatially partitioned RDD — data, partition bounds and
/// extents — and loads it back with the partition metadata intact, so
/// partition pruning keeps working across program runs. This is the paper's
/// Figure-2 workflow: "spatial partitioning -> store to HDFS" and later
/// "load from HDFS -> query execution" (HDFS substituted by local files).
#ifndef STARK_SPATIAL_RDD_SPATIAL_STORE_H_
#define STARK_SPATIAL_RDD_SPATIAL_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/st_serde.h"
#include "engine/checkpoint.h"
#include "partition/explicit_partitioner.h"
#include "spatial_rdd/spatial_rdd.h"
#include "spatial_rdd/value_serde.h"

namespace stark {

/// Writes \p rdd to \p directory: checkpointed partitions plus a
/// `_spatial_meta` file with the partitioner's bounds and extents (when the
/// RDD is spatially partitioned).
template <typename V>
Status SaveSpatial(const SpatialRDD<V>& rdd, const std::string& directory) {
  STARK_RETURN_NOT_OK(Checkpoint(rdd.rdd(), directory));
  BinaryWriter meta;
  meta.WriteU32(0x5354534dU);  // "STSM"
  const auto& partitioner = rdd.partitioner();
  meta.WriteBool(partitioner != nullptr);
  if (partitioner != nullptr) {
    meta.WriteU64(partitioner->NumPartitions());
    for (size_t i = 0; i < partitioner->NumPartitions(); ++i) {
      WriteEnvelope(&meta, partitioner->PartitionBounds(i));
      WriteEnvelope(&meta, partitioner->PartitionExtent(i));
    }
  }
  return WriteFileBytes(directory + "/_spatial_meta", meta.buffer());
}

/// Loads a spatial RDD written by SaveSpatial. If the data was partitioned,
/// the returned RDD carries an ExplicitPartitioner with the stored bounds
/// and extents, so extent pruning applies immediately.
template <typename V>
Result<SpatialRDD<V>> LoadSpatial(Context* ctx,
                                  const std::string& directory) {
  using Element = std::pair<STObject, V>;
  STARK_ASSIGN_OR_RETURN(RDD<Element> rdd,
                         LoadCheckpoint<Element>(ctx, directory));
  STARK_ASSIGN_OR_RETURN(std::vector<char> meta_buf,
                         ReadFileBytes(directory + "/_spatial_meta"));
  BinaryReader meta(meta_buf);
  STARK_ASSIGN_OR_RETURN(uint32_t magic, meta.ReadU32());
  if (magic != 0x5354534dU) {
    return Status::IOError("bad spatial-store magic in " + directory);
  }
  STARK_ASSIGN_OR_RETURN(bool partitioned, meta.ReadBool());
  if (!partitioned) return SpatialRDD<V>(std::move(rdd));

  STARK_ASSIGN_OR_RETURN(uint64_t num_parts, meta.ReadU64());
  if (num_parts != rdd.NumPartitions()) {
    return Status::IOError("spatial-store metadata/partition count mismatch");
  }
  std::vector<Envelope> bounds;
  std::vector<Envelope> extents;
  bounds.reserve(num_parts);
  extents.reserve(num_parts);
  for (uint64_t i = 0; i < num_parts; ++i) {
    STARK_ASSIGN_OR_RETURN(Envelope b, ReadEnvelope(&meta));
    STARK_ASSIGN_OR_RETURN(Envelope e, ReadEnvelope(&meta));
    bounds.push_back(b);
    extents.push_back(e);
  }
  auto partitioner = std::make_shared<ExplicitPartitioner>(std::move(bounds),
                                                           extents);
  return SpatialRDD<V>(std::move(rdd), std::move(partitioner));
}

}  // namespace stark

#endif  // STARK_SPATIAL_RDD_SPATIAL_STORE_H_
