/// \file predicate.h
/// Spatio-temporal predicate selector shared by filters and joins.
#ifndef STARK_SPATIAL_RDD_PREDICATE_H_
#define STARK_SPATIAL_RDD_PREDICATE_H_

#include <string>

#include "core/distance.h"
#include "core/stobject.h"

namespace stark {

/// The predicates STARK supports on RDDs (§2.3): intersects, contains,
/// containedBy, and withinDistance.
enum class PredicateType {
  kIntersects,
  kContains,
  kContainedBy,
  kWithinDistance,
};

/// Returns the lower-case API name of \p pred (as used in the DSL).
inline const char* PredicateName(PredicateType pred) {
  switch (pred) {
    case PredicateType::kIntersects: return "intersects";
    case PredicateType::kContains: return "contains";
    case PredicateType::kContainedBy: return "containedBy";
    case PredicateType::kWithinDistance: return "withinDistance";
  }
  return "?";
}

/// \brief Bundles a predicate type with the extra withinDistance parameters.
///
/// The distance function defaults to the minimum Euclidean distance between
/// the spatial components; users may pass their own (paper §2.3). Envelope
/// pruning (partition extents, R-tree candidates) is only sound for
/// functions that are lower-bounded by the Euclidean envelope distance, so
/// custom functions disable pruning unless the caller promises otherwise
/// via euclidean_compatible.
struct JoinPredicate {
  PredicateType type = PredicateType::kIntersects;
  double max_distance = 0.0;
  DistanceFunction distance = nullptr;
  bool euclidean_compatible = true;

  static JoinPredicate Intersects() { return {PredicateType::kIntersects}; }
  static JoinPredicate Contains() { return {PredicateType::kContains}; }
  static JoinPredicate ContainedBy() {
    return {PredicateType::kContainedBy};
  }
  static JoinPredicate WithinDistance(double max_distance,
                                      DistanceFunction fn = nullptr,
                                      bool euclidean_compatible_fn = false) {
    JoinPredicate p;
    p.type = PredicateType::kWithinDistance;
    p.max_distance = max_distance;
    p.euclidean_compatible = fn == nullptr || euclidean_compatible_fn;
    p.distance = std::move(fn);
    return p;
  }

  /// Exact predicate evaluation: left op right, including the paper's
  /// combined temporal semantics for the relational predicates.
  bool Eval(const STObject& left, const STObject& right) const {
    switch (type) {
      case PredicateType::kIntersects:
        return left.Intersects(right);
      case PredicateType::kContains:
        return left.Contains(right);
      case PredicateType::kContainedBy:
        return left.ContainedBy(right);
      case PredicateType::kWithinDistance: {
        if (distance) return distance(left, right) <= max_distance;
        return EuclideanDistance(left, right) <= max_distance;
      }
    }
    return false;
  }

  /// Margin to add around envelopes for candidate generation; sound because
  /// geometries within distance d have envelopes within distance d.
  double EnvelopeMargin() const {
    return type == PredicateType::kWithinDistance ? max_distance : 0.0;
  }

  /// Whether envelope-based pruning may be applied at all.
  bool Prunable() const {
    return type != PredicateType::kWithinDistance || euclidean_compatible;
  }
};

}  // namespace stark

#endif  // STARK_SPATIAL_RDD_PREDICATE_H_
