/// \file predicate.h
/// Spatio-temporal predicate selector shared by filters and joins.
#ifndef STARK_SPATIAL_RDD_PREDICATE_H_
#define STARK_SPATIAL_RDD_PREDICATE_H_

#include <optional>
#include <string>

#include "core/distance.h"
#include "core/stobject.h"
#include "geometry/prepared.h"

namespace stark {

/// The predicates STARK supports on RDDs (§2.3): intersects, contains,
/// containedBy, and withinDistance.
enum class PredicateType {
  kIntersects,
  kContains,
  kContainedBy,
  kWithinDistance,
};

/// Returns the lower-case API name of \p pred (as used in the DSL).
inline const char* PredicateName(PredicateType pred) {
  switch (pred) {
    case PredicateType::kIntersects: return "intersects";
    case PredicateType::kContains: return "contains";
    case PredicateType::kContainedBy: return "containedBy";
    case PredicateType::kWithinDistance: return "withinDistance";
  }
  return "?";
}

/// \brief Bundles a predicate type with the extra withinDistance parameters.
///
/// The distance function defaults to the minimum Euclidean distance between
/// the spatial components; users may pass their own (paper §2.3). Envelope
/// pruning (partition extents, R-tree candidates) is only sound for
/// functions that are lower-bounded by the Euclidean envelope distance, so
/// custom functions disable pruning unless the caller promises otherwise
/// via euclidean_compatible.
struct JoinPredicate {
  PredicateType type = PredicateType::kIntersects;
  double max_distance = 0.0;
  DistanceFunction distance = nullptr;
  bool euclidean_compatible = true;

  static JoinPredicate Intersects() { return {PredicateType::kIntersects}; }
  static JoinPredicate Contains() { return {PredicateType::kContains}; }
  static JoinPredicate ContainedBy() {
    return {PredicateType::kContainedBy};
  }
  static JoinPredicate WithinDistance(double max_distance,
                                      DistanceFunction fn = nullptr,
                                      bool euclidean_compatible_fn = false) {
    JoinPredicate p;
    p.type = PredicateType::kWithinDistance;
    p.max_distance = max_distance;
    p.euclidean_compatible = fn == nullptr || euclidean_compatible_fn;
    p.distance = std::move(fn);
    return p;
  }

  /// Exact predicate evaluation: left op right, including the paper's
  /// combined temporal semantics for the relational predicates.
  bool Eval(const STObject& left, const STObject& right) const {
    switch (type) {
      case PredicateType::kIntersects:
        return left.Intersects(right);
      case PredicateType::kContains:
        return left.Contains(right);
      case PredicateType::kContainedBy:
        return left.ContainedBy(right);
      case PredicateType::kWithinDistance: {
        if (distance) return distance(left, right) <= max_distance;
        return EuclideanDistance(left, right) <= max_distance;
      }
    }
    return false;
  }

  /// Margin to add around envelopes for candidate generation; sound because
  /// geometries within distance d have envelopes within distance d.
  double EnvelopeMargin() const {
    return type == PredicateType::kWithinDistance ? max_distance : 0.0;
  }

  /// Whether envelope-based pruning may be applied at all.
  bool Prunable() const {
    return type != PredicateType::kWithinDistance || euclidean_compatible;
  }
};

namespace predicate_internal {

/// The paper's combined spatio-temporal rule (formula (1)-(3)), factored
/// out so prepared evaluation can reuse it: spatial AND (both times
/// undefined, or both defined and the temporal predicate holds).
inline bool CombinedST(bool spatial_holds,
                       const std::optional<TemporalInterval>& a,
                       const std::optional<TemporalInterval>& b,
                       TemporalPredicate temporal_pred) {
  if (!spatial_holds) return false;
  if (!a.has_value() && !b.has_value()) return true;
  if (a.has_value() && b.has_value()) {
    return EvalTemporalPredicate(temporal_pred, *a, *b);
  }
  return false;
}

}  // namespace predicate_internal

/// Evaluates `pred.Eval(left, right)` with the *right* geometry prepared.
/// \p prepared_right must be built from right.geo(). Results are identical
/// to the unprepared call (PreparedGeometry's exactness guarantee).
inline bool EvalWithPreparedRight(const JoinPredicate& pred,
                                  const STObject& left, const STObject& right,
                                  const PreparedGeometry& prepared_right) {
  using predicate_internal::CombinedST;
  switch (pred.type) {
    case PredicateType::kIntersects:
      return CombinedST(prepared_right.IntersectedBy(left.geo()), left.time(),
                        right.time(), TemporalPredicate::kIntersects);
    case PredicateType::kContains:
      // left.Contains(right): Contains(left.geo, right.geo).
      return CombinedST(prepared_right.ContainedBy(left.geo()), left.time(),
                        right.time(), TemporalPredicate::kContains);
    case PredicateType::kContainedBy:
      // right.Contains(left): Contains(right.geo, left.geo).
      return CombinedST(prepared_right.Contains(left.geo()), right.time(),
                        left.time(), TemporalPredicate::kContains);
    case PredicateType::kWithinDistance:
      if (pred.distance) {
        return pred.distance(left, right) <= pred.max_distance;
      }
      // EuclideanDistance(left, right) == Distance(left.geo, right.geo).
      return prepared_right.DistanceFrom(left.geo()) <= pred.max_distance;
  }
  return false;
}

/// Evaluates `pred.Eval(left, right)` with the *left* geometry prepared.
/// \p prepared_left must be built from left.geo().
inline bool EvalWithPreparedLeft(const JoinPredicate& pred,
                                 const STObject& left, const STObject& right,
                                 const PreparedGeometry& prepared_left) {
  using predicate_internal::CombinedST;
  switch (pred.type) {
    case PredicateType::kIntersects:
      // Intersects is value-symmetric across the kernels, so the prepared
      // side may serve either operand.
      return CombinedST(prepared_left.IntersectedBy(right.geo()), left.time(),
                        right.time(), TemporalPredicate::kIntersects);
    case PredicateType::kContains:
      return CombinedST(prepared_left.Contains(right.geo()), left.time(),
                        right.time(), TemporalPredicate::kContains);
    case PredicateType::kContainedBy:
      return CombinedST(prepared_left.ContainedBy(right.geo()), right.time(),
                        left.time(), TemporalPredicate::kContains);
    case PredicateType::kWithinDistance:
      if (pred.distance) {
        return pred.distance(left, right) <= pred.max_distance;
      }
      // Distance is value-symmetric; DistanceFrom(right.geo) computes
      // Distance(right.geo, left.geo) == Distance(left.geo, right.geo).
      return prepared_left.DistanceFrom(right.geo()) <= pred.max_distance;
  }
  return false;
}

/// \brief A JoinPredicate with one operand fixed, lazily prepared.
///
/// The hot refinement loops (filter, index probe, nested scan) evaluate one
/// fixed geometry — the query, or the current probe row — against a stream
/// of candidates. BoundPredicate binds that fixed side and prepares its
/// geometry on the *first* Eval, so a bound predicate that never refines a
/// candidate costs nothing, and one that refines N candidates prepares
/// exactly once: prepared_misses() == 1, prepared_hits() == N - 1. Flush
/// those into spatial.prepared.{hits,misses} per task (IndexMetricSet).
///
/// Custom withinDistance functions bypass preparation entirely (the fixed
/// geometry is never interrogated), counting neither hits nor misses.
///
/// Holds a pointer to the fixed STObject; it must outlive the predicate.
class BoundPredicate {
 public:
  /// Which operand slot the *candidate* fills at Eval time.
  enum class Side {
    kCandidateLeft,   // Eval(c) == pred.Eval(c, fixed)
    kCandidateRight,  // Eval(c) == pred.Eval(fixed, c)
  };

  BoundPredicate(const JoinPredicate& pred, const STObject& fixed, Side side)
      : pred_(&pred), fixed_(&fixed), side_(side) {}

  /// Exact predicate evaluation against the bound operand; identical
  /// results to the corresponding JoinPredicate::Eval call.
  bool Eval(const STObject& candidate) const {
    if (pred_->type == PredicateType::kWithinDistance && pred_->distance) {
      return side_ == Side::kCandidateLeft
                 ? pred_->Eval(candidate, *fixed_)
                 : pred_->Eval(*fixed_, candidate);
    }
    if (!prepared_.has_value()) {
      prepared_.emplace(fixed_->geo());
      ++misses_;
    } else {
      ++hits_;
    }
    return side_ == Side::kCandidateLeft
               ? EvalWithPreparedRight(*pred_, candidate, *fixed_, *prepared_)
               : EvalWithPreparedLeft(*pred_, *fixed_, candidate, *prepared_);
  }

  /// Preparations performed (0 or 1) and repeat uses; see class comment.
  size_t prepared_misses() const { return misses_; }
  size_t prepared_hits() const { return hits_; }

 private:
  const JoinPredicate* pred_;
  const STObject* fixed_;
  Side side_;
  mutable std::optional<PreparedGeometry> prepared_;
  mutable size_t misses_ = 0;
  mutable size_t hits_ = 0;
};

}  // namespace stark

#endif  // STARK_SPATIAL_RDD_PREDICATE_H_
