/// \file query_stats.h
/// Execution statistics for spatial filters: how many partitions the §2.1
/// extent/time pruning skipped and how many elements the exact predicate
/// actually touched. Pass an instance to SpatialRDD::Filter /
/// IndexedSpatialRDD::Filter to observe a query; counters are atomic since
/// partitions evaluate in parallel (and lazily — read them after an action).
#ifndef STARK_SPATIAL_RDD_QUERY_STATS_H_
#define STARK_SPATIAL_RDD_QUERY_STATS_H_

#include <atomic>
#include <cstddef>

namespace stark {

/// Counters filled during filter evaluation.
struct QueryStats {
  /// Partitions whose extent (or time bounds) could not contribute and
  /// were skipped without being computed.
  std::atomic<size_t> partitions_pruned{0};
  /// Partitions actually evaluated.
  std::atomic<size_t> partitions_scanned{0};
  /// Elements tested with the exact predicate (for indexed filters these
  /// are the R-tree candidates after the bounding-box match).
  std::atomic<size_t> candidates{0};
  /// Elements that satisfied the predicate.
  std::atomic<size_t> results{0};

  void Reset() {
    partitions_pruned = 0;
    partitions_scanned = 0;
    candidates = 0;
    results = 0;
  }
};

}  // namespace stark

#endif  // STARK_SPATIAL_RDD_QUERY_STATS_H_
