/// \file query_stats.h
/// Execution statistics for spatial filters: how many partitions the §2.1
/// extent/time pruning skipped and how many elements the exact predicate
/// actually touched. Pass an instance to SpatialRDD::Filter /
/// IndexedSpatialRDD::Filter to observe a query; counters are atomic since
/// partitions evaluate in parallel (and lazily — read them after an action).
///
/// The bare atomics make QueryStats itself non-copyable, so observations
/// are taken as plain QueryStats::Snapshot values (Snap()), which can be
/// stored, compared, and diffed (Delta()) freely. The same counters are
/// mirrored into the global metrics registry under spatial.filter.* so
/// pruning numbers appear in engine-wide metric reports too.
#ifndef STARK_SPATIAL_RDD_QUERY_STATS_H_
#define STARK_SPATIAL_RDD_QUERY_STATS_H_

#include <atomic>
#include <cstddef>

#include "obs/metrics.h"

namespace stark {

/// Counters filled during filter evaluation.
struct QueryStats {
  /// Partitions whose extent (or time bounds) could not contribute and
  /// were skipped without being computed.
  std::atomic<size_t> partitions_pruned{0};
  /// Partitions actually evaluated.
  std::atomic<size_t> partitions_scanned{0};
  /// Elements tested with the exact predicate (for indexed filters these
  /// are the R-tree candidates after the bounding-box match).
  std::atomic<size_t> candidates{0};
  /// Elements that satisfied the predicate.
  std::atomic<size_t> results{0};

  /// Plain-value observation of the counters: copyable, comparable,
  /// diffable — everything the atomic-holding QueryStats itself cannot be.
  struct Snapshot {
    size_t partitions_pruned = 0;
    size_t partitions_scanned = 0;
    size_t candidates = 0;
    size_t results = 0;

    /// Counter increments since \p earlier (counters are monotonic between
    /// Reset()s; fields that went backwards clamp to 0).
    Snapshot Delta(const Snapshot& earlier) const {
      auto sub = [](size_t now, size_t before) {
        return now >= before ? now - before : 0;
      };
      Snapshot d;
      d.partitions_pruned = sub(partitions_pruned, earlier.partitions_pruned);
      d.partitions_scanned =
          sub(partitions_scanned, earlier.partitions_scanned);
      d.candidates = sub(candidates, earlier.candidates);
      d.results = sub(results, earlier.results);
      return d;
    }

    bool operator==(const Snapshot& o) const {
      return partitions_pruned == o.partitions_pruned &&
             partitions_scanned == o.partitions_scanned &&
             candidates == o.candidates && results == o.results;
    }
    bool operator!=(const Snapshot& o) const { return !(*this == o); }
  };

  /// Consistent-enough copy of the live counters (relaxed loads; exact
  /// once the observed action has completed).
  Snapshot Snap() const {
    Snapshot s;
    s.partitions_pruned = partitions_pruned.load(std::memory_order_relaxed);
    s.partitions_scanned = partitions_scanned.load(std::memory_order_relaxed);
    s.candidates = candidates.load(std::memory_order_relaxed);
    s.results = results.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    partitions_pruned = 0;
    partitions_scanned = 0;
    candidates = 0;
    results = 0;
  }
};

/// Global named-metric mirrors of the QueryStats counters, registered in
/// obs::DefaultMetrics(). Filter paths bump these (batched per partition)
/// regardless of whether a per-query QueryStats was passed, so filter
/// pruning shows up in the same report as the engine.* counters.
struct FilterMetricSet {
  obs::Counter* partitions_pruned;
  obs::Counter* partitions_scanned;
  obs::Counter* candidates;
  obs::Counter* results;
};

inline const FilterMetricSet& GlobalFilterMetrics() {
  static const FilterMetricSet metrics = [] {
    obs::MetricsRegistry& m = obs::DefaultMetrics();
    return FilterMetricSet{
        m.GetCounter("spatial.filter.partitions_pruned"),
        m.GetCounter("spatial.filter.partitions_scanned"),
        m.GetCounter("spatial.filter.candidates"),
        m.GetCounter("spatial.filter.results"),
    };
  }();
  return metrics;
}

/// Counters for the packed index / prepared-geometry hot path (PR 5):
/// - engine.index.packed_probes: PackedRTree Query/Knn probes issued by the
///   spatial layer (one per query window or kNN search, not per node).
/// - spatial.prepared.hits/misses: PreparedGeometry reuse vs construction
///   during refinement — misses is one per distinct geometry actually
///   refined against in a task, hits are the repeat evaluations it saved.
/// Bumped batched per task like the filter metrics (never per element).
struct IndexMetricSet {
  obs::Counter* packed_probes;
  obs::Counter* prepared_hits;
  obs::Counter* prepared_misses;
};

inline const IndexMetricSet& GlobalIndexMetrics() {
  static const IndexMetricSet metrics = [] {
    obs::MetricsRegistry& m = obs::DefaultMetrics();
    return IndexMetricSet{
        m.GetCounter("engine.index.packed_probes"),
        m.GetCounter("spatial.prepared.hits"),
        m.GetCounter("spatial.prepared.misses"),
    };
  }();
  return metrics;
}

}  // namespace stark

#endif  // STARK_SPATIAL_RDD_QUERY_STATS_H_
