/// \file spatial_rdd.h
/// SpatialRDDFunctions — the paper's seamless RDD integration (§2.3). In
/// Scala, an implicit conversion wraps any RDD[(STObject, V)]; in C++ the
/// equivalent is the explicit, zero-copy wrapper SpatialRDD<V> (see
/// Spatial() below), which adds the spatio-temporal filter, join, kNN and
/// indexing operators to a plain engine RDD.
#ifndef STARK_SPATIAL_RDD_SPATIAL_RDD_H_
#define STARK_SPATIAL_RDD_SPATIAL_RDD_H_

#include <algorithm>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/columnar.h"
#include "core/distance.h"
#include "core/st_serde.h"
#include "core/stobject.h"
#include "engine/rdd.h"
#include "index/packed_rtree.h"
#include "index/rtree.h"
#include "obs/trace.h"
#include "partition/partitioner.h"
#include "spatial_rdd/columnar_refine.h"
#include "spatial_rdd/predicate.h"
#include "spatial_rdd/query_stats.h"
#include "spatial_rdd/value_serde.h"

namespace stark {

template <typename V>
class SpatialRDD;

/// \brief An RDD whose partitions are R-trees over (STObject, V) pairs —
/// the result of liveIndex()/index() (§2.2).
///
/// Live indexing keeps the tree construction inside the lazy lineage, so
/// the index is rebuilt whenever a partition is processed; persistent
/// indexing caches the trees and can save them to disk and load them back
/// in another program run.
///
/// The partition trees are *packed* R-trees (PackedRTree): STR bulk-loaded
/// straight into the flat SoA layout, probed with the iterative templated
/// traversal. Incrementally built RTree instances enter this layout via
/// RTree::Freeze().
template <typename V>
class IndexedSpatialRDD {
 public:
  using Element = std::pair<STObject, V>;
  using TreePtr = std::shared_ptr<const PackedRTree<Element>>;

  IndexedSpatialRDD(RDD<TreePtr> trees,
                    std::shared_ptr<std::vector<Envelope>> extents,
                    size_t order)
      : trees_(std::move(trees)), extents_(std::move(extents)),
        order_(order) {}

  const RDD<TreePtr>& trees() const { return trees_; }
  size_t order() const { return order_; }
  size_t NumPartitions() const { return trees_.NumPartitions(); }

  /// Per-partition extents captured when the index was built (null when the
  /// source was not spatially partitioned). Joins use these for partition
  /// pruning without re-collecting the trees.
  const std::shared_ptr<std::vector<Envelope>>& extents() const {
    return extents_;
  }

  /// Generic filter against \p query: R-tree candidate lookup plus exact
  /// refinement with the full spatio-temporal predicate (candidate pruning
  /// step of §2.2, including the temporal predicate). \p stats, when
  /// non-null, must outlive the returned RDD's evaluation.
  RDD<Element> Filter(const STObject& query, const JoinPredicate& pred,
                      QueryStats* stats = nullptr) const {
    const Envelope probe = query.envelope().Expanded(pred.EnvelopeMargin());
    auto extents = extents_;
    const bool prunable = pred.Prunable();
    // Partition extents that cannot contribute are pruned before the trees
    // are even computed (§2.1) — with live indexing this skips building the
    // R-tree for pruned partitions entirely.
    RDD<TreePtr> source = trees_;
    if (prunable && extents) {
      source = source.PrunePartitions([extents, probe, stats](size_t idx) {
        const bool keep =
            idx >= extents->size() || (*extents)[idx].Intersects(probe);
        if (!keep) {
          if (stats) ++stats->partitions_pruned;
          GlobalFilterMetrics().partitions_pruned->Increment();
        }
        return keep;
      });
    }
    return source.MapPartitionsWithIndex(
        [query, pred, probe, prunable, stats](size_t,
                                              std::vector<TreePtr> trees) {
          std::vector<Element> out;
          size_t candidates = 0;
          size_t packed_probes = 0;
          // The query geometry is refined against every candidate: bind it
          // once so it is prepared on the first candidate and reused after.
          BoundPredicate bound(pred, query,
                               BoundPredicate::Side::kCandidateLeft);
          auto refine = [&](const Element& e) {
            ++candidates;
            if (bound.Eval(e.first)) out.push_back(e);
          };
          for (const TreePtr& tree : trees) {
            if (prunable) {
              ++packed_probes;
              tree->Query(probe, [&](const Envelope&, const Element& e) {
                refine(e);
              });
            } else {
              tree->ForEach([&](const Envelope&, const Element& e) {
                refine(e);
              });
            }
          }
          if (stats) {
            if (!trees.empty()) ++stats->partitions_scanned;
            stats->candidates += candidates;
            stats->results += out.size();
          }
          const FilterMetricSet& global = GlobalFilterMetrics();
          if (!trees.empty()) global.partitions_scanned->Increment();
          global.candidates->Add(candidates);
          global.results->Add(out.size());
          const IndexMetricSet& index_metrics = GlobalIndexMetrics();
          index_metrics.packed_probes->Add(packed_probes);
          index_metrics.prepared_hits->Add(bound.prepared_hits());
          index_metrics.prepared_misses->Add(bound.prepared_misses());
          if (obs::TaskSpan* span = obs::CurrentTaskSpan()) {
            span->detail = "packed_probes=" + std::to_string(packed_probes) +
                           " prepared=" +
                           std::to_string(bound.prepared_hits()) + "/" +
                           std::to_string(bound.prepared_misses());
            span->records_in = candidates;
            span->records_out = out.size();
            span->candidates = candidates;
            span->refined = out.size();
          }
          return out;
        });
  }

  RDD<Element> Intersects(const STObject& query) const {
    return Filter(query, JoinPredicate::Intersects());
  }
  RDD<Element> Contains(const STObject& query) const {
    return Filter(query, JoinPredicate::Contains());
  }
  RDD<Element> ContainedBy(const STObject& query) const {
    return Filter(query, JoinPredicate::ContainedBy());
  }
  RDD<Element> WithinDistance(const STObject& query, double max_distance,
                              DistanceFunction fn = nullptr) const {
    return Filter(query, JoinPredicate::WithinDistance(max_distance,
                                                       std::move(fn)));
  }

  /// Exact k nearest neighbors of \p query; results are (distance, element)
  /// sorted ascending. Defaults to the Euclidean geometry distance (tree
  /// branch-and-bound); a custom \p fn falls back to a per-partition scan,
  /// since RTree::Knn's envelope lower bound is only valid for Euclidean
  /// distance. A distance of NaN is treated as +infinity (never a neighbor).
  std::vector<std::pair<double, Element>> Knn(const STObject& query, size_t k,
                                              DistanceFunction fn = nullptr)
      const {
    const Coordinate qc = query.Centroid();
    RDD<std::pair<double, Element>> locals =
        trees_.MapPartitionsWithIndex([query, qc, k, fn](
                                          size_t, std::vector<TreePtr> ts) {
          std::vector<std::pair<double, Element>> out;
          // Lazily prepare the query geometry for the exact-distance
          // callback: one preparation per task, shared by every candidate
          // the branch-and-bound search actually measures.
          std::optional<PreparedGeometry> prepared;
          size_t prepared_hits = 0;
          size_t prepared_misses = 0;
          size_t packed_probes = 0;
          for (const TreePtr& tree : ts) {
            if (fn) {
              tree->ForEach([&](const Envelope&, const Element& e) {
                out.emplace_back(SanitizeDistance(fn(e.first, query)), e);
              });
            } else {
              ++packed_probes;
              auto hits = tree->Knn(qc, k, [&](const Element& e) {
                if (!prepared.has_value()) {
                  prepared.emplace(query.geo());
                  ++prepared_misses;
                } else {
                  ++prepared_hits;
                }
                // DistanceFrom(other) computes Distance(other, query.geo).
                return prepared->DistanceFrom(e.first.geo());
              });
              for (auto& [dist, elem] : hits) out.emplace_back(dist, *elem);
            }
          }
          const IndexMetricSet& index_metrics = GlobalIndexMetrics();
          index_metrics.packed_probes->Add(packed_probes);
          index_metrics.prepared_hits->Add(prepared_hits);
          index_metrics.prepared_misses->Add(prepared_misses);
          if (fn && out.size() > k) {
            std::partial_sort(out.begin(),
                              out.begin() + static_cast<ptrdiff_t>(k),
                              out.end(), [](const auto& a, const auto& b) {
                                return a.first < b.first;
                              });
            out.erase(out.begin() + static_cast<ptrdiff_t>(k), out.end());
          }
          return out;
        });
    std::vector<std::pair<double, Element>> all = locals.Collect();
    std::sort(all.begin(), all.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    if (all.size() > k) all.erase(all.begin() + static_cast<ptrdiff_t>(k), all.end());
    return all;
  }

  /// Flattens the indexed partitions back to a plain element RDD.
  RDD<Element> ToElements() const {
    return trees_.MapPartitionsWithIndex(
        [](size_t, std::vector<TreePtr> ts) {
          std::vector<Element> out;
          for (const TreePtr& tree : ts) {
            tree->ForEach([&](const Envelope&, const Element& e) {
              out.push_back(e);
            });
          }
          return out;
        });
  }

  /// \brief Persists the index to \p directory (one binary file per
  /// partition plus a meta file) — the paper's persistent index mode with
  /// HDFS substituted by the local filesystem.
  Status Save(const std::string& directory) const {
    std::vector<std::vector<TreePtr>> parts = trees_.CollectPartitions();
    BinaryWriter meta;
    meta.WriteU32(kMetaMagic);
    meta.WriteU64(parts.size());
    meta.WriteU64(order_);
    for (size_t p = 0; p < parts.size(); ++p) {
      const Envelope extent = extents_ && p < extents_->size()
                                  ? (*extents_)[p]
                                  : Envelope();
      WriteEnvelope(&meta, extent);
    }
    STARK_RETURN_NOT_OK(
        WriteFileBytes(directory + "/index.meta", meta.buffer()));
    for (size_t p = 0; p < parts.size(); ++p) {
      BinaryWriter w;
      size_t count = 0;
      for (const TreePtr& tree : parts[p]) count += tree->size();
      if (columnar::Enabled()) {
        // Zero-copy slab format: all STObjects as one columnar batch
        // (length-prefixed contiguous column blocks, a handful of bulk
        // writes) followed by the payload column. Loaders that predate the
        // format reject the magic instead of misreading.
        w.WriteU32(kPartMagicColumnar);
        ColumnarBatch batch;
        batch.Reserve(count);
        BinaryWriter payloads;
        for (const TreePtr& tree : parts[p]) {
          tree->ForEach([&batch, &payloads](const Envelope&,
                                            const Element& e) {
            batch.Append(e.first);
            Serde<V>::Write(&payloads, e.second);
          });
        }
        WriteColumnarBatch(&w, batch);
        w.WriteRaw(payloads.buffer().data(), payloads.buffer().size());
      } else {
        w.WriteU32(kPartMagic);
        w.WriteU64(count);
        for (const TreePtr& tree : parts[p]) {
          tree->ForEach([&w](const Envelope&, const Element& e) {
            WriteSTObject(&w, e.first);
            Serde<V>::Write(&w, e.second);
          });
        }
      }
      STARK_RETURN_NOT_OK(
          WriteFileBytes(directory + "/part-" + std::to_string(p) + ".idx",
                         w.buffer()));
    }
    return Status::OK();
  }

  /// Loads an index previously written with Save. Trees are re-packed with
  /// STR bulk loading, which is at least as good as the saved layout.
  static Result<IndexedSpatialRDD<V>> Load(Context* ctx,
                                           const std::string& directory) {
    STARK_ASSIGN_OR_RETURN(std::vector<char> meta_buf,
                           ReadFileBytes(directory + "/index.meta"));
    BinaryReader meta(meta_buf);
    STARK_ASSIGN_OR_RETURN(uint32_t magic, meta.ReadU32());
    if (magic != kMetaMagic) return Status::IOError("bad index meta magic");
    STARK_ASSIGN_OR_RETURN(uint64_t num_parts, meta.ReadU64());
    STARK_ASSIGN_OR_RETURN(uint64_t order, meta.ReadU64());
    auto extents = std::make_shared<std::vector<Envelope>>();
    for (uint64_t p = 0; p < num_parts; ++p) {
      STARK_ASSIGN_OR_RETURN(Envelope e, ReadEnvelope(&meta));
      extents->push_back(e);
    }
    std::vector<std::vector<TreePtr>> parts(num_parts);
    for (uint64_t p = 0; p < num_parts; ++p) {
      STARK_ASSIGN_OR_RETURN(
          std::vector<char> buf,
          ReadFileBytes(directory + "/part-" + std::to_string(p) + ".idx"));
      BinaryReader r(buf);
      STARK_ASSIGN_OR_RETURN(uint32_t part_magic, r.ReadU32());
      if (part_magic != kPartMagic && part_magic != kPartMagicColumnar) {
        return Status::IOError("bad index part magic");
      }
      std::vector<std::pair<Envelope, Element>> entries;
      if (part_magic == kPartMagicColumnar) {
        // Slab format: bulk-read the column blocks, then the payloads.
        STARK_ASSIGN_OR_RETURN(ColumnarBatch batch, ReadColumnarBatch(&r));
        STARK_ASSIGN_OR_RETURN(std::vector<STObject> objs, batch.ToObjects());
        entries.reserve(objs.size());
        for (auto& obj : objs) {
          STARK_ASSIGN_OR_RETURN(V value, Serde<V>::Read(&r));
          Envelope env = obj.envelope();
          entries.emplace_back(env,
                               Element{std::move(obj), std::move(value)});
        }
      } else {
        STARK_ASSIGN_OR_RETURN(uint64_t count, r.ReadU64());
        entries.reserve(count);
        for (uint64_t i = 0; i < count; ++i) {
          STARK_ASSIGN_OR_RETURN(STObject obj, ReadSTObject(&r));
          STARK_ASSIGN_OR_RETURN(V value, Serde<V>::Read(&r));
          Envelope env = obj.envelope();
          entries.emplace_back(env,
                               Element{std::move(obj), std::move(value)});
        }
      }
      parts[p].push_back(
          std::make_shared<PackedRTree<Element>>(order, std::move(entries)));
    }
    RDD<TreePtr> trees = MakeRDDFromPartitions(ctx, std::move(parts));
    return IndexedSpatialRDD<V>(trees.Cache(), std::move(extents), order);
  }

 private:
  static constexpr uint32_t kMetaMagic = 0x53544958;  // "STIX"
  static constexpr uint32_t kPartMagic = 0x53544950;  // "STIP"
  /// Columnar slab part format ("STIC"): one ColumnarBatch of the
  /// STObjects followed by the Serde<V> payload column.
  static constexpr uint32_t kPartMagicColumnar = 0x53544943;

  RDD<TreePtr> trees_;
  std::shared_ptr<std::vector<Envelope>> extents_;  // may be null
  size_t order_;
};

/// \brief The paper's SpatialRDDFunctions: spatio-temporal operators over
/// an RDD of (STObject, V) pairs.
template <typename V>
class SpatialRDD {
 public:
  using Element = std::pair<STObject, V>;

  /// Wraps an existing engine RDD (no data movement).
  explicit SpatialRDD(RDD<Element> rdd,
                      std::shared_ptr<SpatialPartitioner> partitioner = nullptr)
      : rdd_(std::move(rdd)), partitioner_(std::move(partitioner)) {}

  /// Parallelizes a vector of pairs (quickstart path).
  static SpatialRDD FromVector(Context* ctx, std::vector<Element> data,
                               size_t num_partitions = 0) {
    return SpatialRDD(MakeRDD(ctx, std::move(data), num_partitions));
  }

  const RDD<Element>& rdd() const { return rdd_; }
  Context* ctx() const { return rdd_.ctx(); }
  size_t NumPartitions() const { return rdd_.NumPartitions(); }
  const std::shared_ptr<SpatialPartitioner>& partitioner() const {
    return partitioner_;
  }

  /// Spatially repartitions the data with \p partitioner: every element is
  /// assigned by the centroid of its spatial component, and the partition
  /// extents are grown by the element envelopes (§2.1). Materializes the
  /// shuffle (a Spark stage boundary).
  SpatialRDD PartitionBy(std::shared_ptr<SpatialPartitioner> partitioner) const {
    // Clone the partitioner and grow extents on the private clone: growing
    // the caller's (shared) instance would leave extents from *this*
    // dataset behind when the same partitioner is reused for another one,
    // silently defeating partition pruning there.
    std::shared_ptr<SpatialPartitioner> p = partitioner->Clone();
    p->ResetExtents();
    RDD<Element> shuffled = rdd_.PartitionBy(
        p->NumPartitions(), [p](const Element& e) {
          const size_t target =
              p->PartitionForST(e.first.Centroid(), e.first.time());
          p->GrowExtent(target, e.first.envelope());
          return target;
        });
    return SpatialRDD(std::move(shuffled), std::move(p));
  }

  /// Caches the underlying RDD.
  SpatialRDD Cache() const { return SpatialRDD(rdd_.Cache(), partitioner_); }

  // ---- Filter operators (unindexed scan + extent pruning) ---------------

  /// Generic filter: keeps elements e with pred.Eval(e, query) == true.
  /// When the data is spatially partitioned, partitions whose extent cannot
  /// contribute are skipped without touching their elements. \p stats, when
  /// non-null, must outlive the returned RDD's evaluation.
  RDD<Element> Filter(const STObject& query, const JoinPredicate& pred,
                      QueryStats* stats = nullptr) const {
    const Envelope probe = query.envelope().Expanded(pred.EnvelopeMargin());
    // Prune before computing: partitions whose extent misses the query are
    // never materialized (§2.1 — "decrease the number of data items to
    // process significantly").
    RDD<Element> source = rdd_;
    if (pred.Prunable() && partitioner_ != nullptr) {
      auto part = partitioner_;
      const std::optional<TemporalInterval> query_time = query.time();
      source = source.PrunePartitions(
          [part, probe, query_time, stats](size_t idx) {
            const bool keep = [&] {
              if (!part->PartitionExtent(idx).Intersects(probe)) return false;
              // Temporal pruning (spatio-temporal partitioners only): a
              // timed query can skip partitions whose time bounds miss its
              // interval — untimed objects in them could never match it
              // anyway.
              if (query_time.has_value()) {
                const auto bounds = part->PartitionTimeBounds(idx);
                if (bounds.has_value() &&
                    !bounds->Intersects(*query_time)) {
                  return false;
                }
              }
              return true;
            }();
            if (!keep) {
              if (stats) ++stats->partitions_pruned;
              GlobalFilterMetrics().partitions_pruned->Increment();
            }
            return keep;
          });
    }
    // Columnar plane: envelope-prefilter over the partition's SoA slabs,
    // then batched refinement — identical results and emission order to the
    // scalar loop below (the kernels replicate BoundPredicate::Eval's
    // arithmetic exactly). The batch is built once per partition and cached
    // on this SpatialRDD, so repeated filters reuse the slabs.
    const bool use_columnar =
        columnar::Enabled() && columnar_refine::Refinable(pred);
    auto cache = columnar_cache_;
    return source.MapPartitionsWithIndex(
        [query, pred, stats, use_columnar, cache,
         probe](size_t idx, std::vector<Element> items) {
          std::vector<Element> out;
          size_t prepared_hits = 0;
          size_t prepared_misses = 0;
          if (use_columnar && !items.empty()) {
            const ColumnarMetricSet& cm = GlobalColumnarMetrics();
            std::shared_ptr<const ColumnarBatch> batch;
            {
              std::lock_guard<std::mutex> lock(cache->mu);
              auto it = cache->batches.find(idx);
              if (it != cache->batches.end() &&
                  it->second->rows() == items.size()) {
                batch = it->second;
              }
            }
            if (batch != nullptr) {
              cm.slab_reuse->Increment();
            } else {
              auto built = std::make_shared<ColumnarBatch>(ColumnarBatch::Build(
                  items,
                  [](const Element& e) -> const STObject& { return e.first; }));
              std::lock_guard<std::mutex> lock(cache->mu);
              cache->batches[idx] = built;
              batch = std::move(built);
              cm.batches->Increment();
            }
            std::vector<uint32_t> cand;
            FilterEnvelopesBatch(batch->envelopes(), probe, &cand);
            columnar_refine::Stats cstats;
            if (!cand.empty()) {
              PreparedGeometry prep(query.geo());
              std::vector<uint32_t> scratch;
              columnar_refine::RefineCandidates(
                  *batch, pred, query, prep, /*cand_left=*/true, &cand,
                  [&items](uint32_t j) -> const STObject& {
                    return items[j].first;
                  },
                  &cstats, &scratch);
              const size_t refined = cstats.kernel_rows + cstats.fallback_rows;
              prepared_misses = refined > 0 ? 1 : 0;
              prepared_hits = refined > 0 ? refined - 1 : 0;
            }
            out.reserve(cand.size());
            for (const uint32_t j : cand) out.push_back(std::move(items[j]));
            cm.rows->Add(cstats.kernel_rows);
            cm.fallbacks->Add(cstats.fallback_rows);
          } else {
            // Prepared refinement: the query geometry is prepared on the
            // first element and reused for the rest of the partition.
            BoundPredicate bound(pred, query,
                                 BoundPredicate::Side::kCandidateLeft);
            for (auto& e : items) {
              if (bound.Eval(e.first)) out.push_back(std::move(e));
            }
            prepared_hits = bound.prepared_hits();
            prepared_misses = bound.prepared_misses();
            if (!items.empty() && columnar::Enabled()) {
              // Columnar was on but this predicate can't go through the
              // kernels (custom distance fn): the whole partition fell back.
              GlobalColumnarMetrics().fallbacks->Add(items.size());
            }
          }
          if (stats) {
            if (!items.empty()) ++stats->partitions_scanned;
            stats->candidates += items.size();
            stats->results += out.size();
          }
          const FilterMetricSet& global = GlobalFilterMetrics();
          if (!items.empty()) global.partitions_scanned->Increment();
          global.candidates->Add(items.size());
          global.results->Add(out.size());
          const IndexMetricSet& index_metrics = GlobalIndexMetrics();
          index_metrics.prepared_hits->Add(prepared_hits);
          index_metrics.prepared_misses->Add(prepared_misses);
          return out;
        });
  }

  /// Elements whose spatio-temporal component intersects \p query.
  RDD<Element> Intersects(const STObject& query) const {
    return Filter(query, JoinPredicate::Intersects());
  }
  /// Elements that completely contain \p query.
  RDD<Element> Contains(const STObject& query) const {
    return Filter(query, JoinPredicate::Contains());
  }
  /// Elements completely contained by \p query.
  RDD<Element> ContainedBy(const STObject& query) const {
    return Filter(query, JoinPredicate::ContainedBy());
  }
  /// Elements within \p max_distance of \p query under \p fn (Euclidean
  /// geometry distance when \p fn is null).
  RDD<Element> WithinDistance(const STObject& query, double max_distance,
                              DistanceFunction fn = nullptr) const {
    return Filter(query,
                  JoinPredicate::WithinDistance(max_distance, std::move(fn)));
  }

  /// Exact k nearest neighbors. The distance defaults to the minimum
  /// Euclidean geometry distance; pass \p fn to rank by a custom distance
  /// function (e.g. HaversineDistanceKm or a spatio-temporal combination),
  /// mirroring the paper's user-suppliable distance functions.
  std::vector<std::pair<double, Element>> Knn(const STObject& query, size_t k,
                                              DistanceFunction fn = nullptr)
      const {
    RDD<std::pair<double, Element>> locals = rdd_.MapPartitionsWithIndex(
        [query, k, fn](size_t, std::vector<Element> items) {
          std::vector<std::pair<double, Element>> local;
          local.reserve(items.size());
          for (auto& e : items) {
            // NaN from a user distance function would break partial_sort's
            // strict weak ordering; treat it as "infinitely far".
            const double dist = SanitizeDistance(
                fn ? fn(e.first, query) : Distance(e.first.geo(), query.geo()));
            local.emplace_back(dist, std::move(e));
          }
          const size_t keep = std::min(k, local.size());
          std::partial_sort(
              local.begin(), local.begin() + keep, local.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
          local.erase(local.begin() + static_cast<ptrdiff_t>(keep), local.end());
          return local;
        });
    std::vector<std::pair<double, Element>> all = locals.Collect();
    std::sort(all.begin(), all.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    if (all.size() > k) all.erase(all.begin() + static_cast<ptrdiff_t>(k), all.end());
    return all;
  }

  // ---- Indexing modes (§2.2) ---------------------------------------------

  /// Live indexing: the R-tree is built when a partition is processed —
  /// i.e. construction stays inside the lazy lineage and happens on every
  /// evaluation. Optionally repartitions first.
  IndexedSpatialRDD<V> LiveIndex(
      size_t order = 10,
      std::shared_ptr<SpatialPartitioner> partitioner = nullptr) const {
    const SpatialRDD source =
        partitioner ? PartitionBy(std::move(partitioner)) : *this;
    return IndexedSpatialRDD<V>(BuildTrees(source, order),
                                ExtentsOf(source), order);
  }

  /// Persistent-capable indexing: trees are built once (cached) and can be
  /// written to disk with IndexedSpatialRDD::Save and reused by Load.
  IndexedSpatialRDD<V> Index(
      size_t order = 10,
      std::shared_ptr<SpatialPartitioner> partitioner = nullptr) const {
    const SpatialRDD source =
        partitioner ? PartitionBy(std::move(partitioner)) : *this;
    return IndexedSpatialRDD<V>(BuildTrees(source, order).Cache(),
                                ExtentsOf(source), order);
  }

 private:
  using TreePtr = typename IndexedSpatialRDD<V>::TreePtr;

  static RDD<TreePtr> BuildTrees(const SpatialRDD& source, size_t order) {
    return source.rdd_.MapPartitionsWithIndex(
        [order](size_t, std::vector<Element> items) {
          std::vector<std::pair<Envelope, Element>> entries;
          entries.reserve(items.size());
          for (auto& e : items) {
            Envelope env = e.first.envelope();
            entries.emplace_back(env, std::move(e));
          }
          // STR bulk load straight into the packed SoA layout — no interim
          // pointer tree.
          return std::vector<TreePtr>{std::make_shared<PackedRTree<Element>>(
              order, std::move(entries))};
        });
  }

  static std::shared_ptr<std::vector<Envelope>> ExtentsOf(
      const SpatialRDD& source) {
    if (!source.partitioner_) return nullptr;
    auto extents = std::make_shared<std::vector<Envelope>>();
    for (size_t i = 0; i < source.partitioner_->NumPartitions(); ++i) {
      extents->push_back(source.partitioner_->PartitionExtent(i));
    }
    return extents;
  }

  /// Lazily-built columnar slabs, one ColumnarBatch per partition index.
  /// Shared by copies of this wrapper so repeated filters over the same
  /// dataset reuse the slabs instead of rebuilding them per query
  /// (engine.columnar.slab_reuse); entries are revalidated against the
  /// partition's row count before reuse. Partition contents are stable
  /// because RDD lineage recomputation is deterministic.
  struct ColumnarCache {
    std::mutex mu;
    std::unordered_map<size_t, std::shared_ptr<const ColumnarBatch>> batches;
  };

  RDD<Element> rdd_;
  std::shared_ptr<SpatialPartitioner> partitioner_;
  std::shared_ptr<ColumnarCache> columnar_cache_ =
      std::make_shared<ColumnarCache>();
};

/// Mirrors STARK's implicit Scala conversion: lifts a plain engine RDD of
/// (STObject, V) pairs into the spatial API.
template <typename V>
SpatialRDD<V> Spatial(RDD<std::pair<STObject, V>> rdd) {
  return SpatialRDD<V>(std::move(rdd));
}

}  // namespace stark

#endif  // STARK_SPATIAL_RDD_SPATIAL_RDD_H_
