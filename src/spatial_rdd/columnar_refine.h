/// \file columnar_refine.h
/// Bridges JoinPredicate semantics onto the columnar batch kernels: given a
/// candidate list (row indices into a ColumnarBatch, e.g. the survivors of
/// FilterEnvelopesBatch or an R-tree probe) and one fixed prepared operand,
/// refine the candidates batch-at-a-time with results and emission order
/// exactly equal to per-candidate BoundPredicate::Eval calls.
///
/// Point rows run through the RefineXxxBatch spatial kernels plus the
/// branchless TemporalOverlapBatch pass; non-point rows fall back to the
/// scalar prepared evaluation over the caller's original objects and are
/// counted as engine.columnar.fallbacks material. Mixed batches merge both
/// survivor streams back into the original candidate order, so callers can
/// substitute this for a scalar refinement loop without changing output.
#ifndef STARK_SPATIAL_RDD_COLUMNAR_REFINE_H_
#define STARK_SPATIAL_RDD_COLUMNAR_REFINE_H_

#include <cstdint>
#include <vector>

#include "core/columnar.h"
#include "geometry/kernels.h"
#include "spatial_rdd/predicate.h"

namespace stark {
namespace columnar_refine {

/// True when the batch kernels can evaluate \p pred at all. Custom
/// withinDistance functions interrogate whole STObjects and never go
/// through preparation, so they stay on the per-object path.
inline bool Refinable(const JoinPredicate& pred) {
  return !(pred.type == PredicateType::kWithinDistance &&
           pred.distance != nullptr);
}

/// Rows evaluated by the batch kernels vs the scalar fallback; callers
/// flush these into engine.columnar.{rows,fallbacks} once per task.
struct Stats {
  size_t kernel_rows = 0;
  size_t fallback_rows = 0;
};

namespace internal {

/// Spatial kernel dispatch for point candidates. The candidate fills the
/// `cand_left` operand slot, so the predicate maps onto the prepared fixed
/// side exactly as in EvalWithPreparedRight/Left: e.g. candidate-left
/// kContains means candidate.Contains(fixed), i.e. prep.ContainedByPoint.
inline size_t SpatialKernel(const ColumnarBatch& batch,
                            const JoinPredicate& pred,
                            const PreparedGeometry& prep, bool cand_left,
                            const uint32_t* cand, size_t count,
                            uint32_t* out) {
  const double* px = batch.x().data();
  const double* py = batch.y().data();
  switch (pred.type) {
    case PredicateType::kIntersects:
      return RefineIntersectsBatch(prep, px, py, cand, count, out);
    case PredicateType::kContains:
      return cand_left
                 ? RefineContainedByBatch(prep, px, py, cand, count, out)
                 : RefineContainsBatch(prep, px, py, cand, count, out);
    case PredicateType::kContainedBy:
      return cand_left
                 ? RefineContainsBatch(prep, px, py, cand, count, out)
                 : RefineContainedByBatch(prep, px, py, cand, count, out);
    case PredicateType::kWithinDistance:
      return RefineWithinDistanceBatch(prep, px, py, cand, count,
                                       pred.max_distance, out);
  }
  return 0;
}

/// Combined-temporal pass matching CombinedST's operand orientation:
/// kIntersects is symmetric; for the containment predicates the query
/// interval sits on the EvalTemporalPredicate left side iff
/// (candidate-left XOR pred == kContainedBy) — the same table
/// EvalWithPreparedRight/Left encode. withinDistance has no temporal
/// semantics and must not reach here.
inline size_t TemporalKernel(const ColumnarBatch& batch,
                             const JoinPredicate& pred, const STObject& fixed,
                             bool cand_left, const uint32_t* cand,
                             size_t count, uint32_t* out) {
  const bool query_has_time = fixed.HasTime();
  const int64_t qs = query_has_time ? fixed.time()->start() : 0;
  const int64_t qe = query_has_time ? fixed.time()->end() : 0;
  TemporalPredicate tpred = TemporalPredicate::kIntersects;
  bool query_is_left = true;
  if (pred.type != PredicateType::kIntersects) {
    tpred = TemporalPredicate::kContains;
    // kContains, candidate left: cand.t must contain fixed.t -> query right.
    // kContainedBy, candidate left: fixed.t must contain cand.t -> query
    // left. Candidate-right flips both.
    query_is_left = (pred.type == PredicateType::kContains) != cand_left;
  }
  return TemporalOverlapBatch(batch.t_start().data(), batch.t_end().data(),
                              batch.has_time().data(), query_has_time, qs, qe,
                              tpred, query_is_left, cand, count, out);
}

}  // namespace internal

/// Refines `*cand` in place against \p fixed (prepared as \p prep, which
/// must be built from fixed.geo()). \p cand_left states which operand slot
/// the candidates fill: true means Eval(c) == pred.Eval(c, fixed).
/// \p obj_at maps a row index to the original STObject and is consulted
/// only for non-point rows. \p scratch is caller-provided to keep the
/// per-probe hot path allocation-free once warmed up.
template <typename ObjAt>
inline void RefineCandidates(const ColumnarBatch& batch,
                             const JoinPredicate& pred, const STObject& fixed,
                             const PreparedGeometry& prep, bool cand_left,
                             std::vector<uint32_t>* cand, ObjAt&& obj_at,
                             Stats* stats, std::vector<uint32_t>* scratch) {
  const size_t in_count = cand->size();
  if (in_count == 0) return;
  const bool temporal = pred.type != PredicateType::kWithinDistance;

  if (batch.AllPoints()) {
    scratch->resize(in_count);
    size_t n = internal::SpatialKernel(batch, pred, prep, cand_left,
                                       cand->data(), in_count,
                                       scratch->data());
    if (temporal) {
      n = internal::TemporalKernel(batch, pred, fixed, cand_left,
                                   scratch->data(), n, cand->data());
      cand->resize(n);
    } else {
      cand->assign(scratch->begin(), scratch->begin() + n);
    }
    stats->kernel_rows += in_count;
    return;
  }

  // Mixed batch: split by row type (candidate order preserved within each
  // sublist), refine each side, then merge the two ordered survivor
  // subsequences back into the original candidate order.
  std::vector<uint32_t> point_cand;
  std::vector<uint32_t> object_survivors;
  point_cand.reserve(in_count);
  for (const uint32_t j : *cand) {
    if (batch.RowIsPoint(j)) {
      point_cand.push_back(j);
    } else {
      const STObject& obj = obj_at(j);
      const bool keep =
          cand_left ? EvalWithPreparedRight(pred, obj, fixed, prep)
                    : EvalWithPreparedLeft(pred, fixed, obj, prep);
      if (keep) object_survivors.push_back(j);
    }
  }
  stats->kernel_rows += point_cand.size();
  stats->fallback_rows += in_count - point_cand.size();

  scratch->resize(point_cand.size());
  size_t n = internal::SpatialKernel(batch, pred, prep, cand_left,
                                     point_cand.data(), point_cand.size(),
                                     scratch->data());
  const uint32_t* point_survivors = scratch->data();
  if (temporal) {
    n = internal::TemporalKernel(batch, pred, fixed, cand_left,
                                 scratch->data(), n, point_cand.data());
    point_survivors = point_cand.data();
  }

  // Both survivor lists are ordered subsequences of *cand with distinct row
  // values, so a two-cursor walk restores the original emission order.
  size_t out_n = 0, pk = 0, nk = 0;
  for (size_t i = 0; i < in_count; ++i) {
    const uint32_t j = (*cand)[i];
    bool keep = false;
    if (pk < n && point_survivors[pk] == j) {
      keep = true;
      ++pk;
    } else if (nk < object_survivors.size() && object_survivors[nk] == j) {
      keep = true;
      ++nk;
    }
    (*cand)[out_n] = j;
    out_n += keep ? 1 : 0;
  }
  cand->resize(out_n);
}

}  // namespace columnar_refine
}  // namespace stark

#endif  // STARK_SPATIAL_RDD_COLUMNAR_REFINE_H_
