/// \file join.h
/// Spatio-temporal join (§2.3). STARK assigns each element to exactly one
/// partition (centroid assignment) and keeps overlapping partition extents,
/// so the join enumerates partition *pairs* whose extents can satisfy the
/// predicate, builds a live R-tree over each participating left partition,
/// and probes it with the right partitions — no replication, no result
/// deduplication (contrast with the GeoSpark-style baseline).
#ifndef STARK_SPATIAL_RDD_JOIN_H_
#define STARK_SPATIAL_RDD_JOIN_H_

#include <memory>
#include <utility>
#include <vector>

#include "spatial_rdd/spatial_rdd.h"

namespace stark {

/// Tuning knobs for SpatialJoin.
struct JoinOptions {
  /// Order of the live R-tree built over each left partition; 0 disables
  /// indexing and uses a nested-loop per partition pair ("No Indexing").
  size_t index_order = 10;
};

/// \brief Joins two spatial RDDs on \p pred and emits project(l, r) for
/// every matching pair — the projection runs inside the join tasks, so
/// callers that only need payloads (or ids) avoid materializing full
/// geometry pairs.
///
/// The result is materialized with one output partition per surviving
/// partition pair. Correctness does not require spatial partitioning; with
/// it, extent pruning skips partition pairs that cannot match.
template <typename V, typename W, typename Project>
auto SpatialJoinProject(const SpatialRDD<V>& left, const SpatialRDD<W>& right,
                        const JoinPredicate& pred, const JoinOptions& options,
                        Project project)
    -> RDD<std::invoke_result_t<Project, const std::pair<STObject, V>&,
                                const std::pair<STObject, W>&>> {
  using L = std::pair<STObject, V>;
  using R = std::pair<STObject, W>;
  using Out = std::invoke_result_t<Project, const L&, const R&>;

  Context* ctx = left.ctx();
  const size_t nl = left.NumPartitions();
  const size_t nr = right.NumPartitions();
  const double margin = pred.EnvelopeMargin();

  // Enumerate candidate partition pairs, pruned by extents when available.
  const auto& lp = left.partitioner();
  const auto& rp = right.partitioner();
  const bool can_prune = pred.Prunable() && lp != nullptr && rp != nullptr;
  std::vector<std::pair<size_t, size_t>> pairs;
  pairs.reserve(can_prune ? nl + nr : nl * nr);
  for (size_t i = 0; i < nl; ++i) {
    for (size_t j = 0; j < nr; ++j) {
      if (can_prune) {
        const Envelope le = lp->PartitionExtent(i).Expanded(margin);
        if (!le.Intersects(rp->PartitionExtent(j))) continue;
      }
      pairs.emplace_back(i, j);
    }
  }

  // Materialize both sides once.
  std::vector<std::vector<L>> left_parts = left.rdd().CollectPartitions();
  std::vector<std::vector<R>> right_parts = right.rdd().CollectPartitions();

  // Build a live index over each participating left partition (once, not
  // once per pair).
  std::vector<char> left_used(nl, 0);
  for (const auto& [i, j] : pairs) {
    (void)j;
    left_used[i] = 1;
  }
  std::vector<std::unique_ptr<RTree<size_t>>> left_trees(nl);
  if (options.index_order > 0) {
    ctx->pool().ParallelFor(nl, [&](size_t i) {
      if (!left_used[i]) return;
      auto tree = std::make_unique<RTree<size_t>>(options.index_order);
      std::vector<std::pair<Envelope, size_t>> entries;
      entries.reserve(left_parts[i].size());
      for (size_t e = 0; e < left_parts[i].size(); ++e) {
        entries.emplace_back(left_parts[i][e].first.envelope(), e);
      }
      tree->BulkLoad(std::move(entries));
      left_trees[i] = std::move(tree);
    });
  }

  // Probe: one task per partition pair.
  std::vector<std::vector<Out>> out(pairs.size());
  ctx->pool().ParallelFor(pairs.size(), [&](size_t t) {
    const auto [i, j] = pairs[t];
    const std::vector<L>& lv = left_parts[i];
    const std::vector<R>& rv = right_parts[j];
    std::vector<Out>& sink = out[t];
    if (options.index_order > 0 && pred.Prunable()) {
      const RTree<size_t>& tree = *left_trees[i];
      for (const R& r : rv) {
        const Envelope probe = r.first.envelope().Expanded(margin);
        tree.Query(probe, [&](const Envelope&, const size_t& e) {
          if (pred.Eval(lv[e].first, r.first)) {
            sink.push_back(project(lv[e], r));
          }
        });
      }
    } else {
      for (const L& l : lv) {
        for (const R& r : rv) {
          if (pred.Eval(l.first, r.first)) sink.push_back(project(l, r));
        }
      }
    }
  });

  return MakeRDDFromPartitions(ctx, std::move(out));
}

/// Joins two spatial RDDs on \p pred; emits every full pair (l, r) with
/// pred.Eval(l.first, r.first) == true.
template <typename V, typename W>
RDD<std::pair<std::pair<STObject, V>, std::pair<STObject, W>>> SpatialJoin(
    const SpatialRDD<V>& left, const SpatialRDD<W>& right,
    const JoinPredicate& pred, const JoinOptions& options = {}) {
  using L = std::pair<STObject, V>;
  using R = std::pair<STObject, W>;
  return SpatialJoinProject(left, right, pred, options,
                            [](const L& l, const R& r) {
                              return std::pair<L, R>(l, r);
                            });
}

/// \brief Self join that excludes the trivial identity matches: each
/// element is tagged with a unique id and pairs (x, x) are dropped; both
/// orderings of a matching pair are emitted (standard join semantics).
template <typename V>
RDD<std::pair<std::pair<STObject, std::pair<V, size_t>>,
              std::pair<STObject, std::pair<V, size_t>>>>
SelfSpatialJoin(const SpatialRDD<V>& data, const JoinPredicate& pred,
                const JoinOptions& options = {}) {
  using Tagged = std::pair<STObject, std::pair<V, size_t>>;
  RDD<Tagged> tagged =
      data.rdd().ZipWithIndex().Map([](std::pair<std::pair<STObject, V>,
                                                 size_t>& e) {
        return Tagged{std::move(e.first.first),
                      {std::move(e.first.second), e.second}};
      });
  SpatialRDD<std::pair<V, size_t>> wrapped(tagged.Cache(),
                                           data.partitioner());
  auto joined = SpatialJoin(wrapped, wrapped, pred, options);
  return joined.Filter([](const std::pair<Tagged, Tagged>& pair) {
    return pair.first.second.second != pair.second.second.second;
  });
}

}  // namespace stark

#endif  // STARK_SPATIAL_RDD_JOIN_H_
