/// \file join.h
/// Spatio-temporal join (§2.3). STARK assigns each element to exactly one
/// partition (centroid assignment) and keeps overlapping partition extents,
/// so the join enumerates partition *pairs* whose extents can satisfy the
/// predicate, indexes the left side, and probes it with the right
/// partitions — no replication, no result deduplication (contrast with the
/// GeoSpark-style baseline).
///
/// Three execution strategies (see docs/JOINS.md):
///  - live-index: build an R-tree over each participating left partition at
///    join time (the classic STARK plan);
///  - cached-index: the overloads taking an IndexedSpatialRDD probe the
///    trees built by Index()/LiveIndex()/Load() instead of rebuilding —
///    `engine.join.tree_builds` stays 0 on this path;
///  - broadcast: when one side is small (`JoinOptions::broadcast_threshold`),
///    it is flattened into a single R-tree and probed against every
///    partition of the large side, skipping partition-pair enumeration.
///
/// Probe work is scheduled skew-aware: per-pair cost is estimated as
/// |probe| * log(|indexed|) (indexed) or |probe| * |build| (nested loop),
/// pairs whose cost exceeds `skew_split_factor` times the mean are split
/// into probe sub-range tasks, and tasks run longest-first so one dense
/// partition no longer serializes the join.
#ifndef STARK_SPATIAL_RDD_JOIN_H_
#define STARK_SPATIAL_RDD_JOIN_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/columnar.h"
#include "engine/context.h"
#include "geometry/prepared.h"
#include "index/packed_rtree.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "spatial_rdd/columnar_refine.h"
#include "spatial_rdd/query_stats.h"
#include "spatial_rdd/spatial_rdd.h"

namespace stark {

/// Tuning knobs for SpatialJoin.
struct JoinOptions {
  /// Order of the R-tree built over each left partition (live path) or over
  /// the broadcast side; 0 disables indexing and uses a nested-loop per
  /// partition pair ("No Indexing"). Ignored by the cached-index overloads,
  /// which reuse the trees as built.
  size_t index_order = 10;

  /// When > 0 and one side's total element count is <= this threshold, that
  /// side is broadcast: flattened into one R-tree probed by every partition
  /// of the other side, instead of enumerating nl x nr partition pairs.
  /// 0 disables broadcasting.
  size_t broadcast_threshold = 0;

  /// A partition pair whose estimated cost exceeds this factor times the
  /// mean pair cost is split into probe sub-range tasks (skew mitigation).
  /// <= 0 disables splitting.
  double skew_split_factor = 4.0;

  /// Upper bound on the number of sub-range tasks one pair is split into.
  size_t max_subtasks_per_pair = 32;
};

/// Global named-metric mirrors for the join engine, registered in
/// obs::DefaultMetrics() under engine.join.* (the join analogue of
/// GlobalFilterMetrics). Counters are batched per task, never per element.
struct JoinMetricSet {
  obs::Counter* pairs_enumerated;  ///< partition pairs turned into tasks
  obs::Counter* pairs_pruned;      ///< partition pairs skipped by extents
  obs::Counter* pairs_split;       ///< pairs split into sub-range tasks
  obs::Counter* subtasks;          ///< probe tasks actually scheduled
  obs::Counter* tree_builds;       ///< R-trees built by the join itself
  obs::Counter* tree_reuse_hits;   ///< cached trees probed without rebuild
  obs::Counter* broadcast_joins;   ///< joins that took the broadcast path
  obs::Counter* prefilter_skips;   ///< nested-loop pairs rejected by envelope
  obs::Counter* results;           ///< result records emitted
};

inline const JoinMetricSet& GlobalJoinMetrics() {
  static const JoinMetricSet metrics = [] {
    obs::MetricsRegistry& m = obs::DefaultMetrics();
    return JoinMetricSet{
        m.GetCounter("engine.join.pairs_enumerated"),
        m.GetCounter("engine.join.pairs_pruned"),
        m.GetCounter("engine.join.pairs_split"),
        m.GetCounter("engine.join.subtasks"),
        m.GetCounter("engine.join.tree_builds"),
        m.GetCounter("engine.join.tree_reuse_hits"),
        m.GetCounter("engine.join.broadcast_joins"),
        m.GetCounter("engine.join.prefilter_skips"),
        m.GetCounter("engine.join.results"),
    };
  }();
  return metrics;
}

namespace join_internal {

/// One schedulable unit of probe work: right-partition elements
/// [begin, end) probed against left partition `left`. A whole pair is one
/// task with [0, |R_j|); a skew-split pair becomes several tasks over
/// disjoint sub-ranges.
struct ProbeTask {
  size_t left = 0;
  size_t right = 0;
  size_t begin = 0;
  size_t end = 0;
  double cost = 0.0;
};

/// Estimated cost of probing \p probe_count elements against a partition of
/// \p build_count elements. Indexed probes are logarithmic in the indexed
/// side, nested loops linear. The +2 keeps log2 positive for tiny trees.
inline double PairCost(size_t probe_count, size_t build_count, bool indexed) {
  if (indexed) {
    return static_cast<double>(probe_count) *
           std::log2(2.0 + static_cast<double>(build_count));
  }
  return static_cast<double>(probe_count) * static_cast<double>(build_count);
}

/// \brief Turns surviving partition pairs into an ordered probe-task list.
///
/// Cost per pair is PairCost(|R_j|, |L_i|, indexed). Pairs whose cost
/// exceeds `skew_split_factor` times the mean are split into up to
/// `max_subtasks_per_pair` equal probe sub-ranges (each targeting roughly
/// the mean cost); the final list is sorted cost-descending, which on the
/// FIFO worker pool schedules the longest tasks first (LPT). Increments
/// the pairs_split counter via \p pairs_split when non-null.
inline std::vector<ProbeTask> PlanProbeTasks(
    const std::vector<std::pair<size_t, size_t>>& pairs,
    const std::vector<size_t>& left_sizes,
    const std::vector<size_t>& right_sizes, bool indexed,
    const JoinOptions& options, size_t* pairs_split = nullptr) {
  std::vector<ProbeTask> tasks;
  tasks.reserve(pairs.size());
  double total_cost = 0.0;
  for (const auto& [i, j] : pairs) {
    ProbeTask t;
    t.left = i;
    t.right = j;
    t.begin = 0;
    t.end = right_sizes[j];
    t.cost = PairCost(right_sizes[j], left_sizes[i], indexed);
    total_cost += t.cost;
    tasks.push_back(t);
  }

  if (options.skew_split_factor > 0.0 && tasks.size() > 1) {
    const double mean = total_cost / static_cast<double>(tasks.size());
    const double limit = mean * options.skew_split_factor;
    std::vector<ProbeTask> expanded;
    expanded.reserve(tasks.size());
    size_t split_count = 0;
    for (const ProbeTask& t : tasks) {
      const size_t range = t.end - t.begin;
      size_t subtasks = 1;
      if (mean > 0.0 && t.cost > limit && range > 1) {
        subtasks = static_cast<size_t>(std::ceil(t.cost / mean));
        subtasks = std::min({subtasks, options.max_subtasks_per_pair, range});
      }
      if (subtasks <= 1) {
        expanded.push_back(t);
        continue;
      }
      ++split_count;
      const size_t chunk = (range + subtasks - 1) / subtasks;
      for (size_t b = t.begin; b < t.end; b += chunk) {
        ProbeTask sub = t;
        sub.begin = b;
        sub.end = std::min(t.end, b + chunk);
        sub.cost = t.cost * static_cast<double>(sub.end - sub.begin) /
                   static_cast<double>(range);
        expanded.push_back(sub);
      }
    }
    if (pairs_split != nullptr) *pairs_split = split_count;
    tasks = std::move(expanded);
  } else if (pairs_split != nullptr) {
    *pairs_split = 0;
  }

  // Longest-first: the pool consumes its queue in submission order, so a
  // descending sort is a priority schedule that stops the biggest pair
  // from being picked up last and dragging the join's tail.
  std::stable_sort(tasks.begin(), tasks.end(),
                   [](const ProbeTask& a, const ProbeTask& b) {
                     return a.cost > b.cost;
                   });
  return tasks;
}

/// Trace annotation for a probe task, e.g. "L3xR1" or "L3xR1 [500,1000)"
/// for a skew-split sub-range.
inline std::string TaskDetail(const ProbeTask& t, size_t full_range) {
  std::string d = "L" + std::to_string(t.left) + "xR" + std::to_string(t.right);
  if (t.begin != 0 || t.end != full_range) {
    d += " [" + std::to_string(t.begin) + "," + std::to_string(t.end) + ")";
  }
  return d;
}

/// Annotates the current task span (when tracing or profiling) with the
/// probe detail, record counts, and index candidate/refined counts; no-op
/// outside an observed task.
inline void AnnotateSpan(const std::string& detail, size_t records_in,
                         size_t records_out, size_t candidates = 0,
                         size_t refined = 0) {
  if (obs::TaskSpan* span = obs::CurrentTaskSpan()) {
    span->detail = detail;
    span->records_in = records_in;
    span->records_out = records_out;
    span->candidates = candidates;
    span->refined = refined;
  }
}

/// Suffix describing the packed-index / prepared-geometry work a task did,
/// appended to its span detail (e.g. " packed_probes=128 prepared=500/3").
inline std::string IndexDetail(size_t packed_probes, size_t prepared_hits,
                               size_t prepared_misses) {
  return " packed_probes=" + std::to_string(packed_probes) +
         " prepared=" + std::to_string(prepared_hits) + "/" +
         std::to_string(prepared_misses);
}

/// Flushes task-local packed/prepared counters into the global metric set
/// (once per task — the granularity rule).
inline void FlushIndexMetrics(size_t packed_probes, size_t prepared_hits,
                              size_t prepared_misses) {
  const IndexMetricSet& m = GlobalIndexMetrics();
  m.packed_probes->Add(packed_probes);
  m.prepared_hits->Add(prepared_hits);
  m.prepared_misses->Add(prepared_misses);
}

}  // namespace join_internal

/// \brief Joins two spatial RDDs on \p pred and emits project(l, r) for
/// every matching pair — the projection runs inside the join tasks, so
/// callers that only need payloads (or ids) avoid materializing full
/// geometry pairs.
///
/// Live-index strategy: an R-tree is built over each participating left
/// partition at join time (skipped entirely when the predicate cannot use
/// it). With `options.broadcast_threshold` set and one side small enough,
/// the broadcast strategy is taken instead. Correctness does not require
/// spatial partitioning; with it, extent pruning skips partition pairs that
/// cannot match.
template <typename V, typename W, typename Project>
auto SpatialJoinProject(const SpatialRDD<V>& left, const SpatialRDD<W>& right,
                        const JoinPredicate& pred, const JoinOptions& options,
                        Project project)
    -> RDD<std::invoke_result_t<Project, const std::pair<STObject, V>&,
                                const std::pair<STObject, W>&>> {
  using L = std::pair<STObject, V>;
  using R = std::pair<STObject, W>;
  using Out = std::invoke_result_t<Project, const L&, const R&>;
  namespace ji = join_internal;

  Context* ctx = left.ctx();
  const size_t nl = left.NumPartitions();
  const size_t nr = right.NumPartitions();
  const double margin = pred.EnvelopeMargin();
  const JoinMetricSet& metrics = GlobalJoinMetrics();

  // An index only helps predicates that admit envelope candidate pruning;
  // for the rest, building trees would be pure wasted work.
  const bool use_index = options.index_order > 0 && pred.Prunable();

  // Materialize both sides once.
  std::vector<std::vector<L>> left_parts = left.rdd().CollectPartitions();
  std::vector<std::vector<R>> right_parts = right.rdd().CollectPartitions();
  std::vector<size_t> left_sizes(nl, 0);
  std::vector<size_t> right_sizes(nr, 0);
  size_t total_l = 0;
  size_t total_r = 0;
  for (size_t i = 0; i < nl; ++i) total_l += left_sizes[i] = left_parts[i].size();
  for (size_t j = 0; j < nr; ++j) total_r += right_sizes[j] = right_parts[j].size();

  // ---- Broadcast strategy -------------------------------------------------
  // One side fits under the threshold: flatten it, index it once, and probe
  // it from every partition of the other side — no pair enumeration at all.
  // The small side's geometries are stable for the whole join, so each task
  // refines through a PreparedGeometryCache keyed on them: one preparation
  // per distinct small geometry per task, reuse for every repeat candidate.
  // Custom withinDistance functions bypass preparation (the kernels never
  // see the geometry).
  const bool custom_fn =
      pred.type == PredicateType::kWithinDistance && pred.distance != nullptr;
  if (options.broadcast_threshold > 0 &&
      std::min(total_l, total_r) <= options.broadcast_threshold) {
    metrics.broadcast_joins->Increment();
    if (total_r <= total_l) {
      // Broadcast the right side; one task per left partition.
      std::vector<R> small;
      small.reserve(total_r);
      for (auto& part : right_parts) {
        for (auto& r : part) small.push_back(std::move(r));
      }
      PackedRTree<size_t> tree;
      if (use_index) {
        std::vector<std::pair<Envelope, size_t>> entries;
        entries.reserve(small.size());
        for (size_t e = 0; e < small.size(); ++e) {
          entries.emplace_back(small[e].first.envelope(), e);
        }
        tree = PackedRTree<size_t>(options.index_order, std::move(entries));
        metrics.tree_builds->Increment();
      }
      // Columnar refinement: the broadcast side is stable for the whole
      // join, so build its SoA batch once and refine each probe's candidate
      // list through the batch kernels (the probe becomes the prepared
      // fixed operand). Results and emission order are identical to the
      // scalar refine.
      std::unique_ptr<const ColumnarBatch> small_batch;
      if (use_index && columnar::Enabled() &&
          columnar_refine::Refinable(pred) && !small.empty() &&
          small.size() <= UINT32_MAX) {
        small_batch = std::make_unique<const ColumnarBatch>(ColumnarBatch::Build(
            small, [](const R& e) -> const STObject& { return e.first; }));
        GlobalColumnarMetrics().batches->Increment();
      }
      std::vector<std::vector<Out>> out(nl);
      ctx->RunTasks("spatial.join.broadcast", nl, [&](size_t i) {
        std::vector<Out>& sink = out[i];
        sink.clear();  // retry-idempotent: a re-run starts from scratch
        size_t prefilter_skips = 0;
        size_t probed = 0;
        size_t packed_probes = 0;
        size_t prep_hits = 0;
        size_t prep_misses = 0;
        PreparedGeometryCache cache;
        columnar_refine::Stats cstats;
        std::vector<uint32_t> cand;
        std::vector<uint32_t> scratch;
        auto refine = [&](const L& l, const R& r) {
          return custom_fn ? pred.Eval(l.first, r.first)
                           : EvalWithPreparedRight(pred, l.first, r.first,
                                                   cache.Get(r.first.geo()));
        };
        for (const L& l : left_parts[i]) {
          // Cooperative checkpoint: long probe tasks stop here when their
          // job is cancelled or past its deadline.
          if ((probed++ & 1023u) == 0) ThrowIfTaskCancelled();
          const Envelope probe = l.first.envelope().Expanded(margin);
          if (small_batch != nullptr) {
            cand.clear();
            tree.Query(probe, [&](const Envelope&, const size_t& e) {
              cand.push_back(static_cast<uint32_t>(e));
            });
            ++packed_probes;
            if (!cand.empty()) {
              const size_t in_count = cand.size();
              PreparedGeometry prep(l.first.geo());
              columnar_refine::RefineCandidates(
                  *small_batch, pred, l.first, prep, /*cand_left=*/false,
                  &cand,
                  [&](uint32_t e) -> const STObject& {
                    return small[e].first;
                  },
                  &cstats, &scratch);
              prep_misses += 1;
              prep_hits += in_count - 1;
              for (const uint32_t e : cand) sink.push_back(project(l, small[e]));
            }
          } else if (use_index) {
            tree.Query(probe, [&](const Envelope&, const size_t& e) {
              if (refine(l, small[e])) sink.push_back(project(l, small[e]));
            });
            ++packed_probes;
          } else {
            for (const R& r : small) {
              if (pred.Prunable() && !probe.Intersects(r.first.envelope())) {
                ++prefilter_skips;
                continue;
              }
              if (refine(l, r)) sink.push_back(project(l, r));
            }
          }
        }
        if (small_batch != nullptr) {
          const ColumnarMetricSet& cm = GlobalColumnarMetrics();
          cm.rows->Add(cstats.kernel_rows);
          cm.fallbacks->Add(cstats.fallback_rows);
          cm.slab_reuse->Increment();  // batch + envelope slab shared by task
        }
        ji::AnnotateSpan("L" + std::to_string(i) + "xR* (broadcast)" +
                             ji::IndexDetail(packed_probes,
                                             cache.hits() + prep_hits,
                                             cache.misses() + prep_misses),
                         left_parts[i].size(), sink.size(), packed_probes,
                         sink.size());
        metrics.prefilter_skips->Add(prefilter_skips);
        metrics.results->Add(sink.size());
        ji::FlushIndexMetrics(packed_probes, cache.hits() + prep_hits,
                              cache.misses() + prep_misses);
      });
      return MakeRDDFromPartitions(ctx, std::move(out));
    }
    // Broadcast the left side; one task per right partition.
    std::vector<L> small;
    small.reserve(total_l);
    for (auto& part : left_parts) {
      for (auto& l : part) small.push_back(std::move(l));
    }
    PackedRTree<size_t> tree;
    if (use_index) {
      std::vector<std::pair<Envelope, size_t>> entries;
      entries.reserve(small.size());
      for (size_t e = 0; e < small.size(); ++e) {
        entries.emplace_back(small[e].first.envelope(), e);
      }
      tree = PackedRTree<size_t>(options.index_order, std::move(entries));
      metrics.tree_builds->Increment();
    }
    // Columnar refinement over the stable broadcast side (see the
    // right-broadcast branch above); here the candidates fill the left
    // operand slot.
    std::unique_ptr<const ColumnarBatch> small_batch;
    if (use_index && columnar::Enabled() && columnar_refine::Refinable(pred) &&
        !small.empty() && small.size() <= UINT32_MAX) {
      small_batch = std::make_unique<const ColumnarBatch>(ColumnarBatch::Build(
          small, [](const L& e) -> const STObject& { return e.first; }));
      GlobalColumnarMetrics().batches->Increment();
    }
    std::vector<std::vector<Out>> out(nr);
    ctx->RunTasks("spatial.join.broadcast", nr, [&](size_t j) {
      std::vector<Out>& sink = out[j];
      sink.clear();
      size_t prefilter_skips = 0;
      size_t probed = 0;
      size_t packed_probes = 0;
      size_t prep_hits = 0;
      size_t prep_misses = 0;
      PreparedGeometryCache cache;
      columnar_refine::Stats cstats;
      std::vector<uint32_t> cand;
      std::vector<uint32_t> scratch;
      auto refine = [&](const L& l, const R& r) {
        return custom_fn ? pred.Eval(l.first, r.first)
                         : EvalWithPreparedLeft(pred, l.first, r.first,
                                                cache.Get(l.first.geo()));
      };
      for (const R& r : right_parts[j]) {
        if ((probed++ & 1023u) == 0) ThrowIfTaskCancelled();
        const Envelope probe = r.first.envelope().Expanded(margin);
        if (small_batch != nullptr) {
          cand.clear();
          tree.Query(probe, [&](const Envelope&, const size_t& e) {
            cand.push_back(static_cast<uint32_t>(e));
          });
          ++packed_probes;
          if (!cand.empty()) {
            const size_t in_count = cand.size();
            PreparedGeometry prep(r.first.geo());
            columnar_refine::RefineCandidates(
                *small_batch, pred, r.first, prep, /*cand_left=*/true, &cand,
                [&](uint32_t e) -> const STObject& { return small[e].first; },
                &cstats, &scratch);
            prep_misses += 1;
            prep_hits += in_count - 1;
            for (const uint32_t e : cand) sink.push_back(project(small[e], r));
          }
        } else if (use_index) {
          tree.Query(probe, [&](const Envelope&, const size_t& e) {
            if (refine(small[e], r)) sink.push_back(project(small[e], r));
          });
          ++packed_probes;
        } else {
          for (const L& l : small) {
            if (pred.Prunable() && !probe.Intersects(l.first.envelope())) {
              ++prefilter_skips;
              continue;
            }
            if (refine(l, r)) sink.push_back(project(l, r));
          }
        }
      }
      if (small_batch != nullptr) {
        const ColumnarMetricSet& cm = GlobalColumnarMetrics();
        cm.rows->Add(cstats.kernel_rows);
        cm.fallbacks->Add(cstats.fallback_rows);
        cm.slab_reuse->Increment();  // batch + envelope slab shared by task
      }
      ji::AnnotateSpan("L*xR" + std::to_string(j) + " (broadcast)" +
                           ji::IndexDetail(packed_probes,
                                           cache.hits() + prep_hits,
                                           cache.misses() + prep_misses),
                       right_parts[j].size(), sink.size(), packed_probes,
                       sink.size());
      metrics.prefilter_skips->Add(prefilter_skips);
      metrics.results->Add(sink.size());
      ji::FlushIndexMetrics(packed_probes, cache.hits() + prep_hits,
                            cache.misses() + prep_misses);
    });
    return MakeRDDFromPartitions(ctx, std::move(out));
  }

  // ---- Partition-pair strategy (live index / nested loop) ----------------
  // Enumerate candidate partition pairs, pruned by extents when available.
  const auto& lp = left.partitioner();
  const auto& rp = right.partitioner();
  const bool can_prune = pred.Prunable() && lp != nullptr && rp != nullptr;
  std::vector<std::pair<size_t, size_t>> pairs;
  pairs.reserve(can_prune ? nl + nr : nl * nr);
  size_t pruned = 0;
  for (size_t i = 0; i < nl; ++i) {
    for (size_t j = 0; j < nr; ++j) {
      if (can_prune) {
        const Envelope le = lp->PartitionExtent(i).Expanded(margin);
        if (!le.Intersects(rp->PartitionExtent(j))) {
          ++pruned;
          continue;
        }
      }
      pairs.emplace_back(i, j);
    }
  }
  metrics.pairs_enumerated->Add(pairs.size());
  metrics.pairs_pruned->Add(pruned);

  // Build a live index over each participating left partition (once, not
  // once per pair) — but only when the predicate can actually use it.
  std::vector<char> left_used(nl, 0);
  for (const auto& [i, j] : pairs) {
    (void)j;
    left_used[i] = 1;
  }
  std::vector<std::unique_ptr<PackedRTree<size_t>>> left_trees(nl);
  // Columnar refinement: hoist the SoA batch build into the same stage that
  // builds the live trees — one batch per participating left partition,
  // reused by every probe task that targets it (skew-split sub-tasks of the
  // same pair share one slab: engine.columnar.slab_reuse).
  const bool use_columnar =
      use_index && columnar::Enabled() && columnar_refine::Refinable(pred);
  std::vector<std::unique_ptr<const ColumnarBatch>> left_batches(nl);
  if (use_index) {
    size_t builds = 0;
    for (size_t i = 0; i < nl; ++i) builds += left_used[i] ? 1 : 0;
    size_t batch_builds = 0;
    ctx->RunTasks("spatial.join.build", nl, [&](size_t i) {
      if (!left_used[i]) return;
      std::vector<std::pair<Envelope, size_t>> entries;
      entries.reserve(left_parts[i].size());
      for (size_t e = 0; e < left_parts[i].size(); ++e) {
        entries.emplace_back(left_parts[i][e].first.envelope(), e);
      }
      left_trees[i] = std::make_unique<PackedRTree<size_t>>(
          options.index_order, std::move(entries));
      if (use_columnar && !left_parts[i].empty() &&
          left_parts[i].size() <= UINT32_MAX) {
        left_batches[i] =
            std::make_unique<const ColumnarBatch>(ColumnarBatch::Build(
                left_parts[i],
                [](const L& e) -> const STObject& { return e.first; }));
      }
    });
    for (size_t i = 0; i < nl; ++i) batch_builds += left_batches[i] ? 1 : 0;
    metrics.tree_builds->Add(builds);
    GlobalColumnarMetrics().batches->Add(batch_builds);
  }

  // Plan the probe schedule: per-pair costs, skew splitting, longest-first.
  size_t pairs_split = 0;
  const std::vector<ji::ProbeTask> tasks = ji::PlanProbeTasks(
      pairs, left_sizes, right_sizes, use_index, options, &pairs_split);
  metrics.pairs_split->Add(pairs_split);
  metrics.subtasks->Add(tasks.size());

  std::vector<std::vector<Out>> out(tasks.size());
  ctx->RunTasks("spatial.join.probe", tasks.size(), [&](size_t t) {
    const ji::ProbeTask& task = tasks[t];
    const std::vector<L>& lv = left_parts[task.left];
    const std::vector<R>& rv = right_parts[task.right];
    std::vector<Out>& sink = out[t];
    sink.clear();  // retry-idempotent: a re-run starts from scratch
    size_t prefilter_skips = 0;
    size_t packed_probes = 0;
    size_t prep_hits = 0;
    size_t prep_misses = 0;
    if (use_index && left_batches[task.left] != nullptr) {
      // Columnar probe: collect the tree's candidate rows, then refine them
      // batch-at-a-time against the probe's prepared geometry. Survivors
      // come back in candidate order, so emission matches the scalar path.
      const PackedRTree<size_t>& tree = *left_trees[task.left];
      const ColumnarBatch& batch = *left_batches[task.left];
      columnar_refine::Stats cstats;
      std::vector<uint32_t> cand;
      std::vector<uint32_t> scratch;
      if (task.begin != 0) {
        // A skew-split sub-task reuses the slab its sibling built.
        GlobalColumnarMetrics().slab_reuse->Increment();
      }
      for (size_t rix = task.begin; rix < task.end; ++rix) {
        if (((rix - task.begin) & 1023u) == 0) ThrowIfTaskCancelled();
        const R& r = rv[rix];
        const Envelope probe = r.first.envelope().Expanded(margin);
        cand.clear();
        tree.Query(probe, [&](const Envelope&, const size_t& e) {
          cand.push_back(static_cast<uint32_t>(e));
        });
        ++packed_probes;
        if (cand.empty()) continue;
        const size_t in_count = cand.size();
        PreparedGeometry prep(r.first.geo());
        columnar_refine::RefineCandidates(
            batch, pred, r.first, prep, /*cand_left=*/true, &cand,
            [&](uint32_t e) -> const STObject& { return lv[e].first; },
            &cstats, &scratch);
        prep_misses += 1;
        prep_hits += in_count - 1;
        for (const uint32_t e : cand) sink.push_back(project(lv[e], r));
      }
      const ColumnarMetricSet& cm = GlobalColumnarMetrics();
      cm.rows->Add(cstats.kernel_rows);
      cm.fallbacks->Add(cstats.fallback_rows);
    } else if (use_index) {
      const PackedRTree<size_t>& tree = *left_trees[task.left];
      for (size_t rix = task.begin; rix < task.end; ++rix) {
        // Cooperative checkpoint for cancellation/deadline/speculation.
        if (((rix - task.begin) & 1023u) == 0) ThrowIfTaskCancelled();
        const R& r = rv[rix];
        const Envelope probe = r.first.envelope().Expanded(margin);
        // The probe row is the fixed operand for every candidate this
        // query returns — prepare it lazily via a bound predicate.
        BoundPredicate bound(pred, r.first,
                             BoundPredicate::Side::kCandidateLeft);
        tree.Query(probe, [&](const Envelope&, const size_t& e) {
          if (bound.Eval(lv[e].first)) sink.push_back(project(lv[e], r));
        });
        ++packed_probes;
        prep_hits += bound.prepared_hits();
        prep_misses += bound.prepared_misses();
      }
    } else {
      const bool prefilter = pred.Prunable();
      size_t probed = 0;
      for (const L& l : lv) {
        if ((probed++ & 1023u) == 0) ThrowIfTaskCancelled();
        const Envelope le = l.first.envelope().Expanded(margin);
        BoundPredicate bound(pred, l.first,
                             BoundPredicate::Side::kCandidateRight);
        for (size_t rix = task.begin; rix < task.end; ++rix) {
          const R& r = rv[rix];
          if (prefilter && !le.Intersects(r.first.envelope())) {
            ++prefilter_skips;
            continue;
          }
          if (bound.Eval(r.first)) sink.push_back(project(l, r));
        }
        prep_hits += bound.prepared_hits();
        prep_misses += bound.prepared_misses();
      }
    }
    ji::AnnotateSpan(ji::TaskDetail(task, rv.size()) +
                         ji::IndexDetail(packed_probes, prep_hits, prep_misses),
                     task.end - task.begin, sink.size(), packed_probes,
                     sink.size());
    metrics.prefilter_skips->Add(prefilter_skips);
    metrics.results->Add(sink.size());
    ji::FlushIndexMetrics(packed_probes, prep_hits, prep_misses);
  });

  return MakeRDDFromPartitions(ctx, std::move(out));
}

/// \brief Cached-index join: probes the R-trees already held by \p left —
/// built once by Index()/LiveIndex() or loaded from disk — instead of
/// rebuilding them per call. `engine.join.tree_builds` stays at 0 on this
/// path; every probed tree counts as an `engine.join.tree_reuse_hits`.
///
/// Partition pairs are pruned with the extents captured at indexing time.
/// A non-prunable predicate cannot use the trees; the elements are then
/// scanned out of them into a nested loop (still no tree build). The
/// broadcast strategy never applies here — the index is already paid for.
template <typename V, typename W, typename Project>
auto SpatialJoinProject(const IndexedSpatialRDD<V>& left,
                        const SpatialRDD<W>& right, const JoinPredicate& pred,
                        const JoinOptions& options, Project project)
    -> RDD<std::invoke_result_t<Project, const std::pair<STObject, V>&,
                                const std::pair<STObject, W>&>> {
  using L = std::pair<STObject, V>;
  using R = std::pair<STObject, W>;
  using Out = std::invoke_result_t<Project, const L&, const R&>;
  using TreePtr = typename IndexedSpatialRDD<V>::TreePtr;
  namespace ji = join_internal;

  Context* ctx = right.ctx();
  const size_t nl = left.NumPartitions();
  const size_t nr = right.NumPartitions();
  const double margin = pred.EnvelopeMargin();
  const JoinMetricSet& metrics = GlobalJoinMetrics();

  // Collecting a cached trees RDD hands back the shared tree pointers
  // without copying or rebuilding anything.
  std::vector<std::vector<TreePtr>> left_trees = left.trees().CollectPartitions();
  std::vector<std::vector<R>> right_parts = right.rdd().CollectPartitions();
  std::vector<size_t> left_sizes(nl, 0);
  std::vector<size_t> right_sizes(nr, 0);
  for (size_t i = 0; i < nl; ++i) {
    for (const TreePtr& tree : left_trees[i]) left_sizes[i] += tree->size();
  }
  for (size_t j = 0; j < nr; ++j) right_sizes[j] = right_parts[j].size();

  // Enumerate pairs, pruned with the extents captured when the index was
  // built (they grow with the indexed data, exactly like partitioner
  // extents).
  const auto& extents = left.extents();
  const auto& rp = right.partitioner();
  const bool can_prune = pred.Prunable() && extents != nullptr && rp != nullptr;
  std::vector<std::pair<size_t, size_t>> pairs;
  pairs.reserve(can_prune ? nl + nr : nl * nr);
  size_t pruned = 0;
  for (size_t i = 0; i < nl; ++i) {
    for (size_t j = 0; j < nr; ++j) {
      if (can_prune && i < extents->size()) {
        const Envelope le = (*extents)[i].Expanded(margin);
        if (!le.Intersects(rp->PartitionExtent(j))) {
          ++pruned;
          continue;
        }
      }
      pairs.emplace_back(i, j);
    }
  }
  metrics.pairs_enumerated->Add(pairs.size());
  metrics.pairs_pruned->Add(pruned);

  std::vector<char> left_used(nl, 0);
  for (const auto& [i, j] : pairs) {
    (void)j;
    left_used[i] = 1;
  }
  size_t reuse_hits = 0;
  for (size_t i = 0; i < nl; ++i) {
    if (left_used[i]) reuse_hits += left_trees[i].size();
  }
  metrics.tree_reuse_hits->Add(reuse_hits);

  // A non-prunable predicate cannot probe the trees; scan their elements
  // out once per used partition and fall back to a nested loop. This is a
  // flat copy, not an R-tree build.
  const bool probe_trees = pred.Prunable();
  std::vector<std::vector<L>> left_elems(nl);
  if (!probe_trees) {
    ctx->RunTasks("spatial.join.scan", nl, [&](size_t i) {
      if (!left_used[i]) return;
      std::vector<L>& elems = left_elems[i];
      elems.clear();
      elems.reserve(left_sizes[i]);
      for (const TreePtr& tree : left_trees[i]) {
        tree->ForEach([&](const Envelope&, const L& e) { elems.push_back(e); });
      }
    });
  }

  size_t pairs_split = 0;
  const std::vector<ji::ProbeTask> tasks = ji::PlanProbeTasks(
      pairs, left_sizes, right_sizes, probe_trees, options, &pairs_split);
  metrics.pairs_split->Add(pairs_split);
  metrics.subtasks->Add(tasks.size());

  std::vector<std::vector<Out>> out(tasks.size());
  ctx->RunTasks("spatial.join.probe", tasks.size(), [&](size_t t) {
    const ji::ProbeTask& task = tasks[t];
    const std::vector<R>& rv = right_parts[task.right];
    std::vector<Out>& sink = out[t];
    sink.clear();  // retry-idempotent: a re-run starts from scratch
    size_t packed_probes = 0;
    size_t prep_hits = 0;
    size_t prep_misses = 0;
    if (probe_trees) {
      for (size_t rix = task.begin; rix < task.end; ++rix) {
        // Cooperative checkpoint for cancellation/deadline/speculation.
        if (((rix - task.begin) & 1023u) == 0) ThrowIfTaskCancelled();
        const R& r = rv[rix];
        const Envelope probe = r.first.envelope().Expanded(margin);
        BoundPredicate bound(pred, r.first,
                             BoundPredicate::Side::kCandidateLeft);
        for (const TreePtr& tree : left_trees[task.left]) {
          tree->Query(probe, [&](const Envelope&, const L& l) {
            if (bound.Eval(l.first)) sink.push_back(project(l, r));
          });
          ++packed_probes;
        }
        prep_hits += bound.prepared_hits();
        prep_misses += bound.prepared_misses();
      }
    } else {
      const std::vector<L>& lv = left_elems[task.left];
      size_t probed = 0;
      for (const L& l : lv) {
        if ((probed++ & 1023u) == 0) ThrowIfTaskCancelled();
        BoundPredicate bound(pred, l.first,
                             BoundPredicate::Side::kCandidateRight);
        for (size_t rix = task.begin; rix < task.end; ++rix) {
          const R& r = rv[rix];
          if (bound.Eval(r.first)) sink.push_back(project(l, r));
        }
        prep_hits += bound.prepared_hits();
        prep_misses += bound.prepared_misses();
      }
    }
    ji::AnnotateSpan(ji::TaskDetail(task, rv.size()) +
                         ji::IndexDetail(packed_probes, prep_hits, prep_misses),
                     task.end - task.begin, sink.size(), packed_probes,
                     sink.size());
    metrics.results->Add(sink.size());
    ji::FlushIndexMetrics(packed_probes, prep_hits, prep_misses);
  });

  return MakeRDDFromPartitions(ctx, std::move(out));
}

/// Joins two spatial RDDs on \p pred; emits every full pair (l, r) with
/// pred.Eval(l.first, r.first) == true.
template <typename V, typename W>
RDD<std::pair<std::pair<STObject, V>, std::pair<STObject, W>>> SpatialJoin(
    const SpatialRDD<V>& left, const SpatialRDD<W>& right,
    const JoinPredicate& pred, const JoinOptions& options = {}) {
  using L = std::pair<STObject, V>;
  using R = std::pair<STObject, W>;
  return SpatialJoinProject(left, right, pred, options,
                            [](const L& l, const R& r) {
                              return std::pair<L, R>(l, r);
                            });
}

/// Cached-index variant of SpatialJoin: probes \p left's persistent trees.
template <typename V, typename W>
RDD<std::pair<std::pair<STObject, V>, std::pair<STObject, W>>> SpatialJoin(
    const IndexedSpatialRDD<V>& left, const SpatialRDD<W>& right,
    const JoinPredicate& pred, const JoinOptions& options = {}) {
  using L = std::pair<STObject, V>;
  using R = std::pair<STObject, W>;
  return SpatialJoinProject(left, right, pred, options,
                            [](const L& l, const R& r) {
                              return std::pair<L, R>(l, r);
                            });
}

/// \brief Self join that excludes the trivial identity matches: each
/// element is tagged with a unique id and pairs (x, x) are dropped; both
/// orderings of a matching pair are emitted (standard join semantics).
template <typename V>
RDD<std::pair<std::pair<STObject, std::pair<V, size_t>>,
              std::pair<STObject, std::pair<V, size_t>>>>
SelfSpatialJoin(const SpatialRDD<V>& data, const JoinPredicate& pred,
                const JoinOptions& options = {}) {
  using Tagged = std::pair<STObject, std::pair<V, size_t>>;
  RDD<Tagged> tagged =
      data.rdd().ZipWithIndex().Map([](std::pair<std::pair<STObject, V>,
                                                 size_t>& e) {
        return Tagged{std::move(e.first.first),
                      {std::move(e.first.second), e.second}};
      });
  SpatialRDD<std::pair<V, size_t>> wrapped(tagged.Cache(),
                                           data.partitioner());
  auto joined = SpatialJoin(wrapped, wrapped, pred, options);
  return joined.Filter([](const std::pair<Tagged, Tagged>& pair) {
    return pair.first.second.second != pair.second.second.second;
  });
}

}  // namespace stark

#endif  // STARK_SPATIAL_RDD_JOIN_H_
