/// \file knn_join.h
/// k-nearest-neighbor join: for every left element, find its k nearest
/// right elements. The demo paper ships a kNN *search* operator; the full
/// STARK framework also provides the join form — implemented here with
/// per-partition R-trees and extent-distance pruning, so only right
/// partitions that can still improve the current k-th distance are probed.
#ifndef STARK_SPATIAL_RDD_KNN_JOIN_H_
#define STARK_SPATIAL_RDD_KNN_JOIN_H_

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "geometry/prepared.h"
#include "index/packed_rtree.h"
#include "spatial_rdd/query_stats.h"
#include "spatial_rdd/spatial_rdd.h"

namespace stark {

/// One kNN-join match: distance plus the right-side element.
template <typename W>
using KnnMatch = std::pair<double, std::pair<STObject, W>>;

/// \brief For each element l of \p left, emits (l, matches) where matches
/// are the up-to-k nearest elements of \p right by Euclidean geometry
/// distance, sorted ascending.
///
/// Distance ties are broken arbitrarily (matching the paper's kNN search
/// operator). Right partitions are probed in order of increasing extent
/// distance and skipped once they cannot beat the current k-th distance.
template <typename V, typename W>
RDD<std::pair<std::pair<STObject, V>, std::vector<KnnMatch<W>>>> KnnJoin(
    const SpatialRDD<V>& left, const SpatialRDD<W>& right, size_t k,
    size_t index_order = 16) {
  using L = std::pair<STObject, V>;
  using R = std::pair<STObject, W>;
  using Out = std::pair<L, std::vector<KnnMatch<W>>>;

  Context* ctx = left.ctx();
  const size_t nl = left.NumPartitions();
  const size_t nr = right.NumPartitions();

  // Materialize and index the right side once (straight into the packed
  // layout — kNN traversal walks SoA node arrays, no pointer chasing).
  std::vector<std::vector<R>> right_parts = right.rdd().CollectPartitions();
  std::vector<std::unique_ptr<PackedRTree<size_t>>> right_trees(nr);
  ctx->pool().ParallelFor(nr, [&](size_t j) {
    std::vector<std::pair<Envelope, size_t>> entries;
    entries.reserve(right_parts[j].size());
    for (size_t e = 0; e < right_parts[j].size(); ++e) {
      entries.emplace_back(right_parts[j][e].first.envelope(), e);
    }
    right_trees[j] =
        std::make_unique<PackedRTree<size_t>>(index_order, std::move(entries));
  });

  // Right-partition extents for pruning (fall back to tree bounds when the
  // right side is not spatially partitioned).
  std::vector<Envelope> right_extents(nr);
  for (size_t j = 0; j < nr; ++j) {
    right_extents[j] = right.partitioner() != nullptr
                           ? right.partitioner()->PartitionExtent(j)
                           : right_trees[j]->bounds();
  }

  std::vector<std::vector<L>> left_parts = left.rdd().CollectPartitions();
  std::vector<std::vector<Out>> out(nl);
  ctx->pool().ParallelFor(nl, [&](size_t i) {
    size_t packed_probes = 0;
    size_t prep_hits = 0;
    size_t prep_misses = 0;
    out[i].reserve(left_parts[i].size());
    for (L& l : left_parts[i]) {
      // Each left element's geometry is interrogated once per candidate;
      // prepare it lazily so elements whose partitions all get pruned (or
      // that find no candidates) never pay for preparation.
      // DistanceFrom(rg) == Distance(rg, l.geo) — identical doubles.
      std::optional<PreparedGeometry> prep;
      auto exact = [&](const Geometry& rg) {
        if (!prep.has_value()) {
          prep.emplace(l.first.geo());
          ++prep_misses;
        } else {
          ++prep_hits;
        }
        return prep->DistanceFrom(rg);
      };
      // Branch-and-bound admissibility: geometry distance is always >= the
      // distance between the geometries' envelopes, so envelope-based
      // bounds never over-prune. The in-tree bound is anchored at the left
      // centroid, which is only a valid lower bound for point geometries;
      // non-point left geometries scan the partition instead.
      const Envelope& lenv = l.first.envelope();
      const bool left_is_point = l.first.geo().IsPoint();
      const Coordinate c = l.first.Centroid();

      // Probe order: nearest right partition first.
      std::vector<std::pair<double, size_t>> order;
      order.reserve(nr);
      for (size_t j = 0; j < nr; ++j) {
        if (right_parts[j].empty()) continue;
        order.emplace_back(right_extents[j].Distance(lenv), j);
      }
      std::sort(order.begin(), order.end());

      std::vector<KnnMatch<W>> best;
      auto merge = [&](double dist, const R& r) {
        best.emplace_back(dist, r);
      };
      for (const auto& [extent_dist, j] : order) {
        if (best.size() >= k && extent_dist > best.back().first) {
          break;  // no remaining partition can improve the k-th distance
        }
        if (left_is_point) {
          auto hits = right_trees[j]->Knn(c, k, [&](const size_t& e) {
            return exact(right_parts[j][e].first.geo());
          });
          ++packed_probes;
          for (auto& [dist, e] : hits) merge(dist, right_parts[j][*e]);
        } else {
          for (const R& r : right_parts[j]) {
            merge(exact(r.first.geo()), r);
          }
        }
        std::sort(best.begin(), best.end(),
                  [](const KnnMatch<W>& a, const KnnMatch<W>& b) {
                    return a.first < b.first;
                  });
        if (best.size() > k) {
          best.erase(best.begin() + static_cast<ptrdiff_t>(k), best.end());
        }
      }
      out[i].emplace_back(std::move(l), std::move(best));
    }
    const IndexMetricSet& index_metrics = GlobalIndexMetrics();
    index_metrics.packed_probes->Add(packed_probes);
    index_metrics.prepared_hits->Add(prep_hits);
    index_metrics.prepared_misses->Add(prep_misses);
  });
  return MakeRDDFromPartitions(ctx, std::move(out));
}

}  // namespace stark

#endif  // STARK_SPATIAL_RDD_KNN_JOIN_H_
