/// \file interval.h
/// Temporal component of an STObject: an instant or a closed interval on a
/// discrete time axis (int64 ticks, e.g. epoch milliseconds).
#ifndef STARK_TEMPORAL_INTERVAL_H_
#define STARK_TEMPORAL_INTERVAL_H_

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/macros.h"

namespace stark {

/// Point on the time axis. STARK's Scala API takes Long values; we mirror
/// that with int64 ticks whose unit is up to the application.
using Instant = int64_t;

/// \brief A closed time interval [start, end]; an instant is the degenerate
/// interval [t, t].
class TemporalInterval {
 public:
  /// Degenerate interval for a single instant.
  explicit TemporalInterval(Instant at) : start_(at), end_(at) {}

  /// Closed interval; requires start <= end.
  TemporalInterval(Instant start, Instant end) : start_(start), end_(end) {
    STARK_DCHECK(start <= end);
  }

  Instant start() const { return start_; }
  Instant end() const { return end_; }
  bool IsInstant() const { return start_ == end_; }

  /// Duration in ticks (0 for an instant).
  int64_t Length() const { return end_ - start_; }

  /// Midpoint of the interval (used for temporal partitioning centroids).
  Instant Center() const { return start_ + (end_ - start_) / 2; }

  /// True iff the intervals share at least one instant.
  bool Intersects(const TemporalInterval& o) const {
    return start_ <= o.end_ && o.start_ <= end_;
  }

  /// True iff \p o lies entirely within this interval (boundaries count).
  bool Contains(const TemporalInterval& o) const {
    return start_ <= o.start_ && o.end_ <= end_;
  }

  /// True iff the instant \p t falls inside the interval.
  bool Contains(Instant t) const { return start_ <= t && t <= end_; }

  /// Smallest gap between the intervals; 0 when they intersect.
  int64_t Distance(const TemporalInterval& o) const {
    if (Intersects(o)) return 0;
    return start_ > o.end_ ? start_ - o.end_ : o.start_ - end_;
  }

  /// Hull covering both intervals.
  TemporalInterval Union(const TemporalInterval& o) const {
    return TemporalInterval(std::min(start_, o.start_),
                            std::max(end_, o.end_));
  }

  bool operator==(const TemporalInterval& o) const {
    return start_ == o.start_ && end_ == o.end_;
  }

  std::string ToString() const {
    if (IsInstant()) return "@" + std::to_string(start_);
    return "[" + std::to_string(start_) + ", " + std::to_string(end_) + "]";
  }

 private:
  Instant start_;
  Instant end_;
};

/// Temporal predicate function type, mirroring the paper's tau_t.
enum class TemporalPredicate {
  kIntersects,
  kContains,
  kContainedBy,
};

/// Evaluates \p pred on two temporal intervals.
inline bool EvalTemporalPredicate(TemporalPredicate pred,
                                  const TemporalInterval& a,
                                  const TemporalInterval& b) {
  switch (pred) {
    case TemporalPredicate::kIntersects: return a.Intersects(b);
    case TemporalPredicate::kContains: return a.Contains(b);
    case TemporalPredicate::kContainedBy: return b.Contains(a);
  }
  return false;
}

}  // namespace stark

#endif  // STARK_TEMPORAL_INTERVAL_H_
