/// \file failpoint.h
/// Deterministic fault-injection registry. Named fail points are compiled
/// into the engine's task-execution, shuffle, cache and checkpoint paths;
/// each site costs one relaxed atomic load while disarmed. Arming a site
/// (programmatically, via `stark_shell --failpoints=`, or through the
/// STARK_FAILPOINTS environment variable) makes it throw InjectedFaultError
/// (task sites) or return an IOError Status (I/O sites) according to a
/// trigger policy, so the retry/recovery machinery can be exercised under
/// test exactly like Spark exercises lineage recomputation on executor
/// loss. See docs/FAULT_INJECTION.md.
#ifndef STARK_FAULT_FAILPOINT_H_
#define STARK_FAULT_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"

namespace stark {
namespace fault {

/// Thrown by a task-path injection site when its fail point fires. The
/// engine's task boundary converts it into a Status like any other task
/// exception, so an injected fault is retried exactly like a real one.
class InjectedFaultError : public std::runtime_error {
 public:
  explicit InjectedFaultError(const std::string& site)
      : std::runtime_error("injected fault at " + site), site_(site) {}

  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// \brief When an armed fail point fires, as a function of its hit count —
/// and what happens when it does (throw vs. delay).
///
/// Spec grammar (used by STARK_FAILPOINTS, --failpoints= and Arm):
///   `nth:<n>`             fire exactly on the n-th hit (1-based), once;
///   `every:<k>`           fire on every k-th hit (hits k, 2k, 3k, ...);
///   `prob:<p>[:seed=<s>]` fire each hit independently with probability p,
///                         decided by a pure hash of (seed, hit index) so a
///                         schedule is reproducible across runs and thread
///                         interleavings;
///   `delay:<ms>[@<trigger>]`
///                         instead of throwing, sleep the firing hit for
///                         <ms> milliseconds — a deterministic straggler
///                         for speculation/deadline tests. The optional
///                         @<trigger> is any of the schedules above
///                         (default every:1), e.g. "delay:50@every:7";
///   `off`                 never fire (same as disarming).
struct TriggerPolicy {
  enum class Kind { kOff, kNth, kEvery, kProbability };
  /// What a firing hit does: throw/fail (default) or sleep for delay_ms.
  enum class Action { kFail, kDelay };

  Kind kind = Kind::kOff;
  uint64_t n = 0;            ///< nth / every parameter.
  double probability = 0.0;  ///< prob parameter.
  uint64_t seed = 42;        ///< prob decision seed.
  Action action = Action::kFail;
  uint64_t delay_ms = 0;     ///< sleep length for Action::kDelay.

  /// Parses one policy spec, e.g. "nth:3" or "prob:0.25:seed=7".
  static Result<TriggerPolicy> Parse(const std::string& spec);

  /// Canonical spec string (round-trips through Parse).
  std::string ToString() const;

  /// Whether hit number \p hit (1-based) fires under this policy. Pure.
  bool Fires(uint64_t hit) const;
};

/// \brief One named injection site with a hit counter and an armed policy.
///
/// Site pointers are stable for the registry's lifetime, so injection
/// sites resolve their name once (function-local static) and then pay a
/// single relaxed atomic load per hit while disarmed. Hits are counted
/// only while armed, which keeps nth-hit schedules independent of work
/// done before arming.
class FailPoint {
 public:
  explicit FailPoint(std::string name) : name_(std::move(name)) {}
  STARK_DISALLOW_COPY_AND_ASSIGN(FailPoint);

  const std::string& name() const { return name_; }

  /// Arms \p policy and resets the hit/fire counters.
  void Arm(const TriggerPolicy& policy);

  /// Disarms the site (counters keep their last values for inspection).
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Counts a hit and reports whether the site fires for it. The disarmed
  /// fast path is one relaxed load; the armed path takes the site mutex.
  bool ShouldFire();

  /// Deterministic per-hit decision used by probability policies:
  /// a SplitMix64-style hash of (seed, hit) mapped to [0, 1) and compared
  /// against p. Exposed for tests asserting schedule reproducibility.
  static bool ProbabilisticDecision(uint64_t seed, uint64_t hit, double p);

  uint64_t hits() const;
  uint64_t fires() const;
  TriggerPolicy policy() const;

 private:
  const std::string name_;
  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;  // guards policy_ and counters on the armed path
  TriggerPolicy policy_;
  uint64_t hits_ = 0;
  uint64_t fires_ = 0;
};

/// \brief Create-or-get registry of named fail points (MetricsRegistry
/// idiom: resolution takes a mutex, the per-hit check does not).
class FailPointRegistry {
 public:
  FailPointRegistry() = default;
  STARK_DISALLOW_COPY_AND_ASSIGN(FailPointRegistry);

  /// Returns the fail point named \p name, creating it disarmed if needed.
  /// The pointer is stable for the registry's lifetime.
  FailPoint* Get(const std::string& name);

  /// Parses \p spec and arms the named site, e.g. Arm("engine.task.run",
  /// "nth:1"). "off" disarms.
  Status Arm(const std::string& name, const std::string& spec);

  /// Arms every site of a multi-site spec:
  ///   "engine.task.run=nth:1;engine.checkpoint.write=every:3".
  /// Entries are separated by ';' or ','; whitespace around entries is
  /// ignored. Stops at the first malformed entry.
  Status ArmFromSpec(const std::string& spec);

  /// Arms from the STARK_FAILPOINTS environment variable, if set. Invalid
  /// specs are reported to stderr rather than silently ignored.
  void ArmFromEnv();

  void DisarmAll();

  /// All sites ever resolved (armed or not), sorted by name.
  std::vector<FailPoint*> List() const;

  /// Human-readable "name policy hits fires" table, one site per line.
  std::string Report() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<FailPoint>> points_;
};

/// The process-wide registry used by the engine's built-in injection sites.
/// First access arms from STARK_FAILPOINTS, so any stark binary (tests,
/// benchmarks, shell) honours the variable without wiring.
FailPointRegistry& DefaultFailPoints();

/// Task-path injection: throws InjectedFaultError when \p fp fires with a
/// fail action, or sleeps in place when it fires with a delay action.
/// Sites resolve once: `static FailPoint* const fp = ...Get("name");`.
void MaybeThrow(FailPoint* fp);

/// I/O-path injection: returns IOError when \p fp fires with a fail
/// action (a delay action sleeps and returns OK), OK otherwise.
Status MaybeStatus(FailPoint* fp);

/// Executor-loss injection (site `engine.worker.die`): when \p fp fires on
/// a pool worker thread, throws WorkerKilledError so the thread pool kills
/// that worker, requeues the interrupted task, and spawns a replacement.
/// No-op on non-worker threads — the driver cannot lose itself. A delay
/// action sleeps instead of killing.
void MaybeKillWorker(FailPoint* fp);

}  // namespace fault
}  // namespace stark

#endif  // STARK_FAULT_FAILPOINT_H_
