/// \file retry.h
/// Task retry policy for the sparklet engine. A failed partition task is
/// re-run against its lineage (RDDImpl::Compute is a pure function of the
/// lineage graph, so re-invoking it *is* Spark's "recompute the partition
/// from lineage") up to max_attempts times with exponential backoff, after
/// which the job fails with a Status. Mirrors Spark's
/// `spark.task.maxFailures` knob.
#ifndef STARK_FAULT_RETRY_H_
#define STARK_FAULT_RETRY_H_

#include <cstddef>
#include <cstdint>

namespace stark {
namespace fault {

/// \brief How the engine reacts to a failing partition task.
struct RetryPolicy {
  /// Total attempts per task, like spark.task.maxFailures (>= 1; the
  /// first run counts as attempt 1). 1 disables retry.
  size_t max_attempts = 3;

  /// Backoff before attempt k+1 is backoff_base_ms * multiplier^(k-1);
  /// 0 retries immediately (the default: local recomputation has none of
  /// the cluster's transient-resource flakiness, so waiting buys nothing
  /// unless a test or operator wants it).
  uint64_t backoff_base_ms = 0;
  double backoff_multiplier = 2.0;

  /// When true a task failure is terminal immediately (one attempt) —
  /// Spark's fail-fast scheduling for debugging deterministic bugs, where
  /// retrying only repeats the crash N times.
  bool fail_fast = false;

  /// Attempts actually granted per task under this policy.
  size_t EffectiveAttempts() const {
    if (fail_fast) return 1;
    return max_attempts >= 1 ? max_attempts : 1;
  }

  /// Milliseconds to sleep before retrying after failed attempt number
  /// \p attempt (1-based); capped at 10s.
  uint64_t BackoffMs(size_t attempt) const;

  /// Reads overrides from the environment: STARK_TASK_RETRIES (max
  /// attempts), STARK_TASK_BACKOFF_MS, STARK_TASK_FAIL_FAST (0/1).
  /// Unset or malformed variables keep the defaults.
  static RetryPolicy FromEnv();
};

}  // namespace fault
}  // namespace stark

#endif  // STARK_FAULT_RETRY_H_
