#include "fault/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/thread_pool.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace stark {
namespace fault {

namespace {

/// Splits "prefix:rest" at the first ':'; rest is empty when absent.
bool SplitOnce(const std::string& s, char sep, std::string* head,
               std::string* tail) {
  const size_t pos = s.find(sep);
  if (pos == std::string::npos) {
    *head = s;
    tail->clear();
    return false;
  }
  *head = s.substr(0, pos);
  *tail = s.substr(pos + 1);
  return true;
}

Result<uint64_t> ParseU64(const std::string& s) {
  if (s.empty()) return Status::InvalidArgument("empty integer");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad integer '" + s + "'");
  }
  return static_cast<uint64_t>(v);
}

}  // namespace

Result<TriggerPolicy> TriggerPolicy::Parse(const std::string& spec) {
  TriggerPolicy policy;
  std::string kind, rest;
  SplitOnce(spec, ':', &kind, &rest);
  if (kind == "delay") {
    // delay:<ms>[@<trigger>] — the firing schedule is the part after '@'
    // (default every:1, i.e. every hit sleeps).
    const size_t at = rest.find('@');
    std::string ms_str = rest.substr(0, at);
    STARK_ASSIGN_OR_RETURN(policy.delay_ms, ParseU64(ms_str));
    if (at == std::string::npos) {
      policy.kind = Kind::kEvery;
      policy.n = 1;
    } else {
      STARK_ASSIGN_OR_RETURN(TriggerPolicy trigger,
                             Parse(rest.substr(at + 1)));
      if (trigger.kind == Kind::kOff ||
          trigger.action == Action::kDelay) {
        return Status::InvalidArgument(
            "delay trigger must be nth/every/prob: " + spec);
      }
      policy.kind = trigger.kind;
      policy.n = trigger.n;
      policy.probability = trigger.probability;
      policy.seed = trigger.seed;
    }
    policy.action = Action::kDelay;
    return policy;
  }
  if (kind == "off") {
    if (!rest.empty()) {
      return Status::InvalidArgument("'off' takes no parameter: " + spec);
    }
    policy.kind = Kind::kOff;
    return policy;
  }
  if (kind == "nth" || kind == "every") {
    STARK_ASSIGN_OR_RETURN(policy.n, ParseU64(rest));
    if (policy.n == 0) {
      return Status::InvalidArgument(kind + " parameter must be >= 1: " +
                                     spec);
    }
    policy.kind = kind == "nth" ? Kind::kNth : Kind::kEvery;
    return policy;
  }
  if (kind == "prob") {
    std::string p_str, seed_str;
    SplitOnce(rest, ':', &p_str, &seed_str);
    char* end = nullptr;
    policy.probability = std::strtod(p_str.c_str(), &end);
    if (end == p_str.c_str() || *end != '\0' || policy.probability < 0.0 ||
        policy.probability > 1.0) {
      return Status::InvalidArgument("bad probability in '" + spec +
                                     "' (want 0..1)");
    }
    if (!seed_str.empty()) {
      if (seed_str.rfind("seed=", 0) != 0) {
        return Status::InvalidArgument("expected seed=<n> in '" + spec + "'");
      }
      STARK_ASSIGN_OR_RETURN(policy.seed, ParseU64(seed_str.substr(5)));
    }
    policy.kind = Kind::kProbability;
    return policy;
  }
  return Status::InvalidArgument("unknown fail-point policy '" + spec +
                                 "' (want nth:<n>, every:<k>, "
                                 "prob:<p>[:seed=<s>], or off)");
}

std::string TriggerPolicy::ToString() const {
  std::string trigger;
  switch (kind) {
    case Kind::kOff:
      trigger = "off";
      break;
    case Kind::kNth:
      trigger = "nth:" + std::to_string(n);
      break;
    case Kind::kEvery:
      trigger = "every:" + std::to_string(n);
      break;
    case Kind::kProbability: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "prob:%g:seed=%llu", probability,
                    static_cast<unsigned long long>(seed));
      trigger = buf;
      break;
    }
  }
  if (action != Action::kDelay || kind == Kind::kOff) return trigger;
  std::string out = "delay:" + std::to_string(delay_ms);
  // every:1 is the implicit default trigger and round-trips as bare
  // "delay:<ms>".
  if (kind != Kind::kEvery || n != 1) out += "@" + trigger;
  return out;
}

bool TriggerPolicy::Fires(uint64_t hit) const {
  switch (kind) {
    case Kind::kOff:
      return false;
    case Kind::kNth:
      return hit == n;
    case Kind::kEvery:
      return hit % n == 0;
    case Kind::kProbability:
      return FailPoint::ProbabilisticDecision(seed, hit, probability);
  }
  return false;
}

void FailPoint::Arm(const TriggerPolicy& policy) {
  std::lock_guard<std::mutex> lock(mu_);
  policy_ = policy;
  hits_ = 0;
  fires_ = 0;
  armed_.store(policy.kind != TriggerPolicy::Kind::kOff,
               std::memory_order_relaxed);
}

void FailPoint::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_relaxed);
  policy_.kind = TriggerPolicy::Kind::kOff;
  policy_.action = TriggerPolicy::Action::kFail;
}

bool FailPoint::ShouldFire() {
  if (!armed_.load(std::memory_order_relaxed)) return false;
  uint64_t hit;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (policy_.kind == TriggerPolicy::Kind::kOff) return false;
    hit = ++hits_;
    if (!policy_.Fires(hit)) return false;
    ++fires_;
  }
  // Every fired injection leaves a breadcrumb in the flight recorder, so a
  // post-mortem dump shows which fault preceded the failure. With
  // STARK_FLIGHT_DUMP_ON_FAULT=1 the fire itself also triggers a dump.
  obs::DefaultFlightRecorder().RecordTask(
      obs::FlightEventKind::kFault, 0, 0, 0, 0,
      ThreadPool::CurrentWorkerIndex(), hit, name().c_str());
  static const bool dump_on_fault = [] {
    const char* raw = std::getenv("STARK_FLIGHT_DUMP_ON_FAULT");
    return raw != nullptr && *raw != '\0' && *raw != '0';
  }();
  if (dump_on_fault) {
    obs::DefaultFlightRecorder().AutoDump("failpoint " + name() + " fired");
  }
  return true;
}

bool FailPoint::ProbabilisticDecision(uint64_t seed, uint64_t hit, double p) {
  // SplitMix64 finalizer over (seed, hit): a pure function of the pair, so
  // the set of firing hit indices is identical run-to-run no matter how
  // threads interleave their hits.
  uint64_t z = seed + hit * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  // Top 53 bits -> uniform double in [0, 1).
  const double u =
      static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
  return u < p;
}

uint64_t FailPoint::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t FailPoint::fires() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fires_;
}

TriggerPolicy FailPoint::policy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return policy_;
}

FailPoint* FailPointRegistry::Get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_.emplace(name, std::make_unique<FailPoint>(name)).first;
  }
  return it->second.get();
}

Status FailPointRegistry::Arm(const std::string& name,
                              const std::string& spec) {
  if (name.empty()) {
    return Status::InvalidArgument("empty fail-point name");
  }
  STARK_ASSIGN_OR_RETURN(TriggerPolicy policy, TriggerPolicy::Parse(spec));
  Get(name)->Arm(policy);
  return Status::OK();
}

Status FailPointRegistry::ArmFromSpec(const std::string& spec) {
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find_first_of(";,", start);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(start, end - start);
    start = end + 1;
    // Trim surrounding whitespace.
    const size_t first = entry.find_first_not_of(" \t");
    if (first == std::string::npos) continue;  // empty entry
    const size_t last = entry.find_last_not_of(" \t");
    entry = entry.substr(first, last - first + 1);
    const size_t eq = entry.find('=');
    // Note: prob seeds use "seed=<n>" after the policy's ':' separator, so
    // the *first* '=' always terminates the site name.
    if (eq == std::string::npos) {
      return Status::InvalidArgument("expected <site>=<policy>, got '" +
                                     entry + "'");
    }
    STARK_RETURN_NOT_OK(Arm(entry.substr(0, eq), entry.substr(eq + 1)));
  }
  return Status::OK();
}

void FailPointRegistry::ArmFromEnv() {
  const char* spec = std::getenv("STARK_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return;
  const Status status = ArmFromSpec(spec);
  if (!status.ok()) {
    std::fprintf(stderr, "warning: bad STARK_FAILPOINTS: %s\n",
                 status.ToString().c_str());
  }
}

void FailPointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, fp] : points_) fp->Disarm();
}

std::vector<FailPoint*> FailPointRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FailPoint*> out;
  out.reserve(points_.size());
  for (const auto& [name, fp] : points_) out.push_back(fp.get());
  return out;
}

std::string FailPointRegistry::Report() const {
  std::string out;
  for (const FailPoint* fp : List()) {
    out += fp->name();
    out += " policy=" + fp->policy().ToString();
    out += " hits=" + std::to_string(fp->hits());
    out += " fires=" + std::to_string(fp->fires());
    out += '\n';
  }
  return out;
}

FailPointRegistry& DefaultFailPoints() {
  static FailPointRegistry* registry = [] {
    auto* r = new FailPointRegistry();
    r->ArmFromEnv();
    return r;
  }();
  return *registry;
}

namespace {

/// Handles a fired delay action: sleeps the calling thread in place (no
/// lock held) and counts the injected straggler. Returns true when the
/// fire was a delay (i.e. already consumed).
bool MaybeSleepDelay(FailPoint* fp) {
  const TriggerPolicy policy = fp->policy();
  if (policy.action != TriggerPolicy::Action::kDelay) return false;
  static obs::Counter* const delayed =
      obs::DefaultMetrics().GetCounter("engine.fault.delayed");
  delayed->Increment();
  std::this_thread::sleep_for(std::chrono::milliseconds(policy.delay_ms));
  return true;
}

}  // namespace

void MaybeThrow(FailPoint* fp) {
  if (!fp->ShouldFire()) return;
  if (MaybeSleepDelay(fp)) return;
  static obs::Counter* const injected =
      obs::DefaultMetrics().GetCounter("engine.fault.injected");
  injected->Increment();
  throw InjectedFaultError(fp->name());
}

Status MaybeStatus(FailPoint* fp) {
  if (!fp->ShouldFire()) return Status::OK();
  if (MaybeSleepDelay(fp)) return Status::OK();
  static obs::Counter* const injected =
      obs::DefaultMetrics().GetCounter("engine.fault.injected");
  injected->Increment();
  return Status::IOError("injected fault at " + fp->name());
}

void MaybeKillWorker(FailPoint* fp) {
  // Only pool workers can die; the driver thread has no executor to lose.
  if (ThreadPool::CurrentWorkerIndex() < 0) return;
  if (!fp->ShouldFire()) return;
  if (MaybeSleepDelay(fp)) return;
  static obs::Counter* const injected =
      obs::DefaultMetrics().GetCounter("engine.fault.injected");
  injected->Increment();
  throw WorkerKilledError{};
}

}  // namespace fault
}  // namespace stark
